#include "core/compiler.h"

#include <gtest/gtest.h>

#include "netapp/scenarios.h"

namespace hicsync::core {
namespace {

TEST(Compiler, Figure1EndToEnd) {
  Compiler compiler;
  auto r = compiler.compile(netapp::figure1_source());
  ASSERT_TRUE(r->ok()) << r->diags().str();
  EXPECT_EQ(r->program().threads.size(), 3u);
  EXPECT_EQ(r->sema().dependencies().size(), 1u);
  EXPECT_EQ(r->fsms().size(), 3u);
  EXPECT_EQ(r->memory_map().brams().size(), 1u);
  ASSERT_EQ(r->bram_reports().size(), 1u);
  EXPECT_EQ(r->bram_reports()[0].consumers, 2);
  EXPECT_EQ(r->bram_reports()[0].producers, 1);
  EXPECT_GT(r->bram_reports()[0].area.luts, 0);
  EXPECT_GT(r->min_fmax_mhz(), 0.0);
  EXPECT_TRUE(r->deadlock_warnings().empty());
}

TEST(Compiler, ParseErrorReported) {
  Compiler compiler;
  auto r = compiler.compile("thread t () { int x; x = ; }");
  EXPECT_FALSE(r->ok());
  EXPECT_TRUE(r->diags().has_errors());
  EXPECT_TRUE(r->bram_reports().empty());
}

TEST(Compiler, SemaErrorReported) {
  Compiler compiler;
  auto r = compiler.compile("thread t () { int x; x = y; }");
  EXPECT_FALSE(r->ok());
  EXPECT_TRUE(r->diags().contains("unknown variable"));
}

TEST(Compiler, DeadlockWarningSurfaces) {
  Compiler compiler;
  auto r = compiler.compile(R"(
    thread a () {
      int xa, tmp;
      #producer{d2, [b,xb]}
      tmp = xb;
      #consumer{d1, [b,yb]}
      xa = tmp + 1;
    }
    thread b () {
      int xb, yb, tmp2;
      #producer{d1, [a,xa]}
      yb = xa;
      #consumer{d2, [a,tmp]}
      xb = tmp2;
    }
  )");
  ASSERT_TRUE(r->ok()) << r->diags().str();
  ASSERT_EQ(r->deadlock_warnings().size(), 1u);
  EXPECT_NE(r->deadlock_warnings()[0].find("potential deadlock"),
            std::string::npos);
}

TEST(Compiler, VerilogContainsControllerModule) {
  Compiler compiler;
  auto r = compiler.compile(netapp::figure1_source());
  ASSERT_TRUE(r->ok());
  std::string v = r->verilog();
  EXPECT_NE(v.find("module memorg_bram0"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("c_req0"), std::string::npos);
}

TEST(Compiler, OrganizationOptionSelectsGenerator) {
  CompileOptions arb_opts;
  arb_opts.organization = sim::OrgKind::Arbitrated;
  auto arb = Compiler(arb_opts).compile(netapp::figure1_source());
  CompileOptions ev_opts;
  ev_opts.organization = sim::OrgKind::EventDriven;
  auto ev = Compiler(ev_opts).compile(netapp::figure1_source());
  ASSERT_TRUE(arb->ok());
  ASSERT_TRUE(ev->ok());
  // The arbitrated controller exposes d_req; the event-driven one p_req.
  EXPECT_NE(arb->verilog().find("d_req0"), std::string::npos);
  EXPECT_NE(ev->verilog().find("p_req0"), std::string::npos);
  // §4 shape: event-driven is smaller and faster.
  EXPECT_LT(ev->total_overhead().luts, arb->total_overhead().luts);
  EXPECT_GT(ev->min_fmax_mhz(), arb->min_fmax_mhz());
}

TEST(Compiler, SimulatorFromResultRuns) {
  Compiler compiler;
  auto r = compiler.compile(netapp::figure1_source());
  ASSERT_TRUE(r->ok());
  auto sim = r->make_simulator();
  sim->externs().register_fn("f", [](const auto&) { return 77u; });
  sim->externs().register_fn("g",
                             [](const auto& a) { return a.at(0) + 1; });
  sim->externs().register_fn("h",
                             [](const auto& a) { return a.at(0) + 2; });
  ASSERT_TRUE(sim->run_until_passes(1, 300));
  EXPECT_EQ(sim->register_value("t2", "y1"), 78u);
  EXPECT_EQ(sim->register_value("t3", "z1"), 79u);
}

TEST(Compiler, ScheduleChainingReducesStates) {
  const char* src = R"(
    thread t () {
      int a, b, c, d;
      a = 1;
      b = 2;
      c = 3;
      d = 4;
    }
  )";
  auto plain = Compiler().compile(src);
  CompileOptions chained_opts;
  chained_opts.schedule.chain_states = true;
  auto chained = Compiler(chained_opts).compile(src);
  ASSERT_TRUE(plain->ok());
  ASSERT_TRUE(chained->ok());
  EXPECT_GT(plain->fsm("t")->states().size(),
            chained->fsm("t")->states().size());
}

TEST(Compiler, UseCamOptionChangesArbitratedArea) {
  // With several dependencies on one BRAM, the serial scan saves LUTs.
  std::string src = R"(
    thread p () {
      int a, b, c;
      #consumer{d1, [q,u]}
      a = 1;
      #consumer{d2, [q,v]}
      b = 2;
      #consumer{d3, [q,w]}
      c = 3;
    }
    thread q () {
      int u, v, w;
      #producer{d1, [p,a]}
      u = a;
      #producer{d2, [p,b]}
      v = b;
      #producer{d3, [p,c]}
      w = c;
    }
  )";
  CompileOptions cam_opts;
  cam_opts.use_cam = true;
  CompileOptions scan_opts;
  scan_opts.use_cam = false;
  auto cam = Compiler(cam_opts).compile(src);
  auto scan = Compiler(scan_opts).compile(src);
  ASSERT_TRUE(cam->ok());
  ASSERT_TRUE(scan->ok());
  EXPECT_LE(scan->total_overhead().luts, cam->total_overhead().luts);
}

TEST(Compiler, SixteenConsumersBeyondBaselineSizing) {
  // More consumers than the fixed baseline sizing (max_consumers = 8): the
  // registers regrow to fit and the whole flow still works.
  auto r = Compiler().compile(netapp::fanout_source(16));
  ASSERT_TRUE(r->ok()) << r->diags().str();
  EXPECT_EQ(r->bram_reports()[0].consumers, 16);
  auto sim = r->make_simulator();
  sim->externs().register_fn("parse_pkt", [](const auto&) { return 9u; });
  sim->externs().register_fn(
      "classify", [](const auto& a) { return a.at(0) + a.at(1); });
  ASSERT_TRUE(sim->run_until_passes(1, 2000));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(sim->register_value("c" + std::to_string(i),
                                  "v" + std::to_string(i)),
              9u + static_cast<std::uint64_t>(i));
  }
}

TEST(Compiler, ReportMentionsKeyFacts) {
  Compiler compiler;
  auto r = compiler.compile(netapp::figure1_source());
  std::string report = render_report(*r);
  EXPECT_NE(report.find("threads: 3"), std::string::npos);
  EXPECT_NE(report.find("mt1"), std::string::npos);
  EXPECT_NE(report.find("dependency number 2"), std::string::npos);
  EXPECT_NE(report.find("Fmax"), std::string::npos);
  EXPECT_NE(report.find("memorg_bram0"), std::string::npos);
}

TEST(Compiler, ReportOnFailureShowsDiags) {
  auto r = Compiler().compile("thread t ( { }");
  std::string report = render_report(*r);
  EXPECT_NE(report.find("FAILED"), std::string::npos);
}

TEST(Compiler, IpForwardingCompilesWithThreeControllers) {
  auto r = Compiler().compile(netapp::ip_forwarding_source());
  ASSERT_TRUE(r->ok()) << r->diags().str();
  // rx0, rx1, fwd each produce into their own BRAM cluster.
  EXPECT_EQ(r->bram_reports().size(), 3u);
  EXPECT_TRUE(r->deadlock_warnings().empty());
}

}  // namespace
}  // namespace hicsync::core
