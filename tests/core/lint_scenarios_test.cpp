// The generated benchmark programs (Figure 1, the fan-out sweep, the IP
// forwarding application) must stay hazard-clean under hic-lint: every
// check enabled, no error-severity finding.
#include <string>

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "netapp/scenarios.h"

namespace hicsync {
namespace {

void expect_lints_clean(const std::string& source, const std::string& name) {
  core::CompileOptions options;
  options.lint.enabled = true;
  options.source_name = name;
  core::Compiler compiler(options);
  auto result = compiler.compile(source);
  ASSERT_TRUE(result->ok()) << name << ":\n" << result->diags().str();
  EXPECT_EQ(result->lint_error_count(), 0u)
      << name << ":\n" << result->diags().str();
}

TEST(LintScenarios, Figure1IsClean) {
  expect_lints_clean(netapp::figure1_source(), "figure1");
}

TEST(LintScenarios, FanoutSweepIsClean) {
  for (int consumers : {1, 2, 4, 8}) {
    expect_lints_clean(netapp::fanout_source(consumers),
                       "fanout_" + std::to_string(consumers));
  }
}

TEST(LintScenarios, IpForwardingIsClean) {
  expect_lints_clean(netapp::ip_forwarding_source(), "ip_forwarding");
}

}  // namespace
}  // namespace hicsync
