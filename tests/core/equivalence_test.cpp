// Cross-cutting equivalence properties over randomized programs:
//  * the two memory organizations compute identical results (they differ
//    in timing/area, never in values);
//  * operation chaining (the scheduler) preserves semantics;
//  * inferred dependencies behave exactly like explicit pragmas.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/compiler.h"
#include "support/rng.h"

namespace hicsync::core {
namespace {

/// Deterministic random fanout program: one producer computing a chain of
/// arithmetic on locals, N consumers each applying a random operation to
/// the shared value.
std::string random_program(support::Rng& rng, int consumers) {
  std::string src = "thread p () {\n  int data, t0, t1;\n";
  src += "  t0 = " + std::to_string(rng.next_range(1, 100)) + ";\n";
  src += "  t1 = t0 * " + std::to_string(rng.next_range(2, 9)) + " + " +
         std::to_string(rng.next_range(0, 50)) + ";\n";
  src += "  #consumer{m";
  for (int i = 0; i < consumers; ++i) {
    src += ", [c" + std::to_string(i) + ",v" + std::to_string(i) + "]";
  }
  src += "}\n  data = t1 ^ " + std::to_string(rng.next_range(0, 255)) +
         ";\n}\n";
  const char* ops[] = {"+", "*", "^", "-", "&", "|"};
  for (int i = 0; i < consumers; ++i) {
    std::string n = std::to_string(i);
    std::string op = ops[rng.next_below(6)];
    src += "thread c" + n + " () {\n  int v" + n +
           ";\n  #producer{m, [p,data]}\n  v" + n + " = data " + op + " " +
           std::to_string(rng.next_range(1, 64)) + ";\n}\n";
  }
  return src;
}

std::map<std::string, std::uint64_t> run_and_collect(
    const std::string& src, const CompileOptions& options, int consumers) {
  auto r = Compiler(options).compile(src);
  EXPECT_TRUE(r->ok()) << r->diags().str();
  auto sim = r->make_simulator();
  EXPECT_TRUE(sim->run_until_passes(1, 2000));
  std::map<std::string, std::uint64_t> values;
  for (int i = 0; i < consumers; ++i) {
    std::string t = "c" + std::to_string(i);
    values[t] = sim->register_value(t, "v" + std::to_string(i));
  }
  return values;
}

class RandomProgramEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramEquivalence, OrganizationsComputeSameValues) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const int consumers = static_cast<int>(rng.next_range(2, 6));
  const std::string src = random_program(rng, consumers);

  CompileOptions arb;
  arb.organization = sim::OrgKind::Arbitrated;
  CompileOptions ev;
  ev.organization = sim::OrgKind::EventDriven;
  auto a = run_and_collect(src, arb, consumers);
  auto b = run_and_collect(src, ev, consumers);
  EXPECT_EQ(a, b) << src;
  // And the values are nonzero-ish sanity: at least one consumer saw data.
  bool any = false;
  for (const auto& [t, v] : a) any |= (v != 0);
  EXPECT_TRUE(any);
}

TEST_P(RandomProgramEquivalence, ChainingPreservesSemantics) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const int consumers = static_cast<int>(rng.next_range(2, 5));
  const std::string src = random_program(rng, consumers);

  CompileOptions plain;
  CompileOptions chained;
  chained.schedule.chain_states = true;
  auto a = run_and_collect(src, plain, consumers);
  auto b = run_and_collect(src, chained, consumers);
  EXPECT_EQ(a, b) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Range(1, 9));

TEST(Equivalence, InferenceMatchesExplicitPragmasEndToEnd) {
  // The same computation written with pragmas vs inferred: identical
  // consumer results and identical controller structure.
  const char* with_pragmas = R"(
    thread p () {
      int data;
      #consumer{m, [c0,v0], [c1,v1]}
      data = f();
    }
    thread c0 () {
      int v0;
      #producer{m, [p,data]}
      v0 = data + 1;
    }
    thread c1 () {
      int v1;
      #producer{m, [p,data]}
      v1 = data + 2;
    }
  )";
  const char* without_pragmas = R"(
    thread p () { int data; data = f(); }
    thread c0 () { int v0; v0 = data + 1; }
    thread c1 () { int v1; v1 = data + 2; }
  )";
  auto run = [](const char* src, bool infer) {
    CompileOptions options;
    options.infer_dependencies = infer;
    auto r = Compiler(options).compile(src);
    EXPECT_TRUE(r->ok()) << r->diags().str();
    auto sim = r->make_simulator();
    sim->externs().register_fn("f", [](const auto&) { return 500u; });
    EXPECT_TRUE(sim->run_until_passes(1, 1000));
    return std::pair{sim->register_value("c0", "v0"),
                     sim->register_value("c1", "v1")};
  };
  auto a = run(with_pragmas, false);
  auto b = run(without_pragmas, true);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.first, 501u);
  EXPECT_EQ(a.second, 502u);
}

TEST(Equivalence, ChainingNeverSlowsSimulation) {
  support::Rng rng(42);
  for (int trial = 0; trial < 3; ++trial) {
    const int consumers = 3;
    const std::string src = random_program(rng, consumers);
    CompileOptions plain;
    CompileOptions chained;
    chained.schedule.chain_states = true;
    auto rp = Compiler(plain).compile(src);
    auto rc = Compiler(chained).compile(src);
    ASSERT_TRUE(rp->ok());
    ASSERT_TRUE(rc->ok());
    auto sp = rp->make_simulator();
    auto sc = rc->make_simulator();
    ASSERT_TRUE(sp->run_until_passes(1, 2000));
    ASSERT_TRUE(sc->run_until_passes(1, 2000));
    EXPECT_LE(sc->cycle(), sp->cycle()) << src;
  }
}

}  // namespace
}  // namespace hicsync::core
