#include "core/tbgen.h"

#include <gtest/gtest.h>

#include "netapp/scenarios.h"

namespace hicsync::core {
namespace {

TEST(TestbenchGen, ArbitratedBundleContainsDutAndChecks) {
  auto r = Compiler().compile(netapp::figure1_source());
  ASSERT_TRUE(r->ok());
  std::string bundle = generate_controller_testbench(*r);
  EXPECT_NE(bundle.find("module memorg_bram0 ("), std::string::npos);
  EXPECT_NE(bundle.find("module tb_memorg_bram0;"), std::string::npos);
  EXPECT_NE(bundle.find("memorg_bram0 dut ("), std::string::npos);
  // The exchange exercises produce + both consumers: grant/valid checks
  // for every pseudo-port appear among the expectations.
  EXPECT_NE(bundle.find("d_grant0"), std::string::npos);
  EXPECT_NE(bundle.find("c_valid0"), std::string::npos);
  EXPECT_NE(bundle.find("c_valid1"), std::string::npos);
  EXPECT_NE(bundle.find("PASS"), std::string::npos);
}

TEST(TestbenchGen, EventDrivenBundle) {
  CompileOptions options;
  options.organization = sim::OrgKind::EventDriven;
  auto r = Compiler(options).compile(netapp::figure1_source());
  ASSERT_TRUE(r->ok());
  std::string bundle = generate_controller_testbench(*r);
  EXPECT_NE(bundle.find("p_grant0"), std::string::npos);
  EXPECT_NE(bundle.find("ev_c0"), std::string::npos);
  EXPECT_NE(bundle.find("PASS"), std::string::npos);
}

TEST(TestbenchGen, CoversEveryDependency) {
  // Two dependencies on one BRAM: the trace exercises both base addresses.
  const char* src = R"(
    thread p () {
      int a, b;
      #consumer{d1, [q,u]}
      a = 1;
      #consumer{d2, [q,v]}
      b = 2;
    }
    thread q () {
      int u, v;
      #producer{d1, [p,a]}
      u = a;
      #producer{d2, [p,b]}
      v = b;
    }
  )";
  for (sim::OrgKind kind :
       {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
    CompileOptions options;
    options.organization = kind;
    auto r = Compiler(options).compile(src);
    ASSERT_TRUE(r->ok()) << r->diags().str();
    std::string bundle = generate_controller_testbench(*r);
    // Two produced values c0de and c0df are driven.
    EXPECT_NE(bundle.find("64'hc0de"), std::string::npos)
        << sim::to_string(kind);
    EXPECT_NE(bundle.find("64'hc0df"), std::string::npos)
        << sim::to_string(kind);
  }
}

TEST(TestbenchGen, UnknownBramThrows) {
  auto r = Compiler().compile(netapp::figure1_source());
  ASSERT_TRUE(r->ok());
  EXPECT_THROW((void)generate_controller_testbench(*r, 42),
               std::runtime_error);
}

}  // namespace
}  // namespace hicsync::core
