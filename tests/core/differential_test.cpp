// Differential test between the two memory organizations (§3.1 vs §3.2):
// the same program compiled for the arbitrated and the event-driven
// controllers must compute identical register values and complete the same
// dependency rounds with the same consumer sets — timing differs, the
// synchronization semantics must not. Runs on the shipped examples so the
// artifacts users see are the ones verified.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.h"

#ifndef HICSYNC_EXAMPLES_DIR
#error "HICSYNC_EXAMPLES_DIR must point at the examples/ directory"
#endif

namespace hicsync::core {
namespace {

std::string read_example(const std::string& name) {
  std::ifstream in(std::string(HICSYNC_EXAMPLES_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "cannot open example " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct RunOutcome {
  std::uint64_t cycles = 0;
  // thread -> var -> final value.
  std::map<std::string, std::map<std::string, std::uint64_t>> regs;
  // Completed rounds as (dep, sorted consumer names), in completion order.
  std::vector<std::pair<std::string, std::vector<std::string>>> rounds;
};

// Deterministic externs: value depends only on the function name and its
// arguments, so any cross-organization divergence is a controller bug.
void register_externs(sim::SystemSim& simulator,
                      const std::vector<std::string>& fns) {
  std::uint64_t salt = 1;
  for (const std::string& fn : fns) {
    const std::uint64_t k = salt++;
    simulator.externs().register_fn(
        fn, [k](const std::vector<std::uint64_t>& args) {
          std::uint64_t v = 1000 * k;
          for (std::uint64_t a : args) v = v * 31 + a;
          return v;
        });
  }
}

RunOutcome run(const std::string& source, sim::OrgKind kind,
               const std::vector<std::string>& fns,
               const std::map<std::string, std::vector<std::string>>& vars,
               int passes) {
  CompileOptions options;
  options.organization = kind;
  auto result = Compiler(options).compile(source);
  EXPECT_TRUE(result->ok()) << result->diags().str();
  auto simulator = result->make_simulator();
  register_externs(*simulator, fns);
  EXPECT_TRUE(simulator->run_until_passes(passes, 100000))
      << simulator->stall_report();

  RunOutcome out;
  out.cycles = simulator->cycle();
  for (const auto& [thread, names] : vars) {
    for (const std::string& var : names) {
      out.regs[thread][var] = simulator->register_value(thread, var);
    }
  }
  for (const auto& r : simulator->rounds()) {
    std::vector<std::string> consumers;
    for (const auto& [consumer, cycle] : r.consume_cycles) {
      consumers.push_back(consumer);
    }
    std::sort(consumers.begin(), consumers.end());
    out.rounds.emplace_back(r.dep_id, std::move(consumers));
  }
  return out;
}

void expect_equivalent(const RunOutcome& arb, const RunOutcome& ev,
                       int passes) {
  // Identical final register values, thread by thread.
  EXPECT_EQ(arb.regs, ev.regs);

  // Identical per-dependency round sequences: the k-th completed round of
  // each dependency has the same consumer set in both organizations. The
  // simulation stops as soon as every thread reaches `passes`, so rounds
  // past that point may be caught mid-flight — only the first `passes`
  // fully-consumed rounds per dependency are deterministic; the tail is
  // timing, not semantics.
  auto by_dep = [passes](const RunOutcome& o) {
    std::map<std::string, std::vector<std::vector<std::string>>> m;
    for (const auto& [dep, consumers] : o.rounds) {
      if (consumers.empty()) continue;  // round still open at stop
      auto& list = m[dep];
      if (list.size() < static_cast<std::size_t>(passes)) {
        list.push_back(consumers);
      }
    }
    return m;
  };
  auto arb_by_dep = by_dep(arb);
  auto ev_by_dep = by_dep(ev);
  EXPECT_EQ(arb_by_dep, ev_by_dep);
  for (const auto& [dep, list] : arb_by_dep) {
    EXPECT_EQ(list.size(), static_cast<std::size_t>(passes)) << dep;
  }
}

TEST(DifferentialOrgTest, Fig1Example) {
  const std::string source = read_example("fig1.hic");
  // Only register variables are inspectable; x1 lives in the shared BRAM.
  const std::vector<std::string> fns = {"f", "g", "h"};
  const std::map<std::string, std::vector<std::string>> vars = {
      {"t2", {"y1"}}, {"t3", {"z1"}}};
  RunOutcome arb = run(source, sim::OrgKind::Arbitrated, fns, vars, 1);
  RunOutcome ev = run(source, sim::OrgKind::EventDriven, fns, vars, 1);
  expect_equivalent(arb, ev, 1);
  // The produced value actually flowed: consumers saw t1's x1.
  EXPECT_NE(arb.regs["t2"]["y1"], 0u);
  EXPECT_EQ(arb.rounds.front().first, "mt1");
}

TEST(DifferentialOrgTest, PipelineExample) {
  const std::string source = read_example("pipeline.hic");
  // hdr and meta are the produced (memory-resident) variables; the
  // register-resident consumers downstream expose the flowed values.
  const std::vector<std::string> fns = {"f", "g", "f2", "g2", "h2"};
  const std::map<std::string, std::vector<std::string>> vars = {
      {"parse", {"h"}}, {"act", {"m", "verdict"}}};
  RunOutcome arb = run(source, sim::OrgKind::Arbitrated, fns, vars, 1);
  RunOutcome ev = run(source, sim::OrgKind::EventDriven, fns, vars, 1);
  expect_equivalent(arb, ev, 1);
  // Both dependencies completed a round in both organizations.
  std::set<std::string> deps;
  for (const auto& [dep, consumers] : arb.rounds) deps.insert(dep);
  EXPECT_EQ(deps, (std::set<std::string>{"m_hdr", "m_meta"}));
}

}  // namespace
}  // namespace hicsync::core
