// Differential test between the two memory organizations (§3.1 vs §3.2):
// the same program compiled for the arbitrated and the event-driven
// controllers must compute identical register values and complete the same
// dependency rounds with the same consumer sets — timing differs, the
// synchronization semantics must not. Runs on the shipped examples so the
// artifacts users see are the ones verified.
//
// Equivalence is decided by the hic-diff alignment engine: each run is
// captured on the trace bus and reduced to semantic streams (dependency
// rounds, FSM-state sequences), and a mismatch fails with the engine's
// first-divergence forensics record — which stream diverged, both keys,
// and a raw-event context window from each run — instead of a bare
// container assert.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "diffview/align.h"
#include "diffview/bundle.h"
#include "trace/bus.h"

#ifndef HICSYNC_EXAMPLES_DIR
#error "HICSYNC_EXAMPLES_DIR must point at the examples/ directory"
#endif

namespace hicsync::core {
namespace {

std::string read_source(const std::string& dir, const std::string& name) {
  std::ifstream in(dir + "/" + name);
  EXPECT_TRUE(in.good()) << "cannot open " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string read_example(const std::string& name) {
  return read_source(HICSYNC_EXAMPLES_DIR, name);
}

std::string read_fixture(const std::string& name) {
  return read_source(std::string(HICSYNC_EXAMPLES_DIR) +
                         "/../tests/verify/fixtures",
                     name);
}

struct RunOutcome {
  bool converged = false;
  std::uint64_t cycles = 0;
  // thread -> var -> final value.
  std::map<std::string, std::map<std::string, std::uint64_t>> regs;
  // Completed rounds as (dep, sorted consumer names), in completion order.
  std::vector<std::pair<std::string, std::vector<std::string>>> rounds;
  // Full trace capture, for the alignment engine.
  std::vector<diffview::CapturedEvent> events;
};

// Deterministic externs: value depends only on the function name and its
// arguments, so any cross-organization divergence is a controller bug.
void register_externs(sim::SystemSim& simulator,
                      const std::vector<std::string>& fns) {
  std::uint64_t salt = 1;
  for (const std::string& fn : fns) {
    const std::uint64_t k = salt++;
    simulator.externs().register_fn(
        fn, [k](const std::vector<std::uint64_t>& args) {
          std::uint64_t v = 1000 * k;
          for (std::uint64_t a : args) v = v * 31 + a;
          return v;
        });
  }
}

RunOutcome run(const std::string& source, sim::OrgKind kind,
               const std::vector<std::string>& fns,
               const std::map<std::string, std::vector<std::string>>& vars,
               int passes, bool expect_converged = true,
               std::uint64_t max_cycles = 100000) {
  CompileOptions options;
  options.organization = kind;
  auto result = Compiler(options).compile(source);
  EXPECT_TRUE(result->ok()) << result->diags().str();
  auto simulator = result->make_simulator();
  register_externs(*simulator, fns);

  trace::TraceBus bus;
  diffview::BundleCaptureSink capture;
  bus.attach(&capture);
  simulator->set_trace(&bus);

  RunOutcome out;
  out.converged = simulator->run_until_passes(passes, max_cycles);
  out.cycles = simulator->cycle();
  bus.finish(out.cycles);
  if (expect_converged) {
    EXPECT_TRUE(out.converged) << simulator->stall_report();
  }
  for (const auto& [thread, names] : vars) {
    for (const std::string& var : names) {
      out.regs[thread][var] = simulator->register_value(thread, var);
    }
  }
  for (const auto& r : simulator->rounds()) {
    std::vector<std::string> consumers;
    for (const auto& [consumer, cycle] : r.consume_cycles) {
      consumers.push_back(consumer);
    }
    std::sort(consumers.begin(), consumers.end());
    out.rounds.emplace_back(r.dep_id, std::move(consumers));
  }
  out.events = capture.events();
  return out;
}

void expect_equivalent(const RunOutcome& arb, const RunOutcome& ev,
                       int passes) {
  // Identical final register values, thread by thread.
  EXPECT_EQ(arb.regs, ev.regs);

  // Semantic trace alignment. The simulation stops as soon as every
  // thread reaches `passes`, so activity past that point (a next round
  // caught mid-flight, the first states of a next pass) is timing, not
  // semantics — tail_insensitive drops it and caps each dependency at
  // its first `passes` completed rounds.
  diffview::AlignOptions options;
  options.tail_insensitive = true;
  options.rounds_per_dep = passes;
  const diffview::AlignResult aligned =
      diffview::align(arb.events, ev.events, options);
  EXPECT_TRUE(aligned.equivalent) << aligned.forensics_text();

  // Every dependency actually completed its `passes` rounds (the aligner
  // would also pass on two equally-empty captures).
  for (const diffview::Stream& s : diffview::extract_streams(arb.events)) {
    if (s.cls != diffview::StreamClass::DepRound) continue;
    int complete = 0;
    for (const diffview::KeyedEntry& e : s.entries) {
      if (e.key.find("(round incomplete)") == std::string::npos) ++complete;
    }
    EXPECT_GE(complete, passes) << s.id;
  }
}

TEST(DifferentialOrgTest, Fig1Example) {
  const std::string source = read_example("fig1.hic");
  // Only register variables are inspectable; x1 lives in the shared BRAM.
  const std::vector<std::string> fns = {"f", "g", "h"};
  const std::map<std::string, std::vector<std::string>> vars = {
      {"t2", {"y1"}}, {"t3", {"z1"}}};
  RunOutcome arb = run(source, sim::OrgKind::Arbitrated, fns, vars, 1);
  RunOutcome ev = run(source, sim::OrgKind::EventDriven, fns, vars, 1);
  expect_equivalent(arb, ev, 1);
  // The produced value actually flowed: consumers saw t1's x1.
  EXPECT_NE(arb.regs["t2"]["y1"], 0u);
  EXPECT_EQ(arb.rounds.front().first, "mt1");
}

TEST(DifferentialOrgTest, PipelineExample) {
  const std::string source = read_example("pipeline.hic");
  // hdr and meta are the produced (memory-resident) variables; the
  // register-resident consumers downstream expose the flowed values.
  const std::vector<std::string> fns = {"f", "g", "f2", "g2", "h2"};
  const std::map<std::string, std::vector<std::string>> vars = {
      {"parse", {"h"}}, {"act", {"m", "verdict"}}};
  RunOutcome arb = run(source, sim::OrgKind::Arbitrated, fns, vars, 1);
  RunOutcome ev = run(source, sim::OrgKind::EventDriven, fns, vars, 1);
  expect_equivalent(arb, ev, 1);
  // Both dependencies completed a round in both organizations.
  std::set<std::string> deps;
  for (const auto& [dep, consumers] : arb.rounds) deps.insert(dep);
  EXPECT_EQ(deps, (std::set<std::string>{"m_hdr", "m_meta"}));
}

// A seeded bug must not merely fail — it must produce a forensics record
// naming the first diverging stream with context from both runs. The
// ed_slot_order fixture diverges between the organizations on dependency
// d1's round sequence.
TEST(DifferentialOrgTest, SeededBugYieldsForensics) {
  const std::string source = read_fixture("ed_slot_order.hic");
  RunOutcome arb = run(source, sim::OrgKind::Arbitrated, {}, {}, 1,
                       /*expect_converged=*/false, /*max_cycles=*/2000);
  RunOutcome ev = run(source, sim::OrgKind::EventDriven, {}, {}, 1,
                      /*expect_converged=*/false, /*max_cycles=*/2000);
  const diffview::AlignResult aligned = diffview::align(arb.events, ev.events);
  ASSERT_FALSE(aligned.equivalent);
  ASSERT_NE(aligned.first(), nullptr);
  EXPECT_EQ(aligned.first()->stream, "dep/d1");

  const std::string forensics = aligned.forensics_text();
  EXPECT_NE(forensics.find("trace alignment: DIVERGED"), std::string::npos)
      << forensics;
  EXPECT_NE(forensics.find("first divergence: stream dep/d1"),
            std::string::npos)
      << forensics;
  // Both raw-event context windows made it into the record.
  EXPECT_NE(forensics.find("context A:"), std::string::npos) << forensics;
  EXPECT_NE(forensics.find("context B:"), std::string::npos) << forensics;
}

}  // namespace
}  // namespace hicsync::core
