#include "fpga/timing.h"

#include <gtest/gtest.h>

#include "memorg/arbitrated.h"
#include "memorg/eventdriven.h"
#include "../memorg/memorg_test_util.h"

namespace hicsync::fpga {
namespace {

TEST(Timing, FmaxDecreasesWithLevels) {
  MapResult shallow;
  shallow.logic_levels = 3;
  MapResult deep;
  deep.logic_levels = 10;
  EXPECT_GT(estimate_timing(shallow, false).fmax_mhz,
            estimate_timing(deep, false).fmax_mhz);
}

TEST(Timing, CarryChainAddsDelay) {
  MapResult base;
  base.logic_levels = 4;
  MapResult with_carry = base;
  with_carry.max_carry_bits = 32;
  EXPECT_GT(estimate_timing(base, false).fmax_mhz,
            estimate_timing(with_carry, false).fmax_mhz);
}

TEST(Timing, BramLaunchSlowerThanRegisterLaunch) {
  MapResult r;
  r.logic_levels = 4;
  r.bram_blocks = 1;
  EXPECT_LT(estimate_timing(r, /*launches_from_bram=*/true).fmax_mhz,
            estimate_timing(r, /*launches_from_bram=*/false).fmax_mhz);
}

TEST(Timing, MeetsChecksTarget) {
  MapResult r;
  r.logic_levels = 2;
  TimingResult t = estimate_timing(r, false);
  EXPECT_TRUE(t.meets(100.0));
  EXPECT_FALSE(t.meets(t.fmax_mhz + 1.0));
}

TEST(Timing, ZeroLevelPathIsFinite) {
  MapResult r;
  TimingResult t = estimate_timing(r, false);
  EXPECT_GT(t.fmax_mhz, 0.0);
}

// --- The §4 shape properties, measured on the generated controllers. ---

struct OrgNumbers {
  MapResult map;
  TimingResult timing;
};

OrgNumbers arb_numbers(int nc) {
  rtl::Design d;
  rtl::Module& m = memorg::generate_arbitrated(
      d, memorg::testing::arb_config(nc), "arb");
  OrgNumbers n;
  n.map = TechMapper().map(m);
  n.timing = estimate_timing(n.map, false);
  return n;
}

OrgNumbers ev_numbers(int nc) {
  rtl::Design d;
  rtl::Module& m = memorg::generate_eventdriven(
      d, memorg::testing::ev_config(nc), "ev");
  OrgNumbers n;
  n.map = TechMapper().map(m);
  n.timing = estimate_timing(n.map, false);
  return n;
}

TEST(PaperShape, Table1LutGrowsWithConsumersFfConstant) {
  auto n2 = arb_numbers(2);
  auto n4 = arb_numbers(4);
  auto n8 = arb_numbers(8);
  EXPECT_LT(n2.map.luts, n4.map.luts);
  EXPECT_LT(n4.map.luts, n8.map.luts);
  EXPECT_EQ(n2.map.ffs, n4.map.ffs);
  EXPECT_EQ(n4.map.ffs, n8.map.ffs);
  // The paper's baseline has 66 FFs; ours should be in that neighbourhood.
  EXPECT_GT(n2.map.ffs, 40);
  EXPECT_LT(n2.map.ffs, 100);
}

TEST(PaperShape, Table2LutGrowsWithConsumersFfConstant) {
  auto n2 = ev_numbers(2);
  auto n4 = ev_numbers(4);
  auto n8 = ev_numbers(8);
  EXPECT_LT(n2.map.luts, n4.map.luts);
  EXPECT_LT(n4.map.luts, n8.map.luts);
  EXPECT_EQ(n2.map.ffs, n4.map.ffs);
  EXPECT_EQ(n4.map.ffs, n8.map.ffs);
}

TEST(PaperShape, EventDrivenSmallerThanArbitrated) {
  // The event-driven organization has no CAM and no arbiter: fewer LUTs at
  // every consumer count.
  for (int nc : {2, 4, 8}) {
    EXPECT_LT(ev_numbers(nc).map.luts, arb_numbers(nc).map.luts)
        << "nc=" << nc;
  }
}

TEST(PaperShape, FmaxDecreasesWithConsumers) {
  auto a2 = arb_numbers(2);
  auto a4 = arb_numbers(4);
  auto a8 = arb_numbers(8);
  EXPECT_GT(a2.timing.fmax_mhz, a4.timing.fmax_mhz);
  EXPECT_GT(a4.timing.fmax_mhz, a8.timing.fmax_mhz);
  auto e2 = ev_numbers(2);
  auto e4 = ev_numbers(4);
  auto e8 = ev_numbers(8);
  EXPECT_GT(e2.timing.fmax_mhz, e4.timing.fmax_mhz);
  EXPECT_GT(e4.timing.fmax_mhz, e8.timing.fmax_mhz);
}

TEST(PaperShape, EventDrivenFasterThanArbitrated) {
  // §4: event-driven achieved 177/136/129 MHz vs arbitrated 158/130/~125.
  for (int nc : {2, 4, 8}) {
    EXPECT_GT(ev_numbers(nc).timing.fmax_mhz,
              arb_numbers(nc).timing.fmax_mhz)
        << "nc=" << nc;
  }
}

TEST(PaperShape, SerialScanSavesLutsOverCam) {
  // The ablation of bench_deplist_scaling: with many entries, the serial
  // scan shares comparators.
  auto with_entries = [](bool cam) {
    memorg::ArbitratedConfig cfg = memorg::testing::arb_config(2);
    cfg.use_cam = cam;
    for (int e = 1; e < 16; ++e) {
      memorg::DepEntry entry;
      entry.id = "d" + std::to_string(e);
      entry.base_address = static_cast<std::uint32_t>(16 + 4 * e);
      entry.dependency_number = 2;
      entry.consumer_ports = {0, 1};
      cfg.deps.push_back(entry);
    }
    rtl::Design d;
    rtl::Module& m = memorg::generate_arbitrated(d, cfg, "arb");
    return TechMapper().map(m);
  };
  MapResult cam = with_entries(true);
  MapResult scan = with_entries(false);
  EXPECT_LT(scan.luts, cam.luts);
}

}  // namespace
}  // namespace hicsync::fpga
