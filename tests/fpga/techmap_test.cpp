#include "fpga/techmap.h"

#include <gtest/gtest.h>

#include "rtl/builder.h"

namespace hicsync::fpga {
namespace {

TEST(TechMap, EmptyModuleMapsToNothing) {
  rtl::Module m("t");
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.luts, 0);
  EXPECT_EQ(r.ffs, 0);
  EXPECT_EQ(r.slices, 0);
  EXPECT_EQ(r.logic_levels, 0);
}

TEST(TechMap, SingleGateIsOneLut) {
  rtl::Module m("t");
  int a = m.add_input("a", 1);
  int b = m.add_input("b", 1);
  int y = m.add_output("y", 1);
  m.assign(y, rtl::ebin(rtl::RtlOp::And, rtl::eref(a, 1), rtl::eref(b, 1)));
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.luts, 1);
  EXPECT_EQ(r.logic_levels, 1);
}

TEST(TechMap, FanoutOneChainMergesIntoOneLut) {
  // (a & b) | c — three inputs, one LUT4.
  rtl::Module m("t");
  int a = m.add_input("a", 1);
  int b = m.add_input("b", 1);
  int c = m.add_input("c", 1);
  int y = m.add_output("y", 1);
  m.assign(y, rtl::ebin(rtl::RtlOp::Or,
                        rtl::ebin(rtl::RtlOp::And, rtl::eref(a, 1),
                                  rtl::eref(b, 1)),
                        rtl::eref(c, 1)));
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.luts, 1);
  EXPECT_EQ(r.logic_levels, 1);
}

TEST(TechMap, FiveInputConeNeedsTwoLuts) {
  // ((a&b)|(c&d)) ^ e — five inputs.
  rtl::Module m("t");
  int a = m.add_input("a", 1);
  int b = m.add_input("b", 1);
  int c = m.add_input("c", 1);
  int d = m.add_input("d", 1);
  int e = m.add_input("e", 1);
  int y = m.add_output("y", 1);
  m.assign(
      y,
      rtl::ebin(rtl::RtlOp::Xor,
                rtl::ebin(rtl::RtlOp::Or,
                          rtl::ebin(rtl::RtlOp::And, rtl::eref(a, 1),
                                    rtl::eref(b, 1)),
                          rtl::ebin(rtl::RtlOp::And, rtl::eref(c, 1),
                                    rtl::eref(d, 1))),
                rtl::eref(e, 1)));
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.luts, 2);
  EXPECT_EQ(r.logic_levels, 2);
}

TEST(TechMap, WideBitwiseOpCostsOneLutPerBit) {
  rtl::Module m("t");
  int a = m.add_input("a", 16);
  int b = m.add_input("b", 16);
  int y = m.add_output("y", 16);
  m.assign(y, rtl::ebin(rtl::RtlOp::Xor, rtl::eref(a, 16), rtl::eref(b, 16)));
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.luts, 16);
  EXPECT_EQ(r.logic_levels, 1);
}

TEST(TechMap, AdderUsesCarryChain) {
  rtl::Module m("t");
  int a = m.add_input("a", 8);
  int b = m.add_input("b", 8);
  int y = m.add_output("y", 8);
  m.assign(y, rtl::ebin(rtl::RtlOp::Add, rtl::eref(a, 8), rtl::eref(b, 8)));
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.luts, 8);
  EXPECT_EQ(r.carry_luts, 8);
  // One logic level plus carry bits, not 8 levels.
  EXPECT_EQ(r.logic_levels, 1);
  EXPECT_EQ(r.max_carry_bits, 8);
}

TEST(TechMap, EqualityAgainstConstantIsCheap) {
  rtl::Module m("t");
  int a = m.add_input("a", 8);
  int y = m.add_output("y", 1);
  m.assign(y, rtl::ebin(rtl::RtlOp::Eq, rtl::eref(a, 8),
                        rtl::econst(0x3C, 8)));
  MapResult r = TechMapper().map(m);
  // 8 bit tests fold into a small reduce tree: at most 3 LUTs, 2 levels.
  EXPECT_LE(r.luts, 3);
  EXPECT_LE(r.logic_levels, 2);
  EXPECT_GE(r.luts, 1);
}

TEST(TechMap, MuxCostsOneLutPerBit) {
  rtl::Module m("t");
  int s = m.add_input("s", 1);
  int a = m.add_input("a", 8);
  int b = m.add_input("b", 8);
  int y = m.add_output("y", 8);
  m.assign(y, rtl::emux(rtl::eref(s, 1), rtl::eref(a, 8), rtl::eref(b, 8)));
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.luts, 8);
  EXPECT_EQ(r.logic_levels, 1);
}

TEST(TechMap, ConstantFoldingEliminatesLogic) {
  rtl::Module m("t");
  int a = m.add_input("a", 8);
  int y = m.add_output("y", 8);
  // a & 0 = 0; 0 | a = a: no LUTs at all.
  m.assign(y, rtl::ebin(rtl::RtlOp::Or,
                        rtl::ebin(rtl::RtlOp::And, rtl::eref(a, 8),
                                  rtl::econst(0, 8)),
                        rtl::eref(a, 8)));
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.luts, 0);
}

TEST(TechMap, FlipFlopsCounted) {
  rtl::Module m("t");
  (void)m.clk();
  (void)m.rst();
  int q = m.add_reg("q", 12);
  m.seq(q, rtl::econst(0, 12));
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.ffs, 12);
  EXPECT_EQ(r.slices, 6);  // 2 FFs per slice
}

TEST(TechMap, SlicePackingUsesMaxOfLutAndFf) {
  rtl::Module m("t");
  (void)m.clk();
  (void)m.rst();
  int a = m.add_input("a", 8);
  int b = m.add_input("b", 8);
  int y = m.add_output("y", 8);
  m.assign(y, rtl::ebin(rtl::RtlOp::Xor, rtl::eref(a, 8), rtl::eref(b, 8)));
  int q = m.add_reg("q", 2);
  m.seq(q, rtl::econst(0, 2));
  MapResult r = TechMapper().map(m);
  // 8 LUTs / 2 per slice = 4 slices dominate over 1 FF slice.
  EXPECT_EQ(r.slices, 4);
}

TEST(TechMap, MemoryCountsBramBlocks) {
  rtl::Module m("t");
  (void)m.clk();
  m.add_memory("ram", 32, 512);
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.bram_blocks, 1);

  rtl::Module m2("t2");
  (void)m2.clk();
  m2.add_memory("big", 36, 1024);
  EXPECT_EQ(TechMapper().map(m2).bram_blocks, 2);
}

TEST(TechMap, ShiftByConstantIsFree) {
  rtl::Module m("t");
  int a = m.add_input("a", 8);
  int y = m.add_output("y", 8);
  m.assign(y, rtl::ebin(rtl::RtlOp::Shl, rtl::eref(a, 8),
                        rtl::econst(3, 8)));
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.luts, 0);
}

TEST(TechMap, NonConstantShiftRejected) {
  rtl::Module m("t");
  int a = m.add_input("a", 8);
  int s = m.add_input("s", 3);
  int y = m.add_output("y", 8);
  m.assign(y, rtl::ebin(rtl::RtlOp::Shl, rtl::eref(a, 8), rtl::eref(s, 8)));
  EXPECT_THROW((void)TechMapper().map(m), std::runtime_error);
}

TEST(TechMap, DeeperConesIncreaseLevels) {
  // A chain of dependent wide ANDs with fanout > 1 cannot fully merge.
  rtl::Module m("t");
  int a = m.add_input("a", 1);
  int prev = a;
  for (int i = 0; i < 6; ++i) {
    int in = m.add_input("x" + std::to_string(i), 1);
    int w = m.add_wire("w" + std::to_string(i), 1);
    m.assign(w, rtl::ebin(rtl::RtlOp::And, rtl::eref(prev, 1),
                          rtl::eref(in, 1)));
    // Give every intermediate an extra consumer to defeat merging.
    int probe = m.add_output("p" + std::to_string(i), 1);
    m.assign(probe, rtl::eref(w, 1));
    prev = w;
  }
  MapResult r = TechMapper().map(m);
  EXPECT_EQ(r.logic_levels, 6);
  EXPECT_EQ(r.luts, 6);
}

}  // namespace
}  // namespace hicsync::fpga
