#include "hic/sema.h"

#include <gtest/gtest.h>

#include "hic_test_util.h"

namespace hicsync::hic {
namespace {

using testing::compile;
using testing::kFigure1;

TEST(Sema, Figure1BindsOneDependency) {
  auto c = compile(kFigure1);
  ASSERT_TRUE(c->ok) << c->diags.str();
  const auto& deps = c->sema->dependencies();
  ASSERT_EQ(deps.size(), 1u);
  const Dependency& d = deps[0];
  EXPECT_EQ(d.id, "mt1");
  EXPECT_EQ(d.producer_thread, "t1");
  ASSERT_NE(d.shared_var, nullptr);
  EXPECT_EQ(d.shared_var->qualified_name(), "t1.x1");
  EXPECT_TRUE(d.shared_var->is_shared());
  EXPECT_EQ(d.dependency_number(), 2);
}

TEST(Sema, Figure1ConsumerOrderIsPragmaOrder) {
  auto c = compile(kFigure1);
  ASSERT_TRUE(c->ok) << c->diags.str();
  const Dependency& d = c->sema->dependencies()[0];
  ASSERT_EQ(d.consumers.size(), 2u);
  EXPECT_EQ(d.consumers[0].thread, "t2");
  EXPECT_EQ(d.consumers[0].dest->qualified_name(), "t2.y1");
  EXPECT_EQ(d.consumers[1].thread, "t3");
  EXPECT_EQ(d.consumers[1].dest->qualified_name(), "t3.z1");
}

TEST(Sema, CrossThreadReadResolvesThroughPragma) {
  auto c = compile(kFigure1);
  ASSERT_TRUE(c->ok) << c->diags.str();
  // In t2, `x1` inside g(x1, y2) must resolve to t1's symbol.
  const ThreadDecl& t2 = c->program.threads[1];
  const Expr& call = *t2.body[0]->value;
  ASSERT_EQ(call.kind, ExprKind::Call);
  const Expr& x1 = *call.operands[0];
  ASSERT_NE(x1.symbol, nullptr);
  EXPECT_EQ(x1.symbol->thread(), "t1");
}

TEST(Sema, CrossThreadReadWithoutPragmaIsError) {
  auto c = compile(R"(
    thread t1 () { int x1; x1 = 1; }
    thread t2 () { int y1; y1 = x1 + 1; }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("unknown variable 'x1'"));
}

TEST(Sema, WritingRemoteVariableIsError) {
  auto c = compile(R"(
    thread t1 () {
      int x1;
      #consumer{m, [t2,y1]}
      x1 = 1;
    }
    thread t2 () {
      int y1;
      #producer{m, [t1,x1]}
      x1 = y1;
    }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("only the producer thread writes"));
}

TEST(Sema, DuplicateVariableDiagnosed) {
  auto c = compile("thread t () { int x; char x; x = 1; }");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("duplicate variable"));
}

TEST(Sema, DuplicateThreadDiagnosed) {
  auto c = compile(R"(
    thread t () { int x; x = 1; }
    thread t () { int y; y = 2; }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("duplicate thread name"));
}

TEST(Sema, UnknownTypeDiagnosed) {
  auto c = compile("thread t () { mystery x; x = 1; }");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("unknown type"));
}

TEST(Sema, UnionMemberAccessTypes) {
  auto c = compile(R"(
    union word {
      bits<16> half;
      int full;
    }
    thread t () {
      word w;
      int x;
      x = w.full;
      w.half = 3;
    }
  )");
  EXPECT_TRUE(c->ok) << c->diags.str();
}

TEST(Sema, UnknownUnionMemberDiagnosed) {
  auto c = compile(R"(
    union word { int full; }
    thread t () { word w; int x; x = w.nope; }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("no member 'nope'"));
}

TEST(Sema, MemberAccessOnNonUnionDiagnosed) {
  auto c = compile("thread t () { int x, y; x = y.f; }");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("non-union"));
}

TEST(Sema, IndexingNonArrayDiagnosed) {
  auto c = compile("thread t () { int x, y; x = y[0]; }");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("not an array"));
}

TEST(Sema, BreakOutsideLoopDiagnosed) {
  auto c = compile("thread t () { int x; x = 0; break; }");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("'break' outside"));
}

TEST(Sema, DuplicateCaseArmDiagnosed) {
  auto c = compile(R"(
    thread t () {
      int s, x;
      case (s) { when 1: x = 1; when 1: x = 2; }
    }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("duplicate case arm"));
}

TEST(Sema, MessageArithmeticDiagnosed) {
  auto c = compile("thread t () { message m; int x; x = m + 1; }");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("arithmetic on a message"));
}

TEST(Sema, MessageAssignFromIntDiagnosed) {
  auto c = compile("thread t () { message m; m = 42; }");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("non-message value"));
}

TEST(Sema, MissingConsumerSideDiagnosed) {
  // #consumer in producer lists t2, but t2 has no matching #producer pragma.
  auto c = compile(R"(
    thread t1 () {
      int x1;
      #consumer{m, [t2,y1]}
      x1 = 1;
    }
    thread t2 () { int y1; y1 = 0; }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("no #producer"));
}

TEST(Sema, MissingProducerSideDiagnosed) {
  auto c = compile(R"(
    thread t1 () { int x1; x1 = 1; }
    thread t2 () {
      int y1;
      #producer{m, [t1,x1]}
      y1 = x1;
    }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("no #consumer pragma"));
}

TEST(Sema, UnlistedConsumerDiagnosed) {
  // t3 declares #producer{m,...} but the producing pragma only lists t2.
  auto c = compile(R"(
    thread t1 () {
      int x1;
      #consumer{m, [t2,y1]}
      x1 = 1;
    }
    thread t2 () {
      int y1;
      #producer{m, [t1,x1]}
      y1 = x1;
    }
    thread t3 () {
      int z1;
      #producer{m, [t1,x1]}
      z1 = x1;
    }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("does not list it"));
}

TEST(Sema, SelfDependencyDiagnosed) {
  auto c = compile(R"(
    thread t1 () {
      int x1, y1;
      #consumer{m, [t1,y1]}
      x1 = 1;
    }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("self-dependency"));
}

TEST(Sema, UnknownConsumerThreadDiagnosed) {
  auto c = compile(R"(
    thread t1 () {
      int x1;
      #consumer{m, [ghost,y1]}
      x1 = 1;
    }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("unknown consumer thread"));
}

TEST(Sema, MultipleProducerPragmasForOneIdDiagnosed) {
  auto c = compile(R"(
    thread t1 () {
      int x1;
      #consumer{m, [t3,z1]}
      x1 = 1;
    }
    thread t2 () {
      int x2;
      #consumer{m, [t3,z1]}
      x2 = 1;
    }
    thread t3 () {
      int z1;
      #producer{m, [t1,x1]}
      z1 = x1;
    }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("multiple #consumer pragmas"));
}

TEST(Sema, TwoIndependentDependencies) {
  auto c = compile(R"(
    thread p () {
      int a, b;
      #consumer{da, [c1,u]}
      a = 1;
      #consumer{db, [c2,v]}
      b = 2;
    }
    thread c1 () {
      int u;
      #producer{da, [p,a]}
      u = a;
    }
    thread c2 () {
      int v;
      #producer{db, [p,b]}
      v = b;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  EXPECT_EQ(c->sema->dependencies().size(), 2u);
}

TEST(Sema, MultipleDependenciesOnSameVariable) {
  // The paper: "the additional identifier, mt1, ... is used to identify
  // multiple dependencies on same variable in threads."
  auto c = compile(R"(
    thread p () {
      int a;
      #consumer{d1, [c1,u]}
      a = 1;
      #consumer{d2, [c2,v]}
      a = 2;
    }
    thread c1 () {
      int u;
      #producer{d1, [p,a]}
      u = a;
    }
    thread c2 () {
      int v;
      #producer{d2, [p,a]}
      v = a;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  const auto& deps = c->sema->dependencies();
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_EQ(deps[0].shared_var, deps[1].shared_var);
}

TEST(Sema, EightConsumerFanout) {
  // The paper's largest scenario: 1 producer, 8 consumers.
  std::string src = R"(
    thread p () {
      int data;
      #consumer{m, [c0,v0], [c1,v1], [c2,v2], [c3,v3], [c4,v4], [c5,v5], [c6,v6], [c7,v7]}
      data = f();
    }
  )";
  for (int i = 0; i < 8; ++i) {
    std::string n = std::to_string(i);
    src += "thread c" + n + " () { int v" + n + "; #producer{m, [p,data]} v" +
           n + " = g(data); }\n";
  }
  auto c = compile(src);
  ASSERT_TRUE(c->ok) << c->diags.str();
  ASSERT_EQ(c->sema->dependencies().size(), 1u);
  EXPECT_EQ(c->sema->dependencies()[0].dependency_number(), 8);
}

TEST(Sema, SymbolStorageBits) {
  auto c = compile(R"(
    thread t () {
      int a;
      char ch;
      bits<12> b;
      int arr[16];
      a = 0;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  EXPECT_EQ(c->sema->lookup("t", "a")->storage_bits(), 32u);
  EXPECT_EQ(c->sema->lookup("t", "ch")->storage_bits(), 8u);
  EXPECT_EQ(c->sema->lookup("t", "b")->storage_bits(), 12u);
  EXPECT_EQ(c->sema->lookup("t", "arr")->storage_bits(), 512u);
}

TEST(Sema, LookupUnknownReturnsNull) {
  auto c = compile("thread t () { int x; x = 1; }");
  ASSERT_TRUE(c->ok);
  EXPECT_EQ(c->sema->lookup("t", "nope"), nullptr);
  EXPECT_EQ(c->sema->lookup("ghost", "x"), nullptr);
}

}  // namespace
}  // namespace hicsync::hic
