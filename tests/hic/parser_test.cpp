#include "hic/parser.h"

#include <gtest/gtest.h>

#include "hic/printer.h"
#include "hic_test_util.h"

namespace hicsync::hic {
namespace {

using testing::compile;
using testing::kFigure1;

TEST(Parser, Figure1ParsesCleanly) {
  auto c = compile(kFigure1);
  EXPECT_TRUE(c->ok) << c->diags.str();
  ASSERT_EQ(c->program.threads.size(), 3u);
  EXPECT_EQ(c->program.threads[0].name, "t1");
  EXPECT_EQ(c->program.threads[1].name, "t2");
  EXPECT_EQ(c->program.threads[2].name, "t3");
}

TEST(Parser, Figure1PragmaShape) {
  auto c = compile(kFigure1);
  const ThreadDecl& t1 = c->program.threads[0];
  ASSERT_EQ(t1.body.size(), 1u);
  ASSERT_EQ(t1.body[0]->pragmas.size(), 1u);
  const Pragma& p = t1.body[0]->pragmas[0];
  EXPECT_EQ(p.kind, PragmaKind::Consumer);
  EXPECT_EQ(p.dep_id, "mt1");
  ASSERT_EQ(p.endpoints.size(), 2u);
  EXPECT_EQ(p.endpoints[0].thread, "t2");
  EXPECT_EQ(p.endpoints[0].var, "y1");
  EXPECT_EQ(p.endpoints[1].thread, "t3");
  EXPECT_EQ(p.endpoints[1].var, "z1");
}

TEST(Parser, Declarations) {
  auto c = compile(R"(
    thread t () {
      int a, b, c;
      char ch;
      message m;
      bits<12> addr;
      int table[64];
      a = 1;
    }
  )");
  EXPECT_TRUE(c->ok) << c->diags.str();
  const ThreadDecl& t = c->program.threads[0];
  ASSERT_EQ(t.decls.size(), 7u);
  EXPECT_EQ(t.decls[0].name, "a");
  EXPECT_EQ(t.decls[3].type_name, "char");
  EXPECT_EQ(t.decls[5].bits_width, 12);
  EXPECT_EQ(t.decls[6].array_size, 64u);
}

TEST(Parser, TypedefAndUnion) {
  auto c = compile(R"(
    type ipaddr = bits<32>;
    union header {
      ipaddr src;
      ipaddr dst;
      bits<16> len;
    }
    thread t () {
      header h;
      ipaddr a;
      a = h.src;
    }
  )");
  EXPECT_TRUE(c->ok) << c->diags.str();
  ASSERT_EQ(c->program.typedefs.size(), 2u);
  EXPECT_FALSE(c->program.typedefs[0].is_union);
  EXPECT_TRUE(c->program.typedefs[1].is_union);
  EXPECT_EQ(c->program.typedefs[1].members.size(), 3u);
}

TEST(Parser, InterfaceAndConstantPragmas) {
  auto c = compile(R"(
    #interface{gige0, GigabitEthernet}
    #constant{host_addr, 0xC0A80101}
    thread t () { int x; x = 0; }
  )");
  EXPECT_TRUE(c->ok) << c->diags.str();
  ASSERT_EQ(c->program.interfaces.size(), 1u);
  EXPECT_EQ(c->program.interfaces[0].name, "gige0");
  EXPECT_EQ(c->program.interfaces[0].value, "GigabitEthernet");
  ASSERT_EQ(c->program.constants.size(), 1u);
  EXPECT_EQ(c->program.constants[0].int_value, 0xC0A80101u);
}

TEST(Parser, ControlFlowStatements) {
  auto c = compile(R"(
    thread t () {
      int i, x, state;
      if (x > 3) x = 1; else x = 2;
      case (state) {
        when 0: x = 10;
        when 1: x = 20; state = 0;
        default: x = 0;
      }
      for (i = 0; i < 8; i = i + 1) x = x + i;
      while (x != 0) { x = x - 1; if (x == 3) break; }
    }
  )");
  EXPECT_TRUE(c->ok) << c->diags.str();
  const ThreadDecl& t = c->program.threads[0];
  ASSERT_EQ(t.body.size(), 4u);
  EXPECT_EQ(t.body[0]->kind, StmtKind::If);
  EXPECT_EQ(t.body[1]->kind, StmtKind::Case);
  ASSERT_EQ(t.body[1]->arms.size(), 3u);
  EXPECT_TRUE(t.body[1]->arms[2].is_default);
  EXPECT_EQ(t.body[1]->arms[1].body.size(), 2u);
  EXPECT_EQ(t.body[2]->kind, StmtKind::For);
  EXPECT_EQ(t.body[3]->kind, StmtKind::While);
}

TEST(Parser, OperatorPrecedence) {
  auto c = compile("thread t () { int a, b, c; a = b + c * 2; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  const Stmt& s = *c->program.threads[0].body[0];
  ASSERT_EQ(s.value->kind, ExprKind::Binary);
  EXPECT_EQ(s.value->binary_op, BinaryOp::Add);
  EXPECT_EQ(s.value->operands[1]->binary_op, BinaryOp::Mul);
}

TEST(Parser, LeftAssociativity) {
  auto c = compile("thread t () { int a; a = a - 1 - 2; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  const Expr& e = *c->program.threads[0].body[0]->value;
  // (a - 1) - 2
  ASSERT_EQ(e.kind, ExprKind::Binary);
  EXPECT_EQ(e.operands[1]->kind, ExprKind::IntLit);
  EXPECT_EQ(e.operands[1]->int_value, 2u);
  EXPECT_EQ(e.operands[0]->kind, ExprKind::Binary);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  auto c = compile("thread t () { int a, b, c; a = (b + c) * 2; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  const Expr& e = *c->program.threads[0].body[0]->value;
  EXPECT_EQ(e.binary_op, BinaryOp::Mul);
  EXPECT_EQ(e.operands[0]->binary_op, BinaryOp::Add);
}

TEST(Parser, CallsWithArguments) {
  auto c = compile("thread t () { int x, y; x = f(y, 3, g());  }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  const Expr& e = *c->program.threads[0].body[0]->value;
  ASSERT_EQ(e.kind, ExprKind::Call);
  EXPECT_EQ(e.name, "f");
  ASSERT_EQ(e.operands.size(), 3u);
  EXPECT_EQ(e.operands[2]->kind, ExprKind::Call);
}

TEST(Parser, ArrayIndexingLvalueAndRvalue) {
  auto c = compile("thread t () { int tbl[8], i, x; tbl[i + 1] = tbl[x]; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  const Stmt& s = *c->program.threads[0].body[0];
  EXPECT_EQ(s.target->kind, ExprKind::Index);
  EXPECT_EQ(s.value->kind, ExprKind::Index);
}

TEST(Parser, MissingSemicolonDiagnosed) {
  auto c = compile("thread t () { int x; x = 1 }");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("expected"));
}

TEST(Parser, UnknownPragmaDiagnosed) {
  auto c = compile("#frobnicate{a, b}\nthread t () { int x; x = 0; }");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("unknown pragma"));
}

TEST(Parser, ProducerPragmaArityChecked) {
  auto c = compile(R"(
    thread t () {
      int x, y;
      #producer{m, [a,b], [c,d]}
      x = y;
    }
  )");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("exactly one"));
}

TEST(Parser, TopLevelDependencyPragmaRejected) {
  auto c = compile("#producer{m, [t,v]}\nthread t () { int v; v = 0; }");
  EXPECT_FALSE(c->ok);
  EXPECT_TRUE(c->diags.contains("inside a thread"));
}

TEST(Parser, RecoversAfterBadThread) {
  auto c = compile(R"(
    thread bad () { int x; x = ; }
    thread good () { int y; y = 1; }
  )");
  EXPECT_FALSE(c->ok);
  // The second thread still parsed.
  EXPECT_NE(c->program.find_thread("good"), nullptr);
}

TEST(Parser, PrintRoundTrip) {
  auto c1 = compile(kFigure1);
  ASSERT_TRUE(c1->ok) << c1->diags.str();
  std::string printed = print_program(c1->program);
  auto c2 = compile(printed);
  EXPECT_TRUE(c2->ok) << "printed:\n" << printed << "\n" << c2->diags.str();
  EXPECT_EQ(print_program(c2->program), printed);
}

TEST(Parser, PrintRoundTripControlFlow) {
  const char* src = R"(
    thread t () {
      int i, x, state;
      if (x > 3) { x = 1; } else { x = 2; }
      case (state) {
        when 0: x = 10;
        default: x = 0;
      }
      for (i = 0; i < 8; i = i + 1) { x = x + i; }
      while (x != 0) { x = x - 1; }
    }
  )";
  auto c1 = compile(src);
  ASSERT_TRUE(c1->ok) << c1->diags.str();
  std::string printed = print_program(c1->program);
  auto c2 = compile(printed);
  ASSERT_TRUE(c2->ok) << "printed:\n" << printed << "\n" << c2->diags.str();
  EXPECT_EQ(print_program(c2->program), printed);
}

}  // namespace
}  // namespace hicsync::hic
