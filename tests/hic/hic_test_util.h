// Shared helpers for frontend tests: parse + sema in one call, plus the
// paper's Figure 1 program as a canonical fixture.
#pragma once

#include <memory>
#include <string>

#include "hic/parser.h"
#include "hic/sema.h"
#include "support/diagnostics.h"

namespace hicsync::hic::testing {

/// The pseudo-example of the paper's Figure 1: thread t1 produces x1,
/// consumed by y1 in t2 and z1 in t3.
inline constexpr const char* kFigure1 = R"(
thread t1 () {
  int x1, xtmp, x2;
  #consumer{mt1, [t2,y1], [t3,z1]}
  x1 = f(xtmp, x2);
}
thread t2 () {
  int y1, y2;
  #producer{mt1, [t1,x1]}
  y1 = g(x1, y2);
}
thread t3 () {
  int z1, z2;
  #producer{mt1, [t1,x1]}
  z1 = h(x1, z2);
}
)";

/// Holds a compiled program with its diagnostics and analysis.
struct Compiled {
  support::DiagnosticEngine diags;
  Program program;
  std::unique_ptr<Sema> sema;
  bool ok = false;
};

inline std::unique_ptr<Compiled> compile(const std::string& source) {
  auto c = std::make_unique<Compiled>();
  c->program = parse_source(source, c->diags);
  c->sema = std::make_unique<Sema>(c->program, c->diags);
  c->ok = !c->diags.has_errors() && c->sema->run();
  return c;
}

}  // namespace hicsync::hic::testing
