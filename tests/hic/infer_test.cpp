#include "hic/infer.h"

#include <gtest/gtest.h>

#include "hic/parser.h"
#include "hic/sema.h"
#include "hic_test_util.h"

namespace hicsync::hic {
namespace {

/// Figure 1 with the pragmas removed — what §2 says use-def analysis can
/// recover.
constexpr const char* kFigure1NoPragmas = R"(
thread t1 () {
  int x1, xtmp, x2;
  x1 = f(xtmp, x2);
}
thread t2 () {
  int y1, y2;
  y1 = g(x1, y2);
}
thread t3 () {
  int z1, z2;
  z1 = h(x1, z2);
}
)";

struct Inferred {
  support::DiagnosticEngine diags;
  Program program;
  std::unique_ptr<Sema> sema;
  InferenceResult result;
  bool ok = false;
};

Inferred run_inference(const std::string& src) {
  Inferred r;
  r.program = parse_source(src, r.diags);
  EXPECT_FALSE(r.diags.has_errors()) << r.diags.str();
  r.result = infer_dependencies(r.program, r.diags);
  if (!r.diags.has_errors()) {
    r.sema = std::make_unique<Sema>(r.program, r.diags);
    r.ok = r.sema->run();
  }
  return r;
}

TEST(Infer, RecoversFigure1Dependency) {
  auto r = run_inference(kFigure1NoPragmas);
  ASSERT_TRUE(r.ok) << r.diags.str();
  EXPECT_EQ(r.result.inferred_dependencies, 1);
  EXPECT_EQ(r.result.consumer_endpoints, 2);
  ASSERT_EQ(r.sema->dependencies().size(), 1u);
  const Dependency& d = r.sema->dependencies()[0];
  EXPECT_EQ(d.producer_thread, "t1");
  EXPECT_EQ(d.shared_var->qualified_name(), "t1.x1");
  EXPECT_EQ(d.dependency_number(), 2);
}

TEST(Infer, MatchesExplicitPragmaResult) {
  auto inferred = run_inference(kFigure1NoPragmas);
  auto explicit_c = testing::compile(testing::kFigure1);
  ASSERT_TRUE(inferred.ok);
  ASSERT_TRUE(explicit_c->ok);
  const Dependency& a = inferred.sema->dependencies()[0];
  const Dependency& b = explicit_c->sema->dependencies()[0];
  EXPECT_EQ(a.producer_thread, b.producer_thread);
  EXPECT_EQ(a.dependency_number(), b.dependency_number());
  ASSERT_EQ(a.consumers.size(), b.consumers.size());
  for (std::size_t i = 0; i < a.consumers.size(); ++i) {
    EXPECT_EQ(a.consumers[i].thread, b.consumers[i].thread);
  }
}

TEST(Infer, ExplicitPragmasLeftUntouched) {
  auto r = run_inference(testing::kFigure1);
  ASSERT_TRUE(r.ok) << r.diags.str();
  EXPECT_EQ(r.result.inferred_dependencies, 0);
  ASSERT_EQ(r.sema->dependencies().size(), 1u);
  EXPECT_EQ(r.sema->dependencies()[0].id, "mt1");  // not auto_*
}

TEST(Infer, AmbiguousOwnerDiagnosed) {
  auto r = run_inference(R"(
    thread a () { int shared; shared = 1; }
    thread b () { int shared; shared = 2; }
    thread c () { int y; y = shared; }
  )");
  EXPECT_TRUE(r.diags.has_errors());
  EXPECT_TRUE(r.diags.contains("declared by multiple threads"));
}

TEST(Infer, MultipleWriteSitesDiagnosed) {
  auto r = run_inference(R"(
    thread p () {
      int v;
      v = 1;
      v = 2;
    }
    thread q () { int y; y = v; }
  )");
  EXPECT_TRUE(r.diags.has_errors());
  EXPECT_TRUE(r.diags.contains("several statements"));
}

TEST(Infer, NeverWrittenDiagnosed) {
  auto r = run_inference(R"(
    thread p () { int v, w; w = 3; }
    thread q () { int y; y = v; }
  )");
  EXPECT_TRUE(r.diags.has_errors());
  EXPECT_TRUE(r.diags.contains("never assigns"));
}

TEST(Infer, UnknownNameLeftToSema) {
  auto r = run_inference("thread t () { int y; y = ghost; }");
  // Inference passes (nothing to infer); Sema reports the unknown name.
  EXPECT_TRUE(r.diags.has_errors());
  EXPECT_TRUE(r.diags.contains("unknown variable"));
}

TEST(Infer, FanoutAcrossManyConsumers) {
  std::string src = "thread p () { int data; data = f(); }\n";
  for (int i = 0; i < 4; ++i) {
    std::string n = std::to_string(i);
    src += "thread c" + n + " () { int v" + n + "; v" + n +
           " = g(data); }\n";
  }
  auto r = run_inference(src);
  ASSERT_TRUE(r.ok) << r.diags.str();
  ASSERT_EQ(r.sema->dependencies().size(), 1u);
  EXPECT_EQ(r.sema->dependencies()[0].dependency_number(), 4);
}

TEST(Infer, ChainOfDependencies) {
  auto r = run_inference(R"(
    thread a () { int va; va = 1; }
    thread b () { int vb; vb = va + 1; }
    thread c () { int vc; vc = vb + 1; }
  )");
  ASSERT_TRUE(r.ok) << r.diags.str();
  EXPECT_EQ(r.sema->dependencies().size(), 2u);
}

}  // namespace
}  // namespace hicsync::hic
