#include "hic/lexer.h"

#include <gtest/gtest.h>

namespace hicsync::hic {
namespace {

std::vector<Token> lex(std::string_view src, support::DiagnosticEngine* out_diags = nullptr) {
  support::DiagnosticEngine diags;
  Lexer lexer(src, diags);
  auto tokens = lexer.lex_all();
  if (out_diags != nullptr) *out_diags = diags;
  EXPECT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.back().kind, TokenKind::EndOfFile);
  return tokens;
}

TEST(Lexer, EmptyInput) {
  auto t = lex("");
  EXPECT_EQ(t.size(), 1u);
}

TEST(Lexer, Keywords) {
  auto t = lex("thread int char message bits type union if else case when "
               "default for while break continue");
  ASSERT_EQ(t.size(), 17u);
  EXPECT_EQ(t[0].kind, TokenKind::KwThread);
  EXPECT_EQ(t[1].kind, TokenKind::KwInt);
  EXPECT_EQ(t[2].kind, TokenKind::KwChar);
  EXPECT_EQ(t[3].kind, TokenKind::KwMessage);
  EXPECT_EQ(t[4].kind, TokenKind::KwBits);
  EXPECT_EQ(t[5].kind, TokenKind::KwType);
  EXPECT_EQ(t[6].kind, TokenKind::KwUnion);
  EXPECT_EQ(t[7].kind, TokenKind::KwIf);
  EXPECT_EQ(t[8].kind, TokenKind::KwElse);
  EXPECT_EQ(t[9].kind, TokenKind::KwCase);
  EXPECT_EQ(t[10].kind, TokenKind::KwWhen);
  EXPECT_EQ(t[11].kind, TokenKind::KwDefault);
  EXPECT_EQ(t[12].kind, TokenKind::KwFor);
  EXPECT_EQ(t[13].kind, TokenKind::KwWhile);
  EXPECT_EQ(t[14].kind, TokenKind::KwBreak);
  EXPECT_EQ(t[15].kind, TokenKind::KwContinue);
}

TEST(Lexer, IdentifiersNotKeywords) {
  auto t = lex("threads int1 _case");
  EXPECT_EQ(t[0].kind, TokenKind::Identifier);
  EXPECT_EQ(t[0].text, "threads");
  EXPECT_EQ(t[1].kind, TokenKind::Identifier);
  EXPECT_EQ(t[2].kind, TokenKind::Identifier);
}

TEST(Lexer, DecimalLiteral) {
  auto t = lex("12345");
  EXPECT_EQ(t[0].kind, TokenKind::IntLiteral);
  EXPECT_EQ(t[0].int_value, 12345u);
}

TEST(Lexer, HexLiteral) {
  auto t = lex("0xC0A80101");
  EXPECT_EQ(t[0].int_value, 0xC0A80101u);
}

TEST(Lexer, BinaryLiteral) {
  auto t = lex("0b1011");
  EXPECT_EQ(t[0].int_value, 11u);
}

TEST(Lexer, DigitSeparators) {
  auto t = lex("1'000'000");
  EXPECT_EQ(t[0].int_value, 1000000u);
}

TEST(Lexer, CharLiterals) {
  auto t = lex(R"('a' '\n' '\\' '\0')");
  EXPECT_EQ(t[0].int_value, static_cast<std::uint64_t>('a'));
  EXPECT_EQ(t[1].int_value, static_cast<std::uint64_t>('\n'));
  EXPECT_EQ(t[2].int_value, static_cast<std::uint64_t>('\\'));
  EXPECT_EQ(t[3].int_value, 0u);
}

TEST(Lexer, TwoCharOperators) {
  auto t = lex("== != <= >= << >> && ||");
  EXPECT_EQ(t[0].kind, TokenKind::EqEq);
  EXPECT_EQ(t[1].kind, TokenKind::NotEq);
  EXPECT_EQ(t[2].kind, TokenKind::LessEq);
  EXPECT_EQ(t[3].kind, TokenKind::GreaterEq);
  EXPECT_EQ(t[4].kind, TokenKind::Shl);
  EXPECT_EQ(t[5].kind, TokenKind::Shr);
  EXPECT_EQ(t[6].kind, TokenKind::AmpAmp);
  EXPECT_EQ(t[7].kind, TokenKind::PipePipe);
}

TEST(Lexer, SingleCharOperatorsAndPunct) {
  auto t = lex("( ) { } [ ] , ; : . # = + - * / % & | ^ ~ ! < >");
  TokenKind expected[] = {
      TokenKind::LParen,  TokenKind::RParen,    TokenKind::LBrace,
      TokenKind::RBrace,  TokenKind::LBracket,  TokenKind::RBracket,
      TokenKind::Comma,   TokenKind::Semicolon, TokenKind::Colon,
      TokenKind::Dot,     TokenKind::Hash,      TokenKind::Assign,
      TokenKind::Plus,    TokenKind::Minus,     TokenKind::Star,
      TokenKind::Slash,   TokenKind::Percent,   TokenKind::Amp,
      TokenKind::Pipe,    TokenKind::Caret,     TokenKind::Tilde,
      TokenKind::Bang,    TokenKind::Less,      TokenKind::Greater,
  };
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(t[i].kind, expected[i]) << "token " << i;
  }
}

TEST(Lexer, LineComments) {
  auto t = lex("a // comment with = and ;\nb");
  ASSERT_GE(t.size(), 3u);
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
}

TEST(Lexer, BlockComments) {
  auto t = lex("a /* x\ny */ b");
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  support::DiagnosticEngine diags;
  lex("a /* never closed", &diags);
  EXPECT_TRUE(diags.contains("unterminated block comment"));
}

TEST(Lexer, TracksLineAndColumn) {
  auto t = lex("a\n  b");
  EXPECT_EQ(t[0].loc.line, 1u);
  EXPECT_EQ(t[0].loc.column, 1u);
  EXPECT_EQ(t[1].loc.line, 2u);
  EXPECT_EQ(t[1].loc.column, 3u);
}

TEST(Lexer, UnexpectedCharacterRecovers) {
  support::DiagnosticEngine diags;
  auto t = lex("a $ b", &diags);
  EXPECT_TRUE(diags.has_errors());
  // Both identifiers still lexed.
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
}

TEST(Lexer, UnterminatedCharLiteral) {
  support::DiagnosticEngine diags;
  lex("'a", &diags);
  EXPECT_TRUE(diags.contains("unterminated character literal"));
}

}  // namespace
}  // namespace hicsync::hic
