#include "cover/sink.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "trace/bus.h"

namespace hicsync::cover {
namespace {

// Compile → declare the model → run with a CoverageSink attached: the
// end-to-end loop `hicc --cover` drives, minus the CLI.
struct CoveredRun {
  std::unique_ptr<core::CompileResult> result;
  std::unique_ptr<sim::SystemSim> simulator;
  CoverageModel model;
  std::unique_ptr<CoverageSink> sink;
  trace::TraceBus bus;
};

std::unique_ptr<CoveredRun> run_covered(std::string_view source,
                                        sim::OrgKind org, int passes) {
  auto run = std::make_unique<CoveredRun>();
  core::CompileOptions options;
  options.organization = org;
  run->result = core::Compiler(options).compile(source);
  EXPECT_TRUE(run->result->ok()) << run->result->diags().str();

  const ModelInputs in =
      inputs_from(org, run->result->fsms(), run->result->memory_map(),
                  run->result->port_plans());
  declare_model(CoverRegistry::builtin(), in, run->model);
  run->sink = std::make_unique<CoverageSink>(run->model, in);

  run->simulator = run->result->make_simulator();
  run->bus.attach(run->sink.get());
  run->simulator->set_trace(&run->bus);
  EXPECT_TRUE(run->simulator->run_until_passes(passes, 10000));
  run->bus.finish(run->simulator->cycle());
  return run;
}

class SinkBothOrgs : public ::testing::TestWithParam<sim::OrgKind> {};

TEST_P(SinkBothOrgs, Figure1CoversEveryFsmStateAndNothingUnexpected) {
  auto run = run_covered(netapp::figure1_source(), GetParam(), 2);
  const std::string prefix = org_prefix(GetParam());

  // Figure 1 has no dead states: two passes must visit all of them.
  const Covergroup* states = run->model.find(prefix + ".fsm.state");
  ASSERT_NE(states, nullptr);
  std::string missing;
  for (const CoverBin* hole : states->holes()) missing += hole->name + " ";
  EXPECT_DOUBLE_EQ(states->coverage_pct(), 100.0) << "holes: " << missing;

  // Every thread completed a pass and every dependency round closed.
  const Covergroup* pass = run->model.find(prefix + ".thread.pass");
  ASSERT_NE(pass, nullptr);
  EXPECT_DOUBLE_EQ(pass->coverage_pct(), 100.0);
  const Covergroup* occupancy = run->model.find(prefix + ".deplist.occupancy");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_DOUBLE_EQ(occupancy->coverage_pct(), 100.0);

  // The sink must only ever hit bins declaration anticipated: an
  // unexpected count means the declared behavior space is wrong.
  for (const Covergroup* g : run->model.groups()) {
    EXPECT_EQ(g->unexpected(), 0u) << g->name();
  }
  EXPECT_GT(run->model.total_hit(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothOrgs, SinkBothOrgs,
                         ::testing::Values(sim::OrgKind::Arbitrated,
                                           sim::OrgKind::EventDriven));

TEST(CoverageSinkTest, ArbitratedFigure1ExercisesArbitrationBins) {
  auto run =
      run_covered(netapp::figure1_source(), sim::OrgKind::Arbitrated, 2);
  const Covergroup* arb = run->model.find("arbitrated.arb.sequence");
  ASSERT_NE(arb, nullptr);
  // Both consumers win the shared port at some point; t2 and t3 request
  // simultaneously, so round-robin alternates and the fairness window
  // (last two winners are {C0, C1}) must close.
  EXPECT_GT(arb->find("bram0.win.C0")->hits, 0u);
  EXPECT_GT(arb->find("bram0.win.C1")->hits, 0u);
  EXPECT_GT(arb->find("bram0.fair_window")->hits, 0u);
}

TEST(CoverageSinkTest, EventDrivenFigure1VisitsEveryScheduleSlot) {
  auto run =
      run_covered(netapp::figure1_source(), sim::OrgKind::EventDriven, 2);
  const Covergroup* slots = run->model.find("eventdriven.sched.slot");
  ASSERT_NE(slots, nullptr);
  // The modulo schedule rotates through all slots regardless of demand.
  EXPECT_DOUBLE_EQ(slots->coverage_pct(), 100.0);
  const Covergroup* arb = run->model.find("eventdriven.arb.sequence");
  EXPECT_EQ(arb, nullptr);  // not declared for this organization
}

// The deliberately-unreachable fixture (tests/cover/fixtures/unreachable.hic
// drives the CLI variant): an `if (0)` body synthesizes states that are
// declared but can never execute, so coverage must report holes rather
// than silently reaching 100%.
constexpr std::string_view kUnreachableSource = R"(
thread p () {
  int d, tmp, t2;
  #consumer{md, [c,v]}
  d = f(tmp, t2);
  if (0) {
    d = f(d, tmp);
    d = f(d, tmp);
  }
}
thread c () {
  int v, w;
  #producer{md, [p,d]}
  v = g(d, w);
}
)";

TEST(CoverageSinkTest, UnreachableStatesStayHoles) {
  auto run = run_covered(kUnreachableSource, sim::OrgKind::Arbitrated, 2);
  const Covergroup* states = run->model.find("arbitrated.fsm.state");
  ASSERT_NE(states, nullptr);
  EXPECT_LT(states->coverage_pct(), 100.0);
  auto holes = states->holes();
  ASSERT_FALSE(holes.empty());
  for (const CoverBin* hole : holes) {
    // Only the dead branch's states may be missing.
    EXPECT_EQ(hole->name.rfind("p.S", 0), 0u) << hole->name;
  }
  // Reachable machinery is still covered.
  const Covergroup* pass = run->model.find("arbitrated.thread.pass");
  ASSERT_NE(pass, nullptr);
  EXPECT_DOUBLE_EQ(pass->coverage_pct(), 100.0);
}

}  // namespace
}  // namespace hicsync::cover
