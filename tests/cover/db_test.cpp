#include "cover/db.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "support/json.h"

namespace hicsync::cover {
namespace {

CoverageModel small_model() {
  CoverageModel m;
  Covergroup& g = m.group("arbitrated.fsm.state", "every FSM state");
  g.declare("t1.S0");
  g.declare("t1.S1");
  g.declare("t1.S2");
  EXPECT_TRUE(m.hit("arbitrated.fsm.state", "t1.S0", 12));
  EXPECT_TRUE(m.hit("arbitrated.fsm.state", "t1.S1"));
  m.group("arbitrated.thread.pass", "passes").declare("t1");
  return m;
}

TEST(CoverageDbTest, RecordRoundTripsIncludingZeroHitBins) {
  const CoverageModel m = small_model();
  const std::string record = to_record(m, "fig1@arbitrated", "arbitrated");
  EXPECT_EQ(record.find('\n'), std::string::npos) << "JSONL: one line";
  EXPECT_NE(record.find("\"schema\""), std::string::npos);
  EXPECT_NE(record.find("fig1@arbitrated"), std::string::npos);

  CoverageModel loaded;
  std::string error;
  int records = 0;
  ASSERT_TRUE(load_records(record, &loaded, &error, &records)) << error;
  EXPECT_EQ(records, 1);
  EXPECT_EQ(loaded.total_bins(), m.total_bins());
  EXPECT_EQ(loaded.total_hit(), m.total_hit());
  const Covergroup* g = loaded.find("arbitrated.fsm.state");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->description(), "every FSM state");
  EXPECT_EQ(g->find("t1.S0")->hits, 12u);
  // The zero-hit bin survived: holes stay visible after a round trip.
  ASSERT_NE(g->find("t1.S2"), nullptr);
  EXPECT_EQ(g->find("t1.S2")->hits, 0u);
  ASSERT_EQ(g->holes().size(), 1u);
}

TEST(CoverageDbTest, MultipleRecordsMergeBySummingHits) {
  const CoverageModel m = small_model();
  const std::string rec = to_record(m, "r", "arbitrated");
  // Blank lines and CRLF endings are tolerated between records.
  const std::string text = rec + "\r\n\n" + rec + "\n";
  CoverageModel loaded;
  std::string error;
  int records = 0;
  ASSERT_TRUE(load_records(text, &loaded, &error, &records)) << error;
  EXPECT_EQ(records, 2);
  EXPECT_EQ(loaded.find("arbitrated.fsm.state")->find("t1.S0")->hits, 24u);
  EXPECT_EQ(loaded.total_bins(), m.total_bins());  // union, not duplication
}

TEST(CoverageDbTest, UnexpectedCountsSurviveAndSum) {
  CoverageModel m;
  m.group("g").declare("a");
  EXPECT_FALSE(m.hit("g", "stray"));
  const std::string rec = to_record(m, "r", "arbitrated");
  CoverageModel loaded;
  std::string error;
  ASSERT_TRUE(load_records(rec + "\n" + rec, &loaded, &error)) << error;
  EXPECT_EQ(loaded.find("g")->unexpected(), 2u);
}

TEST(CoverageDbTest, SchemaSkewIsRejectedWithoutMutating) {
  const std::string rec =
      to_record(small_model(), "r", "arbitrated");
  std::string skewed = rec;
  const std::size_t pos = skewed.find("\"schema\": 1");
  ASSERT_NE(pos, std::string::npos) << rec;
  skewed.replace(pos, std::strlen("\"schema\": 1"), "\"schema\": 99");

  CoverageModel out;
  std::string error;
  support::JsonValue value;
  ASSERT_TRUE(support::parse_json(skewed, &value, &error)) << error;
  EXPECT_FALSE(record_to_model(value, &out, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
  EXPECT_EQ(out.total_bins(), 0u) << "failed load must not half-apply";
}

TEST(CoverageDbTest, MalformedRecordsCarryTheLineNumber) {
  CoverageModel out;
  std::string error;
  EXPECT_FALSE(load_records("{\"schema\":1}\nnot json\n", &out, &error));
  EXPECT_NE(error.find("line"), std::string::npos) << error;
}

TEST(CoverageDbTest, MissingFileFailsWithThePathInTheError) {
  CoverageModel out;
  std::string error;
  EXPECT_FALSE(load_file("/nonexistent/cover.jsonl", &out, &error));
  EXPECT_NE(error.find("/nonexistent/cover.jsonl"), std::string::npos)
      << error;
}

}  // namespace
}  // namespace hicsync::cover
