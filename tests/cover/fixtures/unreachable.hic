// Coverage-hole fixture: the if (0) body synthesizes FSM states that are
// statically declared but dynamically unreachable, so fsm.state coverage
// over this program can never reach 100% — the hole report must say so.
thread p () {
  int d, tmp, t2;
  #consumer{md, [c,v]}
  d = f(tmp, t2);
  if (0) {
    d = f(d, tmp);
    d = f(d, tmp);
  }
}
thread c () {
  int v, w;
  #producer{md, [p,d]}
  v = g(d, w);
}
