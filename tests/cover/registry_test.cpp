#include "cover/registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/compiler.h"
#include "netapp/scenarios.h"

namespace hicsync::cover {
namespace {

ModelInputs figure1_inputs(const core::CompileResult& result,
                           sim::OrgKind org) {
  return inputs_from(org, result.fsms(), result.memory_map(),
                     result.port_plans());
}

std::unique_ptr<core::CompileResult> compile_figure1(sim::OrgKind org) {
  core::CompileOptions options;
  options.organization = org;
  auto result = core::Compiler(options).compile(netapp::figure1_source());
  EXPECT_TRUE(result->ok()) << result->diags().str();
  return result;
}

TEST(CoverRegistryTest, BuiltinCatalogueIsComplete) {
  const CoverRegistry& reg = CoverRegistry::builtin();
  EXPECT_EQ(reg.specs().size(), 10u);
  for (const auto& info : reg.infos()) {
    EXPECT_NE(info.id, nullptr);
    EXPECT_GT(std::string(info.description).size(), 0u) << info.id;
    // A spec cannot be exclusive to both organizations at once.
    EXPECT_FALSE(info.arbitrated_only && info.eventdriven_only) << info.id;
  }
  ASSERT_NE(reg.find("fsm.state"), nullptr);
  ASSERT_NE(reg.find("arb.sequence"), nullptr);
  EXPECT_TRUE(reg.find("arb.sequence")->info().arbitrated_only);
  ASSERT_NE(reg.find("sched.slot"), nullptr);
  EXPECT_TRUE(reg.find("sched.slot")->info().eventdriven_only);
  EXPECT_EQ(reg.find("no.such.group"), nullptr);
}

TEST(CoverRegistryTest, AppliesFollowsOrganizationRestriction) {
  const CoverRegistry& reg = CoverRegistry::builtin();
  EXPECT_TRUE(reg.find("fsm.state")->applies(sim::OrgKind::Arbitrated));
  EXPECT_TRUE(reg.find("fsm.state")->applies(sim::OrgKind::EventDriven));
  EXPECT_TRUE(reg.find("arb.sequence")->applies(sim::OrgKind::Arbitrated));
  EXPECT_FALSE(reg.find("arb.sequence")->applies(sim::OrgKind::EventDriven));
  EXPECT_FALSE(reg.find("sched.slot")->applies(sim::OrgKind::Arbitrated));
  EXPECT_TRUE(reg.find("sched.slot")->applies(sim::OrgKind::EventDriven));
}

TEST(QualifiedNameTest, PrefixesTheOrganization) {
  EXPECT_EQ(qualified_name(sim::OrgKind::Arbitrated, "fsm.state"),
            "arbitrated.fsm.state");
  EXPECT_EQ(qualified_name(sim::OrgKind::EventDriven, "sched.slot"),
            "eventdriven.sched.slot");
}

TEST(BinNamesTest, Conventions) {
  EXPECT_EQ(bins::port(0, trace::PortKind::C, 1), "bram0.C1");
  EXPECT_EQ(bins::port(2, trace::PortKind::D, 0), "bram2.D0");
  EXPECT_EQ(bins::port(1, trace::PortKind::A, -1), "bram1.A");
  EXPECT_EQ(bins::fsm_state("t1", 4), "t1.S4");
  EXPECT_EQ(bins::fsm_transition("t1", 0, 3), "t1.S0toS3");
}

TEST(BinNamesTest, LatencyBucketBoundaries) {
  EXPECT_EQ(bins::latency_bucket(0), "le2");
  EXPECT_EQ(bins::latency_bucket(2), "le2");
  EXPECT_EQ(bins::latency_bucket(3), "le4");
  EXPECT_EQ(bins::latency_bucket(8), "le8");
  EXPECT_EQ(bins::latency_bucket(64), "le64");
  EXPECT_EQ(bins::latency_bucket(65), "gt64");
  EXPECT_EQ(bins::latency_bucket(100000), "gt64");
}

// Declaration is exhaustive and up front: every FSM state of every thread
// gets a bin before any simulation runs — that is what makes never-executed
// states observable as holes.
TEST(DeclareModelTest, ArbitratedFigure1DeclaresTheFullSpace) {
  auto result = compile_figure1(sim::OrgKind::Arbitrated);
  CoverageModel model;
  declare_model(CoverRegistry::builtin(),
                figure1_inputs(*result, sim::OrgKind::Arbitrated), model);

  const Covergroup* states = model.find("arbitrated.fsm.state");
  ASSERT_NE(states, nullptr);
  std::size_t fsm_states = 0;
  for (const synth::ThreadFsm& fsm : result->fsms()) {
    fsm_states += fsm.states().size();
  }
  EXPECT_EQ(states->bins().size(), fsm_states);
  EXPECT_NE(states->find("t1.S0"), nullptr);

  // Port × stall-cause cross is organization-aware: the arbitrated
  // controller can lose arbitration but never waits on a schedule slot.
  const Covergroup* stalls = model.find("arbitrated.port.stall");
  ASSERT_NE(stalls, nullptr);
  EXPECT_NE(stalls->find("bram0.C0.arbitration-loss"), nullptr);
  EXPECT_NE(stalls->find("bram0.C1.dependency-not-produced"), nullptr);
  EXPECT_NE(stalls->find("bram0.D0.arbitration-loss"), nullptr);
  EXPECT_EQ(stalls->find("bram0.C0.not-our-slot"), nullptr);

  // Two consumers: win singles, all four ordered pairs, one fair window.
  const Covergroup* arb = model.find("arbitrated.arb.sequence");
  ASSERT_NE(arb, nullptr);
  EXPECT_NE(arb->find("bram0.win.C0"), nullptr);
  EXPECT_NE(arb->find("bram0.win.C1"), nullptr);
  EXPECT_NE(arb->find("bram0.pair.C0toC1"), nullptr);
  EXPECT_NE(arb->find("bram0.pair.C1toC1"), nullptr);
  EXPECT_NE(arb->find("bram0.fair_window"), nullptr);

  // Restart edge is declared alongside the static transitions.
  const Covergroup* trans = model.find("arbitrated.fsm.transition");
  ASSERT_NE(trans, nullptr);
  EXPECT_NE(trans->find("t1.restart"), nullptr);

  // No event-driven group may leak into an arbitrated model.
  EXPECT_EQ(model.find("eventdriven.fsm.state"), nullptr);
  EXPECT_EQ(model.find("arbitrated.sched.slot"), nullptr);
}

TEST(DeclareModelTest, EventDrivenFigure1DeclaresSlotsNotArbitration) {
  auto result = compile_figure1(sim::OrgKind::EventDriven);
  CoverageModel model;
  declare_model(CoverRegistry::builtin(),
                figure1_inputs(*result, sim::OrgKind::EventDriven), model);

  EXPECT_EQ(model.find("eventdriven.arb.sequence"), nullptr);
  const Covergroup* slots = model.find("eventdriven.sched.slot");
  ASSERT_NE(slots, nullptr);
  // mt1: 1 producer slot + 2 consumer slots.
  EXPECT_EQ(slots->bins().size(), 3u);
  EXPECT_NE(slots->find("bram0.slot0"), nullptr);
  EXPECT_NE(slots->find("bram0.slot2"), nullptr);

  // The static schedule cannot lose arbitration; it waits on its slot.
  const Covergroup* stalls = model.find("eventdriven.port.stall");
  ASSERT_NE(stalls, nullptr);
  EXPECT_NE(stalls->find("bram0.C0.not-our-slot"), nullptr);
  EXPECT_EQ(stalls->find("bram0.C0.arbitration-loss"), nullptr);
}

}  // namespace
}  // namespace hicsync::cover
