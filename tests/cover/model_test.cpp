#include "cover/model.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/compiler.h"
#include "netapp/scenarios.h"

namespace hicsync::cover {
namespace {

TEST(CovergroupTest, DeclareHitAndCoverage) {
  Covergroup g("g", "a test group");
  g.declare("a");
  g.declare("b");
  g.declare("a");  // idempotent: no duplicate bin
  ASSERT_EQ(g.bins().size(), 2u);
  EXPECT_EQ(g.hit_bins(), 0u);
  EXPECT_DOUBLE_EQ(g.coverage_pct(), 0.0);

  EXPECT_TRUE(g.hit("a"));
  EXPECT_TRUE(g.hit("a", 3));
  EXPECT_EQ(g.find("a")->hits, 4u);
  EXPECT_EQ(g.hit_bins(), 1u);
  EXPECT_DOUBLE_EQ(g.coverage_pct(), 50.0);

  // Hits in declaration percentage count bins, not totals.
  EXPECT_TRUE(g.hit("b"));
  EXPECT_DOUBLE_EQ(g.coverage_pct(), 100.0);
}

TEST(CovergroupTest, UndeclaredHitIsCountedNotAbsorbed) {
  Covergroup g("g", "");
  g.declare("a");
  EXPECT_FALSE(g.hit("zzz"));
  EXPECT_EQ(g.unexpected(), 1u);
  EXPECT_EQ(g.bins().size(), 1u);  // no bin materialized for the stray hit
  EXPECT_EQ(g.find("zzz"), nullptr);
}

TEST(CovergroupTest, HolesInDeclarationOrder) {
  Covergroup g("g", "");
  g.declare("z");
  g.declare("m");
  g.declare("a");
  EXPECT_TRUE(g.hit("m"));
  auto holes = g.holes();
  ASSERT_EQ(holes.size(), 2u);
  EXPECT_EQ(holes[0]->name, "z");
  EXPECT_EQ(holes[1]->name, "a");
}

TEST(CovergroupTest, EmptyGroupIsVacuouslyCovered) {
  Covergroup g("g", "");
  EXPECT_DOUBLE_EQ(g.coverage_pct(), 100.0);
  EXPECT_TRUE(g.holes().empty());
}

TEST(CoverageModelTest, GroupsCreateOnDemandAndSortByName) {
  CoverageModel m;
  m.group("b.group", "second");
  m.group("a.group", "first");
  // Re-asking must return the same group, not reset it.
  m.group("a.group").declare("bin");
  auto groups = m.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0]->name(), "a.group");
  EXPECT_EQ(groups[1]->name(), "b.group");
  EXPECT_EQ(groups[0]->description(), "first");
  ASSERT_NE(m.find("a.group"), nullptr);
  EXPECT_EQ(m.find("a.group")->bins().size(), 1u);
  EXPECT_EQ(m.find("nope"), nullptr);
}

TEST(CoverageModelTest, HitConvenienceAndTotals) {
  CoverageModel m;
  m.group("g").declare("a");
  m.group("g").declare("b");
  m.group("h").declare("c");
  EXPECT_TRUE(m.hit("g", "a"));
  EXPECT_FALSE(m.hit("missing.group", "a"));
  EXPECT_EQ(m.total_bins(), 3u);
  EXPECT_EQ(m.total_hit(), 1u);
  EXPECT_NEAR(m.coverage_pct(), 100.0 / 3.0, 1e-9);
}

TEST(CoverageModelTest, MergeSumsHitsAndUnionsBins) {
  CoverageModel a;
  a.group("g", "desc").declare("x");
  a.group("g").declare("y");
  EXPECT_TRUE(a.hit("g", "x", 2));

  CoverageModel b;
  b.group("g").declare("x");
  b.group("g").declare("z");  // new bin for the union
  EXPECT_TRUE(b.hit("g", "x", 3));
  EXPECT_FALSE(b.hit("g", "stray"));
  b.group("other").declare("w");

  a.merge_from(b);
  const Covergroup* g = a.find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->bins().size(), 3u);
  EXPECT_EQ(g->find("x")->hits, 5u);
  EXPECT_EQ(g->find("y")->hits, 0u);  // the hole survives the merge
  EXPECT_EQ(g->find("z")->hits, 0u);
  EXPECT_EQ(g->unexpected(), 1u);
  ASSERT_NE(a.find("other"), nullptr);
  EXPECT_EQ(a.total_bins(), 4u);
}

TEST(OrgPrefixTest, BothOrganizations) {
  EXPECT_STREQ(org_prefix(sim::OrgKind::Arbitrated), "arbitrated");
  EXPECT_STREQ(org_prefix(sim::OrgKind::EventDriven), "eventdriven");
}

// inputs_from must recover the controller shape the sink and the specs key
// off: figure 1 has one BRAM with one dependency, two consumers, one
// producer, and no plain port-A traffic.
TEST(ModelInputsTest, DerivedFromFigure1Compilation) {
  core::CompileOptions options;
  auto result = core::Compiler(options).compile(netapp::figure1_source());
  ASSERT_TRUE(result->ok()) << result->diags().str();

  const ModelInputs in =
      inputs_from(sim::OrgKind::Arbitrated, result->fsms(),
                  result->memory_map(), result->port_plans());
  EXPECT_EQ(in.organization, sim::OrgKind::Arbitrated);
  ASSERT_NE(in.fsms, nullptr);
  EXPECT_EQ(in.fsms->size(), 3u);
  ASSERT_EQ(in.controllers.size(), 1u);
  const ControllerModel& c = in.controllers[0];
  EXPECT_EQ(c.bram_id, 0);
  EXPECT_EQ(c.num_consumers, 2);
  EXPECT_EQ(c.num_producers, 1);
  EXPECT_FALSE(c.has_port_a);
  ASSERT_EQ(c.deps.size(), 1u);
  EXPECT_EQ(c.deps[0].id, "mt1");
  // Schedule: one producer slot + one slot per consumer port.
  EXPECT_EQ(c.total_slots, 3);
}

}  // namespace
}  // namespace hicsync::cover
