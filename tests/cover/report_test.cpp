#include "cover/report.h"

#include <gtest/gtest.h>

#include <string>

namespace hicsync::cover {
namespace {

CoverageModel half_covered() {
  CoverageModel m;
  Covergroup& g = m.group("arbitrated.fsm.state", "every FSM state");
  g.declare("t1.S0");
  g.declare("t1.S1");
  EXPECT_TRUE(m.hit("arbitrated.fsm.state", "t1.S0"));
  Covergroup& h = m.group("arbitrated.thread.pass", "passes");
  h.declare("t1");
  EXPECT_TRUE(m.hit("arbitrated.thread.pass", "t1"));
  return m;
}

TEST(ReportTest, FormatPct) {
  EXPECT_EQ(format_pct(100.0), "100.0%");
  EXPECT_EQ(format_pct(66.666), "66.7%");
  EXPECT_EQ(format_pct(0.0), "0.0%");
}

TEST(ReportTest, SummaryLine) {
  EXPECT_EQ(summary_line(half_covered()),
            "coverage 66.7% (2/3 bins, 2 groups)");
}

TEST(ReportTest, MarkdownHasTableAndHoleSection) {
  const std::string md = emit_report_md(half_covered());
  EXPECT_EQ(md.rfind("# Coverage report", 0), 0u);
  EXPECT_NE(md.find("| covergroup | bins | hit | coverage | unexpected |"),
            std::string::npos);
  EXPECT_NE(md.find("| arbitrated.fsm.state | 2 | 1 | 50.0% | 0 |"),
            std::string::npos);
  EXPECT_NE(md.find("## Holes"), std::string::npos);
  EXPECT_NE(md.find("* `arbitrated.fsm.state` (1): t1.S1"),
            std::string::npos);
  // Fully-covered groups do not clutter the hole report.
  EXPECT_EQ(md.find("* `arbitrated.thread.pass`"), std::string::npos);
}

TEST(ReportTest, FullCoverageSaysNoHoles) {
  CoverageModel m = half_covered();
  EXPECT_TRUE(m.hit("arbitrated.fsm.state", "t1.S1"));
  const std::string md = emit_report_md(m);
  EXPECT_NE(md.find("(none — every declared bin was hit)"),
            std::string::npos);
}

TEST(ReportTest, JsonCarriesHolesPerGroup) {
  const std::string json = emit_report_json(half_covered());
  EXPECT_NE(json.find("\"total_bins\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"total_hit\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"holes\""), std::string::npos);
  EXPECT_NE(json.find("\"t1.S1\""), std::string::npos);
}

TEST(CheckCoverageTest, OverallThreshold) {
  const CoverageModel m = half_covered();  // 66.7% overall
  EXPECT_TRUE(check_coverage(m, 50.0).ok);
  const CheckResult fail = check_coverage(m, 90.0);
  EXPECT_FALSE(fail.ok);
  EXPECT_NE(fail.detail.find("overall: 66.7% < 90.0%"), std::string::npos)
      << fail.detail;
  EXPECT_NE(fail.detail.find("(2/3 bins over 2 groups)"), std::string::npos)
      << fail.detail;
}

TEST(CheckCoverageTest, GroupPrefixRestrictsTheGate) {
  const CoverageModel m = half_covered();
  // thread.pass alone is at 100%: passes any threshold.
  EXPECT_TRUE(check_coverage(m, 100.0, "arbitrated.thread.pass").ok);
  // fsm.state alone is at 50%.
  const CheckResult fail =
      check_coverage(m, 90.0, "arbitrated.fsm.state");
  EXPECT_FALSE(fail.ok);
  EXPECT_NE(fail.detail.find("arbitrated.fsm.state: 50.0%"),
            std::string::npos)
      << fail.detail;
}

TEST(CheckCoverageTest, NoMatchingGroupsFailsClosed) {
  const CheckResult r = check_coverage(half_covered(), 0.0, "typo.prefix");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("no covergroup matches prefix 'typo.prefix'"),
            std::string::npos)
      << r.detail;
  EXPECT_FALSE(check_coverage(CoverageModel(), 0.0).ok);
}

}  // namespace
}  // namespace hicsync::cover
