// Satellite: regression-detection coverage — synthetic histories covering
// improvement, regression above/below threshold, missing baseline and
// schema-version skew, asserting perf::compare_runs verdicts (the matching
// hic-report exit codes are asserted by the ctest entries in
// tests/perf/CMakeLists.txt).
#include "perf/compare.h"

#include <gtest/gtest.h>

namespace hicsync::perf {
namespace {

BenchRun make_run(double value, const char* key = "t.real_time_ns",
                  int schema = kHistorySchemaVersion) {
  BenchRun run;
  run.bench = "demo";
  run.schema = schema;
  run.metrics[key] = value;
  return run;
}

std::vector<BenchRun> runs(std::initializer_list<double> values) {
  std::vector<BenchRun> out;
  for (double v : values) out.push_back(make_run(v));
  return out;
}

TEST(CompareRuns, MissingBaseline) {
  EXPECT_EQ(compare_runs({}).overall, Verdict::MissingBaseline);
  EXPECT_EQ(compare_runs(runs({100.0})).overall, Verdict::MissingBaseline);
}

TEST(CompareRuns, StableWithinThreshold) {
  // +2% on a 5% default threshold: below the gate.
  CompareResult r = compare_runs(runs({100, 101, 99, 100, 102}));
  EXPECT_EQ(r.overall, Verdict::Stable);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].verdict, Verdict::Stable);
  EXPECT_NEAR(r.deltas[0].baseline_median, 100.0, 1e-9);
}

TEST(CompareRuns, RegressionAboveThreshold) {
  // Latest is +30% over a tight baseline of a lower-is-better metric.
  CompareResult r = compare_runs(runs({100, 101, 99, 100, 130}));
  EXPECT_EQ(r.overall, Verdict::Regression);
  ASSERT_EQ(r.regressions().size(), 1u);
  EXPECT_NEAR(r.regressions()[0]->delta_pct, 30.0, 0.5);
}

TEST(CompareRuns, ImprovementInGoodDirection) {
  CompareResult r = compare_runs(runs({100, 101, 99, 100, 60}));
  EXPECT_EQ(r.overall, Verdict::Improvement);
  EXPECT_TRUE(r.regressions().empty());
}

TEST(CompareRuns, HigherIsBetterDirectionFlips) {
  std::vector<BenchRun> history;
  for (double v : {150.0, 151.0, 149.0, 150.0, 100.0}) {
    history.push_back(make_run(v, "c2.eventdriven_fmax_mhz"));
  }
  CompareResult r = compare_runs(history);
  // Fmax dropping by a third is a regression even though the value went
  // "down".
  EXPECT_EQ(r.overall, Verdict::Regression);

  for (auto& run : history) run.metrics["c2.eventdriven_fmax_mhz"] += 100.0;
  history.back().metrics["c2.eventdriven_fmax_mhz"] = 400.0;
  EXPECT_EQ(compare_runs(history).overall, Verdict::Improvement);
}

TEST(CompareRuns, MadWidensNoisyBaseline) {
  // Baseline noise spans ±20%; +15% on the latest must not trip the gate
  // even though it exceeds the 5% default threshold.
  CompareResult r = compare_runs(runs({80, 120, 90, 110, 100, 85, 115}));
  EXPECT_EQ(r.overall, Verdict::Stable);
}

TEST(CompareRuns, ThresholdTableOverride) {
  CompareOptions options;
  options.threshold_pct["t.real_time_ns"] = 50.0;
  EXPECT_EQ(compare_runs(runs({100, 101, 99, 100, 130}), options).overall,
            Verdict::Stable);
  options.threshold_pct["t.real_time_ns"] = 1.0;
  options.mad_sigmas = 0.0;
  EXPECT_EQ(compare_runs(runs({100, 101, 99, 100, 103}), options).overall,
            Verdict::Regression);
}

TEST(CompareRuns, SchemaSkewRefusesToCompare) {
  std::vector<BenchRun> history = runs({100, 101, 100});
  history.push_back(make_run(100.0, "t.real_time_ns",
                             kHistorySchemaVersion + 1));
  EXPECT_EQ(compare_runs(history).overall, Verdict::SchemaSkew);

  // All-old-schema history is skew too: the reader can't vouch for the
  // record semantics.
  std::vector<BenchRun> old;
  for (double v : {100.0, 101.0, 100.0}) {
    old.push_back(make_run(v, "t.real_time_ns", kHistorySchemaVersion + 1));
  }
  EXPECT_EQ(compare_runs(old).overall, Verdict::SchemaSkew);
}

TEST(CompareRuns, NewMetricHasNoBaselineAndIsSkipped) {
  std::vector<BenchRun> history = runs({100, 100, 100});
  history.back().metrics["brand_new"] = 5.0;
  CompareResult r = compare_runs(history);
  EXPECT_EQ(r.overall, Verdict::Stable);
  for (const MetricDelta& d : r.deltas) EXPECT_NE(d.key, "brand_new");
}

TEST(CompareRuns, BooleanShapeFlagRegression) {
  // shape_ok going 1 -> 0 (FF no longer constant) is a regression: the
  // key matches the higher-is-better "_ok" heuristic.
  std::vector<BenchRun> history;
  for (double v : {1.0, 1.0, 1.0, 0.0}) {
    history.push_back(make_run(v, "shape_ok"));
  }
  EXPECT_EQ(compare_runs(history).overall, Verdict::Regression);
}

TEST(DefaultDirection, Heuristics) {
  EXPECT_EQ(default_direction("BM_Parse.real_time_ns"),
            Direction::LowerIsBetter);
  EXPECT_EQ(default_direction("c2.luts"), Direction::LowerIsBetter);
  EXPECT_EQ(default_direction("c2.arbitrated_fmax_mhz"),
            Direction::HigherIsBetter);
  EXPECT_EQ(default_direction("shape_ok"), Direction::HigherIsBetter);
  EXPECT_EQ(default_direction("overhead_pct"), Direction::LowerIsBetter);
  // hic-rt bench keys: more commands/s and better shard scaling are wins.
  EXPECT_EQ(default_direction("rt.fig1.shard4.s64.throughput_cmds_per_s"),
            Direction::HigherIsBetter);
  EXPECT_EQ(default_direction("rt.scaling_shard8_vs_1"),
            Direction::HigherIsBetter);
}

}  // namespace
}  // namespace hicsync::perf
