// hic-report emitters and the paper-claim constraint table, against
// synthetic bench metrics — including an injected "FF no longer constant"
// regression that must flip the Table-1 constraint to Fail.
#include "perf/report.h"

#include <gtest/gtest.h>

#include "perf/constraints.h"

namespace hicsync::perf {
namespace {

BenchRun table1_run() {
  BenchRun run;
  run.bench = "table1_arbitrated_area";
  run.metrics = {
      {"c2.luts", 130}, {"c2.ffs", 71}, {"c2.slices", 65},
      {"c4.luts", 177}, {"c4.ffs", 71}, {"c4.slices", 89},
      {"c8.luts", 290}, {"c8.ffs", 71}, {"c8.slices", 145},
      {"paper_baseline_ff", 66}, {"shape_ok", 1},
  };
  return run;
}

BenchRun table2_run() {
  BenchRun run;
  run.bench = "table2_eventdriven_area";
  run.metrics = {
      {"c2.luts", 67},  {"c2.ffs", 56}, {"c2.slices", 34},
      {"c4.luts", 85},  {"c4.ffs", 56}, {"c4.slices", 43},
      {"c8.luts", 134}, {"c8.ffs", 56}, {"c8.slices", 67},
      {"leaner_than_arbitrated", 1},
  };
  return run;
}

BenchRun fmax_run() {
  BenchRun run;
  run.bench = "timing_fmax";
  run.metrics = {
      {"c2.arbitrated_fmax_mhz", 102.5},  {"c2.paper_arbitrated_mhz", 158},
      {"c4.arbitrated_fmax_mhz", 81.25},  {"c4.paper_arbitrated_mhz", 130},
      {"c8.arbitrated_fmax_mhz", 59.3},   {"c8.paper_arbitrated_mhz", 125},
      {"c2.eventdriven_fmax_mhz", 171.2}, {"c2.paper_eventdriven_mhz", 177},
      {"c4.eventdriven_fmax_mhz", 140.0}, {"c4.paper_eventdriven_mhz", 136},
      {"c8.eventdriven_fmax_mhz", 120.9}, {"c8.paper_eventdriven_mhz", 129},
      {"fmax_decreasing_with_consumers", 1},
      {"eventdriven_faster_everywhere", 1},
  };
  return run;
}

ReportInputs synthetic_inputs() {
  ReportInputs inputs;
  for (const BenchRun& run : {table1_run(), table2_run(), fmax_run()}) {
    inputs.latest.emplace(run.bench, run);
    inputs.history[run.bench] = {run};
  }
  return inputs;
}

TEST(EmitExperimentsMd, RendersTable1RowsByteExact) {
  const std::string md = emit_experiments_md(synthetic_inputs());
  EXPECT_NE(md.find("| P/C | LUT (measured) | FF (measured) | Slices "
                    "(measured) | paper constraint |"),
            std::string::npos);
  EXPECT_NE(md.find("| 1/2 | 130 | 71 | 65 | FF constant at 66; LUT grows |"),
            std::string::npos);
  EXPECT_NE(md.find("| 1/4 | 177 | 71 | 89 | ″ |"), std::string::npos);
  EXPECT_NE(md.find("| 1/8 | 290 | 71 | 145 | ″ |"), std::string::npos);
}

TEST(EmitExperimentsMd, RendersTable2AndFmaxRows) {
  const std::string md = emit_experiments_md(synthetic_inputs());
  EXPECT_NE(md.find("| 1/2 | 67 | 56 | 34 |"), std::string::npos);
  EXPECT_NE(md.find("| 1/8 | 134 | 56 | 67 |"), std::string::npos);
  // The arbitrated 8-consumer paper value carries the "~" lower-bound
  // marker; measured Fmax renders with one decimal.
  EXPECT_NE(md.find("| arbitrated | 8 | ~125 | 59.3 |"), std::string::npos);
  EXPECT_NE(md.find("| arbitrated | 2 | 158 | 102.5 |"), std::string::npos);
  EXPECT_NE(md.find("| event-driven | 4 | 136 | 140.0 |"), std::string::npos);
}

TEST(EmitExperimentsMd, MissingBenchDegradesToPlaceholder) {
  ReportInputs inputs;
  const std::string md = emit_experiments_md(inputs);
  EXPECT_NE(md.find("no bench history"), std::string::npos);
  // A placeholder document has no table rows, so drift against any
  // committed file is vacuously empty.
  EXPECT_TRUE(check_drift("anything", md).empty());
}

TEST(CheckDrift, DetectsMissingAndChangedRows) {
  const std::string generated = emit_experiments_md(synthetic_inputs());
  // The generated document agrees with itself.
  EXPECT_TRUE(check_drift(generated, generated).empty());
  // A committed doc with one stale value: exactly the changed rows are
  // reported missing.
  std::string committed = generated;
  const std::string row = "| 1/4 | 177 | 71 | 89 | ″ |";
  committed.replace(committed.find(row), row.size(),
                    "| 1/4 | 999 | 71 | 89 | ″ |");
  std::vector<std::string> missing = check_drift(committed, generated);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], row);
}

TEST(Constraints, AllPassOnHealthySyntheticMetrics) {
  ReportInputs inputs = synthetic_inputs();
  std::vector<ConstraintResult> results = check_constraints(inputs.latest);
  for (const ConstraintResult& r : results) {
    if (r.constraint.bench == "table1_arbitrated_area" ||
        r.constraint.bench == "table2_eventdriven_area" ||
        r.constraint.bench == "timing_fmax") {
      EXPECT_EQ(r.status, ConstraintStatus::Pass)
          << r.constraint.id << ": " << r.detail;
    } else {
      // Benches we didn't synthesize degrade to MissingData, never Fail.
      EXPECT_EQ(r.status, ConstraintStatus::MissingData) << r.constraint.id;
    }
  }
}

TEST(Constraints, InjectedFfRegressionFailsTable1Constancy) {
  ReportInputs inputs = synthetic_inputs();
  inputs.latest["table1_arbitrated_area"].metrics["c8.ffs"] = 90;  // FF grew
  std::vector<ConstraintResult> results = check_constraints(inputs.latest);
  bool saw = false;
  for (const ConstraintResult& r : results) {
    if (r.constraint.id == "table1.ff_constant") {
      saw = true;
      EXPECT_EQ(r.status, ConstraintStatus::Fail);
      EXPECT_NE(r.detail.find("c8.ffs=90"), std::string::npos) << r.detail;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(Constraints, FmaxLadderShapeViolationFails) {
  ReportInputs inputs = synthetic_inputs();
  // Make the event-driven ladder non-monotonic.
  inputs.latest["timing_fmax"].metrics["c4.eventdriven_fmax_mhz"] = 200.0;
  std::vector<ConstraintResult> results = check_constraints(inputs.latest);
  for (const ConstraintResult& r : results) {
    if (r.constraint.id == "fmax.ev_decreasing") {
      EXPECT_EQ(r.status, ConstraintStatus::Fail);
    }
    if (r.constraint.id == "fmax.ev_matches_paper") {
      // 200 vs the paper's 136 is far outside the 10% tolerance too.
      EXPECT_EQ(r.status, ConstraintStatus::Fail);
    }
  }
}

TEST(EmitDashboardMd, ListsConstraintsAndRegressions) {
  ReportInputs inputs = synthetic_inputs();
  inputs.latest["table1_arbitrated_area"].metrics["c8.ffs"] = 90;
  std::vector<ConstraintResult> constraints =
      check_constraints(inputs.latest);

  std::vector<BenchRun> history;
  for (double v : {100.0, 101.0, 99.0, 140.0}) {
    BenchRun run;
    run.bench = "table1_arbitrated_area";
    run.metrics["t.real_time_ns"] = v;
    history.push_back(run);
  }
  std::map<std::string, CompareResult> comparisons;
  comparisons["table1_arbitrated_area"] = compare_runs(history);

  const std::string md = emit_dashboard_md(inputs, constraints, comparisons);
  EXPECT_NE(md.find("table1.ff_constant"), std::string::npos);
  EXPECT_NE(md.find("FAIL"), std::string::npos);
  EXPECT_NE(md.find("regression"), std::string::npos);
  EXPECT_NE(md.find("t.real_time_ns"), std::string::npos);
}

TEST(EmitHtml, SelfContainedPageWithSparklines) {
  ReportInputs inputs = synthetic_inputs();
  // Two runs so the sparkline has a real trajectory.
  BenchRun second = inputs.latest["timing_fmax"];
  second.metrics["c2.eventdriven_fmax_mhz"] = 165.0;
  inputs.history["timing_fmax"].push_back(second);
  inputs.latest["timing_fmax"] = second;

  std::vector<ConstraintResult> constraints =
      check_constraints(inputs.latest);
  const std::string html =
      emit_html(inputs, constraints, {});
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("polyline"), std::string::npos);
  EXPECT_NE(html.find("timing_fmax"), std::string::npos);
  // Single file: no external resource references.
  EXPECT_EQ(html.find("href="), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
}

}  // namespace
}  // namespace hicsync::perf
