// PassTimer threaded through core::Compiler: the acceptance path behind
// `hicc --profile` — per-pass wall time, node counts and both renderers.
#include "perf/profile.h"

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "support/json.h"

namespace hicsync::perf {
namespace {

const PassTimer::Phase* find_phase(const PassTimer& timer,
                                   const std::string& name) {
  for (const PassTimer::Phase& p : timer.phases()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::uint64_t count_of(const PassTimer& timer, const std::string& name) {
  for (const auto& [key, value] : timer.counts()) {
    if (key == name) return value;
  }
  return 0;
}

TEST(PassTimer, AccumulatesAndOrdersPhases) {
  PassTimer timer;
  timer.add("parse", 100);
  timer.add("sema", 50);
  timer.add("techmap", 10);
  timer.add("techmap", 15);  // re-entered per controller: accumulates
  ASSERT_EQ(timer.phases().size(), 3u);
  EXPECT_EQ(timer.phases()[0].name, "parse");
  EXPECT_EQ(timer.phases()[2].name, "techmap");
  EXPECT_EQ(timer.phases()[2].wall_ns, 25u);
  EXPECT_EQ(timer.phases()[2].calls, 2u);
  EXPECT_EQ(timer.total_wall_ns(), 175u);
}

TEST(PassTimer, ScopedPhaseRecordsOnlyWhenAttached) {
  PassTimer timer;
  { ScopedPhase phase(&timer, "work"); }
  { ScopedPhase phase(nullptr, "ignored"); }
  ASSERT_EQ(timer.phases().size(), 1u);
  EXPECT_EQ(timer.phases()[0].name, "work");
}

TEST(PassTimer, CompilerRecordsEveryPipelinePass) {
  PassTimer timer;
  core::CompileOptions options;
  options.profiler = &timer;
  options.lint.enabled = true;
  auto result = core::Compiler(options).compile(netapp::figure1_source());
  ASSERT_TRUE(result->ok());

  for (const char* pass :
       {"parse", "sema", "deadlock", "lint", "synth", "memalloc", "memorg",
        "techmap", "timing"}) {
    EXPECT_NE(find_phase(timer, pass), nullptr) << "missing pass " << pass;
  }
  EXPECT_GT(timer.total_wall_ns(), 0u);

  // Node counts mirror the figure-1 program and its netlist.
  EXPECT_EQ(count_of(timer, "ast.threads"), result->program().threads.size());
  EXPECT_GT(count_of(timer, "ast.statements"), 0u);
  EXPECT_GT(count_of(timer, "netlist.nets"), 0u);
  EXPECT_GT(count_of(timer, "netlist.luts"), 0u);
  EXPECT_EQ(count_of(timer, "netlist.ffs"),
            static_cast<std::uint64_t>(result->total_overhead().ffs));
}

TEST(PassTimer, UnprofiledCompileLeavesTimerUntouched) {
  PassTimer timer;
  auto result = core::Compiler().compile(netapp::figure1_source());
  ASSERT_TRUE(result->ok());
  EXPECT_TRUE(timer.phases().empty());
}

TEST(PassTimer, TextReportListsPassesAndRss) {
  PassTimer timer;
  timer.add("parse", 2'000'000);
  timer.set_count("ast.threads", 3);
  const std::string text = timer.text();
  EXPECT_NE(text.find("parse"), std::string::npos);
  EXPECT_NE(text.find("ast.threads"), std::string::npos);
  EXPECT_NE(text.find("peak RSS"), std::string::npos);
}

TEST(PassTimer, JsonReportParsesAndEmbedsRegistry) {
  PassTimer timer;
  timer.add("parse", 1000);
  timer.add("sema", 3000);
  timer.set_count("ast.threads", 2);

  support::JsonValue doc;
  std::string error;
  ASSERT_TRUE(support::parse_json(timer.json(), &doc, &error)) << error;
  const support::JsonValue* passes = doc.find("passes");
  ASSERT_NE(passes, nullptr);
  ASSERT_EQ(passes->elements.size(), 2u);
  EXPECT_EQ(passes->elements[0].find("name")->string_value, "parse");
  EXPECT_DOUBLE_EQ(passes->elements[0].find("wall_ns")->number_value, 1000.0);
  EXPECT_DOUBLE_EQ(doc.find("total_wall_ns")->number_value, 4000.0);
  EXPECT_DOUBLE_EQ(doc.find("nodes")->find("ast.threads")->number_value, 2.0);
  EXPECT_GE(doc.find("peak_rss_bytes")->number_value, 0.0);
  // The trace::MetricsRegistry rendering rides along for --trace parity.
  const support::JsonValue* registry = doc.find("registry");
  ASSERT_NE(registry, nullptr);
  EXPECT_FALSE(registry->is_null());
}

TEST(PassTimer, RegistryExposesTraceMetricSeries) {
  PassTimer timer;
  timer.add("parse", 5'000);  // 5 us
  timer.set_count("netlist.nets", 42);
  trace::MetricsRegistry registry = timer.registry();
  const std::string json = registry.json();
  EXPECT_NE(json.find("pass.parse.wall_us"), std::string::npos);
  EXPECT_NE(json.find("nodes.netlist.nets"), std::string::npos);
  EXPECT_NE(json.find("mem.peak_rss_kb"), std::string::npos);
}

TEST(PeakRss, ReportsAPlausiblyLargeValue) {
  // Any real process has at least a MiB resident.
  EXPECT_GT(peak_rss_bytes(), 1024u * 1024u);
}

}  // namespace
}  // namespace hicsync::perf
