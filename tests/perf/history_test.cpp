#include "perf/history.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace hicsync::perf {
namespace {

std::string temp_root(const std::string& leaf) {
  const std::string root =
      (std::filesystem::path(::testing::TempDir()) / leaf).string();
  std::filesystem::remove_all(root);
  return root;
}

TEST(ParseBenchJson, FlatJsonBenchReportFormat) {
  const char* text = R"({
  "bench": "table1_arbitrated_area",
  "c2.luts": 130,
  "c2.ffs": 71,
  "note": "a label",
  "shape_ok": true
})";
  BenchRun run;
  std::string error;
  ASSERT_TRUE(parse_bench_json(text, &run, &error)) << error;
  EXPECT_EQ(run.bench, "table1_arbitrated_area");
  ASSERT_NE(run.metric("c2.luts"), nullptr);
  EXPECT_DOUBLE_EQ(*run.metric("c2.luts"), 130.0);
  EXPECT_TRUE(run.flag("shape_ok"));
  EXPECT_EQ(run.labels.at("note"), "a label");
  EXPECT_EQ(run.metric("note"), nullptr);
}

TEST(ParseBenchJson, GoogleBenchmarkFormat) {
  const char* text = R"({
  "context": {"date": "2026-08-06", "library_build_type": "release"},
  "benchmarks": [
    {"name": "BM_ParseFigure1", "run_type": "iteration",
     "iterations": 1000, "real_time": 1.5, "cpu_time": 1.4,
     "time_unit": "us"},
    {"name": "BM_ParseFigure1_mean", "run_type": "aggregate",
     "real_time": 2.0, "time_unit": "us"}
  ]
})";
  BenchRun run;
  std::string error;
  ASSERT_TRUE(parse_bench_json(text, &run, &error)) << error;
  ASSERT_NE(run.metric("BM_ParseFigure1.real_time_ns"), nullptr);
  EXPECT_DOUBLE_EQ(*run.metric("BM_ParseFigure1.real_time_ns"), 1500.0);
  EXPECT_DOUBLE_EQ(*run.metric("BM_ParseFigure1.cpu_time_ns"), 1400.0);
  EXPECT_DOUBLE_EQ(*run.metric("BM_ParseFigure1.iterations"), 1000.0);
  // Aggregate rows are skipped.
  EXPECT_EQ(run.metric("BM_ParseFigure1_mean.real_time_ns"), nullptr);
}

TEST(ParseBenchJson, RejectsGarbage) {
  BenchRun run;
  std::string error;
  EXPECT_FALSE(parse_bench_json("not json", &run, &error));
  EXPECT_FALSE(parse_bench_json("{\"no_bench_key\": 1}", &run, &error));
  EXPECT_FALSE(error.empty());
}

TEST(HistoryStore, AppendLoadRoundTrip) {
  HistoryStore store(temp_root("hist_roundtrip"));
  BenchRun run;
  run.bench = "demo";
  run.run_id = "r1";
  run.timestamp = "2026-08-06T12:00:00Z";
  run.metrics["x"] = 1.5;
  run.labels["host"] = "ci";
  ASSERT_TRUE(store.append(run));
  run.run_id = "r2";
  run.metrics["x"] = 2.5;
  ASSERT_TRUE(store.append(run));

  std::vector<BenchRun> loaded = store.load("demo");
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].run_id, "r1");
  EXPECT_DOUBLE_EQ(*loaded[0].metric("x"), 1.5);
  EXPECT_EQ(loaded[1].run_id, "r2");
  EXPECT_DOUBLE_EQ(*loaded[1].metric("x"), 2.5);
  EXPECT_EQ(loaded[0].labels.at("host"), "ci");
  EXPECT_EQ(loaded[0].schema, kHistorySchemaVersion);
  EXPECT_EQ(store.benches(), std::vector<std::string>{"demo"});
}

TEST(HistoryStore, SkipsCorruptLines) {
  const std::string root = temp_root("hist_corrupt");
  HistoryStore store(root);
  BenchRun run;
  run.bench = "demo";
  run.metrics["x"] = 1.0;
  ASSERT_TRUE(store.append(run));
  {
    std::ofstream out(root + "/demo.jsonl", std::ios::app);
    out << "{truncated garbage\n";
  }
  ASSERT_TRUE(store.append(run));
  EXPECT_EQ(store.load("demo").size(), 2u);
}

TEST(HistoryStore, IngestDirectoryBothFormats) {
  const std::string root = temp_root("hist_ingest");
  const std::string bench_dir = temp_root("hist_ingest_benches");
  std::filesystem::create_directories(bench_dir);
  {
    std::ofstream out(bench_dir + "/BENCH_flat.json");
    out << R"({"bench": "flat", "v": 7})";
  }
  {
    std::ofstream out(bench_dir + "/BENCH_gb.json");
    out << R"({"benchmarks": [{"name": "BM_A", "run_type": "iteration",
                 "real_time": 5, "time_unit": "ns", "iterations": 10}]})";
  }
  {
    // Not a BENCH_ file: must be ignored.
    std::ofstream out(bench_dir + "/other.json");
    out << R"({"bench": "other", "v": 1})";
  }
  HistoryStore store(root);
  std::string error;
  int n = store.ingest_directory(bench_dir, "ci-42", "2026-08-06", &error);
  ASSERT_EQ(n, 2) << error;
  std::vector<BenchRun> flat = store.load("flat");
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0].run_id, "ci-42");
  EXPECT_EQ(flat[0].timestamp, "2026-08-06");
  // gbench reports have no "bench" key; name comes from the file name.
  std::vector<BenchRun> gb = store.load("gb");
  ASSERT_EQ(gb.size(), 1u);
  EXPECT_DOUBLE_EQ(*gb[0].metric("BM_A.real_time_ns"), 5.0);
  EXPECT_TRUE(store.load("other").empty());
}

TEST(HistoryStore, JsonlIsOneLinePerRun) {
  BenchRun run;
  run.bench = "demo";
  run.metrics["a"] = 1.0;
  const std::string line = HistoryStore::to_jsonl(run);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  BenchRun back;
  ASSERT_TRUE(HistoryStore::from_jsonl(line, &back));
  EXPECT_EQ(back.bench, "demo");
  EXPECT_DOUBLE_EQ(*back.metric("a"), 1.0);
}

}  // namespace
}  // namespace hicsync::perf
