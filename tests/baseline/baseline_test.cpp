#include "baseline/bare.h"
#include "baseline/lockmem.h"
#include "baseline/protocols.h"

#include <gtest/gtest.h>

#include "fpga/techmap.h"
#include "memorg/arbitrated.h"
#include "memorg/eventdriven.h"
#include "../memorg/memorg_test_util.h"

namespace hicsync::baseline {
namespace {

rtl::Module& make_bare(rtl::Design& d, int clients) {
  BareConfig cfg;
  cfg.num_clients = clients;
  rtl::Module& m = generate_bare(d, cfg, "bare");
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
  return m;
}

rtl::Module& make_lockmem(rtl::Design& d, int clients) {
  LockMemConfig cfg;
  cfg.num_clients = clients;
  cfg.lock_addrs = {4, 6};
  rtl::Module& m = generate_lockmem(d, cfg, "lockmem");
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
  return m;
}

TEST(Bare, WriteReadThroughSharedPort) {
  rtl::Design d;
  rtl::Module& m = make_bare(d, 2);
  rtl::ModuleSim sim(m);
  sim.reset();
  sim.set_input("req0", 1);
  sim.set_input("we0", 1);
  sim.set_input("addr0", 9);
  sim.set_input("wdata0", 0xAB);
  sim.settle();
  EXPECT_EQ(sim.get("grant0"), 1u);
  sim.step();
  sim.set_input("req0", 0);
  sim.set_input("we0", 0);
  sim.step();  // write commits
  EXPECT_EQ(sim.read_mem("mem", 9), 0xABu);
  // Read back via client 1.
  sim.set_input("req1", 1);
  sim.set_input("addr1", 9);
  sim.settle();
  EXPECT_EQ(sim.get("grant1"), 1u);
  sim.step();
  sim.set_input("req1", 0);
  sim.step();
  sim.settle();
  EXPECT_EQ(sim.get("valid1"), 1u);
  EXPECT_EQ(sim.get("bus_rdata"), 0xABu);
}

TEST(Bare, NoGuardsMeansNoBlocking) {
  // The defining property of the baseline: a read of an unwritten guarded
  // address is granted immediately (returning garbage) — nothing enforces
  // the dependency.
  rtl::Design d;
  rtl::Module& m = make_bare(d, 2);
  rtl::ModuleSim sim(m);
  sim.reset();
  sim.set_input("req1", 1);
  sim.set_input("addr1", 4);
  sim.settle();
  EXPECT_EQ(sim.get("grant1"), 1u);  // would block in the arbitrated org
}

TEST(LockMem, AcquireExcludesOthers) {
  rtl::Design d;
  rtl::Module& m = make_lockmem(d, 3);
  rtl::ModuleSim sim(m);
  sim.reset();
  // Client 0 acquires the lock on address 4.
  sim.set_input("lock_req0", 1);
  sim.set_input("lock_addr0", 4);
  sim.step();
  sim.set_input("lock_req0", 0);
  sim.settle();
  EXPECT_EQ(sim.get("lock_grant0"), 1u);
  // Client 1 cannot acquire it.
  sim.set_input("lock_req1", 1);
  sim.set_input("lock_addr1", 4);
  for (int i = 0; i < 4; ++i) {
    sim.step();
    sim.settle();
    EXPECT_EQ(sim.get("lock_grant1"), 0u);
  }
  // Client 1's data access to 4 is refused while 0 holds the lock.
  sim.set_input("lock_req1", 0);
  sim.set_input("req1", 1);
  sim.set_input("addr1", 4);
  sim.settle();
  EXPECT_EQ(sim.get("grant1"), 0u);
  // The owner's access is granted.
  sim.set_input("req0", 1);
  sim.set_input("we0", 1);
  sim.set_input("addr0", 4);
  sim.set_input("wdata0", 7);
  sim.settle();
  EXPECT_EQ(sim.get("grant0"), 1u);
}

TEST(LockMem, UnlockReleases) {
  rtl::Design d;
  rtl::Module& m = make_lockmem(d, 2);
  rtl::ModuleSim sim(m);
  sim.reset();
  sim.set_input("lock_req0", 1);
  sim.set_input("lock_addr0", 4);
  sim.step();
  sim.set_input("lock_req0", 0);
  sim.settle();
  ASSERT_EQ(sim.get("lock_grant0"), 1u);
  sim.set_input("unlock_req0", 1);
  sim.step();
  sim.set_input("unlock_req0", 0);
  sim.settle();
  EXPECT_EQ(sim.get("lock_grant0"), 0u);
  // Now client 1 can acquire.
  sim.set_input("lock_req1", 1);
  sim.set_input("lock_addr1", 4);
  sim.step();
  sim.set_input("lock_req1", 0);
  sim.settle();
  EXPECT_EQ(sim.get("lock_grant1"), 1u);
}

TEST(LockMem, UnlockedAddressesFreelyAccessible) {
  rtl::Design d;
  rtl::Module& m = make_lockmem(d, 2);
  rtl::ModuleSim sim(m);
  sim.reset();
  // Address 20 has no lock entry: direct access.
  sim.set_input("req1", 1);
  sim.set_input("we1", 1);
  sim.set_input("addr1", 20);
  sim.set_input("wdata1", 5);
  sim.settle();
  EXPECT_EQ(sim.get("grant1"), 1u);
}

class HandoffComparison : public ::testing::TestWithParam<int> {};

TEST_P(HandoffComparison, AllSubstratesDeliverCorrectValues) {
  const int consumers = GetParam();
  const int rounds = 4;
  {
    rtl::Design d;
    auto m1 = run_polling_handoff(make_bare(d, consumers + 1), consumers,
                                  rounds);
    EXPECT_TRUE(m1.ok) << "polling";
    EXPECT_EQ(m1.round_latencies.size(), static_cast<std::size_t>(rounds));
  }
  {
    rtl::Design d;
    auto m2 = run_lock_handoff(make_lockmem(d, consumers + 1), consumers,
                               rounds);
    EXPECT_TRUE(m2.ok) << "lock";
  }
  {
    rtl::Design d;
    rtl::Module& org = memorg::generate_arbitrated(
        d, memorg::testing::arb_config(consumers), "arb");
    auto m3 = run_arbitrated_handoff(org, consumers, rounds);
    EXPECT_TRUE(m3.ok) << "arbitrated";
  }
  {
    rtl::Design d;
    rtl::Module& org = memorg::generate_eventdriven(
        d, memorg::testing::ev_config(consumers), "ev");
    auto m4 = run_eventdriven_handoff(org, consumers, rounds);
    EXPECT_TRUE(m4.ok) << "event-driven";
  }
}

INSTANTIATE_TEST_SUITE_P(Consumers, HandoffComparison,
                         ::testing::Values(2, 4, 8));

TEST(HandoffComparison, PollingBurnsMoreBusOperations) {
  const int consumers = 4;
  const int rounds = 4;
  rtl::Design d1;
  auto polling = run_polling_handoff(make_bare(d1, consumers + 1),
                                     consumers, rounds);
  rtl::Design d2;
  rtl::Module& org = memorg::generate_arbitrated(
      d2, memorg::testing::arb_config(consumers), "arb");
  auto arb = run_arbitrated_handoff(org, consumers, rounds);
  ASSERT_TRUE(polling.ok);
  ASSERT_TRUE(arb.ok);
  // The guarded organization needs exactly 1 write + N reads per round;
  // polling adds flag reads and ack writes on the same bus.
  EXPECT_GT(polling.bus_grants, arb.bus_grants);
  EXPECT_EQ(arb.bus_grants,
            static_cast<std::uint64_t>(rounds * (consumers + 1)));
}

TEST(HandoffComparison, EventDrivenDeterministicArbitratedMaybeNot) {
  const int consumers = 4;
  const int rounds = 6;
  rtl::Design d1;
  rtl::Module& ev = memorg::generate_eventdriven(
      d1, memorg::testing::ev_config(consumers), "ev");
  auto m_ev = run_eventdriven_handoff(ev, consumers, rounds);
  ASSERT_TRUE(m_ev.ok);
  // §3.2: deterministic post-write timing.
  EXPECT_TRUE(m_ev.latencies_identical())
      << m_ev.min_latency() << ".." << m_ev.max_latency();
}

TEST(HandoffComparison, BareWrapperSmallerThanArbitrated) {
  // The price of enforcement: the bare wrapper has no CAM/countdown logic.
  rtl::Design d1;
  auto bare = fpga::TechMapper().map(make_bare(d1, 3));
  rtl::Design d2;
  rtl::Module& org = memorg::generate_arbitrated(
      d2, memorg::testing::arb_config(2), "arb");
  auto arb = fpga::TechMapper().map(org);
  EXPECT_LT(bare.luts, arb.luts);
}

}  // namespace
}  // namespace hicsync::baseline
