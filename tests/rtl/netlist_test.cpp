#include "rtl/netlist.h"

#include <gtest/gtest.h>

namespace hicsync::rtl {
namespace {

TEST(Netlist, NetCreationAndUniquing) {
  Module m("t");
  int a = m.add_wire("x", 8);
  int b = m.add_wire("x", 4);
  EXPECT_NE(m.net(a).name, m.net(b).name);
  EXPECT_EQ(m.net(a).width, 8);
  EXPECT_EQ(m.net(b).width, 4);
}

TEST(Netlist, PortsRecorded) {
  Module m("t");
  m.add_input("in", 8);
  m.add_output("out", 8);
  ASSERT_EQ(m.ports().size(), 2u);
  EXPECT_EQ(m.ports()[0].dir, PortDir::Input);
  EXPECT_EQ(m.ports()[1].dir, PortDir::Output);
}

TEST(Netlist, ExprWidths) {
  EXPECT_EQ(econst(5, 8)->width, 8);
  EXPECT_EQ(ebin(RtlOp::Add, econst(1, 8), econst(2, 16))->width, 16);
  EXPECT_EQ(ebin(RtlOp::Eq, econst(1, 8), econst(2, 8))->width, 1);
  EXPECT_EQ(eslice(econst(0xFF, 8), 5, 2)->width, 4);
  std::vector<RtlExprPtr> parts;
  parts.push_back(econst(0, 8));
  parts.push_back(econst(0, 4));
  EXPECT_EQ(econcat(std::move(parts))->width, 12);
}

TEST(Netlist, ConstMasksToWidth) {
  EXPECT_EQ(econst(0x1FF, 8)->value, 0xFFu);
}

TEST(Netlist, CloneIsDeep) {
  RtlExprPtr e = ebin(RtlOp::Add, econst(1, 8), econst(2, 8));
  RtlExprPtr c = e->clone();
  EXPECT_EQ(c->op, RtlOp::Add);
  ASSERT_EQ(c->args.size(), 2u);
  EXPECT_NE(c->args[0].get(), e->args[0].get());
  EXPECT_EQ(c->args[1]->value, 2u);
}

TEST(Netlist, FlipflopBitsCountsSeqTargets) {
  Module m("t");
  (void)m.clk();
  int r1 = m.add_reg("r1", 8);
  int r2 = m.add_reg("r2", 3);
  m.seq(r1, econst(0, 8));
  m.seq(r2, econst(0, 3));
  // Duplicate seq on the same target counts once.
  m.seq(r2, econst(1, 3), econst(1, 1));
  EXPECT_EQ(m.flipflop_bits(), 11);
}

TEST(Netlist, ValidateAcceptsCleanModule) {
  Module m("t");
  int in = m.add_input("in", 8);
  int out = m.add_output("out", 8);
  m.assign(out, ebin(RtlOp::Add, eref(in, 8), econst(1, 8)));
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

TEST(Netlist, ValidateRejectsWidthMismatch) {
  Module m("t");
  int out = m.add_output("out", 8);
  m.assign(out, econst(1, 4));
  std::string err;
  EXPECT_FALSE(m.validate(&err));
  EXPECT_NE(err.find("width mismatch"), std::string::npos);
}

TEST(Netlist, ValidateRejectsDoubleDriver) {
  Module m("t");
  int out = m.add_output("out", 1);
  m.assign(out, econst(0, 1));
  m.assign(out, econst(1, 1));
  EXPECT_FALSE(m.validate());
}

TEST(Netlist, ValidateRejectsSeqToWire) {
  Module m("t");
  int w = m.add_wire("w", 1);
  m.seq(w, econst(0, 1));
  std::string err;
  EXPECT_FALSE(m.validate(&err));
  EXPECT_NE(err.find("wire"), std::string::npos);
}

TEST(Netlist, ValidateRejectsContAssignToReg) {
  Module m("t");
  int r = m.add_reg("r", 1);
  m.assign(r, econst(0, 1));
  EXPECT_FALSE(m.validate());
}

TEST(Netlist, DesignTopDefaultsToFirst) {
  Design d;
  d.add_module("first");
  d.add_module("second");
  EXPECT_EQ(d.top(), "first");
  d.set_top("second");
  EXPECT_NE(d.find("second"), nullptr);
  EXPECT_EQ(d.find("missing"), nullptr);
}

}  // namespace
}  // namespace hicsync::rtl
