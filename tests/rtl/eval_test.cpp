#include "rtl/eval.h"

#include <gtest/gtest.h>

namespace hicsync::rtl {
namespace {

TEST(Eval, CombinationalAdd) {
  Module m("t");
  int a = m.add_input("a", 8);
  int b = m.add_input("b", 8);
  int sum = m.add_output("sum", 8);
  m.assign(sum, ebin(RtlOp::Add, eref(a, 8), eref(b, 8)));
  ModuleSim sim(m);
  sim.set_input("a", 20);
  sim.set_input("b", 22);
  sim.settle();
  EXPECT_EQ(sim.get("sum"), 42u);
}

TEST(Eval, ChainedAssignsOrderedTopologically) {
  Module m("t");
  int a = m.add_input("a", 8);
  int y = m.add_output("y", 8);
  int mid = m.add_wire("mid", 8);
  // Declare the dependent assign first to exercise topological sorting.
  m.assign(y, ebin(RtlOp::Add, eref(mid, 8), econst(1, 8)));
  m.assign(mid, ebin(RtlOp::Add, eref(a, 8), econst(1, 8)));
  ModuleSim sim(m);
  sim.set_input("a", 5);
  sim.settle();
  EXPECT_EQ(sim.get("y"), 7u);
}

TEST(Eval, CombinationalCycleRejected) {
  Module m("t");
  int x = m.add_wire("x", 1);
  int y = m.add_wire("y", 1);
  m.assign(x, eref(y, 1));
  m.assign(y, eref(x, 1));
  EXPECT_THROW(ModuleSim sim(m), std::runtime_error);
}

TEST(Eval, RegisterUpdatesOnStep) {
  Module m("t");
  (void)m.clk();
  (void)m.rst();
  int d = m.add_input("d", 8);
  int q = m.add_output_reg("q", 8);
  m.seq(q, eref(d, 8));
  ModuleSim sim(m);
  sim.reset();
  sim.set_input("d", 7);
  EXPECT_EQ(sim.get("q"), 0u);
  sim.step();
  EXPECT_EQ(sim.get("q"), 7u);
}

TEST(Eval, EnableGatesRegister) {
  Module m("t");
  (void)m.clk();
  (void)m.rst();
  int en = m.add_input("en", 1);
  int q = m.add_output_reg("q", 8);
  m.seq(q, ebin(RtlOp::Add, eref(q, 8), econst(1, 8)), eref(en, 1));
  ModuleSim sim(m);
  sim.reset();
  sim.set_input("en", 0);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.get("q"), 0u);
  sim.set_input("en", 1);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.get("q"), 2u);
}

TEST(Eval, ResetValueApplied) {
  Module m("t");
  (void)m.clk();
  (void)m.rst();
  int q = m.add_output_reg("q", 8);
  m.seq(q, ebin(RtlOp::Add, eref(q, 8), econst(1, 8)), nullptr,
        /*reset_value=*/9);
  ModuleSim sim(m);
  sim.reset();
  EXPECT_EQ(sim.get("q"), 9u);
}

TEST(Eval, MemoryReadFirstSemantics) {
  Module m("t");
  (void)m.clk();
  int we = m.add_input("we", 1);
  int addr = m.add_input("addr", 4);
  int wdata = m.add_input("wdata", 8);
  int rdata = m.add_output_reg("rdata", 8);
  Memory& mem = m.add_memory("ram", 8, 16);
  MemoryPort port;
  port.addr = eref(addr, 4);
  port.write_enable = eref(we, 1);
  port.write_data = eref(wdata, 8);
  port.read_data = rdata;
  mem.ports.push_back(std::move(port));

  ModuleSim sim(m);
  sim.write_mem("ram", 3, 55);
  sim.set_input("addr", 3);
  sim.set_input("we", 1);
  sim.set_input("wdata", 99);
  sim.step();
  // Read-first: the read captured the old value while the write landed.
  EXPECT_EQ(sim.get("rdata"), 55u);
  EXPECT_EQ(sim.read_mem("ram", 3), 99u);
  sim.set_input("we", 0);
  sim.step();
  EXPECT_EQ(sim.get("rdata"), 99u);
}

TEST(Eval, DualPortMemoryIndependentPorts) {
  Module m("t");
  (void)m.clk();
  int we = m.add_input("we", 1);
  int waddr = m.add_input("waddr", 4);
  int wdata = m.add_input("wdata", 8);
  int raddr = m.add_input("raddr", 4);
  int rdata = m.add_output_reg("rdata", 8);
  Memory& mem = m.add_memory("ram", 8, 16);
  {
    MemoryPort w;
    w.addr = eref(waddr, 4);
    w.write_enable = eref(we, 1);
    w.write_data = eref(wdata, 8);
    mem.ports.push_back(std::move(w));
  }
  {
    MemoryPort r;
    r.addr = eref(raddr, 4);
    r.read_data = rdata;
    mem.ports.push_back(std::move(r));
  }
  ModuleSim sim(m);
  sim.set_input("we", 1);
  sim.set_input("waddr", 5);
  sim.set_input("wdata", 123);
  sim.set_input("raddr", 5);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.get("rdata"), 123u);
}

TEST(Eval, SliceConcatMux) {
  Module m("t");
  int in = m.add_input("in", 8);
  int sel = m.add_input("sel", 1);
  int out = m.add_output("out", 8);
  // out = sel ? {in[3:0], in[7:4]} : in
  std::vector<RtlExprPtr> parts;
  parts.push_back(eslice(eref(in, 8), 3, 0));
  parts.push_back(eslice(eref(in, 8), 7, 4));
  m.assign(out, emux(eref(sel, 1), econcat(std::move(parts)), eref(in, 8)));
  ModuleSim sim(m);
  sim.set_input("in", 0xA5);
  sim.set_input("sel", 0);
  sim.settle();
  EXPECT_EQ(sim.get("out"), 0xA5u);
  sim.set_input("sel", 1);
  sim.settle();
  EXPECT_EQ(sim.get("out"), 0x5Au);
}

TEST(Eval, ReduceOps) {
  Module m("t");
  int in = m.add_input("in", 4);
  int any = m.add_output("any", 1);
  int all = m.add_output("all", 1);
  m.assign(any, ereduce_or(eref(in, 4)));
  m.assign(all, ereduce_and(eref(in, 4)));
  ModuleSim sim(m);
  sim.set_input("in", 0);
  sim.settle();
  EXPECT_EQ(sim.get("any"), 0u);
  EXPECT_EQ(sim.get("all"), 0u);
  sim.set_input("in", 0xF);
  sim.settle();
  EXPECT_EQ(sim.get("any"), 1u);
  EXPECT_EQ(sim.get("all"), 1u);
  sim.set_input("in", 0x4);
  sim.settle();
  EXPECT_EQ(sim.get("any"), 1u);
  EXPECT_EQ(sim.get("all"), 0u);
}

TEST(Eval, UnknownNetThrows) {
  Module m("t");
  m.add_input("a", 1);
  ModuleSim sim(m);
  EXPECT_THROW((void)sim.get("nope"), std::runtime_error);
  EXPECT_THROW((void)sim.read_mem("nope", 0), std::runtime_error);
}

}  // namespace
}  // namespace hicsync::rtl
