#include "rtl/verilog.h"

#include <gtest/gtest.h>

namespace hicsync::rtl {
namespace {

TEST(Verilog, EmitsModuleSkeleton) {
  Module m("adder");
  int a = m.add_input("a", 8);
  int b = m.add_input("b", 8);
  int sum = m.add_output("sum", 8);
  m.assign(sum, ebin(RtlOp::Add, eref(a, 8), eref(b, 8)));
  std::string v = emit_module(m);
  EXPECT_NE(v.find("module adder ("), std::string::npos);
  EXPECT_NE(v.find("input  wire [7:0] a"), std::string::npos);
  EXPECT_NE(v.find("output wire [7:0] sum"), std::string::npos);
  EXPECT_NE(v.find("assign sum = (a + b);"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, ScalarPortsHaveNoRange) {
  Module m("t");
  m.add_input("bit_in", 1);
  std::string v = emit_module(m);
  EXPECT_NE(v.find("input  wire bit_in"), std::string::npos);
  EXPECT_EQ(v.find("[0:0]"), std::string::npos);
}

TEST(Verilog, SequentialBlockWithReset) {
  Module m("t");
  (void)m.clk();
  (void)m.rst();
  int q = m.add_output_reg("q", 4);
  m.seq(q, ebin(RtlOp::Add, eref(q, 4), econst(1, 4)), nullptr, 3);
  std::string v = emit_module(m);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("if (rst)"), std::string::npos);
  EXPECT_NE(v.find("q <= 4'd3;"), std::string::npos);
  EXPECT_NE(v.find("q <= (q + 4'd1);"), std::string::npos);
}

TEST(Verilog, EnableGuardEmitted) {
  Module m("t");
  (void)m.clk();
  (void)m.rst();
  int en = m.add_input("en", 1);
  int q = m.add_output_reg("q", 1);
  m.seq(q, econst(1, 1), eref(en, 1));
  std::string v = emit_module(m);
  EXPECT_NE(v.find("if (en) q <= 1'd1;"), std::string::npos);
}

TEST(Verilog, MemoryInferenceIdiom) {
  Module m("t");
  (void)m.clk();
  int addr = m.add_input("addr", 4);
  int we = m.add_input("we", 1);
  int wdata = m.add_input("wdata", 8);
  int rdata = m.add_output_reg("rdata", 8);
  Memory& mem = m.add_memory("ram", 8, 16);
  MemoryPort p;
  p.addr = eref(addr, 4);
  p.write_enable = eref(we, 1);
  p.write_data = eref(wdata, 8);
  p.read_data = rdata;
  mem.ports.push_back(std::move(p));
  std::string v = emit_module(m);
  EXPECT_NE(v.find("reg [7:0] ram [0:15];"), std::string::npos);
  EXPECT_NE(v.find("if (we) ram[addr] <= wdata;"), std::string::npos);
  EXPECT_NE(v.find("rdata <= ram[addr];"), std::string::npos);
}

TEST(Verilog, ExprRendering) {
  Module m("t");
  int a = m.add_input("a", 8);
  EXPECT_EQ(emit_expr(m, *econst(5, 4)), "4'd5");
  EXPECT_EQ(emit_expr(m, *eref(a, 8)), "a");
  EXPECT_EQ(emit_expr(m, *eslice(eref(a, 8), 3, 1)), "a[3:1]");
  EXPECT_EQ(emit_expr(m, *eslice(eref(a, 8), 2, 2)), "a[2]");
  EXPECT_EQ(emit_expr(m, *enot(eref(a, 8))), "~(a)");
  EXPECT_EQ(emit_expr(m, *emux(econst(1, 1), econst(2, 4), econst(3, 4))),
            "(1'd1 ? 4'd2 : 4'd3)");
  EXPECT_EQ(emit_expr(m, *ereduce_or(eref(a, 8))), "(|a)");
}

TEST(Verilog, InstanceEmission) {
  Design d;
  Module& leaf = d.add_module("leaf");
  leaf.add_input("x", 1);
  leaf.add_output("y", 1);
  Module& top = d.add_module("top");
  d.set_top("top");
  int a = top.add_input("a", 1);
  int b = top.add_output("b", 1);
  Instance& inst = top.add_instance("u0", "leaf");
  inst.bindings.push_back({"x", eref(a, 1)});
  inst.bindings.push_back({"y", eref(b, 1)});
  std::string v = emit_design(d);
  EXPECT_NE(v.find("module leaf ("), std::string::npos);
  EXPECT_NE(v.find("leaf u0 ("), std::string::npos);
  EXPECT_NE(v.find(".x(a)"), std::string::npos);
  // Top emitted after the leaf.
  EXPECT_GT(v.find("module top ("), v.find("module leaf ("));
}

}  // namespace
}  // namespace hicsync::rtl
