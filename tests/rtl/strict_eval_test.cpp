// SimOptions::strict_undriven: construction must reject reads of nets
// nothing drives, naming the net and the reading site — one test per
// expression site the scan covers. The default mode stays lenient (such
// reads evaluate as 0), which the last test pins down.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "rtl/eval.h"
#include "rtl/netlist.h"

namespace hicsync::rtl {
namespace {

SimOptions strict() {
  SimOptions o;
  o.strict_undriven = true;
  return o;
}

std::string strict_error(const Module& m) {
  try {
    ModuleSim sim(m, strict());
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(StrictEvalTest, CleanModuleConstructs) {
  Module m("clean");
  const int a = m.add_input("a", 4);
  const int q = m.add_reg("q", 4);
  m.seq(q, eref(a, 4));
  const int out = m.add_output("out", 4);
  m.assign(out, eref(q, 4));
  EXPECT_NO_THROW(ModuleSim sim(m, strict()));
}

TEST(StrictEvalTest, ContAssignValueRead) {
  Module m("t");
  const int ghost = m.add_wire("ghost", 1);
  const int out = m.add_output("out", 1);
  m.assign(out, eref(ghost, 1));
  const std::string err = strict_error(m);
  EXPECT_NE(err.find("'ghost'"), std::string::npos) << err;
  EXPECT_NE(err.find("continuous assign to 'out'"), std::string::npos) << err;
}

TEST(StrictEvalTest, SeqValueRead) {
  Module m("t");
  const int ghost = m.add_wire("ghost", 8);
  const int q = m.add_reg("q", 8);
  m.seq(q, eref(ghost, 8));
  const std::string err = strict_error(m);
  EXPECT_NE(err.find("'ghost'"), std::string::npos) << err;
  EXPECT_NE(err.find("next-state of 'q'"), std::string::npos) << err;
}

TEST(StrictEvalTest, SeqEnableRead) {
  Module m("t");
  const int a = m.add_input("a", 8);
  const int ghost = m.add_wire("ghost", 1);
  const int q = m.add_reg("q", 8);
  m.seq(q, eref(a, 8), eref(ghost, 1));
  const std::string err = strict_error(m);
  EXPECT_NE(err.find("'ghost'"), std::string::npos) << err;
  EXPECT_NE(err.find("enable of 'q'"), std::string::npos) << err;
}

TEST(StrictEvalTest, MemoryAddressRead) {
  Module m("t");
  const int ghost = m.add_wire("ghost", 4);
  const int rd = m.add_wire("rd", 8);
  Memory& mem = m.add_memory("buf", 8, 16);
  MemoryPort port;
  port.addr = eref(ghost, 4);
  port.read_data = rd;
  mem.ports.push_back(std::move(port));
  const int out = m.add_output("out", 8);
  m.assign(out, eref(rd, 8));
  const std::string err = strict_error(m);
  EXPECT_NE(err.find("'ghost'"), std::string::npos) << err;
  EXPECT_NE(err.find("address of memory 'buf' port 0"), std::string::npos)
      << err;
}

TEST(StrictEvalTest, MemoryWriteEnableRead) {
  Module m("t");
  const int addr = m.add_input("addr", 4);
  const int data = m.add_input("data", 8);
  const int ghost = m.add_wire("ghost", 1);
  Memory& mem = m.add_memory("buf", 8, 16);
  MemoryPort port;
  port.addr = eref(addr, 4);
  port.write_enable = eref(ghost, 1);
  port.write_data = eref(data, 8);
  mem.ports.push_back(std::move(port));
  const std::string err = strict_error(m);
  EXPECT_NE(err.find("'ghost'"), std::string::npos) << err;
  EXPECT_NE(err.find("write enable of memory 'buf' port 0"),
            std::string::npos)
      << err;
}

TEST(StrictEvalTest, MemoryWriteDataRead) {
  Module m("t");
  const int addr = m.add_input("addr", 4);
  const int we = m.add_input("we", 1);
  const int ghost = m.add_wire("ghost", 8);
  Memory& mem = m.add_memory("buf", 8, 16);
  MemoryPort port;
  port.addr = eref(addr, 4);
  port.write_enable = eref(we, 1);
  port.write_data = eref(ghost, 8);
  mem.ports.push_back(std::move(port));
  const std::string err = strict_error(m);
  EXPECT_NE(err.find("'ghost'"), std::string::npos) << err;
  EXPECT_NE(err.find("write data of memory 'buf' port 0"), std::string::npos)
      << err;
}

TEST(StrictEvalTest, DefaultModeStaysLenient) {
  Module m("t");
  const int ghost = m.add_wire("ghost", 1);
  const int a = m.add_input("a", 1);
  const int out = m.add_output("out", 1);
  m.assign(out, ebin(RtlOp::Or, eref(a, 1), eref(ghost, 1)));
  ModuleSim sim(m);  // single-arg constructor: no strict scan
  sim.set_input("a", 0);
  sim.settle();
  EXPECT_EQ(sim.get("out"), 0u);  // the undriven read contributes 0
}

}  // namespace
}  // namespace hicsync::rtl
