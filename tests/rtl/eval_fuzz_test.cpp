// Differential fuzz of the netlist evaluator: random expression trees are
// evaluated by ModuleSim and by an independent reference interpreter
// written directly against the RtlOp semantics. Catches masking, topo-sort
// and width bugs.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "rtl/eval.h"
#include "support/rng.h"

namespace hicsync::rtl {
namespace {

struct Gen {
  support::Rng rng;
  Module* m = nullptr;
  std::vector<std::pair<int, int>> inputs;  // net, width

  explicit Gen(std::uint64_t seed) : rng(seed) {}

  RtlExprPtr expr(int depth, int want_width) {
    if (depth == 0 || rng.next_bool(0.25)) {
      // Leaf: input ref (sliced/padded to width) or constant.
      if (!inputs.empty() && rng.next_bool(0.7)) {
        auto [net, w] = inputs[rng.next_below(inputs.size())];
        RtlExprPtr e = eref(net, w);
        if (w > want_width) {
          return eslice(std::move(e), want_width - 1, 0);
        }
        if (w < want_width) {
          std::vector<RtlExprPtr> parts;
          parts.push_back(econst(0, want_width - w));
          parts.push_back(std::move(e));
          return econcat(std::move(parts));
        }
        return e;
      }
      return econst(rng.next_u64(), want_width);
    }
    switch (rng.next_below(8)) {
      case 0:
        return ebin(RtlOp::And, expr(depth - 1, want_width),
                    expr(depth - 1, want_width));
      case 1:
        return ebin(RtlOp::Or, expr(depth - 1, want_width),
                    expr(depth - 1, want_width));
      case 2:
        return ebin(RtlOp::Xor, expr(depth - 1, want_width),
                    expr(depth - 1, want_width));
      case 3:
        return ebin(RtlOp::Add, expr(depth - 1, want_width),
                    expr(depth - 1, want_width));
      case 4:
        return ebin(RtlOp::Sub, expr(depth - 1, want_width),
                    expr(depth - 1, want_width));
      case 5:
        return enot(expr(depth - 1, want_width));
      case 6: {
        // Mux steered by a 1-bit subexpression.
        return emux(expr(depth - 1, 1), expr(depth - 1, want_width),
                    expr(depth - 1, want_width));
      }
      default: {
        // Comparison widened back to the target width.
        RtlExprPtr cmp = ebin(rng.next_bool(0.5) ? RtlOp::Eq : RtlOp::Lt,
                              expr(depth - 1, want_width),
                              expr(depth - 1, want_width));
        if (want_width == 1) return cmp;
        std::vector<RtlExprPtr> parts;
        parts.push_back(econst(0, want_width - 1));
        parts.push_back(std::move(cmp));
        return econcat(std::move(parts));
      }
    }
  }
};

std::uint64_t mask_w(std::uint64_t v, int w) {
  return w >= 64 ? v : (v & ((1ULL << w) - 1));
}

/// Independent reference interpreter over input values.
std::uint64_t reference(const RtlExpr& e,
                        const std::map<int, std::uint64_t>& values) {
  switch (e.op) {
    case RtlOp::Const: return e.value;
    case RtlOp::Ref: return values.at(e.net);
    case RtlOp::Slice:
      return mask_w(reference(*e.args[0], values) >> e.lo,
                    e.hi - e.lo + 1);
    case RtlOp::Concat: {
      std::uint64_t v = 0;
      for (const auto& a : e.args) {
        v = (v << a->width) | mask_w(reference(*a, values), a->width);
      }
      return mask_w(v, e.width);
    }
    case RtlOp::Not:
      return mask_w(~reference(*e.args[0], values), e.width);
    case RtlOp::And:
      return mask_w(reference(*e.args[0], values) &
                        reference(*e.args[1], values),
                    e.width);
    case RtlOp::Or:
      return mask_w(reference(*e.args[0], values) |
                        reference(*e.args[1], values),
                    e.width);
    case RtlOp::Xor:
      return mask_w(reference(*e.args[0], values) ^
                        reference(*e.args[1], values),
                    e.width);
    case RtlOp::Add:
      return mask_w(reference(*e.args[0], values) +
                        reference(*e.args[1], values),
                    e.width);
    case RtlOp::Sub:
      return mask_w(reference(*e.args[0], values) -
                        reference(*e.args[1], values),
                    e.width);
    case RtlOp::Eq:
      return reference(*e.args[0], values) == reference(*e.args[1], values);
    case RtlOp::Lt:
      return reference(*e.args[0], values) < reference(*e.args[1], values);
    case RtlOp::Mux:
      return mask_w(reference(*e.args[0], values) != 0
                        ? reference(*e.args[1], values)
                        : reference(*e.args[2], values),
                    e.width);
    default:
      ADD_FAILURE() << "unexpected op in fuzz tree";
      return 0;
  }
}

class EvalFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EvalFuzz, ModuleSimMatchesReference) {
  Gen gen(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  Module m("fuzz");
  gen.m = &m;
  const int widths[] = {1, 7, 8, 13, 32, 33};
  for (int i = 0; i < 4; ++i) {
    int w = widths[gen.rng.next_below(6)];
    int net = m.add_input("in" + std::to_string(i), w);
    gen.inputs.emplace_back(net, w);
  }
  // Several independent outputs with random trees.
  std::vector<std::pair<std::string, RtlExprPtr>> trees;
  for (int o = 0; o < 5; ++o) {
    int w = widths[gen.rng.next_below(6)];
    RtlExprPtr tree = gen.expr(4, w);
    int out = m.add_output("out" + std::to_string(o), w);
    trees.emplace_back("out" + std::to_string(o), tree->clone());
    m.assign(out, std::move(tree));
  }
  ModuleSim sim(m);
  for (int round = 0; round < 20; ++round) {
    std::map<int, std::uint64_t> values;
    for (auto [net, w] : gen.inputs) {
      std::uint64_t v = mask_w(gen.rng.next_u64(), w);
      values[net] = v;
      sim.set_input(m.net(net).name, v);
    }
    sim.settle();
    for (const auto& [name, tree] : trees) {
      ASSERT_EQ(sim.get(name), reference(*tree, values))
          << "seed " << GetParam() << " round " << round << " " << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalFuzz, ::testing::Range(1, 13));

}  // namespace
}  // namespace hicsync::rtl
