#include "rtl/builder.h"

#include <gtest/gtest.h>

#include "rtl/eval.h"

namespace hicsync::rtl {
namespace {

TEST(Builder, MuxTreeSelectsEachInput) {
  Module m("t");
  int sel = m.add_input("sel", 2);
  int out = m.add_output("out", 8);
  std::vector<RtlExprPtr> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(econst(static_cast<std::uint64_t>(10 + i), 8));
  }
  m.assign(out, build_mux_tree(m, sel, std::move(inputs)));
  ModuleSim sim(m);
  for (int i = 0; i < 4; ++i) {
    sim.set_input("sel", static_cast<std::uint64_t>(i));
    sim.settle();
    EXPECT_EQ(sim.get("out"), static_cast<std::uint64_t>(10 + i));
  }
}

TEST(Builder, MuxTreeNonPowerOfTwo) {
  Module m("t");
  int sel = m.add_input("sel", 2);
  int out = m.add_output("out", 8);
  std::vector<RtlExprPtr> inputs;
  inputs.push_back(econst(1, 8));
  inputs.push_back(econst(2, 8));
  inputs.push_back(econst(3, 8));
  m.assign(out, build_mux_tree(m, sel, std::move(inputs)));
  ModuleSim sim(m);
  sim.set_input("sel", 0);
  sim.settle();
  EXPECT_EQ(sim.get("out"), 1u);
  sim.set_input("sel", 1);
  sim.settle();
  EXPECT_EQ(sim.get("out"), 2u);
  sim.set_input("sel", 2);
  sim.settle();
  EXPECT_EQ(sim.get("out"), 3u);
}

TEST(Builder, MuxTreeSingleInputPassesThrough) {
  Module m("t");
  int sel = m.add_input("sel", 1);
  int out = m.add_output("out", 8);
  std::vector<RtlExprPtr> inputs;
  inputs.push_back(econst(77, 8));
  m.assign(out, build_mux_tree(m, sel, std::move(inputs)));
  ModuleSim sim(m);
  sim.settle();
  EXPECT_EQ(sim.get("out"), 77u);
}

TEST(Builder, DecoderOneHot) {
  Module m("t");
  int sel = m.add_input("sel", 2);
  auto dec = build_decoder(m, sel, 4, "d");
  std::vector<int> outs;
  for (int i = 0; i < 4; ++i) {
    int o = m.add_output("o" + std::to_string(i), 1);
    m.assign(o, eref(dec[static_cast<std::size_t>(i)], 1));
    outs.push_back(o);
  }
  ModuleSim sim(m);
  for (int v = 0; v < 4; ++v) {
    sim.set_input("sel", static_cast<std::uint64_t>(v));
    sim.settle();
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(sim.get("o" + std::to_string(i)), i == v ? 1u : 0u);
    }
  }
}

TEST(Builder, FixedPriorityGrantsHighestActive) {
  Module m("t");
  std::vector<int> reqs;
  for (int i = 0; i < 3; ++i) {
    reqs.push_back(m.add_input("r" + std::to_string(i), 1));
  }
  auto grants = build_fixed_priority(m, reqs, "p");
  for (int i = 0; i < 3; ++i) {
    int o = m.add_output("g" + std::to_string(i), 1);
    m.assign(o, eref(grants[static_cast<std::size_t>(i)], 1));
  }
  ModuleSim sim(m);
  sim.set_input("r0", 0);
  sim.set_input("r1", 1);
  sim.set_input("r2", 1);
  sim.settle();
  EXPECT_EQ(sim.get("g0"), 0u);
  EXPECT_EQ(sim.get("g1"), 1u);
  EXPECT_EQ(sim.get("g2"), 0u);
  sim.set_input("r0", 1);
  sim.settle();
  EXPECT_EQ(sim.get("g0"), 1u);
  EXPECT_EQ(sim.get("g1"), 0u);
}

class RoundRobinTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundRobinTest, GrantsAreOneHotAndFair) {
  const int n = GetParam();
  Module m("t");
  (void)m.clk();
  (void)m.rst();
  std::vector<int> reqs;
  for (int i = 0; i < n; ++i) {
    reqs.push_back(m.add_input("r" + std::to_string(i), 1));
  }
  auto arb = build_round_robin_arbiter(m, reqs, "rr");
  for (int i = 0; i < n; ++i) {
    int o = m.add_output("g" + std::to_string(i), 1);
    m.assign(o, eref(arb.grant[static_cast<std::size_t>(i)], 1));
  }
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;

  ModuleSim sim(m);
  sim.reset();
  // All requesters active: over n cycles every one is granted exactly once.
  for (int i = 0; i < n; ++i) {
    sim.set_input("r" + std::to_string(i), 1);
  }
  std::vector<int> grants(static_cast<std::size_t>(n), 0);
  for (int cycle = 0; cycle < n; ++cycle) {
    sim.settle();
    int granted = -1;
    for (int i = 0; i < n; ++i) {
      if (sim.get("g" + std::to_string(i)) != 0) {
        EXPECT_EQ(granted, -1) << "grant not one-hot";
        granted = i;
      }
    }
    ASSERT_GE(granted, 0);
    ++grants[static_cast<std::size_t>(granted)];
    sim.step();
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(grants[static_cast<std::size_t>(i)], 1) << "requester " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoundRobinTest,
                         ::testing::Values(2, 3, 4, 8));

TEST(Builder, RoundRobinNoRequestsNoGrant) {
  Module m("t");
  (void)m.clk();
  (void)m.rst();
  std::vector<int> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(m.add_input("r" + std::to_string(i), 1));
  }
  auto arb = build_round_robin_arbiter(m, reqs, "rr");
  int any = m.add_output("any", 1);
  m.assign(any, eref(arb.any_grant, 1));
  ModuleSim sim(m);
  sim.reset();
  sim.settle();
  EXPECT_EQ(sim.get("any"), 0u);
}

TEST(Builder, RoundRobinSingleRequesterAlwaysGranted) {
  Module m("t");
  (void)m.clk();
  (void)m.rst();
  std::vector<int> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(m.add_input("r" + std::to_string(i), 1));
  }
  auto arb = build_round_robin_arbiter(m, reqs, "rr");
  int g2 = m.add_output("g2", 1);
  m.assign(g2, eref(arb.grant[2], 1));
  ModuleSim sim(m);
  sim.reset();
  sim.set_input("r2", 1);
  for (int cycle = 0; cycle < 6; ++cycle) {
    sim.settle();
    EXPECT_EQ(sim.get("g2"), 1u) << "cycle " << cycle;
    sim.step();
  }
}

TEST(Builder, CamMatchesValidEntries) {
  Module m("t");
  (void)m.clk();
  (void)m.rst();
  int key = m.add_input("key", 8);
  std::vector<int> addrs;
  std::vector<int> valids;
  for (int i = 0; i < 3; ++i) {
    int a = m.add_reg("addr" + std::to_string(i), 8);
    m.seq(a, econst(static_cast<std::uint64_t>(0x10 * (i + 1)), 8));
    addrs.push_back(a);
    int v = m.add_input("valid" + std::to_string(i), 1);
    valids.push_back(v);
  }
  auto cam = build_cam_match(m, addrs, valids, key, "cam");
  int any = m.add_output("hit", 1);
  m.assign(any, eref(cam.any_match, 1));
  int m1 = m.add_output("m1", 1);
  m.assign(m1, eref(cam.match[1], 1));

  ModuleSim sim(m);
  sim.reset();
  sim.step();  // latch the entry addresses (0x10, 0x20, 0x30)
  sim.set_input("valid0", 1);
  sim.set_input("valid1", 1);
  sim.set_input("valid2", 0);
  sim.set_input("key", 0x20);
  sim.settle();
  EXPECT_EQ(sim.get("hit"), 1u);
  EXPECT_EQ(sim.get("m1"), 1u);
  // Invalid entry does not match even with equal address.
  sim.set_input("key", 0x30);
  sim.settle();
  EXPECT_EQ(sim.get("hit"), 0u);
  // No entry with this address.
  sim.set_input("key", 0x44);
  sim.settle();
  EXPECT_EQ(sim.get("hit"), 0u);
}

TEST(Builder, CounterLoadsAndDecrements) {
  Module m("t");
  (void)m.clk();
  (void)m.rst();
  int load = m.add_input("load", 1);
  int dec = m.add_input("dec", 1);
  auto counter = build_counter(m, 4, eref(load, 1), econst(5, 4),
                               eref(dec, 1), "c");
  int out = m.add_output("count", 4);
  m.assign(out, eref(counter.reg, 4));

  ModuleSim sim(m);
  sim.reset();
  EXPECT_EQ(sim.get("count"), 0u);
  sim.set_input("load", 1);
  sim.step();
  sim.set_input("load", 0);
  EXPECT_EQ(sim.get("count"), 5u);
  sim.set_input("dec", 1);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.get("count"), 3u);
  // Load wins over decrement.
  sim.set_input("load", 1);
  sim.step();
  EXPECT_EQ(sim.get("count"), 5u);
}

}  // namespace
}  // namespace hicsync::rtl
