#include "diffview/bundle.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "support/json.h"
#include "trace/bus.h"

#ifndef HICSYNC_TEST_BINDIR
#error "HICSYNC_TEST_BINDIR must point at the test binary directory"
#endif

namespace hicsync::diffview {
namespace {

std::unique_ptr<BundleCaptureSink> capture_figure1(sim::OrgKind kind) {
  core::CompileOptions options;
  options.organization = kind;
  auto result = core::Compiler(options).compile(netapp::figure1_source());
  EXPECT_TRUE(result->ok()) << result->diags().str();
  auto simulator = result->make_simulator();
  trace::TraceBus bus;
  auto sink = std::make_unique<BundleCaptureSink>();
  bus.attach(sink.get());
  simulator->set_trace(&bus);
  EXPECT_TRUE(simulator->run_until_passes(1, 10000));
  bus.finish(simulator->cycle());
  return sink;
}

class BundleCaptureBothOrgs : public ::testing::TestWithParam<sim::OrgKind> {};

// The capture-sink schema check of the observability satellite: the JSONL
// rendering parses back line by line with support::parse_jsonl, every
// object carries the required fields, and emission order keeps cycles
// nondecreasing (overall — the bus emits in simulation order).
TEST_P(BundleCaptureBothOrgs, JsonlParsesBackWithMonotoneCycles) {
  auto sink = capture_figure1(GetParam());
  ASSERT_FALSE(sink->events().empty());
  EXPECT_GT(sink->cycles(), 0u);

  std::vector<support::JsonValue> lines;
  std::string error;
  ASSERT_TRUE(support::parse_jsonl(sink->events_jsonl(), &lines, &error))
      << error;
  ASSERT_EQ(lines.size(), sink->events().size());

  static const std::set<std::string> kKinds = {
      "port-request", "port-grant",  "port-stall",     "arb-win",
      "slot-advance", "produce",     "consume",        "round-complete",
      "fsm-state",    "thread-block", "thread-unblock", "pass-complete"};
  std::uint64_t last_cycle = 0;
  for (const support::JsonValue& v : lines) {
    ASSERT_TRUE(v.is_object());
    const support::JsonValue* cycle = v.find("cycle");
    ASSERT_NE(cycle, nullptr);
    ASSERT_TRUE(cycle->is_number());
    const auto c = static_cast<std::uint64_t>(cycle->number_value);
    EXPECT_GE(c, last_cycle);  // nondecreasing timestamps
    last_cycle = c;
    const support::JsonValue* kind = v.find("kind");
    ASSERT_NE(kind, nullptr);
    ASSERT_TRUE(kind->is_string());
    EXPECT_TRUE(kKinds.count(kind->string_value))
        << "unknown kind " << kind->string_value;
  }

  // And the round trip through the typed parser is lossless.
  std::vector<CapturedEvent> parsed;
  ASSERT_TRUE(parse_events_jsonl(sink->events_jsonl(), &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), sink->events().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].str(), sink->events()[i].str()) << "event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(BothOrgs, BundleCaptureBothOrgs,
                         ::testing::Values(sim::OrgKind::Arbitrated,
                                           sim::OrgKind::EventDriven));

TEST(CapturedEventTest, RenderingNamesEveryField) {
  CapturedEvent e;
  e.cycle = 42;
  e.kind = trace::EventKind::PortStall;
  e.port = trace::PortKind::C;
  e.cause = trace::StallCause::DependencyNotProduced;
  e.controller = 0;
  e.pseudo_port = 1;
  e.thread = "t2";
  e.dep = "mt1";
  e.value = 7;
  EXPECT_EQ(e.str(),
            "cycle 42 port-stall bram0 C1 cause=dependency-not-produced "
            "thread=t2 dep=mt1 value=7");
}

TEST(ManifestTest, JsonRoundTripPreservesEveryField) {
  Manifest m;
  m.run_id = "fig1@arbitrated";
  m.program = "fig1";
  m.source_digest = digest_hex("thread t1 () {}");
  m.organization = "arbitrated";
  m.use_cam = false;
  m.chain = true;
  m.infer = true;
  m.passes = 3;
  m.max_cycles = 5000;
  m.cycles = 123;
  m.converged = true;
  AreaRow row;
  row.bram_id = 0;
  row.module_name = "bram_ctrl_mt1";
  row.luts = 134;
  row.ffs = 75;
  row.slices = 67;
  row.fmax_mhz = 212.5;
  m.areas.push_back(row);

  support::JsonValue v;
  std::string error;
  ASSERT_TRUE(support::parse_json(m.to_json(), &v, &error)) << error;
  Manifest back;
  ASSERT_TRUE(Manifest::from_json(v, &back, &error)) << error;
  EXPECT_EQ(back.run_id, m.run_id);
  EXPECT_EQ(back.program, m.program);
  EXPECT_EQ(back.source_digest, m.source_digest);
  EXPECT_EQ(back.organization, m.organization);
  EXPECT_EQ(back.use_cam, m.use_cam);
  EXPECT_EQ(back.chain, m.chain);
  EXPECT_EQ(back.infer, m.infer);
  EXPECT_EQ(back.passes, m.passes);
  EXPECT_EQ(back.max_cycles, m.max_cycles);
  EXPECT_EQ(back.cycles, m.cycles);
  EXPECT_EQ(back.converged, m.converged);
  ASSERT_EQ(back.areas.size(), 1u);
  EXPECT_EQ(back.areas[0].module_name, "bram_ctrl_mt1");
  EXPECT_EQ(back.areas[0].luts, 134);
  EXPECT_DOUBLE_EQ(back.areas[0].fmax_mhz, 212.5);
}

TEST(ManifestTest, RejectsSchemaSkew) {
  support::JsonValue v;
  std::string error;
  ASSERT_TRUE(support::parse_json(
      "{\"schema\": 999, \"organization\": \"arbitrated\"}", &v, &error));
  Manifest m;
  EXPECT_FALSE(Manifest::from_json(v, &m, &error));
  EXPECT_NE(error.find("schema 999"), std::string::npos);
}

TEST(BundleIoTest, WriteThenLoadRoundTrips) {
  auto sink = capture_figure1(sim::OrgKind::EventDriven);
  Manifest m;
  m.run_id = "fig1@eventdriven";
  m.program = "fig1";
  m.source_digest = digest_hex(netapp::figure1_source());
  m.organization = "event-driven";
  m.cycles = sink->cycles();
  m.converged = true;

  const std::string dir =
      std::string(HICSYNC_TEST_BINDIR) + "/bundle_roundtrip.bundle";
  std::string error;
  ASSERT_TRUE(write_bundle(dir, m.to_json(), sink->events_jsonl(),
                           "{\"cycles\": 7}", /*cover_record=*/"", &error))
      << error;

  Bundle b;
  ASSERT_TRUE(load_bundle(dir, &b, &error)) << error;
  EXPECT_EQ(b.manifest.run_id, "fig1@eventdriven");
  EXPECT_EQ(b.manifest.cycles, sink->cycles());
  EXPECT_EQ(b.events.size(), sink->events().size());
  ASSERT_TRUE(b.metrics.is_object());
  EXPECT_EQ(b.metrics.find("cycles")->number_value, 7.0);
  EXPECT_FALSE(b.has_coverage);  // no cover.jsonl was written
}

TEST(BundleIoTest, LoadFailsOnMissingDirectoryWithDiagnostic) {
  Bundle b;
  std::string error;
  EXPECT_FALSE(load_bundle(std::string(HICSYNC_TEST_BINDIR) + "/no_such_dir",
                           &b, &error));
  EXPECT_NE(error.find("manifest.json"), std::string::npos);
}

TEST(DigestTest, Fnv1a64MatchesKnownVectors) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(digest_hex(""), "cbf29ce484222325");
  EXPECT_EQ(digest_hex("a"), "af63dc4c8601ec8c");
  // Stable across calls — the manifest digest is an identity.
  EXPECT_EQ(digest_hex("thread"), digest_hex("thread"));
  EXPECT_NE(digest_hex("thread"), digest_hex("threae"));
}

}  // namespace
}  // namespace hicsync::diffview
