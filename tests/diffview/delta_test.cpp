#include "diffview/delta.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/json.h"

namespace hicsync::diffview {
namespace {

std::vector<CapturedEvent> one_round(const std::string& consumer) {
  auto ev = [](std::uint64_t cycle, trace::EventKind kind,
               std::string thread, std::string dep) {
    CapturedEvent e;
    e.cycle = cycle;
    e.kind = kind;
    e.thread = std::move(thread);
    e.dep = std::move(dep);
    return e;
  };
  return {ev(1, trace::EventKind::Produce, "p", "d1"),
          ev(3, trace::EventKind::Consume, consumer, "d1"),
          ev(3, trace::EventKind::RoundComplete, "", "d1")};
}

constexpr const char* kMetricsJson = R"({
  "cycles": 10,
  "ports": [
    {"port": "bram0.C0", "requests": 5, "grants": 4,
     "utilization_pct": 40.0, "stalls": {"dep-wait": 1}}
  ],
  "occupancy_pct": {"bram0": 50.0},
  "registry": {
    "counters": {"stall.dependency-not-produced": 1, "dep.d1.produces": 1},
    "histograms": {
      "dep.d1.round_latency": {"count": 1, "min": 4, "mean": 4.0, "max": 4,
                               "sum": 4, "bounds": [2, 4, 8],
                               "buckets": [0, 0, 1, 0]}
    }
  }
})";

Bundle make_bundle(const std::string& run_id, std::uint64_t cycles,
                   std::vector<CapturedEvent> events,
                   const char* metrics_json = kMetricsJson) {
  Bundle b;
  b.manifest.run_id = run_id;
  b.manifest.program = "synthetic";
  b.manifest.organization = "arbitrated";
  b.manifest.cycles = cycles;
  b.manifest.converged = true;
  b.events = std::move(events);
  std::string error;
  EXPECT_TRUE(support::parse_json(metrics_json, &b.metrics, &error)) << error;
  return b;
}

TEST(DiffBundles, IdenticalBundlesAreEqualExitZero) {
  const Bundle a = make_bundle("x@arbitrated", 10, one_round("c1"));
  const Bundle b = make_bundle("x@arbitrated", 10, one_round("c1"));
  const DiffReport r = diff_bundles(a, b);
  EXPECT_TRUE(r.align.equivalent);
  EXPECT_FALSE(r.metric_deltas);
  EXPECT_FALSE(r.trace_diverged());
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_NE(r.text().find("verdict: equal (exit 0)"), std::string::npos);
}

TEST(DiffBundles, MetricDeltaOnlyExitOne) {
  const Bundle a = make_bundle("x@arbitrated", 10, one_round("c1"));
  const Bundle b = make_bundle("x@eventdriven", 14, one_round("c1"));
  const DiffReport r = diff_bundles(a, b);
  EXPECT_TRUE(r.align.equivalent);  // same semantics, different cycle count
  EXPECT_TRUE(r.metric_deltas);
  EXPECT_EQ(r.exit_code(), 1);
  EXPECT_NE(r.text().find("metric deltas only"), std::string::npos);
}

TEST(DiffBundles, TraceDivergenceExitTwo) {
  const Bundle a = make_bundle("x@arbitrated", 10, one_round("c1"));
  const Bundle b = make_bundle("x@eventdriven", 10, one_round("c2"));
  const DiffReport r = diff_bundles(a, b);
  EXPECT_TRUE(r.trace_diverged());
  EXPECT_EQ(r.exit_code(), 2);
  const std::string md = r.markdown();
  EXPECT_NE(md.find("first divergence: stream dep/d1"), std::string::npos);
  EXPECT_NE(md.find("**Verdict:** trace divergence (exit 2)"),
            std::string::npos);
}

TEST(DiffBundles, SectionsTabulateTheMetricsSnapshot) {
  const Bundle a = make_bundle("x@arbitrated", 10, one_round("c1"));
  const Bundle b = make_bundle("x@arbitrated", 10, one_round("c1"));
  const DiffReport r = diff_bundles(a, b);
  const std::string md = r.markdown();
  EXPECT_NE(md.find("## Cross-run diff: x@arbitrated vs x@arbitrated"),
            std::string::npos);
  EXPECT_NE(md.find("### Trace alignment"), std::string::npos);
  EXPECT_NE(md.find("### Per-port utilization (%)"), std::string::npos);
  EXPECT_NE(md.find("| bram0.C0 | 40.000 | 40.000 | 0 |"),
            std::string::npos);
  EXPECT_NE(md.find("### Stall-cause attribution (stall events)"),
            std::string::npos);
  EXPECT_NE(md.find("### Round latency (cycles)"), std::string::npos);
  EXPECT_NE(md.find("| d1 p50 | 4 | 4 | 0 |"), std::string::npos);
  EXPECT_NE(md.find("### Controller occupancy (%)"), std::string::npos);
  // No area rows in these synthetic manifests: the section is dropped
  // rather than rendered empty.
  EXPECT_EQ(md.find("### Area / Fmax model"), std::string::npos);
}

TEST(DiffBundles, JsonReportParsesBackWithExitCode) {
  const Bundle a = make_bundle("x@arbitrated", 10, one_round("c1"));
  const Bundle b = make_bundle("x@eventdriven", 10, one_round("c2"));
  const DiffReport r = diff_bundles(a, b);
  support::JsonValue doc;
  std::string error;
  ASSERT_TRUE(support::parse_json(r.json(), &doc, &error)) << error;
  ASSERT_NE(doc.find("exit_code"), nullptr);
  EXPECT_EQ(doc.find("exit_code")->number_value, 2.0);
  ASSERT_NE(doc.find("trace_diverged"), nullptr);
  EXPECT_TRUE(doc.find("trace_diverged")->bool_value);
  ASSERT_NE(doc.find("alignment"), nullptr);
  EXPECT_TRUE(doc.find("alignment")->is_object());
}

}  // namespace
}  // namespace hicsync::diffview
