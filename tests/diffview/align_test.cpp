#include "diffview/align.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hicsync::diffview {
namespace {

CapturedEvent ev(std::uint64_t cycle, trace::EventKind kind,
                 std::string thread = "", std::string dep = "",
                 std::int64_t value = -1) {
  CapturedEvent e;
  e.cycle = cycle;
  e.kind = kind;
  e.thread = std::move(thread);
  e.dep = std::move(dep);
  e.value = value;
  return e;
}

using trace::EventKind;

// Rounds of one dependency overlap in a real event stream: with a
// double-buffered slot the producer's next write lands before the previous
// round's last consume. Attribution must be FIFO — a consume belongs to
// the oldest open round.
TEST(ExtractStreams, AttributesOverlappingRoundsFifo) {
  std::vector<CapturedEvent> events;
  events.push_back(ev(1, EventKind::Produce, "p", "d1"));
  events.push_back(ev(2, EventKind::Consume, "c1", "d1"));
  events.push_back(ev(3, EventKind::Produce, "p", "d1"));  // round 2 opens
  events.push_back(ev(4, EventKind::Consume, "c2", "d1"));  // still round 1
  events.push_back(ev(4, EventKind::RoundComplete, "", "d1"));
  events.push_back(ev(5, EventKind::Consume, "c1", "d1"));  // round 2

  const std::vector<Stream> streams = extract_streams(events);
  ASSERT_EQ(streams.size(), 1u);
  const Stream& s = streams.front();
  EXPECT_EQ(s.id, "dep/d1");
  EXPECT_EQ(s.cls, StreamClass::DepRound);
  ASSERT_EQ(s.entries.size(), 2u);
  EXPECT_EQ(s.entries[0].key, "produce p -> {c1,c2}");
  EXPECT_EQ(s.entries[0].cycle, 1u);
  // Round 2 was still open at end of capture — semantic state, kept.
  EXPECT_EQ(s.entries[1].key, "produce p -> {c1} (round incomplete)");
}

TEST(ExtractStreams, SeparatesFsmAndBlockingStreams) {
  std::vector<CapturedEvent> events;
  events.push_back(ev(0, EventKind::FsmState, "t1", "", 0));
  events.push_back(ev(1, EventKind::ThreadBlock, "t1", "d1"));
  events.push_back(ev(2, EventKind::ThreadUnblock, "t1"));
  events.push_back(ev(3, EventKind::FsmState, "t1", "", 1));

  const std::vector<Stream> streams = extract_streams(events);
  ASSERT_EQ(streams.size(), 2u);  // sorted: block/t1, fsm/t1
  EXPECT_EQ(streams[0].id, "block/t1");
  ASSERT_EQ(streams[0].entries.size(), 2u);
  EXPECT_EQ(streams[0].entries[0].key, "block dep=d1");
  EXPECT_EQ(streams[0].entries[1].key, "unblock");
  EXPECT_EQ(streams[1].id, "fsm/t1");
  ASSERT_EQ(streams[1].entries.size(), 2u);
  EXPECT_EQ(streams[1].entries[0].key, "state 0");
  EXPECT_EQ(streams[1].entries[1].key, "state 1");
}

std::vector<CapturedEvent> one_round(std::uint64_t base,
                                     const std::string& consumer) {
  std::vector<CapturedEvent> events;
  events.push_back(ev(base, EventKind::Produce, "p", "d1"));
  events.push_back(ev(base + 2, EventKind::Consume, consumer, "d1"));
  events.push_back(ev(base + 2, EventKind::RoundComplete, "", "d1"));
  return events;
}

TEST(Align, EquivalentRunsReportSkewNotDivergence) {
  // Same semantics, different cycles: B lags A by 7 cycles.
  const std::vector<CapturedEvent> a = one_round(1, "c1");
  const std::vector<CapturedEvent> b = one_round(8, "c1");

  const AlignResult r = align(a, b);
  EXPECT_TRUE(r.equivalent) << r.forensics_text();
  EXPECT_EQ(r.streams_compared, 1u);
  EXPECT_EQ(r.entries_matched, 1u);
  ASSERT_EQ(r.skews.size(), 1u);
  EXPECT_EQ(r.skews[0].stream, "dep/d1");
  EXPECT_EQ(r.skews[0].last_skew, 7);
  EXPECT_EQ(r.skews[0].max_abs_skew, 7);
  EXPECT_NE(r.forensics_text().find("EQUIVALENT"), std::string::npos);
}

TEST(Align, KeyMismatchYieldsFirstDivergenceWithContext) {
  const std::vector<CapturedEvent> a = one_round(1, "c1");
  const std::vector<CapturedEvent> b = one_round(1, "c2");

  const AlignResult r = align(a, b);
  ASSERT_FALSE(r.equivalent);
  ASSERT_NE(r.first(), nullptr);
  const Divergence& d = *r.first();
  EXPECT_EQ(d.stream, "dep/d1");
  EXPECT_EQ(d.index, 0u);
  EXPECT_EQ(d.key_a, "produce p -> {c1}");
  EXPECT_EQ(d.key_b, "produce p -> {c2}");
  EXPECT_FALSE(d.context_a.empty());
  EXPECT_FALSE(d.context_b.empty());
  // The anchor line is marked in the raw-event window.
  EXPECT_EQ(d.context_a.front().rfind(">> ", 0), 0u);

  const std::string text = r.forensics_text();
  EXPECT_NE(text.find("DIVERGED"), std::string::npos);
  EXPECT_NE(text.find("first divergence: stream dep/d1"), std::string::npos);
  EXPECT_NE(text.find("context A:"), std::string::npos);
  EXPECT_NE(text.find("context B:"), std::string::npos);
}

TEST(Align, MissingStreamIsADivergence) {
  const std::vector<CapturedEvent> a = one_round(1, "c1");
  const std::vector<CapturedEvent> b;  // B never produced anything

  const AlignResult r = align(a, b);
  ASSERT_FALSE(r.equivalent);
  ASSERT_NE(r.first(), nullptr);
  EXPECT_EQ(r.first()->stream, "dep/d1");
  EXPECT_EQ(r.first()->key_b, "<missing stream>");
}

TEST(Align, BlockingStreamsAreOptIn) {
  std::vector<CapturedEvent> a = one_round(1, "c1");
  a.push_back(ev(1, EventKind::ThreadBlock, "c1", "d1"));
  a.push_back(ev(2, EventKind::ThreadUnblock, "c1"));
  const std::vector<CapturedEvent> b = one_round(1, "c1");

  // Default: blocking dynamics are timing across organizations — ignored.
  EXPECT_TRUE(align(a, b).equivalent);

  AlignOptions options;
  options.compare_blocking = true;
  const AlignResult strict = align(a, b, options);
  ASSERT_FALSE(strict.equivalent);
  EXPECT_EQ(strict.first()->stream, "block/c1");
  EXPECT_EQ(strict.first()->key_b, "<missing stream>");
}

TEST(Align, TailInsensitiveDropsMidFlightActivity) {
  // A squeezed in the start of round 2 before the pass bound stopped it;
  // B did not. Semantically both completed one round.
  std::vector<CapturedEvent> a = one_round(1, "c1");
  a.push_back(ev(5, EventKind::Produce, "p", "d1"));  // incomplete tail
  std::vector<CapturedEvent> b = one_round(1, "c1");

  EXPECT_FALSE(align(a, b).equivalent);  // full comparison sees the tail

  AlignOptions options;
  options.tail_insensitive = true;
  EXPECT_TRUE(align(a, b, options).equivalent);
}

TEST(Align, RoundsPerDepCapsTheComparison) {
  std::vector<CapturedEvent> a = one_round(1, "c1");
  std::vector<CapturedEvent> extra = one_round(10, "c1");
  a.insert(a.end(), extra.begin(), extra.end());  // A completed 2 rounds
  const std::vector<CapturedEvent> b = one_round(1, "c1");  // B only 1

  AlignOptions options;
  options.tail_insensitive = true;
  EXPECT_FALSE(align(a, b, options).equivalent);
  options.rounds_per_dep = 1;
  EXPECT_TRUE(align(a, b, options).equivalent);
}

TEST(Align, TailInsensitiveComparesStatesByCommonPrefix) {
  std::vector<CapturedEvent> a;
  a.push_back(ev(0, EventKind::FsmState, "t1", "", 0));
  a.push_back(ev(3, EventKind::FsmState, "t1", "", 1));
  std::vector<CapturedEvent> b = a;
  b.push_back(ev(6, EventKind::FsmState, "t1", "", 0));  // next pass begun

  EXPECT_FALSE(align(a, b).equivalent);

  AlignOptions options;
  options.tail_insensitive = true;
  EXPECT_TRUE(align(a, b, options).equivalent);

  // A genuine mismatch inside the common prefix still diverges.
  b[1].value = 2;
  const AlignResult r = align(a, b, options);
  ASSERT_FALSE(r.equivalent);
  EXPECT_EQ(r.first()->stream, "fsm/t1");
  EXPECT_EQ(r.first()->key_a, "state 1");
  EXPECT_EQ(r.first()->key_b, "state 2");
}

TEST(Align, FirstDivergenceIsEarliestByCycle) {
  // Two diverging streams; d2 diverges at cycle 2, d1 at cycle 10.
  std::vector<CapturedEvent> a;
  a.push_back(ev(2, EventKind::Produce, "p", "d2"));
  a.push_back(ev(3, EventKind::Consume, "c1", "d2"));
  a.push_back(ev(3, EventKind::RoundComplete, "", "d2"));
  std::vector<CapturedEvent> extra = one_round(10, "c1");
  a.insert(a.end(), extra.begin(), extra.end());

  std::vector<CapturedEvent> b;
  b.push_back(ev(2, EventKind::Produce, "p", "d2"));
  b.push_back(ev(3, EventKind::Consume, "c2", "d2"));  // differs
  b.push_back(ev(3, EventKind::RoundComplete, "", "d2"));
  extra = one_round(10, "c2");  // differs too, later
  b.insert(b.end(), extra.begin(), extra.end());

  const AlignResult r = align(a, b);
  ASSERT_EQ(r.divergences.size(), 2u);
  EXPECT_EQ(r.first()->stream, "dep/d2");
  EXPECT_NE(r.forensics_text().find("also diverged:"), std::string::npos);
}

TEST(Align, JsonRenderingParsesBack) {
  const AlignResult r = align(one_round(1, "c1"), one_round(1, "c2"));
  support::JsonValue doc;
  std::string error;
  ASSERT_TRUE(support::parse_json(r.json(), &doc, &error)) << error;
  ASSERT_NE(doc.find("equivalent"), nullptr);
  EXPECT_FALSE(doc.find("equivalent")->bool_value);
  ASSERT_NE(doc.find("divergences"), nullptr);
  EXPECT_EQ(doc.find("divergences")->elements.size(), 1u);
}

TEST(RenderThreadTail, KeepsTheLastEventsOfOneThread) {
  std::vector<CapturedEvent> events;
  events.push_back(ev(1, EventKind::FsmState, "t1", "", 0));
  events.push_back(ev(2, EventKind::FsmState, "t2", "", 0));
  events.push_back(ev(3, EventKind::ThreadBlock, "t1", "d1"));
  events.push_back(ev(4, EventKind::ThreadBlock, "t2", "d2"));

  const std::string tail = render_thread_tail(events, "t1", 1);
  EXPECT_NE(tail.find("cycle 3"), std::string::npos);
  EXPECT_EQ(tail.find("cycle 1"), std::string::npos);  // only last 1 kept
  EXPECT_EQ(tail.find("t2"), std::string::npos);
  EXPECT_EQ(render_thread_tail(events, "missing", 5), "");
}

}  // namespace
}  // namespace hicsync::diffview
