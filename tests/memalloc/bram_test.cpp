#include "memalloc/bram.h"

#include <gtest/gtest.h>

namespace hicsync::memalloc {
namespace {

TEST(Bram, LegalShapesCoverFullCapacity) {
  for (const BramShape& s : BramModel::legal_shapes()) {
    // ×9/×18/×36 use parity bits: capacity is 18 Kbit; ×1/×2/×4 only reach
    // the 16 Kbit data array.
    if (s.width % 9 == 0) {
      EXPECT_EQ(s.capacity_bits(), 18 * 1024) << s.width;
    } else {
      EXPECT_EQ(s.capacity_bits(), 16 * 1024) << s.width;
    }
  }
}

TEST(Bram, ShapesOrderedNarrowFirst) {
  const auto& shapes = BramModel::legal_shapes();
  for (std::size_t i = 1; i < shapes.size(); ++i) {
    EXPECT_LT(shapes[i - 1].width, shapes[i].width);
  }
}

TEST(Bram, ShapeForWidthExactMatches) {
  EXPECT_EQ(BramModel::shape_for_width(1).width, 1);
  EXPECT_EQ(BramModel::shape_for_width(9).width, 9);
  EXPECT_EQ(BramModel::shape_for_width(36).width, 36);
}

TEST(Bram, ShapeForWidthRoundsUp) {
  EXPECT_EQ(BramModel::shape_for_width(3).width, 4);
  EXPECT_EQ(BramModel::shape_for_width(8).width, 9);
  EXPECT_EQ(BramModel::shape_for_width(12).width, 18);
  EXPECT_EQ(BramModel::shape_for_width(32).width, 36);
}

TEST(Bram, ShapeForOversizeWidthClamps) {
  EXPECT_EQ(BramModel::shape_for_width(64).width, 36);
}

TEST(Bram, PrimitivesForSmallFitsInOne) {
  EXPECT_EQ(BramModel::primitives_for(32, 10), 1);
  EXPECT_EQ(BramModel::primitives_for(1, 16384), 1);
  EXPECT_EQ(BramModel::primitives_for(36, 512), 1);
}

TEST(Bram, PrimitivesGangInDepth) {
  EXPECT_EQ(BramModel::primitives_for(36, 513), 2);
  EXPECT_EQ(BramModel::primitives_for(1, 16385), 2);
}

TEST(Bram, PrimitivesGangInWidth) {
  // 64-bit words: 2 columns of ×36.
  EXPECT_EQ(BramModel::primitives_for(64, 512), 2);
  EXPECT_EQ(BramModel::primitives_for(72, 513), 4);
}

TEST(Bram, PrimitivesForDegenerate) {
  EXPECT_EQ(BramModel::primitives_for(0, 100), 0);
  EXPECT_EQ(BramModel::primitives_for(8, 0), 0);
}

}  // namespace
}  // namespace hicsync::memalloc
