#include "memalloc/portplan.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"

namespace hicsync::memalloc {
namespace {

using hic::testing::compile;
using hic::testing::kFigure1;

struct Built {
  std::unique_ptr<hic::testing::Compiled> c;
  MemoryMap map;
  std::vector<synth::ThreadFsm> fsms;
  std::vector<BramPortPlan> plans;
};

Built build(const std::string& src) {
  Built b;
  b.c = compile(src);
  EXPECT_TRUE(b.c->ok) << b.c->diags.str();
  b.map = Allocator().allocate(*b.c->sema);
  for (const auto& t : b.c->program.threads) {
    b.fsms.push_back(synth::ThreadFsm::synthesize(t, *b.c->sema));
  }
  b.plans = PortPlanner::plan(*b.c->sema, b.map, b.fsms);
  return b;
}

TEST(PortPlan, Figure1Assignment) {
  auto b = build(kFigure1);
  ASSERT_EQ(b.plans.size(), 1u);
  const BramPortPlan& p = b.plans[0];
  EXPECT_EQ(p.producer_pseudo_ports(), 1);
  EXPECT_EQ(p.consumer_pseudo_ports(), 2);
  const PortClient* prod = p.client_for("t1", LogicalPort::D);
  ASSERT_NE(prod, nullptr);
  EXPECT_EQ(prod->pseudo_port, 0);
  ASSERT_EQ(prod->deps.size(), 1u);
  const PortClient* c2 = p.client_for("t2", LogicalPort::C);
  const PortClient* c3 = p.client_for("t3", LogicalPort::C);
  ASSERT_NE(c2, nullptr);
  ASSERT_NE(c3, nullptr);
  // Pseudo-port order follows the #consumer pragma order.
  EXPECT_EQ(c2->pseudo_port, 0);
  EXPECT_EQ(c3->pseudo_port, 1);
}

TEST(PortPlan, NoPortAClientsWhenAllAccessesAreDependent) {
  auto b = build(kFigure1);
  for (const auto& c : b.plans[0].clients) {
    EXPECT_NE(c.port, LogicalPort::A);
    EXPECT_NE(c.port, LogicalPort::B);
  }
}

TEST(PortPlan, PlainArrayAccessGoesToPortA) {
  auto b = build(R"(
    thread p () {
      int a;
      int tbl[8];
      #consumer{d, [q,u]}
      a = 1;
      tbl[0] = a;
    }
    thread q () {
      int u;
      #producer{d, [p,a]}
      u = a;
    }
  )");
  ASSERT_EQ(b.plans.size(), 1u);
  const PortClient* pa = b.plans[0].client_for("p", LogicalPort::A);
  ASSERT_NE(pa, nullptr);
  EXPECT_TRUE(pa->deps.empty());
}

TEST(PortPlan, EightConsumers) {
  std::string src = R"(
    thread p () {
      int data;
      #consumer{m, [c0,v0], [c1,v1], [c2,v2], [c3,v3], [c4,v4], [c5,v5], [c6,v6], [c7,v7]}
      data = f();
    }
  )";
  for (int i = 0; i < 8; ++i) {
    std::string n = std::to_string(i);
    src += "thread c" + n + " () { int v" + n + "; #producer{m, [p,data]} v" +
           n + " = g(data); }\n";
  }
  auto b = build(src);
  ASSERT_EQ(b.plans.size(), 1u);
  EXPECT_EQ(b.plans[0].consumer_pseudo_ports(), 8);
  EXPECT_EQ(b.plans[0].producer_pseudo_ports(), 1);
  // Pseudo ports are densely numbered 0..7.
  std::vector<bool> seen(8, false);
  for (const auto& c : b.plans[0].clients) {
    if (c.port == LogicalPort::C) {
      seen[static_cast<std::size_t>(c.pseudo_port)] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(PortPlan, ThreadConsumingTwoDepsHasOnePseudoPort) {
  auto b = build(R"(
    thread p () {
      int a, bb;
      #consumer{da, [c1,u]}
      a = 1;
      #consumer{db, [c1,v]}
      bb = 2;
    }
    thread c1 () {
      int u, v;
      #producer{da, [p,a]}
      u = a;
      #producer{db, [p,bb]}
      v = bb;
    }
  )");
  ASSERT_EQ(b.plans.size(), 1u);
  EXPECT_EQ(b.plans[0].consumer_pseudo_ports(), 1);
  const PortClient* c = b.plans[0].client_for("c1", LogicalPort::C);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->deps.size(), 2u);
}

}  // namespace
}  // namespace hicsync::memalloc
