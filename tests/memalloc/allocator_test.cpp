#include "memalloc/allocator.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"
#include "memalloc/sizing.h"

namespace hicsync::memalloc {
namespace {

using hic::testing::compile;
using hic::testing::kFigure1;

TEST(Sizing, Figure1ThreadSizes) {
  auto c = compile(kFigure1);
  ASSERT_TRUE(c->ok) << c->diags.str();
  auto sizes = analyze_sizes(*c->sema);
  ASSERT_EQ(sizes.size(), 3u);
  // t1: x1 shared (memory), xtmp + x2 registers.
  EXPECT_EQ(sizes[0].thread, "t1");
  EXPECT_EQ(sizes[0].total_bits, 96u);
  EXPECT_EQ(sizes[0].memory_bits, 32u);
  EXPECT_EQ(sizes[0].shared_bits, 32u);
  EXPECT_EQ(sizes[0].register_bits, 64u);
  // t2: both y1 and y2 are private scalars.
  EXPECT_EQ(sizes[1].memory_bits, 0u);
  EXPECT_EQ(sizes[1].register_bits, 64u);
}

TEST(Sizing, ArraysAreMemoryResident) {
  auto c = compile("thread t () { int tbl[16]; tbl[0] = 1; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  auto* tbl = c->sema->lookup("t", "tbl");
  EXPECT_TRUE(is_memory_resident(*tbl));
  auto sizes = analyze_sizes(*c->sema);
  EXPECT_EQ(sizes[0].memory_bits, 512u);
}

TEST(Allocator, Figure1SingleSharedBram) {
  auto c = compile(kFigure1);
  ASSERT_TRUE(c->ok) << c->diags.str();
  MemoryMap map = Allocator().allocate(*c->sema);
  // One BRAM hosting x1; xtmp/x2/y1/y2/z1/z2 are registers.
  ASSERT_EQ(map.brams().size(), 1u);
  EXPECT_EQ(map.registers().size(), 6u);
  const BramInstance& b = map.brams()[0];
  ASSERT_EQ(b.placements.size(), 1u);
  EXPECT_EQ(b.placements[0].symbol->qualified_name(), "t1.x1");
  EXPECT_EQ(b.placements[0].base_address, 0u);
  ASSERT_EQ(b.dependencies.size(), 1u);
  EXPECT_EQ(b.dependencies[0]->id, "mt1");
}

TEST(Allocator, LocateFindsPlacement) {
  auto c = compile(kFigure1);
  MemoryMap map = Allocator().allocate(*c->sema);
  auto* x1 = c->sema->lookup("t1", "x1");
  auto loc = map.locate(x1);
  ASSERT_NE(loc.bram, nullptr);
  ASSERT_NE(loc.placement, nullptr);
  EXPECT_EQ(loc.placement->symbol, x1);
  // Registers have no location.
  auto* y2 = c->sema->lookup("t2", "y2");
  EXPECT_EQ(map.locate(y2).bram, nullptr);
}

TEST(Allocator, SharedVariablesOfOneProducerShareBram) {
  auto c = compile(R"(
    thread p () {
      int a, b;
      #consumer{da, [c1,u]}
      a = 1;
      #consumer{db, [c1,v]}
      b = 2;
    }
    thread c1 () {
      int u, v;
      #producer{da, [p,a]}
      u = a;
      #producer{db, [p,b]}
      v = b;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  MemoryMap map = Allocator().allocate(*c->sema);
  ASSERT_EQ(map.brams().size(), 1u);
  EXPECT_EQ(map.brams()[0].placements.size(), 2u);
  EXPECT_EQ(map.brams()[0].dependencies.size(), 2u);
  // Distinct non-overlapping addresses.
  const auto& p0 = map.brams()[0].placements[0];
  const auto& p1 = map.brams()[0].placements[1];
  EXPECT_NE(p0.base_address, p1.base_address);
}

TEST(Allocator, DistinctProducersGetDistinctBrams) {
  auto c = compile(R"(
    thread p1 () {
      int a;
      #consumer{da, [c1,u]}
      a = 1;
    }
    thread p2 () {
      int b;
      #consumer{db, [c1,v]}
      b = 2;
    }
    thread c1 () {
      int u, v;
      #producer{da, [p1,a]}
      u = a;
      #producer{db, [p2,b]}
      v = b;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  MemoryMap map = Allocator().allocate(*c->sema);
  EXPECT_EQ(map.brams().size(), 2u);
}

TEST(Allocator, ArrayPackedIntoSharedBramWhenItFits) {
  auto c = compile(R"(
    thread p () {
      int a;
      int tbl[8];
      #consumer{d, [q,u]}
      a = 1;
      tbl[0] = a;
    }
    thread q () {
      int u;
      #producer{d, [p,a]}
      u = a;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  MemoryMap map = Allocator().allocate(*c->sema);
  // tbl (256 bits) fits in the shared 36-wide BRAM.
  ASSERT_EQ(map.brams().size(), 1u);
  EXPECT_EQ(map.brams()[0].placements.size(), 2u);
}

TEST(Allocator, PackUnrelatedDisabledSeparates) {
  auto c = compile(R"(
    thread p () {
      int a;
      int tbl[8];
      #consumer{d, [q,u]}
      a = 1;
      tbl[0] = a;
    }
    thread q () {
      int u;
      #producer{d, [p,a]}
      u = a;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  MemoryMap map =
      Allocator(AllocatorOptions{.pack_unrelated = false}).allocate(*c->sema);
  EXPECT_EQ(map.brams().size(), 2u);
}

TEST(Allocator, WordAddressingMultiWordElements) {
  // A 64-bit user type needs 2 words of a 36-bit-wide BRAM per element.
  auto c = compile(R"(
    type wide = bits<64>;
    thread t () {
      wide w[4];
      w[0] = 1;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  MemoryMap map = Allocator().allocate(*c->sema);
  ASSERT_EQ(map.brams().size(), 1u);
  const auto& p = map.brams()[0].placements[0];
  EXPECT_EQ(p.words, 8u);  // 4 elements × 2 words
}

TEST(Allocator, TotalPrimitivesForLargeArray) {
  auto c = compile(R"(
    thread t () {
      int big[2048];
      big[0] = 1;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  MemoryMap map = Allocator().allocate(*c->sema);
  // 2048 words of 36-bit shape = 4 primitives of 512 words.
  EXPECT_EQ(map.total_primitives(), 4);
}

TEST(Allocator, NaiveBoundAtLeastAllocatorResult) {
  auto c = compile(R"(
    thread p () {
      int a, b;
      #consumer{da, [c1,u]}
      a = 1;
      #consumer{db, [c1,v]}
      b = 2;
    }
    thread c1 () {
      int u, v;
      #producer{da, [p,a]}
      u = a;
      #producer{db, [p,b]}
      v = b;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  MemoryMap map = Allocator().allocate(*c->sema);
  EXPECT_LE(map.total_primitives(), naive_bram_bound(*c->sema));
}

TEST(Allocator, StrRendersMap) {
  auto c = compile(kFigure1);
  MemoryMap map = Allocator().allocate(*c->sema);
  std::string s = map.str();
  EXPECT_NE(s.find("t1.x1"), std::string::npos);
  EXPECT_NE(s.find("dependency mt1"), std::string::npos);
}

}  // namespace
}  // namespace hicsync::memalloc
