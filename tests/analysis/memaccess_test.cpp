#include "analysis/memaccess.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"

namespace hicsync::analysis {
namespace {

using hic::testing::compile;
using hic::testing::kFigure1;

struct Built {
  std::unique_ptr<hic::testing::Compiled> c;
  std::vector<Cfg> cfgs;
  MemAccessGraph g;
};

Built build(const std::string& src) {
  Built b;
  b.c = compile(src);
  EXPECT_TRUE(b.c->ok) << b.c->diags.str();
  for (const auto& t : b.c->program.threads) {
    b.cfgs.push_back(Cfg::build(t));
  }
  b.g = MemAccessGraph::build(b.c->program, *b.c->sema, b.cfgs);
  return b;
}

TEST(MemAccess, Figure1OpCounts) {
  auto b = build(kFigure1);
  // t1: reads xtmp, x2; writes x1  -> 3 ops.
  EXPECT_EQ(b.g.op_count("t1"), 3);
  // t2: reads x1, y2; writes y1    -> 3 ops.
  EXPECT_EQ(b.g.op_count("t2"), 3);
  EXPECT_EQ(b.g.op_count("t3"), 3);
}

TEST(MemAccess, AccessorsOfSharedVariable) {
  auto b = build(kFigure1);
  auto* x1 = b.c->sema->lookup("t1", "x1");
  auto acc = b.g.accessors(x1);
  ASSERT_EQ(acc.size(), 3u);
  // Producer writes, consumers read.
  for (const auto& a : acc) {
    if (a.thread == "t1") {
      EXPECT_EQ(a.writes, 1);
      EXPECT_EQ(a.reads, 0);
    } else {
      EXPECT_EQ(a.writes, 0);
      EXPECT_EQ(a.reads, 1);
    }
  }
}

TEST(MemAccess, PartialOrderIncludesCrossThreadEdges) {
  auto b = build(kFigure1);
  auto* x1 = b.c->sema->lookup("t1", "x1");
  // Find the producer write op and consumer read ops of x1.
  int writes = 0;
  int cross_edges = 0;
  for (const auto& op : b.g.ops()) {
    if (op.symbol == x1 && op.is_write) ++writes;
  }
  for (const auto& [from, to] : b.g.order_edges()) {
    const auto& f = b.g.ops()[static_cast<std::size_t>(from)];
    const auto& t = b.g.ops()[static_cast<std::size_t>(to)];
    if (f.thread != t.thread) {
      ++cross_edges;
      EXPECT_TRUE(f.is_write);
      EXPECT_FALSE(t.is_write);
      EXPECT_EQ(f.symbol, x1);
    }
  }
  EXPECT_EQ(writes, 1);
  EXPECT_EQ(cross_edges, 2);  // one per consumer
}

TEST(MemAccess, PartialOrderIsConsistentForDag) {
  auto b = build(kFigure1);
  EXPECT_TRUE(b.g.is_consistent());
}

TEST(MemAccess, ProgramOrderPreservedWithinThread) {
  auto b = build("thread t () { int a, x, y; a = 1; x = a; y = x; }");
  // All intra-thread edges go forward in seq order.
  for (const auto& [from, to] : b.g.order_edges()) {
    const auto& f = b.g.ops()[static_cast<std::size_t>(from)];
    const auto& t = b.g.ops()[static_cast<std::size_t>(to)];
    if (f.thread == t.thread) {
      EXPECT_LT(f.seq, t.seq);
    }
  }
}

TEST(MemAccess, SymbolsListsAllTouched) {
  auto b = build(kFigure1);
  // 7 distinct symbols are touched: t1{x1,xtmp,x2}, t2{y1,y2}, t3{z1,z2}.
  EXPECT_EQ(b.g.symbols().size(), 7u);
}

}  // namespace
}  // namespace hicsync::analysis
