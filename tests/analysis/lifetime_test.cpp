#include "analysis/lifetime.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"

namespace hicsync::analysis {
namespace {

using hic::testing::compile;

struct Built {
  std::unique_ptr<hic::testing::Compiled> c;
  std::vector<Cfg> cfgs;
  std::vector<std::unique_ptr<UseDefAnalysis>> ud;
  std::vector<std::unique_ptr<LivenessAnalysis>> live;
};

Built build(const std::string& src) {
  Built b;
  b.c = compile(src);
  EXPECT_TRUE(b.c->ok) << b.c->diags.str();
  for (const auto& t : b.c->program.threads) {
    b.cfgs.push_back(Cfg::build(t));
  }
  for (const auto& cfg : b.cfgs) {
    b.ud.push_back(std::make_unique<UseDefAnalysis>(cfg));
  }
  for (std::size_t i = 0; i < b.cfgs.size(); ++i) {
    b.live.push_back(
        std::make_unique<LivenessAnalysis>(b.cfgs[i], *b.ud[i]));
  }
  return b;
}

const CfgNode* assign_node(const Cfg& cfg, const std::string& lhs) {
  for (const auto& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::Statement && n.stmt != nullptr &&
        n.stmt->kind == hic::StmtKind::Assign) {
      const hic::Expr* root = n.stmt->target.get();
      while (root->kind == hic::ExprKind::Index ||
             root->kind == hic::ExprKind::Member) {
        root = root->operands[0].get();
      }
      if (root->name == lhs) return &n;
    }
  }
  return nullptr;
}

TEST(Liveness, ValueLiveBetweenDefAndUse) {
  auto b = build("thread t () { int a, x, y; a = 1; x = 2; y = a; }");
  const Cfg& cfg = b.cfgs[0];
  const auto& live = *b.live[0];
  const CfgNode* mid = assign_node(cfg, "x");
  ASSERT_NE(mid, nullptr);
  auto* a = b.c->sema->lookup("t", "a");
  EXPECT_TRUE(live.is_live_in(mid->id, a));
  EXPECT_TRUE(live.is_live_out(mid->id, a));
}

TEST(Liveness, DeadAfterLastUse) {
  auto b = build("thread t () { int a, y; a = 1; y = a; y = 2; }");
  const Cfg& cfg = b.cfgs[0];
  const auto& live = *b.live[0];
  auto* a = b.c->sema->lookup("t", "a");
  // After y = a, `a` is dead.
  const CfgNode* last = assign_node(cfg, "y");
  // assign_node finds the first y-assignment; find the second.
  const CfgNode* second_y = nullptr;
  for (const auto& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::Statement && n.stmt != nullptr &&
        n.stmt->kind == hic::StmtKind::Assign && n.stmt != last->stmt) {
      const hic::Expr* root = n.stmt->target.get();
      if (root->kind == hic::ExprKind::VarRef && root->name == "y") {
        second_y = &n;
      }
    }
  }
  ASSERT_NE(second_y, nullptr);
  EXPECT_FALSE(live.is_live_in(second_y->id, a));
}

TEST(Liveness, NotLiveBeforeDef) {
  auto b = build("thread t () { int a, x, y; x = 5; a = 1; y = a; }");
  const Cfg& cfg = b.cfgs[0];
  const auto& live = *b.live[0];
  auto* a = b.c->sema->lookup("t", "a");
  const CfgNode* first = assign_node(cfg, "x");
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(live.is_live_in(first->id, a));
}

TEST(Liveness, LoopVariableLiveAroundLoop) {
  auto b = build(R"(
    thread t () {
      int i, n, acc;
      i = 0;
      while (i < n) { acc = acc + i; i = i + 1; }
    }
  )");
  const Cfg& cfg = b.cfgs[0];
  const auto& live = *b.live[0];
  auto* i_sym = b.c->sema->lookup("t", "i");
  // i is live at the loop condition.
  for (const auto& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::Branch) {
      EXPECT_TRUE(live.is_live_in(n.id, i_sym));
    }
  }
}

TEST(Liveness, DeadSymbolDetected) {
  auto b = build("thread t () { int used, dead; used = 1; used = used + 1; dead = 7; }");
  auto dead = b.live[0]->dead_symbols();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0]->name(), "dead");
}

TEST(Liveness, SharedSymbolNeverDead) {
  auto b = build(hic::testing::kFigure1);
  // x1 in t1 is written but never read locally; because it is shared it must
  // not be reported dead.
  auto dead = b.live[0]->dead_symbols();
  for (auto* s : dead) {
    EXPECT_NE(s->qualified_name(), "t1.x1");
  }
}

TEST(Liveness, PeakLiveBitsSequentialReuse) {
  // a and b are never live simultaneously: peak is one int (32) not two.
  auto b1 = build("thread t () { int a, x; a = 1; x = a; }");
  EXPECT_EQ(b1.live[0]->peak_live_bits(), 32u);

  auto b2 = build("thread t () { int a, b, x; a = 1; b = 2; x = a + b; }");
  EXPECT_EQ(b2.live[0]->peak_live_bits(), 64u);
}

TEST(Liveness, PeakIncludesSharedStorage) {
  auto b = build(hic::testing::kFigure1);
  // t1: x1 is shared (32 bits) and xtmp/x2 are live-in to the assignment
  // (they are read but never written — conservatively live from entry).
  EXPECT_GE(b.live[0]->peak_live_bits(), 32u);
}

}  // namespace
}  // namespace hicsync::analysis
