#include "analysis/cfg.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"

namespace hicsync::analysis {
namespace {

using hic::testing::compile;

const hic::ThreadDecl& only_thread(const hic::testing::Compiled& c) {
  return c.program.threads.at(0);
}

TEST(Cfg, StraightLine) {
  auto c = compile("thread t () { int a, b; a = 1; b = a + 1; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  // entry, 2 statements, exit.
  EXPECT_EQ(cfg.nodes().size(), 4u);
  EXPECT_TRUE(cfg.all_reachable());
  // Entry has exactly one successor; exit none.
  EXPECT_EQ(cfg.node(cfg.entry()).succs.size(), 1u);
  EXPECT_TRUE(cfg.node(cfg.exit()).succs.empty());
}

TEST(Cfg, EmptyThread) {
  auto c = compile("thread t () { int unused; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  ASSERT_EQ(cfg.nodes().size(), 2u);
  // entry connects straight to exit.
  ASSERT_EQ(cfg.node(cfg.entry()).succs.size(), 1u);
  EXPECT_EQ(cfg.node(cfg.entry()).succs[0], cfg.exit());
}

TEST(Cfg, IfWithElseHasDiamond) {
  auto c = compile(R"(
    thread t () {
      int x;
      if (x > 0) x = 1; else x = 2;
      x = 3;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  // entry, branch, then-stmt, else-stmt, join-stmt, exit = 6 nodes.
  EXPECT_EQ(cfg.nodes().size(), 6u);
  // The branch has two successors.
  const CfgNode* branch = nullptr;
  for (const auto& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::Branch) branch = &n;
  }
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->succs.size(), 2u);
  EXPECT_TRUE(cfg.all_reachable());
}

TEST(Cfg, IfWithoutElseFallsThrough) {
  auto c = compile(R"(
    thread t () {
      int x;
      if (x > 0) x = 1;
      x = 3;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  const CfgNode* branch = nullptr;
  for (const auto& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::Branch) branch = &n;
  }
  ASSERT_NE(branch, nullptr);
  // Branch goes to the then-statement and to the join statement.
  EXPECT_EQ(branch->succs.size(), 2u);
}

TEST(Cfg, WhileLoopHasBackEdge) {
  auto c = compile(R"(
    thread t () {
      int x;
      while (x > 0) x = x - 1;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  const CfgNode* branch = nullptr;
  const CfgNode* body = nullptr;
  for (const auto& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::Branch) branch = &n;
    if (n.kind == CfgNodeKind::Statement) body = &n;
  }
  ASSERT_NE(branch, nullptr);
  ASSERT_NE(body, nullptr);
  // Body's successor is the branch (back edge).
  ASSERT_EQ(body->succs.size(), 1u);
  EXPECT_EQ(body->succs[0], branch->id);
}

TEST(Cfg, ForLoopStructure) {
  auto c = compile(R"(
    thread t () {
      int i, acc;
      for (i = 0; i < 4; i = i + 1) acc = acc + i;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  // entry, init, branch, body, step, exit.
  EXPECT_EQ(cfg.nodes().size(), 6u);
  EXPECT_TRUE(cfg.all_reachable());
}

TEST(Cfg, BreakLeavesLoop) {
  auto c = compile(R"(
    thread t () {
      int x;
      while (1) { x = x + 1; if (x == 3) break; }
      x = 0;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  EXPECT_TRUE(cfg.all_reachable());
  // The statement after the loop must be reachable from inside the loop
  // (via break) — find the x=0 node and check it has >= 2 preds
  // (loop-condition-false and break).
  const CfgNode* after = nullptr;
  for (const auto& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::Statement && n.stmt != nullptr &&
        n.stmt->kind == hic::StmtKind::Assign &&
        n.stmt->value->kind == hic::ExprKind::IntLit &&
        n.stmt->value->int_value == 0) {
      after = &n;
    }
  }
  ASSERT_NE(after, nullptr);
  EXPECT_GE(after->preds.size(), 2u);
}

TEST(Cfg, ContinueReturnsToCondition) {
  auto c = compile(R"(
    thread t () {
      int x;
      while (x > 0) { if (x == 5) continue; x = x - 1; }
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  EXPECT_TRUE(cfg.all_reachable());
  // The loop condition branch should have 3 preds: entry, continue edge,
  // and the bottom-of-body back edge.
  const CfgNode* cond = nullptr;
  for (const auto& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::Branch && n.stmt != nullptr &&
        n.stmt->kind == hic::StmtKind::While) {
      cond = &n;
    }
  }
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->preds.size(), 3u);
}

TEST(Cfg, CaseFansOut) {
  auto c = compile(R"(
    thread t () {
      int s, x;
      case (s) {
        when 0: x = 1;
        when 1: x = 2;
        when 2: x = 3;
      }
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  const CfgNode* branch = nullptr;
  for (const auto& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::Branch) branch = &n;
  }
  ASSERT_NE(branch, nullptr);
  // Three arms plus implicit no-match fallthrough to exit.
  EXPECT_EQ(branch->succs.size(), 4u);
}

TEST(Cfg, CaseWithDefaultHasNoFallthrough) {
  auto c = compile(R"(
    thread t () {
      int s, x;
      case (s) {
        when 0: x = 1;
        default: x = 2;
      }
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  const CfgNode* branch = nullptr;
  for (const auto& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::Branch) branch = &n;
  }
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->succs.size(), 2u);
}

TEST(Cfg, ReversePostOrderStartsAtEntry) {
  auto c = compile("thread t () { int a; a = 1; a = 2; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  Cfg cfg = Cfg::build(only_thread(*c));
  auto rpo = cfg.reverse_post_order();
  ASSERT_FALSE(rpo.empty());
  EXPECT_EQ(rpo.front(), cfg.entry());
  EXPECT_EQ(rpo.back(), cfg.exit());
}

}  // namespace
}  // namespace hicsync::analysis
