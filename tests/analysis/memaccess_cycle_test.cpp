#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"
#include "analysis/memaccess.h"

namespace hicsync::analysis {
namespace {

using hic::testing::compile;

TEST(MemAccessCycle, CyclicDependenciesMakePartialOrderInconsistent) {
  // Two threads each consume before they produce: the cross-thread edges
  // plus program order form a cycle — the §1 deadlock symptom visible in
  // the operation order graph.
  auto c = compile(R"(
    thread a () {
      int xa, tmp;
      #producer{d2, [b,xb]}
      tmp = xb;
      #consumer{d1, [b,yb]}
      xa = tmp + 1;
    }
    thread b () {
      int xb, yb, tmp2;
      #producer{d1, [a,xa]}
      yb = xa;
      #consumer{d2, [a,tmp]}
      xb = tmp2;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  std::vector<Cfg> cfgs;
  for (const auto& t : c->program.threads) cfgs.push_back(Cfg::build(t));
  MemAccessGraph g = MemAccessGraph::build(c->program, *c->sema, cfgs);
  EXPECT_FALSE(g.is_consistent());
}

TEST(MemAccessCycle, AcyclicChainStaysConsistent) {
  auto c = compile(R"(
    thread a () {
      int va;
      #consumer{d1, [b,wb]}
      va = 1;
    }
    thread b () {
      int vb, wb;
      #producer{d1, [a,va]}
      wb = va;
      #consumer{d2, [c,wc]}
      vb = wb;
    }
    thread c () {
      int wc;
      #producer{d2, [b,vb]}
      wc = vb;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  std::vector<Cfg> cfgs;
  for (const auto& t : c->program.threads) cfgs.push_back(Cfg::build(t));
  MemAccessGraph g = MemAccessGraph::build(c->program, *c->sema, cfgs);
  EXPECT_TRUE(g.is_consistent());
}

}  // namespace
}  // namespace hicsync::analysis
