#include "analysis/depgraph.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"

namespace hicsync::analysis {
namespace {

using hic::testing::compile;
using hic::testing::kFigure1;

TEST(DepGraph, Figure1HasTwoEdgesNoCycle) {
  auto c = compile(kFigure1);
  ASSERT_TRUE(c->ok) << c->diags.str();
  auto g = ThreadDepGraph::build(c->program, c->sema->dependencies());
  EXPECT_EQ(g.threads().size(), 3u);
  EXPECT_EQ(g.edges().size(), 2u);
  EXPECT_FALSE(g.has_deadlock_risk());
}

TEST(DepGraph, TopologicalOrderProducerFirst) {
  auto c = compile(kFigure1);
  ASSERT_TRUE(c->ok) << c->diags.str();
  auto g = ThreadDepGraph::build(c->program, c->sema->dependencies());
  auto order = g.topological_order();
  ASSERT_EQ(order.size(), 3u);
  // t1 (producer) must come before t2 and t3.
  int pos_t1 = -1;
  int pos_t2 = -1;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (g.threads()[static_cast<std::size_t>(order[i])] == "t1") {
      pos_t1 = static_cast<int>(i);
    }
    if (g.threads()[static_cast<std::size_t>(order[i])] == "t2") {
      pos_t2 = static_cast<int>(i);
    }
  }
  EXPECT_LT(pos_t1, pos_t2);
}

TEST(DepGraph, TwoThreadCycleDetected) {
  auto c = compile(R"(
    thread a () {
      int xa, tmp;
      #producer{d2, [b,xb]}
      tmp = xb;
      #consumer{d1, [b,yb]}
      xa = tmp + 1;
    }
    thread b () {
      int xb, yb, tmp2;
      #producer{d1, [a,xa]}
      yb = xa;
      #consumer{d2, [a,tmp]}
      xb = tmp2;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  auto g = ThreadDepGraph::build(c->program, c->sema->dependencies());
  ASSERT_TRUE(g.has_deadlock_risk());
  auto cycles = g.deadlock_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 2u);
  EXPECT_TRUE(g.topological_order().empty());
  auto reports = g.deadlock_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].find("potential deadlock"), std::string::npos);
  EXPECT_NE(reports[0].find("d1"), std::string::npos);
  EXPECT_NE(reports[0].find("d2"), std::string::npos);
}

TEST(DepGraph, ThreeThreadRingDetected) {
  auto c = compile(R"(
    thread a () {
      int va, wa;
      #producer{dc, [c,vc]}
      wa = vc;
      #consumer{da, [b,wb]}
      va = wa;
    }
    thread b () {
      int vb, wb;
      #producer{da, [a,va]}
      wb = va;
      #consumer{db, [c,wc]}
      vb = wb;
    }
    thread c () {
      int vc, wc;
      #producer{db, [b,vb]}
      wc = vb;
      #consumer{dc, [a,wa]}
      vc = wc;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  auto g = ThreadDepGraph::build(c->program, c->sema->dependencies());
  auto cycles = g.deadlock_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 3u);
}

TEST(DepGraph, ChainIsNotCycle) {
  auto c = compile(R"(
    thread a () {
      int va;
      #consumer{d1, [b,wb]}
      va = 1;
    }
    thread b () {
      int vb, wb;
      #producer{d1, [a,va]}
      wb = va;
      #consumer{d2, [c,wc]}
      vb = wb;
    }
    thread c () {
      int wc;
      #producer{d2, [b,vb]}
      wc = vb;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  auto g = ThreadDepGraph::build(c->program, c->sema->dependencies());
  EXPECT_FALSE(g.has_deadlock_risk());
  EXPECT_EQ(g.topological_order().size(), 3u);
}

TEST(DepGraph, ThreadIndexLookup) {
  auto c = compile(kFigure1);
  auto g = ThreadDepGraph::build(c->program, c->sema->dependencies());
  EXPECT_EQ(g.thread_index("t1"), 0);
  EXPECT_EQ(g.thread_index("t3"), 2);
  EXPECT_EQ(g.thread_index("nope"), -1);
}

}  // namespace
}  // namespace hicsync::analysis
