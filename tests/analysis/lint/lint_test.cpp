// hic-lint end-to-end tests: each fixture under fixtures/ seeds exactly one
// hazard and must trigger exactly its check (and nothing else); plus registry
// metadata, severity-override resolution, and the JSON golden file.
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/lint/lint.h"
#include "core/compiler.h"

namespace hicsync {
namespace {

namespace lint = analysis::lint;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(LINT_FIXTURE_DIR) + "/" + name;
}

/// Compiles one fixture in --lint-only mode (stable source name so the
/// rendered diagnostics are machine-independent).
std::unique_ptr<core::CompileResult> lint_fixture(
    const std::string& name, lint::LintOptions extra = {}) {
  core::CompileOptions options;
  options.lint = std::move(extra);
  options.lint.enabled = true;
  options.lint.only = true;
  options.source_name = name;
  core::Compiler compiler(options);
  return compiler.compile(read_file(fixture_path(name)));
}

struct FixtureCase {
  const char* file;
  const char* check;
  support::Severity severity;
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixtureTest, TriggersExactlyTheSeededCheck) {
  const FixtureCase& c = GetParam();
  auto result = lint_fixture(c.file);
  ASSERT_TRUE(result->ok()) << result->diags().str();

  const auto& diags = result->diags();
  EXPECT_EQ(diags.diagnostics().size(), 1u) << diags.str();
  EXPECT_EQ(diags.check_count(c.check), 1u) << diags.str();
  ASSERT_FALSE(diags.diagnostics().empty());
  const support::Diagnostic& d = diags.diagnostics().front();
  EXPECT_EQ(d.check_id, c.check);
  EXPECT_EQ(d.severity, c.severity);
  EXPECT_EQ(d.file, c.file);
  EXPECT_TRUE(d.loc.valid());
  if (c.severity == support::Severity::Error) {
    EXPECT_EQ(result->lint_error_count(), 1u);
    EXPECT_EQ(result->lint_warning_count(), 0u);
  } else {
    EXPECT_EQ(result->lint_error_count(), 0u);
    EXPECT_EQ(result->lint_warning_count(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllChecks, LintFixtureTest,
    ::testing::Values(
        FixtureCase{"race_unsynced_access.hic", "race-unsynced-access",
                    support::Severity::Error},
        FixtureCase{"consume_before_produce.hic", "consume-before-produce",
                    support::Severity::Error},
        FixtureCase{"duplicate_producer_write.hic", "duplicate-producer-write",
                    support::Severity::Warning},
        FixtureCase{"unreachable_stmt.hic", "unreachable-stmt",
                    support::Severity::Warning},
        FixtureCase{"dead_shared_variable.hic", "dead-shared-variable",
                    support::Severity::Warning},
        FixtureCase{"port_pressure.hic", "port-pressure",
                    support::Severity::Warning},
        FixtureCase{"pragma_consumer_order.hic", "pragma-consumer-order",
                    support::Severity::Warning}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.check;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(LintWitnessTest, ConsumeBeforeProduceReportsStatementPath) {
  auto result = lint_fixture("consume_before_produce.hic");
  ASSERT_TRUE(result->ok());
  ASSERT_EQ(result->diags().diagnostics().size(), 1u);
  const std::string& msg = result->diags().diagnostics().front().message;
  // The refinement over the thread-level SCC report: a statement-level
  // witness naming both blocked threads and the consume→produce path.
  EXPECT_NE(msg.find("statement-level deadlock"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'t1' blocks consuming 'm1'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'t2' blocks consuming 'm2'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("path"), std::string::npos) << msg;
}

TEST(LintRegistryTest, BuiltinChecksHaveUniqueStableMetadata) {
  const auto infos = lint::LintRegistry::builtin().check_infos();
  ASSERT_GE(infos.size(), 6u);
  std::set<std::string> ids;
  for (const auto& info : infos) {
    ASSERT_NE(info.id, nullptr);
    EXPECT_FALSE(std::string(info.id).empty());
    EXPECT_TRUE(ids.insert(info.id).second) << "duplicate id " << info.id;
    ASSERT_NE(info.description, nullptr);
    EXPECT_FALSE(std::string(info.description).empty()) << info.id;
    const lint::LintPass* pass = lint::LintRegistry::builtin().find(info.id);
    ASSERT_NE(pass, nullptr) << info.id;
    EXPECT_STREQ(pass->info().id, info.id);
  }
  EXPECT_EQ(lint::LintRegistry::builtin().find("no-such-check"), nullptr);
  // The PreGenerate stage exists and hosts the port-pressure check.
  const lint::LintPass* pp = lint::LintRegistry::builtin().find("port-pressure");
  ASSERT_NE(pp, nullptr);
  EXPECT_EQ(pp->info().stage, lint::Stage::PreGenerate);
}

TEST(LintDriverTest, DisabledCheckReportsNothing) {
  lint::LintOptions opts;
  opts.disabled.push_back("race-unsynced-access");
  auto result = lint_fixture("race_unsynced_access.hic", opts);
  ASSERT_TRUE(result->ok());
  EXPECT_TRUE(result->diags().diagnostics().empty())
      << result->diags().str();
  EXPECT_EQ(result->lint_error_count(), 0u);
}

TEST(LintDriverTest, AsErrorPromotesWarningCheck) {
  lint::LintOptions opts;
  opts.as_error.push_back("unreachable-stmt");
  auto result = lint_fixture("unreachable_stmt.hic", opts);
  ASSERT_TRUE(result->ok());
  ASSERT_EQ(result->diags().diagnostics().size(), 1u);
  EXPECT_EQ(result->diags().diagnostics().front().severity,
            support::Severity::Error);
  EXPECT_EQ(result->lint_error_count(), 1u);
  EXPECT_EQ(result->lint_warning_count(), 0u);
}

TEST(LintDriverTest, WerrorPromotesEveryWarning) {
  lint::LintOptions opts;
  opts.werror = true;
  auto result = lint_fixture("duplicate_producer_write.hic", opts);
  ASSERT_TRUE(result->ok());
  ASSERT_EQ(result->diags().diagnostics().size(), 1u);
  EXPECT_EQ(result->diags().diagnostics().front().severity,
            support::Severity::Error);
  EXPECT_EQ(result->lint_error_count(), 1u);
}

TEST(LintDriverTest, DisableBeatsPromotion) {
  lint::LintOptions opts;
  opts.werror = true;
  opts.as_error.push_back("unreachable-stmt");
  opts.disabled.push_back("unreachable-stmt");
  auto result = lint_fixture("unreachable_stmt.hic", opts);
  ASSERT_TRUE(result->ok());
  EXPECT_TRUE(result->diags().diagnostics().empty());
}

TEST(LintJsonTest, MatchesGoldenFile) {
  auto result = lint_fixture("race_unsynced_access.hic");
  ASSERT_TRUE(result->ok());
  const std::string golden =
      read_file(fixture_path("race_unsynced_access.golden.json"));
  EXPECT_EQ(result->diags().json(), golden);
}

TEST(LintCleanTest, Figure1HasNoFindings) {
  core::CompileOptions options;
  options.lint.enabled = true;
  core::Compiler compiler(options);
  auto result = compiler.compile(R"(
thread t1 () {
  int x1, xtmp, x2;
  #consumer{mt1, [t2,y1], [t3,z1]}
  x1 = f(xtmp, x2);
}
thread t2 () {
  int y1, y2;
  #producer{mt1, [t1,x1]}
  y1 = g(x1, y2);
}
thread t3 () {
  int z1, z2;
  #producer{mt1, [t1,x1]}
  z1 = h(x1, z2);
}
)");
  ASSERT_TRUE(result->ok());
  EXPECT_TRUE(result->diags().diagnostics().empty())
      << result->diags().str();
  EXPECT_EQ(result->lint_error_count(), 0u);
  EXPECT_EQ(result->lint_warning_count(), 0u);
}

}  // namespace
}  // namespace hicsync
