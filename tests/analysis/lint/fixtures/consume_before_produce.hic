// Seeded hazard: t1 consumes m1 before producing m2 while t2 consumes m2
// before producing m1 — a statement-level deadlock on every path.
// Expected: exactly one consume-before-produce error with a path witness.
thread t1 () {
  int a, b;
  #producer{m1, [t2,p]}
  a = f(p);
  #consumer{m2, [t2,q]}
  b = g(a);
}
thread t2 () {
  int p, q;
  #producer{m2, [t1,b]}
  q = f(b);
  #consumer{m1, [t1,a]}
  p = g(q);
}
