// Seeded hazard: the else-branch write to x1 is not the producing statement
// of dependency mt1, so it can clobber the produced value (write-after-write).
// Expected: exactly one duplicate-producer-write warning.
thread t1 () {
  int x1, c;
  if (c) {
    #consumer{mt1, [t2,y1]}
    x1 = f(c);
  } else {
    x1 = g(c);
  }
}
thread t2 () {
  int y1;
  #producer{mt1, [t1,x1]}
  y1 = g(x1);
}
