// Seeded hazard: the statement after 'break' can never execute.
// Expected: exactly one unreachable-stmt warning.
thread t1 () {
  int n, i;
  while (n) {
    n = f(n);
    break;
    i = g(i);
  }
}
