// Seeded hazard: dependency m fans out to 9 consumer threads, one past the
// arbitration range of 8 consumer pseudo-ports evaluated in the paper.
// Expected: exactly one port-pressure warning.
thread rx () {
  int d, s;
  #consumer{m, [c0,v0], [c1,v1], [c2,v2], [c3,v3], [c4,v4], [c5,v5], [c6,v6], [c7,v7], [c8,v8]}
  d = f(s);
}
thread c0 () {
  int v0;
  #producer{m, [rx,d]}
  v0 = g(d);
}
thread c1 () {
  int v1;
  #producer{m, [rx,d]}
  v1 = g(d);
}
thread c2 () {
  int v2;
  #producer{m, [rx,d]}
  v2 = g(d);
}
thread c3 () {
  int v3;
  #producer{m, [rx,d]}
  v3 = g(d);
}
thread c4 () {
  int v4;
  #producer{m, [rx,d]}
  v4 = g(d);
}
thread c5 () {
  int v5;
  #producer{m, [rx,d]}
  v5 = g(d);
}
thread c6 () {
  int v6;
  #producer{m, [rx,d]}
  v6 = g(d);
}
thread c7 () {
  int v7;
  #producer{m, [rx,d]}
  v7 = g(d);
}
thread c8 () {
  int v8;
  #producer{m, [rx,d]}
  v8 = g(d);
}
