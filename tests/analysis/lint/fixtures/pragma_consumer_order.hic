// Seeded hazard: m1 lists consumers as [t2, t3] but m2 lists [t3, t2]; the
// event-driven static schedule serves consumers in pragma order.
// Expected: exactly one pragma-consumer-order warning.
thread t1 () {
  int x1, x2, s;
  #consumer{m1, [t2,a2], [t3,a3]}
  x1 = f(s);
  #consumer{m2, [t3,b3], [t2,b2]}
  x2 = g(s);
}
thread t2 () {
  int a2, b2;
  #producer{m1, [t1,x1]}
  a2 = g(x1);
  #producer{m2, [t1,x2]}
  b2 = g(x2);
}
thread t3 () {
  int a3, b3;
  #producer{m1, [t1,x1]}
  a3 = g(x1);
  #producer{m2, [t1,x2]}
  b3 = g(x2);
}
