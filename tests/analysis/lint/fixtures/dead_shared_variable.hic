// Seeded hazard: t2 is listed as the consumer of mt1 but its consuming
// statement never reads the produced variable t1.x1.
// Expected: exactly one dead-shared-variable warning.
thread t1 () {
  int x1, xa;
  #consumer{mt1, [t2,y1]}
  x1 = f(xa);
}
thread t2 () {
  int y1, y2;
  #producer{mt1, [t1,x1]}
  y1 = g(y2);
}
