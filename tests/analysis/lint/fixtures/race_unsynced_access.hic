// Seeded hazard: t2's second read of t1.x1 repeats the #producer pragma but
// sema binds only the first site, so the second read is unsynchronized.
// Expected: exactly one race-unsynced-access error.
thread t1 () {
  int x1, xa, xb;
  #consumer{mt1, [t2,y1]}
  x1 = f(xa, xb);
}
thread t2 () {
  int y1, y2;
  #producer{mt1, [t1,x1]}
  y1 = g(x1);
  #producer{mt1, [t1,x1]}
  y2 = g(x1);
}
