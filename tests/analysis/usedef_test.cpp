#include "analysis/usedef.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"

namespace hicsync::analysis {
namespace {

using hic::testing::compile;
using hic::testing::kFigure1;

struct Built {
  std::unique_ptr<hic::testing::Compiled> c;
  std::vector<Cfg> cfgs;
  std::vector<std::unique_ptr<UseDefAnalysis>> ud;
};

Built build(const std::string& src) {
  Built b;
  b.c = compile(src);
  EXPECT_TRUE(b.c->ok) << b.c->diags.str();
  for (const auto& t : b.c->program.threads) {
    b.cfgs.push_back(Cfg::build(t));
  }
  for (const auto& cfg : b.cfgs) {
    b.ud.push_back(std::make_unique<UseDefAnalysis>(cfg));
  }
  return b;
}

TEST(UseDef, CountsDefsAndUses) {
  auto b = build("thread t () { int a, x; a = 1; x = a + a; }");
  const auto& ud = *b.ud[0];
  EXPECT_EQ(ud.defs().size(), 2u);   // a, x
  EXPECT_EQ(ud.uses().size(), 2u);   // a twice
}

TEST(UseDef, SimpleChain) {
  auto b = build("thread t () { int a, x; a = 1; x = a; }");
  const auto& ud = *b.ud[0];
  auto uses = ud.uses();
  ASSERT_EQ(uses.size(), 1u);
  auto defs = ud.reaching_defs(*uses[0]);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0]->symbol->name(), "a");
  EXPECT_TRUE(defs[0]->is_def);
}

TEST(UseDef, RedefinitionKillsEarlierDef) {
  auto b = build("thread t () { int a, x; a = 1; a = 2; x = a; }");
  const auto& ud = *b.ud[0];
  auto uses = ud.uses();
  ASSERT_EQ(uses.size(), 1u);
  auto defs = ud.reaching_defs(*uses[0]);
  // Only the second definition reaches.
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0]->stmt->value->int_value, 2u);
}

TEST(UseDef, BranchMergesBothDefs) {
  auto b = build(R"(
    thread t () {
      int a, c, x;
      if (c > 0) a = 1; else a = 2;
      x = a;
    }
  )");
  const auto& ud = *b.ud[0];
  // Find the use of `a` in x = a.
  const Access* use_a = nullptr;
  for (const auto& a : ud.accesses()) {
    if (!a.is_def && a.symbol->name() == "a") use_a = &a;
  }
  ASSERT_NE(use_a, nullptr);
  EXPECT_EQ(ud.reaching_defs(*use_a).size(), 2u);
}

TEST(UseDef, LoopCarriedDefReaches) {
  auto b = build(R"(
    thread t () {
      int i, n;
      i = 0;
      while (i < n) i = i + 1;
    }
  )");
  const auto& ud = *b.ud[0];
  // The use of i inside `i = i + 1` sees both the initial def and itself.
  const Access* loop_use = nullptr;
  for (const auto& a : ud.accesses()) {
    if (!a.is_def && a.symbol->name() == "i" && a.stmt != nullptr &&
        a.stmt->kind == hic::StmtKind::Assign) {
      loop_use = &a;
    }
  }
  ASSERT_NE(loop_use, nullptr);
  EXPECT_EQ(ud.reaching_defs(*loop_use).size(), 2u);
}

TEST(UseDef, DefUseChain) {
  auto b = build("thread t () { int a, x, y; a = 1; x = a; y = a; }");
  const auto& ud = *b.ud[0];
  auto defs = ud.defs();
  const Access* def_a = nullptr;
  for (const auto* d : defs) {
    if (d->symbol->name() == "a") def_a = d;
  }
  ASSERT_NE(def_a, nullptr);
  EXPECT_EQ(ud.reached_uses(*def_a).size(), 2u);
}

TEST(UseDef, UndefinedUseDetected) {
  auto b = build("thread t () { int a, x; x = a; a = 1; }");
  const auto& ud = *b.ud[0];
  auto undef = ud.undefined_uses();
  ASSERT_EQ(undef.size(), 1u);
  EXPECT_EQ(undef[0]->symbol->name(), "a");
}

TEST(UseDef, ArrayWriteDoesNotKill) {
  auto b = build(R"(
    thread t () {
      int tbl[4], x, i;
      tbl[0] = 1;
      tbl[i] = 2;
      x = tbl[3];
    }
  )");
  const auto& ud = *b.ud[0];
  const Access* use_tbl = nullptr;
  for (const auto& a : ud.accesses()) {
    if (!a.is_def && a.symbol->name() == "tbl") use_tbl = &a;
  }
  ASSERT_NE(use_tbl, nullptr);
  // Both array writes may define the element read.
  EXPECT_EQ(ud.reaching_defs(*use_tbl).size(), 2u);
}

TEST(UseDef, BranchConditionCountsAsUse) {
  auto b = build(R"(
    thread t () {
      int c, x;
      c = 1;
      if (c == 1) x = 2;
    }
  )");
  const auto& ud = *b.ud[0];
  int uses_of_c = 0;
  for (const auto& a : ud.accesses()) {
    if (!a.is_def && a.symbol->name() == "c") ++uses_of_c;
  }
  EXPECT_EQ(uses_of_c, 1);
}

TEST(UseDef, InterThreadReadsDetected) {
  auto b = build(kFigure1);
  // t2 (index 1) reads t1.x1.
  auto reads = extract_interthread_reads(b.cfgs[1], *b.ud[1]);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].symbol->qualified_name(), "t1.x1");
  // t1 (producer) has no inter-thread reads.
  EXPECT_TRUE(extract_interthread_reads(b.cfgs[0], *b.ud[0]).empty());
}

TEST(UseDef, InterThreadReadsMatchPragmaDependencies) {
  // Cross-check: use-def-derived consumers equal pragma-declared consumers
  // (the paper's claim that pragmas are just a convenience for analysis).
  auto b = build(kFigure1);
  const auto& dep = b.c->sema->dependencies()[0];
  std::size_t consumers_found = 0;
  for (std::size_t i = 0; i < b.cfgs.size(); ++i) {
    auto reads = extract_interthread_reads(b.cfgs[i], *b.ud[i]);
    for (const auto& r : reads) {
      if (r.symbol == dep.shared_var) ++consumers_found;
    }
  }
  EXPECT_EQ(consumers_found, dep.consumers.size());
}

}  // namespace
}  // namespace hicsync::analysis
