// Counterexample replay: refutations from the abstract checker must
// reproduce on the cycle-accurate simulator (sim::SystemSim + trace bus)
// for real schedule deadlocks, and must honestly report NOT reproduced for
// abstract-only refutations (token stealing under fair round-robin).
#include "verify/replay.h"

#include <gtest/gtest.h>

#include "verify_test_util.h"

namespace hicsync::verify {
namespace {

using verify_test::compile_for_verify;
using verify_test::fixture_path;
using verify_test::lint_fixture_path;
using verify_test::read_file;
using verify_test::verify_source;

ReplayOptions quick_replay() {
  ReplayOptions options;
  options.max_cycles = 5000;
  return options;
}

ReplayResult refute_and_replay(const core::CompileResult& c,
                               sim::OrgKind org) {
  VerifyResult r = verify_source(c, org);
  EXPECT_EQ(r.deadlock_free, Verdict::Refuted);
  EXPECT_TRUE(r.has_cex);
  return replay(c.program(), c.sema(), c.memory_map(), c.port_plans(), org,
                r.cex, quick_replay());
}

TEST(ReplayTest, ConsumeBeforeProduceReproducesBothOrgs) {
  auto c = compile_for_verify(
      read_file(lint_fixture_path("consume_before_produce.hic")),
      "consume_before_produce.hic");
  for (sim::OrgKind org :
       {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
    ReplayResult rr = refute_and_replay(*c, org);
    EXPECT_TRUE(rr.reproduced) << rr.report;
    EXPECT_FALSE(rr.blocked_threads.empty());
    EXPECT_NE(rr.report.find("REPRODUCED"), std::string::npos);
  }
}

TEST(ReplayTest, TripleCycleReproducesBothOrgs) {
  auto c = compile_for_verify(read_file(fixture_path("triple_cycle.hic")),
                              "triple_cycle.hic");
  for (sim::OrgKind org :
       {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
    ReplayResult rr = refute_and_replay(*c, org);
    EXPECT_TRUE(rr.reproduced) << rr.report;
    // All three threads wedge.
    EXPECT_EQ(rr.blocked_threads.size(), 3u);
  }
}

TEST(ReplayTest, EdSlotOrderReproducesEventDrivenOnly) {
  auto c = compile_for_verify(read_file(fixture_path("ed_slot_order.hic")),
                              "ed_slot_order.hic");
  // Event-driven: a real schedule deadlock — must reproduce.
  ReplayResult ed = refute_and_replay(*c, sim::OrgKind::EventDriven);
  EXPECT_TRUE(ed.reproduced) << ed.report;

  // Arbitrated: reachable only through token stealing, which the
  // simulator's fair round-robin arbitration never performs. Replay must
  // say so rather than claim a reproduction.
  ReplayResult arb = refute_and_replay(*c, sim::OrgKind::Arbitrated);
  EXPECT_FALSE(arb.reproduced);
  EXPECT_NE(arb.report.find("NOT reproduced"), std::string::npos)
      << arb.report;
}

}  // namespace
}  // namespace hicsync::verify
