// Seeded hazard: a three-thread circular wait. Each thread consumes its
// predecessor's dependency before producing its own, so every schedule
// wedges in the initial state with all three threads blocked at their
// guarded reads. Expected: hic-verify refutes deadlock-freedom under both
// organizations with an empty minimal schedule (modulo pass starts), and
// --replay reproduces the wedge on the cycle-accurate simulator.
thread t1 () {
  int a, r1;
  #producer{mc, [t3,c]}
  r1 = f(c);
  #consumer{ma, [t2,p2]}
  a = g(r1);
}
thread t2 () {
  int b, p2;
  #producer{ma, [t1,a]}
  p2 = f(a);
  #consumer{mb, [t3,p3]}
  b = g(p2);
}
thread t3 () {
  int c, p3;
  #producer{mb, [t2,b]}
  p3 = f(b);
  #consumer{mc, [t1,r1]}
  c = g(p3);
}
