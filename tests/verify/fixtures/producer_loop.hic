// Seeded liveness hazard: p may spin in a data-dependent loop before
// producing m. Branch outcomes are nondeterministic in the abstract
// semantics, so other threads can take unboundedly many steps while c sits
// at its guarded read — the blocking bound for c exists only under a
// loop-termination assumption the checker cannot discharge. Expected: both
// organizations prove deadlock-freedom but warn verify-blocking-unbounded
// for c's read of m.
thread p () {
  int x, s, t;
  while (s != 0) {
    t = f(t);
  }
  #consumer{m, [c,y]}
  x = g(s);
}
thread c () {
  int y, r;
  #producer{m, [p,x]}
  y = h(x, r);
}
