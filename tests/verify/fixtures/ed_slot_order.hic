// Seeded hazard that only the model checker sees — hic-lint is silent (no
// produce/consume cycle exists, only schedule/timing hazards). Two
// distinct refutations:
//  * event-driven: the schedule serves d1's slots before d2's
//    (dependencies are scheduled in the producer's program order), but c1
//    reads d2 before d1 — after p's first produce the selection logic
//    parks in c1's d1 slot forever. Deadlocks in 4 abstract steps and
//    --replay reproduces it on the simulator.
//  * arbitrated: reachable only through token stealing — c2 perpetually
//    outruns c1 and drains d1's countdown twice per round (the §3.1 list
//    does not track *which* consumer read), wedging p at the d2 produce.
//    Real in the abstract may-semantics (e.g. if c1 were gated or slow),
//    but --replay reports NOT reproduced under the simulator's fair
//    round-robin, which never lets c2 overtake c1's standing request.
thread p () {
  int x1, x2, s;
  #consumer{d1, [c1,w1], [c2,v2]}
  x1 = f(s);
  #consumer{d2, [c1,u1]}
  x2 = f2(s);
}
thread c1 () {
  int u1, w1;
  #producer{d2, [p,x2]}
  u1 = g(x2);
  #producer{d1, [p,x1]}
  w1 = g2(x1, u1);
}
thread c2 () {
  int v2, r;
  #producer{d1, [p,x1]}
  v2 = g(x1, r);
}
