// Differential suite: the model checker must subsume hic-lint's
// consume-before-produce check. For every lint fixture, whenever lint
// reports a consume-before-produce hazard, hic-verify must refute
// deadlock-freedom AND classify at least one blocked pair as
// consume-before-produce — under both organizations. The converse is NOT
// required: the checker may find strictly more (ed_slot_order.hic is the
// witness — lint is silent, verify refutes).
#include <gtest/gtest.h>

#include "analysis/lint/lint.h"
#include "verify/checker.h"
#include "verify_test_util.h"

namespace hicsync::verify {
namespace {

using verify_test::compile_for_verify;
using verify_test::fixture_path;
using verify_test::lint_fixture_path;
using verify_test::read_file;
using verify_test::verify_source;

// Every .hic fixture hic-lint ships; keep in sync with
// tests/analysis/lint/fixtures/.
const char* kLintFixtures[] = {
    "consume_before_produce.hic", "dead_shared_variable.hic",
    "duplicate_producer_write.hic", "port_pressure.hic",
    "pragma_consumer_order.hic",  "race_unsynced_access.hic",
    "unreachable_stmt.hic",
};

/// Compiles with lint attached and returns (result, lint c-b-p count).
std::pair<std::unique_ptr<core::CompileResult>, std::size_t> compile_linted(
    const std::string& source, const std::string& name) {
  core::CompileOptions options;
  options.lint.enabled = true;
  options.lint.only = true;
  options.source_name = name;
  core::Compiler compiler(options);
  auto result = compiler.compile(source);
  EXPECT_TRUE(result->ok()) << name << ": " << result->diags().str();
  std::size_t cbp = result->diags().check_count("consume-before-produce");
  return {std::move(result), cbp};
}

TEST(DifferentialTest, VerifySubsumesLintConsumeBeforeProduce) {
  std::size_t lint_positive = 0;
  for (const char* name : kLintFixtures) {
    auto [c, lint_cbp] = compile_linted(read_file(lint_fixture_path(name)),
                                        name);
    ASSERT_TRUE(c->ok()) << name;
    if (lint_cbp > 0) ++lint_positive;
    for (sim::OrgKind org :
         {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
      VerifyResult r = verify_source(*c, org);
      ASSERT_TRUE(r.complete) << name << " (raise the budget?)";
      if (lint_cbp > 0) {
        // Lint found a path witness — the checker must find the runtime
        // deadlock it leads to, and classify it.
        EXPECT_EQ(r.deadlock_free, Verdict::Refuted) << name;
        EXPECT_GE(r.consume_before_produce.size(), 1u) << name;
        support::DiagnosticEngine diags;
        EXPECT_GT(report_findings(r, c->sema(), diags), 0u) << name;
        EXPECT_TRUE(diags.has_check("verify-consume-before-produce"))
            << name;
      }
    }
  }
  // The suite must actually exercise the implication.
  EXPECT_GE(lint_positive, 1u);
}

TEST(DifferentialTest, VerifyFindsStrictlyMoreThanLint) {
  // ed_slot_order.hic: no produce/consume cycle exists, so lint's
  // path-witness check is silent — but the schedule still deadlocks.
  auto [c, lint_cbp] = compile_linted(
      read_file(fixture_path("ed_slot_order.hic")), "ed_slot_order.hic");
  ASSERT_TRUE(c->ok());
  EXPECT_EQ(lint_cbp, 0u);
  EXPECT_EQ(c->lint_error_count(), 0u) << c->diags().str();

  VerifyResult r = verify_source(*c, sim::OrgKind::EventDriven);
  EXPECT_EQ(r.deadlock_free, Verdict::Refuted);
}

}  // namespace
}  // namespace hicsync::verify
