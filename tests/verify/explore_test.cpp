// Explorer behavior: deadlock-freedom proofs, minimal counterexamples,
// POR soundness (agrees with the full search), budgets and controller
// statistics.
#include "verify/explore.h"

#include <gtest/gtest.h>

#include "verify_test_util.h"

namespace hicsync::verify {
namespace {

using verify_test::compile_for_verify;
using verify_test::example_path;
using verify_test::fixture_path;
using verify_test::read_file;

struct Built {
  std::unique_ptr<core::CompileResult> compiled;
  ProgramModel model;
};

Built build(const std::string& source, sim::OrgKind org) {
  auto compiled = compile_for_verify(source);
  ProgramModel model =
      ProgramModel::build(compiled->program(), compiled->sema(),
                          compiled->memory_map(), compiled->port_plans(), org);
  return {std::move(compiled), std::move(model)};
}

TEST(ExploreTest, Fig1DeadlockFreeBothOrgs) {
  const std::string src = read_file(example_path("fig1.hic"));
  for (sim::OrgKind org :
       {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
    Built b = build(src, org);
    Explorer ex(b.model, {});
    EXPECT_TRUE(ex.run());
    EXPECT_TRUE(ex.complete());
    EXPECT_FALSE(ex.deadlock_found());
    EXPECT_GT(ex.num_states(), 0u);
    EXPECT_GT(ex.num_transitions(), 0u);
  }
}

TEST(ExploreTest, TripleCycleDeadlocksWithMinimalCex) {
  const std::string src = read_file(fixture_path("triple_cycle.hic"));
  for (sim::OrgKind org :
       {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
    Built b = build(src, org);
    Explorer ex(b.model, {});
    EXPECT_TRUE(ex.run());
    ASSERT_TRUE(ex.deadlock_found());
    const Counterexample& cex = ex.deadlock();
    // Circular wait wedges immediately: every thread blocks at its first
    // guarded read, so the minimal schedule only starts the passes.
    EXPECT_LE(cex.steps.size(), 3u);
    ASSERT_EQ(cex.blocked.size(), 3u);
    for (const BlockedThread& bt : cex.blocked) {
      EXPECT_EQ(bt.op.kind, SyncOp::Kind::Consume);
      EXPECT_FALSE(bt.reason.empty());
    }
    const std::string rendered = ex.render(cex);
    EXPECT_NE(rendered.find("consume"), std::string::npos);
  }
}

TEST(ExploreTest, PorAgreesWithFullSearch) {
  // POR must preserve deadlock verdicts and shared-controller reachability
  // while (typically) shrinking the state count.
  for (const char* name : {"fig1.hic", "pipeline.hic"}) {
    const std::string src = read_file(example_path(name));
    for (sim::OrgKind org :
         {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
      Built b = build(src, org);
      ExploreOptions reduced;
      ExploreOptions full;
      full.por = false;
      Explorer er(b.model, reduced);
      Explorer ef(b.model, full);
      EXPECT_TRUE(er.run());
      EXPECT_TRUE(ef.run());
      EXPECT_EQ(er.deadlock_found(), ef.deadlock_found()) << name;
      EXPECT_LE(er.num_states(), ef.num_states()) << name;
      ASSERT_EQ(er.controller_stats().size(), ef.controller_stats().size());
      for (std::size_t i = 0; i < er.controller_stats().size(); ++i) {
        EXPECT_EQ(er.controller_stats()[i].max_occupancy,
                  ef.controller_stats()[i].max_occupancy)
            << name;
      }
    }
  }
  // And on a refutable program, the verdict must also agree.
  const std::string cyc = read_file(fixture_path("triple_cycle.hic"));
  Built b = build(cyc, sim::OrgKind::Arbitrated);
  ExploreOptions full;
  full.por = false;
  Explorer er(b.model, {});
  Explorer ef(b.model, full);
  EXPECT_TRUE(er.run());
  EXPECT_TRUE(ef.run());
  EXPECT_TRUE(er.deadlock_found());
  EXPECT_TRUE(ef.deadlock_found());
}

TEST(ExploreTest, StateBudgetMakesSearchIncomplete) {
  const std::string src = read_file(example_path("pipeline.hic"));
  Built b = build(src, sim::OrgKind::Arbitrated);
  ExploreOptions options;
  options.max_states = 2;
  Explorer ex(b.model, options);
  EXPECT_FALSE(ex.run());
  EXPECT_FALSE(ex.complete());
  // The budget is checked between expansions, so a final frontier state's
  // successors may overshoot slightly — but never by a full search.
  EXPECT_LT(ex.num_states(), 20u);
}

TEST(ExploreTest, ControllerStatsStayWithinCapacity) {
  const std::string src = read_file(example_path("stress_shared.hic"));
  Built arb = build(src, sim::OrgKind::Arbitrated);
  Explorer ea(arb.model, {});
  EXPECT_TRUE(ea.run());
  ASSERT_EQ(ea.controller_stats().size(), 1u);
  const ControllerStats& sa = ea.controller_stats()[0];
  // Three dependencies share the BRAM; all three entries open at once.
  EXPECT_EQ(sa.max_occupancy, 3);
  EXPECT_LE(sa.max_occupancy, sa.cam_capacity);

  Built ed = build(src, sim::OrgKind::EventDriven);
  Explorer ee(ed.model, {});
  EXPECT_TRUE(ee.run());
  const ControllerStats& se = ee.controller_stats()[0];
  EXPECT_LT(se.max_slot, se.total_slots);
}

TEST(ExploreTest, OpEnabledTracksCountdown) {
  const std::string src = read_file(example_path("fig1.hic"));
  Built b = build(src, sim::OrgKind::Arbitrated);
  Explorer ex(b.model, {});
  ASSERT_TRUE(ex.run());
  const DepModel& d = b.model.deps()[0];
  const NodeModel& prod =
      b.model.threads()[static_cast<std::size_t>(d.producer_thread)]
          .nodes[static_cast<std::size_t>(d.producer_node)];
  // Initial state: countdown 0, so produce enabled, consume blocked.
  const State& init = ex.state(0);
  EXPECT_TRUE(ex.op_enabled(init, prod.ops[0]));
  const auto& site = d.consume_sites[0];
  const NodeModel& cons =
      b.model.threads()[static_cast<std::size_t>(site.thread)]
          .nodes[static_cast<std::size_t>(site.node)];
  EXPECT_FALSE(ex.op_enabled(init, cons.ops[0]));
}

}  // namespace
}  // namespace hicsync::verify
