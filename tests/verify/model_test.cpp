// ProgramModel construction: thread automata, sync-op classification,
// controller abstraction parameters and the restart edge.
#include "verify/model.h"

#include <gtest/gtest.h>

#include "verify_test_util.h"

namespace hicsync::verify {
namespace {

using verify_test::compile_for_verify;
using verify_test::example_path;
using verify_test::read_file;

class ModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    compiled_ = compile_for_verify(read_file(example_path("fig1.hic")),
                                   "fig1.hic");
    ASSERT_TRUE(compiled_->ok());
  }

  [[nodiscard]] ProgramModel build(sim::OrgKind org) const {
    return ProgramModel::build(compiled_->program(), compiled_->sema(),
                               compiled_->memory_map(),
                               compiled_->port_plans(), org);
  }

  std::unique_ptr<core::CompileResult> compiled_;
};

TEST_F(ModelTest, ThreadsAndIndices) {
  ProgramModel m = build(sim::OrgKind::Arbitrated);
  ASSERT_EQ(m.threads().size(), 3u);
  EXPECT_EQ(m.threads()[0].name, "t1");
  EXPECT_EQ(m.thread_index("t2"), 1);
  EXPECT_EQ(m.thread_index("t3"), 2);
  EXPECT_EQ(m.thread_index("nope"), -1);
}

TEST_F(ModelTest, DependencyModel) {
  ProgramModel m = build(sim::OrgKind::Arbitrated);
  ASSERT_EQ(m.deps().size(), 1u);
  const DepModel& d = m.deps()[0];
  ASSERT_NE(d.dep, nullptr);
  EXPECT_EQ(d.dep->id, "mt1");
  EXPECT_EQ(d.dependency_number, 2);  // two consumers
  EXPECT_EQ(d.producer_thread, m.thread_index("t1"));
  ASSERT_EQ(d.consume_sites.size(), 2u);
  // Pragma order: [t2,y1] then [t3,z1].
  EXPECT_EQ(d.consume_sites[0].thread, m.thread_index("t2"));
  EXPECT_EQ(d.consume_sites[1].thread, m.thread_index("t3"));
}

TEST_F(ModelTest, SyncOpsClassified) {
  ProgramModel m = build(sim::OrgKind::Arbitrated);
  const DepModel& d = m.deps()[0];
  const NodeModel& prod =
      m.threads()[static_cast<std::size_t>(d.producer_thread)]
          .nodes[static_cast<std::size_t>(d.producer_node)];
  ASSERT_EQ(prod.ops.size(), 1u);
  EXPECT_EQ(prod.ops[0].kind, SyncOp::Kind::Produce);
  EXPECT_EQ(prod.ops[0].dep, 0);
  for (std::size_t k = 0; k < d.consume_sites.size(); ++k) {
    const auto& site = d.consume_sites[k];
    const NodeModel& cons =
        m.threads()[static_cast<std::size_t>(site.thread)]
            .nodes[static_cast<std::size_t>(site.node)];
    ASSERT_EQ(cons.ops.size(), 1u);
    EXPECT_EQ(cons.ops[0].kind, SyncOp::Kind::Consume);
    EXPECT_EQ(cons.ops[0].consumer, static_cast<int>(k));
  }
  EXPECT_EQ(m.op_str(prod.ops[0]), "produce 'mt1'");
}

TEST_F(ModelTest, RestartEdgeClosesEveryThread) {
  ProgramModel m = build(sim::OrgKind::Arbitrated);
  for (const ThreadModel& t : m.threads()) {
    // Threads restart: every node must reach a successor, including Exit.
    for (const NodeModel& n : t.nodes) {
      EXPECT_FALSE(n.succs.empty())
          << "thread " << t.name << " has a node without successors";
    }
  }
}

TEST_F(ModelTest, EventDrivenSlots) {
  ProgramModel m = build(sim::OrgKind::EventDriven);
  ASSERT_EQ(m.controllers().size(), 1u);
  const ControllerModel& c = m.controllers()[0];
  // One dependency with two consumers: producer slot + 2 consumer slots.
  EXPECT_EQ(c.total_slots, 3);
  const DepModel& d = m.deps()[0];
  const NodeModel& prod =
      m.threads()[static_cast<std::size_t>(d.producer_thread)]
          .nodes[static_cast<std::size_t>(d.producer_node)];
  EXPECT_EQ(prod.ops[0].slot, 0);  // producer first, then consumers
  for (std::size_t k = 0; k < d.consume_sites.size(); ++k) {
    const auto& site = d.consume_sites[k];
    const NodeModel& cons =
        m.threads()[static_cast<std::size_t>(site.thread)]
            .nodes[static_cast<std::size_t>(site.node)];
    EXPECT_EQ(cons.ops[0].slot, static_cast<int>(k) + 1);
  }
}

TEST_F(ModelTest, FairnessWindows) {
  ProgramModel arb = build(sim::OrgKind::Arbitrated);
  ProgramModel ed = build(sim::OrgKind::EventDriven);
  ASSERT_EQ(arb.controllers().size(), 1u);
  const ControllerModel& c = arb.controllers()[0];
  // Arbitrated: (consumer_ports - 1) + producer_ports + 1, min 1.
  int expect = (c.consumer_ports - 1) + c.producer_ports + 1;
  if (expect < 1) expect = 1;
  EXPECT_EQ(arb.fairness_window(0), expect);
  EXPECT_EQ(ed.fairness_window(0), 1);
}

TEST_F(ModelTest, CamCapacityFromAllocator) {
  ProgramModel m = build(sim::OrgKind::Arbitrated);
  EXPECT_GE(m.controllers()[0].cam_capacity, 1);
}

}  // namespace
}  // namespace hicsync::verify
