// run_verify verdicts: proofs on the shipped examples, refutations with
// classified counterexamples, blocking bounds (including the unbounded
// warning), inconclusive budgets, diagnostics and JSON rendering.
#include "verify/checker.h"

#include <gtest/gtest.h>

#include "verify_test_util.h"

namespace hicsync::verify {
namespace {

using verify_test::compile_for_verify;
using verify_test::example_path;
using verify_test::fixture_path;
using verify_test::lint_fixture_path;
using verify_test::read_file;
using verify_test::verify_source;

constexpr sim::OrgKind kOrgs[] = {sim::OrgKind::Arbitrated,
                                  sim::OrgKind::EventDriven};

TEST(CheckerTest, ShippedExamplesAllProved) {
  for (const char* name :
       {"fig1.hic", "pipeline.hic", "stress8.hic", "stress_shared.hic"}) {
    auto c = compile_for_verify(read_file(example_path(name)), name);
    for (sim::OrgKind org : kOrgs) {
      VerifyResult r = verify_source(*c, org);
      EXPECT_TRUE(r.complete) << name;
      EXPECT_EQ(r.deadlock_free, Verdict::Proved) << name;
      EXPECT_EQ(r.occupancy_ok, Verdict::Proved) << name;
      EXPECT_EQ(r.blocking_bounded, Verdict::Proved) << name;
      EXPECT_TRUE(r.all_proved()) << name << ": " << r.text();
      EXPECT_FALSE(r.has_cex) << name;
      for (const BlockingBound& b : r.bounds) {
        EXPECT_TRUE(b.bounded) << name << " " << b.thread << "/" << b.dep;
        EXPECT_GT(b.cycles, 0u) << name;
      }
      // No findings at all on a fully proved program.
      support::DiagnosticEngine diags;
      EXPECT_EQ(report_findings(r, c->sema(), diags), 0u) << name;
      EXPECT_EQ(diags.error_count() + diags.warning_count(), 0u)
          << name << ": " << diags.str();
    }
  }
}

TEST(CheckerTest, TripleCycleRefutedAndClassified) {
  auto c = compile_for_verify(read_file(fixture_path("triple_cycle.hic")),
                              "triple_cycle.hic");
  for (sim::OrgKind org : kOrgs) {
    VerifyResult r = verify_source(*c, org);
    EXPECT_EQ(r.deadlock_free, Verdict::Refuted);
    EXPECT_FALSE(r.all_proved());
    ASSERT_TRUE(r.has_cex);
    EXPECT_EQ(r.cex.blocked.size(), 3u);
    // Every thread is wedged at a guarded read whose produce can never
    // happen: all three pairs classify as consume-before-produce.
    EXPECT_EQ(r.consume_before_produce.size(), 3u);

    support::DiagnosticEngine diags;
    std::size_t errors = report_findings(r, c->sema(), diags);
    EXPECT_GE(errors, 4u);  // verify-deadlock + 3 consume-before-produce
    EXPECT_TRUE(diags.has_check("verify-deadlock"));
    EXPECT_EQ(diags.check_count("verify-consume-before-produce"), 3u);
  }
}

TEST(CheckerTest, ProducerLoopWarnsUnboundedBlocking) {
  auto c = compile_for_verify(read_file(fixture_path("producer_loop.hic")),
                              "producer_loop.hic");
  for (sim::OrgKind org : kOrgs) {
    VerifyResult r = verify_source(*c, org);
    EXPECT_EQ(r.deadlock_free, Verdict::Proved);
    EXPECT_EQ(r.blocking_bounded, Verdict::Refuted);
    bool found = false;
    for (const BlockingBound& b : r.bounds) {
      if (b.thread == "c" && b.dep == "m") {
        found = true;
        EXPECT_FALSE(b.bounded);
        EXPECT_NE(b.note.find("loop"), std::string::npos);
      }
    }
    EXPECT_TRUE(found);

    // Unbounded blocking is a warning, not an error: hicc still exits 0.
    support::DiagnosticEngine diags;
    EXPECT_EQ(report_findings(r, c->sema(), diags), 0u);
    EXPECT_TRUE(diags.has_check("verify-blocking-unbounded"));
  }
}

TEST(CheckerTest, BudgetExhaustionIsInconclusive) {
  auto c = compile_for_verify(read_file(example_path("pipeline.hic")),
                              "pipeline.hic");
  VerifyOptions options;
  options.max_states = 3;
  VerifyResult r = verify_source(*c, sim::OrgKind::Arbitrated, options);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.deadlock_free, Verdict::Inconclusive);
  EXPECT_EQ(r.occupancy_ok, Verdict::Inconclusive);
  EXPECT_EQ(r.blocking_bounded, Verdict::Inconclusive);
  EXPECT_FALSE(r.all_proved());

  support::DiagnosticEngine diags;
  EXPECT_EQ(report_findings(r, c->sema(), diags), 0u);  // warning only
  EXPECT_TRUE(diags.has_check("verify-inconclusive"));
}

TEST(CheckerTest, BoundsCanBeSkipped) {
  auto c = compile_for_verify(read_file(example_path("fig1.hic")),
                              "fig1.hic");
  VerifyOptions options;
  options.bounds = false;
  VerifyResult r = verify_source(*c, sim::OrgKind::Arbitrated, options);
  EXPECT_EQ(r.deadlock_free, Verdict::Proved);
  EXPECT_EQ(r.blocking_bounded, Verdict::Inconclusive);
  EXPECT_TRUE(r.bounds.empty());
}

TEST(CheckerTest, CexScheduleNamesRealThreads) {
  auto c = compile_for_verify(
      read_file(lint_fixture_path("consume_before_produce.hic")),
      "consume_before_produce.hic");
  VerifyResult r = verify_source(*c, sim::OrgKind::Arbitrated);
  ASSERT_TRUE(r.has_cex);
  EXPECT_FALSE(r.cex.text.empty());
  for (const std::string& t : r.cex.schedule) {
    bool known = false;
    for (const auto& th : c->program().threads) known |= (th.name == t);
    EXPECT_TRUE(known) << "unknown thread in schedule: " << t;
  }
}

TEST(CheckerTest, TextAndJsonRenderings) {
  auto c = compile_for_verify(read_file(example_path("fig1.hic")),
                              "fig1.hic");
  VerifyResult r = verify_source(*c, sim::OrgKind::EventDriven);
  const std::string text = r.text();
  EXPECT_NE(text.find("deadlock"), std::string::npos);
  EXPECT_NE(text.find("proved"), std::string::npos);
  const std::string json = r.json();
  EXPECT_NE(json.find("\"deadlock_free\""), std::string::npos);
  EXPECT_NE(json.find("\"proved\""), std::string::npos);
  EXPECT_NE(json.find("\"states\""), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);

  auto rc = compile_for_verify(read_file(fixture_path("triple_cycle.hic")),
                               "triple_cycle.hic");
  VerifyResult rr = verify_source(*rc, sim::OrgKind::Arbitrated);
  EXPECT_NE(rr.json().find("\"refuted\""), std::string::npos);
  EXPECT_NE(rr.text().find("refuted"), std::string::npos);
}

TEST(CheckerTest, EdSlotOrderRefutedOnlyByVerify) {
  // hic-lint is silent on this fixture (see the fixture header); the
  // checker refutes under both organizations — the event-driven schedule
  // deadlock directly, the arbitrated one through token stealing.
  auto c = compile_for_verify(read_file(fixture_path("ed_slot_order.hic")),
                              "ed_slot_order.hic");
  VerifyResult ed = verify_source(*c, sim::OrgKind::EventDriven);
  EXPECT_EQ(ed.deadlock_free, Verdict::Refuted);
  VerifyResult arb = verify_source(*c, sim::OrgKind::Arbitrated);
  EXPECT_EQ(arb.deadlock_free, Verdict::Refuted);
  // The event-driven wedge is immediate; the arbitrated one needs a long
  // overtaking schedule. Minimality makes that visible.
  EXPECT_LT(ed.cex.schedule.size(), arb.cex.schedule.size());
}

}  // namespace
}  // namespace hicsync::verify
