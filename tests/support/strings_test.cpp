#include "support/strings.h"

#include <gtest/gtest.h>

namespace hicsync::support {
namespace {

TEST(Strings, SplitBasic) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitNoSeparator) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitEmptyString) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
}

TEST(Strings, TrimAllWhitespace) { EXPECT_EQ(trim(" \t "), ""); }

TEST(Strings, TrimNothingToDo) { EXPECT_EQ(trim("x y"), "x y"); }

TEST(Strings, JoinBasic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, JoinEmpty) { EXPECT_EQ(join({}, ","), ""); }

TEST(Strings, JoinSingle) { EXPECT_EQ(join({"only"}, ","), "only"); }

TEST(Strings, IsIdentifierAccepts) {
  EXPECT_TRUE(is_identifier("x"));
  EXPECT_TRUE(is_identifier("_foo"));
  EXPECT_TRUE(is_identifier("a1_b2"));
}

TEST(Strings, IsIdentifierRejects) {
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(Strings, IndentMultiline) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
}

TEST(Strings, IndentSkipsEmptyLines) {
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");
}

TEST(Strings, FormatBasic) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
}

TEST(Strings, FormatEmpty) { EXPECT_EQ(format("%s", ""), ""); }

}  // namespace
}  // namespace hicsync::support
