#include "support/diagnostics.h"

#include <gtest/gtest.h>

namespace hicsync::support {
namespace {

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine d;
  d.warning({1, 1, 0}, "w");
  d.note({1, 2, 1}, "n");
  EXPECT_FALSE(d.has_errors());
  d.error({2, 1, 5}, "e");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_EQ(d.diagnostics().size(), 3u);
}

TEST(Diagnostics, ContainsSearchesMessages) {
  DiagnosticEngine d;
  d.error({1, 1, 0}, "unknown variable 'x1'");
  EXPECT_TRUE(d.contains("unknown variable"));
  EXPECT_TRUE(d.contains("x1"));
  EXPECT_FALSE(d.contains("type error"));
}

TEST(Diagnostics, StrFormatsLocation) {
  DiagnosticEngine d;
  d.error({3, 7, 20}, "boom");
  EXPECT_NE(d.str().find("3:7: error: boom"), std::string::npos);
}

TEST(Diagnostics, StrWithoutLocation) {
  DiagnosticEngine d;
  d.error({}, "general failure");
  EXPECT_NE(d.str().find("error: general failure"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine d;
  d.error({1, 1, 0}, "e");
  d.clear();
  EXPECT_FALSE(d.has_errors());
  EXPECT_TRUE(d.diagnostics().empty());
}

TEST(Diagnostics, CompileErrorCarriesLocation) {
  CompileError err({4, 2, 9}, "bad parse");
  EXPECT_EQ(err.loc().line, 4u);
  EXPECT_NE(std::string(err.what()).find("4:2"), std::string::npos);
}

TEST(SourceLoc, InvalidByDefault) {
  SourceLoc loc;
  EXPECT_FALSE(loc.valid());
  EXPECT_EQ(loc.str(), "<unknown>");
}

TEST(SourceRange, SameLineFormat) {
  SourceRange r{{1, 2, 0}, {1, 9, 7}};
  EXPECT_EQ(r.str(), "1:2-9");
}

TEST(SourceRange, CrossLineFormat) {
  SourceRange r{{1, 2, 0}, {3, 4, 30}};
  EXPECT_EQ(r.str(), "1:2-3:4");
}

}  // namespace
}  // namespace hicsync::support
