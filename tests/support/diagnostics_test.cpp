#include "support/diagnostics.h"

#include <gtest/gtest.h>

namespace hicsync::support {
namespace {

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine d;
  d.warning({1, 1, 0}, "w");
  d.note({1, 2, 1}, "n");
  EXPECT_FALSE(d.has_errors());
  d.error({2, 1, 5}, "e");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_EQ(d.diagnostics().size(), 3u);
}

TEST(Diagnostics, ContainsSearchesMessages) {
  DiagnosticEngine d;
  d.error({1, 1, 0}, "unknown variable 'x1'");
  EXPECT_TRUE(d.contains("unknown variable"));
  EXPECT_TRUE(d.contains("x1"));
  EXPECT_FALSE(d.contains("type error"));
}

TEST(Diagnostics, StrFormatsLocation) {
  DiagnosticEngine d;
  d.error({3, 7, 20}, "boom");
  EXPECT_NE(d.str().find("3:7: error: boom"), std::string::npos);
}

TEST(Diagnostics, StrWithoutLocation) {
  DiagnosticEngine d;
  d.error({}, "general failure");
  EXPECT_NE(d.str().find("error: general failure"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine d;
  d.error({1, 1, 0}, "e");
  d.clear();
  EXPECT_FALSE(d.has_errors());
  EXPECT_TRUE(d.diagnostics().empty());
}

TEST(Diagnostics, WarningCountTracksWarningsOnly) {
  DiagnosticEngine d;
  EXPECT_EQ(d.warning_count(), 0u);
  d.warning({1, 1, 0}, "w1");
  d.error({2, 1, 5}, "e");
  d.note({3, 1, 9}, "n");
  d.warning({4, 1, 12}, "w2");
  EXPECT_EQ(d.warning_count(), 2u);
  EXPECT_EQ(d.error_count(), 1u);
  d.clear();
  EXPECT_EQ(d.warning_count(), 0u);
}

TEST(Diagnostics, SortedByFileLineColumnSeverity) {
  DiagnosticEngine d;
  d.set_source_name("b.hic");
  d.warning({9, 1, 0}, "later file");
  d.set_source_name("a.hic");
  d.warning({5, 3, 0}, "warn at 5:3");
  d.error({5, 3, 0}, "error at 5:3");  // ties on location: errors first
  d.note({2, 1, 0}, "earliest line");
  auto sorted = d.sorted_diagnostics();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0]->message, "earliest line");
  EXPECT_EQ(sorted[1]->message, "error at 5:3");
  EXPECT_EQ(sorted[2]->message, "warn at 5:3");
  EXPECT_EQ(sorted[3]->message, "later file");
}

TEST(Diagnostics, SortIsStableForIdenticalKeys) {
  DiagnosticEngine d;
  d.warning({1, 1, 0}, "first reported");
  d.warning({1, 1, 0}, "second reported");
  auto sorted = d.sorted_diagnostics();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0]->message, "first reported");
  EXPECT_EQ(sorted[1]->message, "second reported");
}

TEST(Diagnostics, CheckIdIsRenderedAndCounted) {
  DiagnosticEngine d;
  d.set_source_name("prog.hic");
  d.report(Severity::Warning, {7, 2, 0}, "hazard", "race-unsynced-access");
  EXPECT_TRUE(d.has_check("race-unsynced-access"));
  EXPECT_FALSE(d.has_check("port-pressure"));
  EXPECT_EQ(d.check_count("race-unsynced-access"), 1u);
  EXPECT_NE(d.str().find("prog.hic:7:2: warning: hazard "
                         "[race-unsynced-access]"),
            std::string::npos)
      << d.str();
}

TEST(Diagnostics, JsonShapeAndEscaping) {
  DiagnosticEngine d;
  d.set_source_name("p.hic");
  d.report(Severity::Error, {1, 2, 0}, "bad \"quote\"\n", "check-a");
  d.warning({3, 4, 9}, "plain");
  const std::string json = d.json();
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"check\": \"check-a\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"file\": \"p.hic\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"column\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("bad \\\"quote\\\"\\n"), std::string::npos) << json;
}

TEST(Diagnostics, JsonEmptyEngine) {
  DiagnosticEngine d;
  const std::string json = d.json();
  EXPECT_NE(json.find("\"errors\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"diagnostics\": []"), std::string::npos) << json;
}

TEST(Diagnostics, CompileErrorCarriesLocation) {
  CompileError err({4, 2, 9}, "bad parse");
  EXPECT_EQ(err.loc().line, 4u);
  EXPECT_NE(std::string(err.what()).find("4:2"), std::string::npos);
}

TEST(SourceLoc, InvalidByDefault) {
  SourceLoc loc;
  EXPECT_FALSE(loc.valid());
  EXPECT_EQ(loc.str(), "<unknown>");
}

TEST(SourceRange, SameLineFormat) {
  SourceRange r{{1, 2, 0}, {1, 9, 7}};
  EXPECT_EQ(r.str(), "1:2-9");
}

TEST(SourceRange, CrossLineFormat) {
  SourceRange r{{1, 2, 0}, {3, 4, 30}};
  EXPECT_EQ(r.str(), "1:2-3:4");
}

}  // namespace
}  // namespace hicsync::support
