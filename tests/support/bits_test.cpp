#include "support/bits.h"

#include <gtest/gtest.h>

namespace hicsync::support {
namespace {

TEST(Bits, Clog2SmallValues) {
  EXPECT_EQ(clog2(0), 0);
  EXPECT_EQ(clog2(1), 0);
  EXPECT_EQ(clog2(2), 1);
  EXPECT_EQ(clog2(3), 2);
  EXPECT_EQ(clog2(4), 2);
  EXPECT_EQ(clog2(5), 3);
  EXPECT_EQ(clog2(8), 3);
  EXPECT_EQ(clog2(9), 4);
}

TEST(Bits, Clog2LargeValues) {
  EXPECT_EQ(clog2(1ULL << 32), 32);
  EXPECT_EQ(clog2((1ULL << 32) + 1), 33);
}

TEST(Bits, Clog2AtLeast1) {
  EXPECT_EQ(clog2_at_least1(1), 1);
  EXPECT_EQ(clog2_at_least1(2), 1);
  EXPECT_EQ(clog2_at_least1(3), 2);
}

TEST(Bits, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(64), ~0ULL);
}

// Property: clog2 is the inverse of shifting — for all k in [0,63],
// clog2(2^k) == k and clog2(2^k + 1) == k + 1.
TEST(Bits, Clog2PowerOfTwoProperty) {
  for (int k = 0; k < 63; ++k) {
    std::uint64_t v = 1ULL << k;
    EXPECT_EQ(clog2(v), k) << "k=" << k;
    if (k > 0) {
      EXPECT_EQ(clog2(v + 1), k + 1) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace hicsync::support
