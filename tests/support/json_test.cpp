#include "support/json.h"

#include <gtest/gtest.h>

namespace hicsync::support {
namespace {

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriter, PrettyObjectMatchesBenchReportShape) {
  JsonWriter w;
  w.begin_object()
      .key("bench")
      .value("demo")
      .key("n")
      .value(std::int64_t{3})
      .key("ok")
      .value(true)
      .end_object();
  EXPECT_EQ(w.str(),
            "{\n  \"bench\": \"demo\",\n  \"n\": 3,\n  \"ok\": true\n}");
}

TEST(JsonWriter, CompactModeAndNesting) {
  JsonWriter w(/*indent=*/0);
  w.begin_object()
      .key("a")
      .begin_array()
      .value(std::int64_t{1})
      .value(std::int64_t{2})
      .end_array()
      .key("b")
      .begin_object()
      .key("c")
      .value_null()
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(), "{\"a\": [1,2],\"b\": {\"c\": null}}");
}

TEST(JsonWriter, RawSplicesVerbatim) {
  JsonWriter w(0);
  w.begin_object().key("x").raw("{\"pre\": 1}").end_object();
  EXPECT_EQ(w.str(), "{\"x\": {\"pre\": 1}}");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object()
      .key("name")
      .value("a \"quoted\" name")
      .key("pi")
      .value(3.25)
      .key("list")
      .begin_array()
      .value(false)
      .value_null()
      .end_array()
      .end_object();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(w.str(), &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->string_value, "a \"quoted\" name");
  EXPECT_DOUBLE_EQ(doc.find("pi")->number_value, 3.25);
  ASSERT_TRUE(doc.find("list")->is_array());
  EXPECT_EQ(doc.find("list")->elements.size(), 2u);
  EXPECT_FALSE(doc.find("list")->elements[0].bool_value);
  EXPECT_TRUE(doc.find("list")->elements[1].is_null());
}

TEST(JsonParse, PreservesMemberOrderAndNumbers) {
  JsonValue doc;
  ASSERT_TRUE(parse_json(
      R"({"z": 1, "a": -2.5e2, "m": 9007199254740992})", &doc));
  ASSERT_EQ(doc.members.size(), 3u);
  EXPECT_EQ(doc.members[0].first, "z");
  EXPECT_EQ(doc.members[1].first, "a");
  EXPECT_DOUBLE_EQ(doc.members[1].second.number_value, -250.0);
  EXPECT_DOUBLE_EQ(doc.members[2].second.number_value, 9007199254740992.0);
}

TEST(JsonParse, RejectsMalformedInput) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(parse_json("{\"a\": }", &doc, &error));
  EXPECT_FALSE(parse_json("[1, 2", &doc, &error));
  EXPECT_FALSE(parse_json("{\"a\": 1} trailing", &doc, &error));
  EXPECT_FALSE(parse_json("\"unterminated", &doc, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace hicsync::support
