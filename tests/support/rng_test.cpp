#include "support/rng.h"

#include <gtest/gtest.h>

namespace hicsync::support {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowDegenerate) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolApproximatesProbability) {
  Rng rng(42);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Rng, GeometricAlwaysPositive) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.next_geometric(0.3), 1u);
  }
}

TEST(Rng, GeometricMeanMatchesExpectation) {
  Rng rng(13);
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(rng.next_geometric(0.2));
  }
  // Mean of geometric with success probability p is 1/p = 5.
  EXPECT_NEAR(sum / kTrials, 5.0, 0.3);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.next_range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 13);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(77);
  std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(77);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace hicsync::support
