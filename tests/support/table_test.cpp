#include "support/table.h"

#include <gtest/gtest.h>

namespace hicsync::support {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"P/C", "LUT", "FF"});
  t.add_row({"1/2", "100", "66"});
  t.add_row({"1/8", "1234", "66"});
  std::string s = t.str();
  EXPECT_NE(s.find("P/C"), std::string::npos);
  EXPECT_NE(s.find("1234"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xx", "y"});
  std::string s = t.str();
  // "a" padded to width of "xx": both rows start their second column at the
  // same offset.
  auto lines_at = [&](int n) {
    std::size_t pos = 0;
    for (int i = 0; i < n; ++i) pos = s.find('\n', pos) + 1;
    return s.substr(pos, s.find('\n', pos) - pos);
  };
  std::string header = lines_at(0);
  std::string row = lines_at(2);
  EXPECT_EQ(header.find('b'), row.find('y'));
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, EmptyTableStillRendersHeader) {
  TextTable t({"col"});
  EXPECT_EQ(t.rows(), 0u);
  EXPECT_NE(t.str().find("col"), std::string::npos);
}

}  // namespace
}  // namespace hicsync::support
