#include "sim/externs.h"

#include <gtest/gtest.h>

namespace hicsync::sim {
namespace {

TEST(Externs, RegisteredFunctionCalled) {
  ExternFuncs fns;
  fns.register_fn("add", [](const std::vector<std::uint64_t>& args) {
    std::uint64_t s = 0;
    for (auto a : args) s += a;
    return s;
  });
  EXPECT_TRUE(fns.has("add"));
  EXPECT_EQ(fns.eval("add", {1, 2, 3}), 6u);
}

TEST(Externs, FallbackIsDeterministic) {
  ExternFuncs a;
  ExternFuncs b;
  EXPECT_EQ(a.eval("mystery", {7, 9}), b.eval("mystery", {7, 9}));
}

TEST(Externs, FallbackDependsOnNameAndArgs) {
  ExternFuncs fns;
  EXPECT_NE(fns.eval("f", {1}), fns.eval("g", {1}));
  EXPECT_NE(fns.eval("f", {1}), fns.eval("f", {2}));
  EXPECT_NE(fns.eval("f", {1}), fns.eval("f", {1, 1}));
}

TEST(Externs, RegistrationOverridesFallback) {
  ExternFuncs fns;
  std::uint64_t fallback = fns.eval("f", {5});
  fns.register_fn("f", [](const auto&) { return 1u; });
  EXPECT_EQ(fns.eval("f", {5}), 1u);
  EXPECT_NE(fns.eval("f", {5}), fallback);
}

}  // namespace
}  // namespace hicsync::sim
