// Timeout/deadlock diagnostics: when run_until_passes gives up, the
// simulator must say which thread is stuck, in which FSM state, and what
// dependency/port it is waiting on.

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"
#include "memalloc/portplan.h"
#include "sim/system.h"

namespace hicsync::sim {
namespace {

using hic::testing::compile;
using hic::testing::kFigure1;

struct World {
  std::unique_ptr<hic::testing::Compiled> c;
  memalloc::MemoryMap map;
  std::vector<synth::ThreadFsm> fsms;
  std::vector<memalloc::BramPortPlan> plans;
  std::unique_ptr<SystemSim> sim;
};

World make_world(const std::string& src, OrgKind kind) {
  World w;
  w.c = compile(src);
  EXPECT_TRUE(w.c->ok) << w.c->diags.str();
  w.map = memalloc::Allocator().allocate(*w.c->sema);
  for (const auto& t : w.c->program.threads) {
    w.fsms.push_back(synth::ThreadFsm::synthesize(t, *w.c->sema));
  }
  w.plans = memalloc::PortPlanner::plan(*w.c->sema, w.map, w.fsms);
  SystemOptions opt;
  opt.organization = kind;
  opt.restart_threads = false;
  w.sim = std::make_unique<SystemSim>(w.c->program, *w.c->sema, w.map,
                                      w.plans, opt);
  return w;
}

class DeadlockDiagnostics : public ::testing::TestWithParam<OrgKind> {};

TEST_P(DeadlockDiagnostics, GatedProducerLeavesConsumersBlocked) {
  World w = make_world(kFigure1, GetParam());
  // The producer never runs: t2/t3's consumer reads of mt1 can never be
  // satisfied — a deadlock by construction.
  w.sim->set_gate("t1", [](std::uint64_t) { return false; });

  ASSERT_FALSE(w.sim->run_until_passes(1, 500));

  auto diags = w.sim->thread_diagnostics();
  ASSERT_EQ(diags.size(), 3u);

  const ThreadDiagnostic* t1 = nullptr;
  const ThreadDiagnostic* t2 = nullptr;
  for (const auto& d : diags) {
    if (d.thread == "t1") t1 = &d;
    if (d.thread == "t2") t2 = &d;
  }
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);

  EXPECT_EQ(t1->mode, "gated");
  EXPECT_EQ(t1->passes, 0);
  EXPECT_FALSE(t1->blocked);

  EXPECT_TRUE(t2->blocked);
  EXPECT_EQ(t2->mode, "fetch");
  EXPECT_GE(t2->fsm_state, 0);
  // The wait description names the dependency, the role and the port.
  EXPECT_NE(t2->waiting_on.find("mt1"), std::string::npos)
      << t2->waiting_on;
  EXPECT_NE(t2->waiting_on.find("consumer read"), std::string::npos)
      << t2->waiting_on;
  EXPECT_NE(t2->waiting_on.find("bram0"), std::string::npos)
      << t2->waiting_on;

  const std::string report = w.sim->stall_report();
  EXPECT_NE(report.find("t2"), std::string::npos);
  EXPECT_NE(report.find("t3"), std::string::npos);
  EXPECT_NE(report.find("mt1"), std::string::npos);
  EXPECT_NE(report.find("BLOCKED"), std::string::npos);
}

TEST_P(DeadlockDiagnostics, HealthyRunReportsNoBlockedThreads) {
  World w = make_world(kFigure1, GetParam());
  ASSERT_TRUE(w.sim->run_until_passes(1, 500));
  for (const auto& d : w.sim->thread_diagnostics()) {
    EXPECT_FALSE(d.blocked) << d.thread << ": " << d.waiting_on;
    EXPECT_GE(d.passes, 1) << d.thread;
  }
  EXPECT_EQ(w.sim->stall_report().find("BLOCKED"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(BothOrgs, DeadlockDiagnostics,
                         ::testing::Values(OrgKind::Arbitrated,
                                           OrgKind::EventDriven));

}  // namespace
}  // namespace hicsync::sim
