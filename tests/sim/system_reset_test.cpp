// Satellite test for hic-rt's pooled executors: SystemSim::reset() must
// return an instance to its post-construction state so the runtime can
// recycle simulators across sessions.  Every test here runs a workload on a
// recycled instance and compares the observable results — register values,
// cycle counts, and recorded rounds — against a freshly constructed
// simulator fed the same inputs.
#include "sim/system.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../hic/hic_test_util.h"
#include "memalloc/portplan.h"

namespace hicsync::sim {
namespace {

using hic::testing::compile;
using hic::testing::kFigure1;

struct World {
  std::unique_ptr<hic::testing::Compiled> c;
  memalloc::MemoryMap map;
  std::vector<synth::ThreadFsm> fsms;
  std::vector<memalloc::BramPortPlan> plans;
  std::unique_ptr<SystemSim> sim;
};

World make_world(const std::string& src, OrgKind kind,
                 bool restart = false) {
  World w;
  w.c = compile(src);
  EXPECT_TRUE(w.c->ok) << w.c->diags.str();
  w.map = memalloc::Allocator().allocate(*w.c->sema);
  for (const auto& t : w.c->program.threads) {
    w.fsms.push_back(synth::ThreadFsm::synthesize(t, *w.c->sema));
  }
  w.plans = memalloc::PortPlanner::plan(*w.c->sema, w.map, w.fsms);
  SystemOptions opt;
  opt.organization = kind;
  opt.restart_threads = restart;
  w.sim = std::make_unique<SystemSim>(w.c->program, *w.c->sema, w.map,
                                      w.plans, opt);
  return w;
}

// Everything a runtime client can observe from one figure-1 run.
struct Snapshot {
  std::uint64_t y1 = 0;
  std::uint64_t z1 = 0;
  std::uint64_t cycle = 0;
  std::size_t rounds = 0;
  std::uint64_t produce_grant = 0;

  bool operator==(const Snapshot& o) const {
    return y1 == o.y1 && z1 == o.z1 && cycle == o.cycle &&
           rounds == o.rounds && produce_grant == o.produce_grant;
  }
};

void seed_figure1(SystemSim& sim, std::uint64_t base) {
  sim.externs().register_fn(
      "f", [base](const auto&) { return base; });
  sim.externs().register_fn(
      "g", [](const auto& args) { return args.at(0) + 1; });
  sim.externs().register_fn(
      "h", [](const auto& args) { return args.at(0) + 2; });
}

Snapshot run_figure1(SystemSim& sim, std::uint64_t base) {
  seed_figure1(sim, base);
  EXPECT_TRUE(sim.run_until_passes(1, 300)) << "stalled, input " << base;
  Snapshot s;
  s.y1 = sim.register_value("t2", "y1");
  s.z1 = sim.register_value("t3", "z1");
  s.cycle = sim.cycle();
  s.rounds = sim.rounds().size();
  s.produce_grant = sim.rounds().empty()
                        ? 0
                        : sim.rounds().front().produce_grant_cycle;
  return s;
}

class ResetBothOrgs : public ::testing::TestWithParam<OrgKind> {};

TEST_P(ResetBothOrgs, RecycledRunMatchesFreshInstance) {
  // Run input A, reset, run input B — the second run on the recycled
  // simulator must be indistinguishable from a fresh instance running B.
  World recycled = make_world(kFigure1, GetParam());
  run_figure1(*recycled.sim, 1000);
  recycled.sim->reset();
  recycled.sim->externs().clear();
  Snapshot second = run_figure1(*recycled.sim, 2000);

  World fresh = make_world(kFigure1, GetParam());
  Snapshot baseline = run_figure1(*fresh.sim, 2000);

  EXPECT_EQ(second.y1, baseline.y1);
  EXPECT_EQ(second.z1, baseline.z1);
  EXPECT_EQ(second.cycle, baseline.cycle);
  EXPECT_EQ(second.rounds, baseline.rounds);
  EXPECT_EQ(second.produce_grant, baseline.produce_grant);
}

TEST_P(ResetBothOrgs, ManyBackToBackRunsStayDeterministic) {
  // The runtime reuses one simulator for a whole shard; N back-to-back
  // resets must each reproduce the fresh-instance result for that input.
  World recycled = make_world(kFigure1, GetParam());
  for (std::uint64_t i = 0; i < 6; ++i) {
    if (i > 0) {
      recycled.sim->reset();
      recycled.sim->externs().clear();
    }
    Snapshot got = run_figure1(*recycled.sim, 100 * (i + 1));
    World fresh = make_world(kFigure1, GetParam());
    Snapshot want = run_figure1(*fresh.sim, 100 * (i + 1));
    EXPECT_TRUE(got == want) << "iteration " << i;
  }
}

TEST_P(ResetBothOrgs, ResetClearsRoundsAndCycleCounter) {
  World w = make_world(kFigure1, GetParam());
  run_figure1(*w.sim, 7);
  ASSERT_GE(w.sim->rounds().size(), 1u);
  ASSERT_GT(w.sim->cycle(), 0u);
  w.sim->reset();
  EXPECT_EQ(w.sim->rounds().size(), 0u);
  EXPECT_EQ(w.sim->cycle(), 0u);
  EXPECT_EQ(w.sim->passes("t1"), 0);
  EXPECT_EQ(w.sim->passes("t2"), 0);
  EXPECT_EQ(w.sim->passes("t3"), 0);
}

TEST_P(ResetBothOrgs, StaleProducedValueDoesNotLeakAcrossReset) {
  // If reset failed to clear BRAM-side state, the consumer could observe
  // the previous session's produced value instead of the new one.
  World w = make_world(kFigure1, GetParam());
  Snapshot first = run_figure1(*w.sim, 5000);
  EXPECT_EQ(first.y1, 5001u);
  w.sim->reset();
  w.sim->externs().clear();
  Snapshot second = run_figure1(*w.sim, 8);
  EXPECT_EQ(second.y1, 9u);
  EXPECT_EQ(second.z1, 10u);
}

TEST_P(ResetBothOrgs, ResetWorksWithArraysAndLocalState) {
  // Array-backed local memory is BRAM-resident too; a recycled instance
  // must not see the previous run's table contents.
  const char* src = R"(
    thread t () {
      int tbl[8];
      int i, sum;
      for (i = 0; i < 4; i = i + 1) tbl[i] = base(i);
      sum = 0;
      for (i = 0; i < 4; i = i + 1) sum = sum + tbl[i];
    }
  )";
  World w = make_world(src, GetParam());
  w.sim->externs().register_fn(
      "base", [](const auto& args) { return args.at(0) * 10; });
  ASSERT_TRUE(w.sim->run_until_passes(1, 500));
  EXPECT_EQ(w.sim->register_value("t", "sum"), 60u);  // 0+10+20+30

  w.sim->reset();
  w.sim->externs().clear();
  w.sim->externs().register_fn(
      "base", [](const auto& args) { return args.at(0) + 1; });
  ASSERT_TRUE(w.sim->run_until_passes(1, 500));
  EXPECT_EQ(w.sim->register_value("t", "sum"), 10u);  // 1+2+3+4
}

INSTANTIATE_TEST_SUITE_P(Orgs, ResetBothOrgs,
                         ::testing::Values(OrgKind::Arbitrated,
                                           OrgKind::EventDriven),
                         [](const auto& info) {
                           return info.param == OrgKind::Arbitrated
                                      ? "Arbitrated"
                                      : "EventDriven";
                         });

TEST(SystemReset, MultiplePassesAfterResetMatchFresh) {
  // restart_threads mode: rounds keep accumulating; after reset the
  // recycled instance must replay the same multi-pass schedule.
  World recycled = make_world(kFigure1, OrgKind::EventDriven,
                              /*restart=*/true);
  seed_figure1(*recycled.sim, 11);
  ASSERT_TRUE(recycled.sim->run_until_passes(3, 2000));
  recycled.sim->reset();
  recycled.sim->externs().clear();
  seed_figure1(*recycled.sim, 11);
  ASSERT_TRUE(recycled.sim->run_until_passes(3, 2000));

  World fresh = make_world(kFigure1, OrgKind::EventDriven, /*restart=*/true);
  seed_figure1(*fresh.sim, 11);
  ASSERT_TRUE(fresh.sim->run_until_passes(3, 2000));

  EXPECT_EQ(recycled.sim->cycle(), fresh.sim->cycle());
  ASSERT_EQ(recycled.sim->rounds().size(), fresh.sim->rounds().size());
  for (std::size_t i = 0; i < fresh.sim->rounds().size(); ++i) {
    EXPECT_EQ(recycled.sim->rounds()[i].dep_id,
              fresh.sim->rounds()[i].dep_id)
        << "round " << i;
    EXPECT_EQ(recycled.sim->rounds()[i].produce_grant_cycle,
              fresh.sim->rounds()[i].produce_grant_cycle)
        << "round " << i;
  }
  EXPECT_EQ(recycled.sim->register_value("t2", "y1"),
            fresh.sim->register_value("t2", "y1"));
}

}  // namespace
}  // namespace hicsync::sim
