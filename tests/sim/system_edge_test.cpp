// Edge cases of the system simulator: the message type end to end, port A
// contention between threads, permanently-gated producers, and blocked
// consumer behaviour.

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"
#include "memalloc/portplan.h"
#include "sim/system.h"

namespace hicsync::sim {
namespace {

using hic::testing::compile;

struct World {
  std::unique_ptr<hic::testing::Compiled> c;
  memalloc::MemoryMap map;
  std::vector<synth::ThreadFsm> fsms;
  std::vector<memalloc::BramPortPlan> plans;
  std::unique_ptr<SystemSim> sim;
};

World make_world(const std::string& src, OrgKind kind,
                 bool restart = false) {
  World w;
  w.c = compile(src);
  EXPECT_TRUE(w.c->ok) << w.c->diags.str();
  w.map = memalloc::Allocator().allocate(*w.c->sema);
  for (const auto& t : w.c->program.threads) {
    w.fsms.push_back(synth::ThreadFsm::synthesize(t, *w.c->sema));
  }
  w.plans = memalloc::PortPlanner::plan(*w.c->sema, w.map, w.fsms);
  SystemOptions opt;
  opt.organization = kind;
  opt.restart_threads = restart;
  w.sim = std::make_unique<SystemSim>(w.c->program, *w.c->sema, w.map,
                                      w.plans, opt);
  return w;
}

TEST(SystemSimEdge, MessageTypeFlowsThroughDependency) {
  // The paper's model: a `message` (packet handle in the tub) produced by a
  // receiving thread and consumed by a computing thread.
  const char* src = R"(
    thread rx () {
      message pkt;
      #consumer{m, [work,job]}
      pkt = recv();
    }
    thread work () {
      message job;
      #producer{m, [rx,pkt]}
      job = pkt;
    }
  )";
  World w = make_world(src, OrgKind::Arbitrated);
  w.sim->externs().register_fn("recv", [](const auto&) { return 0xABCDu; });
  ASSERT_TRUE(w.sim->run_until_passes(1, 300));
  EXPECT_EQ(w.sim->register_value("work", "job"), 0xABCDu);
}

TEST(SystemSimEdge, PortAContentionBetweenThreads) {
  // Two threads hammer arrays placed in the same BRAM: the host-side port A
  // sharing must serialize them without losing accesses.
  const char* src = R"(
    thread p () {
      int buf[8];
      int i, acc, ready;
      #consumer{m, [q,go]}
      ready = 1;
      for (i = 0; i < 8; i = i + 1) buf[i] = i * 3;
      acc = 0;
      for (i = 0; i < 8; i = i + 1) acc = acc + buf[i];
    }
    thread q () {
      int other[8];
      int j, sum, go;
      #producer{m, [p,ready]}
      go = ready;
      for (j = 0; j < 8; j = j + 1) other[j] = j + 1;
      sum = 0;
      for (j = 0; j < 8; j = j + 1) sum = sum + other[j];
    }
  )";
  World w = make_world(src, OrgKind::Arbitrated);
  ASSERT_TRUE(w.sim->run_until_passes(1, 5000)) << w.sim->cycle();
  EXPECT_EQ(w.sim->register_value("p", "acc"), 84u);   // 3*(0+..+7)
  EXPECT_EQ(w.sim->register_value("q", "sum"), 36u);   // 1+..+8
  EXPECT_EQ(w.sim->register_value("q", "go"), 1u);
}

TEST(SystemSimEdge, PermanentlyGatedProducerBlocksConsumersForever) {
  World w = make_world(hic::testing::kFigure1, OrgKind::Arbitrated);
  w.sim->set_gate("t1", [](std::uint64_t) { return false; });
  for (int i = 0; i < 200; ++i) w.sim->step();
  EXPECT_EQ(w.sim->passes("t1"), 0);
  EXPECT_EQ(w.sim->passes("t2"), 0);
  EXPECT_TRUE(w.sim->is_blocked("t2"));
  EXPECT_TRUE(w.sim->is_blocked("t3"));
  EXPECT_TRUE(w.sim->rounds().empty());
}

TEST(SystemSimEdge, NoRestartMeansExactlyOnePass) {
  World w = make_world(hic::testing::kFigure1, OrgKind::Arbitrated,
                       /*restart=*/false);
  ASSERT_TRUE(w.sim->run_until_passes(1, 300));
  std::uint64_t at_one = w.sim->cycle();
  for (int i = 0; i < 100; ++i) w.sim->step();
  EXPECT_EQ(w.sim->passes("t1"), 1);
  EXPECT_EQ(w.sim->passes("t2"), 1);
  EXPECT_EQ(w.sim->rounds().size(), 1u);
  (void)at_one;
}

TEST(SystemSimEdge, WhileLoopWithBlockingReadInside) {
  // A consumer that reads the shared variable inside a loop body — each
  // iteration's read must block on a fresh produce.
  const char* src = R"(
    thread p () {
      int v;
      #consumer{m, [c,acc]}
      v = next();
    }
    thread c () {
      int acc, i;
      acc = 0;
      for (i = 0; i < 3; i = i + 1) {
        #producer{m, [p,v]}
        acc = acc + v;
      }
    }
  )";
  World w = make_world(src, OrgKind::Arbitrated, /*restart=*/true);
  int calls = 0;
  w.sim->externs().register_fn("next", [&calls](const auto&) {
    return static_cast<std::uint64_t>(10 * ++calls);
  });
  ASSERT_TRUE(w.sim->run_until_passes(1, 2000));
  // Three produces consumed: 10 + 20 + 30.
  EXPECT_EQ(w.sim->register_value("c", "acc"), 60u);
}

TEST(SystemSimEdge, EventDrivenMessagePipelineChain) {
  // rx -> fwd -> tx chain through two dependencies, event-driven.
  const char* src = R"(
    thread rx () {
      message pkt;
      #consumer{in, [fwd,wp]}
      pkt = recv();
    }
    thread fwd () {
      message wp, outp;
      #producer{in, [rx,pkt]}
      wp = pkt;
      #consumer{out, [tx,tp]}
      outp = wp;
    }
    thread tx () {
      message tp;
      #producer{out, [fwd,outp]}
      tp = outp;
    }
  )";
  World w = make_world(src, OrgKind::EventDriven);
  w.sim->externs().register_fn("recv", [](const auto&) { return 0x77u; });
  ASSERT_TRUE(w.sim->run_until_passes(1, 500));
  EXPECT_EQ(w.sim->register_value("tx", "tp"), 0x77u);
}

TEST(SystemSimEdge, BranchConditionReadsArrayThroughPortA) {
  const char* src = R"(
    thread t () {
      int tbl[4];
      int x;
      tbl[2] = 5;
      if (tbl[2] == 5) x = 1; else x = 2;
    }
  )";
  World w = make_world(src, OrgKind::Arbitrated);
  ASSERT_TRUE(w.sim->run_until_passes(1, 500));
  EXPECT_EQ(w.sim->register_value("t", "x"), 1u);
}

TEST(SystemSimEdge, UnionMemberThroughRegisters) {
  const char* src = R"(
    union word {
      bits<16> half;
      int full;
    }
    thread t () {
      word w;
      int x;
      w.full = 70000;
      x = w.half;
    }
  )";
  World w = make_world(src, OrgKind::Arbitrated);
  ASSERT_TRUE(w.sim->run_until_passes(1, 200));
  // 70000 = 0x11170; the 16-bit member view masks to 0x1170.
  EXPECT_EQ(w.sim->register_value("t", "x"), 70000u & 0xFFFFu);
}

}  // namespace
}  // namespace hicsync::sim
