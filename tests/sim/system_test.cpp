#include "sim/system.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"
#include "memalloc/portplan.h"

namespace hicsync::sim {
namespace {

using hic::testing::compile;
using hic::testing::kFigure1;

struct World {
  std::unique_ptr<hic::testing::Compiled> c;
  memalloc::MemoryMap map;
  std::vector<synth::ThreadFsm> fsms;
  std::vector<memalloc::BramPortPlan> plans;
  std::unique_ptr<SystemSim> sim;
};

World make_world(const std::string& src, OrgKind kind,
                 bool restart = false) {
  World w;
  w.c = compile(src);
  EXPECT_TRUE(w.c->ok) << w.c->diags.str();
  w.map = memalloc::Allocator().allocate(*w.c->sema);
  for (const auto& t : w.c->program.threads) {
    w.fsms.push_back(synth::ThreadFsm::synthesize(t, *w.c->sema));
  }
  w.plans = memalloc::PortPlanner::plan(*w.c->sema, w.map, w.fsms);
  SystemOptions opt;
  opt.organization = kind;
  opt.restart_threads = restart;
  w.sim = std::make_unique<SystemSim>(w.c->program, *w.c->sema, w.map,
                                      w.plans, opt);
  return w;
}

class Figure1BothOrgs : public ::testing::TestWithParam<OrgKind> {};

TEST_P(Figure1BothOrgs, ConsumersSeeProducedValue) {
  World w = make_world(kFigure1, GetParam());
  // Make f deterministic and visible.
  w.sim->externs().register_fn("f", [](const auto&) { return 1234u; });
  w.sim->externs().register_fn(
      "g", [](const auto& args) { return args.at(0) + 1; });
  w.sim->externs().register_fn(
      "h", [](const auto& args) { return args.at(0) + 2; });
  ASSERT_TRUE(w.sim->run_until_passes(1, 200)) << "cycle " << w.sim->cycle();
  EXPECT_EQ(w.sim->register_value("t2", "y1"), 1235u);
  EXPECT_EQ(w.sim->register_value("t3", "z1"), 1236u);
}

TEST_P(Figure1BothOrgs, RoundRecorded) {
  World w = make_world(kFigure1, GetParam());
  ASSERT_TRUE(w.sim->run_until_passes(1, 200));
  ASSERT_EQ(w.sim->rounds().size(), 1u);
  const DepRound& r = w.sim->rounds()[0];
  EXPECT_EQ(r.dep_id, "mt1");
  ASSERT_EQ(r.consume_cycles.size(), 2u);
  // Consumers read after the produce.
  for (const auto& [thread, cycle] : r.consume_cycles) {
    EXPECT_GT(cycle, r.produce_grant_cycle) << thread;
  }
}

TEST_P(Figure1BothOrgs, MultiplePassesDeliverFreshValues) {
  World w = make_world(kFigure1, GetParam(), /*restart=*/true);
  int calls = 0;
  w.sim->externs().register_fn("f", [&calls](const auto&) {
    return static_cast<std::uint64_t>(1000 + ++calls);
  });
  w.sim->externs().register_fn(
      "g", [](const auto& args) { return args.at(0); });
  w.sim->externs().register_fn(
      "h", [](const auto& args) { return args.at(0); });
  ASSERT_TRUE(w.sim->run_until_passes(3, 1000));
  EXPECT_GE(w.sim->rounds().size(), 3u);
  // The consumers' last values come from a produced round.
  std::uint64_t y1 = w.sim->register_value("t2", "y1");
  EXPECT_GE(y1, 1001u);
  EXPECT_LE(y1, static_cast<std::uint64_t>(1000 + calls));
}

INSTANTIATE_TEST_SUITE_P(Orgs, Figure1BothOrgs,
                         ::testing::Values(OrgKind::Arbitrated,
                                           OrgKind::EventDriven),
                         [](const auto& info) {
                           return info.param == OrgKind::Arbitrated
                                      ? "Arbitrated"
                                      : "EventDriven";
                         });

TEST(SystemSim, ConsumerBlocksUntilGateReleasesProducer) {
  World w = make_world(kFigure1, OrgKind::Arbitrated);
  // Hold the producer back for 30 cycles.
  w.sim->set_gate("t1", [](std::uint64_t cycle) { return cycle >= 30; });
  for (int i = 0; i < 25; ++i) w.sim->step();
  // Consumers must still be waiting (no completed pass).
  EXPECT_EQ(w.sim->passes("t2"), 0);
  EXPECT_EQ(w.sim->passes("t3"), 0);
  EXPECT_TRUE(w.sim->is_blocked("t2"));
  ASSERT_TRUE(w.sim->run_until_passes(1, 200));
  EXPECT_GE(w.sim->rounds()[0].produce_grant_cycle, 30u);
}

TEST(SystemSim, EventDrivenConsumeOrderIsStatic) {
  // The #consumer pragma lists [t2,y1] before [t3,z1]; §3.2: "first the
  // selection will enable access to thread t1 only. Once the write ...
  // happens, then the corresponding reads for y1 and z1 will happen, in
  // that order."
  World w = make_world(kFigure1, OrgKind::EventDriven);
  ASSERT_TRUE(w.sim->run_until_passes(1, 300));
  const DepRound& r = w.sim->rounds()[0];
  ASSERT_EQ(r.consume_cycles.size(), 2u);
  EXPECT_EQ(r.consume_cycles[0].first, "t2");
  EXPECT_EQ(r.consume_cycles[1].first, "t3");
  EXPECT_LT(r.consume_cycles[0].second, r.consume_cycles[1].second);
}

TEST(SystemSim, EventDrivenLatencyDeterministicAcrossRounds) {
  World w = make_world(kFigure1, OrgKind::EventDriven, /*restart=*/true);
  ASSERT_TRUE(w.sim->run_until_passes(5, 2000));
  ASSERT_GE(w.sim->rounds().size(), 4u);
  // Round 0 is warm-up (consumers had not yet reached their read states);
  // from round 1 on, every completed round has the identical post-write
  // latency — the §3.2 determinism property.
  std::uint64_t steady = w.sim->rounds()[1].completion_latency();
  for (std::size_t i = 2; i + 1 < w.sim->rounds().size(); ++i) {
    EXPECT_EQ(w.sim->rounds()[i].completion_latency(), steady)
        << "round " << i;
  }
}

TEST(SystemSim, ArbitratedAndEventDrivenAgreeOnValues) {
  for (OrgKind kind : {OrgKind::Arbitrated, OrgKind::EventDriven}) {
    World w = make_world(kFigure1, kind);
    w.sim->externs().register_fn("f", [](const auto&) { return 555u; });
    w.sim->externs().register_fn(
        "g", [](const auto& args) { return args.at(0) * 2; });
    w.sim->externs().register_fn(
        "h", [](const auto& args) { return args.at(0) * 3; });
    ASSERT_TRUE(w.sim->run_until_passes(1, 300));
    EXPECT_EQ(w.sim->register_value("t2", "y1"), 1110u);
    EXPECT_EQ(w.sim->register_value("t3", "z1"), 1665u);
  }
}

TEST(SystemSim, EightConsumerFanout) {
  std::string src = R"(
    thread p () {
      int data;
      #consumer{m, [c0,v0], [c1,v1], [c2,v2], [c3,v3], [c4,v4], [c5,v5], [c6,v6], [c7,v7]}
      data = f();
    }
  )";
  for (int i = 0; i < 8; ++i) {
    std::string n = std::to_string(i);
    src += "thread c" + n + " () { int v" + n + "; #producer{m, [p,data]} v" +
           n + " = g(data); }\n";
  }
  for (OrgKind kind : {OrgKind::Arbitrated, OrgKind::EventDriven}) {
    World w = make_world(src, kind);
    w.sim->externs().register_fn("f", [](const auto&) { return 42u; });
    w.sim->externs().register_fn(
        "g", [](const auto& args) { return args.at(0) + 1; });
    ASSERT_TRUE(w.sim->run_until_passes(1, 500)) << to_string(kind);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(w.sim->register_value("c" + std::to_string(i),
                                      "v" + std::to_string(i)),
                43u)
          << to_string(kind);
    }
    ASSERT_EQ(w.sim->rounds().size(), 1u);
    EXPECT_EQ(w.sim->rounds()[0].consume_cycles.size(), 8u);
  }
}

TEST(SystemSim, EventDrivenMultipleDependenciesFollowProgramOrder) {
  // One producer thread writes two dependencies in program order; the
  // event-driven modulo schedule must visit them in the same order or the
  // system deadlocks (regression: dependency order once came from pointer-
  // keyed maps and was nondeterministic).
  const char* src = R"(
    thread prod () {
      int a, b;
      #consumer{da, [ca,u]}
      a = f();
      #consumer{db, [cb,v]}
      b = g();
    }
    thread ca () {
      int u;
      #producer{da, [prod,a]}
      u = work(a);
    }
    thread cb () {
      int v;
      #producer{db, [prod,b]}
      v = work(b);
    }
  )";
  World w = make_world(src, OrgKind::EventDriven, /*restart=*/true);
  ASSERT_TRUE(w.sim->run_until_passes(3, 2000))
      << "stalled at cycle " << w.sim->cycle();
  // Rounds alternate da, db, da, db, ...
  const auto& rounds = w.sim->rounds();
  ASSERT_GE(rounds.size(), 4u);
  for (std::size_t i = 0; i + 1 < rounds.size(); i += 2) {
    EXPECT_EQ(rounds[i].dep_id, "da") << i;
    EXPECT_EQ(rounds[i + 1].dep_id, "db") << i;
  }
}

TEST(SystemSim, LocalComputationRunsWithoutControllers) {
  World w = make_world(R"(
    thread t () {
      int i, acc;
      acc = 0;
      for (i = 0; i < 5; i = i + 1) acc = acc + i;
    }
  )",
                       OrgKind::Arbitrated);
  ASSERT_TRUE(w.sim->run_until_passes(1, 200));
  EXPECT_EQ(w.sim->register_value("t", "acc"), 10u);
}

TEST(SystemSim, ControlFlowCaseStatement) {
  World w = make_world(R"(
    thread t () {
      int s, x;
      s = 2;
      case (s) {
        when 1: x = 10;
        when 2: x = 20;
        default: x = 99;
      }
    }
  )",
                       OrgKind::Arbitrated);
  ASSERT_TRUE(w.sim->run_until_passes(1, 200));
  EXPECT_EQ(w.sim->register_value("t", "x"), 20u);
}

TEST(SystemSim, ArraysThroughPortA) {
  World w = make_world(R"(
    thread t () {
      int tbl[8];
      int i, sum;
      for (i = 0; i < 4; i = i + 1) tbl[i] = i * i;
      sum = 0;
      for (i = 0; i < 4; i = i + 1) sum = sum + tbl[i];
    }
  )",
                       OrgKind::Arbitrated);
  ASSERT_TRUE(w.sim->run_until_passes(1, 500));
  EXPECT_EQ(w.sim->register_value("t", "sum"), 14u);  // 0+1+4+9
}

TEST(SystemSim, UnknownThreadThrows) {
  World w = make_world(kFigure1, OrgKind::Arbitrated);
  EXPECT_THROW(w.sim->set_gate("ghost", [](std::uint64_t) { return true; }),
               std::runtime_error);
  EXPECT_THROW((void)w.sim->register_value("ghost", "x"),
               std::runtime_error);
  EXPECT_THROW((void)w.sim->register_value("t1", "x1"),  // memory-resident
               std::runtime_error);
}

}  // namespace
}  // namespace hicsync::sim
