#include "memorg/eventdriven.h"

#include <gtest/gtest.h>

#include "memorg_test_util.h"
#include "rtl/eval.h"

namespace hicsync::memorg {
namespace {

using testing::ev_config;
using testing::idx;

rtl::Module& gen(rtl::Design& d, const EventDrivenConfig& cfg) {
  rtl::Module& m = generate_eventdriven(d, cfg, "ev");
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
  return m;
}

TEST(EventDrivenStructure, Figure3PortsPresent) {
  rtl::Design d;
  rtl::Module& m = gen(d, ev_config(2));
  rtl::ModuleSim sim(m);
  EXPECT_NO_THROW((void)sim.get("a_rdata"));
  EXPECT_NO_THROW((void)sim.get("p_grant0"));
  EXPECT_NO_THROW((void)sim.get("ev_p0"));
  EXPECT_NO_THROW((void)sim.get("ev_c0"));
  EXPECT_NO_THROW((void)sim.get("ev_c1"));
  EXPECT_NO_THROW((void)sim.get("slot"));
}

TEST(EventDrivenStructure, TotalSlots) {
  EXPECT_EQ(total_slots(ev_config(2)), 3);
  EXPECT_EQ(total_slots(ev_config(8)), 9);
}

TEST(EventDrivenStructure, FlipFlopCountConstantAcrossConsumers) {
  int ff2 = 0, ff4 = 0, ff8 = 0;
  {
    rtl::Design d;
    ff2 = gen(d, ev_config(2)).flipflop_bits();
  }
  {
    rtl::Design d;
    ff4 = gen(d, ev_config(4)).flipflop_bits();
  }
  {
    rtl::Design d;
    ff8 = gen(d, ev_config(8)).flipflop_bits();
  }
  EXPECT_EQ(ff2, ff4);
  EXPECT_EQ(ff4, ff8);
}

TEST(EventDrivenFunc, StartsAtProducerSlot) {
  rtl::Design d;
  rtl::Module& m = gen(d, ev_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  EXPECT_EQ(sim.get("slot"), 0u);
  EXPECT_EQ(sim.get("ev_p0"), 1u);
  EXPECT_EQ(sim.get("ev_c0"), 0u);
  EXPECT_EQ(sim.get("ev_c1"), 0u);
}

TEST(EventDrivenFunc, SelectionBlocksUntilProducerFires) {
  rtl::Design d;
  rtl::Module& m = gen(d, ev_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  for (int i = 0; i < 4; ++i) {
    sim.step();
    EXPECT_EQ(sim.get("slot"), 0u) << "selection logic must block";
  }
  // Consumers requesting early changes nothing.
  sim.set_input("c_req0", 1);
  sim.set_input("c_addr0", 4);
  sim.step();
  EXPECT_EQ(sim.get("slot"), 0u);
}

TEST(EventDrivenFunc, WriteAdvancesToFirstConsumer) {
  rtl::Design d;
  rtl::Module& m = gen(d, ev_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  sim.set_input("p_req0", 1);
  sim.set_input("p_addr0", 4);
  sim.set_input("p_wdata0", 42);
  sim.settle();
  EXPECT_EQ(sim.get("p_grant0"), 1u);
  sim.step();
  sim.set_input("p_req0", 0);
  EXPECT_EQ(sim.get("slot"), 1u);
  EXPECT_EQ(sim.get("ev_c0"), 1u);
  EXPECT_EQ(sim.get("ev_c1"), 0u);
  // The write passes through the port-1 operand registers: it commits to
  // the BRAM one cycle after the producer's slot fires.
  sim.step();
  EXPECT_EQ(sim.read_mem("mem", 4), 42u);
}

TEST(EventDrivenFunc, ConsumersReadInStaticOrder) {
  rtl::Design d;
  rtl::Module& m = gen(d, ev_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  // Both consumers are ready before the producer writes.
  sim.set_input("c_req0", 1);
  sim.set_input("c_addr0", 4);
  sim.set_input("c_req1", 1);
  sim.set_input("c_addr1", 4);
  sim.set_input("p_req0", 1);
  sim.set_input("p_addr0", 4);
  sim.set_input("p_wdata0", 55);
  sim.step();  // producer's slot fires, slot -> 1
  sim.set_input("p_req0", 0);
  sim.step();  // consumer 0's slot fires, slot -> 2; the write commits
  sim.set_input("c_req0", 0);
  sim.step();  // consumer 1's slot fires, slot wraps; c0's data lands
  sim.set_input("c_req1", 0);
  sim.settle();
  EXPECT_EQ(sim.get("c_valid0"), 1u);
  EXPECT_EQ(sim.get("c_valid1"), 0u);
  EXPECT_EQ(sim.get("bus_rdata"), 55u);
  EXPECT_EQ(sim.get("slot"), 0u);  // modulo wrap to the producer slot
  sim.step();  // c1's data lands
  sim.settle();
  EXPECT_EQ(sim.get("c_valid1"), 1u);
  EXPECT_EQ(sim.get("c_valid0"), 0u);
  EXPECT_EQ(sim.get("bus_rdata"), 55u);
}

TEST(EventDrivenFunc, DeterministicPostWriteLatency) {
  // With all consumers ready, consumer k's slot fires exactly k+1 cycles
  // after the write fires, and its data lands one cycle later — the §3.2
  // claim that timing is accurate once the producer fires.
  for (int nc : {2, 4, 8}) {
    rtl::Design d;
    rtl::Module& m = gen(d, ev_config(nc));
    rtl::ModuleSim sim(m);
    sim.reset();
    for (int i = 0; i < nc; ++i) {
      sim.set_input(idx("c_req", i), 1);
      sim.set_input(idx("c_addr", i), 4);
    }
    sim.set_input("p_req0", 1);
    sim.set_input("p_addr0", 4);
    sim.set_input("p_wdata0", 7);
    sim.step();  // write slot fires
    sim.set_input("p_req0", 0);
    for (int k = 0; k < nc; ++k) {
      sim.step();  // consumer k's slot fires
      sim.set_input(idx("c_req", k), 0);
      sim.settle();
      if (k >= 1) {
        // Consumer k-1's data landed on this exact edge — deterministic.
        EXPECT_EQ(sim.get(idx("c_valid", k - 1)), 1u)
            << "nc=" << nc << " k=" << k;
      }
      EXPECT_EQ(sim.get(idx("c_valid", k)), 0u) << "nc=" << nc << " k=" << k;
    }
    sim.step();  // last consumer's data lands
    sim.settle();
    EXPECT_EQ(sim.get(idx("c_valid", nc - 1)), 1u) << "nc=" << nc;
  }
}

TEST(EventDrivenFunc, SlowConsumerStallsSchedule) {
  rtl::Design d;
  rtl::Module& m = gen(d, ev_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  sim.set_input("p_req0", 1);
  sim.set_input("p_addr0", 4);
  sim.set_input("p_wdata0", 9);
  sim.step();
  sim.set_input("p_req0", 0);
  // Consumer 0 not ready: slot stays until it requests.
  for (int i = 0; i < 3; ++i) {
    sim.step();
    EXPECT_EQ(sim.get("slot"), 1u);
  }
  // Consumer 1 cannot jump the order.
  sim.set_input("c_req1", 1);
  sim.set_input("c_addr1", 4);
  sim.step();
  EXPECT_EQ(sim.get("slot"), 1u);
  sim.settle();
  EXPECT_EQ(sim.get("c_valid1"), 0u);
  // Consumer 0 arrives; order proceeds 0 then 1.
  sim.set_input("c_req0", 1);
  sim.set_input("c_addr0", 4);
  sim.step();
  sim.set_input("c_req0", 0);
  EXPECT_EQ(sim.get("slot"), 2u);
  sim.step();
  sim.set_input("c_req1", 0);
  EXPECT_EQ(sim.get("slot"), 0u);
}

TEST(EventDrivenFunc, PortAIndependentOfSchedule) {
  rtl::Design d;
  rtl::Module& m = gen(d, ev_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  // Port A works while the selection logic blocks in the producer slot.
  sim.set_input("a_en", 1);
  sim.set_input("a_we", 1);
  sim.set_input("a_addr", 30);
  sim.set_input("a_wdata", 123);
  sim.step();
  sim.set_input("a_we", 0);
  sim.step();
  EXPECT_EQ(sim.get("a_rdata"), 123u);
  EXPECT_EQ(sim.get("slot"), 0u);
}

TEST(EventDrivenFunc, TwoDependenciesModuloBetweenProducers) {
  EventDrivenConfig cfg = ev_config(1);
  cfg.num_producers = 2;
  cfg.num_consumers = 2;
  // dep0: producer port 0 -> consumer port 0 (addr 4, from ev_config(1)).
  DepEntry e2;
  e2.id = "mt2";
  e2.base_address = 8;
  e2.dependency_number = 1;
  e2.producer_port = 1;
  e2.consumer_ports = {1};
  cfg.deps.push_back(e2);
  rtl::Design d;
  rtl::Module& m = gen(d, cfg);
  rtl::ModuleSim sim(m);
  sim.reset();
  // Slots: 0 = p0 write, 1 = c0 read, 2 = p1 write, 3 = c1 read.
  EXPECT_EQ(sim.get("ev_p0"), 1u);
  EXPECT_EQ(sim.get("ev_p1"), 0u);
  sim.set_input("p_req0", 1);
  sim.set_input("p_addr0", 4);
  sim.set_input("p_wdata0", 1);
  sim.step();
  sim.set_input("p_req0", 0);
  sim.set_input("c_req0", 1);
  sim.set_input("c_addr0", 4);
  sim.step();
  sim.set_input("c_req0", 0);
  // Now producer 1's slot: modulo scheduling moved to the next producer.
  EXPECT_EQ(sim.get("slot"), 2u);
  EXPECT_EQ(sim.get("ev_p1"), 1u);
  EXPECT_EQ(sim.get("ev_p0"), 0u);
  sim.set_input("p_req1", 1);
  sim.set_input("p_addr1", 8);
  sim.set_input("p_wdata1", 2);
  sim.step();
  sim.set_input("p_req1", 0);
  EXPECT_EQ(sim.get("slot"), 3u);
  sim.set_input("c_req1", 1);
  sim.set_input("c_addr1", 8);
  sim.step();
  sim.set_input("c_req1", 0);
  EXPECT_EQ(sim.get("slot"), 0u);  // wrapped to producer 0
}

TEST(EventDrivenFunc, RepeatedRoundsDeliverFreshData) {
  rtl::Design d;
  rtl::Module& m = gen(d, ev_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  for (std::uint64_t round = 1; round <= 3; ++round) {
    std::uint64_t value = 200 + round;
    sim.set_input("p_req0", 1);
    sim.set_input("p_addr0", 4);
    sim.set_input("p_wdata0", value);
    sim.step();
    sim.set_input("p_req0", 0);
    for (int i = 0; i < 2; ++i) {
      sim.set_input(idx("c_req", i), 1);
      sim.set_input(idx("c_addr", i), 4);
      sim.step();  // slot fires
      sim.set_input(idx("c_req", i), 0);
      sim.step();  // data lands
      sim.settle();
      EXPECT_EQ(sim.get(idx("c_valid", i)), 1u) << "round " << round;
      EXPECT_EQ(sim.get("bus_rdata"), value) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace hicsync::memorg
