// Helpers for driving generated memory-organization modules in tests.
#pragma once

#include <string>

#include "memorg/arbitrated.h"
#include "memorg/eventdriven.h"
#include "rtl/eval.h"

namespace hicsync::memorg::testing {

/// A 1-producer / N-consumer config with one dependency at base address 4,
/// mirroring the paper's experimental scenarios.
inline ArbitratedConfig arb_config(int consumers, int producers = 1) {
  ArbitratedConfig cfg;
  cfg.num_consumers = consumers;
  cfg.num_producers = producers;
  DepEntry e;
  e.id = "mt1";
  e.base_address = 4;
  e.dependency_number = consumers;
  e.producer_port = 0;
  for (int i = 0; i < consumers; ++i) e.consumer_ports.push_back(i);
  cfg.deps.push_back(std::move(e));
  return cfg;
}

inline EventDrivenConfig ev_config(int consumers, int producers = 1) {
  EventDrivenConfig cfg;
  cfg.num_consumers = consumers;
  cfg.num_producers = producers;
  DepEntry e;
  e.id = "mt1";
  e.base_address = 4;
  e.dependency_number = consumers;
  e.producer_port = 0;
  for (int i = 0; i < consumers; ++i) e.consumer_ports.push_back(i);
  cfg.deps.push_back(std::move(e));
  return cfg;
}

inline std::string idx(const std::string& base, int i) {
  return base + std::to_string(i);
}

}  // namespace hicsync::memorg::testing
