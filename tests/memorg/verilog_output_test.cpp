// Sanity of the emitted Verilog for full generated controllers: balanced
// module structure, no unprintable operator placeholders, declared names.

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <set>
#include <sstream>
#include <string>

#include "memorg_test_util.h"
#include "rtl/verilog.h"

namespace hicsync::memorg {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

class ControllerVerilog : public ::testing::TestWithParam<int> {};

TEST_P(ControllerVerilog, ArbitratedEmitsWellFormedText) {
  rtl::Design d;
  rtl::Module& m =
      generate_arbitrated(d, testing::arb_config(GetParam()), "arb");
  std::string v = rtl::emit_module(m);
  EXPECT_EQ(count_occurrences(v, "module "), 1u);
  EXPECT_EQ(count_occurrences(v, "endmodule"), 1u);
  // The emitter prints '?' only in ternaries "( ? : )"; a bare "?" outside
  // that pattern would mean an unhandled operator.
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    if (v[i] == '?') {
      EXPECT_EQ(v[i + 1], ' ') << "stray '?' at offset " << i;
    }
  }
  // Every consumer pseudo-port appears in the port list.
  for (int i = 0; i < GetParam(); ++i) {
    EXPECT_NE(v.find("c_req" + std::to_string(i)), std::string::npos);
    EXPECT_NE(v.find("c_valid" + std::to_string(i)), std::string::npos);
  }
  // The BRAM is inferred with both ports.
  EXPECT_EQ(count_occurrences(v, "mem ["), 1u);
  EXPECT_GE(count_occurrences(v, "mem["), 3u);  // two reads + writes
}

TEST_P(ControllerVerilog, EventDrivenEmitsWellFormedText) {
  rtl::Design d;
  rtl::Module& m =
      generate_eventdriven(d, testing::ev_config(GetParam()), "ev");
  std::string v = rtl::emit_module(m);
  EXPECT_EQ(count_occurrences(v, "module "), 1u);
  EXPECT_EQ(count_occurrences(v, "endmodule"), 1u);
  EXPECT_NE(v.find("output reg"), std::string::npos);   // slot register
  for (int i = 0; i < GetParam(); ++i) {
    EXPECT_NE(v.find("ev_c" + std::to_string(i)), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ControllerVerilog,
                         ::testing::Values(2, 4, 8));

TEST(ControllerVerilog, EveryReferencedNameIsDeclared) {
  // Weak lint: every identifier used in an assign RHS appears as a port or
  // declaration earlier in the text. Tokenize identifiers and compare.
  rtl::Design d;
  rtl::Module& m = generate_arbitrated(d, testing::arb_config(4), "arb");
  std::string v = rtl::emit_module(m);
  // Collect declared names.
  std::set<std::string> declared;
  std::istringstream lines(v);
  std::string line;
  auto add_decl = [&](const std::string& l, const char* kw) {
    auto pos = l.find(kw);
    if (pos == std::string::npos) return;
    std::string rest = l.substr(pos + std::strlen(kw));
    // name is the last identifier before ';' or '[' (memories) or ','.
    std::string name;
    for (char ch : rest) {
      if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_') {
        name += ch;
      } else if (ch == ']') {
        name.clear();
      } else if (!name.empty() && (ch == ';' || ch == ' ' || ch == ',')) {
        declared.insert(name);
        name.clear();
      }
    }
    if (!name.empty()) declared.insert(name);
  };
  while (std::getline(lines, line)) {
    add_decl(line, "wire ");
    add_decl(line, "reg ");
    add_decl(line, "input ");
    add_decl(line, "output ");
  }
  // Check identifiers in assigns.
  std::istringstream again(v);
  int checked = 0;
  while (std::getline(again, line)) {
    if (line.find("assign ") == std::string::npos) continue;
    std::string name;
    bool in_literal = false;  // 3'd0-style constants are not identifiers
    char prev = ' ';
    for (char ch : line) {
      if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_' ||
          (!name.empty() && std::isdigit(static_cast<unsigned char>(ch)))) {
        if (name.empty()) in_literal = (prev == '\'');
        name += ch;
      } else {
        if (name.size() > 1 && name != "assign" && !in_literal &&
            ch != '\'') {
          EXPECT_TRUE(declared.count(name) != 0)
              << "undeclared identifier '" << name << "' in: " << line;
          ++checked;
        }
        name.clear();
      }
      prev = ch;
    }
  }
  EXPECT_GT(checked, 50);
}

}  // namespace
}  // namespace hicsync::memorg
