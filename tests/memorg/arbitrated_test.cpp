#include "memorg/arbitrated.h"

#include <gtest/gtest.h>

#include "memorg_test_util.h"
#include "rtl/eval.h"

namespace hicsync::memorg {
namespace {

using testing::arb_config;
using testing::idx;

rtl::Module& gen(rtl::Design& d, const ArbitratedConfig& cfg) {
  rtl::Module& m = generate_arbitrated(d, cfg, "arb");
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
  return m;
}

/// Steps until `signal` reads 1 (checked pre-edge). Returns the number of
/// cycles waited, or -1 after `max_cycles`.
int wait_for(rtl::ModuleSim& sim, const std::string& signal,
             int max_cycles) {
  for (int i = 0; i <= max_cycles; ++i) {
    sim.settle();
    if (sim.get(signal) != 0) return i;
    sim.step();
  }
  return -1;
}

/// Performs one producer write on pseudo-port j; leaves the sim just after
/// the grant edge. Returns false if the grant never came.
bool produce(rtl::ModuleSim& sim, int j, std::uint64_t addr,
             std::uint64_t value, int max_cycles = 8) {
  sim.set_input(idx("d_req", j), 1);
  sim.set_input(idx("d_addr", j), addr);
  sim.set_input(idx("d_wdata", j), value);
  if (wait_for(sim, idx("d_grant", j), max_cycles) < 0) return false;
  sim.step();  // commit the grant
  sim.set_input(idx("d_req", j), 0);
  return true;
}

/// Performs one consumer read on pseudo-port i and waits for its data.
/// Returns the read value through `out`; false on timeout.
bool consume(rtl::ModuleSim& sim, int i, std::uint64_t addr,
             std::uint64_t* out = nullptr, int max_cycles = 12) {
  sim.set_input(idx("c_req", i), 1);
  sim.set_input(idx("c_addr", i), addr);
  if (wait_for(sim, idx("c_grant", i), max_cycles) < 0) return false;
  sim.step();
  sim.set_input(idx("c_req", i), 0);
  if (wait_for(sim, idx("c_valid", i), 4) < 0) return false;
  if (out != nullptr) *out = sim.get("bus_rdata");
  sim.step();
  return true;
}

TEST(ArbitratedStructure, Figure2PortsPresent) {
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(2));
  rtl::ModuleSim sim(m);
  // Four logical ports of Fig. 2.
  EXPECT_NO_THROW((void)sim.get("a_rdata"));
  EXPECT_NO_THROW((void)sim.get("b_grant"));
  EXPECT_NO_THROW((void)sim.get("c_grant0"));
  EXPECT_NO_THROW((void)sim.get("c_grant1"));
  EXPECT_NO_THROW((void)sim.get("d_grant0"));
  // The dependency list countdown register exists.
  EXPECT_NO_THROW((void)sim.get("dep0_count"));
}

TEST(ArbitratedStructure, FlipFlopCountConstantAcrossConsumers) {
  // Table 1 prose: "The constant flip-flop count is due to the baseline
  // architecture ... additional multiplexing of pseudo-ports does not
  // contribute to the flip-flop count."
  int ff2 = 0, ff4 = 0, ff8 = 0;
  {
    rtl::Design d;
    ff2 = gen(d, arb_config(2)).flipflop_bits();
  }
  {
    rtl::Design d;
    ff4 = gen(d, arb_config(4)).flipflop_bits();
  }
  {
    rtl::Design d;
    ff8 = gen(d, arb_config(8)).flipflop_bits();
  }
  EXPECT_EQ(ff2, ff4);
  EXPECT_EQ(ff4, ff8);
  EXPECT_GT(ff2, 0);
}

TEST(ArbitratedFunc, PortAIndependentAccess) {
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  sim.set_input("a_en", 1);
  sim.set_input("a_we", 1);
  sim.set_input("a_addr", 10);
  sim.set_input("a_wdata", 0xBEEF);
  sim.step();
  sim.set_input("a_we", 0);
  sim.step();
  EXPECT_EQ(sim.get("a_rdata"), 0xBEEFu);
}

TEST(ArbitratedFunc, ConsumerBlocksUntilProducerWrites) {
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  // Consumer 0 requests the guarded address before any produce: blocked.
  sim.set_input("c_req0", 1);
  sim.set_input("c_addr0", 4);
  for (int i = 0; i < 6; ++i) {
    sim.settle();
    EXPECT_EQ(sim.get("c_grant0"), 0u) << "cycle " << i;
    sim.step();
  }
  // Producer writes; the blocked consumer is then granted and reads 77.
  ASSERT_TRUE(produce(sim, 0, 4, 77));
  ASSERT_GE(wait_for(sim, "c_grant0", 4), 0);
  sim.step();
  sim.set_input("c_req0", 0);
  ASSERT_GE(wait_for(sim, "c_valid0", 4), 0);
  EXPECT_EQ(sim.get("bus_rdata"), 77u);
}

TEST(ArbitratedFunc, GrantAndDataLatencyExact) {
  // The pipeline is: eligibility lookup register (1 cycle) → grant →
  // port-1 operand register (1 cycle) → BRAM read (1 cycle) → valid.
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  ASSERT_TRUE(produce(sim, 0, 4, 9));
  // Request with the entry already produced: grant exactly 1 cycle after
  // the request cycle (the lookup register).
  sim.set_input("c_req0", 1);
  sim.set_input("c_addr0", 4);
  sim.settle();
  EXPECT_EQ(sim.get("c_grant0"), 0u);
  sim.step();
  sim.settle();
  EXPECT_EQ(sim.get("c_grant0"), 1u);
  sim.step();
  sim.set_input("c_req0", 0);
  // Valid exactly 2 cycles after the grant edge.
  sim.settle();
  EXPECT_EQ(sim.get("c_valid0"), 0u);
  sim.step();
  sim.settle();
  EXPECT_EQ(sim.get("c_valid0"), 1u);
  EXPECT_EQ(sim.get("bus_rdata"), 9u);
}

TEST(ArbitratedFunc, DependencyCountTracksReads) {
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  EXPECT_EQ(sim.get("dep0_count"), 0u);
  ASSERT_TRUE(produce(sim, 0, 4, 1));
  EXPECT_EQ(sim.get("dep0_count"), 2u);
  ASSERT_TRUE(consume(sim, 0, 4));
  EXPECT_EQ(sim.get("dep0_count"), 1u);
  ASSERT_TRUE(consume(sim, 1, 4));
  EXPECT_EQ(sim.get("dep0_count"), 0u);
}

TEST(ArbitratedFunc, ProducerBlockedUntilCycleCompletes) {
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  ASSERT_TRUE(produce(sim, 0, 4, 1));
  // Second produce attempt while both reads are outstanding: blocked.
  sim.set_input("d_req0", 1);
  sim.set_input("d_addr0", 4);
  sim.set_input("d_wdata0", 2);
  for (int i = 0; i < 5; ++i) {
    sim.settle();
    EXPECT_EQ(sim.get("d_grant0"), 0u) << "cycle " << i;
    sim.step();
  }
  // One consumer reads; still blocked (count 1).
  ASSERT_TRUE(consume(sim, 0, 4));
  sim.settle();
  EXPECT_EQ(sim.get("d_grant0"), 0u);
  EXPECT_EQ(sim.get("dep0_count"), 1u);
  // Second consumer completes the cycle; the pending write is then granted
  // (possibly already during the read's drain cycles), which re-guards the
  // entry: the countdown returns to the dependency number.
  ASSERT_TRUE(consume(sim, 1, 4));
  bool reloaded = false;
  for (int i = 0; i < 6 && !reloaded; ++i) {
    sim.settle();
    reloaded = sim.get("dep0_count") == 2u;
    sim.step();
  }
  EXPECT_TRUE(reloaded);
  EXPECT_EQ(sim.read_mem("mem", 4), 2u);
}

TEST(ArbitratedFunc, WriteBeatsReadInSameCycle) {
  // Two entries: a read eligible on entry 0 and a write eligible on
  // entry 1 in the same cycle — the write has priority on port 1.
  ArbitratedConfig cfg = arb_config(2);
  DepEntry e2;
  e2.id = "mt2";
  e2.base_address = 8;
  e2.dependency_number = 1;
  e2.producer_port = 0;
  e2.consumer_ports = {1};
  cfg.deps.push_back(e2);
  rtl::Design d;
  rtl::Module& m = gen(d, cfg);
  rtl::ModuleSim sim(m);
  sim.reset();
  ASSERT_TRUE(produce(sim, 0, 4, 5));  // entry 0 produced, count = 2
  // Present both: consumer 0 reads addr 4 (eligible), producer writes
  // addr 8 (entry 1, count 0 → eligible).
  sim.set_input("c_req0", 1);
  sim.set_input("c_addr0", 4);
  sim.set_input("d_req0", 1);
  sim.set_input("d_addr0", 8);
  sim.set_input("d_wdata0", 6);
  sim.step();  // both eligibility bits latch
  sim.settle();
  EXPECT_EQ(sim.get("d_grant0"), 1u);
  EXPECT_EQ(sim.get("c_grant0"), 0u);  // suppressed by the write
  sim.step();
  sim.set_input("d_req0", 0);
  // The read follows one cycle later.
  sim.settle();
  EXPECT_EQ(sim.get("c_grant0"), 1u);
}

TEST(ArbitratedFunc, RoundRobinFairnessAmongConsumers) {
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(4));
  rtl::ModuleSim sim(m);
  sim.reset();
  ASSERT_TRUE(produce(sim, 0, 4, 9));
  // All four consumers request simultaneously; each is granted exactly
  // once (dependency number = 4), one per cycle once the pipeline fills.
  for (int i = 0; i < 4; ++i) {
    sim.set_input(idx("c_req", i), 1);
    sim.set_input(idx("c_addr", i), 4);
  }
  std::vector<int> grants(4, 0);
  for (int cycle = 0; cycle < 12; ++cycle) {
    sim.settle();
    int granted = -1;
    for (int i = 0; i < 4; ++i) {
      if (sim.get(idx("c_grant", i)) != 0) {
        EXPECT_EQ(granted, -1) << "grant not one-hot";
        granted = i;
      }
    }
    if (granted >= 0) {
      ++grants[static_cast<std::size_t>(granted)];
      sim.set_input(idx("c_req", granted), 0);
    }
    sim.step();
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(grants[static_cast<std::size_t>(i)], 1) << "consumer " << i;
  }
}

TEST(ArbitratedFunc, PortBOnlyWhenCAndDSilent) {
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  sim.set_input("b_en", 1);
  sim.set_input("b_addr", 20);
  sim.settle();
  EXPECT_EQ(sim.get("b_grant"), 1u);
  // Any raw C request suppresses B, even an ineligible (blocked) one.
  sim.set_input("c_req0", 1);
  sim.set_input("c_addr0", 4);
  sim.settle();
  EXPECT_EQ(sim.get("b_grant"), 0u);
  sim.set_input("c_req0", 0);
  sim.set_input("d_req0", 1);
  sim.set_input("d_addr0", 4);
  sim.settle();
  EXPECT_EQ(sim.get("b_grant"), 0u);
}

TEST(ArbitratedFunc, PortBReadReturnsData) {
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  // Write 0x42 at 20 via port B, then read it back via port B. Each grant
  // takes effect through the registered port: the write commits one cycle
  // after its grant, the read data one more cycle after the read's grant.
  sim.set_input("b_en", 1);
  sim.set_input("b_we", 1);
  sim.set_input("b_addr", 20);
  sim.set_input("b_wdata", 0x42);
  sim.step();  // write grant latched
  sim.set_input("b_we", 0);
  sim.step();  // write commits; read grant latched
  sim.step();  // read data lands
  EXPECT_EQ(sim.get("b_valid"), 1u);
  EXPECT_EQ(sim.get("bus_rdata"), 0x42u);
}

TEST(ArbitratedFunc, ValidRoutedToGrantedConsumerOnly) {
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(4));
  rtl::ModuleSim sim(m);
  sim.reset();
  ASSERT_TRUE(produce(sim, 0, 4, 3));
  std::uint64_t out = 0;
  ASSERT_TRUE(consume(sim, 2, 4, &out));
  EXPECT_EQ(out, 3u);
  // During the whole transaction, only consumer 2's valid ever pulsed —
  // probe here (post-read) that others are low.
  sim.settle();
  EXPECT_EQ(sim.get("c_valid0"), 0u);
  EXPECT_EQ(sim.get("c_valid1"), 0u);
  EXPECT_EQ(sim.get("c_valid3"), 0u);
}

TEST(ArbitratedFunc, TwoDependencyEntriesIndependent) {
  ArbitratedConfig cfg = arb_config(2);
  DepEntry e2;
  e2.id = "mt2";
  e2.base_address = 8;
  e2.dependency_number = 1;
  e2.producer_port = 0;
  e2.consumer_ports = {1};
  cfg.deps.push_back(e2);
  rtl::Design d;
  rtl::Module& m = gen(d, cfg);
  rtl::ModuleSim sim(m);
  sim.reset();
  // Produce to entry 1 (addr 8) only.
  ASSERT_TRUE(produce(sim, 0, 8, 11));
  EXPECT_EQ(sim.get("dep0_count"), 0u);
  EXPECT_EQ(sim.get("dep1_count"), 1u);
  // A consumer read at addr 4 blocks.
  sim.set_input("c_req1", 1);
  sim.set_input("c_addr1", 4);
  for (int i = 0; i < 4; ++i) {
    sim.settle();
    EXPECT_EQ(sim.get("c_grant1"), 0u);
    sim.step();
  }
  sim.set_input("c_req1", 0);
  sim.step();
  // At addr 8 it proceeds and returns the produced value.
  std::uint64_t out = 0;
  ASSERT_TRUE(consume(sim, 1, 8, &out));
  EXPECT_EQ(out, 11u);
}

TEST(ArbitratedFunc, SerialScanModeStillEnforcesDependencies) {
  ArbitratedConfig cfg = arb_config(2);
  cfg.use_cam = false;
  DepEntry e2;
  e2.id = "mt2";
  e2.base_address = 8;
  e2.dependency_number = 2;
  e2.producer_port = 0;
  e2.consumer_ports = {0, 1};
  cfg.deps.push_back(e2);
  rtl::Design d;
  rtl::Module& m = gen(d, cfg);
  rtl::ModuleSim sim(m);
  sim.reset();
  // Blocked read before produce, regardless of scan position.
  sim.set_input("c_req0", 1);
  sim.set_input("c_addr0", 8);
  for (int i = 0; i < 5; ++i) {
    sim.settle();
    EXPECT_EQ(sim.get("c_grant0"), 0u);
    sim.step();
  }
  sim.set_input("c_req0", 0);
  sim.step();
  // Produce at addr 8 and read it back; the serial scan adds up to
  // |entries| lookup cycles but preserves the guard semantics.
  ASSERT_TRUE(produce(sim, 0, 8, 5));
  std::uint64_t out = 0;
  ASSERT_TRUE(consume(sim, 0, 8, &out));
  EXPECT_EQ(out, 5u);
}

TEST(ArbitratedFunc, ReadDataMatchesProducedValue) {
  rtl::Design d;
  rtl::Module& m = gen(d, arb_config(2));
  rtl::ModuleSim sim(m);
  sim.reset();
  for (std::uint64_t round = 1; round <= 3; ++round) {
    std::uint64_t value = 100 + round;
    ASSERT_TRUE(produce(sim, 0, 4, value)) << "round " << round;
    for (int i = 0; i < 2; ++i) {
      std::uint64_t out = 0;
      ASSERT_TRUE(consume(sim, i, 4, &out)) << "round " << round;
      EXPECT_EQ(out, value) << "round " << round << " consumer " << i;
    }
  }
}

TEST(ArbitratedStructure, ConfigHelpers) {
  ArbitratedConfig cfg = arb_config(3);
  EXPECT_EQ(cfg.deps[0].consumer_ports.size(), 3u);
  EXPECT_EQ(counter_width(cfg.deps), 2);
}

}  // namespace
}  // namespace hicsync::memorg
