// hicbin artifact round-trip suite: every shipped example, under both
// memory organizations, must survive emit → load → run with results
// bit-identical to running the direct compilation — and every way an
// artifact can be damaged (bad magic, version skew, truncation, payload
// corruption, stale source, digest mismatch, dangling names) must be
// rejected with its stable rt-* code, never loaded.

#include "rt/artifact.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "rt/store.h"
#include "rt/workload.h"

#ifndef HICSYNC_EXAMPLES_DIR
#error "HICSYNC_EXAMPLES_DIR must point at the examples/ directory"
#endif

namespace hicsync::rt {
namespace {

std::string read_example(const std::string& name) {
  std::ifstream in(std::string(HICSYNC_EXAMPLES_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "cannot open example " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::unique_ptr<core::CompileResult> compile_example(
    const std::string& source, sim::OrgKind kind, const std::string& name) {
  core::CompileOptions options;
  options.organization = kind;
  options.source_name = name;
  auto result = core::Compiler(options).compile(source);
  EXPECT_TRUE(result->ok()) << result->diags().str();
  return result;
}

struct Case {
  const char* example;
  int passes;
};

// Every shipped example; pass targets small enough to converge in the
// default cycle budget under both organizations.
const Case kCases[] = {
    {"fig1.hic", 2},
    {"pipeline.hic", 2},
    {"stress8.hic", 1},
    {"stress_shared.hic", 1},
};

class RoundTripBothOrgs
    : public ::testing::TestWithParam<std::tuple<sim::OrgKind, int>> {};

TEST_P(RoundTripBothOrgs, LoadedArtifactMatchesDirectCompile) {
  const auto [kind, index] = GetParam();
  const Case& c = kCases[index];
  const std::string source = read_example(c.example);
  auto compiled = compile_example(source, kind, c.example);

  const std::string bytes = emit_artifact(*compiled, source);
  ArtifactError error;
  auto loaded = load_program([&] {
    Artifact a;
    EXPECT_TRUE(parse_artifact(bytes, &a, &error)) << error.str();
    return a;
  }(), &error);
  ASSERT_NE(loaded, nullptr) << error.str();
  EXPECT_EQ(loaded->name(), c.example);
  EXPECT_EQ(loaded->organization(), kind);

  // Differential: the same seeded workload on a direct-compile simulator
  // and on an artifact-loaded simulator must agree on everything a client
  // can observe.
  for (std::uint64_t salt : {0ull, 7ull}) {
    std::uint64_t words[] = {salt, salt * 3 + 1};
    std::uint64_t seed = fold_seed(kWorkloadSeedInit, words, 2);

    auto direct_sim = compiled->make_simulator();
    WorkloadResult direct =
        run_workload(*direct_sim, compiled->program(), compiled->sema(),
                     c.passes, 200000, seed);
    ASSERT_TRUE(direct.converged) << c.example;

    auto loaded_sim = loaded->make_simulator();
    WorkloadResult from_artifact =
        run_workload(*loaded_sim, loaded->program(), loaded->sema(),
                     c.passes, 200000, seed);
    ASSERT_TRUE(from_artifact.converged) << c.example;

    EXPECT_EQ(direct.registers, from_artifact.registers) << c.example;
    EXPECT_EQ(direct.cycles, from_artifact.cycles) << c.example;
    EXPECT_EQ(direct.rounds, from_artifact.rounds) << c.example;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Examples, RoundTripBothOrgs,
    ::testing::Combine(::testing::Values(sim::OrgKind::Arbitrated,
                                         sim::OrgKind::EventDriven),
                       ::testing::Range(0, 4)),
    [](const auto& info) {
      std::string org = std::get<0>(info.param) == sim::OrgKind::Arbitrated
                            ? "Arbitrated"
                            : "EventDriven";
      std::string name = kCases[std::get<1>(info.param)].example;
      return org + "_" + name.substr(0, name.find('.'));
    });

TEST(ArtifactFormat, EmitIsDeterministicAndFramed) {
  const std::string source = read_example("fig1.hic");
  auto compiled =
      compile_example(source, sim::OrgKind::Arbitrated, "fig1.hic");
  const std::string a = emit_artifact(*compiled, source);
  const std::string b = emit_artifact(*compiled, source);
  EXPECT_EQ(a, b);  // byte-for-byte reproducible

  // Header: "HICBIN <version> <payload-bytes> <digest>\n" and the declared
  // length/digest actually match the payload.
  ASSERT_EQ(a.rfind("HICBIN 1 ", 0), 0u);
  std::size_t nl = a.find('\n');
  ASSERT_NE(nl, std::string::npos);
  Artifact art;
  ArtifactError error;
  ASSERT_TRUE(parse_artifact(a, &art, &error)) << error.str();
  EXPECT_EQ(art.version, kArtifactVersion);
  EXPECT_EQ(art.source_name, "fig1.hic");
  EXPECT_EQ(art.source, source);
  EXPECT_EQ(art.organization, "arbitrated");
  EXPECT_FALSE(art.brams.empty());
  EXPECT_FALSE(art.registers.empty());
  EXPECT_FALSE(art.plans.empty());
  EXPECT_FALSE(art.controllers.empty());
  EXPECT_EQ(art.sema_digest, sema_digest(compiled->sema()));
}

TEST(ArtifactFormat, Fnv1a64KnownAnswers) {
  // FNV-1a 64 reference vectors; the digest scheme must never drift.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

class ArtifactRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    source_ = read_example("fig1.hic");
    auto compiled =
        compile_example(source_, sim::OrgKind::EventDriven, "fig1.hic");
    bytes_ = emit_artifact(*compiled, source_);
  }

  std::string expect_rejected(const std::string& bytes) {
    Artifact art;
    ArtifactError error;
    EXPECT_FALSE(parse_artifact(bytes, &art, &error));
    EXPECT_FALSE(error.ok());
    return error.code;
  }

  std::string source_;
  std::string bytes_;
};

TEST_F(ArtifactRejection, NotAnArtifact) {
  EXPECT_EQ(expect_rejected(""), "rt-bad-magic");
  EXPECT_EQ(expect_rejected("ELF\x7f garbage"), "rt-bad-magic");
  EXPECT_EQ(expect_rejected("HICBIN"), "rt-bad-magic");
  EXPECT_EQ(expect_rejected("HICBIN 1 2\n{}"), "rt-bad-magic");  // 3 fields
  EXPECT_EQ(expect_rejected("HICBIN x 2 0\n{}"), "rt-bad-magic");
}

TEST_F(ArtifactRejection, VersionSkew) {
  std::string skewed = bytes_;
  ASSERT_EQ(skewed.rfind("HICBIN 1 ", 0), 0u);
  skewed[7] = '9';  // HICBIN 9 ...
  EXPECT_EQ(expect_rejected(skewed), "rt-version-skew");
  EXPECT_EQ(expect_rejected("HICBIN 0 0 cbf29ce484222325\n"),
            "rt-version-skew");
}

TEST_F(ArtifactRejection, Truncated) {
  // Any cut inside the payload leaves it shorter than the header declares.
  EXPECT_EQ(expect_rejected(bytes_.substr(0, bytes_.size() - 1)),
            "rt-truncated");
  EXPECT_EQ(expect_rejected(bytes_.substr(0, bytes_.size() / 2)),
            "rt-truncated");
  std::size_t nl = bytes_.find('\n');
  EXPECT_EQ(expect_rejected(bytes_.substr(0, nl + 1)), "rt-truncated");
}

TEST_F(ArtifactRejection, CorruptPayload) {
  // Flip one payload byte: length still matches, digest does not.
  std::string corrupt = bytes_;
  corrupt[bytes_.find('\n') + 10] ^= 0x20;
  EXPECT_EQ(expect_rejected(corrupt), "rt-corrupt");

  // Trailing garbage after the declared payload.
  EXPECT_EQ(expect_rejected(bytes_ + "extra"), "rt-corrupt");
}

TEST_F(ArtifactRejection, StaleSourceIsSourceError) {
  Artifact art;
  ArtifactError error;
  ASSERT_TRUE(parse_artifact(bytes_, &art, &error));
  art.source = "thread t () { int x; x = ; }";  // no longer parses
  auto loaded = load_program(art, &error);
  EXPECT_EQ(loaded, nullptr);
  EXPECT_EQ(error.code, "rt-source-error");
}

TEST_F(ArtifactRejection, EditedSourceIsSemaMismatch) {
  Artifact art;
  ArtifactError error;
  ASSERT_TRUE(parse_artifact(bytes_, &art, &error));
  // Valid program, but not the one the placements were computed for.
  art.source = "thread t () { int x; x = 1; }";
  auto loaded = load_program(art, &error);
  EXPECT_EQ(loaded, nullptr);
  EXPECT_EQ(error.code, "rt-sema-mismatch");
}

TEST_F(ArtifactRejection, DanglingPlacementIsResolveError) {
  Artifact art;
  ArtifactError error;
  ASSERT_TRUE(parse_artifact(bytes_, &art, &error));
  ASSERT_FALSE(art.brams.empty());
  ASSERT_FALSE(art.brams[0].placements.empty());
  // Keep the digest honest (same source), but point a placement at a
  // variable the Sema does not know.
  art.brams[0].placements[0].var = "no_such_var";
  auto loaded = load_program(art, &error);
  EXPECT_EQ(loaded, nullptr);
  EXPECT_EQ(error.code, "rt-resolve-error");
}

TEST_F(ArtifactRejection, ErrorStrCarriesCode) {
  ArtifactError error;
  Artifact art;
  EXPECT_FALSE(parse_artifact("junk", &art, &error));
  EXPECT_NE(error.str().find("rt-bad-magic"), std::string::npos);
  EXPECT_TRUE(ArtifactError{}.ok());
  EXPECT_EQ(ArtifactError{}.str(), "ok");
}

}  // namespace
}  // namespace hicsync::rt
