// ProgramStore registry semantics (load/replace/get across threads holding
// shared_ptrs) and the refcounted BufferPool the service's command
// payloads ride in.

#include "rt/store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "rt/buffer.h"

namespace hicsync::rt {
namespace {

std::string make_artifact(const std::string& source, const std::string& name,
                          sim::OrgKind kind = sim::OrgKind::Arbitrated) {
  core::CompileOptions options;
  options.organization = kind;
  options.source_name = name;
  auto result = core::Compiler(options).compile(source);
  EXPECT_TRUE(result->ok()) << result->diags().str();
  return emit_artifact(*result, source);
}

TEST(ProgramStore, LoadGetNamesAndReplace) {
  ProgramStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.get("fig1.hic"), nullptr);

  ArtifactError error;
  auto fig1 = store.load_bytes(
      make_artifact(netapp::figure1_source(), "fig1.hic"), &error);
  ASSERT_NE(fig1, nullptr) << error.str();
  auto fanout = store.load_bytes(
      make_artifact(netapp::fanout_source(2), "fanout2.hic"), &error);
  ASSERT_NE(fanout, nullptr) << error.str();

  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get("fig1.hic"), fig1);
  EXPECT_EQ(store.names(), (std::vector<std::string>{
                               "fanout2.hic", "fig1.hic"}));

  // Reloading the same name replaces the entry; old holders keep theirs.
  auto replacement = store.load_bytes(
      make_artifact(netapp::figure1_source(), "fig1.hic",
                    sim::OrgKind::EventDriven),
      &error);
  ASSERT_NE(replacement, nullptr) << error.str();
  EXPECT_EQ(store.size(), 2u);
  EXPECT_NE(store.get("fig1.hic"), fig1);
  EXPECT_EQ(store.get("fig1.hic")->organization(),
            sim::OrgKind::EventDriven);
  EXPECT_EQ(fig1->organization(), sim::OrgKind::Arbitrated);  // still alive
}

TEST(ProgramStore, LoadBytesRejectionLeavesStoreEmpty) {
  ProgramStore store;
  ArtifactError error;
  EXPECT_EQ(store.load_bytes("not a hicbin", &error), nullptr);
  EXPECT_EQ(error.code, "rt-bad-magic");
  EXPECT_EQ(store.size(), 0u);
}

TEST(ProgramStore, LoadFileRoundTripAndIoError) {
  const std::string path =
      ::testing::TempDir() + "store_test_fig1.hicbin";
  {
    std::ofstream out(path, std::ios::binary);
    out << make_artifact(netapp::figure1_source(), "fig1.hic");
  }
  ProgramStore store;
  ArtifactError error;
  auto program = store.load_file(path, &error);
  ASSERT_NE(program, nullptr) << error.str();
  EXPECT_EQ(program->name(), "fig1.hic");
  std::remove(path.c_str());

  EXPECT_EQ(store.load_file(path + ".missing", &error), nullptr);
  EXPECT_EQ(error.code, "rt-io-error");
}

TEST(ProgramStore, DescribeSummarizesTheProgram) {
  ProgramStore store;
  ArtifactError error;
  auto program = store.load_bytes(
      make_artifact(netapp::figure1_source(), "fig1.hic"), &error);
  ASSERT_NE(program, nullptr) << error.str();
  std::string text = program->describe();
  EXPECT_NE(text.find("fig1.hic"), std::string::npos);
  EXPECT_NE(text.find("arbitrated"), std::string::npos);
}

TEST(ProgramStore, SimulatorsFromOneProgramAreIndependent) {
  ProgramStore store;
  ArtifactError error;
  auto program = store.load_bytes(
      make_artifact(netapp::figure1_source(), "fig1.hic"), &error);
  ASSERT_NE(program, nullptr) << error.str();
  auto a = program->make_simulator();
  auto b = program->make_simulator();
  // Stepping one must not advance the other.
  a->externs().register_fn("f", [](const auto&) { return 1u; });
  a->externs().register_fn("g", [](const auto& args) { return args.at(0); });
  a->externs().register_fn("h", [](const auto& args) { return args.at(0); });
  for (int i = 0; i < 10; ++i) a->step();
  EXPECT_EQ(a->cycle(), 10u);
  EXPECT_EQ(b->cycle(), 0u);
}

// ---- BufferPool / BufferHandle. ------------------------------------------

TEST(BufferPool, HandleLifecycleAndRefcounts) {
  BufferPool pool;
  BufferHandle h = pool.allocate(4);
  ASSERT_TRUE(h);
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h.use_count(), 1);
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_EQ(h[i], 0u);

  h[0] = 42;
  BufferHandle copy = h;
  EXPECT_EQ(h.use_count(), 2);
  EXPECT_EQ(copy[0], 42u);
  EXPECT_EQ(copy.data(), h.data());  // same block, not a deep copy

  BufferHandle moved = std::move(copy);
  EXPECT_FALSE(copy);  // NOLINT(bugprone-use-after-move): asserting state
  EXPECT_EQ(h.use_count(), 2);
  moved.reset();
  EXPECT_EQ(h.use_count(), 1);

  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.allocated, 1u);
  EXPECT_EQ(stats.live, 1u);
}

TEST(BufferPool, BlocksRecycleByCapacity) {
  BufferPool pool;
  const std::uint64_t* first_block;
  {
    BufferHandle h = pool.allocate(8);
    h[7] = 99;
    first_block = h.data();
  }  // last handle gone -> block back on the free list
  EXPECT_EQ(pool.stats().live, 0u);

  BufferHandle again = pool.allocate(8);
  EXPECT_EQ(again.data(), first_block);  // recycled, not reallocated
  EXPECT_EQ(again[7], 0u);               // and zeroed for the new user
  EXPECT_EQ(pool.stats().allocated, 1u);
  EXPECT_EQ(pool.stats().reused, 1u);

  // A bigger request cannot reuse the 8-word block.
  BufferHandle bigger = pool.allocate(16);
  EXPECT_EQ(bigger.size(), 16u);
  EXPECT_EQ(pool.stats().allocated, 2u);
}

TEST(BufferPool, EmptyHandleIsInert) {
  BufferHandle empty;
  EXPECT_FALSE(empty);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.use_count(), 0);
  BufferHandle copy = empty;
  EXPECT_FALSE(copy);
  empty.reset();  // no-op, no crash
}

TEST(BufferPool, ConcurrentAllocateReleaseIsSafe) {
  BufferPool pool;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 500; ++i) {
        BufferHandle h = pool.allocate(1 + (i % 7));
        h[0] = static_cast<std::uint64_t>(i);
        BufferHandle copy = h;
        EXPECT_EQ(copy[0], static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_GT(pool.stats().reused, 0u);
}

}  // namespace
}  // namespace hicsync::rt
