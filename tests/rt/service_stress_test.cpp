// Concurrency stress for the sharded service. Two properties:
//
//  1. Completion integrity: across many sessions hammering a multi-shard
//     pool, no completion is lost or duplicated — every submitted command
//     completes exactly once, with per-session gap-free sequence numbers.
//     (Run under TSan via the HIC_SANITIZE=thread matrix entry.)
//
//  2. The Acceptance differential: 1000 sessions across an 8-shard pool,
//     each with its own inputs, and every session's results are identical
//     to a fresh single-instance simulation of those inputs.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "rt/service.h"
#include "rt/workload.h"

namespace hicsync::rt {
namespace {

std::shared_ptr<const LoadedProgram> load_fig1(sim::OrgKind kind) {
  core::CompileOptions options;
  options.organization = kind;
  options.source_name = "fig1.hic";
  const std::string source = netapp::figure1_source();
  auto compiled = core::Compiler(options).compile(source);
  EXPECT_TRUE(compiled->ok()) << compiled->diags().str();
  Artifact artifact;
  ArtifactError error;
  EXPECT_TRUE(
      parse_artifact(emit_artifact(*compiled, source), &artifact, &error))
      << error.str();
  auto program = load_program(artifact, &error);
  EXPECT_NE(program, nullptr) << error.str();
  return program;
}

TEST(ServiceStress, NoLostOrDuplicatedCompletions) {
  constexpr int kSessions = 64;
  constexpr int kShards = 4;

  ServiceOptions options;
  options.shards = kShards;
  Service service(load_fig1(sim::OrgKind::Arbitrated), options);

  // Every completion lands here, from whichever worker thread ran it.
  std::mutex mu;
  std::map<std::uint64_t, std::multiset<std::uint64_t>> delivered;
  auto record = [&](const CommandResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    delivered[r.session].insert(r.sequence);
  };

  // Per session: open(0) produce(1) produce(2) run(3) consume(4) close(5).
  std::vector<std::future<CommandResult>> futures;
  std::vector<std::uint64_t> sessions;
  for (int i = 0; i < kSessions; ++i) {
    std::uint64_t session = service.open_session();
    sessions.push_back(session);
    for (int p = 0; p < 2; ++p) {
      BufferHandle buf = service.buffers().allocate(2);
      buf[0] = static_cast<std::uint64_t>(i);
      buf[1] = static_cast<std::uint64_t>(p);
      futures.push_back(service.produce(session, std::move(buf), record));
    }
    futures.push_back(service.run(session, 0, record));
    futures.push_back(service.consume(session, {}, record));
    futures.push_back(service.close_session(session, record));
  }
  service.drain();

  // Every future completed ok (drain already proves none hang).
  for (auto& f : futures) {
    CommandResult r = f.get();
    EXPECT_TRUE(r.ok) << r.error;
  }

  // Exactly one completion per (session, sequence), sequences gap-free.
  // open_session carries no callback, so sequence 0 is accounted by the
  // command count instead: 5 recorded completions per session, 1..5.
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kSessions));
  for (std::uint64_t session : sessions) {
    const auto& seqs = delivered[session];
    EXPECT_EQ(seqs.size(), 5u) << "session " << session;
    std::multiset<std::uint64_t> expect = {1, 2, 3, 4, 5};
    EXPECT_EQ(seqs, expect) << "session " << session;
  }

  Service::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kSessions * 6));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.sessions_opened, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(stats.sessions_closed, static_cast<std::uint64_t>(kSessions));
}

TEST(ServiceStress, InterleavedSubmittersAcrossShards) {
  // Several client threads submitting concurrently against one pool; the
  // service must serialize per session and never cross wires.
  ServiceOptions options;
  options.shards = 4;
  Service service(load_fig1(sim::OrgKind::EventDriven), options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 8;
  std::vector<std::thread> clients;
  std::mutex mu;
  std::vector<std::string> failures;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::uint64_t session = service.open_session();
        BufferHandle buf = service.buffers().allocate(1);
        buf[0] = static_cast<std::uint64_t>(t * 1000 + i);
        service.produce(session, std::move(buf));
        CommandResult run = service.run(session).get();
        CommandResult got = service.consume(session, {"t2.y1"}).get();
        service.close_session(session);
        if (!run.ok || !got.ok) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back(run.ok ? got.error : run.error);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  service.drain();
  EXPECT_TRUE(failures.empty()) << failures.front();
  Service::Stats stats = service.stats();
  EXPECT_EQ(stats.runs,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ServiceStress, Acceptance1000SessionsOver8ShardsMatchSingleInstance) {
  constexpr int kSessions = 1000;
  constexpr int kShards = 8;
  constexpr int kDistinctInputs = 16;  // sessions share a few input classes
  constexpr int kPasses = 1;

  auto program = load_fig1(sim::OrgKind::Arbitrated);
  ServiceOptions options;
  options.shards = kShards;
  options.default_passes = kPasses;
  Service service(program, options);

  struct Pending {
    std::uint64_t input = 0;
    std::future<CommandResult> result;
  };
  std::vector<Pending> pending;
  pending.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    std::uint64_t input = static_cast<std::uint64_t>(i % kDistinctInputs);
    std::uint64_t session = service.open_session();
    BufferHandle buf = service.buffers().allocate(1);
    buf[0] = input;
    service.produce(session, std::move(buf));
    service.run(session);
    pending.push_back({input, service.consume(session, {})});
  }
  service.drain();

  // Single-instance baselines, one per distinct input, on a fresh
  // unsharded simulator through the same workload path.
  std::map<std::uint64_t, WorkloadResult> baselines;
  auto baseline_sim = program->make_simulator();
  for (int k = 0; k < kDistinctInputs; ++k) {
    std::uint64_t input = static_cast<std::uint64_t>(k);
    std::uint64_t seed = fold_seed(kWorkloadSeedInit, &input, 1);
    baselines[input] =
        run_workload(*baseline_sim, program->program(), program->sema(),
                     kPasses, options.max_cycles, seed);
    ASSERT_TRUE(baselines[input].converged);
  }

  int mismatches = 0;
  for (auto& p : pending) {
    CommandResult r = p.result.get();
    ASSERT_TRUE(r.ok) << r.error;
    const WorkloadResult& want = baselines[p.input];
    if (r.registers != want.registers) ++mismatches;
    EXPECT_EQ(r.registers, want.registers)
        << "session " << r.session << " input " << p.input;
    if (mismatches > 3) break;  // enough evidence; keep the log readable
  }
  EXPECT_EQ(mismatches, 0);

  Service::Stats stats = service.stats();
  EXPECT_EQ(stats.runs, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(stats.failed, 0u);
  ASSERT_EQ(stats.shards.size(), static_cast<std::size_t>(kShards));
  for (const auto& s : stats.shards) {
    EXPECT_GT(s.commands, 0u) << "shard " << s.shard << " never ran";
  }
}

}  // namespace
}  // namespace hicsync::rt
