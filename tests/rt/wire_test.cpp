// Wire protocol tests: handle_request_line() is exercised directly (no
// socket — the in-process driver path), then the full RemoteServer /
// RemoteClient loopback over a real AF_UNIX socket, including large 64-bit
// values that would be corrupted by double-precision JSON numbers.

#include "rt/wire.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "support/json.h"
#include "support/strings.h"

namespace hicsync::rt {
namespace {

std::shared_ptr<const LoadedProgram> load_fig1() {
  core::CompileOptions options;
  options.source_name = "fig1.hic";
  const std::string source = netapp::figure1_source();
  auto compiled = core::Compiler(options).compile(source);
  EXPECT_TRUE(compiled->ok()) << compiled->diags().str();
  Artifact artifact;
  ArtifactError error;
  EXPECT_TRUE(
      parse_artifact(emit_artifact(*compiled, source), &artifact, &error))
      << error.str();
  auto program = load_program(artifact, &error);
  EXPECT_NE(program, nullptr) << error.str();
  return program;
}

support::JsonValue parse(const std::string& line) {
  support::JsonValue v;
  std::string error;
  EXPECT_TRUE(support::parse_json(line, &v, &error))
      << error << " in: " << line;
  return v;
}

bool ok_of(const support::JsonValue& v) {
  const support::JsonValue* ok = v.find("ok");
  return ok != nullptr && ok->is_bool() && ok->bool_value;
}

std::string error_of(const support::JsonValue& v) {
  const support::JsonValue* e = v.find("error");
  return e != nullptr && e->is_string() ? e->string_value : "";
}

class WireProtocol : public ::testing::Test {
 protected:
  WireProtocol() : service_(load_fig1(), make_options()) {}

  static ServiceOptions make_options() {
    ServiceOptions o;
    o.shards = 2;
    return o;
  }

  std::string request(const std::string& line) {
    return handle_request_line(service_, line);
  }

  Service service_;
};

TEST_F(WireProtocol, PingDescribeStats) {
  EXPECT_TRUE(ok_of(parse(request(R"({"op":"ping"})"))));

  support::JsonValue describe = parse(request(R"({"op":"describe"})"));
  EXPECT_TRUE(ok_of(describe));
  EXPECT_EQ(describe.find("program")->string_value, "fig1.hic");
  EXPECT_EQ(describe.find("shards")->number_value, 2);

  support::JsonValue stats = parse(request(R"({"op":"stats"})"));
  EXPECT_TRUE(ok_of(stats));
  ASSERT_NE(stats.find("stats"), nullptr);
  EXPECT_TRUE(stats.find("stats")->is_object());
}

TEST_F(WireProtocol, FullSessionConversation) {
  support::JsonValue open = parse(request(R"({"op":"open"})"));
  ASSERT_TRUE(ok_of(open));
  std::string session =
      support::format("%.0f", open.find("session")->number_value);

  support::JsonValue produce = parse(request(
      R"({"op":"produce","session":)" + session + R"(,"words":["7","9"]})"));
  EXPECT_TRUE(ok_of(produce)) << error_of(produce);

  support::JsonValue run = parse(request(
      R"({"op":"run","session":)" + session + R"(,"passes":2})"));
  ASSERT_TRUE(ok_of(run)) << error_of(run);
  EXPECT_TRUE(run.find("converged")->bool_value);
  EXPECT_GT(run.find("cycles")->number_value, 0);
  ASSERT_NE(run.find("registers"), nullptr);
  EXPECT_FALSE(run.find("registers")->elements.empty());

  support::JsonValue consume = parse(request(
      R"({"op":"consume","session":)" + session +
      R"(,"names":["t2.y1"]})"));
  ASSERT_TRUE(ok_of(consume)) << error_of(consume);
  const auto& regs = consume.find("registers")->elements;
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0].find("name")->string_value, "t2.y1");
  // Values travel as decimal strings, not JSON numbers.
  EXPECT_TRUE(regs[0].find("value")->is_string());

  support::JsonValue close = parse(request(
      R"({"op":"close","session":)" + session + "}"));
  EXPECT_TRUE(ok_of(close)) << error_of(close);
}

TEST_F(WireProtocol, TelemetryOpReportsDisabledWithoutTelemetry) {
  support::JsonValue v = parse(request(R"({"op":"telemetry"})"));
  EXPECT_TRUE(ok_of(v));
  const support::JsonValue* telemetry = v.find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_FALSE(telemetry->find("enabled")->bool_value);
}

TEST(WireTelemetry, TelemetryOpAndTagTravelTheProtocol) {
  ServiceOptions options;
  options.shards = 2;
  options.telemetry.enabled = true;
  options.telemetry.slow_threshold_us = 600ULL * 1000 * 1000;
  Service service(load_fig1(), options);
  auto request = [&](const std::string& line) {
    return handle_request_line(service, line);
  };

  support::JsonValue open = parse(request(R"({"op":"open"})"));
  ASSERT_TRUE(ok_of(open));
  std::string session =
      support::format("%.0f", open.find("session")->number_value);

  // The trace-context tag rides the request and is echoed on the result.
  support::JsonValue run = parse(request(
      R"({"op":"run","session":)" + session + R"(,"tag":"wire-req-1"})"));
  ASSERT_TRUE(ok_of(run)) << error_of(run);
  ASSERT_NE(run.find("tag"), nullptr);
  EXPECT_EQ(run.find("tag")->string_value, "wire-req-1");

  // A non-string tag is a malformed request, not a silent drop.
  support::JsonValue bad = parse(request(
      R"({"op":"run","session":)" + session + R"(,"tag":7})"));
  EXPECT_FALSE(ok_of(bad));
  EXPECT_EQ(error_of(bad).rfind("rt-bad-request:", 0), 0u);

  service.drain();
  support::JsonValue v = parse(request(R"({"op":"telemetry"})"));
  ASSERT_TRUE(ok_of(v));
  const support::JsonValue* telemetry = v.find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_TRUE(telemetry->find("enabled")->bool_value);
  const support::JsonValue* shards = telemetry->find("shards");
  ASSERT_NE(shards, nullptr);
  double recorded = 0;
  for (const support::JsonValue& shard : shards->elements) {
    recorded += shard.find("spans_recorded")->number_value;
  }
  EXPECT_EQ(recorded, 2);  // open + run
  // The span carries the tag: visible in the Chrome export.
  EXPECT_NE(service.telemetry_chrome_json().find("\"tag\":\"wire-req-1\""),
            std::string::npos);
}

TEST_F(WireProtocol, BadRequestsGetStableErrors) {
  auto expect_error = [&](const std::string& line,
                          const std::string& prefix) {
    support::JsonValue v = parse(request(line));
    EXPECT_FALSE(ok_of(v)) << line;
    EXPECT_EQ(error_of(v).rfind(prefix, 0), 0u)
        << line << " -> " << error_of(v);
  };
  expect_error("not json at all", "rt-bad-request:");
  expect_error("[1,2,3]", "rt-bad-request:");
  expect_error(R"({"no_op":1})", "rt-bad-request:");
  expect_error(R"({"op":"warp"})", "rt-bad-request:");
  expect_error(R"({"op":"run"})", "rt-bad-request:");  // missing session
  expect_error(R"({"op":"produce","session":0})", "rt-bad-request:");
  expect_error(R"({"op":"produce","session":0,"words":[true]})",
               "rt-bad-request:");
  // Well-formed request, service-level failure: stable rt-* code.
  expect_error(R"({"op":"run","session":12345})", "rt-no-session:");
}

#if defined(__unix__) || defined(__APPLE__)

TEST(RemoteWire, ClientServerLoopback) {
  auto program = load_fig1();
  ServiceOptions options;
  options.shards = 2;
  options.default_passes = 2;
  Service service(program, options);

  const std::string path = ::testing::TempDir() + "wire_test.sock";
  std::remove(path.c_str());
  RemoteServer server(service, path);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_TRUE(server.running());

  RemoteClient client;
  ASSERT_TRUE(client.connect(path, &error)) << error;
  EXPECT_TRUE(client.ping(&error)) << error;

  std::uint64_t session = 0;
  ASSERT_TRUE(client.open_session(&session, &error)) << error;
  // A value above 2^53: doubles cannot represent it, decimal strings can.
  std::vector<std::uint64_t> inputs = {(1ull << 60) + 3, 12345678901234567ull};
  ASSERT_TRUE(client.produce(session, inputs, &error)) << error;

  RemoteClient::RunInfo info;
  ASSERT_TRUE(client.run(session, 2, &info, &error)) << error;
  EXPECT_TRUE(info.converged);
  EXPECT_GT(info.cycles, 0u);

  std::vector<std::pair<std::string, std::uint64_t>> registers;
  ASSERT_TRUE(client.consume(session, {}, &registers, &error)) << error;
  EXPECT_FALSE(registers.empty());

  // Differential across the wire: the socket client must read exactly what
  // an in-process client sees for the same session.
  CommandResult direct = service.consume(session, {}).get();
  ASSERT_TRUE(direct.ok) << direct.error;
  EXPECT_EQ(registers, direct.registers);

  std::string json;
  ASSERT_TRUE(client.stats(&json, &error)) << error;
  EXPECT_NE(json.find("\"submitted\""), std::string::npos);
  // This server runs without telemetry; the op still answers.
  std::string telemetry_json;
  ASSERT_TRUE(client.telemetry(&telemetry_json, &error)) << error;
  support::JsonValue telemetry = parse(telemetry_json);
  ASSERT_NE(telemetry.find("enabled"), nullptr);
  EXPECT_FALSE(telemetry.find("enabled")->bool_value);
  std::string describe;
  ASSERT_TRUE(client.describe(&describe, &error)) << error;
  EXPECT_NE(describe.find("fig1.hic"), std::string::npos);

  ASSERT_TRUE(client.close_session(session, &error)) << error;
  client.close();
  EXPECT_FALSE(client.connected());

  // A second client on the same server (fresh connection).
  RemoteClient second;
  ASSERT_TRUE(second.connect(path, &error)) << error;
  EXPECT_TRUE(second.ping(&error)) << error;
  second.close();

  EXPECT_GE(server.connections(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
  service.shutdown();
}

TEST(RemoteWire, ClientErrorsSurfaceServiceCodes) {
  Service service(load_fig1(), {});
  const std::string path = ::testing::TempDir() + "wire_err_test.sock";
  std::remove(path.c_str());
  RemoteServer server(service, path);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  RemoteClient client;
  ASSERT_TRUE(client.connect(path, &error)) << error;
  RemoteClient::RunInfo info;
  EXPECT_FALSE(client.run(999, 0, &info, &error));
  EXPECT_EQ(error.rfind("rt-no-session:", 0), 0u) << error;

  std::uint64_t session = 0;
  ASSERT_TRUE(client.open_session(&session, &error)) << error;
  std::vector<std::pair<std::string, std::uint64_t>> registers;
  EXPECT_FALSE(client.consume(session, {}, &registers, &error));
  EXPECT_EQ(error.rfind("rt-no-run:", 0), 0u) << error;

  server.stop();
  service.shutdown();
}

TEST(RemoteWire, ConnectToMissingSocketFails) {
  RemoteClient client;
  std::string error;
  EXPECT_FALSE(client.connect("/nonexistent/dir/nope.sock", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(client.connected());
}

#endif  // unix sockets

}  // namespace
}  // namespace hicsync::rt
