// Request-telemetry tests: ShardTelemetry span capture (deterministic,
// fabricated timestamps), then the full Service surface — per-stage
// histograms at 64 sessions × 4 shards, Chrome-trace span counts matching
// the completed-command count, bounded-ring eviction, slow-request JSONL
// promotion with session history and a shard-queue snapshot, trace-context
// tags, and the disabled-telemetry inertness contract.

#include "rt/telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "rt/service.h"
#include "support/json.h"

namespace hicsync::rt {
namespace {

using support::JsonValue;

std::shared_ptr<const LoadedProgram> load_fig1() {
  core::CompileOptions options;
  options.source_name = "fig1.hic";
  const std::string source = netapp::figure1_source();
  auto compiled = core::Compiler(options).compile(source);
  EXPECT_TRUE(compiled->ok()) << compiled->diags().str();
  Artifact artifact;
  ArtifactError error;
  EXPECT_TRUE(
      parse_artifact(emit_artifact(*compiled, source), &artifact, &error))
      << error.str();
  auto program = load_program(artifact, &error);
  EXPECT_NE(program, nullptr) << error.str();
  return program;
}

JsonValue parse(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(support::parse_json(text, &v, &error))
      << error << " in: " << text;
  return v;
}

std::uint64_t num(const JsonValue& v, const char* key) {
  const JsonValue* m = v.find(key);
  EXPECT_NE(m, nullptr) << "missing key " << key;
  if (m == nullptr || !m->is_number()) return 0;
  return static_cast<std::uint64_t>(m->number_value);
}

// ---------------------------------------------------------------------------
// Span / SessionHistory / ShardTelemetry unit tests (no service, no
// threads): fabricated steady-clock instants make every stage value exact.

Span make_span(std::uint64_t session, std::uint64_t sequence,
               TelemetryClock::time_point epoch, std::uint64_t start_us,
               std::uint64_t submit_us, std::uint64_t queue_us,
               std::uint64_t execute_us, std::uint64_t complete_us) {
  Span s;
  s.session = session;
  s.sequence = sequence;
  s.shard = 0;
  s.kind = "run";
  s.submit = epoch + std::chrono::microseconds(start_us);
  s.enqueue = s.submit + std::chrono::microseconds(submit_us);
  s.dequeue = s.enqueue + std::chrono::microseconds(queue_us);
  s.exec_end = s.dequeue + std::chrono::microseconds(execute_us);
  s.complete = s.exec_end + std::chrono::microseconds(complete_us);
  return s;
}

TEST(SpanTest, StageDurationsPartitionTheTotal) {
  const TelemetryClock::time_point epoch{};
  Span s = make_span(1, 0, epoch, 100, 3, 40, 500, 7);
  EXPECT_EQ(s.submit_us(), 3u);
  EXPECT_EQ(s.queue_us(), 40u);
  EXPECT_EQ(s.execute_us(), 500u);
  EXPECT_EQ(s.complete_us(), 7u);
  EXPECT_EQ(s.total_us(), 3u + 40u + 500u + 7u);

  // A clock edge observed out of order clamps to zero, never underflows.
  Span backwards = s;
  backwards.dequeue = backwards.enqueue - std::chrono::microseconds(5);
  EXPECT_EQ(backwards.queue_us(), 0u);
}

TEST(SessionHistoryTest, CircularPushKeepsNewestIteratesOldestFirst) {
  SessionHistory h;
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    SpanBrief b;
    b.sequence = seq;
    h.push(std::move(b), 3);
  }
  std::vector<std::uint64_t> seen;
  h.for_each([&](const SpanBrief& b) { seen.push_back(b.sequence); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{2, 3, 4}));
}

TEST(ShardTelemetryTest, RecordFillsHistogramsAndPromotesSlowSpans) {
  TelemetryOptions options;
  options.enabled = true;
  options.ring_capacity = 8;
  options.slow_threshold_us = 1000;
  options.history_depth = 4;
  const TelemetryClock::time_point epoch{};
  ShardTelemetry telemetry(0, options, epoch);

  // Two fast spans for session 7, then a slow one: the forensics record
  // must carry the fast spans as history (oldest first) and the queue
  // snapshot it was handed.
  std::string slow_json;
  EXPECT_FALSE(telemetry.record(make_span(7, 0, epoch, 0, 1, 2, 100, 1),
                                {}, &slow_json));
  EXPECT_FALSE(telemetry.record(make_span(7, 1, epoch, 200, 1, 2, 300, 1),
                                {}, &slow_json));
  std::vector<QueuedCommand> queue = {{9, "run"}, {11, "produce"}};
  Span slow = make_span(7, 2, epoch, 600, 2, 900, 2000, 3);
  slow.queue_depth = 2;
  slow.cycles = 4096;
  slow.tag = "req-42";
  EXPECT_TRUE(telemetry.record(slow, queue, &slow_json));

  EXPECT_EQ(telemetry.spans_recorded(), 3u);
  EXPECT_EQ(telemetry.spans_dropped(), 0u);
  EXPECT_EQ(telemetry.slow_count(), 1u);
  EXPECT_EQ(telemetry.busy_us(), 100u + 300u + 2000u);

  const trace::Histogram* total =
      telemetry.registry().find_histogram("telemetry.total_us");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), 3u);
  EXPECT_EQ(total->max(), 2905u);

  JsonValue record = parse(slow_json);
  EXPECT_EQ(num(record, "session"), 7u);
  EXPECT_EQ(num(record, "sequence"), 2u);
  EXPECT_EQ(record.find("kind")->string_value, "run");
  EXPECT_EQ(record.find("tag")->string_value, "req-42");
  EXPECT_EQ(num(record, "total_us"), 2905u);
  EXPECT_EQ(num(record, "cycles"), 4096u);
  EXPECT_EQ(num(record, "queue_depth_at_enqueue"), 2u);
  const JsonValue* stages = record.find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(num(*stages, "submit_us"), 2u);
  EXPECT_EQ(num(*stages, "queue_us"), 900u);
  EXPECT_EQ(num(*stages, "execute_us"), 2000u);
  EXPECT_EQ(num(*stages, "complete_us"), 3u);
  const JsonValue* snapshot = record.find("queue_snapshot");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(num(*snapshot, "depth"), 2u);
  ASSERT_EQ(snapshot->find("pending")->elements.size(), 2u);
  EXPECT_EQ(num(snapshot->find("pending")->elements[1], "session"), 11u);
  const JsonValue* history = record.find("history");
  ASSERT_NE(history, nullptr);
  ASSERT_EQ(history->elements.size(), 2u);
  EXPECT_EQ(num(history->elements[0], "sequence"), 0u);
  EXPECT_EQ(num(history->elements[1], "sequence"), 1u);

  // Closing the session forgets its history: the next slow span for the
  // same id reports an empty trail.
  telemetry.session_closed(7);
  std::string after_close;
  EXPECT_TRUE(telemetry.record(make_span(7, 3, epoch, 4000, 1, 1, 5000, 1),
                               {}, &after_close));
  EXPECT_TRUE(parse(after_close).find("history")->elements.empty());
}

TEST(ShardTelemetryTest, RingEvictsOldestFirstAndCountsDrops) {
  TelemetryOptions options;
  options.enabled = true;
  options.ring_capacity = 4;
  const TelemetryClock::time_point epoch{};
  ShardTelemetry telemetry(2, options, epoch);
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    telemetry.record(make_span(1, seq, epoch, seq * 100, 1, 1, 10, 1), {},
                     nullptr);
  }
  EXPECT_EQ(telemetry.spans_recorded(), 10u);
  EXPECT_EQ(telemetry.spans_dropped(), 6u);
  std::vector<Span> spans = telemetry.spans();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].sequence, 6u + i);  // oldest first, newest retained
  }

  std::vector<std::string> events;
  telemetry.append_chrome_events(&events);
  EXPECT_EQ(events.size(), 4u);
  JsonValue trace = parse(compose_chrome_trace(3, events));
  const JsonValue* list = trace.find("traceEvents");
  ASSERT_NE(list, nullptr);
  // 1 process + 3 thread metadata events, then the 4 spans on track tid=3.
  ASSERT_EQ(list->elements.size(), 8u);
  EXPECT_EQ(list->elements[0].find("ph")->string_value, "M");
  EXPECT_EQ(num(list->elements.back(), "tid"), 3u);
  EXPECT_EQ(list->elements.back().find("ph")->string_value, "X");
}

// ---------------------------------------------------------------------------
// Service-level tests: real traffic through the sharded pool.

ServiceOptions telemetry_options(int shards) {
  ServiceOptions o;
  o.shards = shards;
  o.telemetry.enabled = true;
  // High enough that scheduler hiccups on a loaded CI box cannot promote
  // anything; the slow-path tests drop it to zero explicitly.
  o.telemetry.slow_threshold_us = 600ULL * 1000 * 1000;
  return o;
}

std::uint64_t count_x_events(const std::string& chrome_json,
                             std::uint64_t* tracks = nullptr) {
  JsonValue trace;
  std::string error;
  EXPECT_TRUE(support::parse_json(chrome_json, &trace, &error)) << error;
  const JsonValue* events = trace.find("traceEvents");
  EXPECT_NE(events, nullptr);
  std::uint64_t spans = 0;
  std::uint64_t threads = 0;
  if (events != nullptr) {
    for (const JsonValue& e : events->elements) {
      const JsonValue* ph = e.find("ph");
      if (ph == nullptr || !ph->is_string()) continue;
      if (ph->string_value == "X") ++spans;
      if (ph->string_value == "M" &&
          e.find("name")->string_value == "thread_name") {
        ++threads;
      }
    }
  }
  if (tracks != nullptr) *tracks = threads;
  return spans;
}

TEST(ServiceTelemetry, SixtyFourSessionsAcrossFourShards) {
  ServiceOptions options = telemetry_options(4);
  // Every span must survive into the Chrome trace for the count check:
  // 64 sessions × 4 commands / 4 shards = 64 spans per shard, well under
  // this ring.
  options.telemetry.ring_capacity = 512;
  Service service(load_fig1(), options);

  for (int i = 0; i < 64; ++i) {
    std::uint64_t session = service.open_session();
    BufferHandle buf = service.buffers().allocate(1);
    buf[0] = static_cast<std::uint64_t>(i);
    service.produce(session, std::move(buf));
    service.run(session);
    service.consume(session, {});
  }
  service.drain();

  Service::Stats stats = service.stats();
  EXPECT_EQ(stats.completed, 256u);
  EXPECT_EQ(stats.failed, 0u);

  // Per-stage histograms: every shard saw traffic, every stage counted
  // every span, and the percentile ladder is ordered.
  JsonValue telemetry = parse(service.telemetry_json());
  EXPECT_TRUE(telemetry.find("enabled")->bool_value);
  EXPECT_EQ(num(telemetry, "slow_log_entries"), 0u);
  const JsonValue* shards = telemetry.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->elements.size(), 4u);
  std::uint64_t recorded = 0;
  std::uint64_t run_count = 0;
  for (const JsonValue& shard : shards->elements) {
    recorded += num(shard, "spans_recorded");
    EXPECT_EQ(num(shard, "spans_dropped"), 0u);
    EXPECT_EQ(num(shard, "slow_count"), 0u);
    const JsonValue* stages = shard.find("stages");
    ASSERT_NE(stages, nullptr);
    for (const char* stage :
         {"submit_us", "queue_us", "execute_us", "complete_us", "total_us"}) {
      const JsonValue* s = stages->find(stage);
      ASSERT_NE(s, nullptr) << stage;
      EXPECT_EQ(num(*s, "count"), num(shard, "spans_recorded")) << stage;
      EXPECT_LE(num(*s, "p50"), num(*s, "p95")) << stage;
      EXPECT_LE(num(*s, "p95"), num(*s, "p99")) << stage;
      EXPECT_LE(num(*s, "p99"), num(*s, "max")) << stage;
    }
    EXPECT_GT(num(*stages->find("execute_us"), "p99"), 0u);
    run_count += num(*shard.find("run_cycles"), "count");
  }
  EXPECT_EQ(recorded, stats.completed);
  EXPECT_EQ(run_count, stats.runs);

  // Chrome trace: one track per shard, one X event per completed command.
  std::uint64_t tracks = 0;
  EXPECT_EQ(count_x_events(service.telemetry_chrome_json(), &tracks),
            stats.completed);
  EXPECT_EQ(tracks, 4u);

  // The human rendering carries the same percentile ladder.
  const std::string text = service.telemetry_text();
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_NE(text.find("execute_us"), std::string::npos);
}

TEST(ServiceTelemetry, SlowThresholdZeroPromotesEverySpanToJsonl) {
  const std::string log_path =
      ::testing::TempDir() + "/rt_slow_test.jsonl";
  std::remove(log_path.c_str());

  ServiceOptions options = telemetry_options(1);
  options.telemetry.slow_threshold_us = 0;  // every span is "slow"
  options.telemetry.slow_log_path = log_path;
  options.telemetry.history_depth = 8;
  std::uint64_t completed = 0;
  {
    Service service(load_fig1(), options);
    std::uint64_t session = service.open_session();
    BufferHandle buf = service.buffers().allocate(1);
    buf[0] = 5;
    service.produce(session, std::move(buf), {}, "tag-produce");
    service.run(session, 0, {}, "tag-run");
    service.consume(session, {});
    service.close_session(session);
    service.drain();
    completed = service.stats().completed;
    EXPECT_EQ(service.slow_log_entries(), completed);
    JsonValue telemetry = parse(service.telemetry_json());
    EXPECT_EQ(telemetry.find("slow_log_path")->string_value, log_path);
    EXPECT_EQ(num(telemetry.find("shards")->elements[0], "slow_count"),
              completed);
    EXPECT_FALSE(telemetry.find("shards")
                     ->elements[0]
                     .find("slow_recent")
                     ->elements.empty());
  }

  // One well-formed JSON object per line, one line per promoted span.
  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::vector<JsonValue> records;
  std::string error;
  ASSERT_TRUE(support::parse_jsonl(buffer.str(), &records, &error)) << error;
  ASSERT_EQ(records.size(), completed);

  // open, produce, run, consume, close — in session-FIFO order.
  EXPECT_EQ(records[0].find("kind")->string_value, "open");
  EXPECT_EQ(records[1].find("kind")->string_value, "produce");
  EXPECT_EQ(records[1].find("tag")->string_value, "tag-produce");
  EXPECT_EQ(records[2].find("kind")->string_value, "run");
  EXPECT_EQ(records[2].find("tag")->string_value, "tag-run");
  EXPECT_GT(num(records[2], "cycles"), 0u);
  EXPECT_EQ(records[4].find("kind")->string_value, "close");

  for (const JsonValue& record : records) {
    EXPECT_TRUE(record.find("ok")->bool_value);
    for (const char* key : {"ts_us", "shard", "session", "sequence",
                            "total_us", "queue_depth_at_enqueue"}) {
      EXPECT_NE(record.find(key), nullptr) << key;
    }
    const JsonValue* stages = record.find("stages");
    ASSERT_NE(stages, nullptr);
    EXPECT_NE(stages->find("queue_us"), nullptr);
    ASSERT_NE(record.find("queue_snapshot"), nullptr);
    EXPECT_NE(record.find("queue_snapshot")->find("depth"), nullptr);
    ASSERT_NE(record.find("history"), nullptr);
  }
  // The run's forensics record shows the session's lead-up, oldest first.
  const auto& history = records[2].find("history")->elements;
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].find("kind")->string_value, "open");
  EXPECT_EQ(history[1].find("kind")->string_value, "produce");
  EXPECT_EQ(history[1].find("tag")->string_value, "tag-produce");

  std::remove(log_path.c_str());
}

TEST(ServiceTelemetry, TagsRideResultsAndChromeTraceArgs) {
  Service service(load_fig1(), telemetry_options(1));
  std::uint64_t session = service.open_session();
  CommandResult run = service.run(session, 0, {}, "trace-me-7").get();
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.tag, "trace-me-7");
  service.drain();
  EXPECT_NE(service.telemetry_chrome_json().find("\"tag\":\"trace-me-7\""),
            std::string::npos);
}

TEST(ServiceTelemetry, DisabledTelemetryIsInert) {
  ServiceOptions options;
  options.shards = 2;
  Service service(load_fig1(), options);
  std::uint64_t session = service.open_session();
  // Tags are still echoed — they are part of the command contract, not
  // the telemetry layer.
  CommandResult run = service.run(session, 0, {}, "still-echoed").get();
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.tag, "still-echoed");
  service.drain();

  EXPECT_FALSE(service.telemetry_enabled());
  JsonValue telemetry = parse(service.telemetry_json());
  EXPECT_FALSE(telemetry.find("enabled")->bool_value);
  EXPECT_EQ(telemetry.find("shards"), nullptr);
  EXPECT_TRUE(service.telemetry_chrome_json().empty());
  EXPECT_EQ(service.slow_log_entries(), 0u);
  EXPECT_NE(service.telemetry_text().find("disabled"), std::string::npos);
}

}  // namespace
}  // namespace hicsync::rt
