// rt::Service command semantics: session lifecycle, sticky produce seeds,
// run/consume caching, futures + completion callbacks, stable rt-* error
// codes, stats accounting and drain/shutdown idempotence — everything a
// client can rely on, on a small pool.

#include "rt/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "rt/workload.h"
#include "support/json.h"

namespace hicsync::rt {
namespace {

std::shared_ptr<const LoadedProgram> load_fig1(
    sim::OrgKind kind = sim::OrgKind::Arbitrated) {
  core::CompileOptions options;
  options.organization = kind;
  options.source_name = "fig1.hic";
  const std::string source = netapp::figure1_source();
  auto compiled = core::Compiler(options).compile(source);
  EXPECT_TRUE(compiled->ok()) << compiled->diags().str();
  ArtifactError error;
  auto program = [&] {
    Artifact a;
    ArtifactError perr;
    EXPECT_TRUE(parse_artifact(emit_artifact(*compiled, source), &a, &perr))
        << perr.str();
    return load_program(a, &error);
  }();
  EXPECT_NE(program, nullptr) << error.str();
  return program;
}

BufferHandle words(Service& service, std::vector<std::uint64_t> values) {
  BufferHandle buf = service.buffers().allocate(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) buf[i] = values[i];
  return buf;
}

TEST(Service, ProduceRunConsumeHappyPath) {
  ServiceOptions options;
  options.shards = 2;
  options.default_passes = 2;
  Service service(load_fig1(), options);
  EXPECT_EQ(service.shards(), 2);

  std::uint64_t session = service.open_session();
  service.produce(session, words(service, {5, 6}));
  CommandResult run = service.run(session).get();
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_TRUE(run.converged);
  EXPECT_GT(run.cycles, 0u);
  EXPECT_GT(run.rounds, 0u);
  EXPECT_EQ(run.session, session);
  EXPECT_FALSE(run.registers.empty());

  // Consume-all echoes the run's register set, plus a value buffer.
  CommandResult all = service.consume(session, {}).get();
  ASSERT_TRUE(all.ok) << all.error;
  EXPECT_EQ(all.registers, run.registers);
  ASSERT_TRUE(all.values);
  ASSERT_EQ(all.values.size(), all.registers.size());
  for (std::size_t i = 0; i < all.registers.size(); ++i) {
    EXPECT_EQ(all.values[i], all.registers[i].second);
  }

  // Named consume returns the subset in request order.
  CommandResult one =
      service.consume(session, {"t2.y1", "t1.xtmp"}).get();
  ASSERT_TRUE(one.ok) << one.error;
  ASSERT_EQ(one.registers.size(), 2u);
  EXPECT_EQ(one.registers[0].first, "t2.y1");
  EXPECT_EQ(one.registers[1].first, "t1.xtmp");
}

TEST(Service, RunMatchesSingleInstanceWorkload) {
  // The determinism contract in miniature: one pooled session vs a fresh
  // simulator fed the same folded seed.
  auto program = load_fig1(sim::OrgKind::EventDriven);
  ServiceOptions options;
  options.shards = 2;
  options.default_passes = 2;
  Service service(program, options);

  std::uint64_t session = service.open_session();
  std::vector<std::uint64_t> inputs = {123, 456, 789};
  service.produce(session, words(service, inputs));
  CommandResult pooled = service.run(session).get();
  ASSERT_TRUE(pooled.ok) << pooled.error;

  std::uint64_t seed =
      fold_seed(kWorkloadSeedInit, inputs.data(), inputs.size());
  auto sim = program->make_simulator();
  WorkloadResult fresh = run_workload(*sim, program->program(),
                                      program->sema(), 2, 200000, seed);
  EXPECT_EQ(fresh.registers, pooled.registers);
  EXPECT_EQ(fresh.cycles, pooled.cycles);
  EXPECT_EQ(fresh.rounds, pooled.rounds);
}

TEST(Service, ProduceIsStickyAcrossRuns) {
  auto program = load_fig1();
  Service service(program, {});
  std::uint64_t session = service.open_session();

  service.produce(session, words(service, {1}));
  CommandResult first = service.run(session).get();
  ASSERT_TRUE(first.ok);

  // A second produce folds on top of the first — the seed (and thus the
  // results) must match folding both payloads in order on a fresh seed.
  service.produce(session, words(service, {2}));
  CommandResult second = service.run(session).get();
  ASSERT_TRUE(second.ok);

  std::uint64_t w1 = 1, w2 = 2;
  std::uint64_t seed = fold_seed(kWorkloadSeedInit, &w1, 1);
  seed = fold_seed(seed, &w2, 1);
  auto sim = program->make_simulator();
  WorkloadResult expect = run_workload(*sim, program->program(),
                                       program->sema(), 1, 200000, seed);
  EXPECT_EQ(expect.registers, second.registers);
  EXPECT_NE(first.registers, second.registers);
}

TEST(Service, SessionsAreIsolated) {
  Service service(load_fig1(), {});
  std::uint64_t a = service.open_session();
  std::uint64_t b = service.open_session();
  service.produce(a, words(service, {1000}));
  service.produce(b, words(service, {2000}));
  CommandResult ra = service.run(a).get();
  CommandResult rb = service.run(b).get();
  ASSERT_TRUE(ra.ok);
  ASSERT_TRUE(rb.ok);
  EXPECT_NE(ra.registers, rb.registers);

  // Same inputs -> same results, regardless of session id.
  std::uint64_t c = service.open_session();
  service.produce(c, words(service, {1000}));
  CommandResult rc = service.run(c).get();
  ASSERT_TRUE(rc.ok);
  EXPECT_EQ(ra.registers, rc.registers);
}

TEST(Service, SessionsShardById) {
  ServiceOptions options;
  options.shards = 3;
  Service service(load_fig1(), options);
  for (int i = 0; i < 9; ++i) {
    std::uint64_t session = service.open_session();
    CommandResult r = service.run(session).get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.shard, static_cast<int>(session % 3));
  }
}

TEST(Service, ErrorCodesAreStable) {
  Service service(load_fig1(), {});

  // Commands against a never-opened session.
  CommandResult r = service.run(404).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.rfind("rt-no-session:", 0), 0u) << r.error;
  r = service.produce(404, words(service, {1})).get();
  EXPECT_EQ(r.error.rfind("rt-no-session:", 0), 0u) << r.error;
  r = service.close_session(404).get();
  EXPECT_EQ(r.error.rfind("rt-no-session:", 0), 0u) << r.error;

  // Consume before any run.
  std::uint64_t session = service.open_session();
  r = service.consume(session, {}).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.rfind("rt-no-run:", 0), 0u) << r.error;

  // Unknown register name after a run.
  ASSERT_TRUE(service.run(session).get().ok);
  r = service.consume(session, {"t9.nope"}).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.rfind("rt-unknown-register:", 0), 0u) << r.error;

  // A closed session is gone.
  ASSERT_TRUE(service.close_session(session).get().ok);
  r = service.run(session).get();
  EXPECT_EQ(r.error.rfind("rt-no-session:", 0), 0u) << r.error;
}

TEST(Service, TimeoutFailsTheRunCommand) {
  ServiceOptions options;
  options.max_cycles = 3;  // far too few to complete a pass
  Service service(load_fig1(), options);
  std::uint64_t session = service.open_session();
  CommandResult r = service.run(session).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.rfind("rt-timeout:", 0), 0u) << r.error;
  EXPECT_FALSE(r.converged);
}

TEST(Service, CompletionCallbacksFireWithTheResult) {
  Service service(load_fig1(), {});
  std::uint64_t session = service.open_session();
  std::atomic<int> called{0};
  CommandResult seen;
  service
      .run(session, 0,
           [&](const CommandResult& r) {
             seen = r;
             called.fetch_add(1);
           })
      .get();
  service.drain();
  EXPECT_EQ(called.load(), 1);
  EXPECT_TRUE(seen.ok) << seen.error;
  EXPECT_EQ(seen.kind, CommandKind::Run);
  EXPECT_EQ(seen.session, session);
}

TEST(Service, SequencesArePerSessionAndGapFree) {
  Service service(load_fig1(), {});
  std::uint64_t a = service.open_session();
  std::uint64_t b = service.open_session();
  // a: open=0 produce=1 run=2; b: open=0 run=1.
  CommandResult pa = service.produce(a, words(service, {1})).get();
  CommandResult rb = service.run(b).get();
  CommandResult ra = service.run(a).get();
  EXPECT_EQ(pa.sequence, 1u);
  EXPECT_EQ(ra.sequence, 2u);
  EXPECT_EQ(rb.sequence, 1u);
}

TEST(Service, StatsCountCommandsAndSessions) {
  ServiceOptions options;
  options.shards = 2;
  Service service(load_fig1(), options);
  std::uint64_t a = service.open_session();
  std::uint64_t b = service.open_session();
  service.produce(a, words(service, {1}));
  service.run(a);
  service.run(b);
  service.consume(a, {});
  service.close_session(b);
  service.drain();

  Service::Stats stats = service.stats();
  // open a, open b, produce, run, run, consume, close = 7 commands.
  EXPECT_EQ(stats.submitted, 7u);
  EXPECT_EQ(stats.completed, 7u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.runs, 2u);
  EXPECT_GT(stats.sim_cycles, 0u);
  ASSERT_EQ(stats.shards.size(), 2u);
  std::uint64_t shard_commands = 0;
  std::uint64_t open_sessions = 0;
  for (const auto& s : stats.shards) {
    shard_commands += s.commands;
    open_sessions += s.sessions;
  }
  EXPECT_EQ(shard_commands, stats.completed);
  EXPECT_EQ(open_sessions, 1u);  // a is still open

  EXPECT_NE(service.stats_text().find("sessions"), std::string::npos);
  EXPECT_NE(service.stats_json().find("\"submitted\""), std::string::npos);
}

TEST(Service, StatsJsonMatchesTheDocumentedSchema) {
  ServiceOptions options;
  options.shards = 2;
  Service service(load_fig1(), options);
  std::uint64_t session = service.open_session();
  service.produce(session, words(service, {3}));
  service.run(session);
  service.consume(session, {});
  service.drain();

  support::JsonValue stats;
  std::string parse_error;
  ASSERT_TRUE(support::parse_json(service.stats_json(), &stats, &parse_error))
      << parse_error;
  ASSERT_TRUE(stats.is_object());
  EXPECT_EQ(stats.find("program")->string_value, "fig1.hic");
  EXPECT_EQ(stats.find("shards")->number_value, 2);
  for (const char* key : {"submitted", "completed", "failed",
                          "sessions_opened", "sessions_closed", "runs",
                          "sim_cycles"}) {
    const support::JsonValue* v = stats.find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_TRUE(v->is_number()) << key;
  }
  EXPECT_EQ(stats.find("completed")->number_value, 4);

  const support::JsonValue* shard_stats = stats.find("shard_stats");
  ASSERT_NE(shard_stats, nullptr);
  ASSERT_EQ(shard_stats->elements.size(), 2u);
  double shard_commands = 0;
  for (const support::JsonValue& shard : shard_stats->elements) {
    for (const char* key : {"shard", "commands", "runs", "failures",
                            "sim_cycles", "max_queue_depth", "sessions"}) {
      ASSERT_NE(shard.find(key), nullptr) << key;
    }
    shard_commands += shard.find("commands")->number_value;
    // Completion-latency percentiles ride every shard entry, ordered.
    const support::JsonValue* latency = shard.find("latency_us");
    ASSERT_NE(latency, nullptr);
    const support::JsonValue* p50 = latency->find("p50");
    const support::JsonValue* p95 = latency->find("p95");
    const support::JsonValue* p99 = latency->find("p99");
    ASSERT_NE(p50, nullptr);
    ASSERT_NE(p95, nullptr);
    ASSERT_NE(p99, nullptr);
    EXPECT_LE(p50->number_value, p95->number_value);
    EXPECT_LE(p95->number_value, p99->number_value);
  }
  EXPECT_EQ(shard_commands, stats.find("completed")->number_value);

  const support::JsonValue* buffers = stats.find("buffers");
  ASSERT_NE(buffers, nullptr);
  for (const char* key : {"allocated", "reused", "live"}) {
    EXPECT_NE(buffers->find(key), nullptr) << key;
  }

  // The text rendering reports the same latency ladder per shard.
  const std::string text = service.stats_text();
  EXPECT_NE(text.find("latency p50/p95/p99"), std::string::npos);
}

TEST(Service, ShutdownIsIdempotentAndRejectsLateCommands) {
  Service service(load_fig1(), {});
  std::uint64_t session = service.open_session();
  ASSERT_TRUE(service.run(session).get().ok);
  service.shutdown();
  service.shutdown();  // idempotent
  service.drain();     // no-op after shutdown

  CommandResult late = service.run(session).get();
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.error.rfind("rt-stopped:", 0), 0u) << late.error;
  // Opening after shutdown hands out an id whose commands all fail stopped.
  std::uint64_t dead = service.open_session();
  CommandResult dead_run = service.run(dead).get();
  EXPECT_EQ(dead_run.error.rfind("rt-stopped:", 0), 0u) << dead_run.error;
}

TEST(Service, DestructorDrainsInFlightWork) {
  // Submit work and destroy the service without an explicit shutdown; every
  // future must still complete (with ok or rt-stopped, never hang).
  std::vector<std::future<CommandResult>> futures;
  {
    Service service(load_fig1(), {});
    std::uint64_t session = service.open_session();
    for (int i = 0; i < 8; ++i) futures.push_back(service.run(session));
  }
  for (auto& f : futures) {
    CommandResult r = f.get();
    if (!r.ok) {
      EXPECT_EQ(r.error.rfind("rt-stopped:", 0), 0u) << r.error;
    }
  }
}

TEST(Service, TraceMetricsPerShard) {
  ServiceOptions options;
  options.collect_sim_metrics = true;
  Service service(load_fig1(), options);
  std::uint64_t session = service.open_session();
  ASSERT_TRUE(service.run(session).get().ok);
  service.drain();
  std::string report = service.shard_trace_report(0);
  EXPECT_FALSE(report.empty());
  EXPECT_NE(report.find("utilization"), std::string::npos) << report;
}

}  // namespace
}  // namespace hicsync::rt
