#include "netapp/lpm.h"

#include <gtest/gtest.h>

namespace hicsync::netapp {
namespace {

TEST(Lpm, ParseIpv4) {
  EXPECT_EQ(parse_ipv4("10.1.2.3").value(), 0x0A010203u);
  EXPECT_EQ(parse_ipv4("255.255.255.255").value(), 0xFFFFFFFFu);
  EXPECT_FALSE(parse_ipv4("10.1.2").has_value());
  EXPECT_FALSE(parse_ipv4("10.1.2.256").has_value());
  EXPECT_FALSE(parse_ipv4("a.b.c.d").has_value());
}

TEST(Lpm, EmptyTableHasNoRoute) {
  LpmTable t;
  EXPECT_FALSE(t.lookup(0x0A000001).has_value());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Lpm, ExactAndDefaultRoutes) {
  LpmTable t;
  ASSERT_TRUE(t.insert_cidr("0.0.0.0/0", 9));        // default
  ASSERT_TRUE(t.insert_cidr("10.1.0.0/16", 1));
  EXPECT_EQ(t.lookup(parse_ipv4("10.1.5.5").value()).value(), 1);
  EXPECT_EQ(t.lookup(parse_ipv4("192.168.0.1").value()).value(), 9);
}

TEST(Lpm, LongestPrefixWins) {
  LpmTable t;
  t.insert_cidr("10.0.0.0/8", 1);
  t.insert_cidr("10.1.0.0/16", 2);
  t.insert_cidr("10.1.2.0/24", 3);
  EXPECT_EQ(t.lookup(parse_ipv4("10.1.2.9").value()).value(), 3);
  EXPECT_EQ(t.lookup(parse_ipv4("10.1.9.9").value()).value(), 2);
  EXPECT_EQ(t.lookup(parse_ipv4("10.9.9.9").value()).value(), 1);
  EXPECT_FALSE(t.lookup(parse_ipv4("11.0.0.1").value()).has_value());
}

TEST(Lpm, ReinsertOverwrites) {
  LpmTable t;
  t.insert_cidr("10.0.0.0/8", 1);
  t.insert_cidr("10.0.0.0/8", 7);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(parse_ipv4("10.1.1.1").value()).value(), 7);
}

TEST(Lpm, HostRoute) {
  LpmTable t;
  t.insert_cidr("10.0.0.0/8", 1);
  t.insert_cidr("10.0.0.42/32", 5);
  EXPECT_EQ(t.lookup(parse_ipv4("10.0.0.42").value()).value(), 5);
  EXPECT_EQ(t.lookup(parse_ipv4("10.0.0.43").value()).value(), 1);
}

TEST(Lpm, MalformedCidrRejected) {
  LpmTable t;
  EXPECT_FALSE(t.insert_cidr("10.0.0.0", 1));
  EXPECT_FALSE(t.insert_cidr("10.0.0.0/33", 1));
  EXPECT_FALSE(t.insert_cidr("zz/8", 1));
}

TEST(Lpm, FlattenMatchesTrieOnPrefixBoundaries) {
  LpmTable t;
  t.insert_cidr("10.0.0.0/8", 1);
  t.insert_cidr("10.128.0.0/9", 2);
  auto table = t.flatten(10);
  ASSERT_EQ(table.size(), 1024u);
  // Index of 10.0.x.x at 10 bits: top 10 bits of 0x0A000000.
  std::size_t idx_low = 0x0A000000u >> 22;
  std::size_t idx_high = 0x0A800000u >> 22;
  EXPECT_EQ(table[idx_low], 2u);   // next_hop 1 + 1
  EXPECT_EQ(table[idx_high], 3u);  // next_hop 2 + 1
  EXPECT_EQ(table[0], 0u);         // no route
}

// Property sweep: flatten agrees with lookup for every table index.
class FlattenProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlattenProperty, AgreesWithTrie) {
  const int bits = GetParam();
  LpmTable t;
  t.insert_cidr("10.0.0.0/8", 1);
  t.insert_cidr("10.64.0.0/10", 2);
  t.insert_cidr("192.168.0.0/16", 3);
  auto table = t.flatten(bits);
  for (std::size_t i = 0; i < table.size(); ++i) {
    std::uint32_t addr = static_cast<std::uint32_t>(i) << (32 - bits);
    auto hop = t.lookup(addr);
    std::uint16_t expect =
        hop.has_value() ? static_cast<std::uint16_t>(*hop + 1) : 0;
    ASSERT_EQ(table[i], expect) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, FlattenProperty, ::testing::Values(4, 8, 10));

}  // namespace
}  // namespace hicsync::netapp
