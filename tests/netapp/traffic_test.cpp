#include "netapp/traffic.h"

#include <gtest/gtest.h>

namespace hicsync::netapp {
namespace {

TEST(Traffic, CbrPeriodsExact) {
  CbrArrivals cbr(10, 3);
  EXPECT_EQ(cbr.next_arrival(), 3u);
  EXPECT_EQ(cbr.next_arrival(), 13u);
  EXPECT_EQ(cbr.next_arrival(), 23u);
}

TEST(Traffic, CbrZeroPeriodClamped) {
  CbrArrivals cbr(0);
  std::uint64_t a = cbr.next_arrival();
  std::uint64_t b = cbr.next_arrival();
  EXPECT_GT(b, a);
}

TEST(Traffic, PoissonStrictlyIncreasing) {
  PoissonArrivals p(0.2, 42);
  std::uint64_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    std::uint64_t a = p.next_arrival();
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(Traffic, PoissonRateApproximatesP) {
  PoissonArrivals p(0.1, 7);
  std::uint64_t last = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) last = p.next_arrival();
  double rate = static_cast<double>(n) / static_cast<double>(last);
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(Traffic, PoissonDeterministicPerSeed) {
  PoissonArrivals a(0.3, 99);
  PoissonArrivals b(0.3, 99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.next_arrival(), b.next_arrival());
  }
}

TEST(Traffic, BurstyProducesClusters) {
  BurstyArrivals b(0.02, 0.3, 2, 11);
  std::vector<std::uint64_t> arrivals;
  for (int i = 0; i < 500; ++i) arrivals.push_back(b.next_arrival());
  // Strictly increasing and contains some back-to-back gaps of exactly 2.
  int tight_gaps = 0;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    ASSERT_GT(arrivals[i], arrivals[i - 1]);
    if (arrivals[i] - arrivals[i - 1] == 2) ++tight_gaps;
  }
  EXPECT_GT(tight_gaps, 50);
}

TEST(Traffic, ArrivalGateReleasesOncePerArrival) {
  auto gate = arrival_gate(std::make_shared<CbrArrivals>(10, 5));
  int releases = 0;
  for (std::uint64_t cycle = 0; cycle < 35; ++cycle) {
    if (gate(cycle)) ++releases;
  }
  // Arrivals at 5, 15, 25 within 35 cycles.
  EXPECT_EQ(releases, 3);
}

TEST(Traffic, PacketFactoryProducesValidPackets) {
  PacketFactory f(123);
  for (int i = 0; i < 100; ++i) {
    Packet p = f.make();
    EXPECT_TRUE(p.header.checksum_ok()) << i;
    EXPECT_EQ(p.header.total_length, p.wire_length());
    EXPECT_GE(p.header.ttl, 2);
  }
}

TEST(Traffic, PacketFactoryDeterministicPerSeed) {
  PacketFactory a(5);
  PacketFactory b(5);
  for (int i = 0; i < 20; ++i) {
    Packet pa = a.make();
    Packet pb = b.make();
    EXPECT_EQ(pa.header.dst, pb.header.dst);
    EXPECT_EQ(pa.header.src, pb.header.src);
  }
}

}  // namespace
}  // namespace hicsync::netapp
