#include "netapp/scenarios.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"
#include "analysis/depgraph.h"
#include "fpga/techmap.h"
#include "fpga/timing.h"
#include "memalloc/portplan.h"
#include "netapp/forwarding_rtl.h"
#include "netapp/traffic.h"

namespace hicsync::netapp {
namespace {

using hic::testing::compile;

TEST(Scenarios, Figure1Compiles) {
  auto c = compile(figure1_source());
  EXPECT_TRUE(c->ok) << c->diags.str();
  EXPECT_EQ(c->sema->dependencies().size(), 1u);
}

class FanoutScenario : public ::testing::TestWithParam<int> {};

TEST_P(FanoutScenario, CompilesWithNConsumers) {
  const int n = GetParam();
  auto c = compile(fanout_source(n));
  ASSERT_TRUE(c->ok) << c->diags.str();
  ASSERT_EQ(c->sema->dependencies().size(), 1u);
  EXPECT_EQ(c->sema->dependencies()[0].dependency_number(), n);
  // One BRAM, N consumer pseudo-ports — the Table 1/2 configuration.
  memalloc::MemoryMap map = memalloc::Allocator().allocate(*c->sema);
  ASSERT_EQ(map.brams().size(), 1u);
  std::vector<synth::ThreadFsm> fsms;
  for (const auto& t : c->program.threads) {
    fsms.push_back(synth::ThreadFsm::synthesize(t, *c->sema));
  }
  auto plans = memalloc::PortPlanner::plan(*c->sema, map, fsms);
  EXPECT_EQ(plans[0].consumer_pseudo_ports(), n);
  EXPECT_EQ(plans[0].producer_pseudo_ports(), 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FanoutScenario, ::testing::Values(2, 4, 8));

TEST(Scenarios, IpForwardingCompilesDeadlockFree) {
  auto c = compile(ip_forwarding_source());
  ASSERT_TRUE(c->ok) << c->diags.str();
  EXPECT_EQ(c->sema->dependencies().size(), 3u);
  auto g = analysis::ThreadDepGraph::build(c->program,
                                           c->sema->dependencies());
  EXPECT_FALSE(g.has_deadlock_risk());
  // rx* before fwd before tx* in the topological order.
  auto order = g.topological_order();
  ASSERT_EQ(order.size(), 5u);
}

TEST(Scenarios, IpForwardingEndToEndSimulation) {
  auto c = compile(ip_forwarding_source());
  ASSERT_TRUE(c->ok) << c->diags.str();
  memalloc::MemoryMap map = memalloc::Allocator().allocate(*c->sema);
  std::vector<synth::ThreadFsm> fsms;
  for (const auto& t : c->program.threads) {
    fsms.push_back(synth::ThreadFsm::synthesize(t, *c->sema));
  }
  auto plans = memalloc::PortPlanner::plan(*c->sema, map, fsms);
  sim::SystemOptions opt;
  opt.organization = sim::OrgKind::Arbitrated;
  opt.restart_threads = true;
  sim::SystemSim s(c->program, *c->sema, map, plans, opt);

  LpmTable table;
  table.insert_cidr("10.0.0.0/9", 0);
  table.insert_cidr("10.128.0.0/9", 1);
  wire_forwarding_externs(s, table, /*seed=*/1);
  // Packets arrive on both ports with a CBR process.
  s.set_gate("rx0", arrival_gate(std::make_shared<CbrArrivals>(40, 0)));
  s.set_gate("rx1", arrival_gate(std::make_shared<CbrArrivals>(40, 7)));

  ASSERT_TRUE(s.run_until_passes(2, 5000));
  // Both tx threads emitted something derived from a descriptor.
  EXPECT_GE(s.passes("tx0"), 2);
  EXPECT_GE(s.passes("tx1"), 2);
  // Dependency rounds happened on all three dependencies.
  int in0 = 0, in1 = 0, out = 0;
  for (const auto& r : s.rounds()) {
    if (r.dep_id == "in0") ++in0;
    if (r.dep_id == "in1") ++in1;
    if (r.dep_id == "out") ++out;
  }
  EXPECT_GE(in0, 1);
  EXPECT_GE(in1, 1);
  EXPECT_GE(out, 1);
}

TEST(ForwardingCore, GeneratesValidModule) {
  rtl::Design d;
  rtl::Module& m =
      generate_forwarding_core(d, ForwardingCoreConfig{}, "fwd_core");
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

TEST(ForwardingCore, AreaInPaperNeighbourhood) {
  // §4: "around 1000 slices ... for the core forwarding function" of the
  // two-port app. Our regenerated core should land within the same order
  // of magnitude (hundreds of slices).
  rtl::Design d;
  rtl::Module& m =
      generate_forwarding_core(d, ForwardingCoreConfig{}, "fwd_core");
  auto r = fpga::TechMapper().map(m);
  EXPECT_GT(r.slices, 100);
  EXPECT_LT(r.slices, 3000);
  EXPECT_GT(r.ffs, 200);  // pipeline registers dominate
  EXPECT_GT(r.bram_blocks, 0);
}

TEST(ForwardingCore, AreaScalesWithPorts) {
  auto slices_for = [](int ports) {
    rtl::Design d;
    ForwardingCoreConfig cfg;
    cfg.ports = ports;
    rtl::Module& m = generate_forwarding_core(d, cfg, "fwd_core");
    return fpga::TechMapper().map(m).slices;
  };
  EXPECT_LT(slices_for(1), slices_for(2));
  EXPECT_LT(slices_for(2), slices_for(4));
}

TEST(ForwardingCore, ChecksumStageVerifiesRealHeader) {
  // Functional spot check of the generated pipeline: feed a valid header
  // and watch ok_q assert; corrupt it and watch it stay low.
  rtl::Design d;
  ForwardingCoreConfig cfg;
  cfg.ports = 1;
  rtl::Module& m = generate_forwarding_core(d, cfg, "fwd_core");
  rtl::ModuleSim sim(m);
  sim.reset();

  Ipv4Header h;
  h.ttl = 9;
  h.protocol = 17;
  h.src = 0x0A000001;
  h.dst = 0x0A800001;
  h.finalize_checksum();
  auto bytes = h.serialize();
  auto word = [&](int i) {
    return (static_cast<std::uint64_t>(bytes[4 * i]) << 24) |
           (static_cast<std::uint64_t>(bytes[4 * i + 1]) << 16) |
           (static_cast<std::uint64_t>(bytes[4 * i + 2]) << 8) |
           bytes[4 * i + 3];
  };
  sim.set_input("p0_in_valid", 1);
  for (int w = 0; w < 5; ++w) {
    sim.set_input("p0_hdr" + std::to_string(w), word(w));
  }
  sim.step();  // capture
  sim.set_input("p0_in_valid", 0);
  sim.step();  // stage 1 -> ok_q
  EXPECT_EQ(sim.get("p0_ok_q"), 1u);

  // Corrupted checksum: ok_q must stay low.
  sim.set_input("p0_in_valid", 1);
  sim.set_input("p0_hdr2", word(2) ^ 1);
  sim.step();
  sim.set_input("p0_in_valid", 0);
  sim.step();
  EXPECT_EQ(sim.get("p0_ok_q"), 0u);
}

TEST(ForwardingCore, TtlUpdateMatchesSoftwareModel) {
  rtl::Design d;
  ForwardingCoreConfig cfg;
  cfg.ports = 1;
  rtl::Module& m = generate_forwarding_core(d, cfg, "fwd_core");
  rtl::ModuleSim sim(m);
  sim.reset();

  Ipv4Header h;
  h.ttl = 33;
  h.protocol = 6;
  h.src = 0x0A000001;
  h.dst = 0x0A800001;
  h.finalize_checksum();
  auto bytes = h.serialize();
  auto word = [&](int i) {
    return (static_cast<std::uint64_t>(bytes[4 * i]) << 24) |
           (static_cast<std::uint64_t>(bytes[4 * i + 1]) << 16) |
           (static_cast<std::uint64_t>(bytes[4 * i + 2]) << 8) |
           bytes[4 * i + 3];
  };
  sim.set_input("p0_in_valid", 1);
  for (int w = 0; w < 5; ++w) {
    sim.set_input("p0_hdr" + std::to_string(w), word(w));
  }
  sim.step();
  sim.set_input("p0_in_valid", 0);
  for (int i = 0; i < 4; ++i) sim.step();  // drain the pipeline

  Ipv4Header expect = h;
  ASSERT_TRUE(expect.forward_hop());
  std::uint64_t got_ttl_proto = sim.get("p0_out_ttl_proto");
  EXPECT_EQ(got_ttl_proto >> 8, expect.ttl);
  EXPECT_EQ(sim.get("p0_out_cksum"), expect.checksum);
}

}  // namespace
}  // namespace hicsync::netapp
