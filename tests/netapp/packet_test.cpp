#include "netapp/packet.h"

#include <gtest/gtest.h>

namespace hicsync::netapp {
namespace {

Ipv4Header sample_header() {
  Ipv4Header h;
  h.total_length = 60;
  h.identification = 0x1C46;
  h.flags_fragment = 0x4000;
  h.ttl = 64;
  h.protocol = 6;
  h.src = 0xAC100A63;  // 172.16.10.99
  h.dst = 0xAC100A0C;  // 172.16.10.12
  return h;
}

TEST(Packet, SerializeParseRoundTrip) {
  Ipv4Header h = sample_header();
  h.finalize_checksum();
  auto bytes = h.serialize();
  Ipv4Header parsed;
  ASSERT_TRUE(Ipv4Header::parse(bytes.data(), &parsed));
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_EQ(parsed.ttl, h.ttl);
  EXPECT_EQ(parsed.total_length, h.total_length);
  EXPECT_EQ(parsed.checksum, h.checksum);
}

TEST(Packet, ParseRejectsBadVersion) {
  Ipv4Header h = sample_header();
  auto bytes = h.serialize();
  bytes[0] = 0x65;  // version 6
  Ipv4Header parsed;
  EXPECT_FALSE(Ipv4Header::parse(bytes.data(), &parsed));
}

TEST(Packet, KnownChecksumVector) {
  // Classic RFC 1071 worked example (the Wikipedia/Stevens header).
  Ipv4Header h;
  h.tos = 0;
  h.total_length = 0x0073;
  h.identification = 0;
  h.flags_fragment = 0x4000;
  h.ttl = 0x40;
  h.protocol = 0x11;
  h.src = 0xC0A80001;
  h.dst = 0xC0A800C7;
  EXPECT_EQ(h.compute_checksum(), 0xB861);
}

TEST(Packet, ChecksumVerifies) {
  Ipv4Header h = sample_header();
  h.finalize_checksum();
  EXPECT_TRUE(h.checksum_ok());
  h.dst ^= 1;
  EXPECT_FALSE(h.checksum_ok());
}

TEST(Packet, ForwardHopDecrementsTtlKeepsChecksumValid) {
  Ipv4Header h = sample_header();
  h.finalize_checksum();
  ASSERT_TRUE(h.forward_hop());
  EXPECT_EQ(h.ttl, 63);
  // Incremental update must agree with a full recompute.
  EXPECT_TRUE(h.checksum_ok());
  EXPECT_EQ(h.checksum, h.compute_checksum());
}

TEST(Packet, ForwardHopManyTimesStaysConsistent) {
  Ipv4Header h = sample_header();
  h.ttl = 16;
  h.finalize_checksum();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(h.forward_hop()) << i;
    EXPECT_TRUE(h.checksum_ok()) << i;
  }
  EXPECT_EQ(h.ttl, 0);
}

TEST(Packet, ForwardHopDropsAtZeroTtl) {
  Ipv4Header h = sample_header();
  h.ttl = 0;
  h.finalize_checksum();
  EXPECT_FALSE(h.forward_hop());
}

TEST(Packet, OnesComplementOddLength) {
  std::uint8_t data[3] = {0x12, 0x34, 0x56};
  // 0x1234 + 0x5600 = 0x6834
  EXPECT_EQ(ones_complement_sum(data, 3), 0x6834);
}

TEST(Packet, DescriptorFields) {
  std::uint32_t d = make_descriptor(0x0123, 5, 2);
  EXPECT_EQ(descriptor_slot(d), 0x0123);
  EXPECT_EQ(descriptor_port(d), 5);
  EXPECT_EQ(descriptor_len_class(d), 2);
}

}  // namespace
}  // namespace hicsync::netapp
