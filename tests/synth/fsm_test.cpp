#include "synth/fsm.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"

namespace hicsync::synth {
namespace {

using hic::testing::compile;
using hic::testing::kFigure1;

ThreadFsm synth_one(const hic::testing::Compiled& c, std::size_t idx = 0) {
  return ThreadFsm::synthesize(c.program.threads.at(idx), *c.sema);
}

TEST(Fsm, StraightLineStates) {
  auto c = compile("thread t () { int a, b; a = 1; b = a; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = synth_one(*c);
  // 2 action states + done.
  EXPECT_EQ(fsm.states().size(), 3u);
  EXPECT_TRUE(fsm.validate());
  EXPECT_EQ(fsm.state(fsm.initial()).kind, StateKind::Action);
  EXPECT_EQ(fsm.state(fsm.done()).kind, StateKind::Done);
}

TEST(Fsm, EmptyThreadIsJustDone) {
  auto c = compile("thread t () { int unused; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = synth_one(*c);
  EXPECT_EQ(fsm.states().size(), 1u);
  EXPECT_EQ(fsm.initial(), fsm.done());
  EXPECT_TRUE(fsm.validate());
}

TEST(Fsm, IfBranchTargets) {
  auto c = compile(R"(
    thread t () {
      int x;
      if (x > 0) x = 1; else x = 2;
      x = 3;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = synth_one(*c);
  EXPECT_TRUE(fsm.validate());
  const FsmState& branch = fsm.state(fsm.initial());
  ASSERT_EQ(branch.kind, StateKind::Branch);
  ASSERT_GE(branch.true_target, 0);
  ASSERT_GE(branch.false_target, 0);
  EXPECT_NE(branch.true_target, branch.false_target);
  // Both arms converge on the x=3 state.
  EXPECT_EQ(fsm.state(branch.true_target).next,
            fsm.state(branch.false_target).next);
}

TEST(Fsm, WhileLoopBackEdge) {
  auto c = compile("thread t () { int x; while (x > 0) x = x - 1; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = synth_one(*c);
  EXPECT_TRUE(fsm.validate());
  const FsmState& branch = fsm.state(fsm.initial());
  ASSERT_EQ(branch.kind, StateKind::Branch);
  const FsmState& body = fsm.state(branch.true_target);
  EXPECT_EQ(body.next, branch.id);
  EXPECT_EQ(fsm.state(branch.false_target).kind, StateKind::Done);
  // Loops make the latency bound undefined.
  EXPECT_EQ(fsm.latency_bound(), -1);
}

TEST(Fsm, ForLoopHasInitBranchStep) {
  auto c = compile(R"(
    thread t () {
      int i, acc;
      for (i = 0; i < 4; i = i + 1) acc = acc + i;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = synth_one(*c);
  EXPECT_TRUE(fsm.validate());
  // init, branch, body, step, done.
  EXPECT_EQ(fsm.states().size(), 5u);
  // initial is the init assignment.
  EXPECT_EQ(fsm.state(fsm.initial()).kind, StateKind::Action);
}

TEST(Fsm, CaseTransitions) {
  auto c = compile(R"(
    thread t () {
      int s, x;
      case (s) {
        when 0: x = 1;
        when 5: x = 2;
        default: x = 3;
      }
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = synth_one(*c);
  EXPECT_TRUE(fsm.validate());
  const FsmState& branch = fsm.state(fsm.initial());
  ASSERT_EQ(branch.kind, StateKind::Branch);
  ASSERT_EQ(branch.case_targets.size(), 3u);
  EXPECT_EQ(branch.case_targets[0].value, 0u);
  EXPECT_EQ(branch.case_targets[1].value, 5u);
  EXPECT_TRUE(branch.case_targets[2].is_default);
}

TEST(Fsm, CaseWithoutDefaultGetsImplicitOne) {
  auto c = compile(R"(
    thread t () {
      int s, x;
      case (s) { when 0: x = 1; }
      x = 9;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = synth_one(*c);
  EXPECT_TRUE(fsm.validate());
  const FsmState& branch = fsm.state(fsm.initial());
  ASSERT_EQ(branch.case_targets.size(), 2u);
  EXPECT_TRUE(branch.case_targets[1].is_default);
  // Implicit default goes to the statement after the case.
  const FsmState& join = fsm.state(branch.case_targets[1].target);
  EXPECT_EQ(join.kind, StateKind::Action);
}

TEST(Fsm, BreakExitsLoop) {
  auto c = compile(R"(
    thread t () {
      int x;
      while (1) { x = x + 1; if (x == 3) break; }
      x = 0;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = synth_one(*c);
  EXPECT_TRUE(fsm.validate()) << fsm.str();
}

TEST(Fsm, Figure1ProducerAnnotation) {
  auto c = compile(kFigure1);
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm t1 = synth_one(*c, 0);
  auto producing = t1.producing_states();
  ASSERT_EQ(producing.size(), 1u);
  const FsmState& s = t1.state(producing[0]);
  // Exactly one producer-write access of x1.
  int producer_writes = 0;
  for (const auto& a : s.accesses) {
    if (a.role == AccessRole::ProducerWrite) {
      ++producer_writes;
      EXPECT_EQ(a.symbol->qualified_name(), "t1.x1");
      ASSERT_NE(a.dep, nullptr);
      EXPECT_EQ(a.dep->id, "mt1");
    }
  }
  EXPECT_EQ(producer_writes, 1);
  EXPECT_TRUE(t1.blocking_states().empty());
}

TEST(Fsm, Figure1ConsumerAnnotation) {
  auto c = compile(kFigure1);
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm t2 = synth_one(*c, 1);
  auto blocking = t2.blocking_states();
  ASSERT_EQ(blocking.size(), 1u);
  const FsmState& s = t2.state(blocking[0]);
  EXPECT_TRUE(s.blocks());
  int consumer_reads = 0;
  for (const auto& a : s.accesses) {
    if (a.role == AccessRole::ConsumerRead) {
      ++consumer_reads;
      EXPECT_EQ(a.symbol->qualified_name(), "t1.x1");
    }
  }
  EXPECT_EQ(consumer_reads, 1);
  EXPECT_TRUE(t2.producing_states().empty());
}

TEST(Fsm, LatencyBoundStraightLine) {
  auto c = compile("thread t () { int a; a = 1; a = 2; a = 3; }");
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = synth_one(*c);
  // 3 action cycles + the done state.
  EXPECT_EQ(fsm.latency_bound(), 4);
}

TEST(Fsm, LatencyBoundTakesLongestBranch) {
  auto c = compile(R"(
    thread t () {
      int x;
      if (x > 0) { x = 1; x = 2; x = 3; } else x = 9;
    }
  )");
  ASSERT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = synth_one(*c);
  // branch + 3 actions + done.
  EXPECT_EQ(fsm.latency_bound(), 5);
}

TEST(Fsm, StateBits) {
  auto c = compile("thread t () { int a; a = 1; a = 2; a = 3; }");
  ThreadFsm fsm = synth_one(*c);
  // 4 states -> 2 bits.
  EXPECT_EQ(fsm.state_bits(), 2);
}

TEST(Fsm, StrMentionsRoles) {
  auto c = compile(kFigure1);
  ThreadFsm t1 = synth_one(*c, 0);
  EXPECT_NE(t1.str().find("producer-write"), std::string::npos);
}

}  // namespace
}  // namespace hicsync::synth
