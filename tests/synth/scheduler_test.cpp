#include "synth/scheduler.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"

namespace hicsync::synth {
namespace {

using hic::testing::compile;

ThreadFsm synth(const std::string& src, const SchedulePolicy& policy) {
  auto c = compile(src);
  EXPECT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = ThreadFsm::synthesize(c->program.threads.at(0), *c->sema);
  schedule(fsm, policy);
  EXPECT_TRUE(fsm.validate()) << fsm.str();
  return fsm;
}

TEST(Scheduler, NoChainPolicyIsIdentity) {
  auto c = compile("thread t () { int a, b; a = 1; b = 2; }");
  ThreadFsm fsm = ThreadFsm::synthesize(c->program.threads.at(0), *c->sema);
  auto stats = schedule(fsm, SchedulePolicy{});
  EXPECT_EQ(stats.states_before, stats.states_after);
  EXPECT_EQ(stats.chained_pairs, 0);
}

TEST(Scheduler, ChainsIndependentAssignments) {
  ThreadFsm fsm = synth("thread t () { int a, b; a = 1; b = 2; }",
                        SchedulePolicy{.chain_states = true});
  // a=1 and b=2 merge: one action + done.
  EXPECT_EQ(fsm.states().size(), 2u);
  const FsmState& s = fsm.state(fsm.initial());
  EXPECT_EQ(s.chained.size(), 1u);
}

TEST(Scheduler, RawHazardPreventsChaining) {
  ThreadFsm fsm = synth("thread t () { int a, b; a = 1; b = a; }",
                        SchedulePolicy{.chain_states = true});
  // b = a reads what a = 1 writes: must stay 2 cycles.
  EXPECT_EQ(fsm.states().size(), 3u);
}

TEST(Scheduler, WawHazardPreventsChaining) {
  ThreadFsm fsm = synth("thread t () { int a; a = 1; a = 2; }",
                        SchedulePolicy{.chain_states = true});
  EXPECT_EQ(fsm.states().size(), 3u);
}

TEST(Scheduler, DependencyStatesNeverChain) {
  ThreadFsm fsm = synth(R"(
    thread t1 () {
      int x1, q;
      q = 5;
      #consumer{m, [t2,y]}
      x1 = 1;
    }
    thread t2 () {
      int y;
      #producer{m, [t1,x1]}
      y = x1;
    }
  )",
                        SchedulePolicy{.chain_states = true});
  // q=5 cannot merge with the producer write: 2 actions + done.
  EXPECT_EQ(fsm.states().size(), 3u);
}

TEST(Scheduler, MemoryPortLimitRespected) {
  // Three independent array writes: with a 2-access budget, only two fit in
  // one state.
  ThreadFsm fsm = synth(R"(
    thread t () {
      int u[4], v[4], w[4];
      u[0] = 1;
      v[0] = 2;
      w[0] = 3;
    }
  )",
                        SchedulePolicy{.chain_states = true,
                                       .max_mem_accesses_per_state = 2});
  // First two chain, third keeps its own state: 2 actions + done.
  EXPECT_EQ(fsm.states().size(), 3u);
}

TEST(Scheduler, ChainAcrossManyStatements) {
  ThreadFsm fsm = synth(R"(
    thread t () {
      int a, b, c, d;
      a = 1;
      b = 2;
      c = 3;
      d = 4;
    }
  )",
                        SchedulePolicy{.chain_states = true,
                                       .max_mem_accesses_per_state = 2});
  // All four are register writes (no memory accesses): one state + done.
  EXPECT_EQ(fsm.states().size(), 2u);
  EXPECT_EQ(fsm.state(fsm.initial()).chained.size(), 3u);
}

TEST(Scheduler, BranchBoundariesPreserved) {
  ThreadFsm fsm = synth(R"(
    thread t () {
      int a, b, x;
      a = 1;
      if (x > 0) b = 2;
      b = 3;
    }
  )",
                        SchedulePolicy{.chain_states = true});
  // a=1 cannot merge into the branch; branch arms survive.
  EXPECT_TRUE(fsm.validate());
  bool has_branch = false;
  for (const auto& s : fsm.states()) {
    if (s.kind == StateKind::Branch) has_branch = true;
  }
  EXPECT_TRUE(has_branch);
}

TEST(Scheduler, StatsReflectMerges) {
  auto c = compile("thread t () { int a, b, d; a = 1; b = 2; d = 4; }");
  ThreadFsm fsm = ThreadFsm::synthesize(c->program.threads.at(0), *c->sema);
  auto stats = schedule(fsm, SchedulePolicy{.chain_states = true});
  EXPECT_EQ(stats.states_before, 4);
  EXPECT_EQ(stats.states_after, 2);
  EXPECT_EQ(stats.chained_pairs, 2);
}

}  // namespace
}  // namespace hicsync::synth
