#include "synth/datapath.h"

#include <gtest/gtest.h>

#include "../hic/hic_test_util.h"

namespace hicsync::synth {
namespace {

using hic::testing::compile;

DatapathSummary extract(const std::string& src) {
  auto c = compile(src);
  EXPECT_TRUE(c->ok) << c->diags.str();
  ThreadFsm fsm = ThreadFsm::synthesize(c->program.threads.at(0), *c->sema);
  return DatapathSummary::extract(fsm);
}

TEST(Datapath, CountsAdders) {
  auto d = extract("thread t () { int a, b; a = b + 1 + 2; }");
  EXPECT_EQ(d.count(OpClass::AddSub), 2);
}

TEST(Datapath, ClassifiesOperators) {
  auto d = extract(R"(
    thread t () {
      int a, b;
      a = b * 2;
      a = b / 2;
      a = b & 3;
      a = b << 1;
      a = -b;
    }
  )");
  EXPECT_EQ(d.count(OpClass::Mul), 1);
  EXPECT_EQ(d.count(OpClass::DivMod), 1);
  EXPECT_EQ(d.count(OpClass::Bitwise), 1);
  EXPECT_EQ(d.count(OpClass::Shift), 1);
  EXPECT_EQ(d.count(OpClass::AddSub), 1);  // unary neg
}

TEST(Datapath, BranchContributesCompareAndMux) {
  auto d = extract("thread t () { int a; if (a == 3) a = 1; }");
  EXPECT_EQ(d.count(OpClass::Compare), 1);
  EXPECT_EQ(d.count(OpClass::Mux), 1);
}

TEST(Datapath, ExternCallCounted) {
  auto d = extract("thread t () { int a, b; a = f(b, 1); }");
  EXPECT_EQ(d.count(OpClass::ExternCall), 1);
}

TEST(Datapath, WidthTracking) {
  auto d = extract(R"(
    thread t () {
      bits<12> n;
      char c;
      int w;
      n = n + 1;
      c = c + 1;
      w = w + 1;
    }
  )");
  EXPECT_EQ(d.max_width(), 32);
  // Three adders of widths 12, 8, 32.
  EXPECT_EQ(d.count(OpClass::AddSub), 3);
}

TEST(Datapath, PeakPerStateEnablesSharing) {
  // Two adds in one statement (one state) but also two states each with one
  // add: peak per state is 2, total 4.
  auto d = extract(R"(
    thread t () {
      int a, b;
      a = b + 1 + 2;
      b = a + 1 + 5;
    }
  )");
  EXPECT_EQ(d.count(OpClass::AddSub), 4);
  auto peak = d.peak_per_state();
  EXPECT_EQ(peak[OpClass::AddSub], 2);
}

TEST(Datapath, EmptyThreadHasNoOps) {
  auto d = extract("thread t () { int unused; }");
  EXPECT_EQ(d.total(), 0);
  EXPECT_EQ(d.max_width(), 0);
}

}  // namespace
}  // namespace hicsync::synth
