#include "trace/vcd.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "trace/bus.h"

namespace hicsync::trace {
namespace {

std::string vcd_for_figure1(sim::OrgKind kind) {
  core::CompileOptions options;
  options.organization = kind;
  auto result = core::Compiler(options).compile(netapp::figure1_source());
  EXPECT_TRUE(result->ok()) << result->diags().str();
  auto simulator = result->make_simulator();
  TraceBus bus;
  VcdSink vcd;
  bus.attach(&vcd);
  simulator->set_trace(&bus);
  EXPECT_TRUE(simulator->run_until_passes(1, 10000));
  bus.finish(simulator->cycle());
  return vcd.str();
}

// Golden structural validation of the acceptance criterion: header with
// timescale, declarations before $enddefinitions, and every value-change
// line in legal VCD syntax referencing a declared identifier code.
void validate_vcd(const std::string& doc) {
  EXPECT_EQ(doc.rfind("$date", 0), 0u) << "document must open with $date";
  EXPECT_NE(doc.find("$version"), std::string::npos);
  EXPECT_NE(doc.find("$timescale 1 ns $end"), std::string::npos);
  EXPECT_NE(doc.find("$scope module hicsync $end"), std::string::npos);
  EXPECT_NE(doc.find("$upscope $end"), std::string::npos);

  const std::size_t defs_end = doc.find("$enddefinitions $end");
  ASSERT_NE(defs_end, std::string::npos);

  // Collect declared id codes: "$var wire <w> <id> <name> [...] $end".
  std::set<std::string> ids;
  std::istringstream defs(doc.substr(0, defs_end));
  std::string line;
  int scope_depth = 0;
  while (std::getline(defs, line)) {
    std::istringstream words(line);
    std::string tok;
    words >> tok;
    if (tok == "$scope") ++scope_depth;
    if (tok == "$upscope") --scope_depth;
    if (tok != "$var") continue;
    EXPECT_GT(scope_depth, 0) << "$var outside any $scope: " << line;
    std::string type, width, id, name;
    words >> type >> width >> id >> name;
    EXPECT_EQ(type, "wire") << line;
    EXPECT_GT(std::atoi(width.c_str()), 0) << line;
    EXPECT_FALSE(id.empty()) << line;
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id code: " << line;
    // Multi-bit vars carry a [msb:0] range; the range must match width.
    if (width != "1") {
      std::string range;
      words >> range;
      EXPECT_EQ(range,
                "[" + std::to_string(std::atoi(width.c_str()) - 1) + ":0]")
          << line;
    }
  }
  ASSERT_FALSE(ids.empty());
  EXPECT_EQ(scope_depth, 0) << "unbalanced $scope/$upscope";

  // Value-change section: timestamps strictly increasing; every change is
  // scalar `0<id>`/`1<id>` or vector `b<bits> <id>` with a declared id.
  std::istringstream body(doc.substr(defs_end));
  std::getline(body, line);  // consume the $enddefinitions line
  long long last_time = -1;
  bool in_dumpvars = false;
  std::size_t changes = 0;
  while (std::getline(body, line)) {
    if (line.empty()) continue;
    if (line == "$dumpvars") {
      in_dumpvars = true;
      continue;
    }
    if (line == "$end" && in_dumpvars) {
      in_dumpvars = false;
      continue;
    }
    if (line[0] == '#') {
      long long t = std::atoll(line.c_str() + 1);
      EXPECT_GT(t, last_time) << "timestamps must increase: " << line;
      last_time = t;
      continue;
    }
    ++changes;
    if (line[0] == 'b') {
      std::size_t space = line.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string bits = line.substr(1, space - 1);
      EXPECT_FALSE(bits.empty()) << line;
      EXPECT_EQ(bits.find_first_not_of("01"), std::string::npos) << line;
      EXPECT_TRUE(ids.count(line.substr(space + 1))) << "undeclared: "
                                                     << line;
    } else {
      ASSERT_TRUE(line[0] == '0' || line[0] == '1') << line;
      EXPECT_TRUE(ids.count(line.substr(1))) << "undeclared: " << line;
    }
  }
  EXPECT_GT(changes, 0u);
  EXPECT_GE(last_time, 0);
}

TEST(VcdSinkTest, ArbitratedFigure1ProducesValidVcd) {
  const std::string doc = vcd_for_figure1(sim::OrgKind::Arbitrated);
  validate_vcd(doc);
  // The documented signal names (docs/OBSERVABILITY.md).
  EXPECT_NE(doc.find("c_req0"), std::string::npos);
  EXPECT_NE(doc.find("c_grant0"), std::string::npos);
  EXPECT_NE(doc.find("d_grant0"), std::string::npos);
  EXPECT_NE(doc.find("t1_state"), std::string::npos);
  EXPECT_NE(doc.find("t2_blocked"), std::string::npos);
}

TEST(VcdSinkTest, EventDrivenFigure1ProducesValidVcd) {
  const std::string doc = vcd_for_figure1(sim::OrgKind::EventDriven);
  validate_vcd(doc);
  // The event-driven controller exposes its schedule slot counter.
  EXPECT_NE(doc.find("slot"), std::string::npos);
}

TEST(VcdSinkTest, CollidingNamesSanitizeAndStayDistinct) {
  // "t.1" and "t-1" both sanitize to "t_1": without uniquification the two
  // threads would share one wire and their waveforms would overwrite each
  // other. The later probe must get a suffixed name instead.
  VcdSink vcd;
  TraceBus bus;
  bus.attach(&vcd);
  bus.begin_cycle(0);
  Event e;
  e.kind = EventKind::FsmState;
  e.thread = "t.1";
  e.value = 1;
  bus.emit(e);
  e.thread = "t-1";
  e.value = 2;
  bus.emit(e);
  bus.finish(1);

  const std::string& doc = vcd.str();
  validate_vcd(doc);  // also asserts the two id codes are distinct
  EXPECT_NE(doc.find(" t_1_state "), std::string::npos);
  EXPECT_NE(doc.find(" t_1_state_2 "), std::string::npos);
  // The raw names with illegal characters must not leak into the header.
  EXPECT_EQ(doc.find("t.1"), std::string::npos);
  EXPECT_EQ(doc.find("t-1"), std::string::npos);
}

TEST(VcdSinkTest, EmptyTraceStillRendersHeader) {
  VcdSink vcd;
  vcd.finish(0);
  const std::string& doc = vcd.str();
  EXPECT_EQ(doc.rfind("$date", 0), 0u);
  EXPECT_NE(doc.find("$enddefinitions $end"), std::string::npos);
}

}  // namespace
}  // namespace hicsync::trace
