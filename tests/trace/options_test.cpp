#include "trace/options.h"

#include <gtest/gtest.h>

namespace hicsync::trace {
namespace {

TEST(TraceOptionsTest, ParsesEachKind) {
  TraceOptions opts;
  std::string error;
  EXPECT_TRUE(parse_trace_spec("metrics", opts, &error)) << error;
  EXPECT_TRUE(parse_trace_spec("vcd", opts, &error)) << error;
  EXPECT_TRUE(parse_trace_spec("chrome", opts, &error)) << error;
  EXPECT_TRUE(opts.metrics);
  EXPECT_TRUE(opts.vcd);
  EXPECT_TRUE(opts.chrome);
  EXPECT_TRUE(opts.any());
  EXPECT_TRUE(opts.metrics_out.empty());
  EXPECT_TRUE(opts.vcd_out.empty());
}

TEST(TraceOptionsTest, ParsesOutPath) {
  TraceOptions opts;
  std::string error;
  ASSERT_TRUE(parse_trace_spec("vcd,out=/tmp/x.vcd", opts, &error)) << error;
  EXPECT_TRUE(opts.vcd);
  EXPECT_EQ(opts.vcd_out, "/tmp/x.vcd");
  ASSERT_TRUE(parse_trace_spec("metrics,out=m.json", opts, &error)) << error;
  EXPECT_EQ(opts.metrics_out, "m.json");
}

TEST(TraceOptionsTest, RejectsUnknownKind) {
  TraceOptions opts;
  std::string error;
  EXPECT_FALSE(parse_trace_spec("waveform", opts, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(opts.any());
}

TEST(TraceOptionsTest, RejectsMalformedOption) {
  TraceOptions opts;
  std::string error;
  EXPECT_FALSE(parse_trace_spec("vcd,depth=3", opts, &error));
  EXPECT_FALSE(parse_trace_spec("", opts, &error));
  EXPECT_FALSE(parse_trace_spec("vcd,out=", opts, &error));
}

}  // namespace
}  // namespace hicsync::trace
