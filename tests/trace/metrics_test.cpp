#include "trace/metrics.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "trace/bus.h"

namespace hicsync::trace {
namespace {

TEST(HistogramTest, BucketsSamplesAgainstUpperBounds) {
  Histogram h({2, 4, 8});
  h.record(0);   // < 2
  h.record(1);   // < 2
  h.record(2);   // < 4
  h.record(7);   // < 8
  h.record(8);   // overflow
  h.record(100); // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 2 + 7 + 8 + 100) / 6.0);
}

TEST(HistogramTest, EmptyHistogramIsSafe) {
  Histogram h({10});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_FALSE(h.str().empty());
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
}

TEST(HistogramTest, PercentileWalksCumulativeBuckets) {
  Histogram h({10, 20, 50, 100});
  // 100 samples: 50 in [0,10), 30 in [10,20), 15 in [20,50), 5 in [50,100).
  for (int i = 0; i < 50; ++i) h.record(5);
  for (int i = 0; i < 30; ++i) h.record(15);
  for (int i = 0; i < 15; ++i) h.record(30);
  for (int i = 0; i < 5; ++i) h.record(60);
  // p50 target = 50th sample -> first bucket; its upper bound is 10.
  EXPECT_EQ(h.percentile(50), 10u);
  // p80 target = 80th sample -> second bucket (cumulative 80).
  EXPECT_EQ(h.percentile(80), 20u);
  // p95 target = 95th sample -> third bucket (cumulative 95).
  EXPECT_EQ(h.percentile(95), 50u);
  // p99 lands in the last populated bucket; clamped to observed max 60.
  EXPECT_EQ(h.percentile(99), 60u);
  EXPECT_EQ(h.percentile(100), 60u);
}

TEST(HistogramTest, PercentileClampsToObservedRange) {
  Histogram h({100, 1000});
  h.record(40);
  h.record(42);
  h.record(44);
  // All samples share one bucket with upper bound 100; reported values
  // clamp to the observed [40, 44] rather than the bucket bound.
  EXPECT_EQ(h.percentile(0), 40u);
  EXPECT_EQ(h.percentile(50), 44u);
  EXPECT_EQ(h.percentile(99), 44u);
  EXPECT_EQ(h.percentile(200), 44u);  // out-of-range p treated as 100
}

TEST(HistogramTest, PercentileCoversOverflowBucket) {
  Histogram h({10});
  h.record(5);
  for (int i = 0; i < 9; ++i) h.record(1000 + i);
  // 90% of samples sit in the overflow bucket, whose bound is the max.
  EXPECT_EQ(h.percentile(50), 1008u);
  EXPECT_EQ(h.percentile(5), 10u);  // first bucket, clamped below max
}

TEST(HistogramMerge, IdenticalLayoutsMatchRecomputedFromScratch) {
  const std::vector<std::uint64_t> bounds = {10, 20, 50, 100};
  Histogram shard1(bounds);
  Histogram shard2(bounds);
  Histogram scratch(bounds);  // every sample recorded directly
  const std::vector<std::uint64_t> s1 = {3, 7, 15, 15, 42, 99, 240};
  const std::vector<std::uint64_t> s2 = {1, 12, 30, 60, 60, 75, 500, 501};
  for (std::uint64_t v : s1) {
    shard1.record(v);
    scratch.record(v);
  }
  for (std::uint64_t v : s2) {
    shard2.record(v);
    scratch.record(v);
  }

  shard1.merge(shard2);
  EXPECT_EQ(shard1.count(), scratch.count());
  EXPECT_EQ(shard1.min(), scratch.min());
  EXPECT_EQ(shard1.max(), scratch.max());
  EXPECT_EQ(shard1.sum(), scratch.sum());
  EXPECT_DOUBLE_EQ(shard1.mean(), scratch.mean());
  EXPECT_EQ(shard1.bucket_counts(), scratch.bucket_counts());
  for (double p : {1.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(shard1.percentile(p), scratch.percentile(p)) << "p" << p;
  }
}

TEST(HistogramMerge, EmptyOperandsAreIdentity) {
  Histogram h({10, 20});
  h.record(5);
  h.record(15);
  Histogram empty({10, 20});

  Histogram copy = h;
  copy.merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(copy.bucket_counts(), h.bucket_counts());
  EXPECT_EQ(copy.count(), h.count());
  EXPECT_EQ(copy.min(), h.min());
  EXPECT_EQ(copy.max(), h.max());
  EXPECT_EQ(copy.sum(), h.sum());

  empty.merge(h);  // merging into an empty histogram adopts the samples
  EXPECT_EQ(empty.bucket_counts(), h.bucket_counts());
  EXPECT_EQ(empty.min(), h.min());
  EXPECT_EQ(empty.max(), h.max());
  EXPECT_EQ(empty.percentile(50), h.percentile(50));
}

TEST(HistogramMerge, ForeignLayoutKeepsMomentsExact) {
  Histogram coarse({100, 1000});
  coarse.record(40);
  coarse.record(800);
  Histogram fine({10, 20, 50});
  fine.record(5);
  fine.record(15);
  fine.record(45);
  fine.record(2000);  // overflow in the fine layout

  coarse.merge(fine);
  // The moments fold exactly regardless of layout.
  EXPECT_EQ(coarse.count(), 6u);
  EXPECT_EQ(coarse.min(), 5u);
  EXPECT_EQ(coarse.max(), 2000u);
  EXPECT_EQ(coarse.sum(), 40u + 800u + 5u + 15u + 45u + 2000u);
  // Re-binned placement: the three finite fine samples land < 100, the
  // fine overflow (observed max 2000) lands in coarse's overflow bucket.
  ASSERT_EQ(coarse.bucket_counts().size(), 3u);
  EXPECT_EQ(coarse.bucket_counts()[0], 4u);
  EXPECT_EQ(coarse.bucket_counts()[1], 1u);
  EXPECT_EQ(coarse.bucket_counts()[2], 1u);
}

TEST(HistogramMerge, FromSnapshotRoundTripsTheRegistryRendering) {
  Histogram h({10, 20, 50});
  for (std::uint64_t v : {3u, 14u, 14u, 33u, 75u}) h.record(v);

  Histogram back = Histogram::from_snapshot(h.bounds(), h.bucket_counts(),
                                            h.min(), h.max(), h.sum());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.min(), h.min());
  EXPECT_EQ(back.max(), h.max());
  EXPECT_EQ(back.sum(), h.sum());
  EXPECT_EQ(back.bucket_counts(), h.bucket_counts());
  for (double p : {10.0, 50.0, 95.0, 99.0}) {
    EXPECT_EQ(back.percentile(p), h.percentile(p)) << "p" << p;
  }
  // A snapshot reconstruction merges like the original did.
  Histogram other({10, 20, 50});
  other.record(8);
  Histogram merged_orig = h;
  merged_orig.merge(other);
  back.merge(other);
  EXPECT_EQ(back.bucket_counts(), merged_orig.bucket_counts());
  EXPECT_EQ(back.percentile(50), merged_orig.percentile(50));
}

TEST(MetricsRegistryTest, CountersAndLookup) {
  MetricsRegistry reg;
  reg.counter("a.b").add();
  reg.counter("a.b").add(2);
  EXPECT_EQ(reg.counter("a.b").value(), 3u);
  ASSERT_NE(reg.find_counter("a.b"), nullptr);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  reg.histogram("h", {1, 2}).record(1);
  ASSERT_NE(reg.find_histogram("h"), nullptr);
  EXPECT_NE(reg.text().find("a.b"), std::string::npos);
  EXPECT_NE(reg.json().find("\"a.b\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Reconciliation against a real simulation (the tentpole's acceptance
// criterion): attach a MetricsSink to figure 1 and check that the per-port
// tallies account for every simulated cycle.

struct TracedRun {
  std::unique_ptr<core::CompileResult> result;
  std::unique_ptr<sim::SystemSim> simulator;
  MetricsSink metrics;
  TraceBus bus;
};

std::unique_ptr<TracedRun> run_figure1(sim::OrgKind kind, int passes = 1) {
  auto run = std::make_unique<TracedRun>();
  core::CompileOptions options;
  options.organization = kind;
  run->result = core::Compiler(options).compile(netapp::figure1_source());
  EXPECT_TRUE(run->result->ok()) << run->result->diags().str();
  run->simulator = run->result->make_simulator();
  run->bus.attach(&run->metrics);
  run->simulator->set_trace(&run->bus);
  EXPECT_TRUE(run->simulator->run_until_passes(passes, 10000));
  run->bus.finish(run->simulator->cycle());
  return run;
}

class MetricsReconcile : public ::testing::TestWithParam<sim::OrgKind> {};

TEST_P(MetricsReconcile, PortTalliesAccountForEveryCycle) {
  auto run = run_figure1(GetParam());
  const std::uint64_t cycles = run->simulator->cycle();
  EXPECT_EQ(run->metrics.cycles(), cycles);

  auto ports = run->metrics.port_stats();
  ASSERT_FALSE(ports.empty());
  bool saw_consumer = false;
  bool saw_producer = false;
  for (const PortStats& p : ports) {
    SCOPED_TRACE(p.name());
    // Every in-flight cycle is exactly one of granted/stalled, and a
    // request accompanies each, so the three totals must reconcile.
    EXPECT_EQ(p.requests, p.grants + p.stalls());
    // A pseudo-port cannot be busy more cycles than the simulation ran.
    EXPECT_LE(p.requests, cycles);
    EXPECT_GE(p.utilization_pct(cycles), 0.0);
    EXPECT_LE(p.utilization_pct(cycles), 100.0);
    saw_consumer |= p.port == PortKind::C;
    saw_producer |= p.port == PortKind::D;
  }
  EXPECT_TRUE(saw_consumer);
  EXPECT_TRUE(saw_producer);

  // Figure 1 completes one round: one produce grant, two consumer grants.
  const Counter* produces =
      run->metrics.registry().find_counter("dep.mt1.produces");
  const Counter* consumes =
      run->metrics.registry().find_counter("dep.mt1.consumes");
  ASSERT_NE(produces, nullptr);
  ASSERT_NE(consumes, nullptr);
  EXPECT_GE(produces->value(), 1u);
  EXPECT_GE(consumes->value(), 2u);

  const Histogram* rounds =
      run->metrics.registry().find_histogram("dep.mt1.round_latency");
  ASSERT_NE(rounds, nullptr);
  EXPECT_GE(rounds->count(), 1u);

  EXPECT_GT(run->metrics.occupancy_pct(0), 0.0);
  EXPECT_LE(run->metrics.occupancy_pct(0), 100.0);
}

TEST_P(MetricsReconcile, ReportMentionsUtilizationAndStalls) {
  auto run = run_figure1(GetParam());
  const std::string text = run->metrics.report_text();
  EXPECT_NE(text.find("per-port utilization"), std::string::npos);
  EXPECT_NE(text.find("bram0.C0"), std::string::npos);
  EXPECT_NE(text.find("dep-wait"), std::string::npos);
  const std::string json = run->metrics.report_json();
  EXPECT_NE(json.find("\"cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"ports\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(BothOrgs, MetricsReconcile,
                         ::testing::Values(sim::OrgKind::Arbitrated,
                                           sim::OrgKind::EventDriven));

TEST(MetricsStallAttribution, ArbitratedConsumersWaitOnDependency) {
  auto run = run_figure1(sim::OrgKind::Arbitrated);
  // t2/t3 request before t1 produces: dependency-not-produced stalls must
  // be attributed, and the two consumers' simultaneous requests make the
  // round-robin pick a loser at least once in figure 1.
  std::uint64_t dependency = 0;
  std::uint64_t slot = 0;
  for (const PortStats& p : run->metrics.port_stats()) {
    dependency += p.stall_dependency;
    slot += p.stall_slot;
  }
  EXPECT_GT(dependency, 0u);
  EXPECT_EQ(slot, 0u);  // no schedule slots in the arbitrated organization
}

TEST(MetricsStallAttribution, EventDrivenStallsAreSlotOrDataOnly) {
  auto run = run_figure1(sim::OrgKind::EventDriven);
  std::uint64_t arbitration = 0;
  for (const PortStats& p : run->metrics.port_stats()) {
    arbitration += p.stall_arbitration;
  }
  // The static schedule never arbitrates, so no access can lose an
  // arbitration round.
  EXPECT_EQ(arbitration, 0u);
}

}  // namespace
}  // namespace hicsync::trace
