#include "trace/chrome.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "support/json.h"
#include "trace/bus.h"

namespace hicsync::trace {
namespace {

std::string chrome_for_figure1(sim::OrgKind kind) {
  core::CompileOptions options;
  options.organization = kind;
  auto result = core::Compiler(options).compile(netapp::figure1_source());
  EXPECT_TRUE(result->ok()) << result->diags().str();
  auto simulator = result->make_simulator();
  TraceBus bus;
  ChromeTraceSink chrome;
  bus.attach(&chrome);
  simulator->set_trace(&bus);
  EXPECT_TRUE(simulator->run_until_passes(1, 10000));
  bus.finish(simulator->cycle());
  return chrome.str();
}

// Trace names are identifiers and fixed strings, so no brace/bracket ever
// appears inside a JSON string — balanced counts are a sound check.
void expect_balanced(const std::string& doc) {
  long braces = 0;
  long brackets = 0;
  for (char c : doc) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

class ChromeTraceBothOrgs : public ::testing::TestWithParam<sim::OrgKind> {};

TEST_P(ChromeTraceBothOrgs, DocumentIsWellFormed) {
  const std::string doc = chrome_for_figure1(GetParam());
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  expect_balanced(doc);
  // Track metadata for the thread/port/dependency process groups.
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  // Figure 1's threads and dependency appear as track names.
  EXPECT_NE(doc.find("\"t1\""), std::string::npos);
  EXPECT_NE(doc.find("\"t2\""), std::string::npos);
  EXPECT_NE(doc.find("mt1"), std::string::npos);
  // At least one complete span (FSM state or round) and one instant.
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(BothOrgs, ChromeTraceBothOrgs,
                         ::testing::Values(sim::OrgKind::Arbitrated,
                                           sim::OrgKind::EventDriven));

// Parse the document back with the real JSON parser (not substring
// checks): every traceEvents element carries the schema the viewer needs,
// and instant events stay time-ordered within their (pid, tid) track.
// Complete ('X') spans are emitted at close time with ts = span start, so
// only instants are emission-order monotone.
TEST_P(ChromeTraceBothOrgs, DocumentParsesBackWithOrderedInstants) {
  core::CompileOptions options;
  options.organization = GetParam();
  auto result = core::Compiler(options).compile(netapp::figure1_source());
  ASSERT_TRUE(result->ok()) << result->diags().str();
  auto simulator = result->make_simulator();
  TraceBus bus;
  ChromeTraceSink chrome;
  bus.attach(&chrome);
  simulator->set_trace(&bus);
  ASSERT_TRUE(simulator->run_until_passes(1, 10000));
  const std::uint64_t cycles = simulator->cycle();
  bus.finish(cycles);

  support::JsonValue doc;
  std::string error;
  ASSERT_TRUE(support::parse_json(chrome.str(), &doc, &error)) << error;
  const support::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->elements.empty());

  std::map<std::pair<int, int>, std::uint64_t> last_instant_ts;
  for (const support::JsonValue& e : events->elements) {
    ASSERT_TRUE(e.is_object());
    const support::JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    const std::string& kind = ph->string_value;
    EXPECT_TRUE(kind == "M" || kind == "i" || kind == "X") << kind;
    const support::JsonValue* pid = e.find("pid");
    ASSERT_NE(pid, nullptr);
    ASSERT_TRUE(pid->is_number());
    if (kind == "M") continue;  // metadata carries no timestamp
    const support::JsonValue* tid = e.find("tid");
    ASSERT_NE(tid, nullptr);
    const support::JsonValue* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->is_number());
    const auto t = static_cast<std::uint64_t>(ts->number_value);
    if (kind == "X") {
      const support::JsonValue* dur = e.find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number_value, 1.0);
      EXPECT_LE(t + static_cast<std::uint64_t>(dur->number_value), cycles);
    } else {
      EXPECT_LE(t, cycles);
      const auto track = std::make_pair(
          static_cast<int>(pid->number_value),
          static_cast<int>(tid->number_value));
      auto it = last_instant_ts.find(track);
      if (it != last_instant_ts.end()) {
        EXPECT_GE(t, it->second) << "instants out of order on a track";
      }
      last_instant_ts[track] = t;
    }
  }
}

TEST(ChromeTraceSinkTest, EmptyTraceIsStillValidJson) {
  ChromeTraceSink chrome;
  chrome.finish(0);
  expect_balanced(chrome.str());
  EXPECT_EQ(chrome.str().rfind("{\"traceEvents\":[", 0), 0u);
}

TEST(ChromeTraceSinkTest, StallInstantCarriesCause) {
  ChromeTraceSink chrome;
  Event e;
  e.cycle = 3;
  e.kind = EventKind::PortStall;
  e.cause = StallCause::ArbitrationLoss;
  e.port = PortKind::C;
  e.controller = 0;
  e.pseudo_port = 1;
  e.thread = "t2";
  chrome.on_event(e);
  chrome.finish(4);
  EXPECT_NE(chrome.str().find("arbitration-loss"), std::string::npos);
  EXPECT_NE(chrome.str().find("\"t2\""), std::string::npos);
}

}  // namespace
}  // namespace hicsync::trace
