#include "trace/bus.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace hicsync::trace {
namespace {

// Appends one line per callback to a shared log, so interleaving across
// sinks is observable.
class RecordingSink : public TraceSink {
 public:
  RecordingSink(std::string name, std::vector<std::string>* log)
      : name_(std::move(name)), log_(log) {}

  void on_cycle(std::uint64_t cycle) override {
    log_->push_back(name_ + ".cycle" + std::to_string(cycle));
  }
  void on_event(const Event& e) override {
    log_->push_back(name_ + "." + to_string(e.kind));
  }
  void finish(std::uint64_t final_cycle) override {
    log_->push_back(name_ + ".finish" + std::to_string(final_cycle));
  }

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

Event fsm_event(std::uint64_t cycle) {
  Event e;
  e.cycle = cycle;
  e.kind = EventKind::FsmState;
  e.thread = "t1";
  e.value = 0;
  return e;
}

TEST(TraceBusTest, InactiveWithoutSinksActiveWithOne) {
  TraceBus bus;
  EXPECT_FALSE(bus.active());
  RecordingSink sink("a", nullptr);
  bus.attach(&sink);
  EXPECT_TRUE(bus.active());
  bus.detach(&sink);
  EXPECT_FALSE(bus.active());
}

TEST(TraceBusTest, DispatchesToEverySinkInAttachOrder) {
  std::vector<std::string> log;
  RecordingSink a("a", &log);
  RecordingSink b("b", &log);
  TraceBus bus;
  bus.attach(&a);
  bus.attach(&b);

  bus.begin_cycle(1);
  bus.emit(fsm_event(1));
  bus.finish(1);

  const std::vector<std::string> expected = {
      "a.cycle1",  "b.cycle1",  "a.fsm-state", "b.fsm-state",
      "a.finish1", "b.finish1",
  };
  EXPECT_EQ(log, expected);
}

TEST(TraceBusTest, DetachedSinkReceivesNothingFurtherIncludingFinish) {
  std::vector<std::string> log;
  RecordingSink a("a", &log);
  RecordingSink b("b", &log);
  TraceBus bus;
  bus.attach(&a);
  bus.attach(&b);

  bus.begin_cycle(1);
  bus.emit(fsm_event(1));
  bus.detach(&a);  // mid-run: a must see no later cycle, event, or finish
  bus.begin_cycle(2);
  bus.emit(fsm_event(2));
  bus.finish(2);

  const std::vector<std::string> expected = {
      "a.cycle1", "b.cycle1", "a.fsm-state", "b.fsm-state",
      "b.cycle2", "b.fsm-state", "b.finish2",
  };
  EXPECT_EQ(log, expected);
  EXPECT_TRUE(bus.active());  // b is still attached
}

TEST(TraceBusTest, DetachRemovesEveryAttachmentAndUnknownIsNoOp) {
  std::vector<std::string> log;
  RecordingSink a("a", &log);
  RecordingSink stranger("s", &log);
  TraceBus bus;
  bus.attach(&a);
  bus.attach(&a);  // double attach: both entries must go on detach
  bus.detach(&stranger);  // never attached: must not disturb a
  bus.begin_cycle(1);
  ASSERT_EQ(log.size(), 2u);  // a saw the cycle twice (still attached twice)
  bus.detach(&a);
  EXPECT_FALSE(bus.active());
  bus.finish(1);
  EXPECT_EQ(log.size(), 2u);  // nothing delivered after detach
}

}  // namespace
}  // namespace hicsync::trace
