// The check registry and driver: every check on a minimal hand-built
// offender, result rendering, compiler integration (expectations from the
// BramReport), the examples corpus staying clean under both organizations,
// and the Table 1/2 fan-out programs at 64/256/1024 consumers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "nlint/nlint.h"

namespace hicsync::nlint {
namespace {

using rtl::ebin;
using rtl::econst;
using rtl::emux;
using rtl::enot;
using rtl::eref;
using rtl::Module;
using rtl::RtlOp;

bool has_finding(const NlintResult& r, const std::string& check_id) {
  for (const Finding& f : r.findings) {
    if (f.check_id == check_id) return true;
  }
  return false;
}

std::unique_ptr<core::CompileResult> compile_nlint(const std::string& source,
                                                   sim::OrgKind org) {
  core::CompileOptions opts;
  opts.organization = org;
  opts.nlint.enabled = true;
  opts.source_name = "test.hic";
  core::Compiler compiler(opts);
  return compiler.compile(source);
}

TEST(NlintRegistryTest, EveryCheckHasIdSeverityAndDescription) {
  EXPECT_EQ(check_registry().size(), 10u);
  for (const CheckInfo& c : check_registry()) {
    EXPECT_EQ(std::string(c.id).rfind("nlint-", 0), 0u) << c.id;
    EXPECT_NE(std::string(c.description), "");
    EXPECT_EQ(find_check(c.id), &c);
  }
  EXPECT_EQ(find_check("nlint-no-such-check"), nullptr);
}

TEST(NlintCheckTest, UndrivenNetIsAnError) {
  Module m("t");
  const int ghost = m.add_wire("ghost", 1);
  const int out = m.add_output("out", 1);
  m.assign(out, eref(ghost, 1));
  NlintResult r = run_module(m, NlintOptions{});
  EXPECT_TRUE(has_finding(r, "nlint-undriven-net")) << r.text();
  EXPECT_GT(r.errors(), 0);
}

TEST(NlintCheckTest, MultipleDriversListsEveryDriver) {
  Module m("t");
  const int a = m.add_input("a", 1);
  const int w = m.add_wire("w", 1);
  m.assign(w, eref(a, 1));
  m.assign(w, enot(eref(a, 1)));
  const int out = m.add_output("out", 1);
  m.assign(out, eref(w, 1));
  NlintResult r = run_module(m, NlintOptions{});
  ASSERT_TRUE(has_finding(r, "nlint-multiple-drivers")) << r.text();
  for (const Finding& f : r.findings) {
    if (f.check_id != "nlint-multiple-drivers") continue;
    EXPECT_NE(f.message.find("2 drivers"), std::string::npos) << f.message;
    EXPECT_NE(f.message.find("continuous assign #0"), std::string::npos);
    EXPECT_NE(f.message.find("continuous assign #1"), std::string::npos);
  }
}

TEST(NlintCheckTest, ContPlusSeqDriverConflict) {
  Module m("t");
  const int a = m.add_input("a", 1);
  const int q = m.add_reg("q", 1);
  m.assign(q, eref(a, 1));
  m.seq(q, enot(eref(a, 1)));
  const int out = m.add_output("out", 1);
  m.assign(out, eref(q, 1));
  NlintResult r = run_module(m, NlintOptions{});
  EXPECT_TRUE(has_finding(r, "nlint-multiple-drivers")) << r.text();
}

TEST(NlintCheckTest, UnreadNetIsOnlyANote) {
  Module m("t");
  const int a = m.add_input("a", 1);
  const int orphan = m.add_reg("orphan", 1);
  m.seq(orphan, eref(a, 1));
  NlintResult r = run_module(m, NlintOptions{});
  EXPECT_TRUE(has_finding(r, "nlint-unread-net")) << r.text();
  EXPECT_EQ(r.errors(), 0);  // intentional FF-inventory padding stays legal
  EXPECT_GT(r.notes(), 0);
}

TEST(NlintCheckTest, DeadConeBehindConstantSelect) {
  Module m("t");
  const int a = m.add_input("a", 8);
  const int dead = m.add_wire("dead", 8);
  const int sel = m.add_wire("sel", 1);
  m.assign(dead, enot(eref(a, 8)));
  m.assign(sel, econst(1, 1));
  const int out = m.add_output("out", 8);
  // sel folds to 1: the `dead` arm can never propagate.
  m.assign(out, emux(eref(sel, 1), eref(a, 8), eref(dead, 8)));
  NlintResult r = run_module(m, NlintOptions{});
  ASSERT_TRUE(has_finding(r, "nlint-dead-cone")) << r.text();
  for (const Finding& f : r.findings) {
    if (f.check_id == "nlint-dead-cone") {
      EXPECT_NE(f.message.find("'dead'"), std::string::npos) << f.message;
    }
  }
  EXPECT_EQ(r.errors(), 0);
}

TEST(NlintCheckTest, WidthMismatchOnAssignTarget) {
  Module m("t");
  const int a = m.add_input("a", 8);
  const int out = m.add_output("out", 16);
  m.assign(out, eref(a, 8));
  NlintResult r = run_module(m, NlintOptions{});
  EXPECT_TRUE(has_finding(r, "nlint-width-mismatch")) << r.text();
}

TEST(NlintCheckTest, SliceOutOfBounds) {
  Module m("t");
  const int a = m.add_input("a", 8);
  const int out = m.add_output("out", 4);
  m.assign(out, rtl::eslice(eref(a, 8), 10, 7));  // hi past the msb
  NlintResult r = run_module(m, NlintOptions{});
  EXPECT_TRUE(has_finding(r, "nlint-width-mismatch")) << r.text();
}

TEST(NlintCheckTest, UninitializedFeedbackRegister) {
  Module m("t");
  const int en = m.add_input("en", 1);
  const int q = m.add_reg("q", 4);
  m.seq(q, emux(eref(en, 1), ebin(RtlOp::Add, eref(q, 4), econst(1, 4)),
                eref(q, 4)),
        nullptr, 0, /*has_reset=*/false);
  const int out = m.add_output("out", 4);
  m.assign(out, eref(q, 4));
  NlintResult r = run_module(m, NlintOptions{});
  EXPECT_TRUE(has_finding(r, "nlint-uninitialized-feedback")) << r.text();
  EXPECT_EQ(r.errors(), 0);  // warning severity
}

TEST(NlintCheckTest, NoFeedbackMeansNoResetFinding) {
  Module m("t");
  const int a = m.add_input("a", 4);
  const int q = m.add_reg("q", 4);
  m.seq(q, eref(a, 4), nullptr, 0, /*has_reset=*/false);
  const int out = m.add_output("out", 4);
  m.assign(out, eref(q, 4));
  NlintResult r = run_module(m, NlintOptions{});
  EXPECT_FALSE(has_finding(r, "nlint-uninitialized-feedback")) << r.text();
}

TEST(NlintCheckTest, CensusDriftAgainstExpectations) {
  Module m("t");
  const int a = m.add_input("a", 1);
  const int q = m.add_reg("q", 4);
  m.seq(q, econst(0, 4), eref(a, 1));
  const int out = m.add_output("out", 4);
  m.assign(out, eref(q, 4));
  Expectations exp;
  exp.org = Expectations::Org::Arbitrated;
  exp.ffs = 7;  // the module actually has 4
  NlintResult r = run_module(m, NlintOptions{}, &exp);
  ASSERT_TRUE(has_finding(r, "nlint-census-drift")) << r.text();
  for (const Finding& f : r.findings) {
    if (f.check_id == "nlint-census-drift") {
      EXPECT_NE(f.message.find("netlist has 4"), std::string::npos);
      EXPECT_NE(f.message.find("model expects 7"), std::string::npos);
    }
  }
}

TEST(NlintCheckTest, CheckSelectionFilters) {
  Module m("t");
  const int ghost = m.add_wire("ghost", 1);
  const int out = m.add_output("out", 16);
  m.assign(out, eref(ghost, 1));  // undriven AND width-mismatched
  NlintOptions only_width;
  only_width.checks = {"nlint-width-mismatch"};
  NlintResult r = run_module(m, only_width);
  EXPECT_TRUE(has_finding(r, "nlint-width-mismatch"));
  EXPECT_FALSE(has_finding(r, "nlint-undriven-net"));
}

TEST(NlintResultTest, TextAndJsonRenderFindings) {
  Module m("t");
  const int ghost = m.add_wire("ghost", 1);
  const int out = m.add_output("out", 1);
  m.assign(out, eref(ghost, 1));
  NlintResult r = run_module(m, NlintOptions{});
  EXPECT_NE(r.text().find("nlint-undriven-net"), std::string::npos);
  EXPECT_NE(r.json().find("\"check\":\"nlint-undriven-net\""),
            std::string::npos);
  EXPECT_NE(r.json().find("\"module\":\"t\""), std::string::npos);
}

// --- compiler integration ------------------------------------------------

TEST(NlintCompilerTest, GeneratedControllersAreCleanBothOrgs) {
  const std::string source = netapp::fanout_source(4);
  for (sim::OrgKind org :
       {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
    auto result = compile_nlint(source, org);
    ASSERT_TRUE(result->ok());
    const NlintResult& nr = result->nlint_result();
    EXPECT_EQ(nr.errors(), 0) << nr.text();
    EXPECT_EQ(result->nlint_error_count(), 0u);
    ASSERT_FALSE(nr.modules.empty());
    for (const ModuleSummary& ms : nr.modules) {
      EXPECT_GT(ms.claims_total, 0) << ms.module;
      EXPECT_EQ(ms.claims_proved, ms.claims_total) << nr.text();
      EXPECT_EQ(ms.claims_refuted, 0);
      EXPECT_EQ(ms.claims_inconclusive, 0);
    }
  }
}

TEST(NlintCompilerTest, FindingsFlowIntoDiagnosticsUnderCheckIds) {
  // nlint diagnostics carry their check IDs through the shared engine, so
  // -W style tooling and the JSON diagnostics interface see them.
  auto result = compile_nlint(netapp::fanout_source(2),
                              sim::OrgKind::Arbitrated);
  ASSERT_TRUE(result->ok());
  // A clean compile reports no nlint diagnostics at all.
  EXPECT_EQ(result->diags().check_count("nlint-comb-loop"), 0u);
  EXPECT_EQ(result->nlint_error_count(), 0u);
}

TEST(NlintCompilerTest, ComposesWithLintOnly) {
  // --lint-only --nlint: verification is skipped but the controllers are
  // still generated so the netlist pass can run.
  core::CompileOptions opts;
  opts.nlint.enabled = true;
  opts.lint.enabled = true;
  opts.lint.only = true;
  opts.verify.enabled = true;  // must be skipped under lint-only
  core::Compiler compiler(opts);
  auto result = compiler.compile(netapp::fanout_source(2));
  ASSERT_TRUE(result->ok());
  EXPECT_FALSE(result->nlint_result().modules.empty());
  EXPECT_TRUE(result->verify_results().empty());
}

TEST(NlintCompilerTest, ExamplesCorpusCleanBothOrgs) {
  int examples = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(HICSYNC_EXAMPLES_DIR)) {
    if (entry.path().extension() != ".hic") continue;
    ++examples;
    std::ifstream in(entry.path());
    std::stringstream ss;
    ss << in.rdbuf();
    for (sim::OrgKind org :
         {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
      auto result = compile_nlint(ss.str(), org);
      ASSERT_TRUE(result->ok()) << entry.path();
      const NlintResult& nr = result->nlint_result();
      EXPECT_EQ(nr.errors(), 0) << entry.path() << "\n" << nr.text();
      EXPECT_EQ(nr.claims_inconclusive(), 0)
          << entry.path() << "\n" << nr.text();
    }
  }
  EXPECT_GT(examples, 0);
}

class NlintScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(NlintScalingTest, FanoutProvedAtEveryWidth) {
  const int n = GetParam();
  const std::string source = netapp::fanout_source(n);
  for (sim::OrgKind org :
       {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
    auto result = compile_nlint(source, org);
    ASSERT_TRUE(result->ok());
    const NlintResult& nr = result->nlint_result();
    EXPECT_EQ(nr.errors(), 0) << n << "\n" << nr.text();
    ASSERT_EQ(nr.modules.size(), 1u);
    // Every claim settled — comb-loop freedom, single grant, width
    // consistency and the census all hold at every fan-out width, with
    // no claim left to an inconclusive verdict.
    EXPECT_EQ(nr.modules[0].claims_proved, nr.modules[0].claims_total) << n;
    EXPECT_EQ(nr.modules[0].claims_inconclusive, 0) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, NlintScalingTest,
                         ::testing::Values(64, 256, 1024));

}  // namespace
}  // namespace hicsync::nlint
