// The bounded one-hot prover on hand-built cones: implication proofs,
// enumeration fallback (both outcomes), case splitting, and the
// inconclusive boundary when a pair's support outgrows the budget.
#include <gtest/gtest.h>

#include "nlint/netgraph.h"
#include "nlint/onehot.h"

namespace hicsync::nlint {
namespace {

using rtl::ebin;
using rtl::econst;
using rtl::emux;
using rtl::enot;
using rtl::eref;
using rtl::Module;
using rtl::RtlOp;

TEST(OneHotTest, DecoderProvedByImplication) {
  Module m("t");
  const int sel = m.add_input("sel", 2);
  std::vector<int> outs;
  for (int i = 0; i < 4; ++i) {
    const int o = m.add_wire("dec" + std::to_string(i), 1);
    m.assign(o, ebin(RtlOp::Eq, eref(sel, 2), econst(
                         static_cast<std::uint64_t>(i), 2)));
    outs.push_back(o);
  }
  NetGraph g(m);
  OneHotOutcome r = prove_onehot(g, outs);
  EXPECT_EQ(r.status, OneHotStatus::Proved);
  EXPECT_EQ(r.pairs_total, 6);
  EXPECT_EQ(r.pairs_by_implication, 6);
  EXPECT_EQ(r.pairs_by_enumeration, 0);
}

TEST(OneHotTest, ComplementaryGatesProvedByImplication) {
  Module m("t");
  const int c = m.add_input("c", 1);
  const int a = m.add_input("a", 1);
  const int g0 = m.add_wire("g0", 1);
  const int g1 = m.add_wire("g1", 1);
  m.assign(g0, ebin(RtlOp::And, eref(c, 1), eref(a, 1)));
  m.assign(g1, ebin(RtlOp::And, enot(eref(c, 1)), eref(a, 1)));
  NetGraph g(m);
  OneHotOutcome r = prove_onehot(g, {g0, g1});
  EXPECT_EQ(r.status, OneHotStatus::Proved);
  EXPECT_EQ(r.pairs_by_implication, 1);
}

TEST(OneHotTest, DisjointRangesProvedByEnumeration) {
  Module m("t");
  const int x = m.add_input("x", 3);
  const int lo = m.add_wire("lo", 1);
  const int hit = m.add_wire("hit", 1);
  // Lt derives no backward facts, so implication alone cannot separate
  // these; the 3-bit support falls inside the enumeration budget.
  m.assign(lo, ebin(RtlOp::Lt, eref(x, 3), econst(2, 3)));
  m.assign(hit, ebin(RtlOp::Eq, eref(x, 3), econst(5, 3)));
  NetGraph g(m);
  OneHotOutcome r = prove_onehot(g, {lo, hit});
  EXPECT_EQ(r.status, OneHotStatus::Proved);
  EXPECT_EQ(r.pairs_by_enumeration, 1);
}

TEST(OneHotTest, OverlapFoundByEnumerationWithWitness) {
  Module m("t");
  const int a = m.add_input("a", 1);
  const int b = m.add_input("b", 1);
  const int s0 = m.add_wire("s0", 1);
  const int s1 = m.add_wire("s1", 1);
  m.assign(s0, eref(a, 1));
  m.assign(s1, ebin(RtlOp::And, eref(a, 1), eref(b, 1)));
  NetGraph g(m);
  OneHotOutcome r = prove_onehot(g, {s0, s1});
  ASSERT_EQ(r.status, OneHotStatus::Violation);
  EXPECT_EQ(r.net_a, s0);
  EXPECT_EQ(r.net_b, s1);
  // The witness is a concrete assignment of the cone's free inputs.
  EXPECT_NE(r.witness.find("a=1"), std::string::npos) << r.witness;
  EXPECT_NE(r.witness.find("b=1"), std::string::npos) << r.witness;
}

TEST(OneHotTest, MuxSelectCaseSplitDischargesBothBranches) {
  Module m("t");
  const int mode = m.add_input("mode", 1);
  const int r0 = m.add_input("r0", 1);
  const int r1 = m.add_input("r1", 1);
  // grant0 = mode ? r0 : r0&!r1;  grant1 = mode ? !r0&r1 : r1&!r0.
  // Under either value of `mode` the pair is exclusive, but no single
  // implication pass covers both arms — the prover must split on `mode`.
  const int g0 = m.add_wire("g0", 1);
  const int g1 = m.add_wire("g1", 1);
  m.assign(g0, emux(eref(mode, 1), eref(r0, 1),
                    ebin(RtlOp::And, eref(r0, 1), enot(eref(r1, 1)))));
  m.assign(g1, emux(eref(mode, 1),
                    ebin(RtlOp::And, enot(eref(r0, 1)), eref(r1, 1)),
                    ebin(RtlOp::And, eref(r1, 1), enot(eref(r0, 1)))));
  NetGraph g(m);
  OneHotOutcome r = prove_onehot(g, {g0, g1});
  EXPECT_EQ(r.status, OneHotStatus::Proved);
}

TEST(OneHotTest, DuplicateMemberIsAnImmediateViolation) {
  Module m("t");
  const int a = m.add_input("a", 1);
  const int s = m.add_wire("s", 1);
  m.assign(s, eref(a, 1));
  NetGraph g(m);
  OneHotOutcome r = prove_onehot(g, {s, s});
  ASSERT_EQ(r.status, OneHotStatus::Violation);
  EXPECT_NE(r.witness.find("listed twice"), std::string::npos) << r.witness;
}

TEST(OneHotTest, WideFreeSupportIsInconclusive) {
  Module m("t");
  const int x = m.add_input("x", 16);
  const int y = m.add_input("y", 16);
  const int s0 = m.add_wire("s0", 1);
  const int s1 = m.add_wire("s1", 1);
  // ReduceOr yields no backward facts and the pair's support is 32 free
  // bits — beyond the default 14-bit enumeration budget.
  m.assign(s0, ebin(RtlOp::Eq, eref(x, 16), eref(y, 16)));
  m.assign(s1, ebin(RtlOp::Ne, eref(x, 16), econst(3, 16)));
  NetGraph g(m);
  OneHotOutcome r = prove_onehot(g, {s0, s1});
  EXPECT_EQ(r.status, OneHotStatus::Inconclusive);
}

TEST(OneHotTest, RaisedEnumBudgetSettlesIt) {
  Module m("t");
  const int x = m.add_input("x", 8);
  const int s0 = m.add_wire("s0", 1);
  const int s1 = m.add_wire("s1", 1);
  m.assign(s0, ebin(RtlOp::Lt, eref(x, 8), econst(16, 8)));
  m.assign(s1, ebin(RtlOp::Lt, econst(200, 8), eref(x, 8)));
  NetGraph g(m);
  OneHotOptions tight;
  tight.max_enum_bits = 4;
  EXPECT_EQ(prove_onehot(g, {s0, s1}, tight).status,
            OneHotStatus::Inconclusive);
  OneHotOptions wide;
  wide.max_enum_bits = 8;
  EXPECT_EQ(prove_onehot(g, {s0, s1}, wide).status, OneHotStatus::Proved);
}

}  // namespace
}  // namespace hicsync::nlint
