// Golden verdicts for the seeded netlist-bug fixtures: every fixture must
// trip exactly its named check, with the witness the defect was seeded to
// produce (cycle path, conflicting drivers, overlapping-select
// assignment).
#include <gtest/gtest.h>

#include <string>

#include "nlint/nlint.h"
#include "nlint/seeded.h"

namespace hicsync::nlint {
namespace {

const Finding* first_finding(const NlintResult& r,
                             const std::string& check_id) {
  for (const Finding& f : r.findings) {
    if (f.check_id == check_id) return &f;
  }
  return nullptr;
}

NlintResult run_fixture(const char* name, rtl::Design& design) {
  const rtl::Module& m = build_seeded_bug(design, name);
  return run_module(m, NlintOptions{});
}

TEST(SeededBugTest, EveryFixtureTripsItsNamedCheck) {
  for (const SeededBug& bug : seeded_bugs()) {
    rtl::Design design;
    NlintResult r = run_fixture(bug.name, design);
    EXPECT_NE(first_finding(r, bug.check_id), nullptr)
        << bug.name << " must trip " << bug.check_id << "\n"
        << r.text();
  }
}

TEST(SeededBugTest, CatalogueLookup) {
  EXPECT_GE(seeded_bugs().size(), 6u);
  const SeededBug* b = find_seeded_bug("comb-loop");
  ASSERT_NE(b, nullptr);
  EXPECT_STREQ(b->check_id, "nlint-comb-loop");
  EXPECT_EQ(find_seeded_bug("not-a-fixture"), nullptr);
  rtl::Design design;
  EXPECT_THROW(build_seeded_bug(design, "not-a-fixture"),
               std::invalid_argument);
}

TEST(SeededBugTest, CombLoopWitnessNamesTheCycle) {
  rtl::Design design;
  NlintResult r = run_fixture("comb-loop", design);
  const Finding* f = first_finding(r, "nlint-comb-loop");
  ASSERT_NE(f, nullptr) << r.text();
  // The witness walks the actual cycle: a -> b -> a (in either rotation).
  EXPECT_NE(f->message.find(" -> "), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("a"), std::string::npos);
  EXPECT_NE(f->message.find("b"), std::string::npos);
  EXPECT_GT(r.errors(), 0);
}

TEST(SeededBugTest, DoubleDrivenGrantListsBothDrivers) {
  rtl::Design design;
  NlintResult r = run_fixture("double-driven-grant", design);
  const Finding* f = first_finding(r, "nlint-multiple-drivers");
  ASSERT_NE(f, nullptr) << r.text();
  EXPECT_NE(f->message.find("'grant'"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("2 drivers"), std::string::npos) << f->message;
  EXPECT_GT(r.errors(), 0);
}

TEST(SeededBugTest, OverlappingOnehotGivesConcreteAssignment) {
  rtl::Design design;
  NlintResult r = run_fixture("overlapping-onehot", design);
  const Finding* f = first_finding(r, "nlint-onehot-violation");
  ASSERT_NE(f, nullptr) << r.text();
  // The prover's enumeration fallback found the overlapping request
  // pattern and reports it as a concrete input assignment.
  EXPECT_NE(f->message.find("req0=1"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("req1=1"), std::string::npos) << f->message;
  ASSERT_EQ(r.modules.size(), 1u);
  EXPECT_EQ(r.modules[0].claims_refuted, 1);
  EXPECT_GT(r.errors(), 0);
}

TEST(SeededBugTest, WidthTruncatingMuxArmNamesBothWidths) {
  rtl::Design design;
  NlintResult r = run_fixture("width-truncating-mux-arm", design);
  const Finding* f = first_finding(r, "nlint-width-mismatch");
  ASSERT_NE(f, nullptr) << r.text();
  EXPECT_NE(f->message.find("8-bit"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("16-bit"), std::string::npos) << f->message;
  EXPECT_GT(r.errors(), 0);
}

TEST(SeededBugTest, UndrivenNetNamesTheGhost) {
  rtl::Design design;
  NlintResult r = run_fixture("undriven-net", design);
  const Finding* f = first_finding(r, "nlint-undriven-net");
  ASSERT_NE(f, nullptr) << r.text();
  EXPECT_NE(f->message.find("'ghost'"), std::string::npos) << f->message;
  EXPECT_GT(r.errors(), 0);
}

TEST(SeededBugTest, NoResetFeedbackIsAWarningNotAnError) {
  rtl::Design design;
  NlintResult r = run_fixture("no-reset-feedback", design);
  const Finding* f = first_finding(r, "nlint-uninitialized-feedback");
  ASSERT_NE(f, nullptr) << r.text();
  EXPECT_NE(f->message.find("'r'"), std::string::npos) << f->message;
  EXPECT_EQ(r.errors(), 0);
  EXPECT_GT(r.warnings(), 0);
}

}  // namespace
}  // namespace hicsync::nlint
