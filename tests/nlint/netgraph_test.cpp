// NetGraph: the shared structural index — driver/reader inventory,
// combinational-cycle detection with ordered witnesses, constant folding
// and cone-support queries.
#include <gtest/gtest.h>

#include "nlint/netgraph.h"

namespace hicsync::nlint {
namespace {

using rtl::ebin;
using rtl::econst;
using rtl::emux;
using rtl::enot;
using rtl::eref;
using rtl::Module;
using rtl::RtlOp;

TEST(NetGraphTest, DriverAndReaderInventory) {
  Module m("t");
  const int a = m.add_input("a", 1);
  const int b = m.add_wire("b", 1);
  const int q = m.add_reg("q", 1);
  const int out = m.add_output("out", 1);
  m.assign(b, eref(a, 1));
  m.seq(q, eref(b, 1), eref(a, 1));
  m.assign(out, ebin(RtlOp::And, eref(q, 1), eref(b, 1)));

  NetGraph g(m);
  EXPECT_TRUE(g.info(a).is_input);
  EXPECT_EQ(g.info(a).reads, 2);  // b's driver and q's enable
  EXPECT_EQ(g.info(b).cont_drivers.size(), 1u);
  EXPECT_EQ(g.info(b).reads, 2);  // q's next-state and out's driver
  EXPECT_EQ(g.info(q).seq_drivers.size(), 1u);
  EXPECT_TRUE(g.info(out).is_output);
  EXPECT_TRUE(g.driven(b));
  EXPECT_TRUE(g.driven(q));
  EXPECT_NE(g.comb_driver(b), nullptr);
  EXPECT_EQ(g.comb_driver(q), nullptr);
}

TEST(NetGraphTest, UndrivenWireReported) {
  Module m("t");
  const int ghost = m.add_wire("ghost", 1);
  const int out = m.add_output("out", 1);
  m.assign(out, eref(ghost, 1));
  NetGraph g(m);
  EXPECT_FALSE(g.driven(ghost));
  EXPECT_EQ(g.info(ghost).reads, 1);
}

TEST(NetGraphTest, CombCycleWitnessOrdered) {
  Module m("t");
  const int c = m.add_input("c", 1);
  const int a = m.add_wire("a", 1);
  const int b = m.add_wire("b", 1);
  m.assign(a, ebin(RtlOp::And, eref(b, 1), eref(c, 1)));
  m.assign(b, eref(a, 1));
  NetGraph g(m);
  ASSERT_EQ(g.comb_cycles().size(), 1u);
  const std::vector<int>& cycle = g.comb_cycles()[0];
  ASSERT_EQ(cycle.size(), 2u);
  // The witness walks real edges: each net's driver reads its predecessor.
  EXPECT_TRUE((cycle[0] == a && cycle[1] == b) ||
              (cycle[0] == b && cycle[1] == a));
  EXPECT_TRUE(g.on_comb_cycle(a));
  EXPECT_TRUE(g.on_comb_cycle(b));
  EXPECT_FALSE(g.on_comb_cycle(c));
}

TEST(NetGraphTest, SelfEdgeIsACycle) {
  Module m("t");
  const int a = m.add_wire("a", 1);
  m.assign(a, enot(eref(a, 1)));  // a classic ring-oscillator bit
  NetGraph g(m);
  ASSERT_EQ(g.comb_cycles().size(), 1u);
  EXPECT_EQ(g.comb_cycles()[0], std::vector<int>{a});
}

TEST(NetGraphTest, RegisterBreaksTheLoop) {
  Module m("t");
  const int q = m.add_reg("q", 1);
  const int a = m.add_wire("a", 1);
  m.assign(a, enot(eref(q, 1)));
  m.seq(q, eref(a, 1));
  NetGraph g(m);
  EXPECT_TRUE(g.comb_cycles().empty());
}

TEST(NetGraphTest, ConstantFolding) {
  Module m("t");
  const int x = m.add_input("x", 4);
  const int zero = m.add_wire("zero", 4);
  const int gated = m.add_wire("gated", 4);
  const int free = m.add_wire("free", 4);
  m.assign(zero, econst(0, 4));
  // x & 0 folds even though x is free (short-circuit through And).
  m.assign(gated, ebin(RtlOp::And, eref(x, 4), eref(zero, 4)));
  m.assign(free, ebin(RtlOp::Or, eref(x, 4), eref(zero, 4)));
  NetGraph g(m);
  EXPECT_EQ(g.const_value(zero), std::uint64_t{0});
  EXPECT_EQ(g.const_value(gated), std::uint64_t{0});
  EXPECT_FALSE(g.const_value(free).has_value());
  EXPECT_FALSE(g.const_value(x).has_value());
}

TEST(NetGraphTest, MuxWithEqualConstArmsFolds) {
  Module m("t");
  const int sel = m.add_input("sel", 1);
  const int w = m.add_wire("w", 8);
  m.assign(w, emux(eref(sel, 1), econst(7, 8), econst(7, 8)));
  NetGraph g(m);
  EXPECT_EQ(g.const_value(w), std::uint64_t{7});
}

TEST(NetGraphTest, ConeSupportFindsTerminals) {
  Module m("t");
  const int a = m.add_input("a", 1);
  const int q = m.add_reg("q", 1);
  const int mid = m.add_wire("mid", 1);
  const int top = m.add_wire("top", 1);
  m.seq(q, eref(a, 1));
  m.assign(mid, ebin(RtlOp::And, eref(a, 1), eref(q, 1)));
  m.assign(top, enot(eref(mid, 1)));
  NetGraph g(m);
  // The cone of `top` bottoms out at the input and the register — the
  // wire `mid` is expanded through, the register is not.
  std::vector<int> expected = {a, q};
  EXPECT_EQ(g.cone_support({top}), expected);
}

}  // namespace
}  // namespace hicsync::nlint
