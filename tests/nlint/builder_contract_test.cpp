// Contract tests for the rtl::builder primitives, driven through the new
// checker: every claim a builder records must be provable on the netlist
// it just built (decoder exclusivity, round-robin single-grant,
// fixed-priority exclusivity), the round-robin pointer must actually
// rotate in simulation, and the mux builders must propagate widths
// cleanly.
#include <gtest/gtest.h>

#include <set>

#include "nlint/netgraph.h"
#include "nlint/nlint.h"
#include "nlint/onehot.h"
#include "rtl/builder.h"
#include "rtl/eval.h"

namespace hicsync::nlint {
namespace {

using rtl::econst;
using rtl::eref;
using rtl::Module;
using rtl::RtlExprPtr;

std::vector<int> add_request_inputs(Module& m, int n) {
  std::vector<int> reqs;
  for (int i = 0; i < n; ++i) {
    reqs.push_back(m.add_input("req" + std::to_string(i), 1));
  }
  return reqs;
}

TEST(BuilderContractTest, DecoderClaimRecordedAndProved) {
  Module m("t");
  const int sel = m.add_input("sel", 3);
  std::vector<int> outs = rtl::build_decoder(m, sel, 8, "dec");
  ASSERT_EQ(m.onehot_claims().size(), 1u);
  EXPECT_EQ(m.onehot_claims()[0].nets, outs);
  EXPECT_NE(m.onehot_claims()[0].origin.find("decoder"), std::string::npos);

  NetGraph g(m);
  OneHotOutcome r = prove_onehot(g, outs);
  EXPECT_EQ(r.status, OneHotStatus::Proved);
  EXPECT_EQ(r.pairs_total, 28);
}

TEST(BuilderContractTest, RoundRobinSingleGrantProved) {
  Module m("t");
  std::vector<int> reqs = add_request_inputs(m, 8);
  rtl::ArbiterNets arb = rtl::build_round_robin_arbiter(m, reqs, "arb");
  // The builder claims its own grants; the prover must discharge it —
  // this needs the hi/lo case split on the rotating-priority boundary.
  ASSERT_FALSE(m.onehot_claims().empty());
  NetGraph g(m);
  OneHotOutcome r = prove_onehot(g, arb.grant);
  EXPECT_EQ(r.status, OneHotStatus::Proved) << r.witness << " " << r.detail;
  EXPECT_GT(r.cases_used, 1) << "rotating priority needs a case split";
}

TEST(BuilderContractTest, RoundRobinPointerRotatesUnderContention) {
  Module m("t");
  std::vector<int> reqs = add_request_inputs(m, 4);
  rtl::ArbiterNets arb = rtl::build_round_robin_arbiter(m, reqs, "arb");
  // Keep the grants observable and the module validate()-clean.
  for (int i = 0; i < 4; ++i) {
    const int o = m.add_output("g" + std::to_string(i), 1);
    m.assign(o, eref(arb.grant[static_cast<std::size_t>(i)], 1));
  }

  rtl::ModuleSim sim(m);
  sim.reset();
  for (int i = 0; i < 4; ++i) {
    sim.set_input("req" + std::to_string(i), 1);
  }
  std::set<int> winners;
  for (int cycle = 0; cycle < 4; ++cycle) {
    sim.settle();
    int granted = -1;
    int count = 0;
    for (int i = 0; i < 4; ++i) {
      if (sim.get("g" + std::to_string(i)) != 0) {
        granted = i;
        ++count;
      }
    }
    EXPECT_EQ(count, 1) << "cycle " << cycle;
    winners.insert(granted);
    sim.step();  // commits the pointer past the winner
  }
  // Under full contention every requester wins exactly once per 4 cycles:
  // the pointer rotation is what makes the arbiter fair.
  EXPECT_EQ(winners.size(), 4u);
}

TEST(BuilderContractTest, FixedPriorityExclusivityProved) {
  Module m("t");
  std::vector<int> reqs = add_request_inputs(m, 6);
  std::vector<int> grants = rtl::build_fixed_priority(m, reqs, "prio");
  ASSERT_FALSE(m.onehot_claims().empty());
  NetGraph g(m);
  OneHotOutcome r = prove_onehot(g, grants);
  EXPECT_EQ(r.status, OneHotStatus::Proved) << r.witness << " " << r.detail;
  // The none-above chains contradict directly; no case split needed.
  EXPECT_EQ(r.pairs_by_enumeration, 0);
}

TEST(BuilderContractTest, MuxTreeWidthPropagation) {
  Module m("t");
  const int sel = m.add_input("sel", 2);
  std::vector<RtlExprPtr> inputs;
  for (int i = 0; i < 3; ++i) {  // non-power-of-two: last input repeats
    inputs.push_back(eref(m.add_input("v" + std::to_string(i), 8), 8));
  }
  RtlExprPtr tree = rtl::build_mux_tree(m, sel, std::move(inputs));
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->width, 8);
  const int out = m.add_output("out", 8);
  m.assign(out, std::move(tree));

  NlintOptions opts;
  opts.checks = {"nlint-width-mismatch"};
  NlintResult result = run_module(m, opts);
  EXPECT_TRUE(result.findings.empty()) << result.text();
}

TEST(BuilderContractTest, OnehotMuxClaimsItsSelectsAndKeepsWidths) {
  Module m("t");
  const int sel = m.add_input("sel", 2);
  std::vector<int> selects = rtl::build_decoder(m, sel, 4, "sel_dec");
  std::vector<RtlExprPtr> values;
  for (int i = 0; i < 4; ++i) {
    values.push_back(eref(m.add_input("v" + std::to_string(i), 16), 16));
  }
  RtlExprPtr mux = rtl::build_onehot_mux(m, selects, std::move(values), 16);
  EXPECT_EQ(mux->width, 16);
  const int out = m.add_output("out", 16);
  m.assign(out, std::move(mux));

  // Two claims now: the decoder's and the mux's (same nets, different
  // origin — deduplicated on the net set).
  EXPECT_EQ(m.onehot_claims().size(), 1u);

  NlintResult result = run_module(m, NlintOptions{});
  EXPECT_EQ(result.errors(), 0) << result.text();
  ASSERT_EQ(result.modules.size(), 1u);
  EXPECT_EQ(result.modules[0].claims_proved, result.modules[0].claims_total);
}

}  // namespace
}  // namespace hicsync::nlint
