// The interval lattice underneath every hic-bound client: ordering, join,
// widening, and the saturating arithmetic that keeps 1024-consumer
// products sound instead of wrapped.
#include <gtest/gtest.h>

#include "bound/lattice.h"

namespace hicsync::bound {
namespace {

TEST(LatticeTest, DefaultIsBottomAndJoinIsLub) {
  Interval b;
  EXPECT_TRUE(b.is_bottom());
  EXPECT_FALSE(b.contains(0));

  Interval x = Interval::exact(3);
  EXPECT_TRUE(x.contains(3));
  EXPECT_FALSE(x.contains(2));

  // bottom ⊔ x = x, and joining reports whether anything changed.
  EXPECT_TRUE(b.join_with(x));
  EXPECT_EQ(b, x);
  EXPECT_FALSE(b.join_with(x));

  Interval y = Interval::range(1, 5);
  EXPECT_TRUE(b.join_with(y));
  EXPECT_EQ(b, Interval::range(1, 5));
  EXPECT_TRUE(Interval::range(1, 5).contains(Interval::exact(3)));
  EXPECT_FALSE(Interval::exact(3).contains(Interval::range(1, 5)));
}

TEST(LatticeTest, WideningJumpsToExtremes) {
  // A growing upper bound widens to infinity; a shrinking lower bound
  // widens to zero — the classic interval widening that forces loop
  // fixpoints to converge.
  Interval x = Interval::range(1, 2);
  x.widen_with(Interval::range(1, 3));
  EXPECT_EQ(x.lo, 1u);
  EXPECT_EQ(x.hi, kInf);

  Interval y = Interval::range(2, 4);
  y.widen_with(Interval::range(1, 4));
  EXPECT_EQ(y.lo, 0u);
  EXPECT_EQ(y.hi, 4u);

  // Stable bounds stay put.
  Interval z = Interval::range(0, 7);
  z.widen_with(Interval::range(0, 7));
  EXPECT_EQ(z, Interval::range(0, 7));
}

TEST(LatticeTest, SaturatingArithmeticNeverWraps) {
  EXPECT_EQ(sat_add(kInf, 1), kInf);
  EXPECT_EQ(sat_add(kInf - 1, 1), kInf);
  EXPECT_EQ(sat_add(2, 3), 5u);
  EXPECT_EQ(sat_mul(kInf, 2), kInf);
  EXPECT_EQ(sat_mul(1ull << 40, 1ull << 40), kInf);
  EXPECT_EQ(sat_mul(6, 7), 42u);
  EXPECT_EQ(sat_mul(kInf, 0), 0u);

  Interval x = Interval::range(0, kInf);
  Interval y = x.plus(1);
  EXPECT_EQ(y.lo, 1u);
  EXPECT_EQ(y.hi, kInf);
}

TEST(LatticeTest, AffineCounterCountdownRange) {
  // countdown = N*rounds - drains clamped to [0, N]: a dependency whose
  // produce can never run pins the countdown at 0, any live one spans the
  // full [0, N].
  AffineCounter dead;
  dead.scale = 4;
  dead.rounds = Interval::exact(0);
  dead.drains = Interval::exact(0);
  EXPECT_EQ(dead.countdown(), Interval::exact(0));

  AffineCounter live;
  live.scale = 4;
  live.rounds = Interval::range(0, kInf);
  live.drains = Interval::range(0, 4);
  EXPECT_EQ(live.countdown(), Interval::range(0, 4));
}

}  // namespace
}  // namespace hicsync::bound
