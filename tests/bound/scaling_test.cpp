// The scaling claim behind hic-bound: on the Table 1/2 fan-out programs
// (1 producer × N consumers) the abstract interpretation completes and
// proves every bound at N where hic-verify's exact enumeration exhausts
// any reasonable state budget.
#include <gtest/gtest.h>

#include "bound/bound.h"
#include "bound_test_util.h"
#include "netapp/scenarios.h"
#include "verify/checker.h"

namespace hicsync::bound {
namespace {

using bound_test::bound_source;
using bound_test::compile_for_bound;

class ScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(ScalingTest, FanoutBoundsProvedAtEveryWidth) {
  const int n = GetParam();
  auto c = compile_for_bound(netapp::fanout_source(n), "fanout.hic");
  ASSERT_TRUE(c->ok());
  for (sim::OrgKind org :
       {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
    BoundResult r = bound_source(*c, org);
    EXPECT_TRUE(r.all_within_capacity()) << n;
    EXPECT_TRUE(r.all_blocking_bounded()) << n;
    // One endpoint per consumer; all of them analyzed, none sampled.
    std::size_t endpoints = 0;
    for (const BlockingStaticBound& b : r.blocking) {
      endpoints += b.consumer >= 0 ? 1 : 0;
      EXPECT_TRUE(b.bounded);
    }
    EXPECT_GE(endpoints, static_cast<std::size_t>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ScalingTest, ::testing::Values(64, 256, 1024));

TEST(ScalingTest, VerifyBudgetExhaustedWhereBoundCompletes) {
  // The acceptance witness: on the very program hic-bound just proved,
  // the exact checker cannot finish within a generous state budget.
  auto c = compile_for_bound(netapp::fanout_source(1024), "fanout1024.hic");
  ASSERT_TRUE(c->ok());

  verify::VerifyOptions vopts;
  vopts.enabled = true;
  vopts.max_states = 20000;
  vopts.bounds = false;  // the transition graph would only add memory
  verify::VerifyResult ex =
      verify::run_verify(c->program(), c->sema(), c->memory_map(),
                         c->port_plans(), sim::OrgKind::Arbitrated, vopts);
  EXPECT_FALSE(ex.complete);
  EXPECT_EQ(ex.budget, "states");
  EXPECT_EQ(ex.deadlock_free, verify::Verdict::Inconclusive);

  // ...while the static analysis proves the same properties outright.
  BoundResult st = bound_source(*c, sim::OrgKind::Arbitrated);
  EXPECT_TRUE(st.all_within_capacity());
  EXPECT_TRUE(st.all_blocking_bounded());
}

}  // namespace
}  // namespace hicsync::bound
