// Shared helpers for the hic-bound test suites: fixture loading and a
// front-end-only compile (parse/sema/allocation/port planning) that yields
// the artifacts run_bound consumes.
#pragma once

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bound/bound.h"
#include "core/compiler.h"

namespace hicsync::bound_test {

inline std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

inline std::string lint_fixture_path(const std::string& name) {
  return std::string(LINT_FIXTURE_DIR) + "/" + name;
}

inline std::string verify_fixture_path(const std::string& name) {
  return std::string(VERIFY_FIXTURE_DIR) + "/" + name;
}

inline std::string example_path(const std::string& name) {
  return std::string(HICSYNC_EXAMPLES_DIR) + "/" + name;
}

/// Compiles `source` far enough for run_bound: front end + allocation +
/// port planning (lint-only mode skips RTL generation, which the clients
/// do not need).
inline std::unique_ptr<core::CompileResult> compile_for_bound(
    const std::string& source, const std::string& name = "test.hic") {
  core::CompileOptions options;
  options.lint.enabled = true;
  options.lint.only = true;
  options.source_name = name;
  core::Compiler compiler(options);
  auto result = compiler.compile(source);
  EXPECT_TRUE(result->ok()) << result->diags().str();
  return result;
}

inline bound::BoundResult bound_source(const core::CompileResult& c,
                                       sim::OrgKind org,
                                       bound::BoundOptions opts = {}) {
  opts.enabled = true;
  return bound::run_bound(c.program(), c.sema(), c.memory_map(),
                          c.port_plans(), org, opts);
}

}  // namespace hicsync::bound_test
