// hic-bound end-to-end behavior: occupancy within capacity on the shipped
// examples, dead-dependency detection and the sizing-hint pruning loop,
// counter precision on straight-line threads, widening in loops, and the
// diagnostic surface (bound-* check IDs, exit-code mapping).
#include <gtest/gtest.h>

#include "bound/bound.h"
#include "bound_test_util.h"
#include "core/compiler.h"
#include "memalloc/sizing.h"

namespace hicsync::bound {
namespace {

using bound_test::bound_source;
using bound_test::compile_for_bound;
using bound_test::example_path;
using bound_test::read_file;

const char* kExamples[] = {"fig1.hic", "pipeline.hic", "stress8.hic",
                           "stress_shared.hic"};

// A fully dead dependency: both its produce site (t1's loop body) and its
// only consume site (t3's loop body) sit after a `break`, so neither is
// CFG-reachable. The 'live' dependency keeps t1 and t2 attached to the
// same BRAM with real work.
const char* kDeadDepSource = R"(
thread t1 () {
  int x1, x2, d1, n;
  #consumer{live, [t2,y1]}
  x1 = f(x2);
  while (n) {
    break;
    #consumer{dead, [t3,z1]}
    d1 = f2(x2);
  }
}
thread t2 () {
  int y1, y2;
  #producer{live, [t1,x1]}
  y1 = g(x1, y2);
}
thread t3 () {
  int z1, m3;
  while (m3) {
    break;
    #producer{dead, [t1,d1]}
    z1 = g3(d1, m3);
  }
}
)";

// A sync-free thread cycles forever through the restart edge without ever
// touching the controller, so no consumer's blocking is statically (or
// exactly — hic-verify agrees) bounded.
const char* kFreeRunnerSource = R"(
thread t1 () {
  int x1, x2;
  #consumer{mt1, [t2,y1]}
  x1 = f(x2);
}
thread t2 () {
  int y1, y2;
  #producer{mt1, [t1,x1]}
  y1 = g(x1, y2);
}
thread spin () {
  int s;
  s = h(s);
}
)";

TEST(BoundTest, ShippedExamplesWithinCapacityAndBounded) {
  for (const char* name : kExamples) {
    auto c = compile_for_bound(read_file(example_path(name)), name);
    ASSERT_TRUE(c->ok()) << name;
    for (sim::OrgKind org :
         {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
      BoundResult r = bound_source(*c, org);
      EXPECT_TRUE(r.all_within_capacity()) << name;
      // hic-verify proves every shipped example bounded-blocking under
      // both organizations (CheckerTest.ShippedExamplesAllProved); a
      // sound static analysis must not contradict a proof.
      EXPECT_TRUE(r.all_blocking_bounded()) << name << " " << r.text();
      EXPECT_GT(r.worklist_steps, 0u) << name;

      support::DiagnosticEngine diags;
      EXPECT_EQ(report_findings(r, c->sema(), diags), 0u) << name;
      EXPECT_FALSE(diags.has_check("bound-occupancy-exceeds-capacity"));
    }
  }
}

TEST(BoundTest, StraightLineCountersAreExact) {
  auto c = compile_for_bound(read_file(example_path("fig1.hic")), "fig1.hic");
  ASSERT_TRUE(c->ok());
  BoundResult r = bound_source(*c, sim::OrgKind::Arbitrated);
  ASSERT_EQ(r.occupancy.size(), 1u);
  const OccupancyBound& ob = r.occupancy[0];
  ASSERT_EQ(ob.deps.size(), 1u);
  // t1 produces mt1 exactly once per pass, on a straight-line path: the
  // solver should find [1, 1], not just "reachable".
  EXPECT_EQ(ob.deps[0].produces_per_pass, Interval::exact(1));
  EXPECT_FALSE(ob.deps[0].dead_produce);
  EXPECT_EQ(ob.occupancy, Interval::range(0, 1));
  EXPECT_TRUE(r.sizing_hints.empty());
}

TEST(BoundTest, LoopedProduceWidensToInfinity) {
  // The produce sits in a data-dependent loop: its per-pass count has no
  // finite upper bound, so widening must kick in (and the occupancy
  // contribution stays [0, 1] regardless).
  const char* src = R"(
thread t1 () {
  int x1, x2, n;
  while (n) {
    #consumer{mt1, [t2,y1]}
    x1 = f(x2);
    n = dec(n);
  }
}
thread t2 () {
  int y1, y2, m;
  while (m) {
    #producer{mt1, [t1,x1]}
    y1 = g(x1, y2);
    m = dec(m);
  }
}
)";
  auto c = compile_for_bound(src, "looped.hic");
  ASSERT_TRUE(c->ok());
  BoundResult r = bound_source(*c, sim::OrgKind::Arbitrated);
  ASSERT_EQ(r.occupancy.size(), 1u);
  ASSERT_EQ(r.occupancy[0].deps.size(), 1u);
  const DepBound& db = r.occupancy[0].deps[0];
  EXPECT_TRUE(r.widened);
  EXPECT_EQ(db.produces_per_pass.lo, 0u);
  EXPECT_EQ(db.produces_per_pass.hi, kInf);
  EXPECT_FALSE(db.dead_produce);
  EXPECT_EQ(r.occupancy[0].occupancy, Interval::range(0, 1));
}

TEST(BoundTest, DeadDependencyDetectedAndHinted) {
  auto c = compile_for_bound(kDeadDepSource, "dead_dep.hic");
  ASSERT_TRUE(c->ok());
  BoundResult r = bound_source(*c, sim::OrgKind::Arbitrated);

  const DepBound* dead = nullptr;
  const DepBound* live = nullptr;
  for (const OccupancyBound& ob : r.occupancy) {
    for (const DepBound& db : ob.deps) {
      if (db.id == "dead") dead = &db;
      if (db.id == "live") live = &db;
    }
  }
  ASSERT_NE(dead, nullptr);
  ASSERT_NE(live, nullptr);
  EXPECT_TRUE(dead->fully_dead);
  EXPECT_TRUE(dead->dead_produce);
  EXPECT_EQ(dead->countdown, Interval::exact(0));
  EXPECT_FALSE(live->fully_dead);

  ASSERT_FALSE(r.sizing_hints.empty());
  const memalloc::DepListHint& hint = r.sizing_hints.front();
  EXPECT_TRUE(hint.shrinks());
  ASSERT_EQ(hint.dead_deps.size(), 1u);
  EXPECT_EQ(hint.dead_deps[0], "dead");

  // t3 consumes only the dead dependency — its pseudo-port is dead and
  // prunable.
  bool t3_dead_port = false;
  for (const DeadPortReport& rep : r.dead_ports) {
    for (const DeadPort& dp : rep.dead) {
      if (dp.thread == "t3") {
        t3_dead_port = true;
        EXPECT_TRUE(dp.prunable);
      }
    }
    EXPECT_GT(rep.ff_bits_saved, 0u);
  }
  EXPECT_TRUE(t3_dead_port);

  support::DiagnosticEngine diags;
  EXPECT_EQ(report_findings(r, c->sema(), diags), 0u);
  EXPECT_TRUE(diags.has_check("bound-dead-dependency"));
  EXPECT_TRUE(diags.has_check("bound-dead-port"));
}

TEST(BoundTest, SizingHintPrunesGeneratedController) {
  // Full compile with the bound phase enabled: the dead entry (and t3's
  // dead pseudo-port) must disappear from the generated controller, and
  // disabling apply_sizing must leave it untouched.
  core::CompileOptions with;
  with.bound.enabled = true;
  core::Compiler pruning(with);
  auto pruned = pruning.compile(kDeadDepSource);
  ASSERT_TRUE(pruned->ok()) << pruned->diags().str();
  ASSERT_FALSE(pruned->bram_reports().empty());

  core::CompileOptions without;
  without.bound.enabled = true;
  without.bound.apply_sizing = false;
  core::Compiler keeping(without);
  auto kept = keeping.compile(kDeadDepSource);
  ASSERT_TRUE(kept->ok()) << kept->diags().str();

  int pruned_deps = 0;
  int pruned_ports = 0;
  for (const core::BramReport& br : pruned->bram_reports()) {
    pruned_deps += br.pruned_deps;
    pruned_ports += br.pruned_ports;
  }
  EXPECT_EQ(pruned_deps, 1);
  EXPECT_GE(pruned_ports, 1);
  for (const core::BramReport& br : kept->bram_reports()) {
    EXPECT_EQ(br.pruned_deps, 0);
    EXPECT_EQ(br.pruned_ports, 0);
  }

  // The pruned controller carries fewer dependency entries than the kept
  // one on the BRAM that hosted the dead entry, and still emits RTL.
  int dead_bram = -1;
  for (const auto& r : pruned->bound_results()) {
    for (const memalloc::DepListHint& h : r.sizing_hints) {
      if (!h.dead_deps.empty()) dead_bram = h.bram_id;
    }
  }
  ASSERT_GE(dead_bram, 0);
  auto deps_of = [&](const core::CompileResult& c) {
    for (const core::BramReport& br : c.bram_reports()) {
      if (br.bram_id == dead_bram) return br.dependencies;
    }
    return -1;
  };
  EXPECT_EQ(deps_of(*pruned) + 1, deps_of(*kept));
  EXPECT_FALSE(pruned->verilog().empty());
}

TEST(BoundTest, FreeRunningThreadMakesBlockingUnbounded) {
  auto c = compile_for_bound(kFreeRunnerSource, "free_runner.hic");
  ASSERT_TRUE(c->ok());
  for (sim::OrgKind org :
       {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
    BoundResult r = bound_source(*c, org);
    EXPECT_FALSE(r.all_blocking_bounded());
    for (const BlockingStaticBound& b : r.blocking) {
      EXPECT_FALSE(b.bounded);
      EXPECT_NE(b.note.find("spin"), std::string::npos) << b.note;
    }
    support::DiagnosticEngine diags;
    EXPECT_EQ(report_findings(r, c->sema(), diags), 0u);
    EXPECT_TRUE(diags.has_check("bound-blocking-unbounded"));
  }
}

TEST(BoundTest, ExceededOccupancyIsAnError) {
  // The occupancy client can only report what memalloc generated, and the
  // allocator always sizes the CAM to the dependency count — so exercise
  // the diagnostic path directly with a result whose bound exceeds the
  // baked-in capacity.
  auto c = compile_for_bound(read_file(example_path("fig1.hic")), "fig1.hic");
  ASSERT_TRUE(c->ok());
  BoundResult r = bound_source(*c, sim::OrgKind::Arbitrated);
  ASSERT_FALSE(r.occupancy.empty());
  r.occupancy[0].capacity = 0;  // pretend the generator under-provisioned

  support::DiagnosticEngine diags;
  EXPECT_EQ(report_findings(r, c->sema(), diags), 1u);
  EXPECT_TRUE(diags.has_check("bound-occupancy-exceeds-capacity"));
  EXPECT_FALSE(r.all_within_capacity());
}

TEST(BoundTest, ExplainCollectsProvenance) {
  auto c = compile_for_bound(read_file(example_path("fig1.hic")), "fig1.hic");
  ASSERT_TRUE(c->ok());
  BoundOptions opts;
  opts.explain = true;
  BoundResult r = bound_source(*c, sim::OrgKind::Arbitrated, opts);
  std::string ex = r.explain_text();
  EXPECT_NE(ex.find("per pass"), std::string::npos) << ex;
  EXPECT_NE(ex.find("countdown"), std::string::npos) << ex;
  // Without --explain the traces are empty (they cost allocations).
  BoundResult quiet = bound_source(*c, sim::OrgKind::Arbitrated);
  EXPECT_TRUE(quiet.explain_text().empty());
}

}  // namespace
}  // namespace hicsync::bound
