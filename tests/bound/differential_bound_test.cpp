// Differential soundness suite: on every fixture where hic-verify's exact
// enumeration terminates, hic-bound's static intervals must contain the
// exact values — occupancy hi ≥ max reachable occupancy, slot hi ≥ max
// reachable slot, and per-endpoint blocking never tighter than the exact
// bound (in particular never "bounded" where the checker proved
// unbounded). The corpus spans every hic-lint fixture, the deadlocking
// verify fixtures, and the shipped examples, under both organizations.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bound/bound.h"
#include "bound_test_util.h"
#include "verify/checker.h"

namespace hicsync::bound {
namespace {

using bound_test::bound_source;
using bound_test::compile_for_bound;
using bound_test::example_path;
using bound_test::lint_fixture_path;
using bound_test::read_file;
using bound_test::verify_fixture_path;

struct Case {
  const char* name;
  std::string path;
};

std::vector<Case> corpus() {
  std::vector<Case> cases;
  // Keep in sync with tests/analysis/lint/fixtures/.
  for (const char* f :
       {"consume_before_produce.hic", "dead_shared_variable.hic",
        "duplicate_producer_write.hic", "port_pressure.hic",
        "pragma_consumer_order.hic", "race_unsynced_access.hic",
        "unreachable_stmt.hic"}) {
    cases.push_back({f, lint_fixture_path(f)});
  }
  for (const char* f :
       {"ed_slot_order.hic", "producer_loop.hic", "triple_cycle.hic"}) {
    cases.push_back({f, verify_fixture_path(f)});
  }
  for (const char* f :
       {"fig1.hic", "pipeline.hic", "stress8.hic", "stress_shared.hic"}) {
    cases.push_back({f, example_path(f)});
  }
  return cases;
}

verify::VerifyResult exact(const core::CompileResult& c, sim::OrgKind org) {
  verify::VerifyOptions opts;
  opts.enabled = true;
  return verify::run_verify(c.program(), c.sema(), c.memory_map(),
                            c.port_plans(), org, opts);
}

TEST(DifferentialBoundTest, StaticOccupancyContainsExact) {
  std::size_t compared = 0;
  for (const Case& tc : corpus()) {
    auto c = compile_for_bound(read_file(tc.path), tc.name);
    ASSERT_TRUE(c->ok()) << tc.name;
    for (sim::OrgKind org :
         {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
      verify::VerifyResult ex = exact(*c, org);
      if (!ex.complete) continue;  // nothing exact to compare against
      BoundResult st = bound_source(*c, org);
      for (const verify::ControllerStats& cs : ex.controllers) {
        const OccupancyBound* ob = nullptr;
        for (const OccupancyBound& b : st.occupancy) {
          if (b.bram_id == cs.bram_id) ob = &b;
        }
        ASSERT_NE(ob, nullptr) << tc.name << " bram " << cs.bram_id;
        if (org == sim::OrgKind::Arbitrated) {
          EXPECT_GE(ob->occupancy.hi,
                    static_cast<std::uint64_t>(cs.max_occupancy))
              << tc.name << " bram " << cs.bram_id;
          EXPECT_LE(ob->occupancy.lo,
                    static_cast<std::uint64_t>(cs.max_occupancy))
              << tc.name << " bram " << cs.bram_id;
        } else {
          EXPECT_GE(ob->slot.hi, static_cast<std::uint64_t>(cs.max_slot))
              << tc.name << " bram " << cs.bram_id;
        }
        ++compared;
      }
    }
  }
  // The suite must actually exercise the containment.
  EXPECT_GE(compared, 10u);
}

TEST(DifferentialBoundTest, StaticBlockingNeverBelowExact) {
  std::size_t compared = 0;
  for (const Case& tc : corpus()) {
    auto c = compile_for_bound(read_file(tc.path), tc.name);
    ASSERT_TRUE(c->ok()) << tc.name;
    for (sim::OrgKind org :
         {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
      verify::VerifyResult ex = exact(*c, org);
      if (!ex.complete) continue;
      // A refuted deadlock leaves endpoints blocked forever in the exact
      // semantics; the checker reports those through the deadlock verdict
      // rather than the blocking bounds, so the comparison is only
      // meaningful on deadlock-free fixtures.
      if (ex.deadlock_free != verify::Verdict::Proved) continue;
      if (ex.bounds.empty()) continue;
      BoundResult st = bound_source(*c, org);
      for (const verify::BlockingBound& eb : ex.bounds) {
        // Match by (dep, thread); a thread reads a given dependency at one
        // site in every corpus program, so the pairing is unique — take
        // the loosest static endpoint anyway to stay robust.
        const BlockingStaticBound* sb = nullptr;
        for (const BlockingStaticBound& b : st.blocking) {
          if (b.dep != eb.dep || b.thread != eb.thread) continue;
          if (sb == nullptr || !b.bounded ||
              (sb->bounded && b.steps > sb->steps)) {
            sb = &b;
          }
        }
        ASSERT_NE(sb, nullptr)
            << tc.name << " " << eb.dep << "/" << eb.thread;
        if (!eb.bounded) {
          // Exact unbounded: a sound static analysis must not bound it.
          EXPECT_FALSE(sb->bounded)
              << tc.name << " " << eb.dep << "/" << eb.thread;
        } else if (sb->bounded) {
          EXPECT_GE(sb->steps, eb.steps)
              << tc.name << " " << eb.dep << "/" << eb.thread;
          EXPECT_GE(sb->cycles, eb.cycles)
              << tc.name << " " << eb.dep << "/" << eb.thread;
        }  // static unbounded over exact bounded: sound, just imprecise
        ++compared;
      }
    }
  }
  EXPECT_GE(compared, 10u);
}

}  // namespace
}  // namespace hicsync::bound
