// 8-consumer stress (ROADMAP): one dependency fanned out to eight
// consumer threads. Exercises the arbitrated wrapper at its evaluated
// width — eight C pseudo-ports sharing port B round-robin, dependency
// number 8 counting down through the list entry — and a nine-slot
// event-driven schedule (producer slot plus one per consumer).
thread p () {
  int x, seed;
  #consumer{ms, [c1,v1], [c2,v2], [c3,v3], [c4,v4], [c5,v5], [c6,v6], [c7,v7], [c8,v8]}
  x = f(seed);
}
thread c1 () {
  int v1, r1;
  #producer{ms, [p,x]}
  v1 = g(x, r1);
}
thread c2 () {
  int v2, r2;
  #producer{ms, [p,x]}
  v2 = g(x, r2);
}
thread c3 () {
  int v3, r3;
  #producer{ms, [p,x]}
  v3 = g(x, r3);
}
thread c4 () {
  int v4, r4;
  #producer{ms, [p,x]}
  v4 = g(x, r4);
}
thread c5 () {
  int v5, r5;
  #producer{ms, [p,x]}
  v5 = g(x, r5);
}
thread c6 () {
  int v6, r6;
  #producer{ms, [p,x]}
  v6 = g(x, r6);
}
thread c7 () {
  int v7, r7;
  #producer{ms, [p,x]}
  v7 = g(x, r7);
}
thread c8 () {
  int v8, r8;
  #producer{ms, [p,x]}
  v8 = g(x, r8);
}
