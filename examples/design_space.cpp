// Design-space exploration: choosing between the two organizations.
//
// §4 closes: "for designs where there is enough slack in timing and a need
// to scale up in the future, the arbitrated memory organization is useful.
// For designs where timing is critical and needs more optimization, the
// event-driven memory organization is useful. In our design methodology we
// envisage providing the user with access to either of these
// implementations based on design time implementation constraints and
// parameters."
//
// This example is that methodology: compile the same program under both
// organizations, evaluate each against the user's constraints (target
// clock, area budget, scalability need), and recommend one.
//
//   ./design_space [target_mhz] [max_slices] [need_scaling(0|1)]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/compiler.h"
#include "fpga/techmap.h"
#include "netapp/scenarios.h"
#include "support/table.h"

using namespace hicsync;

int main(int argc, char** argv) {
  double target_mhz = 125.0;
  int max_slices = 400;
  bool need_scaling = false;
  if (argc > 1) target_mhz = std::atof(argv[1]);
  if (argc > 2) max_slices = std::atoi(argv[2]);
  if (argc > 3) need_scaling = std::atoi(argv[3]) != 0;

  const std::string source = netapp::fanout_source(4);

  struct Candidate {
    const char* name;
    sim::OrgKind kind;
    std::unique_ptr<core::CompileResult> result;
  };
  Candidate candidates[2] = {
      {"arbitrated", sim::OrgKind::Arbitrated, nullptr},
      {"event-driven", sim::OrgKind::EventDriven, nullptr},
  };

  support::TextTable table(
      {"organization", "LUT", "FF", "slices", "Fmax(MHz)", "meets clock",
       "fits area", "scales w/o regen"});
  for (auto& c : candidates) {
    core::CompileOptions options;
    options.organization = c.kind;
    options.target_clock_mhz = target_mhz;
    c.result = core::Compiler(options).compile(source);
    if (!c.result->ok()) {
      std::fprintf(stderr, "compile failed:\n%s",
                   c.result->diags().str().c_str());
      return 1;
    }
    auto total = c.result->total_overhead();
    table.add_row({c.name, std::to_string(total.luts),
                   std::to_string(total.ffs), std::to_string(total.slices),
                   std::to_string(static_cast<int>(c.result->min_fmax_mhz())),
                   c.result->meets_target() ? "yes" : "no",
                   total.slices <= max_slices ? "yes" : "no",
                   // §3.1/§3.2: arbitrated adds consumers by muxing only;
                   // event-driven must regenerate interconnect + thread FSMs.
                   c.kind == sim::OrgKind::Arbitrated ? "yes" : "no"});
  }
  std::printf("constraints: target %.0f MHz, budget %d slices, "
              "future scaling %s\n\n",
              target_mhz, max_slices, need_scaling ? "needed" : "not needed");
  std::printf("%s\n", table.str().c_str());

  // The §4 decision rule.
  const auto& arb = candidates[0];
  const auto& ev = candidates[1];
  bool arb_fits = arb.result->meets_target() &&
                  arb.result->total_overhead().slices <= max_slices;
  bool ev_fits = ev.result->meets_target() &&
                 ev.result->total_overhead().slices <= max_slices;
  const char* pick;
  const char* why;
  if (need_scaling && arb_fits) {
    pick = "arbitrated";
    why = "scaling is needed and the arbitrated organization meets the "
          "constraints; new consumer threads attach by adding multiplexing "
          "only (no thread state-machine changes).";
  } else if (ev_fits && !arb_fits) {
    pick = "event-driven";
    why = "only the event-driven organization meets the timing/area "
          "constraints.";
  } else if (ev_fits && !need_scaling) {
    pick = "event-driven";
    why = "timing is the priority and the static modulo schedule gives "
          "deterministic, faster hand-offs.";
  } else if (arb_fits) {
    pick = "arbitrated";
    why = "it meets the constraints and keeps the design easy to extend.";
  } else {
    pick = "neither";
    why = "no organization meets the constraints; revisit the partitioning "
          "(the paper: the 5-20% overhead must be considered a priori in "
          "the design partitioning process).";
  }
  std::printf("recommendation: %s\n  %s\n", pick, why);

  // §6's reuse question, quantified: the marginal cost of attaching one
  // more consumer. Arbitrated: multiplexing LUTs only, no thread changes.
  // Event-driven: the interconnect and every thread's event handlers are
  // regenerated.
  {
    fpga::TechMapper mapper;
    auto luts_at = [&](sim::OrgKind kind, int consumers) {
      core::CompileOptions o;
      o.organization = kind;
      auto rr = core::Compiler(o).compile(netapp::fanout_source(consumers));
      return rr->ok() ? rr->total_overhead().luts : 0;
    };
    int arb4 = luts_at(sim::OrgKind::Arbitrated, 4);
    int arb5 = luts_at(sim::OrgKind::Arbitrated, 5);
    int ev4 = luts_at(sim::OrgKind::EventDriven, 4);
    int ev5 = luts_at(sim::OrgKind::EventDriven, 5);
    std::printf(
        "\nmarginal cost of a 5th consumer: arbitrated +%d LUTs "
        "(mux layer only,\nexisting threads untouched); event-driven +%d "
        "LUTs plus regenerated slot\nschedule and consumer event handlers "
        "- the reuse trade §6 points at.\n",
        arb5 - arb4, ev5 - ev4);
  }
  return 0;
}
