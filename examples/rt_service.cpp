// hic-rt walkthrough: compile → artifact → load → serve concurrent
// sessions over the sharded simulator pool, all in one process.
//
// Mirrors the XRT host-program shape: build the "xclbin" (hicbin artifact),
// load it into the runtime, open sessions, queue async produce/run/consume
// commands, and collect completions through futures — then verify that a
// pooled session's results are bit-identical to a fresh single-instance
// simulation of the same inputs (the property the hic-rt stress tests
// assert at scale).
//
//   ./rt_service [arbitrated|event-driven]

#include <cstdio>
#include <string>

#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "rt/service.h"
#include "rt/store.h"
#include "rt/workload.h"

using namespace hicsync;

int main(int argc, char** argv) {
  core::CompileOptions options;
  if (argc > 1 && std::string(argv[1]) == "event-driven") {
    options.organization = sim::OrgKind::EventDriven;
  }
  options.source_name = "fig1.hic";

  // 1. Compile and serialize the artifact — what `hicc --emit-artifact`
  //    writes to disk; here it stays in memory.
  const std::string source = netapp::figure1_source();
  core::Compiler compiler(options);
  auto compiled = compiler.compile(source);
  if (!compiled->ok()) {
    std::fprintf(stderr, "compilation failed:\n%s",
                 compiled->diags().str().c_str());
    return 1;
  }
  std::string hicbin = rt::emit_artifact(*compiled, source);
  std::printf("artifact: %zu bytes (%s organization)\n", hicbin.size(),
              compiled->options().organization == sim::OrgKind::Arbitrated
                  ? "arbitrated"
                  : "event-driven");

  // 2. Load it back — only the front end re-runs; the memory map and port
  //    plans come from the artifact.
  rt::ProgramStore store;
  rt::ArtifactError error;
  auto program = store.load_bytes(hicbin, &error);
  if (program == nullptr) {
    std::fprintf(stderr, "load failed: %s\n", error.str().c_str());
    return 1;
  }
  std::printf("%s", program->describe().c_str());

  // 3. Serve it: 4 sessions across 2 shards, async commands, futures.
  rt::ServiceOptions service_options;
  service_options.shards = 2;
  service_options.default_passes = 2;
  rt::Service service(program, service_options);

  std::vector<std::uint64_t> sessions;
  std::vector<std::future<rt::CommandResult>> results;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t session = service.open_session();
    sessions.push_back(session);
    // Each session produces different inputs, so each computes different
    // register values — on whatever shard it happens to land.
    rt::BufferHandle inputs = service.buffers().allocate(2);
    inputs[0] = static_cast<std::uint64_t>(100 + i);
    inputs[1] = static_cast<std::uint64_t>(7 * i);
    service.produce(session, std::move(inputs));
    service.run(session);
    results.push_back(service.consume(session, {}));
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    rt::CommandResult r = results[i].get();
    std::printf("session %llu (shard %d): %s\n",
                static_cast<unsigned long long>(r.session), r.shard,
                r.ok ? "ok" : r.error.c_str());
    for (const auto& [name, value] : r.registers) {
      std::printf("  %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  // 4. The determinism contract: replay session 0's inputs on a fresh,
  //    unpooled simulator and compare every register.
  std::uint64_t expected_seed = rt::fold_seed(
      rt::kWorkloadSeedInit,
      std::vector<std::uint64_t>{100, 0}.data(), 2);
  auto fresh = program->make_simulator();
  rt::WorkloadResult baseline =
      rt::run_workload(*fresh, program->program(), program->sema(),
                       service_options.default_passes,
                       service_options.max_cycles, expected_seed);
  rt::CommandResult pooled = service.consume(sessions[0], {}).get();
  bool identical = pooled.ok && baseline.registers == pooled.registers;
  std::printf("pooled session 0 == fresh single-instance run: %s\n",
              identical ? "identical" : "MISMATCH");

  std::printf("%s", service.stats_text().c_str());
  service.shutdown();
  return identical ? 0 : 1;
}
