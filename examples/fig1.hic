// Figure 1 of the paper: t1 produces x1; t2 and t3 consume it.
thread t1 () {
  int x1, xtmp, x2;
  #consumer{mt1, [t2,y1], [t3,z1]}
  x1 = f(xtmp, x2);
}
thread t2 () {
  int y1, y2;
  #producer{mt1, [t1,x1]}
  y1 = g(x1, y2);
}
thread t3 () {
  int z1, z2;
  #producer{mt1, [t1,x1]}
  z1 = h(x1, z2);
}
