// A flow monitor: the networking-domain state machines §2 motivates.
//
// An rx thread produces packet descriptors; a metering thread runs a
// per-pass `case` state machine (the "state machines (case statements)"
// hic supports) implementing a token-bucket-ish accept/warn/drop policy
// over flow byte counts kept in a BRAM array; a stats thread consumes the
// verdicts. Every hand-off runs through the generated memory organization.
//
//   ./flow_monitor [arbitrated|event-driven] [packets]

#include <cstdio>
#include <memory>
#include <string>

#include "core/compiler.h"
#include "netapp/traffic.h"

using namespace hicsync;

namespace {

const char* kSource = R"(
#interface{gige0, GigabitEthernet}
#constant{threshold_warn, 96}
#constant{threshold_drop, 192}

thread rx () {
  int desc;
  #consumer{pkt, [meter,d]}
  desc = next_packet();
}

thread meter () {
  int counts[16];
  int d, flow, bytes, level, verdict_out, mode;
  #producer{pkt, [rx,desc]}
  d = desc;
  flow = d & 15;
  bytes = (d >> 8) & 255;
  counts[flow] = counts[flow] + bytes;
  level = counts[flow];
  mode = 0;
  if (level > 96) mode = 1;
  if (level > 192) mode = 2;
  case (mode) {
    when 0: verdict_out = 0;
    when 1: verdict_out = 1;
    when 2: verdict_out = 2; counts[flow] = 0;
    default: verdict_out = 3;
  }
  #consumer{verdict, [stats,v]}
  verdict_out = verdict_out + (flow << 4);
}

thread stats () {
  int v, accepted, warned, dropped, kind;
  #producer{verdict, [meter,verdict_out]}
  v = verdict_out;
  kind = v & 3;
  case (kind) {
    when 0: accepted = accepted + 1;
    when 1: warned = warned + 1;
    when 2: dropped = dropped + 1;
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  core::CompileOptions options;
  int packets = 40;
  if (argc > 1 && std::string(argv[1]) == "event-driven") {
    options.organization = sim::OrgKind::EventDriven;
  }
  if (argc > 2) packets = std::atoi(argv[2]);

  auto result = core::Compiler(options).compile(kSource);
  if (!result->ok()) {
    std::fprintf(stderr, "compile failed:\n%s",
                 result->diags().str().c_str());
    return 1;
  }
  std::printf("%s\n", core::render_report(*result).c_str());

  auto sim = result->make_simulator();
  // Packet descriptors: {bytes[15:8], flow[3:0]} from a deterministic RNG.
  auto rng = std::make_shared<support::Rng>(2026);
  sim->externs().register_fn("next_packet", [rng](const auto&) {
    std::uint64_t flow = rng->next_range(0, 15);
    std::uint64_t bytes = rng->next_range(16, 160);
    return (bytes << 8) | flow;
  });
  sim->set_gate("rx", netapp::arrival_gate(
                          std::make_shared<netapp::BurstyArrivals>(
                              0.05, 0.2, 4, /*seed=*/9)));

  if (!sim->run_until_passes(packets, 500000)) {
    std::fprintf(stderr, "stalled at cycle %llu\n",
                 static_cast<unsigned long long>(sim->cycle()));
    return 1;
  }
  std::printf("--- %s organization, %d packets, %llu cycles ---\n",
              sim::to_string(options.organization), packets,
              static_cast<unsigned long long>(sim->cycle()));
  std::printf("accepted: %llu  warned: %llu  dropped: %llu\n",
              static_cast<unsigned long long>(
                  sim->register_value("stats", "accepted")),
              static_cast<unsigned long long>(
                  sim->register_value("stats", "warned")),
              static_cast<unsigned long long>(
                  sim->register_value("stats", "dropped")));
  std::uint64_t total = sim->register_value("stats", "accepted") +
                        sim->register_value("stats", "warned") +
                        sim->register_value("stats", "dropped");
  std::printf("verdicts recorded: %llu (>= %d packets processed)\n",
              static_cast<unsigned long long>(total), packets);
  return total >= static_cast<std::uint64_t>(packets) ? 0 : 1;
}
