// Shared-BRAM stress (ROADMAP 8-consumer configs): one producer thread
// owns three shared variables, so the allocator co-locates all three
// dependencies in a single BRAM — its dependency list keeps three entries
// open at once (CAM occupancy 3) and the event-driven schedule interleaves
// seven slots across the dependencies. The fan-out dependency comes first
// in the schedule and the per-consumer dependencies follow, so the program
// is hazard-free under both organizations (hic-verify proves
// deadlock-freedom and bounded blocking for both).
thread p () {
  int a, b, c, seed;
  #consumer{da, [q1,u1], [q2,u2]}
  a = f(seed);
  #consumer{db, [q1,w1]}
  b = f2(seed);
  #consumer{dc, [q2,s2]}
  c = f3(seed);
}
thread q1 () {
  int u1, w1, r1;
  #producer{da, [p,a]}
  u1 = g(a, r1);
  #producer{db, [p,b]}
  w1 = g2(b, u1);
}
thread q2 () {
  int u2, s2, r2;
  #producer{da, [p,a]}
  u2 = g(a, r2);
  #producer{dc, [p,c]}
  s2 = g3(c, u2);
}
