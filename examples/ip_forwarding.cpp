// The paper's motivating application: two-port IP packet forwarding.
//
// rx0/rx1 threads produce packet descriptors driven by synthetic traffic
// (§3.1: "the writes happen when packets arrive from a network and are
// probabilistic in nature"); a forwarding thread consumes both, classifies
// against an LPM table, and produces output descriptors consumed by tx0 and
// tx1. Every hand-off runs through the generated memory organization.
//
//   ./ip_forwarding [arbitrated|event-driven] [packets]

#include <cstdio>
#include <memory>
#include <string>

#include "core/compiler.h"
#include "fpga/techmap.h"
#include "netapp/forwarding_rtl.h"
#include "netapp/scenarios.h"
#include "netapp/traffic.h"

using namespace hicsync;

int main(int argc, char** argv) {
  core::CompileOptions options;
  int packets = 5;
  if (argc > 1 && std::string(argv[1]) == "event-driven") {
    options.organization = sim::OrgKind::EventDriven;
  }
  if (argc > 2) packets = std::atoi(argv[2]);

  auto result = core::Compiler(options).compile(
      netapp::ip_forwarding_source());
  if (!result->ok()) {
    std::fprintf(stderr, "compile failed:\n%s",
                 result->diags().str().c_str());
    return 1;
  }
  std::printf("%s\n", core::render_report(*result).c_str());

  // The core forwarding function (the ~1000-slice block of §4), generated
  // and technology-mapped alongside the controllers.
  rtl::Design core_design;
  rtl::Module& core_rtl = netapp::generate_forwarding_core(
      core_design, netapp::ForwardingCoreConfig{}, "fwd_core");
  auto core_area = fpga::TechMapper().map(core_rtl);
  auto overhead = result->total_overhead();
  std::printf("forwarding core: %s\n", core_area.str().c_str());
  std::printf("controller overhead vs core: %.1f%% of slices\n\n",
              100.0 * overhead.slices /
                  (core_area.slices > 0 ? core_area.slices : 1));

  // Simulate packet flow.
  auto sim = result->make_simulator();
  netapp::LpmTable table;
  table.insert_cidr("10.0.0.0/9", 0);    // low half of 10/8 -> port 0
  table.insert_cidr("10.128.0.0/9", 1);  // high half -> port 1
  netapp::wire_forwarding_externs(*sim, table, /*seed=*/2026);
  sim->set_gate("rx0", netapp::arrival_gate(
                           std::make_shared<netapp::PoissonArrivals>(
                               0.02, /*seed=*/7)));
  sim->set_gate("rx1", netapp::arrival_gate(
                           std::make_shared<netapp::PoissonArrivals>(
                               0.02, /*seed=*/8)));

  if (!sim->run_until_passes(packets, 200000)) {
    std::fprintf(stderr, "simulation stalled at cycle %llu\n",
                 static_cast<unsigned long long>(sim->cycle()));
    return 1;
  }

  std::printf("--- traffic simulation (%s) ---\n",
              sim::to_string(options.organization));
  std::printf("cycles: %llu, packets through tx0: %d, tx1: %d\n",
              static_cast<unsigned long long>(sim->cycle()),
              sim->passes("tx0"), sim->passes("tx1"));
  std::printf("dependency rounds observed: %zu\n", sim->rounds().size());
  std::uint64_t worst = 0;
  double sum = 0;
  for (const auto& r : sim->rounds()) {
    sum += static_cast<double>(r.completion_latency());
    if (r.completion_latency() > worst) worst = r.completion_latency();
  }
  if (!sim->rounds().empty()) {
    std::printf("hand-off latency: mean %.1f cycles, worst %llu cycles\n",
                sum / static_cast<double>(sim->rounds().size()),
                static_cast<unsigned long long>(worst));
  }
  return 0;
}
