// Quickstart: compile the paper's Figure 1 program end to end.
//
// Demonstrates the core flow: hic source with #producer/#consumer pragmas →
// compiled design (FSMs, memory map, generated memory-organization RTL) →
// report → generated Verilog → cycle-accurate simulation on the generated
// controller.
//
//   ./quickstart [arbitrated|event-driven]

#include <cstdio>
#include <string>

#include "core/compiler.h"
#include "netapp/scenarios.h"

using namespace hicsync;

int main(int argc, char** argv) {
  core::CompileOptions options;
  if (argc > 1 && std::string(argv[1]) == "event-driven") {
    options.organization = sim::OrgKind::EventDriven;
  }
  // Run the static synchronization-hazard checks (hic-lint) as part of the
  // compile; findings land in result->diags() with stable check IDs.
  options.lint.enabled = true;
  options.source_name = "fig1.hic";

  const std::string source = netapp::figure1_source();
  std::printf("--- hic source (Figure 1 of the paper) ---\n%s\n",
              source.c_str());

  core::Compiler compiler(options);
  auto result = compiler.compile(source);
  if (!result->ok()) {
    std::fprintf(stderr, "compilation failed:\n%s",
                 result->diags().str().c_str());
    return 1;
  }

  std::printf("%s\n", core::render_report(*result).c_str());

  // Lint report (what `hicc --lint` prints; `--diag-format json` renders
  // the same findings machine-readably for CI).
  std::printf("--- lint (%zu error(s), %zu warning(s)) ---\n",
              result->lint_error_count(), result->lint_warning_count());
  if (result->diags().diagnostics().empty()) {
    std::printf("no findings: the program is hazard-clean\n\n");
  } else {
    std::printf("%s\n", result->diags().str().c_str());
  }

  std::printf("--- generated Verilog (memory organization) ---\n%s\n",
              result->verilog().c_str());

  // Simulate: t1 produces f(xtmp, x2); t2/t3 consume it.
  auto sim = result->make_simulator();
  sim->externs().register_fn("f", [](const auto&) { return 42u; });
  sim->externs().register_fn(
      "g", [](const auto& args) { return args.at(0) + 1; });
  sim->externs().register_fn(
      "h", [](const auto& args) { return args.at(0) * 2; });

  if (!sim->run_until_passes(1, 500)) {
    std::fprintf(stderr, "simulation did not converge\n");
    return 1;
  }

  std::printf("--- simulation (%s organization) ---\n",
              sim::to_string(options.organization));
  std::printf("cycles: %llu\n",
              static_cast<unsigned long long>(sim->cycle()));
  std::printf("t1 produced x1 = f(...) = 42\n");
  std::printf("t2.y1 = g(x1, y2) = %llu\n",
              static_cast<unsigned long long>(
                  sim->register_value("t2", "y1")));
  std::printf("t3.z1 = h(x1, z2) = %llu\n",
              static_cast<unsigned long long>(
                  sim->register_value("t3", "z1")));
  for (const auto& round : sim->rounds()) {
    std::printf("dependency %s: produced at cycle %llu, "
                "consumed %zu times, completion latency %llu cycles\n",
                round.dep_id.c_str(),
                static_cast<unsigned long long>(round.produce_grant_cycle),
                round.consume_cycles.size(),
                static_cast<unsigned long long>(
                    round.completion_latency()));
  }
  return 0;
}
