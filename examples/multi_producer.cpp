// Multiple producer-consumer pairs sharing one BRAM — the configuration
// §3.1 singles out for non-determinism: "The latter aspect also introduces
// non-deterministic timing for cases where more than one producer-consumer
// pairs are mapped to the same BRAM structure. This is because the read
// accesses on port C are arbitrated as on a bus."
//
// Two dependencies from one producer thread share a BRAM; their consumers
// contend on port C. Under the arbitrated organization the observed
// hand-off latencies vary round to round; under the event-driven
// organization they are fixed by the static schedule.
//
//   ./multi_producer [rounds]

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "support/rng.h"

#include <memory>

using namespace hicsync;

namespace {

const char* kSource = R"(
thread prod () {
  int a, b;
  #consumer{da, [cons_a0,u0], [cons_a1,u1]}
  a = next_a();
  #consumer{db, [cons_b0,v0], [cons_b1,v1]}
  b = next_b();
}
thread cons_a0 () {
  int u0;
  #producer{da, [prod,a]}
  u0 = work(a, 0);
}
thread cons_a1 () {
  int u1;
  #producer{da, [prod,a]}
  u1 = work(a, 1);
}
thread cons_b0 () {
  int v0;
  #producer{db, [prod,b]}
  v0 = work(b, 2);
}
thread cons_b1 () {
  int v1;
  #producer{db, [prod,b]}
  v1 = work(b, 3);
}
)";

void run(sim::OrgKind kind, int rounds, bool jitter) {
  core::CompileOptions options;
  options.organization = kind;
  auto result = core::Compiler(options).compile(kSource);
  if (!result->ok()) {
    std::fprintf(stderr, "compile failed:\n%s",
                 result->diags().str().c_str());
    return;
  }

  auto sim = result->make_simulator();
  if (jitter) {
    // Probabilistic consumer readiness (§3.1: packet-driven timing "are
    // probabilistic in nature"): each consumer re-arms after a random
    // delay, so port-C contention differs round to round.
    std::uint64_t seed = 11;
    for (const char* t :
         {"cons_a0", "cons_a1", "cons_b0", "cons_b1"}) {
      auto rng = std::make_shared<support::Rng>(seed++);
      sim->set_gate(t, [rng](std::uint64_t) {
        return rng->next_bool(0.35);
      });
    }
  }
  if (!sim->run_until_passes(rounds, 100000)) {
    std::fprintf(stderr, "stalled\n");
    return;
  }

  // Keep only completed rounds (both consumers read) and drop the first
  // round of each dependency (warm-up: consumers had not yet reached their
  // read states).
  std::map<std::string, std::vector<std::uint64_t>> latencies;
  std::map<std::string, int> seen;
  for (const auto& r : sim->rounds()) {
    if (r.consume_cycles.size() < 2) continue;
    if (seen[r.dep_id]++ == 0) continue;
    latencies[r.dep_id].push_back(r.completion_latency());
  }
  std::printf("--- %s organization%s ---\n", sim::to_string(kind),
              jitter ? " (probabilistic consumers)" : "");
  for (const auto& [dep, ls] : latencies) {
    std::uint64_t lo = ls.empty() ? 0 : ls[0];
    std::uint64_t hi = lo;
    double sum = 0;
    for (auto l : ls) {
      lo = l < lo ? l : lo;
      hi = l > hi ? l : hi;
      sum += static_cast<double>(l);
    }
    std::printf(
        "dependency %s: %zu rounds, latency min/mean/max = "
        "%llu / %.1f / %llu cycles%s\n",
        dep.c_str(), ls.size(), static_cast<unsigned long long>(lo),
        ls.empty() ? 0.0 : sum / static_cast<double>(ls.size()),
        static_cast<unsigned long long>(hi),
        lo == hi ? "  (deterministic)" : "  (varies)");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 8;
  if (argc > 1) rounds = std::atoi(argv[1]);
  std::printf("Two dependencies (da, db) share one BRAM; four consumers "
              "contend on port C.\n\n");
  std::printf("== steady state (all consumers always ready) ==\n");
  run(sim::OrgKind::Arbitrated, rounds, /*jitter=*/false);
  run(sim::OrgKind::EventDriven, rounds, /*jitter=*/false);
  std::printf("== probabilistic consumer readiness ==\n");
  run(sim::OrgKind::Arbitrated, rounds, /*jitter=*/true);
  run(sim::OrgKind::EventDriven, rounds, /*jitter=*/true);
  std::printf(
      "The event-driven organization trades the arbitrated organization's\n"
      "flexibility (new consumers attach without regenerating anything)\n"
      "for the fixed latency of its modulo schedule - the design choice\n"
      "discussed at the end of §4 of the paper.\n");
  return 0;
}
