// A three-stage packet pipeline: rx hands the header to parse, parse hands
// derived metadata to act. Two dependencies chain produce-after-consume, so
// the program is hazard-free — `hicc --lint-only examples/pipeline.hic`
// reports no findings.
thread rx () {
  int pkt, hdr;
  #consumer{m_hdr, [parse,h]}
  hdr = f(pkt);
}
thread parse () {
  int h, meta;
  #producer{m_hdr, [rx,hdr]}
  h = g(hdr);
  #consumer{m_meta, [act,m]}
  meta = f2(h);
}
thread act () {
  int m, verdict;
  #producer{m_meta, [parse,meta]}
  m = g2(meta);
  verdict = h2(m);
}
