// hic-perf bench-history store: durable, append-only trajectory of every
// benchmark run.
//
// Each bench binary drops a `BENCH_<name>.json` in its working directory —
// either our flat JsonBenchReport format (one object, scalar values) or
// google-benchmark's native report (a "benchmarks" array). HistoryStore
// normalizes both into a BenchRun (flat string→double metric map) and
// appends one JSON line per run to `<root>/<bench>.jsonl`, so the bench
// trajectory survives the run that produced it and can be diffed
// (perf::compare_runs) and rendered (hic-report) later.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hicsync::perf {

/// Bumped when the normalized record shape changes; compare_runs refuses
/// to diff across versions (Verdict::SchemaSkew).
inline constexpr int kHistorySchemaVersion = 1;

/// One normalized benchmark run. Boolean report values are stored as
/// 0.0/1.0 metrics (so "shape_ok no longer true" is an ordinary
/// regression); string values become labels.
struct BenchRun {
  int schema = kHistorySchemaVersion;
  std::string bench;       // "table1_arbitrated_area", "compile", ...
  std::string run_id;      // caller-chosen (CI build id, "local", ...)
  std::string timestamp;   // caller-chosen ISO-8601; not interpreted
  std::map<std::string, double> metrics;
  std::map<std::string, std::string> labels;

  [[nodiscard]] const double* metric(std::string_view key) const;
  /// Convenience for 0/1-coded booleans.
  [[nodiscard]] bool flag(std::string_view key) const;
};

/// Parses the contents of a `BENCH_<name>.json` file (either format) into
/// `out` (bench name, metrics, labels; run_id/timestamp left empty).
/// google-benchmark entries become `<name>.real_time_ns` / `.cpu_time_ns`
/// / `.iterations` metrics with times normalized to nanoseconds.
[[nodiscard]] bool parse_bench_json(std::string_view json_text, BenchRun* out,
                                    std::string* error = nullptr);

class HistoryStore {
 public:
  /// `root` is the directory holding one `<bench>.jsonl` per bench
  /// (canonically `bench/history/`). Created on first append.
  explicit HistoryStore(std::string root) : root_(std::move(root)) {}

  [[nodiscard]] const std::string& root() const { return root_; }

  /// Appends one run as a single JSON line. Creates the root directory
  /// and the per-bench file as needed.
  [[nodiscard]] bool append(const BenchRun& run, std::string* error = nullptr);

  /// Loads every recorded run of one bench, oldest first. Unparseable
  /// lines are skipped (a truncated tail must not poison the history).
  [[nodiscard]] std::vector<BenchRun> load(const std::string& bench,
                                           std::string* error = nullptr) const;

  /// Benches with recorded history, sorted by name.
  [[nodiscard]] std::vector<std::string> benches() const;

  /// Ingests every `BENCH_*.json` under `dir` (non-recursive), stamping
  /// `run_id`/`timestamp` onto each appended run. Returns the number of
  /// files ingested, or -1 on error.
  int ingest_directory(const std::string& dir, const std::string& run_id,
                       const std::string& timestamp,
                       std::string* error = nullptr);

  /// Serializes one run to its JSONL line (no trailing newline); exposed
  /// for tests.
  [[nodiscard]] static std::string to_jsonl(const BenchRun& run);
  [[nodiscard]] static bool from_jsonl(std::string_view line, BenchRun* out,
                                       std::string* error = nullptr);

 private:
  std::string root_;
};

}  // namespace hicsync::perf
