#include "perf/constraints.h"

#include <cmath>

#include "support/strings.h"

namespace hicsync::perf {

namespace {

std::vector<std::string> sweep(const char* prefix, const char* suffix) {
  std::vector<std::string> keys;
  for (int c : {2, 4, 8}) {
    keys.push_back(std::string(prefix) + std::to_string(c) + suffix);
  }
  return keys;
}

}  // namespace

std::vector<Constraint> paper_constraints() {
  std::vector<Constraint> t;
  // Table 1 — arbitrated area.
  t.push_back({"table1.ff_constant", "table1_arbitrated_area",
               "FF count constant across 2/4/8 consumers (66-FF baseline "
               "architecture)",
               ConstraintKind::EqualAcross, sweep("c", ".ffs"), {}, 0.0});
  t.push_back({"table1.lut_growth", "table1_arbitrated_area",
               "pseudo-port multiplexing adds LUTs only (LUT grows with "
               "consumers)",
               ConstraintKind::StrictlyIncreasing, sweep("c", ".luts"), {},
               0.0});
  t.push_back({"table1.shape_ok", "table1_arbitrated_area",
               "bench's own Table-1 shape verdict", ConstraintKind::FlagTrue,
               {"shape_ok"}, {}, 0.0});
  // Table 2 — event-driven area.
  t.push_back({"table2.ff_constant", "table2_eventdriven_area",
               "FF count constant across 2/4/8 consumers",
               ConstraintKind::EqualAcross, sweep("c", ".ffs"), {}, 0.0});
  t.push_back({"table2.lut_growth", "table2_eventdriven_area",
               "LUT grows with consumers", ConstraintKind::StrictlyIncreasing,
               sweep("c", ".luts"), {}, 0.0});
  t.push_back({"table2.leaner", "table2_eventdriven_area",
               "event-driven leaner than arbitrated at every point",
               ConstraintKind::FlagTrue, {"leaner_than_arbitrated"}, {}, 0.0});
  // §4 timing — the Fmax ladders.
  t.push_back({"fmax.arb_decreasing", "timing_fmax",
               "arbitrated Fmax decreases with consumer count (158/130/~125 "
               "ladder shape)",
               ConstraintKind::StrictlyDecreasing,
               sweep("c", ".arbitrated_fmax_mhz"), {}, 0.0});
  t.push_back({"fmax.ev_decreasing", "timing_fmax",
               "event-driven Fmax decreases with consumer count (177/136/129 "
               "ladder shape)",
               ConstraintKind::StrictlyDecreasing,
               sweep("c", ".eventdriven_fmax_mhz"), {}, 0.0});
  t.push_back({"fmax.ev_faster", "timing_fmax",
               "event-driven faster than arbitrated at every point",
               ConstraintKind::FlagTrue, {"eventdriven_faster_everywhere"}, {},
               0.0});
  t.push_back({"fmax.ev_matches_paper", "timing_fmax",
               "event-driven Fmax within 10% of the paper's 177/136/129 MHz",
               ConstraintKind::WithinPctOfRef,
               sweep("c", ".eventdriven_fmax_mhz"),
               sweep("c", ".paper_eventdriven_mhz"), 10.0});
  // §4 overhead — the 5–20 % band.
  t.push_back({"overhead.in_band", "overhead_vs_core",
               "controller overhead inside the paper's 5-20% band vs the "
               "1000-slice core",
               ConstraintKind::FlagTrue, {"in_paper_band"}, {}, 0.0});
  t.push_back({"overhead.max_in_band", "overhead_vs_core",
               "worst-case overhead does not exceed the paper's 20% bound",
               ConstraintKind::AtMostRef, {"overhead_pct_vs_paper_core_max"},
               {"paper_band_high_pct"}, 0.0});
  // §3 latency / determinism.
  t.push_back({"latency.handoff_correct", "latency_determinism",
               "every consumer observes every produced value",
               ConstraintKind::FlagTrue, {"handoff_correct"}, {}, 0.0});
  t.push_back({"latency.arbitrated_varies", "latency_determinism",
               "arbitrated latency varies round to round under contention "
               "(§3.1 non-determinism)",
               ConstraintKind::FlagTrue, {"arbitrated_latency_varies"}, {},
               0.0});
  // §1/§5 baseline comparison.
  t.push_back({"baseline.all_ok", "baseline_comparison",
               "all four substrates produce correct hand-offs",
               ConstraintKind::FlagTrue, {"all_ok"}, {}, 0.0});
  // §6 dependency-list scaling.
  t.push_back({"deplist.cam_monotonic", "deplist_scaling",
               "CAM LUTs grow monotonically with list size",
               ConstraintKind::FlagTrue, {"cam_lut_monotonic"}, {}, 0.0});
  // hic-trace invariant (PR 2): disabled instrumentation stays ~free.
  t.push_back({"trace.overhead_bounded", "sim_trace_overhead",
               "unattached-trace overhead below the asserted limit",
               ConstraintKind::AtMostRef, {"overhead_pct"}, {"limit_pct"},
               0.0});
  // hic-rt telemetry invariant (PR 8): span capture stays off the hot
  // path — enabled telemetry costs < 5% service throughput.
  t.push_back({"rt.telemetry_overhead", "rt",
               "request-telemetry throughput cost below the asserted limit",
               ConstraintKind::AtMostRef, {"rt.telemetry.overhead_pct"},
               {"rt.telemetry.limit_pct"}, 0.0});
  return t;
}

ConstraintResult check_constraint(const Constraint& c,
                                  const BenchRun* latest) {
  ConstraintResult r;
  r.constraint = c;
  if (latest == nullptr) {
    r.status = ConstraintStatus::MissingData;
    r.detail = "no history for bench '" + c.bench + "'";
    return r;
  }
  std::vector<double> values;
  for (const std::string& key : c.keys) {
    const double* v = latest->metric(key);
    if (v == nullptr) {
      r.status = ConstraintStatus::MissingData;
      r.detail = "metric '" + key + "' absent from latest run";
      return r;
    }
    values.push_back(*v);
  }
  std::vector<double> refs;
  for (const std::string& key : c.ref_keys) {
    const double* v = latest->metric(key);
    if (v == nullptr) {
      r.status = ConstraintStatus::MissingData;
      r.detail = "metric '" + key + "' absent from latest run";
      return r;
    }
    refs.push_back(*v);
  }

  auto values_str = [&]() {
    std::string s;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) s += ", ";
      s += support::format("%s=%.4g", c.keys[i].c_str(), values[i]);
    }
    return s;
  };

  bool ok = true;
  switch (c.kind) {
    case ConstraintKind::FlagTrue:
      ok = values[0] != 0.0;
      break;
    case ConstraintKind::EqualAcross:
      for (double v : values) ok &= v == values[0];
      break;
    case ConstraintKind::StrictlyIncreasing:
      for (std::size_t i = 1; i < values.size(); ++i) {
        ok &= values[i] > values[i - 1];
      }
      break;
    case ConstraintKind::StrictlyDecreasing:
      for (std::size_t i = 1; i < values.size(); ++i) {
        ok &= values[i] < values[i - 1];
      }
      break;
    case ConstraintKind::WithinPctOfRef:
      for (std::size_t i = 0; i < values.size(); ++i) {
        const double band = c.tolerance_pct / 100.0 * std::fabs(refs[i]);
        ok &= std::fabs(values[i] - refs[i]) <= band;
      }
      break;
    case ConstraintKind::AtMostRef: {
      const double slack = c.tolerance_pct / 100.0 * std::fabs(refs[0]);
      ok = values[0] <= refs[0] + slack;
      break;
    }
  }
  r.status = ok ? ConstraintStatus::Pass : ConstraintStatus::Fail;
  r.detail = values_str();
  return r;
}

std::vector<ConstraintResult> check_constraints(
    const std::map<std::string, BenchRun>& latest_by_bench,
    const std::vector<Constraint>& constraints) {
  std::vector<ConstraintResult> results;
  results.reserve(constraints.size());
  for (const Constraint& c : constraints) {
    auto it = latest_by_bench.find(c.bench);
    results.push_back(
        check_constraint(c, it == latest_by_bench.end() ? nullptr
                                                        : &it->second));
  }
  return results;
}

}  // namespace hicsync::perf
