// hic-perf pass profiler: per-pass wall time, peak RSS and node-count
// accounting for the compilation flow.
//
// core::Compiler brackets each pass with a ScopedPhase against the
// PassTimer the caller passed in CompileOptions::profiler. A null timer is
// the common case and costs exactly one predictable branch per phase
// (bench_compile asserts this stays in the low single-digit ns).
//
// Rendering reuses the trace::MetricsRegistry counter registry — the same
// machinery `--trace=metrics` reports through — so profile series and
// simulation metrics share one naming scheme and one JSON shape.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/metrics.h"

namespace hicsync::perf {

/// Peak resident-set size of this process in bytes (0 where the platform
/// offers no getrusage).
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Accumulates named phases (in first-seen order) and named counts.
class PassTimer {
 public:
  struct Phase {
    std::string name;
    std::uint64_t wall_ns = 0;
    std::uint64_t calls = 0;
  };

  /// Adds `wall_ns` to the named phase, creating it on first use. Phases
  /// re-entered across loop iterations (techmap per controller) accumulate.
  void add(std::string_view name, std::uint64_t wall_ns);

  /// Records a named quantity (AST statements, netlist nets, ...). Last
  /// write wins.
  void set_count(std::string_view name, std::uint64_t value);

  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
  counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t total_wall_ns() const;

  /// The same data as trace-metrics series: `pass.<name>.wall_us` /
  /// `pass.<name>.calls` counters plus `nodes.<name>` and
  /// `mem.peak_rss_kb`.
  [[nodiscard]] trace::MetricsRegistry registry() const;

  /// Human-readable profile: ordered pass table (wall ms, share, calls),
  /// node counts, peak RSS.
  [[nodiscard]] std::string text() const;
  /// Machine-readable profile; embeds registry().json() under "registry".
  [[nodiscard]] std::string json() const;

 private:
  std::vector<Phase> phases_;
  std::vector<std::pair<std::string, std::uint64_t>> counts_;
};

/// RAII bracket around one pass. With a null timer the constructor and
/// destructor are each a single branch — cheap enough to leave compiled
/// into every Compiler::compile call.
class ScopedPhase {
 public:
  ScopedPhase(PassTimer* timer, const char* name)
      : timer_(timer), name_(name) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (timer_ != nullptr) {
      auto end = std::chrono::steady_clock::now();
      timer_->add(name_,
                  static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          end - start_)
                          .count()));
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PassTimer* timer_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hicsync::perf
