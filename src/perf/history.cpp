#include "perf/history.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/json.h"

namespace hicsync::perf {

namespace fs = std::filesystem;
using support::JsonValue;
using support::JsonWriter;

const double* BenchRun::metric(std::string_view key) const {
  auto it = metrics.find(std::string(key));
  return it == metrics.end() ? nullptr : &it->second;
}

bool BenchRun::flag(std::string_view key) const {
  const double* v = metric(key);
  return v != nullptr && *v != 0.0;
}

namespace {

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

/// google-benchmark times carry a unit; normalize to nanoseconds.
double to_ns(double value, const std::string& unit) {
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  if (unit == "s") return value * 1e9;
  return value;  // "ns" or absent
}

bool parse_gbench(const JsonValue& doc, BenchRun* out, std::string* error) {
  const JsonValue* benches = doc.find("benchmarks");
  if (benches == nullptr || !benches->is_array()) {
    return set_error(error, "gbench report without benchmarks array");
  }
  for (const JsonValue& b : benches->elements) {
    const JsonValue* name = b.find("name");
    if (name == nullptr || !name->is_string()) continue;
    // Skip aggregate rows (mean/median/stddev of repetitions) — the raw
    // iterations are what the MAD baseline wants.
    if (const JsonValue* rt = b.find("run_type");
        rt != nullptr && rt->is_string() && rt->string_value != "iteration") {
      continue;
    }
    std::string unit = "ns";
    if (const JsonValue* u = b.find("time_unit");
        u != nullptr && u->is_string()) {
      unit = u->string_value;
    }
    const std::string prefix = name->string_value + ".";
    if (const JsonValue* v = b.find("real_time");
        v != nullptr && v->is_number()) {
      out->metrics[prefix + "real_time_ns"] = to_ns(v->number_value, unit);
    }
    if (const JsonValue* v = b.find("cpu_time");
        v != nullptr && v->is_number()) {
      out->metrics[prefix + "cpu_time_ns"] = to_ns(v->number_value, unit);
    }
    if (const JsonValue* v = b.find("iterations");
        v != nullptr && v->is_number()) {
      out->metrics[prefix + "iterations"] = v->number_value;
    }
  }
  if (out->metrics.empty()) {
    return set_error(error, "gbench report with no iteration entries");
  }
  return true;
}

bool parse_flat(const JsonValue& doc, BenchRun* out, std::string* error) {
  for (const auto& [key, value] : doc.members) {
    if (key == "bench" && value.is_string()) {
      out->bench = value.string_value;
    } else if (value.is_number()) {
      out->metrics[key] = value.number_value;
    } else if (value.is_bool()) {
      out->metrics[key] = value.bool_value ? 1.0 : 0.0;
    } else if (value.is_string()) {
      out->labels[key] = value.string_value;
    }
    // nested values don't occur in JsonBenchReport output; ignore.
  }
  if (out->bench.empty()) {
    return set_error(error, "flat report without a \"bench\" key");
  }
  return true;
}

}  // namespace

bool parse_bench_json(std::string_view json_text, BenchRun* out,
                      std::string* error) {
  *out = BenchRun();
  JsonValue doc;
  std::string parse_error;
  if (!support::parse_json(json_text, &doc, &parse_error)) {
    return set_error(error, "bad JSON: " + parse_error);
  }
  if (!doc.is_object()) return set_error(error, "top level is not an object");
  if (doc.find("benchmarks") != nullptr) return parse_gbench(doc, out, error);
  return parse_flat(doc, out, error);
}

std::string HistoryStore::to_jsonl(const BenchRun& run) {
  JsonWriter w(/*indent=*/0);
  w.begin_object()
      .key("schema")
      .value(run.schema)
      .key("bench")
      .value(run.bench)
      .key("run_id")
      .value(run.run_id)
      .key("timestamp")
      .value(run.timestamp);
  w.key("metrics").begin_object();
  for (const auto& [key, value] : run.metrics) w.key(key).value(value);
  w.end_object();
  w.key("labels").begin_object();
  for (const auto& [key, value] : run.labels) w.key(key).value(value);
  w.end_object();
  w.end_object();
  return w.str();
}

bool HistoryStore::from_jsonl(std::string_view line, BenchRun* out,
                              std::string* error) {
  *out = BenchRun();
  JsonValue doc;
  std::string parse_error;
  if (!support::parse_json(line, &doc, &parse_error)) {
    return set_error(error, "bad JSONL line: " + parse_error);
  }
  if (!doc.is_object()) return set_error(error, "JSONL line is not an object");
  if (const JsonValue* v = doc.find("schema"); v != nullptr && v->is_number()) {
    out->schema = static_cast<int>(v->number_value);
  }
  if (const JsonValue* v = doc.find("bench"); v != nullptr && v->is_string()) {
    out->bench = v->string_value;
  }
  if (const JsonValue* v = doc.find("run_id"); v != nullptr && v->is_string()) {
    out->run_id = v->string_value;
  }
  if (const JsonValue* v = doc.find("timestamp");
      v != nullptr && v->is_string()) {
    out->timestamp = v->string_value;
  }
  if (const JsonValue* m = doc.find("metrics");
      m != nullptr && m->is_object()) {
    for (const auto& [key, value] : m->members) {
      if (value.is_number()) out->metrics[key] = value.number_value;
    }
  }
  if (const JsonValue* l = doc.find("labels"); l != nullptr && l->is_object()) {
    for (const auto& [key, value] : l->members) {
      if (value.is_string()) out->labels[key] = value.string_value;
    }
  }
  if (out->bench.empty()) return set_error(error, "record without bench name");
  return true;
}

bool HistoryStore::append(const BenchRun& run, std::string* error) {
  if (run.bench.empty()) {
    return error != nullptr ? (*error = "run without bench name", false)
                            : false;
  }
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + root_;
    return false;
  }
  const std::string path = root_ + "/" + run.bench + ".jsonl";
  std::ofstream out(path, std::ios::app);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << to_jsonl(run) << "\n";
  return static_cast<bool>(out);
}

std::vector<BenchRun> HistoryStore::load(const std::string& bench,
                                         std::string* error) const {
  std::vector<BenchRun> runs;
  const std::string path = root_ + "/" + bench + ".jsonl";
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "no history at " + path;
    return runs;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    BenchRun run;
    if (from_jsonl(line, &run)) runs.push_back(std::move(run));
  }
  return runs;
}

std::vector<std::string> HistoryStore::benches() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() == ".jsonl") names.push_back(p.stem().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

int HistoryStore::ingest_directory(const std::string& dir,
                                   const std::string& run_id,
                                   const std::string& timestamp,
                                   std::string* error) {
  std::error_code ec;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        entry.path().extension() == ".json") {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    if (error != nullptr) *error = "cannot read " + dir;
    return -1;
  }
  std::sort(files.begin(), files.end());
  int ingested = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::ostringstream ss;
    ss << in.rdbuf();
    BenchRun run;
    std::string parse_error;
    if (!parse_bench_json(ss.str(), &run, &parse_error)) {
      if (error != nullptr) {
        *error = file.filename().string() + ": " + parse_error;
      }
      return -1;
    }
    if (run.bench.empty()) {
      // gbench reports carry no bench name; derive from the file name.
      std::string stem = file.stem().string();  // BENCH_<name>
      run.bench = stem.substr(std::string("BENCH_").size());
    }
    run.run_id = run_id;
    run.timestamp = timestamp;
    if (!append(run, error)) return -1;
    ++ingested;
  }
  return ingested;
}

}  // namespace hicsync::perf
