// Regression detection over a bench history: the latest run is judged
// against the median of the preceding runs, with a MAD-derived noise band
// so a single flaky sample doesn't widen the gate forever and a single
// quiet baseline doesn't make every 0.1% wiggle a regression.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "perf/history.h"

namespace hicsync::perf {

enum class Verdict {
  Stable,           // within the noise/threshold band
  Improvement,     // moved beyond the band in the good direction
  Regression,      // moved beyond the band in the bad direction
  MissingBaseline, // fewer than two runs — nothing to compare against
  SchemaSkew,      // record schema versions differ; refuse to compare
};

[[nodiscard]] const char* to_string(Verdict v);

/// Which way "better" points for a metric.
enum class Direction { LowerIsBetter, HigherIsBetter };

/// Heuristic default: throughput/quality-style keys (fmax, *_ok, pass,
/// utilization, iterations) are higher-is-better; everything else —
/// times, areas, overheads, latencies — is lower-is-better.
[[nodiscard]] Direction default_direction(const std::string& key);

struct CompareOptions {
  /// Relative change (vs the baseline median) below which a metric is
  /// Stable regardless of MAD. Keyed overrides win over the default.
  double default_threshold_pct = 5.0;
  std::map<std::string, double> threshold_pct;
  /// Noise band half-width in robust standard deviations (1.4826 × MAD).
  double mad_sigmas = 3.0;
  /// Keyed direction overrides (else default_direction()).
  std::map<std::string, Direction> direction;

  [[nodiscard]] double threshold_for(const std::string& key) const;
  [[nodiscard]] Direction direction_for(const std::string& key) const;
};

/// Per-metric comparison outcome.
struct MetricDelta {
  std::string key;
  double baseline_median = 0.0;
  double baseline_mad = 0.0;
  double latest = 0.0;
  double delta_pct = 0.0;  // signed, relative to |median| (0 when median=0)
  Verdict verdict = Verdict::Stable;
};

struct CompareResult {
  /// Worst per-metric verdict (Regression > SchemaSkew > MissingBaseline >
  /// Improvement > Stable).
  Verdict overall = Verdict::MissingBaseline;
  std::vector<MetricDelta> deltas;  // sorted by key

  [[nodiscard]] std::vector<const MetricDelta*> regressions() const;
};

/// Compares the last run in `history` against the median/MAD of every
/// earlier run. Metrics present only in the baseline or only in the
/// latest run are skipped (bench evolution is not a regression).
[[nodiscard]] CompareResult compare_runs(const std::vector<BenchRun>& history,
                                         const CompareOptions& options = {});

}  // namespace hicsync::perf
