#include "perf/profile.h"

#include "support/json.h"
#include "support/strings.h"
#include "support/table.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace hicsync::perf {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void PassTimer::add(std::string_view name, std::uint64_t wall_ns) {
  for (Phase& p : phases_) {
    if (p.name == name) {
      p.wall_ns += wall_ns;
      ++p.calls;
      return;
    }
  }
  phases_.push_back(Phase{std::string(name), wall_ns, 1});
}

void PassTimer::set_count(std::string_view name, std::uint64_t value) {
  for (auto& [n, v] : counts_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  counts_.emplace_back(std::string(name), value);
}

std::uint64_t PassTimer::total_wall_ns() const {
  std::uint64_t total = 0;
  for (const Phase& p : phases_) total += p.wall_ns;
  return total;
}

trace::MetricsRegistry PassTimer::registry() const {
  trace::MetricsRegistry reg;
  for (const Phase& p : phases_) {
    reg.counter("pass." + p.name + ".wall_us").add(p.wall_ns / 1000);
    reg.counter("pass." + p.name + ".calls").add(p.calls);
  }
  for (const auto& [name, value] : counts_) {
    reg.counter("nodes." + name).add(value);
  }
  reg.counter("mem.peak_rss_kb").add(peak_rss_bytes() / 1024);
  return reg;
}

std::string PassTimer::text() const {
  const std::uint64_t total = total_wall_ns();
  std::string out = "=== hic-perf compile profile ===\n";
  support::TextTable table({"pass", "wall ms", "share", "calls"});
  for (const Phase& p : phases_) {
    double share = total == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(p.wall_ns) /
                             static_cast<double>(total);
    table.add_row({p.name,
                   support::format("%.3f", p.wall_ns / 1e6),
                   support::format("%.1f%%", share),
                   std::to_string(p.calls)});
  }
  out += table.str();
  out += support::format("total: %.3f ms\n", total / 1e6);
  if (!counts_.empty()) {
    out += "node counts:\n";
    for (const auto& [name, value] : counts_) {
      out += support::format("  %-24s %llu\n", name.c_str(),
                             static_cast<unsigned long long>(value));
    }
  }
  out += support::format("peak RSS: %.1f MiB\n",
                         static_cast<double>(peak_rss_bytes()) /
                             (1024.0 * 1024.0));
  return out;
}

std::string PassTimer::json() const {
  support::JsonWriter w;
  w.begin_object();
  w.key("passes").begin_array();
  for (const Phase& p : phases_) {
    w.begin_object()
        .key("name")
        .value(p.name)
        .key("wall_ns")
        .value(p.wall_ns)
        .key("calls")
        .value(p.calls)
        .end_object();
  }
  w.end_array();
  w.key("total_wall_ns").value(total_wall_ns());
  w.key("nodes").begin_object();
  for (const auto& [name, value] : counts_) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("peak_rss_bytes").value(peak_rss_bytes());
  w.key("registry").raw(registry().json());
  w.end_object();
  return w.str() + "\n";
}

}  // namespace hicsync::perf
