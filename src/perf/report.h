// hic-report emitters: the measured-vs-paper-constraint dashboard as
// Markdown (including a byte-exact regeneration of EXPERIMENTS.md's
// numeric tables) and as a single-file HTML report with inline sparkline
// history per metric.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "perf/compare.h"
#include "perf/constraints.h"
#include "perf/history.h"

namespace hicsync::perf {

/// Everything the emitters consume, loaded once from a HistoryStore.
struct ReportInputs {
  /// Full trajectory per bench, oldest first.
  std::map<std::string, std::vector<BenchRun>> history;
  /// history[bench].back() for convenience.
  std::map<std::string, BenchRun> latest;

  [[nodiscard]] static ReportInputs from_store(const HistoryStore& store);
  [[nodiscard]] const BenchRun* latest_run(const std::string& bench) const;
};

/// Regenerates the numeric tables of EXPERIMENTS.md (Tables 1 and 2 and
/// the §4 Fmax table) from the latest bench runs. The table rows are
/// byte-identical to the committed document — `check_drift` and the
/// `hic_report.experiments_md_in_sync` ctest depend on that.
[[nodiscard]] std::string emit_experiments_md(const ReportInputs& inputs);

/// Compares every `|`-prefixed table row of `generated` (the
/// emit_experiments_md output) against `committed` (the EXPERIMENTS.md
/// text); returns the rows missing from the committed document (empty =
/// no drift).
[[nodiscard]] std::vector<std::string> check_drift(
    const std::string& committed, const std::string& generated);

/// The measured-vs-constraint dashboard as Markdown: constraint verdicts,
/// then per-bench regression deltas.
[[nodiscard]] std::string emit_dashboard_md(
    const ReportInputs& inputs,
    const std::vector<ConstraintResult>& constraints,
    const std::map<std::string, CompareResult>& comparisons);

/// Same content as a self-contained HTML page with an inline SVG
/// sparkline of every metric's history.
[[nodiscard]] std::string emit_html(
    const ReportInputs& inputs,
    const std::vector<ConstraintResult>& constraints,
    const std::map<std::string, CompareResult>& comparisons);

}  // namespace hicsync::perf
