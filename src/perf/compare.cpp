#include "perf/compare.h"

#include <algorithm>
#include <cmath>

namespace hicsync::perf {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Stable: return "stable";
    case Verdict::Improvement: return "improvement";
    case Verdict::Regression: return "REGRESSION";
    case Verdict::MissingBaseline: return "missing-baseline";
    case Verdict::SchemaSkew: return "schema-skew";
  }
  return "?";
}

Direction default_direction(const std::string& key) {
  static const char* kHigherMarkers[] = {"fmax",       "_ok",  "ok_",
                                         "pass",       "util", "iterations",
                                         "handoff",    "in_paper_band",
                                         "monotonic",  "varies",
                                         "decreasing", "faster",
                                         "throughput", "scaling"};
  for (const char* marker : kHigherMarkers) {
    if (key.find(marker) != std::string::npos) {
      return Direction::HigherIsBetter;
    }
  }
  return Direction::LowerIsBetter;
}

double CompareOptions::threshold_for(const std::string& key) const {
  auto it = threshold_pct.find(key);
  return it == threshold_pct.end() ? default_threshold_pct : it->second;
}

Direction CompareOptions::direction_for(const std::string& key) const {
  auto it = direction.find(key);
  return it == direction.end() ? default_direction(key) : it->second;
}

std::vector<const MetricDelta*> CompareResult::regressions() const {
  std::vector<const MetricDelta*> out;
  for (const MetricDelta& d : deltas) {
    if (d.verdict == Verdict::Regression) out.push_back(&d);
  }
  return out;
}

namespace {

/// Rank verdicts by severity for the overall roll-up.
int severity(Verdict v) {
  switch (v) {
    case Verdict::Stable: return 0;
    case Verdict::Improvement: return 1;
    case Verdict::MissingBaseline: return 2;
    case Verdict::SchemaSkew: return 3;
    case Verdict::Regression: return 4;
  }
  return 0;
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

CompareResult compare_runs(const std::vector<BenchRun>& history,
                           const CompareOptions& options) {
  CompareResult result;
  if (history.size() < 2) {
    result.overall = Verdict::MissingBaseline;
    return result;
  }
  const BenchRun& latest = history.back();
  for (const BenchRun& run : history) {
    if (run.schema != latest.schema) {
      result.overall = Verdict::SchemaSkew;
      return result;
    }
  }
  if (latest.schema != kHistorySchemaVersion) {
    result.overall = Verdict::SchemaSkew;
    return result;
  }

  result.overall = Verdict::Stable;
  for (const auto& [key, latest_value] : latest.metrics) {
    std::vector<double> baseline;
    baseline.reserve(history.size() - 1);
    for (std::size_t i = 0; i + 1 < history.size(); ++i) {
      if (const double* v = history[i].metric(key)) baseline.push_back(*v);
    }
    if (baseline.empty()) continue;  // new metric: no baseline yet

    MetricDelta delta;
    delta.key = key;
    delta.latest = latest_value;
    delta.baseline_median = median_of(baseline);
    std::vector<double> abs_dev;
    abs_dev.reserve(baseline.size());
    for (double v : baseline) {
      abs_dev.push_back(std::fabs(v - delta.baseline_median));
    }
    delta.baseline_mad = median_of(std::move(abs_dev));

    const double diff = latest_value - delta.baseline_median;
    delta.delta_pct = delta.baseline_median == 0.0
                          ? (diff == 0.0 ? 0.0 : 100.0)
                          : 100.0 * diff / std::fabs(delta.baseline_median);

    // Band: at least threshold_pct of the median, widened to the robust
    // noise estimate when the baseline itself is jittery.
    const double pct_band = options.threshold_for(key) / 100.0 *
                            std::fabs(delta.baseline_median);
    const double mad_band = options.mad_sigmas * 1.4826 * delta.baseline_mad;
    const double band = std::max(pct_band, mad_band);

    if (std::fabs(diff) <= band) {
      delta.verdict = Verdict::Stable;
    } else {
      const bool worse = options.direction_for(key) == Direction::LowerIsBetter
                             ? diff > 0.0
                             : diff < 0.0;
      delta.verdict = worse ? Verdict::Regression : Verdict::Improvement;
    }
    if (severity(delta.verdict) > severity(result.overall)) {
      result.overall = delta.verdict;
    }
    result.deltas.push_back(std::move(delta));
  }
  return result;
}

}  // namespace hicsync::perf
