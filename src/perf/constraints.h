// The paper-prose claims of §3/§4, encoded as machine-checkable
// constraints over the normalized bench metrics (perf::BenchRun).
//
// These are the same shape claims EXPERIMENTS.md reconciles in prose —
// FF count constant while pseudo-ports grow, LUT-only growth, the
// 158/130/125 and 177/136/129 MHz Fmax ladders, the 5–20 % controller
// overhead band — expressed once so `hic-report --check` can gate CI on
// them instead of a human re-reading the tables.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "perf/history.h"

namespace hicsync::perf {

enum class ConstraintKind {
  FlagTrue,           // metrics[keys[0]] != 0
  EqualAcross,        // all keys equal (FF constancy)
  StrictlyIncreasing, // keys in listed order (LUT growth)
  StrictlyDecreasing, // keys in listed order (Fmax vs consumers)
  WithinPctOfRef,     // |keys[i] - ref_keys[i]| <= tolerance_pct% of ref
  AtMostRef,          // keys[0] <= ref_keys[0] (+tolerance_pct% slack)
};

struct Constraint {
  std::string id;           // "table1.ff_constant"
  std::string bench;        // history bench name the metrics live in
  std::string description;  // the paper sentence being checked
  ConstraintKind kind;
  std::vector<std::string> keys;
  std::vector<std::string> ref_keys;  // WithinPctOfRef / AtMostRef
  double tolerance_pct = 0.0;
};

enum class ConstraintStatus { Pass, Fail, MissingData };

struct ConstraintResult {
  Constraint constraint;
  ConstraintStatus status = ConstraintStatus::MissingData;
  std::string detail;  // measured values / what went wrong
};

/// The built-in claim table covering every `BENCH_<name>.json` producer.
[[nodiscard]] std::vector<Constraint> paper_constraints();

/// Evaluates one constraint against the latest run of its bench (nullptr
/// → MissingData).
[[nodiscard]] ConstraintResult check_constraint(const Constraint& c,
                                                const BenchRun* latest);

/// Evaluates `constraints` against `latest_by_bench`; results keep table
/// order.
[[nodiscard]] std::vector<ConstraintResult> check_constraints(
    const std::map<std::string, BenchRun>& latest_by_bench,
    const std::vector<Constraint>& constraints = paper_constraints());

}  // namespace hicsync::perf
