#include "baseline/protocols.h"

#include <algorithm>
#include <string>

namespace hicsync::baseline {

double HandoffMetrics::mean_latency() const {
  if (round_latencies.empty()) return 0.0;
  double sum = 0;
  for (auto v : round_latencies) sum += static_cast<double>(v);
  return sum / static_cast<double>(round_latencies.size());
}

std::uint64_t HandoffMetrics::max_latency() const {
  std::uint64_t v = 0;
  for (auto l : round_latencies) v = std::max(v, l);
  return v;
}

std::uint64_t HandoffMetrics::min_latency() const {
  if (round_latencies.empty()) return 0;
  std::uint64_t v = round_latencies[0];
  for (auto l : round_latencies) v = std::min(v, l);
  return v;
}

bool HandoffMetrics::latencies_identical() const {
  return round_latencies.empty() || min_latency() == max_latency();
}

namespace {

constexpr std::uint64_t kDataAddr = 4;
constexpr std::uint64_t kFlagAddr = 5;
constexpr std::uint64_t kAckAddr = 6;

std::string idx(const char* base, int i) {
  return std::string(base) + std::to_string(i);
}

/// Value published in round r (1-based generation).
std::uint64_t round_value(int r) { return 0x1000u + static_cast<std::uint64_t>(r); }

// ---------------------------------------------------------------------------
// Generic client scripting over a req/we/addr/wdata + grant/valid interface
// (bare and lockmem share it; the organizations use dedicated drivers).
// ---------------------------------------------------------------------------

struct Client {
  enum class OpKind { Write, Read, Poll, Increment, Lock, Unlock, Stop };
  struct Op {
    OpKind kind;
    std::uint64_t addr = 0;
    std::uint64_t data = 0;      // Write: value; Poll: expected value
    std::uint64_t* capture = nullptr;  // Read destination
    int round = -1;              // marks round completion points
  };
  int id = 0;
  std::vector<Op> ops;
  std::size_t pc = 0;
  enum class Stage { Drive, AwaitValid, WriteBack } stage = Stage::Drive;
  std::uint64_t rmw_value = 0;  // captured value for Increment write-back

  [[nodiscard]] bool done() const { return pc >= ops.size(); }
  [[nodiscard]] const Op& op() const { return ops[pc]; }
};

struct GenericRun {
  rtl::ModuleSim sim;
  std::vector<Client> clients;
  HandoffMetrics metrics;

  explicit GenericRun(const rtl::Module& m) : sim(m) { sim.reset(); }

  void run(int rounds, int consumers, std::uint64_t max_cycles,
           bool has_locks) {
    std::vector<std::uint64_t> publish_cycle(
        static_cast<std::size_t>(rounds), 0);
    std::vector<int> consumed(static_cast<std::size_t>(rounds), 0);
    std::vector<std::uint64_t> complete_cycle(
        static_cast<std::size_t>(rounds), 0);

    std::uint64_t cycle = 0;
    bool all_ok = true;
    while (cycle < max_cycles) {
      bool all_done = true;
      for (const Client& c : clients) {
        if (!c.done()) all_done = false;
      }
      if (all_done) break;

      // Drive.
      for (Client& c : clients) {
        std::string s = std::to_string(c.id);
        sim.set_input("req" + s, 0);
        if (has_locks) {
          sim.set_input(idx("lock_req", c.id), 0);
          sim.set_input(idx("unlock_req", c.id), 0);
        }
        if (c.done()) continue;
        const Client::Op& op = c.op();
        switch (op.kind) {
          case Client::OpKind::Write:
            if (c.stage == Client::Stage::Drive) {
              sim.set_input("req" + s, 1);
              sim.set_input("we" + s, 1);
              sim.set_input("addr" + s, op.addr);
              sim.set_input("wdata" + s, op.data);
            }
            break;
          case Client::OpKind::Read:
          case Client::OpKind::Poll:
            if (c.stage == Client::Stage::Drive) {
              sim.set_input("req" + s, 1);
              sim.set_input("we" + s, 0);
              sim.set_input("addr" + s, op.addr);
            }
            break;
          case Client::OpKind::Increment:
            if (c.stage == Client::Stage::Drive) {
              sim.set_input("req" + s, 1);
              sim.set_input("we" + s, 0);
              sim.set_input("addr" + s, op.addr);
            } else if (c.stage == Client::Stage::WriteBack) {
              sim.set_input("req" + s, 1);
              sim.set_input("we" + s, 1);
              sim.set_input("addr" + s, op.addr);
              sim.set_input("wdata" + s, c.rmw_value + 1);
            }
            break;
          case Client::OpKind::Lock:
            sim.set_input(idx("lock_req", c.id), 1);
            sim.set_input(idx("lock_addr", c.id), op.addr);
            break;
          case Client::OpKind::Unlock:
            sim.set_input(idx("unlock_req", c.id), 1);
            break;
          case Client::OpKind::Stop:
            break;
        }
      }

      sim.settle();

      // Observe.
      for (Client& c : clients) {
        if (c.done()) continue;
        Client::Op& op = c.ops[c.pc];
        std::string s = std::to_string(c.id);
        switch (op.kind) {
          case Client::OpKind::Write:
            if (sim.get("grant" + s) != 0) {
              ++metrics.bus_grants;
              if (op.round >= 0) {
                publish_cycle[static_cast<std::size_t>(op.round)] = cycle;
              }
              ++c.pc;
            }
            break;
          case Client::OpKind::Read:
          case Client::OpKind::Poll:
            if (c.stage == Client::Stage::Drive) {
              if (sim.get("grant" + s) != 0) {
                ++metrics.bus_grants;
                c.stage = Client::Stage::AwaitValid;
              }
            } else if (sim.get("valid" + s) != 0) {
              std::uint64_t v = sim.get("bus_rdata");
              c.stage = Client::Stage::Drive;
              if (op.kind == Client::OpKind::Read) {
                if (op.capture != nullptr) *op.capture = v;
                if (op.round >= 0) {
                  auto r = static_cast<std::size_t>(op.round);
                  if (v != round_value(op.round)) all_ok = false;
                  if (++consumed[r] ==
                      static_cast<int>(clients.size()) - 1) {
                    complete_cycle[r] = cycle;
                  }
                }
                ++c.pc;
              } else {
                // Poll: retry until the expected generation shows up.
                if (v == op.data) ++c.pc;
              }
            }
            break;
          case Client::OpKind::Increment:
            if (c.stage == Client::Stage::Drive) {
              if (sim.get("grant" + s) != 0) {
                ++metrics.bus_grants;
                c.stage = Client::Stage::AwaitValid;
              }
            } else if (c.stage == Client::Stage::AwaitValid) {
              if (sim.get("valid" + s) != 0) {
                c.rmw_value = sim.get("bus_rdata");
                c.stage = Client::Stage::WriteBack;
              }
            } else {
              if (sim.get("grant" + s) != 0) {
                ++metrics.bus_grants;
                c.stage = Client::Stage::Drive;
                ++c.pc;
              }
            }
            break;
          case Client::OpKind::Lock:
            if (sim.get(idx("lock_grant", c.id)) != 0) ++c.pc;
            break;
          case Client::OpKind::Unlock:
            // The release pulse was driven this cycle and commits on this
            // edge.
            ++c.pc;
            break;
          case Client::OpKind::Stop:
            ++c.pc;
            break;
        }
      }

      sim.step();
      ++cycle;
    }

    metrics.total_cycles = cycle;
    bool finished = true;
    for (const Client& c : clients) {
      if (!c.done()) finished = false;
    }
    metrics.ok = finished && all_ok;
    for (std::size_t r = 0; r < publish_cycle.size(); ++r) {
      if (complete_cycle[r] >= publish_cycle[r] && complete_cycle[r] != 0) {
        metrics.round_latencies.push_back(complete_cycle[r] -
                                          publish_cycle[r]);
      }
    }
    (void)consumers;
  }
};

}  // namespace

HandoffMetrics run_polling_handoff(const rtl::Module& bare, int consumers,
                                   int rounds, std::uint64_t max_cycles) {
  GenericRun run(bare);
  // Producer = client 0. Flow control without locks: each consumer owns a
  // private ack word (kAckAddr + i) it bumps after reading; the producer
  // polls every ack before starting the next round.
  Client producer;
  producer.id = 0;
  for (int r = 0; r < rounds; ++r) {
    producer.ops.push_back(
        {Client::OpKind::Write, kDataAddr, round_value(r), nullptr, -1});
    // Publishing the generation flag completes the produce.
    producer.ops.push_back({Client::OpKind::Write, kFlagAddr,
                            static_cast<std::uint64_t>(r + 1), nullptr, r});
    for (int i = 0; i < consumers; ++i) {
      producer.ops.push_back(
          {Client::OpKind::Poll, kAckAddr + static_cast<std::uint64_t>(i),
           static_cast<std::uint64_t>(r + 1), nullptr, -1});
    }
  }
  run.clients.push_back(std::move(producer));
  for (int i = 0; i < consumers; ++i) {
    Client c;
    c.id = i + 1;
    for (int r = 0; r < rounds; ++r) {
      c.ops.push_back({Client::OpKind::Poll, kFlagAddr,
                       static_cast<std::uint64_t>(r + 1), nullptr, -1});
      c.ops.push_back({Client::OpKind::Read, kDataAddr, 0, nullptr, r});
      c.ops.push_back({Client::OpKind::Write,
                       kAckAddr + static_cast<std::uint64_t>(i),
                       static_cast<std::uint64_t>(r + 1), nullptr, -1});
    }
    run.clients.push_back(std::move(c));
  }
  run.run(rounds, consumers, max_cycles, /*has_locks=*/false);
  return run.metrics;
}

HandoffMetrics run_lock_handoff(const rtl::Module& lockmem, int consumers,
                                int rounds, std::uint64_t max_cycles) {
  GenericRun run(lockmem);
  // The hand-written discipline the paper calls tedious and error-prone:
  // the producer cannot overwrite until every consumer acknowledged the
  // previous round, so an ack word is maintained with locked
  // read-modify-writes and the producer polls it between rounds.
  Client producer;
  producer.id = 0;
  for (int r = 0; r < rounds; ++r) {
    producer.ops.push_back({Client::OpKind::Lock, kDataAddr, 0, nullptr, -1});
    producer.ops.push_back(
        {Client::OpKind::Write, kDataAddr, round_value(r), nullptr, -1});
    producer.ops.push_back({Client::OpKind::Write, kFlagAddr,
                            static_cast<std::uint64_t>(r + 1), nullptr, r});
    producer.ops.push_back({Client::OpKind::Unlock, 0, 0, nullptr, -1});
    producer.ops.push_back(
        {Client::OpKind::Poll, kAckAddr,
         static_cast<std::uint64_t>((r + 1) * consumers), nullptr, -1});
  }
  run.clients.push_back(std::move(producer));
  for (int i = 0; i < consumers; ++i) {
    Client c;
    c.id = i + 1;
    for (int r = 0; r < rounds; ++r) {
      c.ops.push_back({Client::OpKind::Poll, kFlagAddr,
                       static_cast<std::uint64_t>(r + 1), nullptr, -1});
      c.ops.push_back({Client::OpKind::Lock, kDataAddr, 0, nullptr, -1});
      c.ops.push_back({Client::OpKind::Read, kDataAddr, 0, nullptr, r});
      c.ops.push_back({Client::OpKind::Unlock, 0, 0, nullptr, -1});
      c.ops.push_back({Client::OpKind::Lock, kAckAddr, 0, nullptr, -1});
      c.ops.push_back({Client::OpKind::Increment, kAckAddr, 0, nullptr, -1});
      c.ops.push_back({Client::OpKind::Unlock, 0, 0, nullptr, -1});
    }
    run.clients.push_back(std::move(c));
  }
  run.run(rounds, consumers, max_cycles, /*has_locks=*/true);
  return run.metrics;
}

// ---------------------------------------------------------------------------
// Organization drivers (request/grant protocols of the two organizations).
// ---------------------------------------------------------------------------

namespace {

struct OrgRun {
  rtl::ModuleSim sim;
  HandoffMetrics metrics;

  explicit OrgRun(const rtl::Module& m) : sim(m) { sim.reset(); }
};

}  // namespace

HandoffMetrics run_arbitrated_handoff(const rtl::Module& org, int consumers,
                                      int rounds, std::uint64_t max_cycles) {
  OrgRun run(org);
  rtl::ModuleSim& sim = run.sim;

  enum class PStage { Request, Done };
  enum class CStage { Request, AwaitValid, Done };
  int round = 0;
  PStage prod = PStage::Request;
  std::vector<CStage> cons(static_cast<std::size_t>(consumers),
                           CStage::Request);
  std::uint64_t publish = 0;
  int consumed = 0;
  bool ok = true;
  std::uint64_t cycle = 0;

  while (round < rounds && cycle < max_cycles) {
    // Drive.
    sim.set_input("d_req0", 0);
    for (int i = 0; i < consumers; ++i) {
      sim.set_input(idx("c_req", i), 0);
    }
    if (prod == PStage::Request) {
      sim.set_input("d_req0", 1);
      sim.set_input("d_addr0", kDataAddr);
      sim.set_input("d_wdata0", round_value(round));
    }
    for (int i = 0; i < consumers; ++i) {
      if (cons[static_cast<std::size_t>(i)] == CStage::Request) {
        sim.set_input(idx("c_req", i), 1);
        sim.set_input(idx("c_addr", i), kDataAddr);
      }
    }
    sim.settle();
    // Observe.
    if (prod == PStage::Request && sim.get("d_grant0") != 0) {
      ++run.metrics.bus_grants;
      publish = cycle;
      prod = PStage::Done;
    }
    for (int i = 0; i < consumers; ++i) {
      auto& st = cons[static_cast<std::size_t>(i)];
      if (st == CStage::Request && sim.get(idx("c_grant", i)) != 0) {
        ++run.metrics.bus_grants;
        st = CStage::AwaitValid;
      } else if (st == CStage::AwaitValid &&
                 sim.get(idx("c_valid", i)) != 0) {
        if (sim.get("bus_rdata") != round_value(round)) ok = false;
        st = CStage::Done;
        ++consumed;
      }
    }
    sim.step();
    ++cycle;

    if (prod == PStage::Done && consumed == consumers) {
      run.metrics.round_latencies.push_back(cycle - 1 - publish);
      ++round;
      prod = PStage::Request;
      for (auto& st : cons) st = CStage::Request;
      consumed = 0;
    }
  }
  run.metrics.total_cycles = cycle;
  run.metrics.ok = ok && round == rounds;
  return run.metrics;
}

HandoffMetrics run_eventdriven_handoff(const rtl::Module& org, int consumers,
                                       int rounds,
                                       std::uint64_t max_cycles) {
  OrgRun run(org);
  rtl::ModuleSim& sim = run.sim;

  // Slot layout of the 1-producer scenario: slot 0 = producer, slots
  // 1..consumers = the consumers in static order.
  enum class CStage { WaitSlot, AwaitValid, Done };
  int round = 0;
  bool produced = false;
  std::vector<CStage> cons(static_cast<std::size_t>(consumers),
                           CStage::WaitSlot);
  std::uint64_t publish = 0;
  int consumed = 0;
  bool ok = true;
  std::uint64_t cycle = 0;

  while (round < rounds && cycle < max_cycles) {
    sim.set_input("p_req0", 0);
    for (int i = 0; i < consumers; ++i) sim.set_input(idx("c_req", i), 0);
    std::uint64_t slot = sim.get("slot");
    if (!produced && slot == 0) {
      sim.set_input("p_req0", 1);
      sim.set_input("p_addr0", kDataAddr);
      sim.set_input("p_wdata0", round_value(round));
    }
    for (int i = 0; i < consumers; ++i) {
      if (cons[static_cast<std::size_t>(i)] == CStage::WaitSlot &&
          slot == static_cast<std::uint64_t>(i + 1)) {
        sim.set_input(idx("c_req", i), 1);
        sim.set_input(idx("c_addr", i), kDataAddr);
      }
    }
    sim.settle();
    if (!produced && sim.get("p_grant0") != 0) {
      ++run.metrics.bus_grants;
      publish = cycle;
      produced = true;
    }
    for (int i = 0; i < consumers; ++i) {
      auto& st = cons[static_cast<std::size_t>(i)];
      if (st == CStage::WaitSlot &&
          slot == static_cast<std::uint64_t>(i + 1) &&
          sim.get(idx("c_req", i)) != 0) {
        ++run.metrics.bus_grants;
        st = CStage::AwaitValid;
      } else if (st == CStage::AwaitValid &&
                 sim.get(idx("c_valid", i)) != 0) {
        if (sim.get("bus_rdata") != round_value(round)) ok = false;
        st = CStage::Done;
        ++consumed;
      }
    }
    sim.step();
    ++cycle;

    if (produced && consumed == consumers) {
      run.metrics.round_latencies.push_back(cycle - 1 - publish);
      ++round;
      produced = false;
      for (auto& st : cons) st = CStage::WaitSlot;
      consumed = 0;
    }
  }
  run.metrics.total_cycles = cycle;
  run.metrics.ok = ok && round == rounds;
  return run.metrics;
}

}  // namespace hicsync::baseline
