// Bare shared-BRAM wrapper — the "manual guard" baseline substrate.
//
// No dependency enforcement at all: a direct port plus a round-robin
// arbitrated port. Synchronization is entirely up to the clients; the
// classic hand-written discipline polls a flag word (producer writes data,
// then bumps a generation flag; consumers poll the flag, then read the
// data). protocols.h drives that discipline so the cost and fragility of
// the manual approach can be measured against the generated organizations.
#pragma once

#include <string>

#include "rtl/netlist.h"

namespace hicsync::baseline {

struct BareConfig {
  int addr_width = 9;
  int data_width = 32;
  int num_clients = 3;
};

/// Port names: clk, rst; a_en/a_we/a_addr/a_wdata -> a_rdata;
/// req<i>/we<i>/addr<i>/wdata<i> -> grant<i>, valid<i>, bus_rdata.
rtl::Module& generate_bare(rtl::Design& design, const BareConfig& cfg,
                           const std::string& name);

}  // namespace hicsync::baseline
