#include "baseline/bare.h"

#include "rtl/builder.h"
#include "support/bits.h"

namespace hicsync::baseline {

using rtl::ebin;
using rtl::econst;
using rtl::enot;
using rtl::eref;
using rtl::RtlExprPtr;
using rtl::RtlOp;

rtl::Module& generate_bare(rtl::Design& design, const BareConfig& cfg,
                           const std::string& name) {
  rtl::Module& m = design.add_module(name);
  const int aw = cfg.addr_width;
  const int dw = cfg.data_width;
  const int n = cfg.num_clients;
  const int ow = support::clog2_at_least1(static_cast<std::uint64_t>(n));

  (void)m.clk();
  (void)m.rst();

  int a_en = m.add_input("a_en", 1);
  int a_we = m.add_input("a_we", 1);
  int a_addr = m.add_input("a_addr", aw);
  int a_wdata = m.add_input("a_wdata", dw);
  int a_rdata = m.add_output_reg("a_rdata", dw);

  std::vector<int> req(static_cast<std::size_t>(n));
  std::vector<int> we(static_cast<std::size_t>(n));
  std::vector<int> addr(static_cast<std::size_t>(n));
  std::vector<int> wdata(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string s = std::to_string(i);
    req[static_cast<std::size_t>(i)] = m.add_input("req" + s, 1);
    we[static_cast<std::size_t>(i)] = m.add_input("we" + s, 1);
    addr[static_cast<std::size_t>(i)] = m.add_input("addr" + s, aw);
    wdata[static_cast<std::size_t>(i)] = m.add_input("wdata" + s, dw);
  }
  int bus_rdata = m.add_output_reg("bus_rdata", dw);

  rtl::ArbiterNets arb = rtl::build_round_robin_arbiter(m, req, "arb");
  for (int i = 0; i < n; ++i) {
    int g = m.add_output("grant" + std::to_string(i), 1);
    m.assign(g, eref(arb.grant[static_cast<std::size_t>(i)], 1));
  }

  std::vector<RtlExprPtr> addr_vals;
  std::vector<RtlExprPtr> data_vals;
  std::vector<RtlExprPtr> we_terms;
  std::vector<RtlExprPtr> rd_terms;
  std::vector<RtlExprPtr> ids;
  for (int i = 0; i < n; ++i) {
    addr_vals.push_back(eref(addr[static_cast<std::size_t>(i)], aw));
    data_vals.push_back(eref(wdata[static_cast<std::size_t>(i)], dw));
    we_terms.push_back(
        ebin(RtlOp::And, eref(arb.grant[static_cast<std::size_t>(i)], 1),
             eref(we[static_cast<std::size_t>(i)], 1)));
    rd_terms.push_back(
        ebin(RtlOp::And, eref(arb.grant[static_cast<std::size_t>(i)], 1),
             enot(eref(we[static_cast<std::size_t>(i)], 1))));
    ids.push_back(econst(static_cast<std::uint64_t>(i), ow));
  }
  int port1_addr = m.add_reg("port1_addr", aw);
  m.seq(port1_addr,
        rtl::build_onehot_mux(m, arb.grant, std::move(addr_vals), aw));
  int port1_wdata = m.add_reg("port1_wdata", dw);
  m.seq(port1_wdata,
        rtl::build_onehot_mux(m, arb.grant, std::move(data_vals), dw));
  int port1_we = m.add_reg("port1_we", 1);
  m.seq(port1_we, rtl::eor_tree(std::move(we_terms), 1));

  int v1 = m.add_reg("valid_q1", 1);
  m.seq(v1, rtl::eor_tree(std::move(rd_terms), 1));
  int v2 = m.add_reg("valid_q2", 1);
  m.seq(v2, eref(v1, 1));
  int id1 = m.add_reg("grant_id_q1", ow);
  m.seq(id1, rtl::build_onehot_mux(m, arb.grant, std::move(ids), ow));
  int id2 = m.add_reg("grant_id_q2", ow);
  m.seq(id2, eref(id1, ow));
  for (int i = 0; i < n; ++i) {
    int v = m.add_output("valid" + std::to_string(i), 1);
    m.assign(v, ebin(RtlOp::And, eref(v2, 1),
                     ebin(RtlOp::Eq, eref(id2, ow),
                          econst(static_cast<std::uint64_t>(i), ow))));
  }

  rtl::Memory& mem = m.add_memory("mem", dw, 1 << aw);
  {
    rtl::MemoryPort p0;
    p0.addr = eref(a_addr, aw);
    p0.write_enable = ebin(RtlOp::And, eref(a_en, 1), eref(a_we, 1));
    p0.write_data = eref(a_wdata, dw);
    p0.read_data = a_rdata;
    mem.ports.push_back(std::move(p0));
  }
  {
    rtl::MemoryPort p1;
    p1.addr = eref(port1_addr, aw);
    p1.write_enable = eref(port1_we, 1);
    p1.write_data = eref(port1_wdata, dw);
    p1.read_data = bus_rdata;
    mem.ports.push_back(std::move(p1));
  }

  return m;
}

}  // namespace hicsync::baseline
