#include "baseline/lockmem.h"

#include "rtl/builder.h"
#include "support/bits.h"

namespace hicsync::baseline {

using rtl::ebin;
using rtl::econst;
using rtl::emux;
using rtl::enot;
using rtl::eref;
using rtl::ereduce_or;
using rtl::RtlExprPtr;
using rtl::RtlOp;

rtl::Module& generate_lockmem(rtl::Design& design, const LockMemConfig& cfg,
                              const std::string& name) {
  rtl::Module& m = design.add_module(name);
  const int aw = cfg.addr_width;
  const int dw = cfg.data_width;
  const int n = cfg.num_clients;
  const int nl = static_cast<int>(cfg.lock_addrs.size());
  const int ow = support::clog2_at_least1(static_cast<std::uint64_t>(n));

  (void)m.clk();
  (void)m.rst();

  // Direct port 0.
  int a_en = m.add_input("a_en", 1);
  int a_we = m.add_input("a_we", 1);
  int a_addr = m.add_input("a_addr", aw);
  int a_wdata = m.add_input("a_wdata", dw);
  int a_rdata = m.add_output_reg("a_rdata", dw);

  // Clients.
  std::vector<int> req(static_cast<std::size_t>(n));
  std::vector<int> we(static_cast<std::size_t>(n));
  std::vector<int> addr(static_cast<std::size_t>(n));
  std::vector<int> wdata(static_cast<std::size_t>(n));
  std::vector<int> grant(static_cast<std::size_t>(n));
  std::vector<int> valid(static_cast<std::size_t>(n));
  std::vector<int> lock_req(static_cast<std::size_t>(n));
  std::vector<int> lock_addr(static_cast<std::size_t>(n));
  std::vector<int> unlock_req(static_cast<std::size_t>(n));
  std::vector<int> lock_grant(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string s = std::to_string(i);
    req[static_cast<std::size_t>(i)] = m.add_input("req" + s, 1);
    we[static_cast<std::size_t>(i)] = m.add_input("we" + s, 1);
    addr[static_cast<std::size_t>(i)] = m.add_input("addr" + s, aw);
    wdata[static_cast<std::size_t>(i)] = m.add_input("wdata" + s, dw);
    grant[static_cast<std::size_t>(i)] = m.add_output("grant" + s, 1);
    valid[static_cast<std::size_t>(i)] = m.add_output("valid" + s, 1);
    lock_req[static_cast<std::size_t>(i)] = m.add_input("lock_req" + s, 1);
    lock_addr[static_cast<std::size_t>(i)] =
        m.add_input("lock_addr" + s, aw);
    unlock_req[static_cast<std::size_t>(i)] =
        m.add_input("unlock_req" + s, 1);
    lock_grant[static_cast<std::size_t>(i)] =
        m.add_output("lock_grant" + s, 1);
  }
  int bus_rdata = m.add_output_reg("bus_rdata", dw);

  // ---- Lock registers: held bit + owner per lockable entry. ----
  std::vector<int> held(static_cast<std::size_t>(nl));
  std::vector<int> owner(static_cast<std::size_t>(nl));
  for (int l = 0; l < nl; ++l) {
    held[static_cast<std::size_t>(l)] =
        m.add_reg("lock" + std::to_string(l) + "_held", 1);
    owner[static_cast<std::size_t>(l)] =
        m.add_reg("lock" + std::to_string(l) + "_owner", ow);
  }

  auto lock_match = [&](int addr_net, int l) {
    return ebin(RtlOp::Eq, eref(addr_net, aw),
                econst(cfg.lock_addrs[static_cast<std::size_t>(l)], aw));
  };

  // Acquire: per lock, round-robin among clients whose lock_addr matches a
  // free lock. One acquisition per lock per cycle.
  std::vector<std::vector<int>> acquire(
      static_cast<std::size_t>(nl));
  for (int l = 0; l < nl; ++l) {
    std::vector<int> want(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      int w = m.add_wire(
          "want_l" + std::to_string(l) + "_c" + std::to_string(i), 1);
      m.assign(w,
               ebin(RtlOp::And,
                    eref(lock_req[static_cast<std::size_t>(i)], 1),
                    ebin(RtlOp::And,
                         lock_match(lock_addr[static_cast<std::size_t>(i)],
                                    l),
                         enot(eref(held[static_cast<std::size_t>(l)], 1)))));
      want[static_cast<std::size_t>(i)] = w;
    }
    rtl::ArbiterNets arb = rtl::build_round_robin_arbiter(
        m, want, "lkarb" + std::to_string(l));
    acquire[static_cast<std::size_t>(l)] = arb.grant;

    // Lock state update: acquire sets held+owner; unlock by owner clears.
    std::vector<RtlExprPtr> rel_terms;
    for (int i = 0; i < n; ++i) {
      rel_terms.push_back(ebin(
          RtlOp::And, eref(unlock_req[static_cast<std::size_t>(i)], 1),
          ebin(RtlOp::And, eref(held[static_cast<std::size_t>(l)], 1),
               ebin(RtlOp::Eq, eref(owner[static_cast<std::size_t>(l)], ow),
                    econst(static_cast<std::uint64_t>(i), ow)))));
    }
    RtlExprPtr release = rtl::eor_tree(std::move(rel_terms), 1);
    RtlExprPtr acq = rtl::eor_tree(
        [&] {
          std::vector<RtlExprPtr> t;
          for (int i = 0; i < n; ++i) {
            t.push_back(eref(arb.grant[static_cast<std::size_t>(i)], 1));
          }
          return t;
        }(),
        1);
    int acq_w = m.add_wire("acq_l" + std::to_string(l), 1);
    m.assign(acq_w, std::move(acq));
    RtlExprPtr next_held =
        emux(eref(acq_w, 1), econst(1, 1),
             emux(std::move(release), econst(0, 1),
                  eref(held[static_cast<std::size_t>(l)], 1)));
    m.seq(held[static_cast<std::size_t>(l)], std::move(next_held));
    std::vector<RtlExprPtr> owner_vals;
    for (int i = 0; i < n; ++i) {
      owner_vals.push_back(econst(static_cast<std::uint64_t>(i), ow));
    }
    RtlExprPtr next_owner =
        emux(eref(acq_w, 1),
             rtl::build_onehot_mux(m, arb.grant, std::move(owner_vals), ow),
             eref(owner[static_cast<std::size_t>(l)], ow));
    m.seq(owner[static_cast<std::size_t>(l)], std::move(next_owner));
  }

  // lock_grant<i>: level signal — client currently holds some lock.
  for (int i = 0; i < n; ++i) {
    std::vector<RtlExprPtr> holds;
    for (int l = 0; l < nl; ++l) {
      RtlExprPtr now = ebin(
          RtlOp::And, eref(held[static_cast<std::size_t>(l)], 1),
          ebin(RtlOp::Eq, eref(owner[static_cast<std::size_t>(l)], ow),
               econst(static_cast<std::uint64_t>(i), ow)));
      holds.push_back(std::move(now));
    }
    m.assign(lock_grant[static_cast<std::size_t>(i)],
             rtl::eor_tree(std::move(holds), 1));
  }

  // ---- Data access: allowed when the address's lock (if any) is held by
  // the requester (or the address is unlocked); round-robin among the
  // allowed requesters. ----
  std::vector<int> allowed(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<RtlExprPtr> conflicts;
    for (int l = 0; l < nl; ++l) {
      // Conflict: address matches a lock held by someone else.
      conflicts.push_back(ebin(
          RtlOp::And, lock_match(addr[static_cast<std::size_t>(i)], l),
          ebin(RtlOp::And, eref(held[static_cast<std::size_t>(l)], 1),
               ebin(RtlOp::Ne, eref(owner[static_cast<std::size_t>(l)], ow),
                    econst(static_cast<std::uint64_t>(i), ow)))));
    }
    int w = m.add_wire("allowed" + std::to_string(i), 1);
    m.assign(w, ebin(RtlOp::And, eref(req[static_cast<std::size_t>(i)], 1),
                     enot(rtl::eor_tree(std::move(conflicts), 1))));
    allowed[static_cast<std::size_t>(i)] = w;
  }
  rtl::ArbiterNets arb = rtl::build_round_robin_arbiter(m, allowed, "arb");
  for (int i = 0; i < n; ++i) {
    m.assign(grant[static_cast<std::size_t>(i)],
             eref(arb.grant[static_cast<std::size_t>(i)], 1));
  }

  // Port-1 operand registers (same style as the paper's organizations).
  std::vector<RtlExprPtr> addr_vals;
  std::vector<RtlExprPtr> data_vals;
  std::vector<RtlExprPtr> we_terms;
  for (int i = 0; i < n; ++i) {
    addr_vals.push_back(eref(addr[static_cast<std::size_t>(i)], aw));
    data_vals.push_back(eref(wdata[static_cast<std::size_t>(i)], dw));
    we_terms.push_back(
        ebin(RtlOp::And, eref(arb.grant[static_cast<std::size_t>(i)], 1),
             eref(we[static_cast<std::size_t>(i)], 1)));
  }
  int port1_addr = m.add_reg("port1_addr", aw);
  m.seq(port1_addr,
        rtl::build_onehot_mux(m, arb.grant, std::move(addr_vals), aw));
  int port1_wdata = m.add_reg("port1_wdata", dw);
  m.seq(port1_wdata,
        rtl::build_onehot_mux(m, arb.grant, std::move(data_vals), dw));
  int port1_we = m.add_reg("port1_we", 1);
  m.seq(port1_we, rtl::eor_tree(std::move(we_terms), 1));

  // Valid pipeline (two stages, as in the organizations).
  int v1 = m.add_reg("valid_q1", 1);
  std::vector<RtlExprPtr> read_grants;
  for (int i = 0; i < n; ++i) {
    read_grants.push_back(
        ebin(RtlOp::And, eref(arb.grant[static_cast<std::size_t>(i)], 1),
             enot(eref(we[static_cast<std::size_t>(i)], 1))));
  }
  m.seq(v1, rtl::eor_tree(std::move(read_grants), 1));
  int v2 = m.add_reg("valid_q2", 1);
  m.seq(v2, eref(v1, 1));
  int id1 = m.add_reg("grant_id_q1", ow);
  std::vector<RtlExprPtr> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(econst(static_cast<std::uint64_t>(i), ow));
  }
  m.seq(id1, rtl::build_onehot_mux(m, arb.grant, std::move(ids), ow));
  int id2 = m.add_reg("grant_id_q2", ow);
  m.seq(id2, eref(id1, ow));
  for (int i = 0; i < n; ++i) {
    m.assign(valid[static_cast<std::size_t>(i)],
             ebin(RtlOp::And, eref(v2, 1),
                  ebin(RtlOp::Eq, eref(id2, ow),
                       econst(static_cast<std::uint64_t>(i), ow))));
  }

  // ---- BRAM. ----
  rtl::Memory& mem = m.add_memory("mem", dw, 1 << aw);
  {
    rtl::MemoryPort p0;
    p0.addr = eref(a_addr, aw);
    p0.write_enable = ebin(RtlOp::And, eref(a_en, 1), eref(a_we, 1));
    p0.write_data = eref(a_wdata, dw);
    p0.read_data = a_rdata;
    mem.ports.push_back(std::move(p0));
  }
  {
    rtl::MemoryPort p1;
    p1.addr = eref(port1_addr, aw);
    p1.write_enable = eref(port1_we, 1);
    p1.write_data = eref(port1_wdata, dw);
    p1.read_data = bus_rdata;
    mem.ports.push_back(std::move(p1));
  }

  return m;
}

}  // namespace hicsync::baseline
