// Lock-based shared-memory controller — the conventional baseline.
//
// §1: "Current shared memory abstractions based on locks and mutual
// exclusions are difficult to use, scale, and generally result in a tedious
// and error-prone design process." To quantify that comparison
// (bench_baseline_comparison), this generates the controller a lock-based
// design would use: per-entry lock registers with owner tracking, acquire/
// release handshakes, and a round-robin arbitrated access port. The
// ordering discipline (who may write/read when) is NOT enforced — clients
// must implement it themselves with lock+flag protocols, which is exactly
// the manual, error-prone part the paper eliminates.
//
// Port names (i = client index):
//   clk, rst
//   a_en, a_we, a_addr, a_wdata -> a_rdata            (direct port 0)
//   lock_req<i>, lock_addr<i>    -> lock_grant<i>     (acquire; held until
//   unlock_req<i>                                      unlock)
//   req<i>, we<i>, addr<i>, wdata<i> -> grant<i>, valid<i>, bus_rdata
//     (granted only while client i holds the lock covering addr, or the
//      address is unlocked)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/netlist.h"

namespace hicsync::baseline {

struct LockMemConfig {
  int addr_width = 9;
  int data_width = 32;
  int num_clients = 3;
  /// Lockable region base addresses (one lock register per entry).
  std::vector<std::uint32_t> lock_addrs;
};

rtl::Module& generate_lockmem(rtl::Design& design, const LockMemConfig& cfg,
                              const std::string& name);

}  // namespace hicsync::baseline
