// Host-driven hand-off protocols over the generated controllers.
//
// A single metric — one producer publishing a value to N consumers,
// repeated for R rounds — measured on four substrates:
//   * polling over the bare wrapper (the manual flag discipline of §1),
//   * lock-based over the lock controller,
//   * the arbitrated organization (§3.1),
//   * the event-driven organization (§3.2).
// Used by bench_baseline_comparison and bench_latency_determinism; also
// exercised in tests as cross-substrate correctness checks.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/eval.h"

namespace hicsync::baseline {

struct HandoffMetrics {
  bool ok = false;                  // every consumer saw every round's value
  std::uint64_t total_cycles = 0;
  /// Per round: publish (producer's final grant) → last consumer has data.
  std::vector<std::uint64_t> round_latencies;
  /// Shared-port operations granted (bus occupancy), including polls.
  std::uint64_t bus_grants = 0;

  [[nodiscard]] double mean_latency() const;
  [[nodiscard]] std::uint64_t max_latency() const;
  [[nodiscard]] std::uint64_t min_latency() const;
  [[nodiscard]] bool latencies_identical() const;
};

/// Polling discipline on the bare wrapper (generate_bare with
/// num_clients = consumers + 1; client 0 is the producer).
/// data at address 4, generation flag at address 5.
HandoffMetrics run_polling_handoff(const rtl::Module& bare, int consumers,
                                   int rounds,
                                   std::uint64_t max_cycles = 100000);

/// Lock discipline on the lock controller (generate_lockmem with
/// num_clients = consumers + 1 and a lock over address 4).
HandoffMetrics run_lock_handoff(const rtl::Module& lockmem, int consumers,
                                int rounds,
                                std::uint64_t max_cycles = 100000);

/// The arbitrated organization (generate_arbitrated, 1 producer,
/// `consumers` pseudo-ports, dependency at address 4).
HandoffMetrics run_arbitrated_handoff(const rtl::Module& org, int consumers,
                                      int rounds,
                                      std::uint64_t max_cycles = 100000);

/// The event-driven organization (generate_eventdriven, same shape).
HandoffMetrics run_eventdriven_handoff(const rtl::Module& org, int consumers,
                                       int rounds,
                                       std::uint64_t max_cycles = 100000);

}  // namespace hicsync::baseline
