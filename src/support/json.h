// Shared JSON support: a streaming writer (escaping, comma/indent
// bookkeeping) and a small recursive-descent parser.
//
// The writer replaces the hand-rolled serialization that used to live in
// bench/bench_util.h; the parser exists so perf::HistoryStore can ingest
// both our flat `BENCH_<name>.json` reports and google-benchmark's native
// JSON without an external dependency. Numbers are held as double — every
// producer in this repo stays well inside the 2^53 integer-exact range.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hicsync::support {

/// Backslash-escapes `s` for inclusion inside a JSON string literal
/// (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Formats a double the way our JSON producers do: shortest of %.10g,
/// with a guaranteed parseable result (no locale surprises).
[[nodiscard]] std::string json_number(double value);

/// Incremental JSON writer. Handles quoting/escaping, commas and
/// (optional) pretty-printing; the caller supplies structure:
///
///   JsonWriter w;
///   w.begin_object().key("bench").value(name)
///    .key("metrics").begin_object() ... .end_object()
///    .end_object();
///   out << w.str();
///
/// `indent <= 0` produces compact single-line output (the JSONL mode the
/// history store uses); `indent > 0` pretty-prints with that many spaces.
class JsonWriter {
 public:
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view(v));
  }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value_null();
  /// Splices a pre-serialized JSON fragment as the next value verbatim.
  JsonWriter& raw(std::string_view fragment);

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void before_value();
  void open(char c);
  void close(char c);

  std::string out_;
  int indent_ = 2;
  int depth_ = 0;
  // Per-depth "a value has already been written at this level" flags.
  std::vector<bool> has_value_{false};
  bool after_key_ = false;
};

/// A parsed JSON document. Object members keep insertion order (our bench
/// reports are insertion-ordered and the tests diff renderings).
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> elements;                            // Array
  std::vector<std::pair<std::string, JsonValue>> members;     // Object

  [[nodiscard]] bool is_null() const { return kind == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses one JSON document. Returns false (and fills `error`, if given)
/// on malformed input or trailing garbage.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue* out,
                              std::string* error = nullptr);

/// Parses a JSON-Lines document: one JSON value per line, blank lines
/// skipped. Returns false on the first malformed line (`error` carries the
/// 1-based line number). Used by the append-only stores (bench history,
/// coverage DB).
[[nodiscard]] bool parse_jsonl(std::string_view text,
                               std::vector<JsonValue>* out,
                               std::string* error = nullptr);

}  // namespace hicsync::support
