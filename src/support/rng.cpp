#include "support/rng.h"

#include <cmath>

namespace hicsync::support {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  while (true) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 top bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::next_geometric(double p) {
  if (p >= 1.0) return 1;
  if (p <= 0.0) return UINT64_MAX;
  // Inverse-CDF of the geometric distribution (support {1,2,...}).
  double u = next_double();
  double g = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
  if (g < 1.0) g = 1.0;
  return static_cast<std::uint64_t>(g);
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) {
  if (hi <= lo) return lo;
  return lo + next_below(hi - lo + 1);
}

}  // namespace hicsync::support
