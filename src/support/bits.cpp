#include "support/bits.h"

// All helpers are constexpr in the header; this TU exists so the library has
// a stable archive member for the component and to host any future
// non-inline additions.
namespace hicsync::support {}
