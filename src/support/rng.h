// Deterministic pseudo-random number generator for traffic models and tests.
//
// A fixed splitmix64/xoshiro256** implementation so results are identical
// across platforms and standard-library versions (std::mt19937 would also be
// portable, but distributions are not; we implement our own).
#pragma once

#include <cstdint>

namespace hicsync::support {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) for bound >= 1 (unbiased via rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Geometric inter-arrival gap: number of whole cycles until the next
  /// arrival given a per-cycle arrival probability p in (0, 1].
  /// Returns >= 1.
  std::uint64_t next_geometric(double p);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace hicsync::support
