#include "support/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace hicsync::support {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (depth_ == 0) return;
  if (has_value_[static_cast<std::size_t>(depth_)]) out_ += ',';
  has_value_[static_cast<std::size_t>(depth_)] = true;
  if (indent_ > 0) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_ * indent_), ' ');
  }
}

void JsonWriter::open(char c) {
  before_value();
  out_ += c;
  ++depth_;
  if (static_cast<std::size_t>(depth_) >= has_value_.size()) {
    has_value_.push_back(false);
  }
  has_value_[static_cast<std::size_t>(depth_)] = false;
}

void JsonWriter::close(char c) {
  bool had_values = has_value_[static_cast<std::size_t>(depth_)];
  --depth_;
  if (indent_ > 0 && had_values) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_ * indent_), ' ');
  }
  out_ += c;
}

JsonWriter& JsonWriter::begin_object() {
  open('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  before_value();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  before_value();
  out_ += fragment;
  return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    bool ok = parse_value(out) && (skip_ws(), pos_ == text_.size());
    if (!ok && error != nullptr) {
      *error = error_.empty()
                   ? "trailing characters at offset " + std::to_string(pos_)
                   : error_;
    }
    return ok;
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) return fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return fail("bad literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            // Minimal UTF-8 encoding; our producers only emit ASCII.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->kind = JsonValue::Kind::Number;
    out->number_value = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    return true;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    switch (peek()) {
      case '{': {
        ++pos_;
        out->kind = JsonValue::Kind::Object;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          JsonValue v;
          if (!parse_value(&v)) return false;
          out->members.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          return consume('}');
        }
      }
      case '[': {
        ++pos_;
        out->kind = JsonValue::Kind::Array;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue v;
          if (!parse_value(&v)) return false;
          out->elements.push_back(std::move(v));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          return consume(']');
        }
      }
      case '"':
        out->kind = JsonValue::Kind::String;
        return parse_string(&out->string_value);
      case 't':
        out->kind = JsonValue::Kind::Bool;
        out->bool_value = true;
        return consume_literal("true");
      case 'f':
        out->kind = JsonValue::Kind::Bool;
        out->bool_value = false;
        return consume_literal("false");
      case 'n':
        out->kind = JsonValue::Kind::Null;
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return Parser(text).parse(out, error);
}

bool parse_jsonl(std::string_view text, std::vector<JsonValue>* out,
                 std::string* error) {
  out->clear();
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view()
                                        : text.substr(nl + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const bool blank =
        line.find_first_not_of(" \t") == std::string_view::npos;
    if (blank) continue;
    JsonValue v;
    std::string line_error;
    if (!parse_json(line, &v, &line_error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + line_error;
      }
      return false;
    }
    out->push_back(std::move(v));
  }
  return true;
}

}  // namespace hicsync::support
