#include "support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hicsync::support {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (char c : s.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

std::string indent(std::string_view s, int n) {
  std::string pad(static_cast<std::size_t>(n), ' ');
  std::string out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t pos = s.find('\n', start);
    std::string_view line = (pos == std::string_view::npos)
                                ? s.substr(start)
                                : s.substr(start, pos - start);
    if (!line.empty()) {
      out += pad;
      out += line;
    }
    if (pos == std::string_view::npos) break;
    out += '\n';
    start = pos + 1;
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace hicsync::support
