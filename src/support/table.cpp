#include "support/table.h"

#include <algorithm>
#include <stdexcept>

namespace hicsync::support {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c != 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace hicsync::support
