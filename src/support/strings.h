// Small string utilities used across the toolchain.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hicsync::support {

/// Split `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
[[nodiscard]] bool is_identifier(std::string_view s);

/// Indent every line of `s` by `n` spaces.
[[nodiscard]] std::string indent(std::string_view s, int n);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace hicsync::support
