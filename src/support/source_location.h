// Source locations and ranges for hic source text.
//
// Every token, AST node, and diagnostic carries a SourceLoc so that errors
// from any compiler stage (lexing through memory-organization generation)
// point back at the offending hic text.
#pragma once

#include <cstdint>
#include <string>

namespace hicsync::support {

/// A position in a hic source buffer. Lines and columns are 1-based;
/// offset is the 0-based byte offset into the buffer. An invalid (default)
/// location has line == 0.
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;
  std::uint32_t offset = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// A half-open range [begin, end) of source text.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  [[nodiscard]] bool valid() const { return begin.valid(); }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const SourceRange&, const SourceRange&) = default;
};

}  // namespace hicsync::support
