// Diagnostic engine shared by all compiler stages.
//
// Stages report errors/warnings/notes against source locations; the engine
// accumulates them so that a driver can print everything at once and tests
// can assert on specific diagnostics. Fatal front-end failures also throw
// CompileError so deep recursion can unwind without sentinel values.
//
// Diagnostics may carry a stable check ID (lint findings do); rendering is
// deterministic regardless of the stage order that produced the entries:
// str() and json() emit in (file, line, column, severity) order.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "support/source_location.h"

namespace hicsync::support {

enum class Severity { Note, Warning, Error };

[[nodiscard]] const char* to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
  /// Stable check identifier (e.g. "race-unsynced-access") for findings
  /// produced by a registered analysis; empty for plain stage diagnostics.
  std::string check_id;
  /// Source file the location refers to; empty when the producer did not
  /// set a source name on the engine.
  std::string file;

  [[nodiscard]] std::string str() const;
};

/// Thrown for unrecoverable compile failures (parse errors the parser cannot
/// recover from, or internal invariant violations in later stages).
class CompileError : public std::runtime_error {
 public:
  CompileError(SourceLoc loc, const std::string& message)
      : std::runtime_error(loc.valid() ? loc.str() + ": " + message : message),
        loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

/// Accumulates diagnostics across compiler stages.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message,
              std::string check_id = {});
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  /// File name stamped onto subsequently reported diagnostics (and into
  /// json() output). Typically the path the driver read the source from.
  void set_source_name(std::string name) { source_name_ = std::move(name); }
  [[nodiscard]] const std::string& source_name() const {
    return source_name_;
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] std::size_t warning_count() const { return warning_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// Diagnostics in deterministic reporting order: sorted stably by
  /// (file, line, column, severity), errors first among ties.
  [[nodiscard]] std::vector<const Diagnostic*> sorted_diagnostics() const;

  /// True if any diagnostic message contains `needle` (test convenience).
  [[nodiscard]] bool contains(const std::string& needle) const;
  /// True if any diagnostic carries `check_id`.
  [[nodiscard]] bool has_check(const std::string& check_id) const;
  /// Number of diagnostics carrying `check_id`.
  [[nodiscard]] std::size_t check_count(const std::string& check_id) const;

  /// All diagnostics rendered one per line, in sorted order.
  [[nodiscard]] std::string str() const;

  /// Machine-readable rendering (the CI interface): a JSON object with
  /// "errors"/"warnings" counts and a "diagnostics" array of
  /// {check, severity, file, line, column, message}, in sorted order.
  [[nodiscard]] std::string json() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::string source_name_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
};

}  // namespace hicsync::support
