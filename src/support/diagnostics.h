// Diagnostic engine shared by all compiler stages.
//
// Stages report errors/warnings/notes against source locations; the engine
// accumulates them so that a driver can print everything at once and tests
// can assert on specific diagnostics. Fatal front-end failures also throw
// CompileError so deep recursion can unwind without sentinel values.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "support/source_location.h"

namespace hicsync::support {

enum class Severity { Note, Warning, Error };

[[nodiscard]] const char* to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Thrown for unrecoverable compile failures (parse errors the parser cannot
/// recover from, or internal invariant violations in later stages).
class CompileError : public std::runtime_error {
 public:
  CompileError(SourceLoc loc, const std::string& message)
      : std::runtime_error(loc.valid() ? loc.str() + ": " + message : message),
        loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

/// Accumulates diagnostics across compiler stages.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// True if any diagnostic message contains `needle` (test convenience).
  [[nodiscard]] bool contains(const std::string& needle) const;

  /// All diagnostics rendered one per line.
  [[nodiscard]] std::string str() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace hicsync::support
