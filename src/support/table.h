// Plain-text table rendering for the benchmark harness.
//
// Every bench binary prints paper-style rows (e.g. "P/C  LUT  FF  Slices");
// this keeps the formatting in one place.
#pragma once

#include <string>
#include <vector>

namespace hicsync::support {

/// A simple left/right-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column padding, a separator under the header.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hicsync::support
