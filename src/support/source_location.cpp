#include "support/source_location.h"

namespace hicsync::support {

std::string SourceLoc::str() const {
  if (!valid()) return "<unknown>";
  return std::to_string(line) + ":" + std::to_string(column);
}

std::string SourceRange::str() const {
  if (!valid()) return "<unknown>";
  if (begin.line == end.line) {
    return begin.str() + "-" + std::to_string(end.column);
  }
  return begin.str() + "-" + end.str();
}

}  // namespace hicsync::support
