#include "support/diagnostics.h"

namespace hicsync::support {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string out;
  if (loc.valid()) {
    out += loc.str();
    out += ": ";
  }
  out += to_string(severity);
  out += ": ";
  out += message;
  return out;
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc,
                              std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

bool DiagnosticEngine::contains(const std::string& needle) const {
  for (const auto& d : diags_) {
    if (d.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string DiagnosticEngine::str() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.str();
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

}  // namespace hicsync::support
