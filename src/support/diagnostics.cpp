#include "support/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace hicsync::support {

namespace {

/// Tie-break rank at equal locations: errors surface before warnings before
/// notes so a reader sees the blocking finding first.
int severity_rank(Severity s) {
  switch (s) {
    case Severity::Error:
      return 0;
    case Severity::Warning:
      return 1;
    case Severity::Note:
      return 2;
  }
  return 3;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string out;
  if (!file.empty()) {
    out += file;
    out += ':';
  }
  if (loc.valid()) {
    out += loc.str();
    out += ": ";
  } else if (!file.empty()) {
    out += ' ';
  }
  out += to_string(severity);
  out += ": ";
  out += message;
  if (!check_id.empty()) {
    out += " [";
    out += check_id;
    out += ']';
  }
  return out;
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string message,
                              std::string check_id) {
  if (sev == Severity::Error) ++error_count_;
  if (sev == Severity::Warning) ++warning_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message),
                              std::move(check_id), source_name_});
}

std::vector<const Diagnostic*> DiagnosticEngine::sorted_diagnostics() const {
  std::vector<const Diagnostic*> out;
  out.reserve(diags_.size());
  for (const auto& d : diags_) out.push_back(&d);
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return std::make_tuple(std::cref(a->file), a->loc.line,
                                            a->loc.column,
                                            severity_rank(a->severity)) <
                            std::make_tuple(std::cref(b->file), b->loc.line,
                                            b->loc.column,
                                            severity_rank(b->severity));
                   });
  return out;
}

bool DiagnosticEngine::contains(const std::string& needle) const {
  for (const auto& d : diags_) {
    if (d.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool DiagnosticEngine::has_check(const std::string& check_id) const {
  return check_count(check_id) > 0;
}

std::size_t DiagnosticEngine::check_count(const std::string& check_id) const {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.check_id == check_id) ++n;
  }
  return n;
}

std::string DiagnosticEngine::str() const {
  std::string out;
  for (const Diagnostic* d : sorted_diagnostics()) {
    out += d->str();
    out += '\n';
  }
  return out;
}

std::string DiagnosticEngine::json() const {
  std::string out = "{\n";
  out += "  \"errors\": " + std::to_string(error_count_) + ",\n";
  out += "  \"warnings\": " + std::to_string(warning_count_) + ",\n";
  out += "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic* d : sorted_diagnostics()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"check\": \"";
    json_escape_into(out, d->check_id);
    out += "\", \"severity\": \"";
    out += to_string(d->severity);
    out += "\", \"file\": \"";
    json_escape_into(out, d->file);
    out += "\", \"line\": " + std::to_string(d->loc.line);
    out += ", \"column\": " + std::to_string(d->loc.column);
    out += ", \"message\": \"";
    json_escape_into(out, d->message);
    out += "\"}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
  warning_count_ = 0;
}

}  // namespace hicsync::support
