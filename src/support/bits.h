// Bit-level helpers used by the memory allocator, RTL builders, and the
// technology mapper.
#pragma once

#include <cstdint>

namespace hicsync::support {

/// Smallest number of bits needed to represent values 0..n-1.
/// clog2(0) == clog2(1) == 0 by convention (a 1-entry space needs no bits,
/// but most callers clamp to at least 1 for a usable signal).
[[nodiscard]] constexpr int clog2(std::uint64_t n) {
  int bits = 0;
  std::uint64_t capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

/// clog2 clamped to >= 1, for signals that must exist even for n <= 2.
[[nodiscard]] constexpr int clog2_at_least1(std::uint64_t n) {
  int b = clog2(n);
  return b < 1 ? 1 : b;
}

/// Round `v` up to the next multiple of `m` (m > 0).
[[nodiscard]] constexpr std::uint64_t round_up(std::uint64_t v,
                                               std::uint64_t m) {
  return ((v + m - 1) / m) * m;
}

/// True if v is a power of two (v > 0).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Next power of two >= v (v >= 1).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Mask with the low `bits` bits set (bits in [0,64]).
[[nodiscard]] constexpr std::uint64_t low_mask(int bits) {
  if (bits >= 64) return ~0ULL;
  return (1ULL << bits) - 1;
}

}  // namespace hicsync::support
