#include "synth/fsm.h"

#include <algorithm>

#include "support/bits.h"

namespace hicsync::synth {

const char* to_string(AccessRole r) {
  switch (r) {
    case AccessRole::Plain: return "plain";
    case AccessRole::ConsumerRead: return "consumer-read";
    case AccessRole::ProducerWrite: return "producer-write";
  }
  return "unknown";
}

int ThreadFsm::add_state(StateKind kind, const hic::Stmt* stmt,
                         const hic::Expr* cond) {
  FsmState s;
  s.id = static_cast<int>(states_.size());
  s.kind = kind;
  s.stmt = stmt;
  s.cond = cond;
  states_.push_back(std::move(s));
  return states_.back().id;
}

void ThreadFsm::patch_to(const std::vector<Patch>& patches, int target) {
  for (const Patch& p : patches) {
    FsmState& s = states_[static_cast<std::size_t>(p.state)];
    switch (p.slot) {
      case Patch::Slot::Next:
        s.next = target;
        break;
      case Patch::Slot::True:
        s.true_target = target;
        break;
      case Patch::Slot::False:
        s.false_target = target;
        break;
      case Patch::Slot::Case:
        s.case_targets[p.case_index].target = target;
        break;
    }
  }
}

ThreadFsm ThreadFsm::synthesize(const hic::ThreadDecl& thread,
                                const hic::Sema& sema) {
  ThreadFsm fsm;
  fsm.thread_ = thread.name;

  std::vector<std::vector<Patch>*> break_stack;
  std::vector<int> continue_targets;

  // A synthetic initial patch: the first lowered state becomes `initial_`.
  // We lower the body and then create the Done state; the initial state is
  // the first state created (or Done itself for an empty body).
  std::vector<Patch> incoming;  // nothing to patch for the first state
  std::vector<Patch> exits =
      fsm.lower_list(thread.body, std::move(incoming), break_stack,
                     continue_targets);
  fsm.done_ = fsm.add_state(StateKind::Done, nullptr, nullptr);
  fsm.patch_to(exits, fsm.done_);
  fsm.initial_ = fsm.states_.size() == 1 ? fsm.done_ : 0;

  fsm.annotate_accesses(sema);
  return fsm;
}

std::vector<ThreadFsm::Patch> ThreadFsm::lower_list(
    const std::vector<hic::StmtPtr>& list, std::vector<Patch> incoming,
    std::vector<std::vector<Patch>*>& break_stack,
    std::vector<int>& continue_targets) {
  for (const auto& s : list) {
    incoming = lower_stmt(*s, std::move(incoming), break_stack,
                          continue_targets);
  }
  return incoming;
}

std::vector<ThreadFsm::Patch> ThreadFsm::lower_stmt(
    const hic::Stmt& stmt, std::vector<Patch> incoming,
    std::vector<std::vector<Patch>*>& break_stack,
    std::vector<int>& continue_targets) {
  switch (stmt.kind) {
    case hic::StmtKind::Assign: {
      int s = add_state(StateKind::Action, &stmt, nullptr);
      patch_to(incoming, s);
      return {Patch{s, Patch::Slot::Next, 0}};
    }
    case hic::StmtKind::If: {
      int b = add_state(StateKind::Branch, &stmt, stmt.cond.get());
      patch_to(incoming, b);
      std::vector<Patch> then_in{{b, Patch::Slot::True, 0}};
      std::vector<Patch> exits =
          lower_list(stmt.then_body, std::move(then_in), break_stack,
                     continue_targets);
      if (stmt.else_body.empty()) {
        exits.push_back(Patch{b, Patch::Slot::False, 0});
      } else {
        std::vector<Patch> else_in{{b, Patch::Slot::False, 0}};
        std::vector<Patch> else_exits =
            lower_list(stmt.else_body, std::move(else_in), break_stack,
                       continue_targets);
        exits.insert(exits.end(), else_exits.begin(), else_exits.end());
      }
      return exits;
    }
    case hic::StmtKind::Case: {
      int b = add_state(StateKind::Branch, &stmt, stmt.cond.get());
      patch_to(incoming, b);
      FsmState& bs = states_[static_cast<std::size_t>(b)];
      bs.case_targets.reserve(stmt.arms.size());
      std::vector<Patch> exits;
      bool has_default = false;
      for (std::size_t i = 0; i < stmt.arms.size(); ++i) {
        const hic::CaseArm& arm = stmt.arms[i];
        has_default |= arm.is_default;
        states_[static_cast<std::size_t>(b)].case_targets.push_back(
            CaseTransition{arm.is_default, arm.value, -1});
        std::vector<Patch> arm_in{{b, Patch::Slot::Case, i}};
        std::vector<Patch> arm_exits =
            lower_list(arm.body, std::move(arm_in), break_stack,
                       continue_targets);
        exits.insert(exits.end(), arm_exits.begin(), arm_exits.end());
      }
      if (!has_default) {
        // No-match behaves as a default arm that goes straight on.
        std::size_t idx = states_[static_cast<std::size_t>(b)]
                              .case_targets.size();
        states_[static_cast<std::size_t>(b)].case_targets.push_back(
            CaseTransition{true, 0, -1});
        exits.push_back(Patch{b, Patch::Slot::Case, idx});
      }
      return exits;
    }
    case hic::StmtKind::While: {
      int b = add_state(StateKind::Branch, &stmt, stmt.cond.get());
      patch_to(incoming, b);
      std::vector<Patch> breaks;
      break_stack.push_back(&breaks);
      continue_targets.push_back(b);
      std::vector<Patch> body_in{{b, Patch::Slot::True, 0}};
      std::vector<Patch> body_exits =
          lower_list(stmt.body, std::move(body_in), break_stack,
                     continue_targets);
      break_stack.pop_back();
      continue_targets.pop_back();
      patch_to(body_exits, b);  // back edge
      std::vector<Patch> exits = std::move(breaks);
      exits.push_back(Patch{b, Patch::Slot::False, 0});
      return exits;
    }
    case hic::StmtKind::For: {
      std::vector<Patch> after_init =
          lower_stmt(*stmt.init, std::move(incoming), break_stack,
                     continue_targets);
      int b = add_state(StateKind::Branch, &stmt, stmt.cond.get());
      patch_to(after_init, b);
      int step = add_state(StateKind::Action, stmt.step.get(), nullptr);
      std::vector<Patch> breaks;
      break_stack.push_back(&breaks);
      continue_targets.push_back(step);
      std::vector<Patch> body_in{{b, Patch::Slot::True, 0}};
      std::vector<Patch> body_exits =
          lower_list(stmt.body, std::move(body_in), break_stack,
                     continue_targets);
      break_stack.pop_back();
      continue_targets.pop_back();
      patch_to(body_exits, step);
      states_[static_cast<std::size_t>(step)].next = b;
      std::vector<Patch> exits = std::move(breaks);
      exits.push_back(Patch{b, Patch::Slot::False, 0});
      return exits;
    }
    case hic::StmtKind::Break: {
      if (!break_stack.empty()) {
        for (const Patch& p : incoming) break_stack.back()->push_back(p);
      }
      return {};
    }
    case hic::StmtKind::Continue: {
      if (!continue_targets.empty()) {
        patch_to(incoming, continue_targets.back());
      }
      return {};
    }
    case hic::StmtKind::Block:
      return lower_list(stmt.body, std::move(incoming), break_stack,
                        continue_targets);
  }
  return incoming;
}

void ThreadFsm::annotate_accesses(const hic::Sema& sema) {
  auto walk = [](auto&& self, const hic::Expr& e, bool is_def,
                 std::vector<StateAccess>& out) -> void {
    switch (e.kind) {
      case hic::ExprKind::VarRef:
        if (e.symbol != nullptr) {
          out.push_back(StateAccess{e.symbol, is_def, AccessRole::Plain,
                                    nullptr});
        }
        return;
      case hic::ExprKind::Index:
        self(self, *e.operands[0], is_def, out);
        self(self, *e.operands[1], false, out);
        return;
      case hic::ExprKind::Member:
        self(self, *e.operands[0], is_def, out);
        return;
      case hic::ExprKind::IntLit:
      case hic::ExprKind::CharLit:
        return;
      default:
        for (const auto& op : e.operands) self(self, *op, false, out);
        return;
    }
  };

  for (FsmState& s : states_) {
    if (s.kind == StateKind::Action && s.stmt != nullptr &&
        s.stmt->kind == hic::StmtKind::Assign) {
      walk(walk, *s.stmt->value, false, s.accesses);
      walk(walk, *s.stmt->target, true, s.accesses);
    } else if (s.kind == StateKind::Branch && s.cond != nullptr) {
      walk(walk, *s.cond, false, s.accesses);
    }

    // Assign dependency roles.
    for (StateAccess& a : s.accesses) {
      for (const hic::Dependency& dep : sema.dependencies()) {
        if (a.is_write && s.stmt == dep.producer_stmt &&
            a.symbol == dep.shared_var) {
          a.role = AccessRole::ProducerWrite;
          a.dep = &dep;
        } else if (!a.is_write && a.symbol == dep.shared_var) {
          for (const hic::DepConsumer& c : dep.consumers) {
            if (c.stmt == s.stmt && c.thread == thread_) {
              a.role = AccessRole::ConsumerRead;
              a.dep = &dep;
            }
          }
        }
      }
    }
  }
}

int ThreadFsm::state_bits() const {
  return support::clog2_at_least1(states_.size());
}

std::vector<int> ThreadFsm::blocking_states() const {
  std::vector<int> out;
  for (const FsmState& s : states_) {
    if (s.blocks()) out.push_back(s.id);
  }
  return out;
}

std::vector<int> ThreadFsm::producing_states() const {
  std::vector<int> out;
  for (const FsmState& s : states_) {
    if (s.produces()) out.push_back(s.id);
  }
  return out;
}

int ThreadFsm::latency_bound() const {
  // Longest path in a DAG via DFS with memoization; detect cycles.
  const std::size_t n = states_.size();
  std::vector<int> depth(n, -2);  // -2 unvisited, -3 in progress
  for (auto& d : depth) d = -2;

  auto successors = [&](const FsmState& s) {
    std::vector<int> out;
    if (s.next >= 0) out.push_back(s.next);
    if (s.true_target >= 0) out.push_back(s.true_target);
    if (s.false_target >= 0) out.push_back(s.false_target);
    for (const auto& ct : s.case_targets) {
      if (ct.target >= 0) out.push_back(ct.target);
    }
    return out;
  };

  bool cyclic = false;
  auto dfs = [&](auto&& self, int id) -> int {
    auto i = static_cast<std::size_t>(id);
    if (depth[i] == -3) {
      cyclic = true;
      return 0;
    }
    if (depth[i] >= 0) return depth[i];
    depth[i] = -3;
    int best = 0;
    for (int s : successors(states_[i])) {
      best = std::max(best, 1 + self(self, s));
    }
    depth[i] = best;
    return best;
  };
  int result = dfs(dfs, initial_);
  return cyclic ? -1 : result + 1;  // +1: the initial state takes a cycle
}

bool ThreadFsm::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  auto valid_target = [&](int t) {
    return t >= 0 && t < static_cast<int>(states_.size());
  };
  std::vector<char> reachable(states_.size(), 0);
  std::vector<int> stack{initial_};
  reachable[static_cast<std::size_t>(initial_)] = 1;
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    const FsmState& s = states_[static_cast<std::size_t>(id)];
    std::vector<int> succs;
    switch (s.kind) {
      case StateKind::Action:
        if (!valid_target(s.next)) {
          return fail("state " + std::to_string(id) + " has invalid next");
        }
        succs.push_back(s.next);
        break;
      case StateKind::Branch:
        if (s.case_targets.empty()) {
          if (!valid_target(s.true_target) || !valid_target(s.false_target)) {
            return fail("state " + std::to_string(id) +
                        " has invalid branch targets");
          }
          succs.push_back(s.true_target);
          succs.push_back(s.false_target);
        } else {
          for (const auto& ct : s.case_targets) {
            if (!valid_target(ct.target)) {
              return fail("state " + std::to_string(id) +
                          " has invalid case target");
            }
            succs.push_back(ct.target);
          }
        }
        break;
      case StateKind::Done:
        break;
    }
    for (int t : succs) {
      if (!reachable[static_cast<std::size_t>(t)]) {
        reachable[static_cast<std::size_t>(t)] = 1;
        stack.push_back(t);
      }
    }
  }
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!reachable[i]) {
      return fail("state " + std::to_string(i) + " unreachable");
    }
  }
  return true;
}

std::string ThreadFsm::str() const {
  std::string out = "fsm " + thread_ + " (initial=" +
                    std::to_string(initial_) + ", done=" +
                    std::to_string(done_) + ")\n";
  for (const FsmState& s : states_) {
    out += "  S" + std::to_string(s.id) + ": ";
    switch (s.kind) {
      case StateKind::Action:
        out += "action -> S" + std::to_string(s.next);
        break;
      case StateKind::Branch:
        if (s.case_targets.empty()) {
          out += "branch true->S" + std::to_string(s.true_target) +
                 " false->S" + std::to_string(s.false_target);
        } else {
          out += "case";
          for (const auto& ct : s.case_targets) {
            out += ct.is_default
                       ? " default->S" + std::to_string(ct.target)
                       : " " + std::to_string(ct.value) + "->S" +
                             std::to_string(ct.target);
          }
        }
        break;
      case StateKind::Done:
        out += "done";
        break;
    }
    for (const StateAccess& a : s.accesses) {
      out += std::string(" [") + (a.is_write ? "W " : "R ") +
             a.symbol->qualified_name();
      if (a.role != AccessRole::Plain) {
        out += std::string(" ") + to_string(a.role);
      }
      out += "]";
    }
    out += '\n';
  }
  return out;
}

}  // namespace hicsync::synth
