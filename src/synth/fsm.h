// Behavioural synthesis: hic threads → cycle-accurate finite state machines.
//
// §3 of the paper: "a series of synthesis steps are applied that transform
// the hic threads into state machines. These state machines are cycle
// accurate and we have knowledge of the particular state where memory
// accesses happen," under the working assumption that every memory access is
// single-cycle. Dependency-annotated accesses may later stall (blocking
// consumer reads); those states carry their Dependency so the memory
// organization generators know where to attach guards/events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hic/sema.h"

namespace hicsync::synth {

/// Role of one memory access inside a state.
enum class AccessRole {
  Plain,         // ordinary access (arbitrated org: port A)
  ConsumerRead,  // guarded read of a shared variable (port C)
  ProducerWrite, // dependency-completing write (port D)
};

[[nodiscard]] const char* to_string(AccessRole r);

struct StateAccess {
  hic::Symbol* symbol = nullptr;
  bool is_write = false;
  AccessRole role = AccessRole::Plain;
  const hic::Dependency* dep = nullptr;  // for ConsumerRead/ProducerWrite
};

enum class StateKind {
  Action,  // executes one assignment, then an unconditional transition
  Branch,  // evaluates a condition/scrutinee and selects a successor
  Done,    // thread finished its run-to-completion pass
};

struct CaseTransition {
  bool is_default = false;
  std::uint64_t value = 0;
  int target = -1;
};

struct FsmState {
  int id = -1;
  StateKind kind = StateKind::Action;
  const hic::Stmt* stmt = nullptr;
  const hic::Expr* cond = nullptr;  // Branch only

  // Action: unconditional successor. After scheduling, an Action state may
  // execute several chained statements (see synth/scheduler.h).
  int next = -1;
  std::vector<const hic::Stmt*> chained;  // extra stmts merged into this state

  // Branch with boolean condition (if/while/for):
  int true_target = -1;
  int false_target = -1;
  // Branch over a case scrutinee:
  std::vector<CaseTransition> case_targets;

  std::vector<StateAccess> accesses;

  [[nodiscard]] bool blocks() const {
    for (const auto& a : accesses) {
      if (a.role == AccessRole::ConsumerRead) return true;
    }
    return false;
  }
  [[nodiscard]] bool produces() const {
    for (const auto& a : accesses) {
      if (a.role == AccessRole::ProducerWrite) return true;
    }
    return false;
  }
};

/// The synthesized FSM of one thread.
class ThreadFsm {
 public:
  /// Synthesizes the FSM for `thread`. `sema` supplies symbol resolution and
  /// the bound dependencies used to annotate access roles.
  static ThreadFsm synthesize(const hic::ThreadDecl& thread,
                              const hic::Sema& sema);

  [[nodiscard]] const std::string& thread_name() const { return thread_; }
  [[nodiscard]] const std::vector<FsmState>& states() const { return states_; }
  [[nodiscard]] std::vector<FsmState>& mutable_states() { return states_; }
  /// Used by the scheduler after compacting states.
  void set_entry_points(int initial, int done) {
    initial_ = initial;
    done_ = done;
  }
  [[nodiscard]] int initial() const { return initial_; }
  [[nodiscard]] int done() const { return done_; }
  [[nodiscard]] const FsmState& state(int id) const {
    return states_[static_cast<std::size_t>(id)];
  }

  /// Number of state bits a one-hot / binary encoding needs.
  [[nodiscard]] int state_bits() const;

  /// States whose accesses include a blocking consumer read.
  [[nodiscard]] std::vector<int> blocking_states() const;
  /// States whose accesses include a producer write.
  [[nodiscard]] std::vector<int> producing_states() const;

  /// Cycle count of the longest acyclic path initial → done, assuming every
  /// access is single-cycle (the paper's pre-dependency assumption). Returns
  /// -1 if the FSM contains a cycle (loops make it unbounded).
  [[nodiscard]] int latency_bound() const;

  /// Structural sanity: every transition targets a valid state and every
  /// state is reachable from initial.
  [[nodiscard]] bool validate(std::string* error = nullptr) const;

  [[nodiscard]] std::string str() const;

 private:
  int add_state(StateKind kind, const hic::Stmt* stmt, const hic::Expr* cond);
  /// Lowers a statement list; `incoming` are dangling (state, slot) pairs to
  /// patch once the next state id is known.
  struct Patch {
    int state;
    enum class Slot { Next, True, False, Case } slot;
    std::size_t case_index = 0;
  };
  std::vector<Patch> lower_list(const std::vector<hic::StmtPtr>& list,
                                std::vector<Patch> incoming,
                                std::vector<std::vector<Patch>*>& break_stack,
                                std::vector<int>& continue_targets);
  std::vector<Patch> lower_stmt(const hic::Stmt& stmt,
                                std::vector<Patch> incoming,
                                std::vector<std::vector<Patch>*>& break_stack,
                                std::vector<int>& continue_targets);
  void patch_to(const std::vector<Patch>& patches, int target);
  void annotate_accesses(const hic::Sema& sema);

  std::string thread_;
  std::vector<FsmState> states_;
  int initial_ = -1;
  int done_ = -1;
};

}  // namespace hicsync::synth
