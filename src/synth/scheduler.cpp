#include "synth/scheduler.h"

#include <algorithm>
#include <map>

namespace hicsync::synth {
namespace {

/// True if the access targets storage that occupies a memory port (arrays
/// and inter-thread shared variables; plain scalars become registers).
bool is_memory_access(const StateAccess& a) {
  return a.symbol->is_array() || a.symbol->is_shared();
}

int memory_access_count(const FsmState& s) {
  int n = 0;
  for (const auto& a : s.accesses) {
    if (is_memory_access(a)) ++n;
  }
  return n;
}

bool has_dependency_access(const FsmState& s) {
  for (const auto& a : s.accesses) {
    if (a.role != AccessRole::Plain) return true;
  }
  return false;
}

/// B reads a value A writes?
bool raw_hazard(const FsmState& a, const FsmState& b) {
  for (const auto& wa : a.accesses) {
    if (!wa.is_write) continue;
    for (const auto& rb : b.accesses) {
      if (!rb.is_write && rb.symbol == wa.symbol) return true;
    }
  }
  return false;
}

/// Write-write to the same symbol also forbids chaining (final value order).
bool waw_hazard(const FsmState& a, const FsmState& b) {
  for (const auto& wa : a.accesses) {
    if (!wa.is_write) continue;
    for (const auto& wb : b.accesses) {
      if (wb.is_write && wb.symbol == wa.symbol) return true;
    }
  }
  return false;
}

}  // namespace

ScheduleStats schedule(ThreadFsm& fsm, const SchedulePolicy& policy) {
  ScheduleStats stats;
  stats.states_before = static_cast<int>(fsm.states().size());
  stats.states_after = stats.states_before;
  if (!policy.chain_states) return stats;

  auto& states = fsm.mutable_states();

  // Predecessor counts (over all transition kinds).
  auto compute_pred_counts = [&]() {
    std::map<int, int> preds;
    for (const FsmState& s : states) {
      auto bump = [&](int t) {
        if (t >= 0) ++preds[t];
      };
      bump(s.next);
      bump(s.true_target);
      bump(s.false_target);
      for (const auto& ct : s.case_targets) bump(ct.target);
    }
    return preds;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    std::map<int, int> preds = compute_pred_counts();
    for (FsmState& a : states) {
      if (a.kind != StateKind::Action || a.next < 0) continue;
      FsmState& b = states[static_cast<std::size_t>(a.next)];
      if (b.id == a.id) continue;  // self loop
      if (b.kind != StateKind::Action) continue;
      if (preds[b.id] != 1) continue;
      if (b.id == fsm.initial()) continue;
      if (has_dependency_access(a) || has_dependency_access(b)) continue;
      if (raw_hazard(a, b) || waw_hazard(a, b)) continue;
      if (memory_access_count(a) + memory_access_count(b) >
          policy.max_mem_accesses_per_state) {
        continue;
      }
      // Merge b into a.
      a.chained.push_back(b.stmt);
      for (const auto& cs : b.chained) a.chained.push_back(cs);
      a.accesses.insert(a.accesses.end(), b.accesses.begin(),
                        b.accesses.end());
      a.next = b.next;
      // Mark b as dead by making it an unreachable Done-like stub; we then
      // compact below.
      b.kind = StateKind::Done;
      b.next = -1;
      b.accesses.clear();
      b.chained.clear();
      b.stmt = nullptr;
      ++stats.chained_pairs;
      changed = true;
      break;  // recompute preds
    }
  }

  // Compact: drop unreachable states and renumber.
  std::vector<char> reachable(states.size(), 0);
  std::vector<int> stack{fsm.initial()};
  reachable[static_cast<std::size_t>(fsm.initial())] = 1;
  while (!stack.empty()) {
    const FsmState& s = states[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    auto visit = [&](int t) {
      if (t >= 0 && !reachable[static_cast<std::size_t>(t)]) {
        reachable[static_cast<std::size_t>(t)] = 1;
        stack.push_back(t);
      }
    };
    visit(s.next);
    visit(s.true_target);
    visit(s.false_target);
    for (const auto& ct : s.case_targets) visit(ct.target);
  }

  std::vector<int> remap(states.size(), -1);
  std::vector<FsmState> compacted;
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (!reachable[i]) continue;
    remap[i] = static_cast<int>(compacted.size());
    compacted.push_back(std::move(states[i]));
  }
  auto fix = [&](int& t) {
    if (t >= 0) t = remap[static_cast<std::size_t>(t)];
  };
  for (FsmState& s : compacted) {
    s.id = static_cast<int>(&s - compacted.data());
    fix(s.next);
    fix(s.true_target);
    fix(s.false_target);
    for (auto& ct : s.case_targets) fix(ct.target);
  }
  // Rebuild through the mutable interface: swap the vector and fix
  // initial/done via validate-safe mutation. ThreadFsm exposes states by
  // reference; initial/done must be remapped with the same table.
  int new_initial = remap[static_cast<std::size_t>(fsm.initial())];
  int new_done = remap[static_cast<std::size_t>(fsm.done())];
  states = std::move(compacted);
  // Store remapped entry points (friend-free: use the public setter below).
  fsm.set_entry_points(new_initial, new_done);

  stats.states_after = static_cast<int>(states.size());
  return stats;
}

}  // namespace hicsync::synth
