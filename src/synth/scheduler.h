// State scheduling / operation chaining.
//
// The baseline FSM uses one state per statement (every memory access single
// cycle, as the paper assumes). This pass optionally chains consecutive
// dependency-free statements into one state under a memory-port resource
// constraint — one of the "well researched" behavioural-synthesis steps the
// paper's front end applies, and an ablation knob for our benches.
#pragma once

#include "synth/fsm.h"

namespace hicsync::synth {

struct SchedulePolicy {
  /// Merge consecutive Action states when legal (operation chaining).
  bool chain_states = false;
  /// Max memory accesses (reads+writes of shared/array variables) that one
  /// chained state may perform; a dual-ported BRAM bounds this at 2.
  int max_mem_accesses_per_state = 2;
};

struct ScheduleStats {
  int states_before = 0;
  int states_after = 0;
  int chained_pairs = 0;
};

/// Applies the policy in place. Chaining merges state B into its unique
/// predecessor A when:
///  * both are Action states, A's only successor is B and B's only
///    predecessor is A;
///  * neither state carries a dependency access (producer writes and
///    blocking consumer reads keep their own cycle so guards/events attach
///    to a unique state);
///  * B does not read a register A writes (no intra-cycle RAW through the
///    register file — chaining combinationally would lengthen the critical
///    path past one cycle);
///  * the merged state respects `max_mem_accesses_per_state` for variables
///    that live in memory (arrays and shared variables).
ScheduleStats schedule(ThreadFsm& fsm, const SchedulePolicy& policy);

}  // namespace hicsync::synth
