// Datapath extraction: combinational operator inventory of a thread.
//
// Behavioural synthesis binds each expression operator to datapath hardware.
// This summary (operator kinds × bit widths) is what the technology mapper
// uses to estimate the logic cost of a thread body, complementing the
// memory-controller costs that Tables 1 and 2 of the paper isolate.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hic/ast.h"
#include "synth/fsm.h"

namespace hicsync::synth {

enum class OpClass {
  AddSub,     // + -
  Mul,        // *
  DivMod,     // / %
  Bitwise,    // & | ^ ~
  Shift,      // << >>
  Compare,    // == != < <= > >=
  Logical,    // && || !
  Mux,        // control-flow select (one per branch decision)
  ExternCall, // opaque f(...) computation
};

[[nodiscard]] const char* to_string(OpClass c);

struct OpInstance {
  OpClass cls;
  int width = 0;        // operand bit width
  int state = -1;       // FSM state executing the op
};

class DatapathSummary {
 public:
  /// Collects the operator inventory of a synthesized FSM.
  static DatapathSummary extract(const ThreadFsm& fsm);

  [[nodiscard]] const std::vector<OpInstance>& ops() const { return ops_; }
  [[nodiscard]] int count(OpClass cls) const;
  [[nodiscard]] int total() const { return static_cast<int>(ops_.size()); }
  /// Widest operand across all ops (0 if none).
  [[nodiscard]] int max_width() const;

  /// Ops executed per state; resource sharing across states means the
  /// hardware cost is driven by the *maximum* per-state usage of each class.
  [[nodiscard]] std::map<OpClass, int> peak_per_state() const;

  [[nodiscard]] std::string str() const;

 private:
  void collect(const hic::Expr& e, int state);

  std::vector<OpInstance> ops_;
};

}  // namespace hicsync::synth
