#include "synth/datapath.h"

#include <algorithm>

namespace hicsync::synth {

const char* to_string(OpClass c) {
  switch (c) {
    case OpClass::AddSub: return "add/sub";
    case OpClass::Mul: return "mul";
    case OpClass::DivMod: return "div/mod";
    case OpClass::Bitwise: return "bitwise";
    case OpClass::Shift: return "shift";
    case OpClass::Compare: return "compare";
    case OpClass::Logical: return "logical";
    case OpClass::Mux: return "mux";
    case OpClass::ExternCall: return "extern-call";
  }
  return "unknown";
}

namespace {

OpClass classify(hic::BinaryOp op) {
  switch (op) {
    case hic::BinaryOp::Add:
    case hic::BinaryOp::Sub:
      return OpClass::AddSub;
    case hic::BinaryOp::Mul:
      return OpClass::Mul;
    case hic::BinaryOp::Div:
    case hic::BinaryOp::Mod:
      return OpClass::DivMod;
    case hic::BinaryOp::And:
    case hic::BinaryOp::Or:
    case hic::BinaryOp::Xor:
      return OpClass::Bitwise;
    case hic::BinaryOp::Shl:
    case hic::BinaryOp::Shr:
      return OpClass::Shift;
    case hic::BinaryOp::LogAnd:
    case hic::BinaryOp::LogOr:
      return OpClass::Logical;
    default:
      return OpClass::Compare;
  }
}

int width_of(const hic::Expr& e) {
  return e.type != nullptr ? e.type->bit_width() : 0;
}

}  // namespace

void DatapathSummary::collect(const hic::Expr& e, int state) {
  switch (e.kind) {
    case hic::ExprKind::Binary: {
      int w = std::max(width_of(*e.operands[0]), width_of(*e.operands[1]));
      ops_.push_back(OpInstance{classify(e.binary_op), w, state});
      break;
    }
    case hic::ExprKind::Unary: {
      OpClass cls = OpClass::Bitwise;
      if (e.unary_op == hic::UnaryOp::Neg) cls = OpClass::AddSub;
      if (e.unary_op == hic::UnaryOp::Not) cls = OpClass::Logical;
      ops_.push_back(OpInstance{cls, width_of(*e.operands[0]), state});
      break;
    }
    case hic::ExprKind::Call:
      ops_.push_back(OpInstance{OpClass::ExternCall, width_of(e), state});
      break;
    default:
      break;
  }
  for (const auto& op : e.operands) collect(*op, state);
}

DatapathSummary DatapathSummary::extract(const ThreadFsm& fsm) {
  DatapathSummary d;
  for (const FsmState& s : fsm.states()) {
    if (s.kind == StateKind::Action && s.stmt != nullptr) {
      d.collect(*s.stmt->value, s.id);
      d.collect(*s.stmt->target, s.id);
      for (const hic::Stmt* c : s.chained) {
        if (c != nullptr && c->kind == hic::StmtKind::Assign) {
          d.collect(*c->value, s.id);
          d.collect(*c->target, s.id);
        }
      }
    } else if (s.kind == StateKind::Branch && s.cond != nullptr) {
      d.collect(*s.cond, s.id);
      // The branch decision itself steers the FSM: count one mux of the
      // state-register width.
      d.ops_.push_back(OpInstance{OpClass::Mux, fsm.state_bits(), s.id});
    }
  }
  return d;
}

int DatapathSummary::count(OpClass cls) const {
  int n = 0;
  for (const auto& op : ops_) {
    if (op.cls == cls) ++n;
  }
  return n;
}

int DatapathSummary::max_width() const {
  int w = 0;
  for (const auto& op : ops_) w = std::max(w, op.width);
  return w;
}

std::map<OpClass, int> DatapathSummary::peak_per_state() const {
  // count per (state, class)
  std::map<std::pair<int, OpClass>, int> per_state;
  for (const auto& op : ops_) {
    ++per_state[{op.state, op.cls}];
  }
  std::map<OpClass, int> peak;
  for (const auto& [key, n] : per_state) {
    auto& p = peak[key.second];
    p = std::max(p, n);
  }
  return peak;
}

std::string DatapathSummary::str() const {
  std::string out;
  auto peak = peak_per_state();
  for (const auto& [cls, n] : peak) {
    out += std::string(to_string(cls)) + ": peak " + std::to_string(n) +
           " / total " + std::to_string(count(cls)) + "\n";
  }
  return out;
}

}  // namespace hicsync::synth
