// Coverage reporting: the markdown/JSON renderings of a (merged) model,
// the hole report, and the threshold check behind `hic-cover --check`.
#pragma once

#include <string>

#include "cover/model.h"

namespace hicsync::cover {

/// Markdown report: summary line, per-covergroup table (bins / hit /
/// coverage % / unexpected hits), then the hole report — every never-hit
/// bin, grouped by covergroup in name order, bins in declaration order.
[[nodiscard]] std::string emit_report_md(const CoverageModel& model);

/// The same content as a JSON document (pretty-printed), for tooling.
[[nodiscard]] std::string emit_report_json(const CoverageModel& model);

/// One-line summary: "coverage 87.5% (42/48 bins, 12 groups)".
[[nodiscard]] std::string summary_line(const CoverageModel& model);

/// Result of a `--check` threshold evaluation.
struct CheckResult {
  bool ok = true;
  /// Groups (restricted to `group_prefix` when non-empty) whose coverage
  /// is below the threshold, rendered as "name: 66.7% < 90%" lines.
  std::string detail;
};

/// Checks every covergroup whose name starts with `group_prefix` (empty =
/// all groups, evaluated against the *overall* bin coverage as well)
/// against `min_pct`. A model with no matching groups fails the check —
/// a gate that silently matched nothing would always pass.
[[nodiscard]] CheckResult check_coverage(const CoverageModel& model,
                                         double min_pct,
                                         const std::string& group_prefix = "");

/// Percentage formatted the way every report renders it: "87.5%".
[[nodiscard]] std::string format_pct(double pct);

}  // namespace hicsync::cover
