#include "cover/registry.h"

#include <algorithm>
#include <set>

namespace hicsync::cover {

bool CovergroupSpec::applies(sim::OrgKind k) const {
  const CovergroupInfo& i = info();
  if (i.arbitrated_only && k != sim::OrgKind::Arbitrated) return false;
  if (i.eventdriven_only && k != sim::OrgKind::EventDriven) return false;
  return true;
}

std::string qualified_name(sim::OrgKind org, std::string_view id) {
  return std::string(org_prefix(org)) + "." + std::string(id);
}

namespace bins {

std::string port(int controller, trace::PortKind p, int pseudo_port) {
  std::string out = "bram" + std::to_string(controller) + ".";
  if (p == trace::PortKind::A) return out + "A";
  out += to_string(p);
  out += std::to_string(pseudo_port);
  return out;
}

std::string latency_bucket(std::uint64_t cycles) {
  for (std::uint64_t bound : {2ull, 4ull, 8ull, 16ull, 32ull, 64ull}) {
    if (cycles <= bound) return "le" + std::to_string(bound);
  }
  return "gt64";
}

std::string fsm_state(const std::string& thread, int id) {
  return thread + ".S" + std::to_string(id);
}

std::string fsm_transition(const std::string& thread, int from, int to) {
  return thread + ".S" + std::to_string(from) + "toS" + std::to_string(to);
}

}  // namespace bins

namespace {

const std::uint64_t kLatencyBounds[] = {2, 4, 8, 16, 32, 64};

// ---------------------------------------------------------------------------
// port.activity — every pseudo-port (and port A) requested and granted
// ---------------------------------------------------------------------------
class PortActivitySpec : public CovergroupSpec {
 public:
  const CovergroupInfo& info() const override {
    static const CovergroupInfo i{
        "port.activity",
        "every consumer/producer pseudo-port (and port A) saw a request "
        "and a grant"};
    return i;
  }
  void declare(const ModelInputs& in, Covergroup& g) const override {
    for (const ControllerModel& c : in.controllers) {
      for (int i = 0; i < c.num_consumers; ++i) {
        const std::string p = bins::port(c.bram_id, trace::PortKind::C, i);
        g.declare(p + ".request");
        g.declare(p + ".grant");
      }
      for (int j = 0; j < c.num_producers; ++j) {
        const std::string p = bins::port(c.bram_id, trace::PortKind::D, j);
        g.declare(p + ".request");
        g.declare(p + ".grant");
      }
      if (c.has_port_a) {
        const std::string p = bins::port(c.bram_id, trace::PortKind::A, -1);
        g.declare(p + ".request");
        g.declare(p + ".grant");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// port.stall — port × stall-cause cross, restricted to the causes the
// organization can actually produce (see sim/system.cpp observe_mem_op)
// ---------------------------------------------------------------------------
class PortStallSpec : public CovergroupSpec {
 public:
  const CovergroupInfo& info() const override {
    static const CovergroupInfo i{
        "port.stall",
        "cross of pseudo-port x stall cause, over the causes reachable in "
        "this organization"};
    return i;
  }
  void declare(const ModelInputs& in, Covergroup& g) const override {
    const bool arb = in.organization == sim::OrgKind::Arbitrated;
    const char* shared_cause =
        arb ? to_string(trace::StallCause::ArbitrationLoss)
            : to_string(trace::StallCause::NotOurSlot);
    const char* dep_cause =
        to_string(trace::StallCause::DependencyNotProduced);
    for (const ControllerModel& c : in.controllers) {
      for (int i = 0; i < c.num_consumers; ++i) {
        const std::string p = bins::port(c.bram_id, trace::PortKind::C, i);
        g.declare(p + "." + shared_cause);
        g.declare(p + "." + dep_cause);
        g.declare(p + "." + to_string(trace::StallCause::DataWait));
      }
      for (int j = 0; j < c.num_producers; ++j) {
        const std::string p = bins::port(c.bram_id, trace::PortKind::D, j);
        g.declare(p + "." + shared_cause);
        g.declare(p + "." + dep_cause);
      }
      if (c.has_port_a) {
        g.declare(bins::port(c.bram_id, trace::PortKind::A, -1) + "." +
                  to_string(trace::StallCause::PortABusy));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// arb.sequence — round-robin fairness over consumer arbitration wins
// ---------------------------------------------------------------------------
class ArbSequenceSpec : public CovergroupSpec {
 public:
  const CovergroupInfo& info() const override {
    static const CovergroupInfo i{
        "arb.sequence",
        "round-robin arbitration fairness: win singles, ordered win pairs "
        "and a full fairness window on port C",
        /*arbitrated_only=*/true};
    return i;
  }
  void declare(const ModelInputs& in, Covergroup& g) const override {
    for (const ControllerModel& c : in.controllers) {
      const std::string b = "bram" + std::to_string(c.bram_id) + ".";
      for (int i = 0; i < c.num_consumers; ++i) {
        g.declare(b + "win.C" + std::to_string(i));
      }
      for (int i = 0; i < c.num_consumers; ++i) {
        for (int j = 0; j < c.num_consumers; ++j) {
          g.declare(b + "pair.C" + std::to_string(i) + "toC" +
                    std::to_string(j));
        }
      }
      if (c.num_consumers >= 2) g.declare(b + "fair_window");
    }
  }
};

// ---------------------------------------------------------------------------
// deplist.occupancy — concurrently open produce→consume rounds
// ---------------------------------------------------------------------------
class DeplistOccupancySpec : public CovergroupSpec {
 public:
  const CovergroupInfo& info() const override {
    static const CovergroupInfo i{
        "deplist.occupancy",
        "high-water of concurrently open dependency rounds per controller"};
    return i;
  }
  void declare(const ModelInputs& in, Covergroup& g) const override {
    for (const ControllerModel& c : in.controllers) {
      const std::string b = "bram" + std::to_string(c.bram_id) + ".open";
      for (std::size_t k = 1; k <= c.deps.size(); ++k) {
        g.declare(b + std::to_string(k));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// round.latency — produce→last-consume latency buckets per dependency
// ---------------------------------------------------------------------------
class RoundLatencySpec : public CovergroupSpec {
 public:
  const CovergroupInfo& info() const override {
    static const CovergroupInfo i{
        "round.latency",
        "produce-to-last-consume completion latency buckets per dependency"};
    return i;
  }
  void declare(const ModelInputs& in, Covergroup& g) const override {
    for (const ControllerModel& c : in.controllers) {
      for (const memorg::DepEntry& d : c.deps) {
        for (std::uint64_t bound : kLatencyBounds) {
          g.declare(d.id + ".le" + std::to_string(bound));
        }
        g.declare(d.id + ".gt64");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// fsm.state — every synthesized FSM state entered
// ---------------------------------------------------------------------------
class FsmStateSpec : public CovergroupSpec {
 public:
  const CovergroupInfo& info() const override {
    static const CovergroupInfo i{
        "fsm.state", "every synthesized FSM state entered, per thread"};
    return i;
  }
  void declare(const ModelInputs& in, Covergroup& g) const override {
    if (in.fsms == nullptr) return;
    for (const synth::ThreadFsm& fsm : *in.fsms) {
      for (const synth::FsmState& s : fsm.states()) {
        g.declare(bins::fsm_state(fsm.thread_name(), s.id));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// fsm.transition — every static FSM edge taken
// ---------------------------------------------------------------------------
class FsmTransitionSpec : public CovergroupSpec {
 public:
  const CovergroupInfo& info() const override {
    static const CovergroupInfo i{
        "fsm.transition",
        "every static FSM edge taken (including the done->initial restart), "
        "per thread"};
    return i;
  }
  void declare(const ModelInputs& in, Covergroup& g) const override {
    if (in.fsms == nullptr) return;
    for (const synth::ThreadFsm& fsm : *in.fsms) {
      std::set<std::pair<int, int>> edges;
      for (const synth::FsmState& s : fsm.states()) {
        switch (s.kind) {
          case synth::StateKind::Action:
            if (s.next >= 0) edges.emplace(s.id, s.next);
            break;
          case synth::StateKind::Branch:
            if (s.true_target >= 0) edges.emplace(s.id, s.true_target);
            if (s.false_target >= 0) edges.emplace(s.id, s.false_target);
            for (const synth::CaseTransition& t : s.case_targets) {
              if (t.target >= 0) edges.emplace(s.id, t.target);
            }
            break;
          case synth::StateKind::Done:
            break;
        }
      }
      for (const auto& [from, to] : edges) {
        g.declare(bins::fsm_transition(fsm.thread_name(), from, to));
      }
      g.declare(fsm.thread_name() + ".restart");
    }
  }
};

// ---------------------------------------------------------------------------
// cross.consumer — dependency × consumer pseudo-port consume cross
// ---------------------------------------------------------------------------
class CrossConsumerSpec : public CovergroupSpec {
 public:
  const CovergroupInfo& info() const override {
    static const CovergroupInfo i{
        "cross.consumer",
        "cross of dependency x consumer pseudo-port: every declared "
        "consumer slot observed a consume"};
    return i;
  }
  void declare(const ModelInputs& in, Covergroup& g) const override {
    for (const ControllerModel& c : in.controllers) {
      for (const memorg::DepEntry& d : c.deps) {
        for (int p : d.consumer_ports) {
          g.declare(d.id + ".C" + std::to_string(p));
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// sched.slot — event-driven: every modulo-schedule slot selected
// ---------------------------------------------------------------------------
class SchedSlotSpec : public CovergroupSpec {
 public:
  const CovergroupInfo& info() const override {
    static const CovergroupInfo i{
        "sched.slot",
        "event-driven selection logic visited every modulo-schedule slot",
        /*arbitrated_only=*/false, /*eventdriven_only=*/true};
    return i;
  }
  void declare(const ModelInputs& in, Covergroup& g) const override {
    for (const ControllerModel& c : in.controllers) {
      const std::string b = "bram" + std::to_string(c.bram_id) + ".slot";
      for (int s = 0; s < c.total_slots; ++s) {
        g.declare(b + std::to_string(s));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// thread.pass — every thread completed a run-to-completion pass
// ---------------------------------------------------------------------------
class ThreadPassSpec : public CovergroupSpec {
 public:
  const CovergroupInfo& info() const override {
    static const CovergroupInfo i{
        "thread.pass",
        "every thread completed at least one run-to-completion pass"};
    return i;
  }
  void declare(const ModelInputs& in, Covergroup& g) const override {
    if (in.fsms == nullptr) return;
    for (const synth::ThreadFsm& fsm : *in.fsms) {
      g.declare(fsm.thread_name());
    }
  }
};

}  // namespace

const CoverRegistry& CoverRegistry::builtin() {
  static const CoverRegistry* registry = [] {
    auto* r = new CoverRegistry();
    r->register_spec(std::make_unique<PortActivitySpec>());
    r->register_spec(std::make_unique<PortStallSpec>());
    r->register_spec(std::make_unique<ArbSequenceSpec>());
    r->register_spec(std::make_unique<DeplistOccupancySpec>());
    r->register_spec(std::make_unique<RoundLatencySpec>());
    r->register_spec(std::make_unique<FsmStateSpec>());
    r->register_spec(std::make_unique<FsmTransitionSpec>());
    r->register_spec(std::make_unique<CrossConsumerSpec>());
    r->register_spec(std::make_unique<SchedSlotSpec>());
    r->register_spec(std::make_unique<ThreadPassSpec>());
    return r;
  }();
  return *registry;
}

void CoverRegistry::register_spec(std::unique_ptr<CovergroupSpec> spec) {
  specs_.push_back(std::move(spec));
}

const CovergroupSpec* CoverRegistry::find(std::string_view id) const {
  for (const auto& s : specs_) {
    if (id == s->info().id) return s.get();
  }
  return nullptr;
}

std::vector<CovergroupInfo> CoverRegistry::infos() const {
  std::vector<CovergroupInfo> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(s->info());
  return out;
}

void declare_model(const CoverRegistry& registry, const ModelInputs& in,
                   CoverageModel& model) {
  for (const auto& spec : registry.specs()) {
    if (!spec->applies(in.organization)) continue;
    Covergroup& g = model.group(qualified_name(in.organization, spec->info().id),
                                spec->info().description);
    spec->declare(in, g);
  }
}

}  // namespace hicsync::cover
