// hic-cover: functional-coverage model over the synchronization machinery.
//
// hic-trace answers "what happened in this run"; the coverage model answers
// "which behaviors have *ever* happened across runs" — the standard
// observability instrument of hardware verification. A CoverageModel is a
// set of covergroups, each a flat list of named bins declared *up front*
// from the compiled program (every FSM state, every stall cause a port can
// exhibit, every schedule slot, ...). Running a simulation with a
// cover::CoverageSink attached marks bins hit; bins never hit are the
// holes the `hic-cover` report surfaces. Models persist as append-only
// JSONL records (cover/db.h) and merge across runs by summing hits.
//
// Covergroup names are prefixed with the memory organization
// ("arbitrated." / "eventdriven.") so a merged database keeps the two
// controllers' behavior spaces apart — the paper's §4 comparison is
// exactly about their differing dynamics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "memalloc/allocator.h"
#include "memalloc/portplan.h"
#include "memorg/deplist.h"
#include "sim/system.h"
#include "synth/fsm.h"

namespace hicsync::cover {

struct CoverBin {
  std::string name;
  std::uint64_t hits = 0;
};

/// One covergroup: bins in declaration order plus a by-name index. A
/// coverage percentage counts *bins hit at least once*, not hit totals.
class Covergroup {
 public:
  Covergroup(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& description() const { return description_; }
  [[nodiscard]] const std::vector<CoverBin>& bins() const { return bins_; }

  /// Declares a bin (idempotent: re-declaring an existing bin is a no-op).
  void declare(const std::string& bin);
  /// Marks a bin hit. Returns false — and counts the event as unexpected —
  /// when the bin was never declared, so stray hits are visible instead of
  /// silently inflating coverage.
  bool hit(const std::string& bin, std::uint64_t n = 1);

  [[nodiscard]] const CoverBin* find(const std::string& bin) const;
  [[nodiscard]] std::size_t hit_bins() const;
  [[nodiscard]] std::uint64_t unexpected() const { return unexpected_; }
  void add_unexpected(std::uint64_t n) { unexpected_ += n; }
  /// 100% when the group declares no bins (vacuously covered).
  [[nodiscard]] double coverage_pct() const;
  /// Bins with zero hits, in declaration order.
  [[nodiscard]] std::vector<const CoverBin*> holes() const;

 private:
  std::string name_;
  std::string description_;
  std::vector<CoverBin> bins_;
  std::map<std::string, std::size_t> index_;
  std::uint64_t unexpected_ = 0;
};

class CoverageModel {
 public:
  /// Returns (creating on first use) the named group. A later call may
  /// supply the description the first omitted.
  Covergroup& group(const std::string& name,
                    const std::string& description = "");
  [[nodiscard]] const Covergroup* find(const std::string& name) const;
  /// Groups sorted by name (the report and DB order).
  [[nodiscard]] std::vector<const Covergroup*> groups() const;

  /// Convenience: hit `bin` of `group_name`; false when either is unknown.
  bool hit(const std::string& group_name, const std::string& bin,
           std::uint64_t n = 1);

  /// Union of groups and bins; hits and unexpected counts sum.
  void merge_from(const CoverageModel& other);

  [[nodiscard]] std::size_t total_bins() const;
  [[nodiscard]] std::size_t total_hit() const;
  [[nodiscard]] double coverage_pct() const;

 private:
  std::map<std::string, std::unique_ptr<Covergroup>> groups_;
};

// ---------------------------------------------------------------------------
// Model declaration inputs
// ---------------------------------------------------------------------------

/// What the bin declarations need to know about one generated controller.
struct ControllerModel {
  int bram_id = -1;
  int num_consumers = 0;
  int num_producers = 0;
  /// Any thread performs plain (port A) accesses on this BRAM.
  bool has_port_a = false;
  std::vector<memorg::DepEntry> deps;
  /// Event-driven schedule length (producer + consumer slots).
  int total_slots = 0;
};

struct ModelInputs {
  sim::OrgKind organization = sim::OrgKind::Arbitrated;
  /// Synthesized FSMs, one per thread (not owned; must outlive the model
  /// declaration and any CoverageSink built from these inputs).
  const std::vector<synth::ThreadFsm>* fsms = nullptr;
  std::vector<ControllerModel> controllers;
};

/// Covergroup-name prefix of an organization: "arbitrated" / "eventdriven".
[[nodiscard]] const char* org_prefix(sim::OrgKind k);

/// Derives the declaration inputs from a compilation's artifacts (the same
/// pieces SystemSim is built from).
[[nodiscard]] ModelInputs inputs_from(
    sim::OrgKind organization, const std::vector<synth::ThreadFsm>& fsms,
    const memalloc::MemoryMap& map,
    const std::vector<memalloc::BramPortPlan>& plans);

}  // namespace hicsync::cover
