// The append-only coverage database.
//
// One run with `hicc --cover=DB.jsonl` appends one JSONL record: the full
// declared model with per-bin hit counts — zero-hit bins included, so
// holes survive serialization and merging. `hic-cover` loads any number
// of records/files and merges them (union of groups and bins, hits sum),
// which is what makes coverage a cross-run ledger rather than a single-run
// report. Schema:
//
//   {"schema":1,"run_id":"fig1@arbitrated","organization":"arbitrated",
//    "groups":[{"name":"arbitrated.fsm.state","description":"...",
//               "unexpected":0,"bins":[["t1.S0",12],["t1.S1",0],...]},...]}
#pragma once

#include <string>

#include "cover/model.h"
#include "support/json.h"

namespace hicsync::cover {

inline constexpr int kCoverageSchemaVersion = 1;

/// Serializes a model as one compact JSONL record (no trailing newline).
[[nodiscard]] std::string to_record(const CoverageModel& model,
                                    const std::string& run_id,
                                    const std::string& organization);

/// Merges one parsed record into `out`. False (with `error`) on schema
/// mismatch or malformed structure; `out` is unchanged on failure.
[[nodiscard]] bool record_to_model(const support::JsonValue& record,
                                   CoverageModel* out,
                                   std::string* error = nullptr);

/// Parses JSONL text and merges every record into `out`. `records`, when
/// given, receives the number of records merged.
[[nodiscard]] bool load_records(std::string_view text, CoverageModel* out,
                                std::string* error = nullptr,
                                int* records = nullptr);

/// Reads and merges one coverage DB file. False on I/O or parse errors.
[[nodiscard]] bool load_file(const std::string& path, CoverageModel* out,
                             std::string* error = nullptr,
                             int* records = nullptr);

}  // namespace hicsync::cover
