#include "cover/model.h"

#include <algorithm>

namespace hicsync::cover {

void Covergroup::declare(const std::string& bin) {
  if (index_.count(bin) != 0) return;
  index_.emplace(bin, bins_.size());
  bins_.push_back(CoverBin{bin, 0});
}

bool Covergroup::hit(const std::string& bin, std::uint64_t n) {
  auto it = index_.find(bin);
  if (it == index_.end()) {
    unexpected_ += n;
    return false;
  }
  bins_[it->second].hits += n;
  return true;
}

const CoverBin* Covergroup::find(const std::string& bin) const {
  auto it = index_.find(bin);
  return it == index_.end() ? nullptr : &bins_[it->second];
}

std::size_t Covergroup::hit_bins() const {
  std::size_t n = 0;
  for (const auto& b : bins_) {
    if (b.hits > 0) ++n;
  }
  return n;
}

double Covergroup::coverage_pct() const {
  if (bins_.empty()) return 100.0;
  return 100.0 * static_cast<double>(hit_bins()) /
         static_cast<double>(bins_.size());
}

std::vector<const CoverBin*> Covergroup::holes() const {
  std::vector<const CoverBin*> out;
  for (const auto& b : bins_) {
    if (b.hits == 0) out.push_back(&b);
  }
  return out;
}

Covergroup& CoverageModel::group(const std::string& name,
                                 const std::string& description) {
  auto it = groups_.find(name);
  if (it == groups_.end()) {
    it = groups_
             .emplace(name, std::make_unique<Covergroup>(name, description))
             .first;
  }
  return *it->second;
}

const Covergroup* CoverageModel::find(const std::string& name) const {
  auto it = groups_.find(name);
  return it == groups_.end() ? nullptr : it->second.get();
}

std::vector<const Covergroup*> CoverageModel::groups() const {
  std::vector<const Covergroup*> out;
  out.reserve(groups_.size());
  for (const auto& [name, g] : groups_) out.push_back(g.get());
  return out;  // std::map iteration is already name-sorted
}

bool CoverageModel::hit(const std::string& group_name, const std::string& bin,
                        std::uint64_t n) {
  auto it = groups_.find(group_name);
  if (it == groups_.end()) return false;
  return it->second->hit(bin, n);
}

void CoverageModel::merge_from(const CoverageModel& other) {
  for (const auto& [name, src] : other.groups_) {
    Covergroup& dst = group(name, src->description());
    for (const auto& b : src->bins()) {
      dst.declare(b.name);
      if (b.hits > 0) dst.hit(b.name, b.hits);
    }
    dst.add_unexpected(src->unexpected());
  }
}

std::size_t CoverageModel::total_bins() const {
  std::size_t n = 0;
  for (const auto& [name, g] : groups_) n += g->bins().size();
  return n;
}

std::size_t CoverageModel::total_hit() const {
  std::size_t n = 0;
  for (const auto& [name, g] : groups_) n += g->hit_bins();
  return n;
}

double CoverageModel::coverage_pct() const {
  const std::size_t total = total_bins();
  if (total == 0) return 100.0;
  return 100.0 * static_cast<double>(total_hit()) /
         static_cast<double>(total);
}

const char* org_prefix(sim::OrgKind k) {
  switch (k) {
    case sim::OrgKind::Arbitrated:
      return "arbitrated";
    case sim::OrgKind::EventDriven:
      return "eventdriven";
  }
  return "unknown";
}

ModelInputs inputs_from(sim::OrgKind organization,
                        const std::vector<synth::ThreadFsm>& fsms,
                        const memalloc::MemoryMap& map,
                        const std::vector<memalloc::BramPortPlan>& plans) {
  ModelInputs in;
  in.organization = organization;
  in.fsms = &fsms;
  for (const auto& bram : map.brams()) {
    const memalloc::BramPortPlan* plan = nullptr;
    for (const auto& p : plans) {
      if (p.bram_id == bram.id) {
        plan = &p;
        break;
      }
    }
    if (plan == nullptr || bram.dependencies.empty()) continue;
    ControllerModel cm;
    cm.bram_id = bram.id;
    cm.num_consumers = plan->consumer_pseudo_ports();
    cm.num_producers = plan->producer_pseudo_ports();
    cm.has_port_a = std::any_of(
        plan->clients.begin(), plan->clients.end(), [](const auto& c) {
          return c.port == memalloc::LogicalPort::A;
        });
    cm.deps = memorg::build_dep_entries(bram, *plan);
    cm.total_slots = memorg::total_slots(cm.deps);
    in.controllers.push_back(std::move(cm));
  }
  return in;
}

}  // namespace hicsync::cover
