#include "cover/sink.h"

#include <algorithm>
#include <set>

namespace hicsync::cover {

namespace {

Covergroup* applicable_group(CoverageModel& model, sim::OrgKind org,
                             const char* id) {
  // Groups were created by declare_model; absent means the spec does not
  // apply to this organization (or a caller-trimmed model — also skip).
  const Covergroup* g = model.find(qualified_name(org, id));
  return const_cast<Covergroup*>(g);
}

}  // namespace

CoverageSink::CoverageSink(CoverageModel& model, const ModelInputs& in) {
  const sim::OrgKind org = in.organization;
  activity_ = applicable_group(model, org, "port.activity");
  stall_ = applicable_group(model, org, "port.stall");
  arbseq_ = applicable_group(model, org, "arb.sequence");
  occupancy_ = applicable_group(model, org, "deplist.occupancy");
  latency_ = applicable_group(model, org, "round.latency");
  fsm_state_ = applicable_group(model, org, "fsm.state");
  fsm_transition_ = applicable_group(model, org, "fsm.transition");
  cross_consumer_ = applicable_group(model, org, "cross.consumer");
  sched_slot_ = applicable_group(model, org, "sched.slot");
  thread_pass_ = applicable_group(model, org, "thread.pass");

  if (in.fsms != nullptr) {
    for (const synth::ThreadFsm& fsm : *in.fsms) {
      ThreadState ts;
      ts.initial = fsm.initial();
      ts.done = fsm.done();
      threads_.emplace(fsm.thread_name(), ts);
    }
  }
  for (const ControllerModel& c : in.controllers) {
    arb_[c.bram_id].num_consumers = c.num_consumers;
    open_limit_[c.bram_id] = static_cast<int>(c.deps.size());
  }
}

void CoverageSink::on_event(const trace::Event& e) {
  using trace::EventKind;
  switch (e.kind) {
    case EventKind::PortRequest:
      if (activity_ != nullptr) {
        activity_->hit(bins::port(e.controller, e.port, e.pseudo_port) +
                       ".request");
      }
      break;
    case EventKind::PortGrant:
      if (activity_ != nullptr) {
        activity_->hit(bins::port(e.controller, e.port, e.pseudo_port) +
                       ".grant");
      }
      break;
    case EventKind::PortStall:
      if (stall_ != nullptr) {
        stall_->hit(bins::port(e.controller, e.port, e.pseudo_port) + "." +
                    to_string(e.cause));
      }
      break;
    case EventKind::ArbWin: {
      if (arbseq_ == nullptr || e.port != trace::PortKind::C) break;
      ArbState& a = arb_[e.controller];
      const std::string b = "bram" + std::to_string(e.controller) + ".";
      arbseq_->hit(b + "win.C" + std::to_string(e.pseudo_port));
      if (a.last_winner >= 0) {
        arbseq_->hit(b + "pair.C" + std::to_string(a.last_winner) + "toC" +
                     std::to_string(e.pseudo_port));
      }
      a.last_winner = e.pseudo_port;
      if (a.num_consumers >= 2) {
        a.window.push_back(e.pseudo_port);
        if (a.window.size() >
            static_cast<std::size_t>(a.num_consumers)) {
          a.window.pop_front();
        }
        // Fairness: the last num_consumers wins form a permutation of all
        // consumer pseudo-ports (nobody starved for a full rotation).
        if (a.window.size() == static_cast<std::size_t>(a.num_consumers)) {
          std::set<int> distinct(a.window.begin(), a.window.end());
          if (distinct.size() == a.window.size()) {
            arbseq_->hit(b + "fair_window");
          }
        }
      }
      break;
    }
    case EventKind::SlotAdvance:
      if (sched_slot_ != nullptr) {
        sched_slot_->hit("bram" + std::to_string(e.controller) + ".slot" +
                         std::to_string(e.value));
      }
      break;
    case EventKind::Produce: {
      if (occupancy_ != nullptr) {
        // A new round can open in the same cycle its predecessor's
        // RoundComplete fires; event order within the cycle would then
        // transiently overshoot the real concurrency, so clamp at the
        // dependency count (the declared — and semantic — maximum).
        const int open =
            std::min(++open_rounds_[e.controller], open_limit_[e.controller]);
        occupancy_->hit("bram" + std::to_string(e.controller) + ".open" +
                        std::to_string(open));
      }
      break;
    }
    case EventKind::Consume:
      if (cross_consumer_ != nullptr) {
        cross_consumer_->hit(std::string(e.dep) + ".C" +
                             std::to_string(e.pseudo_port));
      }
      break;
    case EventKind::RoundComplete:
      if (latency_ != nullptr) {
        latency_->hit(std::string(e.dep) + "." +
                      bins::latency_bucket(
                          static_cast<std::uint64_t>(std::max<std::int64_t>(
                              e.value, 0))));
      }
      if (occupancy_ != nullptr) {
        int& open = open_rounds_[e.controller];
        if (open > 0) --open;
      }
      break;
    case EventKind::FsmState: {
      const int state = static_cast<int>(e.value);
      auto it = threads_.find(e.thread);
      if (it == threads_.end()) break;
      ThreadState& ts = it->second;
      if (fsm_state_ != nullptr) {
        fsm_state_->hit(bins::fsm_state(it->first, state));
      }
      if (fsm_transition_ != nullptr && ts.prev_state >= 0) {
        if (ts.prev_state == ts.done && state == ts.initial) {
          fsm_transition_->hit(it->first + ".restart");
        } else {
          fsm_transition_->hit(
              bins::fsm_transition(it->first, ts.prev_state, state));
        }
      }
      ts.prev_state = state;
      break;
    }
    case EventKind::ThreadBlock:
    case EventKind::ThreadUnblock:
      break;
    case EventKind::PassComplete:
      if (thread_pass_ != nullptr) thread_pass_->hit(std::string(e.thread));
      break;
  }
}

}  // namespace hicsync::cover
