// The covergroup registry: enumerable coverage specs, mirroring the
// hic-lint check registry so `hic-cover --list` (and the docs) can print
// the full catalogue with one-line descriptions.
//
// A CovergroupSpec knows how to *declare* its bins for a compiled program
// — which behaviors are possible given the FSMs, port plans and dependency
// lists — and gives the bin-naming convention the CoverageSink then hits
// at runtime. Declaration is exhaustive and up front: a bin that can never
// fire still exists, which is exactly what makes holes observable.
//
// Registered covergroups (qualified as "<org>.<id>" in a model):
//   port.activity     request/grant seen per pseudo-port (and port A)
//   port.stall        port × stall-cause cross (per-organization causes)
//   arb.sequence      round-robin win singles/ordered pairs/fair window
//   deplist.occupancy concurrently open rounds high-water, per controller
//   round.latency     produce→last-consume latency buckets, per dependency
//   fsm.state         every synthesized FSM state, per thread
//   fsm.transition    every static FSM edge (+ the done→initial restart)
//   cross.consumer    dependency × consumer pseudo-port consume cross
//   sched.slot        event-driven: every modulo-schedule slot selected
//   thread.pass       every thread completed at least one pass
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cover/model.h"
#include "trace/event.h"

namespace hicsync::cover {

/// Immutable metadata of one registered covergroup.
struct CovergroupInfo {
  const char* id;           // stable, e.g. "fsm.state"
  const char* description;  // one line, for docs and --list
  /// Restricted to one organization (e.g. arb.sequence, sched.slot);
  /// when set, the spec declares nothing for the other organization.
  bool arbitrated_only = false;
  bool eventdriven_only = false;
};

/// One covergroup spec: declares its bins for a program's model inputs.
class CovergroupSpec {
 public:
  virtual ~CovergroupSpec() = default;
  [[nodiscard]] virtual const CovergroupInfo& info() const = 0;
  /// Declares every bin of this group into `g` (already created under the
  /// qualified name). Only called when the spec applies to the org.
  virtual void declare(const ModelInputs& in, Covergroup& g) const = 0;

  [[nodiscard]] bool applies(sim::OrgKind k) const;
};

class CoverRegistry {
 public:
  /// Registry pre-populated with every built-in covergroup.
  [[nodiscard]] static const CoverRegistry& builtin();

  CoverRegistry() = default;
  void register_spec(std::unique_ptr<CovergroupSpec> spec);

  [[nodiscard]] const std::vector<std::unique_ptr<CovergroupSpec>>& specs()
      const {
    return specs_;
  }
  [[nodiscard]] const CovergroupSpec* find(std::string_view id) const;
  [[nodiscard]] std::vector<CovergroupInfo> infos() const;

 private:
  std::vector<std::unique_ptr<CovergroupSpec>> specs_;
};

/// Qualified covergroup name: "<org-prefix>.<spec-id>".
[[nodiscard]] std::string qualified_name(sim::OrgKind org,
                                         std::string_view id);

/// Declares every applicable registered covergroup for `in` into `model`.
void declare_model(const CoverRegistry& registry, const ModelInputs& in,
                   CoverageModel& model);

// --- Bin-naming conventions shared by declaration and the runtime sink ---
namespace bins {

/// "bram<N>.C<i>" / "bram<N>.D<j>" / "bram<N>.A".
[[nodiscard]] std::string port(int controller, trace::PortKind port,
                               int pseudo_port);
/// Latency bucket of a round-completion latency: "le2".."le64" / "gt64".
[[nodiscard]] std::string latency_bucket(std::uint64_t cycles);
/// "<thread>.S<id>".
[[nodiscard]] std::string fsm_state(const std::string& thread, int id);
/// "<thread>.S<a>toS<b>".
[[nodiscard]] std::string fsm_transition(const std::string& thread, int from,
                                         int to);

}  // namespace bins

}  // namespace hicsync::cover
