// CoverageSink: the TraceBus subscriber that marks covergroup bins hit.
//
// Same contract as trace::MetricsSink — attach it to the bus a SystemSim
// publishes on and every declared behavior that occurs is recorded; when
// no sink is attached the simulator pays one branch per cycle (the
// zero-cost-when-off property bench_sim asserts). The sink owns the small
// amount of sequencing state coverage needs beyond single events:
// previous FSM state per thread (transition bins), recent arbitration
// winners per controller (ordered-pair and fairness-window bins), and the
// count of concurrently open dependency rounds (occupancy bins).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "cover/registry.h"
#include "trace/bus.h"

namespace hicsync::cover {

class CoverageSink : public trace::TraceSink {
 public:
  /// `model` must already hold the declared covergroups for `in`
  /// (declare_model); the sink hits bins in place. Both must outlive the
  /// sink's last on_event.
  CoverageSink(CoverageModel& model, const ModelInputs& in);

  void on_event(const trace::Event& e) override;

 private:
  struct ThreadState {
    int prev_state = -1;
    int initial = -1;
    int done = -1;
  };
  struct ArbState {
    int num_consumers = 0;
    int last_winner = -1;
    std::deque<int> window;  // most recent port-C winners
  };

  // Applicable covergroups of the model (null when the organization does
  // not declare them, e.g. arb.sequence under event-driven).
  Covergroup* activity_ = nullptr;
  Covergroup* stall_ = nullptr;
  Covergroup* arbseq_ = nullptr;
  Covergroup* occupancy_ = nullptr;
  Covergroup* latency_ = nullptr;
  Covergroup* fsm_state_ = nullptr;
  Covergroup* fsm_transition_ = nullptr;
  Covergroup* cross_consumer_ = nullptr;
  Covergroup* sched_slot_ = nullptr;
  Covergroup* thread_pass_ = nullptr;

  std::map<std::string, ThreadState, std::less<>> threads_;
  std::map<int, ArbState> arb_;        // controller -> win sequencing
  std::map<int, int> open_rounds_;     // controller -> open round count
  std::map<int, int> open_limit_;      // controller -> dependency count
};

}  // namespace hicsync::cover
