#include "cover/db.h"

#include <fstream>
#include <sstream>

namespace hicsync::cover {

std::string to_record(const CoverageModel& model, const std::string& run_id,
                      const std::string& organization) {
  support::JsonWriter w(/*indent=*/0);
  w.begin_object();
  w.key("schema").value(kCoverageSchemaVersion);
  w.key("run_id").value(run_id);
  w.key("organization").value(organization);
  w.key("groups").begin_array();
  for (const Covergroup* g : model.groups()) {
    w.begin_object();
    w.key("name").value(g->name());
    w.key("description").value(g->description());
    w.key("unexpected").value(static_cast<std::uint64_t>(g->unexpected()));
    w.key("bins").begin_array();
    for (const CoverBin& b : g->bins()) {
      w.begin_array().value(b.name).value(b.hits).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool record_to_model(const support::JsonValue& record, CoverageModel* out,
                     std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!record.is_object()) return fail("record is not an object");
  const support::JsonValue* schema = record.find("schema");
  if (schema == nullptr || !schema->is_number()) {
    return fail("record has no numeric 'schema' field");
  }
  if (static_cast<int>(schema->number_value) != kCoverageSchemaVersion) {
    return fail("unsupported coverage schema version " +
                std::to_string(static_cast<int>(schema->number_value)));
  }
  const support::JsonValue* groups = record.find("groups");
  if (groups == nullptr || !groups->is_array()) {
    return fail("record has no 'groups' array");
  }
  // Validate the whole record before mutating `out`.
  for (const support::JsonValue& g : groups->elements) {
    const support::JsonValue* name = g.find("name");
    const support::JsonValue* bins = g.find("bins");
    if (name == nullptr || !name->is_string() || bins == nullptr ||
        !bins->is_array()) {
      return fail("malformed group entry (need string 'name', array 'bins')");
    }
    for (const support::JsonValue& b : bins->elements) {
      if (!b.is_array() || b.elements.size() != 2 ||
          !b.elements[0].is_string() || !b.elements[1].is_number()) {
        return fail("malformed bin entry in group '" + name->string_value +
                    "' (need [\"name\", hits])");
      }
    }
  }
  for (const support::JsonValue& g : groups->elements) {
    const support::JsonValue* desc = g.find("description");
    Covergroup& dst = out->group(
        g.find("name")->string_value,
        desc != nullptr && desc->is_string() ? desc->string_value : "");
    for (const support::JsonValue& b : g.find("bins")->elements) {
      dst.declare(b.elements[0].string_value);
      const auto hits =
          static_cast<std::uint64_t>(b.elements[1].number_value);
      if (hits > 0) dst.hit(b.elements[0].string_value, hits);
    }
    const support::JsonValue* unexpected = g.find("unexpected");
    if (unexpected != nullptr && unexpected->is_number()) {
      dst.add_unexpected(
          static_cast<std::uint64_t>(unexpected->number_value));
    }
  }
  return true;
}

bool load_records(std::string_view text, CoverageModel* out,
                  std::string* error, int* records) {
  std::vector<support::JsonValue> values;
  if (!support::parse_jsonl(text, &values, error)) return false;
  int n = 0;
  for (const support::JsonValue& v : values) {
    std::string record_error;
    if (!record_to_model(v, out, &record_error)) {
      if (error != nullptr) {
        *error = "record " + std::to_string(n + 1) + ": " + record_error;
      }
      return false;
    }
    ++n;
  }
  if (records != nullptr) *records = n;
  return true;
}

bool load_file(const std::string& path, CoverageModel* out,
               std::string* error, int* records) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string prefixed_error;
  if (!load_records(ss.str(), out, &prefixed_error, records)) {
    if (error != nullptr) *error = path + ": " + prefixed_error;
    return false;
  }
  return true;
}

}  // namespace hicsync::cover
