#include "cover/report.h"

#include <algorithm>

#include "support/json.h"
#include "support/strings.h"

namespace hicsync::cover {

namespace {

/// Holes in name order: Covergroup::holes() follows bin declaration
/// order, which for a model merged from a coverage DB is record order —
/// stable for one file but not across re-orderings of the same records.
/// Sorting makes the report byte-stable for semantically equal inputs
/// (cover.report_deterministic runs hic-cover twice and compares).
std::vector<const CoverBin*> sorted_holes(const Covergroup& g) {
  std::vector<const CoverBin*> holes = g.holes();
  std::sort(holes.begin(), holes.end(),
            [](const CoverBin* a, const CoverBin* b) {
              return a->name < b->name;
            });
  return holes;
}

}  // namespace

std::string format_pct(double pct) {
  return support::format("%.1f%%", pct);
}

std::string summary_line(const CoverageModel& model) {
  return support::format(
      "coverage %s (%zu/%zu bins, %zu groups)",
      format_pct(model.coverage_pct()).c_str(), model.total_hit(),
      model.total_bins(), model.groups().size());
}

std::string emit_report_md(const CoverageModel& model) {
  std::string out = "# Coverage report\n\n";
  out += summary_line(model) + "\n\n";
  out += "| covergroup | bins | hit | coverage | unexpected |\n";
  out += "|---|---|---|---|---|\n";
  for (const Covergroup* g : model.groups()) {
    out += support::format(
        "| %s | %zu | %zu | %s | %llu |\n", g->name().c_str(),
        g->bins().size(), g->hit_bins(),
        format_pct(g->coverage_pct()).c_str(),
        static_cast<unsigned long long>(g->unexpected()));
  }
  out += "\n## Holes\n\n";
  bool any = false;
  for (const Covergroup* g : model.groups()) {
    const auto holes = sorted_holes(*g);
    if (holes.empty()) continue;
    any = true;
    out += support::format("* `%s` (%zu):", g->name().c_str(), holes.size());
    for (const CoverBin* b : holes) out += " " + b->name;
    out += "\n";
  }
  if (!any) out += "(none — every declared bin was hit)\n";
  return out;
}

std::string emit_report_json(const CoverageModel& model) {
  support::JsonWriter w(/*indent=*/2);
  w.begin_object();
  w.key("total_bins").value(static_cast<std::uint64_t>(model.total_bins()));
  w.key("total_hit").value(static_cast<std::uint64_t>(model.total_hit()));
  w.key("coverage_pct").value(model.coverage_pct());
  w.key("groups").begin_array();
  for (const Covergroup* g : model.groups()) {
    w.begin_object();
    w.key("name").value(g->name());
    w.key("description").value(g->description());
    w.key("bins").value(static_cast<std::uint64_t>(g->bins().size()));
    w.key("hit").value(static_cast<std::uint64_t>(g->hit_bins()));
    w.key("coverage_pct").value(g->coverage_pct());
    w.key("unexpected").value(static_cast<std::uint64_t>(g->unexpected()));
    w.key("holes").begin_array();
    for (const CoverBin* b : sorted_holes(*g)) w.value(b->name);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

CheckResult check_coverage(const CoverageModel& model, double min_pct,
                           const std::string& group_prefix) {
  CheckResult r;
  std::size_t matched = 0;
  std::size_t matched_bins = 0;
  std::size_t matched_hit = 0;
  for (const Covergroup* g : model.groups()) {
    if (!group_prefix.empty() &&
        g->name().compare(0, group_prefix.size(), group_prefix) != 0) {
      continue;
    }
    ++matched;
    matched_bins += g->bins().size();
    matched_hit += g->hit_bins();
  }
  if (matched == 0) {
    r.ok = false;
    r.detail = group_prefix.empty()
                   ? "no covergroups in the model\n"
                   : "no covergroup matches prefix '" + group_prefix + "'\n";
    return r;
  }
  const double pct =
      matched_bins == 0 ? 100.0
                        : 100.0 * static_cast<double>(matched_hit) /
                              static_cast<double>(matched_bins);
  if (pct < min_pct) {
    r.ok = false;
    r.detail += support::format(
        "%s: %s < %s (%zu/%zu bins over %zu groups)\n",
        group_prefix.empty() ? "overall" : group_prefix.c_str(),
        format_pct(pct).c_str(), format_pct(min_pct).c_str(), matched_hit,
        matched_bins, matched);
  }
  return r;
}

}  // namespace hicsync::cover
