// Generated RTL for the IP forwarding core.
//
// §4: "The two-port IP forwarding application ... used a total of 5430
// slices, of which around 1000 slices were for the core forwarding
// function." We regenerate that core so the overhead comparison
// (bench_overhead_vs_core) divides by a measured number rather than a
// constant: per input port, a three-stage pipeline of
//   (1) header capture + RFC 1071 checksum verification adder tree,
//   (2) longest-prefix classification via a direct-indexed BRAM table,
//   (3) TTL decrement + RFC 1624 incremental checksum update + egress mux.
#pragma once

#include "rtl/netlist.h"

namespace hicsync::netapp {

struct ForwardingCoreConfig {
  int ports = 2;        // input/output port pairs
  int table_bits = 10;  // direct-indexed LPM table of 2^bits entries
};

/// Generates the forwarding core into `design` and returns the module.
rtl::Module& generate_forwarding_core(rtl::Design& design,
                                      const ForwardingCoreConfig& config,
                                      const std::string& name);

}  // namespace hicsync::netapp
