#include "netapp/packet.h"

namespace hicsync::netapp {

std::array<std::uint8_t, 20> Ipv4Header::serialize() const {
  std::array<std::uint8_t, 20> b{};
  b[0] = static_cast<std::uint8_t>((version << 4) | (ihl & 0xF));
  b[1] = tos;
  b[2] = static_cast<std::uint8_t>(total_length >> 8);
  b[3] = static_cast<std::uint8_t>(total_length);
  b[4] = static_cast<std::uint8_t>(identification >> 8);
  b[5] = static_cast<std::uint8_t>(identification);
  b[6] = static_cast<std::uint8_t>(flags_fragment >> 8);
  b[7] = static_cast<std::uint8_t>(flags_fragment);
  b[8] = ttl;
  b[9] = protocol;
  b[10] = static_cast<std::uint8_t>(checksum >> 8);
  b[11] = static_cast<std::uint8_t>(checksum);
  b[12] = static_cast<std::uint8_t>(src >> 24);
  b[13] = static_cast<std::uint8_t>(src >> 16);
  b[14] = static_cast<std::uint8_t>(src >> 8);
  b[15] = static_cast<std::uint8_t>(src);
  b[16] = static_cast<std::uint8_t>(dst >> 24);
  b[17] = static_cast<std::uint8_t>(dst >> 16);
  b[18] = static_cast<std::uint8_t>(dst >> 8);
  b[19] = static_cast<std::uint8_t>(dst);
  return b;
}

bool Ipv4Header::parse(const std::uint8_t* b, Ipv4Header* out) {
  Ipv4Header h;
  h.version = b[0] >> 4;
  h.ihl = b[0] & 0xF;
  if (h.version != 4 || h.ihl < 5) return false;
  h.tos = b[1];
  h.total_length = static_cast<std::uint16_t>((b[2] << 8) | b[3]);
  h.identification = static_cast<std::uint16_t>((b[4] << 8) | b[5]);
  h.flags_fragment = static_cast<std::uint16_t>((b[6] << 8) | b[7]);
  h.ttl = b[8];
  h.protocol = b[9];
  h.checksum = static_cast<std::uint16_t>((b[10] << 8) | b[11]);
  h.src = (static_cast<std::uint32_t>(b[12]) << 24) |
          (static_cast<std::uint32_t>(b[13]) << 16) |
          (static_cast<std::uint32_t>(b[14]) << 8) | b[15];
  h.dst = (static_cast<std::uint32_t>(b[16]) << 24) |
          (static_cast<std::uint32_t>(b[17]) << 16) |
          (static_cast<std::uint32_t>(b[18]) << 8) | b[19];
  *out = h;
  return true;
}

std::uint16_t ones_complement_sum(const std::uint8_t* data,
                                  std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (len % 2 == 1) {
    sum += static_cast<std::uint32_t>(data[len - 1] << 8);
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t Ipv4Header::compute_checksum() const {
  Ipv4Header copy = *this;
  copy.checksum = 0;
  auto bytes = copy.serialize();
  return static_cast<std::uint16_t>(
      ~ones_complement_sum(bytes.data(), bytes.size()));
}

bool Ipv4Header::checksum_ok() const {
  auto bytes = serialize();
  return ones_complement_sum(bytes.data(), bytes.size()) == 0xFFFF;
}

bool Ipv4Header::forward_hop() {
  if (ttl == 0) return false;
  // RFC 1624 incremental update: HC' = ~(~HC + ~m + m') where the changed
  // 16-bit field m is {ttl, protocol}.
  std::uint16_t old_word =
      static_cast<std::uint16_t>((ttl << 8) | protocol);
  --ttl;
  std::uint16_t new_word =
      static_cast<std::uint16_t>((ttl << 8) | protocol);
  std::uint32_t sum = static_cast<std::uint16_t>(~checksum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  checksum = static_cast<std::uint16_t>(~sum);
  return true;
}

std::uint32_t make_descriptor(std::uint16_t slot, std::uint8_t port,
                              std::uint8_t len_class) {
  return (static_cast<std::uint32_t>(len_class) << 24) |
         (static_cast<std::uint32_t>(port) << 16) | slot;
}

std::uint16_t descriptor_slot(std::uint32_t d) {
  return static_cast<std::uint16_t>(d & 0xFFFF);
}

std::uint8_t descriptor_port(std::uint32_t d) {
  return static_cast<std::uint8_t>((d >> 16) & 0xFF);
}

std::uint8_t descriptor_len_class(std::uint32_t d) {
  return static_cast<std::uint8_t>((d >> 24) & 0xFF);
}

}  // namespace hicsync::netapp
