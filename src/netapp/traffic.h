// Synthetic packet traffic models.
//
// §3.1: "the writes happen when packets arrive from a network and are
// probabilistic in nature." These generators produce arrival processes that
// gate producer threads in the system simulator (the substitution for a
// live Gigabit Ethernet interface — see DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "netapp/packet.h"
#include "support/rng.h"

namespace hicsync::netapp {

/// Arrival process over cycles: next_arrival() yields strictly increasing
/// cycle numbers.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual std::uint64_t next_arrival() = 0;
};

/// Bernoulli/geometric arrivals: each cycle a packet arrives with
/// probability p (the discrete Poisson analogue).
class PoissonArrivals : public ArrivalProcess {
 public:
  PoissonArrivals(double probability_per_cycle, std::uint64_t seed);
  std::uint64_t next_arrival() override;

 private:
  double p_;
  support::Rng rng_;
  std::uint64_t now_ = 0;
};

/// Constant bit rate: one packet every `period` cycles (first at `phase`).
class CbrArrivals : public ArrivalProcess {
 public:
  explicit CbrArrivals(std::uint64_t period, std::uint64_t phase = 0);
  std::uint64_t next_arrival() override;

 private:
  std::uint64_t period_;
  std::uint64_t next_;
};

/// Two-state on/off burst model: during a burst, arrivals are back-to-back
/// every `burst_gap` cycles; bursts of geometric length separated by
/// geometric idle gaps.
class BurstyArrivals : public ArrivalProcess {
 public:
  BurstyArrivals(double burst_start_p, double burst_stop_p,
                 std::uint64_t burst_gap, std::uint64_t seed);
  std::uint64_t next_arrival() override;

 private:
  double start_p_;
  double stop_p_;
  std::uint64_t gap_;
  support::Rng rng_;
  std::uint64_t now_ = 0;
  bool in_burst_ = false;
};

/// Gate function for SystemSim: releases one producer pass per arrival.
/// The returned callable is stateful; each release consumes one arrival.
[[nodiscard]] std::function<bool(std::uint64_t)> arrival_gate(
    std::shared_ptr<ArrivalProcess> process);

/// Deterministic random packet factory (addresses from a pool of /16s).
class PacketFactory {
 public:
  explicit PacketFactory(std::uint64_t seed) : rng_(seed) {}
  [[nodiscard]] Packet make();

 private:
  support::Rng rng_;
  std::uint16_t next_id_ = 1;
};

}  // namespace hicsync::netapp
