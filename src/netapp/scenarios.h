// hic program builders for the paper's experimental scenarios.
//
// §4: "we have mapped three different scenarios based on a simple Internet
// Protocol (IP) packet forwarding application. The three different
// scenarios scale the number of pseudo-ports that get mapped on to the read
// port": one producer, {2,4,8} consumers, a single BRAM.
#pragma once

#include <string>

#include "netapp/lpm.h"
#include "sim/system.h"

namespace hicsync::netapp {

/// The Figure 1 pseudo-example, verbatim semantics.
[[nodiscard]] std::string figure1_source();

/// 1 producer × N consumers on one shared variable — the Table 1/2 sweep.
/// Producer thread `rx` computes a packet descriptor; consumers `cN` each
/// derive a value from it.
[[nodiscard]] std::string fanout_source(int consumers);

/// The two-port IP forwarding application: rx0/rx1 produce descriptors,
/// the forwarding thread consumes both and produces an output descriptor
/// consumed by tx0/tx1.
[[nodiscard]] std::string ip_forwarding_source();

/// Registers extern functions implementing the forwarding behaviour on the
/// C++ packet/LPM models: `parse_pkt`, `classify`, `fwd_desc`, `emit`.
/// `table` must outlive the simulator.
void wire_forwarding_externs(sim::SystemSim& sim, const LpmTable& table,
                             std::uint64_t seed);

}  // namespace hicsync::netapp
