// IPv4 packet model for the paper's application domain.
//
// §4 builds its scenarios from "a simple Internet Protocol (IP) packet
// forwarding application". This is the functional model: header fields,
// the RFC 1071 ones-complement checksum, and the forwarding-relevant
// transformations (TTL decrement + incremental checksum update).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hicsync::netapp {

struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  // header words
  std::uint8_t tos = 0;
  std::uint16_t total_length = 20;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 17;  // UDP
  std::uint16_t checksum = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;

  /// Serializes the 20-byte header (checksum field as stored).
  [[nodiscard]] std::array<std::uint8_t, 20> serialize() const;
  /// Parses 20 bytes; returns false if version/ihl are malformed.
  static bool parse(const std::uint8_t* bytes, Ipv4Header* out);

  /// RFC 1071 checksum of the header with the checksum field zeroed.
  [[nodiscard]] std::uint16_t compute_checksum() const;
  /// True if the stored checksum verifies.
  [[nodiscard]] bool checksum_ok() const;
  /// Fills the checksum field.
  void finalize_checksum() { checksum = compute_checksum(); }

  /// Forwarding transformation: decrement TTL and incrementally update the
  /// checksum (RFC 1624). Returns false if TTL was already 0 (drop).
  bool forward_hop();
};

/// A packet: header + opaque payload bytes.
struct Packet {
  Ipv4Header header;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t wire_length() const {
    return 20 + payload.size();
  }
};

/// Ones-complement sum over 16-bit big-endian words (RFC 1071 core).
[[nodiscard]] std::uint16_t ones_complement_sum(const std::uint8_t* data,
                                                std::size_t len);

/// Compact 32-bit descriptor for passing a packet between hardware threads
/// through the shared memory "tub": what the hic `message` value denotes in
/// our simulations. Encodes {tub slot, input port, length class}.
[[nodiscard]] std::uint32_t make_descriptor(std::uint16_t slot,
                                            std::uint8_t port,
                                            std::uint8_t len_class);
[[nodiscard]] std::uint16_t descriptor_slot(std::uint32_t d);
[[nodiscard]] std::uint8_t descriptor_port(std::uint32_t d);
[[nodiscard]] std::uint8_t descriptor_len_class(std::uint32_t d);

}  // namespace hicsync::netapp
