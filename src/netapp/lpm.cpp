#include "netapp/lpm.h"

#include "support/strings.h"

namespace hicsync::netapp {

void LpmTable::insert(std::uint32_t prefix, int length, int next_hop) {
  if (length < 0) length = 0;
  if (length > 32) length = 32;
  Node* node = &root_;
  for (int bit = 0; bit < length; ++bit) {
    int b = (prefix >> (31 - bit)) & 1;
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (!node->next_hop.has_value()) ++routes_;
  node->next_hop = next_hop;
}

bool LpmTable::insert_cidr(const std::string& cidr, int next_hop) {
  auto slash = cidr.find('/');
  if (slash == std::string::npos) return false;
  auto addr = parse_ipv4(cidr.substr(0, slash));
  if (!addr.has_value()) return false;
  int length = 0;
  try {
    length = std::stoi(cidr.substr(slash + 1));
  } catch (...) {
    return false;
  }
  if (length < 0 || length > 32) return false;
  insert(*addr, length, next_hop);
  return true;
}

std::optional<int> LpmTable::lookup(std::uint32_t addr) const {
  const Node* node = &root_;
  std::optional<int> best = node->next_hop;
  for (int bit = 0; bit < 32 && node != nullptr; ++bit) {
    int b = (addr >> (31 - bit)) & 1;
    node = node->child[b].get();
    if (node != nullptr && node->next_hop.has_value()) {
      best = node->next_hop;
    }
  }
  return best;
}

std::vector<std::uint16_t> LpmTable::flatten(int bits) const {
  std::vector<std::uint16_t> table(static_cast<std::size_t>(1) << bits, 0);
  for (std::size_t i = 0; i < table.size(); ++i) {
    std::uint32_t addr = static_cast<std::uint32_t>(i) << (32 - bits);
    auto hop = lookup(addr);
    table[i] = hop.has_value()
                   ? static_cast<std::uint16_t>(*hop + 1)
                   : 0;
  }
  return table;
}

std::optional<std::uint32_t> parse_ipv4(const std::string& s) {
  auto parts = support::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t addr = 0;
  for (const auto& p : parts) {
    if (p.empty()) return std::nullopt;
    int v = 0;
    try {
      v = std::stoi(p);
    } catch (...) {
      return std::nullopt;
    }
    if (v < 0 || v > 255) return std::nullopt;
    addr = (addr << 8) | static_cast<std::uint32_t>(v);
  }
  return addr;
}

}  // namespace hicsync::netapp
