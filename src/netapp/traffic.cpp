#include "netapp/traffic.h"

namespace hicsync::netapp {

PoissonArrivals::PoissonArrivals(double probability_per_cycle,
                                 std::uint64_t seed)
    : p_(probability_per_cycle), rng_(seed) {}

std::uint64_t PoissonArrivals::next_arrival() {
  now_ += rng_.next_geometric(p_);
  return now_;
}

CbrArrivals::CbrArrivals(std::uint64_t period, std::uint64_t phase)
    : period_(period == 0 ? 1 : period), next_(phase) {}

std::uint64_t CbrArrivals::next_arrival() {
  std::uint64_t at = next_;
  next_ += period_;
  return at;
}

BurstyArrivals::BurstyArrivals(double burst_start_p, double burst_stop_p,
                               std::uint64_t burst_gap, std::uint64_t seed)
    : start_p_(burst_start_p),
      stop_p_(burst_stop_p),
      gap_(burst_gap == 0 ? 1 : burst_gap),
      rng_(seed) {}

std::uint64_t BurstyArrivals::next_arrival() {
  while (true) {
    if (in_burst_) {
      now_ += gap_;
      if (rng_.next_bool(stop_p_)) in_burst_ = false;
      return now_;
    }
    now_ += rng_.next_geometric(start_p_);
    in_burst_ = true;
    return now_;
  }
}

std::function<bool(std::uint64_t)> arrival_gate(
    std::shared_ptr<ArrivalProcess> process) {
  auto next = std::make_shared<std::uint64_t>(process->next_arrival());
  return [process, next](std::uint64_t cycle) {
    if (cycle >= *next) {
      *next = process->next_arrival();
      return true;
    }
    return false;
  };
}

Packet PacketFactory::make() {
  Packet p;
  p.header.identification = next_id_++;
  p.header.ttl = static_cast<std::uint8_t>(rng_.next_range(2, 64));
  // Source/destination drawn from a handful of /16 networks so LPM tables
  // with a few routes classify them meaningfully.
  std::uint32_t src_net = static_cast<std::uint32_t>(
      (10u << 24) | (rng_.next_range(0, 7) << 16));
  std::uint32_t dst_net = static_cast<std::uint32_t>(
      (10u << 24) | (rng_.next_range(0, 7) << 16));
  p.header.src = src_net | static_cast<std::uint32_t>(rng_.next_range(1, 65534));
  p.header.dst = dst_net | static_cast<std::uint32_t>(rng_.next_range(1, 65534));
  std::size_t payload = rng_.next_range(0, 64);
  p.payload.assign(payload, 0);
  for (auto& b : p.payload) {
    b = static_cast<std::uint8_t>(rng_.next_below(256));
  }
  p.header.total_length = static_cast<std::uint16_t>(20 + payload);
  p.header.finalize_checksum();
  return p;
}

}  // namespace hicsync::netapp
