#include "netapp/forwarding_rtl.h"

#include <string>
#include <vector>

#include "rtl/builder.h"

namespace hicsync::netapp {

using rtl::ebin;
using rtl::econst;
using rtl::emux;
using rtl::enot;
using rtl::eref;
using rtl::eslice;
using rtl::RtlExprPtr;
using rtl::RtlOp;

namespace {

using rtl::econcat;

/// Ones-complement 16-bit addition with end-around carry:
/// s = a + b; s = (s & 0xFFFF) + (s >> 16). Built as a 17-bit add whose
/// result is materialized into a wire (referencing it twice must not clone
/// the upstream tree — chained adders would blow up exponentially).
RtlExprPtr oc_add(rtl::Module& m, const std::string& name, RtlExprPtr a,
                  RtlExprPtr b) {
  std::vector<RtlExprPtr> wa;
  wa.push_back(econst(0, 1));
  wa.push_back(std::move(a));
  std::vector<RtlExprPtr> wb;
  wb.push_back(econst(0, 1));
  wb.push_back(std::move(b));
  int sum = m.add_wire(name + "_s17", 17);
  m.assign(sum, ebin(RtlOp::Add, econcat(std::move(wa)),
                     econcat(std::move(wb))));
  RtlExprPtr low = eslice(eref(sum, 17), 15, 0);
  RtlExprPtr carry = eslice(eref(sum, 17), 16, 16);
  std::vector<RtlExprPtr> wc;
  wc.push_back(econst(0, 15));
  wc.push_back(std::move(carry));
  int folded = m.add_wire(name + "_fold", 16);
  m.assign(folded,
           ebin(RtlOp::Add, std::move(low), econcat(std::move(wc))));
  return eref(folded, 16);
}

}  // namespace

rtl::Module& generate_forwarding_core(rtl::Design& design,
                                      const ForwardingCoreConfig& cfg,
                                      const std::string& name) {
  rtl::Module& m = design.add_module(name);
  (void)m.clk();
  (void)m.rst();

  for (int port = 0; port < cfg.ports; ++port) {
    std::string p = "p" + std::to_string(port) + "_";

    // ---- Stage 0: header input (five 32-bit words) + capture. ----
    int in_valid = m.add_input(p + "in_valid", 1);
    std::vector<int> hdr_in(5);
    std::vector<int> hdr_q(5);
    for (int w = 0; w < 5; ++w) {
      hdr_in[static_cast<std::size_t>(w)] =
          m.add_input(p + "hdr" + std::to_string(w), 32);
      hdr_q[static_cast<std::size_t>(w)] =
          m.add_reg(p + "hdr_q" + std::to_string(w), 32);
      m.seq(hdr_q[static_cast<std::size_t>(w)],
            eref(hdr_in[static_cast<std::size_t>(w)], 32),
            eref(in_valid, 1));
    }
    int v_q1 = m.add_reg(p + "valid_q1", 1);
    m.seq(v_q1, eref(in_valid, 1));

    // ---- Stage 1: RFC 1071 verification over the ten halfwords. ----
    std::vector<RtlExprPtr> halves;
    for (int w = 0; w < 5; ++w) {
      halves.push_back(
          eslice(eref(hdr_q[static_cast<std::size_t>(w)], 32), 31, 16));
      halves.push_back(
          eslice(eref(hdr_q[static_cast<std::size_t>(w)], 32), 15, 0));
    }
    RtlExprPtr sum = std::move(halves[0]);
    for (std::size_t i = 1; i < halves.size(); ++i) {
      sum = oc_add(m, p + "ck" + std::to_string(i), std::move(sum),
                   std::move(halves[i]));
    }
    int cksum_ok = m.add_wire(p + "cksum_ok", 1);
    m.assign(cksum_ok,
             ebin(RtlOp::Eq, std::move(sum), econst(0xFFFF, 16)));

    // Pipeline registers into stage 2.
    int dst_q = m.add_reg(p + "dst_q", 32);
    m.seq(dst_q, eref(hdr_q[4], 32), eref(v_q1, 1));
    int ttl_proto_q = m.add_reg(p + "ttl_proto_q", 16);
    m.seq(ttl_proto_q, eslice(eref(hdr_q[2], 32), 31, 16), eref(v_q1, 1));
    int cksum_q = m.add_reg(p + "cksum_q", 16);
    m.seq(cksum_q, eslice(eref(hdr_q[2], 32), 15, 0), eref(v_q1, 1));
    int ok_q = m.add_reg(p + "ok_q", 1);
    m.seq(ok_q, ebin(RtlOp::And, eref(v_q1, 1), eref(cksum_ok, 1)));

    // ---- Stage 2: LPM classification (direct-indexed BRAM table). ----
    rtl::Memory& table = m.add_memory(p + "lpm_table", 16,
                                      1 << cfg.table_bits);
    int hop_q = m.add_reg(p + "hop_q", 16);
    {
      rtl::MemoryPort rd;
      rd.addr = eslice(eref(dst_q, 32), 31, 32 - cfg.table_bits);
      rd.read_data = hop_q;
      table.ports.push_back(std::move(rd));
      // Update port so the control plane can load routes.
      int we = m.add_input(p + "table_we", 1);
      int waddr = m.add_input(p + "table_waddr", cfg.table_bits);
      int wdata = m.add_input(p + "table_wdata", 16);
      rtl::MemoryPort wr;
      wr.addr = eref(waddr, cfg.table_bits);
      wr.write_enable = eref(we, 1);
      wr.write_data = eref(wdata, 16);
      table.ports.push_back(std::move(wr));
    }
    int ok_q2 = m.add_reg(p + "ok_q2", 1);
    m.seq(ok_q2, eref(ok_q, 1));
    int ttl_proto_q2 = m.add_reg(p + "ttl_proto_q2", 16);
    m.seq(ttl_proto_q2, eref(ttl_proto_q, 16));
    int cksum_q2 = m.add_reg(p + "cksum_q2", 16);
    m.seq(cksum_q2, eref(cksum_q, 16));

    // ---- Stage 3: TTL decrement + incremental checksum (RFC 1624). ----
    RtlExprPtr ttl = eslice(eref(ttl_proto_q2, 16), 15, 8);
    RtlExprPtr ttl_nonzero = rtl::ereduce_or(eslice(eref(ttl_proto_q2, 16),
                                                    15, 8));
    RtlExprPtr new_ttl = ebin(RtlOp::Sub, std::move(ttl), econst(1, 8));
    std::vector<RtlExprPtr> new_word_parts;
    new_word_parts.push_back(std::move(new_ttl));
    new_word_parts.push_back(eslice(eref(ttl_proto_q2, 16), 7, 0));
    RtlExprPtr new_word = econcat(std::move(new_word_parts));
    // HC' = ~(~HC + ~m + m')
    RtlExprPtr acc = oc_add(m, p + "upd1", enot(eref(cksum_q2, 16)),
                            enot(eref(ttl_proto_q2, 16)));
    acc = oc_add(m, p + "upd2", std::move(acc), new_word->clone());
    int out_cksum = m.add_output_reg(p + "out_cksum", 16);
    m.seq(out_cksum, enot(std::move(acc)));
    int out_ttl_proto = m.add_output_reg(p + "out_ttl_proto", 16);
    m.seq(out_ttl_proto, std::move(new_word));

    // Egress decision: drop when checksum bad, TTL expired, or no route.
    int out_valid = m.add_output_reg(p + "out_valid", 1);
    RtlExprPtr routed = rtl::ereduce_or(eref(hop_q, 16));
    m.seq(out_valid,
          ebin(RtlOp::And, eref(ok_q2, 1),
               ebin(RtlOp::And, std::move(ttl_nonzero), std::move(routed))));
    int out_port = m.add_output_reg(p + "out_port", 16);
    m.seq(out_port, ebin(RtlOp::Sub, eref(hop_q, 16), econst(1, 16)));

    // ---- Egress FIFO bookkeeping (descriptor queue per port). ----
    rtl::Memory& fifo = m.add_memory(p + "egress_fifo", 32, 64);
    int head = m.add_reg(p + "fifo_head", 6);
    int tail = m.add_reg(p + "fifo_tail", 6);
    int pop = m.add_input(p + "fifo_pop", 1);
    int fifo_out = m.add_output_reg(p + "fifo_dout", 32);
    {
      rtl::MemoryPort wr;
      wr.addr = eref(tail, 6);
      wr.write_enable = eref(out_valid, 1);
      std::vector<RtlExprPtr> desc;
      desc.push_back(eref(out_port, 16));
      desc.push_back(eref(out_cksum, 16));
      wr.write_data = econcat(std::move(desc));
      fifo.ports.push_back(std::move(wr));
      rtl::MemoryPort rd;
      rd.addr = eref(head, 6);
      rd.read_data = fifo_out;
      fifo.ports.push_back(std::move(rd));
    }
    m.seq(tail, ebin(RtlOp::Add, eref(tail, 6), econst(1, 6)),
          eref(out_valid, 1));
    int nonempty = m.add_output(p + "fifo_nonempty", 1);
    m.assign(nonempty,
             ebin(RtlOp::Ne, eref(head, 6), eref(tail, 6)));
    m.seq(head, ebin(RtlOp::Add, eref(head, 6), econst(1, 6)),
          ebin(RtlOp::And, eref(pop, 1), eref(nonempty, 1)));
  }

  return m;
}

}  // namespace hicsync::netapp
