#include "netapp/scenarios.h"

#include <memory>

#include "netapp/packet.h"
#include "netapp/traffic.h"

namespace hicsync::netapp {

std::string figure1_source() {
  return R"(
thread t1 () {
  int x1, xtmp, x2;
  #consumer{mt1, [t2,y1], [t3,z1]}
  x1 = f(xtmp, x2);
}
thread t2 () {
  int y1, y2;
  #producer{mt1, [t1,x1]}
  y1 = g(x1, y2);
}
thread t3 () {
  int z1, z2;
  #producer{mt1, [t1,x1]}
  z1 = h(x1, z2);
}
)";
}

std::string fanout_source(int consumers) {
  std::string src = R"(
#interface{gige0, GigabitEthernet}
thread rx () {
  int desc;
  #consumer{pkt)";
  for (int i = 0; i < consumers; ++i) {
    src += ", [c" + std::to_string(i) + ",v" + std::to_string(i) + "]";
  }
  src += R"(}
  desc = parse_pkt();
}
)";
  for (int i = 0; i < consumers; ++i) {
    std::string n = std::to_string(i);
    src += "thread c" + n + " () {\n  int v" + n +
           ";\n  #producer{pkt, [rx,desc]}\n  v" + n + " = classify(desc, " +
           n + ");\n}\n";
  }
  return src;
}

std::string ip_forwarding_source() {
  return R"(
#interface{gige0, GigabitEthernet}
#interface{gige1, GigabitEthernet}
#constant{host_addr, 0x0A000001}

thread rx0 () {
  int d0;
  #consumer{in0, [fwd,win0]}
  d0 = parse_pkt();
}

thread rx1 () {
  int d1;
  #consumer{in1, [fwd,win1]}
  d1 = parse_pkt();
}

thread fwd () {
  int win0, win1, odesc;
  #producer{in0, [rx0,d0]}
  win0 = classify(d0, 0);
  #producer{in1, [rx1,d1]}
  win1 = classify(d1, 1);
  #consumer{out, [tx0,e0], [tx1,e1]}
  odesc = fwd_desc(win0, win1);
}

thread tx0 () {
  int e0;
  #producer{out, [fwd,odesc]}
  e0 = emit(odesc, 0);
}

thread tx1 () {
  int e1;
  #producer{out, [fwd,odesc]}
  e1 = emit(odesc, 1);
}
)";
}

void wire_forwarding_externs(sim::SystemSim& sim, const LpmTable& table,
                             std::uint64_t seed) {
  auto factory = std::make_shared<PacketFactory>(seed);
  auto tub = std::make_shared<std::vector<Packet>>();

  sim.externs().register_fn(
      "parse_pkt", [factory, tub](const std::vector<std::uint64_t>&) {
        Packet p = factory->make();
        tub->push_back(p);
        auto slot = static_cast<std::uint16_t>(tub->size() - 1);
        return static_cast<std::uint64_t>(make_descriptor(
            slot, 0,
            static_cast<std::uint8_t>(p.wire_length() / 64)));
      });
  sim.externs().register_fn(
      "classify",
      [tub, &table](const std::vector<std::uint64_t>& args) -> std::uint64_t {
        std::uint32_t d = static_cast<std::uint32_t>(args.at(0));
        std::uint16_t slot = descriptor_slot(d);
        if (slot >= tub->size()) return 0;
        const Packet& p = (*tub)[slot];
        auto hop = table.lookup(p.header.dst);
        // Encode {slot, hop} in the classified descriptor.
        return make_descriptor(
            slot, static_cast<std::uint8_t>(hop.value_or(255)), 0);
      });
  sim.externs().register_fn(
      "fwd_desc",
      [tub](const std::vector<std::uint64_t>& args) -> std::uint64_t {
        // Forward whichever input descriptor is non-null; apply the hop
        // transformation to the packet.
        std::uint32_t d = static_cast<std::uint32_t>(
            args.at(0) != 0 ? args.at(0) : args.at(1));
        std::uint16_t slot = descriptor_slot(d);
        if (slot < tub->size()) {
          (*tub)[slot].header.forward_hop();
        }
        return d;
      });
  sim.externs().register_fn(
      "emit", [tub](const std::vector<std::uint64_t>& args) -> std::uint64_t {
        std::uint32_t d = static_cast<std::uint32_t>(args.at(0));
        std::uint64_t port = args.at(1);
        // The emitted value records (slot, egress port) for checking.
        return (static_cast<std::uint64_t>(descriptor_slot(d)) << 8) | port;
      });
}

}  // namespace hicsync::netapp
