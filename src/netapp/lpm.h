// Longest-prefix-match forwarding table (binary trie).
//
// The core of the IP forwarding function the paper's scenarios wrap. Used
// functionally by the simulator (through extern hooks) and as the behaviour
// reference for the generated forwarding-core RTL.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace hicsync::netapp {

class LpmTable {
 public:
  /// Inserts a route: `prefix`/`length` → `next_hop` (output port id).
  /// Longer prefixes win on lookup; re-inserting a prefix overwrites.
  void insert(std::uint32_t prefix, int length, int next_hop);

  /// Convenience for dotted/CIDR text, e.g. "10.1.0.0/16".
  /// Returns false on malformed input.
  bool insert_cidr(const std::string& cidr, int next_hop);

  /// Longest-prefix match; nullopt when no route covers the address.
  [[nodiscard]] std::optional<int> lookup(std::uint32_t addr) const;

  [[nodiscard]] std::size_t size() const { return routes_; }

  /// Flattens to a direct-indexed table of 2^bits entries (what the
  /// generated forwarding core stores in BRAM). Entry value: next_hop + 1,
  /// 0 = no route.
  [[nodiscard]] std::vector<std::uint16_t> flatten(int bits) const;

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::optional<int> next_hop;
  };
  Node root_;
  std::size_t routes_ = 0;
};

/// Parses dotted-quad "a.b.c.d"; returns nullopt on malformed input.
[[nodiscard]] std::optional<std::uint32_t> parse_ipv4(const std::string& s);

}  // namespace hicsync::netapp
