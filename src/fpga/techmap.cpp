#include "fpga/techmap.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "memalloc/bram.h"
#include "support/strings.h"

namespace hicsync::fpga {
namespace {

enum class NodeKind { Const, PI, Gate, Carry };

struct Node {
  NodeKind kind = NodeKind::Gate;
  std::vector<int> fanins;
  int fanout = 0;
  int chain_pos = 0;  // position along a carry chain (Carry only)
};

/// Bit-blasting context for one module.
class Blaster {
 public:
  explicit Blaster(const rtl::Module& m) : m_(m) {
    const0_ = add_node(NodeKind::Const);
    const1_ = add_node(NodeKind::Const);
  }

  void run() {
    // Topologically order continuous assigns (same approach as ModuleSim).
    const auto& assigns = m_.assigns();
    std::map<int, int> driver_of;
    for (std::size_t i = 0; i < assigns.size(); ++i) {
      driver_of[assigns[i].target] = static_cast<int>(i);
    }
    std::vector<int> indegree(assigns.size(), 0);
    std::vector<std::vector<int>> dependents(assigns.size());
    for (std::size_t i = 0; i < assigns.size(); ++i) {
      std::set<int> refs;
      collect_refs(*assigns[i].value, refs);
      for (int r : refs) {
        auto it = driver_of.find(r);
        if (it != driver_of.end()) {
          dependents[static_cast<std::size_t>(it->second)].push_back(
              static_cast<int>(i));
          ++indegree[i];
        }
      }
    }
    std::vector<int> ready;
    for (std::size_t i = 0; i < assigns.size(); ++i) {
      if (indegree[i] == 0) ready.push_back(static_cast<int>(i));
    }
    std::vector<int> order;
    while (!ready.empty()) {
      int i = ready.back();
      ready.pop_back();
      order.push_back(i);
      for (int d : dependents[static_cast<std::size_t>(i)]) {
        if (--indegree[static_cast<std::size_t>(d)] == 0) ready.push_back(d);
      }
    }
    if (order.size() != assigns.size()) {
      throw std::runtime_error("techmap: combinational cycle in " +
                               m_.name());
    }
    for (int i : order) {
      const rtl::ContAssign& a = assigns[static_cast<std::size_t>(i)];
      std::vector<int> bits = blast(*a.value);
      bits.resize(static_cast<std::size_t>(m_.net(a.target).width), const0_);
      net_bits_[a.target] = std::move(bits);
    }
    // Roots: register D inputs and enables, memory port expressions.
    for (const rtl::SeqAssign& s : m_.seqs()) {
      add_roots(blast(*s.value));
      if (s.enable != nullptr) add_roots(blast(*s.enable));
    }
    for (const rtl::Memory& mem : m_.memories()) {
      for (const rtl::MemoryPort& p : mem.ports) {
        add_roots(blast(*p.addr));
        if (p.write_enable != nullptr) add_roots(blast(*p.write_enable));
        if (p.write_data != nullptr) add_roots(blast(*p.write_data));
      }
    }
    // Output port cones are roots too.
    for (const rtl::Port& p : m_.ports()) {
      if (p.dir == rtl::PortDir::Output) add_roots(bits_of_net(p.net));
    }
  }

  /// Greedy LUT4 covering + level computation.
  MapResult cover(const Virtex2ProDevice& device) const {
    MapResult r;
    std::vector<char> absorbed(nodes_.size(), 0);
    std::vector<std::vector<int>> leaves(nodes_.size());
    std::vector<int> level(nodes_.size(), 0);
    std::vector<int> chain_into(nodes_.size(), 0);  // carry bits on path

    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      const Node& n = nodes_[id];
      if (n.kind == NodeKind::Const || n.kind == NodeKind::PI) continue;
      if (n.kind == NodeKind::Carry) {
        int lv = 0;
        int chain = 0;
        for (int f : n.fanins) {
          auto fi = static_cast<std::size_t>(f);
          if (nodes_[fi].kind == NodeKind::Carry) {
            // Along the chain: no extra LUT level, carry bit accumulates.
            lv = std::max(lv, level[fi]);
            chain = std::max(chain, chain_into[fi] + 1);
          } else {
            lv = std::max(lv, level[fi] + 1);
            chain = std::max(chain, 1);
          }
        }
        level[id] = lv;
        chain_into[id] = chain;
        continue;
      }
      // Gate: grow a cone.
      std::vector<int> cone;
      for (int f : n.fanins) {
        if (std::find(cone.begin(), cone.end(), f) == cone.end()) {
          cone.push_back(f);
        }
      }
      bool grew = true;
      while (grew && cone.size() <= 4) {
        grew = false;
        for (std::size_t li = 0; li < cone.size(); ++li) {
          int cand = cone[li];
          auto ci = static_cast<std::size_t>(cand);
          if (nodes_[ci].kind != NodeKind::Gate) continue;
          if (nodes_[ci].fanout != 1) continue;
          // Tentative merge.
          std::vector<int> merged;
          for (std::size_t k = 0; k < cone.size(); ++k) {
            if (k != li) merged.push_back(cone[k]);
          }
          for (int f : leaves[ci]) {
            if (std::find(merged.begin(), merged.end(), f) == merged.end()) {
              merged.push_back(f);
            }
          }
          if (merged.size() <= 4) {
            cone = std::move(merged);
            absorbed[ci] = 1;
            grew = true;
            break;
          }
        }
      }
      leaves[id].assign(cone.begin(), cone.end());
      int lv = 0;
      int chain = 0;
      for (int f : cone) {
        auto fi = static_cast<std::size_t>(f);
        lv = std::max(lv, level[fi] + 1);
        chain = std::max(chain, chain_into[fi]);
      }
      level[id] = lv;
      chain_into[id] = chain;
    }

    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      const Node& n = nodes_[id];
      if (n.kind == NodeKind::Carry) {
        ++r.luts;
        ++r.carry_luts;
      } else if (n.kind == NodeKind::Gate && !absorbed[id]) {
        ++r.luts;
      }
      r.logic_levels = std::max(r.logic_levels, level[id]);
      r.max_carry_bits = std::max(r.max_carry_bits, chain_into[id]);
    }

    r.ffs = m_.flipflop_bits();
    int lut_slices = (r.luts + device.luts_per_slice - 1) /
                     device.luts_per_slice;
    int ff_slices = (r.ffs + device.ffs_per_slice - 1) /
                    device.ffs_per_slice;
    r.slices = std::max(lut_slices, ff_slices);
    for (const rtl::Memory& mem : m_.memories()) {
      r.bram_blocks += memalloc::BramModel::primitives_for(
          mem.width, static_cast<std::int64_t>(mem.depth));
    }
    return r;
  }

 private:
  static void collect_refs(const rtl::RtlExpr& e, std::set<int>& refs) {
    if (e.op == rtl::RtlOp::Ref) refs.insert(e.net);
    for (const auto& a : e.args) collect_refs(*a, refs);
  }

  int add_node(NodeKind kind, std::vector<int> fanins = {}) {
    for (int f : fanins) ++nodes_[static_cast<std::size_t>(f)].fanout;
    Node n;
    n.kind = kind;
    n.fanins = std::move(fanins);
    nodes_.push_back(std::move(n));
    return static_cast<int>(nodes_.size()) - 1;
  }

  void add_roots(const std::vector<int>& bits) {
    for (int b : bits) ++nodes_[static_cast<std::size_t>(b)].fanout;
  }

  const std::vector<int>& bits_of_net(int net) {
    auto it = net_bits_.find(net);
    if (it != net_bits_.end()) return it->second;
    // Not driven combinationally: a primary input, a register output, or a
    // memory read register — PIs for mapping purposes.
    std::vector<int> bits;
    int w = m_.net(net).width;
    for (int i = 0; i < w; ++i) bits.push_back(add_node(NodeKind::PI));
    return net_bits_.emplace(net, std::move(bits)).first->second;
  }

  std::vector<int> extend(std::vector<int> bits, int width) const {
    bits.resize(static_cast<std::size_t>(width), const0_);
    return bits;
  }

  std::vector<int> blast(const rtl::RtlExpr& e) {
    using rtl::RtlOp;
    switch (e.op) {
      case RtlOp::Const: {
        std::vector<int> bits;
        for (int i = 0; i < e.width; ++i) {
          bits.push_back(((e.value >> i) & 1) != 0 ? const1_ : const0_);
        }
        return bits;
      }
      case RtlOp::Ref:
        return bits_of_net(e.net);
      case RtlOp::Slice: {
        std::vector<int> base = blast(*e.args[0]);
        std::vector<int> bits;
        for (int i = e.lo; i <= e.hi; ++i) {
          bits.push_back(i < static_cast<int>(base.size())
                             ? base[static_cast<std::size_t>(i)]
                             : const0_);
        }
        return bits;
      }
      case RtlOp::Concat: {
        // args[0] holds the MSBs.
        std::vector<int> bits;
        for (auto it = e.args.rbegin(); it != e.args.rend(); ++it) {
          std::vector<int> part = blast(**it);
          bits.insert(bits.end(), part.begin(), part.end());
        }
        return bits;
      }
      case RtlOp::Not: {
        std::vector<int> a = extend(blast(*e.args[0]), e.width);
        std::vector<int> bits;
        for (int b : a) {
          if (b == const0_) {
            bits.push_back(const1_);
          } else if (b == const1_) {
            bits.push_back(const0_);
          } else {
            bits.push_back(add_node(NodeKind::Gate, {b}));
          }
        }
        return bits;
      }
      case RtlOp::And:
      case RtlOp::Or:
      case RtlOp::Xor: {
        std::vector<int> a = extend(blast(*e.args[0]), e.width);
        std::vector<int> b = extend(blast(*e.args[1]), e.width);
        std::vector<int> bits;
        for (int i = 0; i < e.width; ++i) {
          auto ai = a[static_cast<std::size_t>(i)];
          auto bi = b[static_cast<std::size_t>(i)];
          // Constant folding keeps controller constants free.
          if (e.op == RtlOp::And && (ai == const0_ || bi == const0_)) {
            bits.push_back(const0_);
          } else if (e.op == RtlOp::And && ai == const1_) {
            bits.push_back(bi);
          } else if (e.op == RtlOp::And && bi == const1_) {
            bits.push_back(ai);
          } else if (e.op == RtlOp::Or && (ai == const1_ || bi == const1_)) {
            bits.push_back(const1_);
          } else if (e.op == RtlOp::Or && ai == const0_) {
            bits.push_back(bi);
          } else if (e.op == RtlOp::Or && bi == const0_) {
            bits.push_back(ai);
          } else {
            bits.push_back(add_node(NodeKind::Gate, {ai, bi}));
          }
        }
        return bits;
      }
      case RtlOp::Add:
      case RtlOp::Sub: {
        std::vector<int> a = extend(blast(*e.args[0]), e.width);
        std::vector<int> b = extend(blast(*e.args[1]), e.width);
        // Carry chain: one Carry node per bit, chained.
        std::vector<int> bits;
        int prev = -1;
        for (int i = 0; i < e.width; ++i) {
          std::vector<int> fanins{a[static_cast<std::size_t>(i)],
                                  b[static_cast<std::size_t>(i)]};
          if (prev >= 0) fanins.push_back(prev);
          int node = add_node(NodeKind::Carry, std::move(fanins));
          bits.push_back(node);
          prev = node;
        }
        return bits;
      }
      case RtlOp::Lt:
      case RtlOp::Le: {
        std::vector<int> a = blast(*e.args[0]);
        std::vector<int> b = blast(*e.args[1]);
        int w = std::max(a.size(), b.size());
        a = extend(std::move(a), static_cast<int>(w));
        b = extend(std::move(b), static_cast<int>(w));
        int prev = -1;
        for (std::size_t i = 0; i < static_cast<std::size_t>(w); ++i) {
          std::vector<int> fanins{a[i], b[i]};
          if (prev >= 0) fanins.push_back(prev);
          prev = add_node(NodeKind::Carry, std::move(fanins));
        }
        return {prev < 0 ? const0_ : prev};
      }
      case RtlOp::Eq:
      case RtlOp::Ne: {
        std::vector<int> a = blast(*e.args[0]);
        std::vector<int> b = blast(*e.args[1]);
        int w = static_cast<int>(std::max(a.size(), b.size()));
        a = extend(std::move(a), w);
        b = extend(std::move(b), w);
        std::vector<int> xs;
        for (int i = 0; i < w; ++i) {
          auto ai = a[static_cast<std::size_t>(i)];
          auto bi = b[static_cast<std::size_t>(i)];
          const bool a_const = ai == const0_ || ai == const1_;
          const bool b_const = bi == const0_ || bi == const1_;
          if (a_const && b_const) {
            xs.push_back(ai == bi ? const1_ : const0_);
          } else if (ai == bi) {
            xs.push_back(const1_);
          } else if (b_const) {
            // Bit equals a constant: pass-through or inversion; the INV is
            // absorbed into the reduce tree by the coverer.
            xs.push_back(bi == const1_ ? ai
                                       : add_node(NodeKind::Gate, {ai}));
          } else if (a_const) {
            xs.push_back(ai == const1_ ? bi
                                       : add_node(NodeKind::Gate, {bi}));
          } else {
            xs.push_back(add_node(NodeKind::Gate, {ai, bi}));  // XNOR
          }
        }
        // AND-reduce the per-bit equalities (constant-true bits drop out).
        std::vector<int> live;
        for (int x : xs) {
          if (x == const1_) continue;
          if (x == const0_) return {e.op == RtlOp::Eq ? const0_ : const1_};
          live.push_back(x);
        }
        int result = reduce_tree(live, const1_);
        if (e.op == RtlOp::Ne) {
          result = (result == const0_)   ? const1_
                   : (result == const1_) ? const0_
                       : add_node(NodeKind::Gate, {result});
        }
        return {result};
      }
      case RtlOp::Shl:
      case RtlOp::Shr: {
        if (e.args[1]->op != RtlOp::Const) {
          throw std::runtime_error(
              "techmap: only constant shift amounts are supported");
        }
        std::vector<int> a = extend(blast(*e.args[0]), e.width);
        int sh = static_cast<int>(e.args[1]->value);
        std::vector<int> bits(static_cast<std::size_t>(e.width), const0_);
        for (int i = 0; i < e.width; ++i) {
          int src = e.op == RtlOp::Shl ? i - sh : i + sh;
          if (src >= 0 && src < e.width) {
            bits[static_cast<std::size_t>(i)] =
                a[static_cast<std::size_t>(src)];
          }
        }
        return bits;
      }
      case RtlOp::Mux: {
        std::vector<int> sel = blast(*e.args[0]);
        std::vector<int> t = extend(blast(*e.args[1]), e.width);
        std::vector<int> f = extend(blast(*e.args[2]), e.width);
        int s = sel.empty() ? const0_ : sel[0];
        std::vector<int> bits;
        for (int i = 0; i < e.width; ++i) {
          auto ti = t[static_cast<std::size_t>(i)];
          auto fi = f[static_cast<std::size_t>(i)];
          if (s == const1_) {
            bits.push_back(ti);
          } else if (s == const0_) {
            bits.push_back(fi);
          } else if (ti == fi) {
            bits.push_back(ti);
          } else if (ti == const1_ && fi == const0_) {
            bits.push_back(s);  // sel ? 1 : 0 == sel
          } else {
            bits.push_back(add_node(NodeKind::Gate, {s, ti, fi}));
          }
        }
        return bits;
      }
      case RtlOp::ReduceOr:
      case RtlOp::ReduceAnd: {
        std::vector<int> a = blast(*e.args[0]);
        std::vector<int> live;
        const bool is_or = e.op == RtlOp::ReduceOr;
        for (int x : a) {
          if (x == (is_or ? const0_ : const1_)) continue;
          if (x == (is_or ? const1_ : const0_)) {
            return {is_or ? const1_ : const0_};
          }
          live.push_back(x);
        }
        return {reduce_tree(live, is_or ? const0_ : const1_)};
      }
    }
    throw std::runtime_error("techmap: unhandled expression op");
  }

  /// Balanced reduction tree over 1-bit nodes; identity when empty.
  int reduce_tree(std::vector<int> xs, int identity) {
    if (xs.empty()) return identity;
    while (xs.size() > 1) {
      std::vector<int> next;
      // Up to 4 inputs fold into one LUT level.
      for (std::size_t i = 0; i < xs.size(); i += 4) {
        std::vector<int> group(
            xs.begin() + static_cast<std::ptrdiff_t>(i),
            xs.begin() + static_cast<std::ptrdiff_t>(
                             std::min(i + 4, xs.size())));
        if (group.size() == 1) {
          next.push_back(group[0]);
        } else {
          next.push_back(add_node(NodeKind::Gate, std::move(group)));
        }
      }
      xs = std::move(next);
    }
    return xs[0];
  }

  const rtl::Module& m_;
  std::vector<Node> nodes_;
  std::map<int, std::vector<int>> net_bits_;
  int const0_ = -1;
  int const1_ = -1;
};

}  // namespace

std::string MapResult::str() const {
  return support::format(
      "LUT %d (carry %d)  FF %d  slices %d  BRAM %d  depth %d levels "
      "(+%d carry bits)",
      luts, carry_luts, ffs, slices, bram_blocks, logic_levels,
      max_carry_bits);
}

MapResult TechMapper::map(const rtl::Module& module) const {
  Blaster blaster(module);
  blaster.run();
  return blaster.cover(device_);
}

}  // namespace hicsync::fpga
