#include "fpga/timing.h"

#include <algorithm>

namespace hicsync::fpga {

TimingResult estimate_timing(const MapResult& map, bool launches_from_bram,
                             const Virtex2ProDevice& device) {
  TimingResult r;
  r.logic_levels = map.logic_levels;
  double launch = launches_from_bram && map.bram_blocks > 0
                      ? device.t_bram_clk_to_dout_ns
                      : device.t_clk_to_q_ns;
  double logic = map.logic_levels * (device.t_lut_ns + device.t_net_ns);
  double carry = map.max_carry_bits * device.t_carry_per_bit_ns;
  double capture = launches_from_bram && map.bram_blocks > 0
                       ? std::max(device.t_setup_ns, device.t_bram_setup_ns)
                       : device.t_setup_ns;
  r.critical_path_ns = launch + logic + carry + capture;
  if (r.critical_path_ns <= 0.0) r.critical_path_ns = device.t_clk_to_q_ns;
  r.fmax_mhz = 1000.0 / r.critical_path_ns;
  return r;
}

}  // namespace hicsync::fpga
