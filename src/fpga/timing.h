// Timing / Fmax estimation from a mapped netlist.
//
// Substitute for the ISE 6.3 post-place-and-route timing report of §4.
// The critical register-to-register path is modelled as:
//   clk→Q  +  levels × (LUT + average net)  +  carry chain  +  setup
// with BRAM clock-to-dout replacing clk→Q on paths that launch from a BRAM
// output register (the controllers' read buses do).
#pragma once

#include "fpga/device.h"
#include "fpga/techmap.h"

namespace hicsync::fpga {

struct TimingResult {
  double critical_path_ns = 0.0;
  double fmax_mhz = 0.0;
  int logic_levels = 0;

  /// True when fmax meets the given clock target.
  [[nodiscard]] bool meets(double target_mhz) const {
    return fmax_mhz >= target_mhz;
  }
};

/// Estimates Fmax for a mapped module. `launches_from_bram` selects the
/// launch element of the critical path (the controllers' read-data paths
/// start at a BRAM output register).
[[nodiscard]] TimingResult estimate_timing(
    const MapResult& map, bool launches_from_bram = true,
    const Virtex2ProDevice& device = xc2vp20());

}  // namespace hicsync::fpga
