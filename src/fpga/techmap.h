// Technology mapping: RTL netlist → LUT4 / FF / slice / depth estimate.
//
// Substitute for the Xilinx ISE 6.3 synthesis+P&R flow of §4 (see
// DESIGN.md): the generated controller modules are bit-blasted into a
// boolean gate DAG, covered into 4-input LUTs with a greedy fanout-1 cone
// heuristic, and packed into Virtex-II Pro slices (2 LUTs + 2 FFs each).
// Adders/subtractors/magnitude comparators map onto dedicated carry chains
// (one LUT per bit, no level growth along the chain), as ISE does.
#pragma once

#include <string>

#include "fpga/device.h"
#include "rtl/netlist.h"

namespace hicsync::fpga {

struct MapResult {
  int luts = 0;        // total LUT4s (including carry-chain LUTs)
  int carry_luts = 0;  // subset on carry chains
  int ffs = 0;         // fabric flip-flops
  int slices = 0;      // packed slices
  int bram_blocks = 0; // 18 Kbit primitives inferred from memories
  int logic_levels = 0;      // LUT levels on the deepest comb path
  int max_carry_bits = 0;    // longest carry chain crossed by that path

  [[nodiscard]] std::string str() const;
};

class TechMapper {
 public:
  explicit TechMapper(const Virtex2ProDevice& device = xc2vp20())
      : device_(device) {}

  /// Maps one module (instances are not elaborated; generators emit flat
  /// modules). Throws std::runtime_error on unsupported constructs
  /// (non-constant shift amounts).
  [[nodiscard]] MapResult map(const rtl::Module& module) const;

 private:
  const Virtex2ProDevice& device_;
};

}  // namespace hicsync::fpga
