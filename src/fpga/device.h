// Virtex-II Pro device model.
//
// The paper targets a Xilinx XC2VP20 with ISE 6.3 SP3. We model the fabric
// quantities that matter for reproducing Tables 1-2: 4-input LUTs and
// flip-flops packed two per slice, dedicated carry chains, 18 Kbit BRAMs,
// and a -6 speed-grade delay set for the timing estimate.
#pragma once

namespace hicsync::fpga {

struct Virtex2ProDevice {
  const char* part = "XC2VP20";
  int slices = 9280;        // logic slices on the XC2VP20
  int luts_per_slice = 2;   // 4-input LUTs
  int ffs_per_slice = 2;
  int bram_blocks = 88;     // 18 Kbit block SelectRAM
  int multipliers = 88;
  int ppc_cores = 2;

  /// Delay set (ns), -6 speed grade, calibrated against the paper's
  /// achieved clock rates (158/130/~125 MHz arbitrated, 177/136/129 MHz
  /// event-driven for 2/4/8 consumers at a 125 MHz target).
  double t_clk_to_q_ns = 0.42;
  double t_lut_ns = 0.44;
  double t_net_ns = 0.78;   // average routed net delay per logic level
  double t_setup_ns = 0.35;
  double t_bram_clk_to_dout_ns = 2.10;  // BRAM output into fabric
  double t_bram_setup_ns = 0.55;        // fabric into BRAM address/data
  double t_carry_per_bit_ns = 0.055;    // dedicated carry chain
};

/// The default device used across benches and reports.
[[nodiscard]] inline const Virtex2ProDevice& xc2vp20() {
  static const Virtex2ProDevice device;
  return device;
}

}  // namespace hicsync::fpga
