#include "hic/printer.h"

namespace hicsync::hic {
namespace {

std::string pad(int indent) {
  return std::string(static_cast<std::size_t>(indent) * 2, ' ');
}

/// Precedence used to decide parenthesization; mirrors the parser table.
int prec(BinaryOp op) {
  switch (op) {
    case BinaryOp::LogOr: return 1;
    case BinaryOp::LogAnd: return 2;
    case BinaryOp::Or: return 3;
    case BinaryOp::Xor: return 4;
    case BinaryOp::And: return 5;
    case BinaryOp::Eq:
    case BinaryOp::Ne: return 6;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: return 7;
    case BinaryOp::Shl:
    case BinaryOp::Shr: return 8;
    case BinaryOp::Add:
    case BinaryOp::Sub: return 9;
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod: return 10;
  }
  return 0;
}

std::string print_expr_prec(const Expr& e, int min_prec) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return std::to_string(e.int_value);
    case ExprKind::CharLit: {
      char c = static_cast<char>(e.int_value);
      switch (c) {
        case '\n': return "'\\n'";
        case '\t': return "'\\t'";
        case '\r': return "'\\r'";
        case '\0': return "'\\0'";
        case '\\': return "'\\\\'";
        case '\'': return "'\\''";
        default: return std::string("'") + c + "'";
      }
    }
    case ExprKind::VarRef:
      return e.name;
    case ExprKind::Index:
      return print_expr_prec(*e.operands[0], 100) + "[" +
             print_expr_prec(*e.operands[1], 0) + "]";
    case ExprKind::Member:
      return print_expr_prec(*e.operands[0], 100) + "." + e.name;
    case ExprKind::Unary:
      return std::string(to_string(e.unary_op)) +
             print_expr_prec(*e.operands[0], 99);
    case ExprKind::Binary: {
      int p = prec(e.binary_op);
      std::string s = print_expr_prec(*e.operands[0], p) + " " +
                      to_string(e.binary_op) + " " +
                      print_expr_prec(*e.operands[1], p + 1);
      if (p < min_prec) return "(" + s + ")";
      return s;
    }
    case ExprKind::Call: {
      std::string s = e.name + "(";
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        if (i != 0) s += ", ";
        s += print_expr_prec(*e.operands[i], 0);
      }
      return s + ")";
    }
  }
  return "<expr>";
}

std::string print_pragma(const Pragma& p) {
  std::string s = "#";
  s += to_string(p.kind);
  s += "{";
  if (p.kind == PragmaKind::Interface || p.kind == PragmaKind::Constant) {
    s += p.name + ", " + p.value;
  } else {
    s += p.dep_id;
    for (const auto& ep : p.endpoints) {
      s += ", [" + ep.thread + "," + ep.var + "]";
    }
  }
  s += "}";
  return s;
}

void print_stmt_into(const Stmt& s, int indent, std::string& out);

void print_list(const std::vector<StmtPtr>& list, int indent,
                std::string& out) {
  for (const auto& s : list) print_stmt_into(*s, indent, out);
}

/// Bodies of if/for/while hold a single statement that is often a Block;
/// since we always print surrounding braces ourselves, flatten it so that
/// print → parse → print is a fixed point.
void print_body(const std::vector<StmtPtr>& list, int indent,
                std::string& out) {
  if (list.size() == 1 && list[0]->kind == StmtKind::Block &&
      list[0]->pragmas.empty()) {
    print_list(list[0]->body, indent, out);
    return;
  }
  print_list(list, indent, out);
}

void print_stmt_into(const Stmt& s, int indent, std::string& out) {
  for (const auto& p : s.pragmas) {
    out += pad(indent) + print_pragma(p) + "\n";
  }
  switch (s.kind) {
    case StmtKind::Assign:
      out += pad(indent) + print_expr(*s.target) + " = " +
             print_expr(*s.value) + ";\n";
      break;
    case StmtKind::If:
      out += pad(indent) + "if (" + print_expr(*s.cond) + ") {\n";
      print_body(s.then_body, indent + 1, out);
      if (!s.else_body.empty()) {
        out += pad(indent) + "} else {\n";
        print_body(s.else_body, indent + 1, out);
      }
      out += pad(indent) + "}\n";
      break;
    case StmtKind::Case:
      out += pad(indent) + "case (" + print_expr(*s.cond) + ") {\n";
      for (const auto& arm : s.arms) {
        out += pad(indent + 1) +
               (arm.is_default ? std::string("default")
                               : "when " + std::to_string(arm.value)) +
               ":\n";
        print_list(arm.body, indent + 2, out);
      }
      out += pad(indent) + "}\n";
      break;
    case StmtKind::For: {
      std::string init = print_expr(*s.init->target) + " = " +
                         print_expr(*s.init->value);
      std::string step = print_expr(*s.step->target) + " = " +
                         print_expr(*s.step->value);
      out += pad(indent) + "for (" + init + "; " + print_expr(*s.cond) +
             "; " + step + ") {\n";
      print_body(s.body, indent + 1, out);
      out += pad(indent) + "}\n";
      break;
    }
    case StmtKind::While:
      out += pad(indent) + "while (" + print_expr(*s.cond) + ") {\n";
      print_body(s.body, indent + 1, out);
      out += pad(indent) + "}\n";
      break;
    case StmtKind::Break:
      out += pad(indent) + "break;\n";
      break;
    case StmtKind::Continue:
      out += pad(indent) + "continue;\n";
      break;
    case StmtKind::Block:
      out += pad(indent) + "{\n";
      print_list(s.body, indent + 1, out);
      out += pad(indent) + "}\n";
      break;
  }
}

std::string print_typespec(const VarDecl& d) {
  if (d.type_name == "bits") {
    return "bits<" + std::to_string(d.bits_width) + ">";
  }
  return d.type_name;
}

}  // namespace

std::string print_expr(const Expr& expr) { return print_expr_prec(expr, 0); }

std::string print_stmt(const Stmt& stmt, int indent) {
  std::string out;
  print_stmt_into(stmt, indent, out);
  return out;
}

std::string print_thread(const ThreadDecl& thread) {
  std::string out = "thread " + thread.name + " () {\n";
  for (const auto& d : thread.decls) {
    out += pad(1) + print_typespec(d) + " " + d.name;
    if (d.array_size != 0) {
      out += "[" + std::to_string(d.array_size) + "]";
    }
    out += ";\n";
  }
  for (const auto& s : thread.body) print_stmt_into(*s, 1, out);
  out += "}\n";
  return out;
}

std::string print_program(const Program& program) {
  std::string out;
  for (const auto& p : program.interfaces) {
    out += "#interface{" + p.name + ", " + p.value + "}\n";
  }
  for (const auto& p : program.constants) {
    out += "#constant{" + p.name + ", " + p.value + "}\n";
  }
  for (const auto& td : program.typedefs) {
    if (td.is_union) {
      out += "union " + td.name + " {\n";
      for (const auto& m : td.members) {
        std::string tn = m.type_name == "bits"
                             ? "bits<" + std::to_string(m.bits_width) + ">"
                             : m.type_name;
        out += pad(1) + tn + " " + m.name + ";\n";
      }
      out += "}\n";
    } else if (td.bits_width > 0) {
      out += "type " + td.name + " = bits<" + std::to_string(td.bits_width) +
             ">;\n";
    } else if (!td.members.empty()) {
      out += "type " + td.name + " = " + td.members[0].type_name + ";\n";
    }
  }
  for (const auto& t : program.threads) {
    out += print_thread(t);
  }
  return out;
}

}  // namespace hicsync::hic
