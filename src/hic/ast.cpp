#include "hic/ast.h"

namespace hicsync::hic {

const char* to_string(PragmaKind k) {
  switch (k) {
    case PragmaKind::Interface: return "interface";
    case PragmaKind::Constant: return "constant";
    case PragmaKind::Producer: return "producer";
    case PragmaKind::Consumer: return "consumer";
  }
  return "unknown";
}

const char* to_string(UnaryOp op) {
  switch (op) {
    case UnaryOp::Neg: return "-";
    case UnaryOp::Not: return "!";
    case UnaryOp::BitNot: return "~";
  }
  return "?";
}

const char* to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::And: return "&";
    case BinaryOp::Or: return "|";
    case BinaryOp::Xor: return "^";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::LogAnd: return "&&";
    case BinaryOp::LogOr: return "||";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
  }
  return "?";
}

ExprPtr Expr::make_int(std::uint64_t v, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::IntLit;
  e->int_value = v;
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_char(std::uint64_t v, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::CharLit;
  e->int_value = v;
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_var(std::string name, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::VarRef;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_unary(UnaryOp op, ExprPtr operand,
                         support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->unary_op = op;
  e->operands.push_back(std::move(operand));
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                          support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->binary_op = op;
  e->operands.push_back(std::move(lhs));
  e->operands.push_back(std::move(rhs));
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_call(std::string callee, std::vector<ExprPtr> args,
                        support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Call;
  e->name = std::move(callee);
  e->operands = std::move(args);
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_index(ExprPtr base, ExprPtr idx, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Index;
  e->operands.push_back(std::move(base));
  e->operands.push_back(std::move(idx));
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_member(ExprPtr base, std::string member,
                          support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Member;
  e->name = std::move(member);
  e->operands.push_back(std::move(base));
  e->loc = loc;
  return e;
}

const ThreadDecl* Program::find_thread(const std::string& name) const {
  for (const auto& t : threads) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace hicsync::hic
