// Symbols: declared variables inside hic threads.
#pragma once

#include <cstdint>
#include <string>

#include "hic/type.h"
#include "support/source_location.h"

namespace hicsync::hic {

/// One declared variable. Symbols are created and owned by Sema; AST nodes
/// and later stages reference them by pointer. A symbol involved in an
/// inter-thread dependency is `shared` — the memory allocator must place it
/// in a BRAM reachable by every participating thread.
class Symbol {
 public:
  Symbol(std::string name, std::string thread, const Type* type,
         std::uint64_t array_size, support::SourceLoc loc, int id)
      : name_(std::move(name)),
        thread_(std::move(thread)),
        type_(type),
        array_size_(array_size),
        loc_(loc),
        id_(id) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& thread() const { return thread_; }
  [[nodiscard]] const Type* type() const { return type_; }
  [[nodiscard]] bool is_array() const { return array_size_ != 0; }
  /// Number of elements (1 for scalars).
  [[nodiscard]] std::uint64_t element_count() const {
    return array_size_ == 0 ? 1 : array_size_;
  }
  [[nodiscard]] support::SourceLoc loc() const { return loc_; }
  [[nodiscard]] int id() const { return id_; }

  /// "thread.name" for messages and map keys.
  [[nodiscard]] std::string qualified_name() const {
    return thread_ + "." + name_;
  }

  /// Total storage in bits.
  [[nodiscard]] std::uint64_t storage_bits() const {
    return element_count() * static_cast<std::uint64_t>(type_->bit_width());
  }

  [[nodiscard]] bool is_shared() const { return shared_; }
  void mark_shared() { shared_ = true; }

 private:
  std::string name_;
  std::string thread_;
  const Type* type_;
  std::uint64_t array_size_;
  support::SourceLoc loc_;
  int id_;
  bool shared_ = false;
};

}  // namespace hicsync::hic
