// Hand-written lexer for hic.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "hic/token.h"
#include "support/diagnostics.h"

namespace hicsync::hic {

/// Tokenizes a hic source buffer. Comments: `//` to end of line and
/// `/* ... */` (non-nesting). Integer literals: decimal, 0x hex, 0b binary,
/// with optional `'` digit separators. Char literals: 'a', '\n', '\\', '\0'.
class Lexer {
 public:
  Lexer(std::string_view source, support::DiagnosticEngine& diags);

  /// Lex the whole buffer; always ends with an EndOfFile token.
  [[nodiscard]] std::vector<Token> lex_all();

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] support::SourceLoc here() const;

  void skip_trivia();
  Token lex_token();
  Token lex_identifier_or_keyword();
  Token lex_number();
  Token lex_char_literal();

  std::string_view source_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace hicsync::hic
