#include "hic/parser.h"

#include "hic/lexer.h"

namespace hicsync::hic {
namespace {

/// Binary operator precedence; higher binds tighter. Returns -1 for tokens
/// that are not binary operators.
int binary_precedence(TokenKind k) {
  switch (k) {
    case TokenKind::PipePipe: return 1;
    case TokenKind::AmpAmp: return 2;
    case TokenKind::Pipe: return 3;
    case TokenKind::Caret: return 4;
    case TokenKind::Amp: return 5;
    case TokenKind::EqEq:
    case TokenKind::NotEq: return 6;
    case TokenKind::Less:
    case TokenKind::LessEq:
    case TokenKind::Greater:
    case TokenKind::GreaterEq: return 7;
    case TokenKind::Shl:
    case TokenKind::Shr: return 8;
    case TokenKind::Plus:
    case TokenKind::Minus: return 9;
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: return 10;
    default: return -1;
  }
}

BinaryOp to_binary_op(TokenKind k) {
  switch (k) {
    case TokenKind::PipePipe: return BinaryOp::LogOr;
    case TokenKind::AmpAmp: return BinaryOp::LogAnd;
    case TokenKind::Pipe: return BinaryOp::Or;
    case TokenKind::Caret: return BinaryOp::Xor;
    case TokenKind::Amp: return BinaryOp::And;
    case TokenKind::EqEq: return BinaryOp::Eq;
    case TokenKind::NotEq: return BinaryOp::Ne;
    case TokenKind::Less: return BinaryOp::Lt;
    case TokenKind::LessEq: return BinaryOp::Le;
    case TokenKind::Greater: return BinaryOp::Gt;
    case TokenKind::GreaterEq: return BinaryOp::Ge;
    case TokenKind::Shl: return BinaryOp::Shl;
    case TokenKind::Shr: return BinaryOp::Shr;
    case TokenKind::Plus: return BinaryOp::Add;
    case TokenKind::Minus: return BinaryOp::Sub;
    case TokenKind::Star: return BinaryOp::Mul;
    case TokenKind::Slash: return BinaryOp::Div;
    case TokenKind::Percent: return BinaryOp::Mod;
    default: return BinaryOp::Add;  // unreachable given binary_precedence
  }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, support::DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
  if (tokens_.empty()) {
    tokens_.push_back(Token{TokenKind::EndOfFile, "", 0, {}});
  }
}

const Token& Parser::peek(std::size_t ahead) const {
  std::size_t i = pos_ + ahead;
  if (i >= tokens_.size()) return tokens_.back();
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept(TokenKind k) {
  if (at(k)) {
    advance();
    return true;
  }
  return false;
}

const Token& Parser::expect(TokenKind k, const char* context) {
  if (at(k)) return advance();
  diags_.error(peek().loc, std::string("expected ") + to_string(k) +
                               " in " + context + ", found " + peek().str());
  throw support::CompileError(peek().loc, "parse error");
}

bool Parser::at_typespec() const {
  switch (peek().kind) {
    case TokenKind::KwInt:
    case TokenKind::KwChar:
    case TokenKind::KwMessage:
    case TokenKind::KwBits:
      return true;
    case TokenKind::Identifier:
      // `IDENT IDENT` at statement level can only be a declaration with a
      // user-defined type (assignments start with `IDENT =`/`[`/`.`).
      return peek(1).kind == TokenKind::Identifier;
    default:
      return false;
  }
}

Program Parser::parse_program() {
  Program program;
  while (!at(TokenKind::EndOfFile)) {
    try {
      if (at(TokenKind::Hash)) {
        Pragma p = parse_pragma();
        switch (p.kind) {
          case PragmaKind::Interface:
            program.interfaces.push_back(std::move(p));
            break;
          case PragmaKind::Constant:
            program.constants.push_back(std::move(p));
            break;
          default:
            diags_.error(p.loc,
                         "producer/consumer pragmas must appear inside a "
                         "thread, before the statement they annotate");
        }
      } else if (at(TokenKind::KwType)) {
        program.typedefs.push_back(parse_typedef());
      } else if (at(TokenKind::KwUnion)) {
        program.typedefs.push_back(parse_union());
      } else if (at(TokenKind::KwThread)) {
        program.threads.push_back(parse_thread());
      } else {
        diags_.error(peek().loc,
                     "expected 'thread', 'type', 'union', or a pragma at top "
                     "level, found " +
                         peek().str());
        advance();
      }
    } catch (const support::CompileError&) {
      // Recover: skip to the next plausible top-level start.
      while (!at(TokenKind::EndOfFile) && !at(TokenKind::KwThread) &&
             !at(TokenKind::KwType) && !at(TokenKind::KwUnion) &&
             !at(TokenKind::Hash)) {
        advance();
      }
    }
  }
  return program;
}

Pragma Parser::parse_pragma() {
  Pragma p;
  p.loc = expect(TokenKind::Hash, "pragma").loc;
  const Token& name = expect(TokenKind::Identifier, "pragma");
  if (name.text == "interface") {
    p.kind = PragmaKind::Interface;
  } else if (name.text == "constant") {
    p.kind = PragmaKind::Constant;
  } else if (name.text == "producer") {
    p.kind = PragmaKind::Producer;
  } else if (name.text == "consumer") {
    p.kind = PragmaKind::Consumer;
  } else {
    diags_.error(name.loc, "unknown pragma '#" + name.text + "'");
    throw support::CompileError(name.loc, "parse error");
  }
  expect(TokenKind::LBrace, "pragma");

  if (p.kind == PragmaKind::Interface || p.kind == PragmaKind::Constant) {
    p.name = expect(TokenKind::Identifier, "pragma").text;
    expect(TokenKind::Comma, "pragma");
    // Value may be an identifier (interface kind) or a literal (constant).
    const Token& v = peek();
    if (v.is(TokenKind::Identifier)) {
      p.value = advance().text;
    } else if (v.is(TokenKind::IntLiteral) || v.is(TokenKind::CharLiteral)) {
      const Token& lit = advance();
      p.value = lit.text;
      p.int_value = lit.int_value;
    } else {
      diags_.error(v.loc, "expected pragma value");
      throw support::CompileError(v.loc, "parse error");
    }
  } else {
    // #producer{id, [thread,var]} / #consumer{id, [t,v], [t,v], ...}
    p.dep_id = expect(TokenKind::Identifier, "dependency pragma").text;
    while (accept(TokenKind::Comma)) {
      DepEndpoint ep;
      ep.loc = expect(TokenKind::LBracket, "dependency endpoint").loc;
      ep.thread = expect(TokenKind::Identifier, "dependency endpoint").text;
      expect(TokenKind::Comma, "dependency endpoint");
      ep.var = expect(TokenKind::Identifier, "dependency endpoint").text;
      expect(TokenKind::RBracket, "dependency endpoint");
      p.endpoints.push_back(std::move(ep));
    }
    if (p.endpoints.empty()) {
      diags_.error(p.loc, "dependency pragma needs at least one [thread,var] "
                          "endpoint");
    }
    if (p.kind == PragmaKind::Producer && p.endpoints.size() != 1) {
      diags_.error(p.loc,
                   "#producer names exactly one producing [thread,var]");
    }
  }
  expect(TokenKind::RBrace, "pragma");
  return p;
}

void Parser::parse_typespec(std::string& type_name, int& bits_width) {
  bits_width = 0;
  const Token& t = peek();
  switch (t.kind) {
    case TokenKind::KwInt:
      type_name = "int";
      advance();
      return;
    case TokenKind::KwChar:
      type_name = "char";
      advance();
      return;
    case TokenKind::KwMessage:
      type_name = "message";
      advance();
      return;
    case TokenKind::KwBits: {
      advance();
      expect(TokenKind::Less, "bits type");
      const Token& w = expect(TokenKind::IntLiteral, "bits type");
      if (w.int_value == 0 || w.int_value > 4096) {
        diags_.error(w.loc, "bits<N> width must be in [1, 4096]");
      }
      bits_width = static_cast<int>(w.int_value);
      type_name = "bits";
      expect(TokenKind::Greater, "bits type");
      return;
    }
    case TokenKind::Identifier:
      type_name = advance().text;
      return;
    default:
      diags_.error(t.loc, "expected a type, found " + t.str());
      throw support::CompileError(t.loc, "parse error");
  }
}

TypeDef Parser::parse_typedef() {
  TypeDef td;
  td.loc = expect(TokenKind::KwType, "type definition").loc;
  td.name = expect(TokenKind::Identifier, "type definition").text;
  expect(TokenKind::Assign, "type definition");
  std::string base;
  parse_typespec(base, td.bits_width);
  if (base != "bits") {
    // Alias of a named type: store name in members[0] for Sema to resolve.
    TypeDef::Member m;
    m.type_name = base;
    td.members.push_back(std::move(m));
  }
  expect(TokenKind::Semicolon, "type definition");
  return td;
}

TypeDef Parser::parse_union() {
  TypeDef td;
  td.is_union = true;
  td.loc = expect(TokenKind::KwUnion, "union").loc;
  td.name = expect(TokenKind::Identifier, "union").text;
  expect(TokenKind::LBrace, "union");
  while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile)) {
    TypeDef::Member m;
    parse_typespec(m.type_name, m.bits_width);
    m.name = expect(TokenKind::Identifier, "union member").text;
    expect(TokenKind::Semicolon, "union member");
    td.members.push_back(std::move(m));
  }
  expect(TokenKind::RBrace, "union");
  accept(TokenKind::Semicolon);
  if (td.members.empty()) diags_.error(td.loc, "union has no members");
  return td;
}

ThreadDecl Parser::parse_thread() {
  ThreadDecl thread;
  thread.loc = expect(TokenKind::KwThread, "thread").loc;
  thread.name = expect(TokenKind::Identifier, "thread").text;
  expect(TokenKind::LParen, "thread");
  expect(TokenKind::RParen, "thread");
  expect(TokenKind::LBrace, "thread");
  while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile)) {
    if (at_typespec()) {
      parse_decl(thread);
    } else {
      thread.body.push_back(parse_stmt());
    }
  }
  expect(TokenKind::RBrace, "thread");
  return thread;
}

VarDecl Parser::parse_one_declarator(const std::string& type_name,
                                     int bits_width) {
  VarDecl d;
  d.type_name = type_name;
  d.bits_width = bits_width;
  const Token& n = expect(TokenKind::Identifier, "declaration");
  d.name = n.text;
  d.loc = n.loc;
  if (accept(TokenKind::LBracket)) {
    const Token& sz = expect(TokenKind::IntLiteral, "array declaration");
    if (sz.int_value == 0) {
      diags_.error(sz.loc, "array size must be positive");
    }
    d.array_size = sz.int_value;
    expect(TokenKind::RBracket, "array declaration");
  }
  return d;
}

void Parser::parse_decl(ThreadDecl& thread) {
  std::string type_name;
  int bits_width = 0;
  parse_typespec(type_name, bits_width);
  thread.decls.push_back(parse_one_declarator(type_name, bits_width));
  while (accept(TokenKind::Comma)) {
    thread.decls.push_back(parse_one_declarator(type_name, bits_width));
  }
  expect(TokenKind::Semicolon, "declaration");
}

StmtPtr Parser::parse_stmt() {
  std::vector<Pragma> pragmas;
  while (at(TokenKind::Hash)) {
    Pragma p = parse_pragma();
    if (p.kind != PragmaKind::Producer && p.kind != PragmaKind::Consumer) {
      diags_.error(p.loc, "only #producer/#consumer pragmas may annotate a "
                          "statement");
      continue;
    }
    pragmas.push_back(std::move(p));
  }
  StmtPtr s = parse_core_stmt();
  s->pragmas = std::move(pragmas);
  return s;
}

StmtPtr Parser::parse_core_stmt() {
  switch (peek().kind) {
    case TokenKind::KwIf: return parse_if();
    case TokenKind::KwCase: return parse_case();
    case TokenKind::KwFor: return parse_for();
    case TokenKind::KwWhile: return parse_while();
    case TokenKind::LBrace: return parse_block();
    case TokenKind::KwBreak: {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::Break;
      s->loc = advance().loc;
      expect(TokenKind::Semicolon, "break statement");
      return s;
    }
    case TokenKind::KwContinue: {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::Continue;
      s->loc = advance().loc;
      expect(TokenKind::Semicolon, "continue statement");
      return s;
    }
    case TokenKind::Identifier:
      return parse_assign(/*expect_semicolon=*/true);
    default:
      diags_.error(peek().loc, "expected a statement, found " + peek().str());
      throw support::CompileError(peek().loc, "parse error");
  }
}

StmtPtr Parser::parse_assign(bool expect_semicolon) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Assign;
  const Token& name = expect(TokenKind::Identifier, "assignment");
  s->loc = name.loc;
  ExprPtr lhs = Expr::make_var(name.text, name.loc);
  // lvalue suffixes: [expr] and .member
  while (true) {
    if (at(TokenKind::LBracket)) {
      support::SourceLoc loc = advance().loc;
      ExprPtr idx = parse_expr();
      expect(TokenKind::RBracket, "index expression");
      lhs = Expr::make_index(std::move(lhs), std::move(idx), loc);
    } else if (at(TokenKind::Dot)) {
      support::SourceLoc loc = advance().loc;
      const Token& member = expect(TokenKind::Identifier, "member access");
      lhs = Expr::make_member(std::move(lhs), member.text, loc);
    } else {
      break;
    }
  }
  s->target = std::move(lhs);
  expect(TokenKind::Assign, "assignment");
  s->value = parse_expr();
  if (expect_semicolon) expect(TokenKind::Semicolon, "assignment");
  return s;
}

StmtPtr Parser::parse_if() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::If;
  s->loc = expect(TokenKind::KwIf, "if statement").loc;
  expect(TokenKind::LParen, "if statement");
  s->cond = parse_expr();
  expect(TokenKind::RParen, "if statement");
  s->then_body.push_back(parse_stmt());
  if (accept(TokenKind::KwElse)) {
    s->else_body.push_back(parse_stmt());
  }
  return s;
}

StmtPtr Parser::parse_case() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Case;
  s->loc = expect(TokenKind::KwCase, "case statement").loc;
  expect(TokenKind::LParen, "case statement");
  s->cond = parse_expr();
  expect(TokenKind::RParen, "case statement");
  expect(TokenKind::LBrace, "case statement");
  bool seen_default = false;
  while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile)) {
    CaseArm arm;
    if (at(TokenKind::KwWhen)) {
      arm.loc = advance().loc;
      const Token& v = expect(TokenKind::IntLiteral, "case arm");
      arm.value = v.int_value;
    } else if (at(TokenKind::KwDefault)) {
      arm.loc = advance().loc;
      arm.is_default = true;
      if (seen_default) diags_.error(arm.loc, "duplicate default arm");
      seen_default = true;
    } else {
      diags_.error(peek().loc,
                   "expected 'when' or 'default' in case statement");
      throw support::CompileError(peek().loc, "parse error");
    }
    expect(TokenKind::Colon, "case arm");
    while (!at(TokenKind::KwWhen) && !at(TokenKind::KwDefault) &&
           !at(TokenKind::RBrace) && !at(TokenKind::EndOfFile)) {
      arm.body.push_back(parse_stmt());
    }
    // Duplicate 'when' values are checked by Sema, which sees all arms.
    s->arms.push_back(std::move(arm));
  }
  expect(TokenKind::RBrace, "case statement");
  if (s->arms.empty()) diags_.error(s->loc, "case statement has no arms");
  return s;
}

StmtPtr Parser::parse_for() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::For;
  s->loc = expect(TokenKind::KwFor, "for loop").loc;
  expect(TokenKind::LParen, "for loop");
  s->init = parse_assign(/*expect_semicolon=*/true);
  s->cond = parse_expr();
  expect(TokenKind::Semicolon, "for loop");
  s->step = parse_assign(/*expect_semicolon=*/false);
  expect(TokenKind::RParen, "for loop");
  s->body.push_back(parse_stmt());
  return s;
}

StmtPtr Parser::parse_while() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::While;
  s->loc = expect(TokenKind::KwWhile, "while loop").loc;
  expect(TokenKind::LParen, "while loop");
  s->cond = parse_expr();
  expect(TokenKind::RParen, "while loop");
  s->body.push_back(parse_stmt());
  return s;
}

StmtPtr Parser::parse_block() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Block;
  s->loc = expect(TokenKind::LBrace, "block").loc;
  while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile)) {
    s->body.push_back(parse_stmt());
  }
  expect(TokenKind::RBrace, "block");
  return s;
}

ExprPtr Parser::parse_expr() { return parse_binary_rhs(0, parse_unary()); }

ExprPtr Parser::parse_binary_rhs(int min_prec, ExprPtr lhs) {
  while (true) {
    int prec = binary_precedence(peek().kind);
    if (prec < min_prec || prec < 0) return lhs;
    const Token& op = advance();
    ExprPtr rhs = parse_unary();
    // Left associativity: bind tighter operators on the right first.
    while (binary_precedence(peek().kind) > prec) {
      rhs = parse_binary_rhs(prec + 1, std::move(rhs));
    }
    lhs = Expr::make_binary(to_binary_op(op.kind), std::move(lhs),
                            std::move(rhs), op.loc);
  }
}

ExprPtr Parser::parse_unary() {
  switch (peek().kind) {
    case TokenKind::Minus: {
      support::SourceLoc loc = advance().loc;
      return Expr::make_unary(UnaryOp::Neg, parse_unary(), loc);
    }
    case TokenKind::Bang: {
      support::SourceLoc loc = advance().loc;
      return Expr::make_unary(UnaryOp::Not, parse_unary(), loc);
    }
    case TokenKind::Tilde: {
      support::SourceLoc loc = advance().loc;
      return Expr::make_unary(UnaryOp::BitNot, parse_unary(), loc);
    }
    default:
      return parse_postfix(parse_primary());
  }
}

ExprPtr Parser::parse_postfix(ExprPtr base) {
  while (true) {
    if (at(TokenKind::LBracket)) {
      support::SourceLoc loc = advance().loc;
      ExprPtr idx = parse_expr();
      expect(TokenKind::RBracket, "index expression");
      base = Expr::make_index(std::move(base), std::move(idx), loc);
    } else if (at(TokenKind::Dot)) {
      support::SourceLoc loc = advance().loc;
      const Token& member = expect(TokenKind::Identifier, "member access");
      base = Expr::make_member(std::move(base), member.text, loc);
    } else {
      return base;
    }
  }
}

ExprPtr Parser::parse_primary() {
  const Token& t = peek();
  switch (t.kind) {
    case TokenKind::IntLiteral: {
      advance();
      return Expr::make_int(t.int_value, t.loc);
    }
    case TokenKind::CharLiteral: {
      advance();
      return Expr::make_char(t.int_value, t.loc);
    }
    case TokenKind::LParen: {
      advance();
      ExprPtr e = parse_expr();
      expect(TokenKind::RParen, "parenthesized expression");
      return e;
    }
    case TokenKind::Identifier: {
      advance();
      if (at(TokenKind::LParen)) {
        advance();
        std::vector<ExprPtr> args;
        if (!at(TokenKind::RParen)) {
          args.push_back(parse_expr());
          while (accept(TokenKind::Comma)) args.push_back(parse_expr());
        }
        expect(TokenKind::RParen, "call expression");
        return Expr::make_call(t.text, std::move(args), t.loc);
      }
      return Expr::make_var(t.text, t.loc);
    }
    default:
      diags_.error(t.loc, "expected an expression, found " + t.str());
      throw support::CompileError(t.loc, "parse error");
  }
}

Program parse_source(std::string_view source,
                     support::DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.lex_all(), diags);
  return parser.parse_program();
}

}  // namespace hicsync::hic
