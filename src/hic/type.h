// hic type system.
//
// §2 of the paper: supported variable types are integer, character, and
// user-defined types (fixed bit width, or a union of existing types), plus
// the pre-defined `message` type that represents a packet/cell in the
// logical global shared memory ("tub of packets").
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace hicsync::hic {

enum class TypeKind {
  Int,      // 32-bit integer
  Char,     // 8-bit character
  Bits,     // user-defined fixed bit width, bits<N>
  Union,    // union of existing types; width = max member width
  Message,  // pre-defined network message handle
  Error,    // produced after a diagnosed type error
};

/// Immutable type descriptor. Types are interned by Sema; identity
/// comparison of names is used where structural equality is needed.
class Type {
 public:
  struct UnionMember {
    std::string name;
    const Type* type;
  };

  static const Type* int_type();
  static const Type* char_type();
  static const Type* message_type();
  static const Type* error_type();

  /// Creates an owned bits<N> type (caller keeps it alive, usually Sema).
  static std::unique_ptr<Type> make_bits(int width, std::string name = "");
  static std::unique_ptr<Type> make_union(std::string name,
                                          std::vector<UnionMember> members);

  [[nodiscard]] TypeKind kind() const { return kind_; }
  /// Bit width occupied by one value of this type in a BRAM word.
  [[nodiscard]] int bit_width() const { return bit_width_; }
  /// Display name ("int", "char", "bits<12>", or the user typedef name).
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<UnionMember>& members() const {
    return members_;
  }
  /// Looks up a union member by name; nullptr if not a union / not present.
  [[nodiscard]] const UnionMember* find_member(const std::string& n) const;

  [[nodiscard]] bool is_error() const { return kind_ == TypeKind::Error; }

 private:
  Type(TypeKind kind, int bit_width, std::string name)
      : kind_(kind), bit_width_(bit_width), name_(std::move(name)) {}

  TypeKind kind_;
  int bit_width_;
  std::string name_;
  std::vector<UnionMember> members_;
};

/// Default widths used by the builtin types. `message` is a handle into the
/// packet tub: a word-sized reference (the payload lives in the shared
/// memory the paper calls the "tub of packets").
inline constexpr int kIntWidth = 32;
inline constexpr int kCharWidth = 8;
inline constexpr int kMessageWidth = 32;

}  // namespace hicsync::hic
