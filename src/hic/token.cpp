#include "hic/token.h"

namespace hicsync::hic {

const char* to_string(TokenKind k) {
  switch (k) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::CharLiteral: return "character literal";
    case TokenKind::KwThread: return "'thread'";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwChar: return "'char'";
    case TokenKind::KwMessage: return "'message'";
    case TokenKind::KwBits: return "'bits'";
    case TokenKind::KwType: return "'type'";
    case TokenKind::KwUnion: return "'union'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwCase: return "'case'";
    case TokenKind::KwWhen: return "'when'";
    case TokenKind::KwDefault: return "'default'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwBreak: return "'break'";
    case TokenKind::KwContinue: return "'continue'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Dot: return "'.'";
    case TokenKind::Hash: return "'#'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::Tilde: return "'~'";
    case TokenKind::Bang: return "'!'";
    case TokenKind::AmpAmp: return "'&&'";
    case TokenKind::PipePipe: return "'||'";
    case TokenKind::EqEq: return "'=='";
    case TokenKind::NotEq: return "'!='";
    case TokenKind::Less: return "'<'";
    case TokenKind::LessEq: return "'<='";
    case TokenKind::Greater: return "'>'";
    case TokenKind::GreaterEq: return "'>='";
    case TokenKind::Shl: return "'<<'";
    case TokenKind::Shr: return "'>>'";
    case TokenKind::EndOfFile: return "end of file";
  }
  return "unknown";
}

std::string Token::str() const {
  switch (kind) {
    case TokenKind::Identifier:
    case TokenKind::IntLiteral:
    case TokenKind::CharLiteral:
      return text;
    default:
      return to_string(kind);
  }
}

}  // namespace hicsync::hic
