// Recursive-descent parser for hic.
//
// Grammar (informal; see DESIGN.md and the paper's Fig. 1):
//
//   program    := (pragma | typedef | thread)*
//   typedef    := 'type' IDENT '=' typespec ';'
//              |  'union' IDENT '{' (typespec IDENT ';')+ '}' ';'?
//   typespec   := 'int' | 'char' | 'message' | 'bits' '<' INT '>' | IDENT
//   thread     := 'thread' IDENT '(' ')' '{' (decl | stmt)* '}'
//   decl       := typespec IDENT ('[' INT ']')? (',' IDENT ('['INT']')?)* ';'
//   stmt       := [pragma*] core_stmt
//   core_stmt  := lvalue '=' expr ';' | if | case | for | while
//              |  'break' ';' | 'continue' ';' | block
//   case       := 'case' '(' expr ')' '{' arm+ '}'
//   arm        := ('when' INT | 'default') ':' core_stmt*
//   pragma     := '#' IDENT '{' args '}'
//
// Producer/consumer pragmas attach to the next statement in the same thread.
#pragma once

#include <vector>

#include "hic/ast.h"
#include "hic/token.h"
#include "support/diagnostics.h"

namespace hicsync::hic {

class Parser {
 public:
  Parser(std::vector<Token> tokens, support::DiagnosticEngine& diags);

  /// Parses a whole program. Diagnostics are reported through the engine;
  /// the returned Program reflects what could be parsed.
  [[nodiscard]] Program parse_program();

 private:
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  [[nodiscard]] bool at(TokenKind k) const { return peek().kind == k; }
  const Token& advance();
  bool accept(TokenKind k);
  const Token& expect(TokenKind k, const char* context);

  [[nodiscard]] bool at_typespec() const;

  Pragma parse_pragma();
  TypeDef parse_typedef();
  TypeDef parse_union();
  void parse_typespec(std::string& type_name, int& bits_width);
  ThreadDecl parse_thread();
  VarDecl parse_one_declarator(const std::string& type_name, int bits_width);
  void parse_decl(ThreadDecl& thread);
  StmtPtr parse_stmt();
  StmtPtr parse_core_stmt();
  StmtPtr parse_if();
  StmtPtr parse_case();
  StmtPtr parse_for();
  StmtPtr parse_while();
  StmtPtr parse_block();
  StmtPtr parse_assign(bool expect_semicolon);
  std::vector<StmtPtr> parse_stmt_list_until(TokenKind terminator);

  ExprPtr parse_expr();
  ExprPtr parse_binary_rhs(int min_prec, ExprPtr lhs);
  ExprPtr parse_unary();
  ExprPtr parse_postfix(ExprPtr base);
  ExprPtr parse_primary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  support::DiagnosticEngine& diags_;
};

/// Convenience: lex + parse a source buffer.
[[nodiscard]] Program parse_source(std::string_view source,
                                   support::DiagnosticEngine& diags);

}  // namespace hicsync::hic
