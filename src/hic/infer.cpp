#include "hic/infer.h"

#include <map>
#include <set>
#include <vector>

namespace hicsync::hic {
namespace {

/// Visits every statement in a body, recursively.
template <typename Fn>
void for_each_stmt(std::vector<StmtPtr>& body, Fn&& fn) {
  for (auto& s : body) {
    fn(*s);
    for_each_stmt(s->then_body, fn);
    for_each_stmt(s->else_body, fn);
    for_each_stmt(s->body, fn);
    for (auto& arm : s->arms) for_each_stmt(arm.body, fn);
    if (s->init) {
      fn(*s->init);
    }
    if (s->step) {
      fn(*s->step);
    }
  }
}

/// Collects the variable names read inside an expression.
void collect_reads(const Expr& e, std::set<std::string>& names) {
  if (e.kind == ExprKind::VarRef) {
    names.insert(e.name);
    return;
  }
  if (e.kind == ExprKind::Index) {
    collect_reads(*e.operands[0], names);
    collect_reads(*e.operands[1], names);
    return;
  }
  if (e.kind == ExprKind::Member) {
    collect_reads(*e.operands[0], names);
    return;
  }
  for (const auto& op : e.operands) collect_reads(*op, names);
}

/// Root variable of an lvalue.
const std::string* target_root(const Expr& target) {
  const Expr* root = &target;
  while (root->kind == ExprKind::Index || root->kind == ExprKind::Member) {
    root = root->operands[0].get();
  }
  return root->kind == ExprKind::VarRef ? &root->name : nullptr;
}

}  // namespace

InferenceResult infer_dependencies(Program& program,
                                   support::DiagnosticEngine& diags) {
  InferenceResult result;

  // Declared names per thread; assignment sites per (thread, name).
  std::map<std::string, std::set<std::string>> decls;
  std::map<std::string, std::map<std::string, std::vector<Stmt*>>> writes;
  for (auto& thread : program.threads) {
    for (const VarDecl& d : thread.decls) {
      decls[thread.name].insert(d.name);
    }
    for_each_stmt(thread.body, [&](Stmt& s) {
      if (s.kind != StmtKind::Assign) return;
      const std::string* root = target_root(*s.target);
      if (root != nullptr && decls[thread.name].count(*root) != 0) {
        writes[thread.name][*root].push_back(&s);
      }
    });
  }

  // Variables already covered by explicit pragmas are out of scope.
  std::set<std::pair<std::string, std::string>> annotated;  // (thread, var)
  for (auto& thread : program.threads) {
    for_each_stmt(thread.body, [&](Stmt& s) {
      for (const Pragma& p : s.pragmas) {
        if (p.kind == PragmaKind::Producer) {
          for (const DepEndpoint& ep : p.endpoints) {
            annotated.insert({ep.thread, ep.var});
          }
        } else if (p.kind == PragmaKind::Consumer) {
          const std::string* root = target_root(*s.target);
          if (root != nullptr) annotated.insert({thread.name, *root});
        }
      }
    });
  }

  for (auto& thread : program.threads) {
    for_each_stmt(thread.body, [&](Stmt& stmt) {
      if (stmt.kind != StmtKind::Assign) return;
      std::set<std::string> reads;
      collect_reads(*stmt.value, reads);
      if (stmt.target->kind == ExprKind::Index) {
        collect_reads(*stmt.target->operands[1], reads);
      }
      for (const std::string& name : reads) {
        if (decls[thread.name].count(name) != 0) continue;  // local
        // Find the declaring thread(s).
        std::vector<std::string> owners;
        for (const auto& t : program.threads) {
          if (t.name != thread.name && decls[t.name].count(name) != 0) {
            owners.push_back(t.name);
          }
        }
        if (owners.empty()) continue;  // Sema will report the unknown name.
        if (owners.size() > 1) {
          diags.error(stmt.loc,
                      "cannot infer producer of '" + name +
                          "': declared by multiple threads; annotate with "
                          "#producer/#consumer pragmas");
          continue;
        }
        const std::string& producer_thread = owners[0];
        if (annotated.count({producer_thread, name}) != 0) continue;
        auto& sites = writes[producer_thread][name];
        if (sites.empty()) {
          diags.error(stmt.loc, "cannot infer producer of '" + name +
                                    "': thread '" + producer_thread +
                                    "' never assigns it");
          continue;
        }
        if (sites.size() > 1) {
          diags.error(stmt.loc,
                      "cannot infer producer of '" + name + "': thread '" +
                          producer_thread +
                          "' assigns it in several statements; use explicit "
                          "pragmas with distinct dependency ids");
          continue;
        }
        const std::string* dest = target_root(*stmt.target);
        if (dest == nullptr) continue;
        std::string dep_id = "auto_" + producer_thread + "_" + name;

        // Consumer side: a #producer pragma on this statement.
        bool already = false;
        for (const Pragma& p : stmt.pragmas) {
          if (p.kind == PragmaKind::Producer && p.dep_id == dep_id) {
            already = true;
          }
        }
        if (!already) {
          Pragma p;
          p.kind = PragmaKind::Producer;
          p.dep_id = dep_id;
          p.endpoints.push_back(DepEndpoint{producer_thread, name, stmt.loc});
          p.loc = stmt.loc;
          stmt.pragmas.push_back(std::move(p));
        }

        // Producer side: extend/create the #consumer pragma.
        Stmt& produce = *sites[0];
        Pragma* consumer_pragma = nullptr;
        for (Pragma& p : produce.pragmas) {
          if (p.kind == PragmaKind::Consumer && p.dep_id == dep_id) {
            consumer_pragma = &p;
          }
        }
        if (consumer_pragma == nullptr) {
          Pragma p;
          p.kind = PragmaKind::Consumer;
          p.dep_id = dep_id;
          p.loc = produce.loc;
          produce.pragmas.push_back(std::move(p));
          consumer_pragma = &produce.pragmas.back();
          ++result.inferred_dependencies;
        }
        bool endpoint_exists = false;
        for (const DepEndpoint& ep : consumer_pragma->endpoints) {
          if (ep.thread == thread.name && ep.var == *dest) {
            endpoint_exists = true;
          }
        }
        if (!endpoint_exists) {
          consumer_pragma->endpoints.push_back(
              DepEndpoint{thread.name, *dest, stmt.loc});
          ++result.consumer_endpoints;
        }
      }
    });
  }
  return result;
}

}  // namespace hicsync::hic
