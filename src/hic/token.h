// Token definitions for the hic language.
//
// hic (Kulkarni & Brebner, DATE 2006, §2) is a concurrent asynchronous
// language for networking applications: hardware threads over a logical
// global shared memory of messages, with four pragmas (#interface,
// #constant, #producer, #consumer). The paper gives the surface informally;
// the concrete grammar here follows its Figure 1 example and §2 feature list.
#pragma once

#include <cstdint>
#include <string>

#include "support/source_location.h"

namespace hicsync::hic {

enum class TokenKind {
  // Literals and identifiers.
  Identifier,
  IntLiteral,
  CharLiteral,

  // Keywords.
  KwThread,
  KwInt,
  KwChar,
  KwMessage,
  KwBits,
  KwType,
  KwUnion,
  KwIf,
  KwElse,
  KwCase,
  KwWhen,
  KwDefault,
  KwFor,
  KwWhile,
  KwBreak,
  KwContinue,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Dot,
  Hash,

  // Operators.
  Assign,      // =
  Plus,        // +
  Minus,       // -
  Star,        // *
  Slash,       // /
  Percent,     // %
  Amp,         // &
  Pipe,        // |
  Caret,       // ^
  Tilde,       // ~
  Bang,        // !
  AmpAmp,      // &&
  PipePipe,    // ||
  EqEq,        // ==
  NotEq,       // !=
  Less,        // <
  LessEq,      // <=
  Greater,     // >
  GreaterEq,   // >=
  Shl,         // <<
  Shr,         // >>

  EndOfFile,
};

[[nodiscard]] const char* to_string(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;           // spelling (identifiers, literals)
  std::uint64_t int_value = 0;  // for IntLiteral / CharLiteral
  support::SourceLoc loc;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] std::string str() const;
};

}  // namespace hicsync::hic
