#include "hic/sema.h"

#include <algorithm>
#include <set>

namespace hicsync::hic {

int SymbolTable::next_id_ = 0;

Symbol* SymbolTable::declare(std::string name, std::string thread,
                             const Type* type, std::uint64_t array_size,
                             support::SourceLoc loc) {
  if (table_.count(name) != 0) return nullptr;
  auto sym = std::make_unique<Symbol>(name, std::move(thread), type,
                                      array_size, loc, next_id_++);
  Symbol* raw = sym.get();
  order_.push_back(raw);
  table_.emplace(std::move(name), std::move(sym));
  return raw;
}

Symbol* SymbolTable::lookup(const std::string& name) const {
  auto it = table_.find(name);
  return it == table_.end() ? nullptr : it->second.get();
}

std::vector<Symbol*> SymbolTable::symbols() const { return order_; }

Sema::Sema(Program& program, support::DiagnosticEngine& diags)
    : program_(program), diags_(diags) {}

bool Sema::run() {
  std::size_t errors_before = diags_.error_count();

  register_typedefs();

  // Duplicate thread names.
  std::set<std::string> thread_names;
  for (const auto& t : program_.threads) {
    if (!thread_names.insert(t.name).second) {
      diags_.error(t.loc, "duplicate thread name '" + t.name + "'");
    }
  }

  for (auto& thread : program_.threads) declare_thread_vars(thread);
  // Dependencies must be bound before bodies are checked: consumer
  // statements reference the producer's variable by name, which only
  // resolves through the statement's #producer pragma.
  bind_dependencies();
  for (auto& thread : program_.threads) check_thread_body(thread);

  return diags_.error_count() == errors_before;
}

void Sema::register_typedefs() {
  for (const auto& td : program_.typedefs) {
    if (user_types_.count(td.name) != 0) {
      diags_.error(td.loc, "duplicate type name '" + td.name + "'");
      continue;
    }
    if (td.is_union) {
      std::vector<Type::UnionMember> members;
      std::set<std::string> seen;
      for (const auto& m : td.members) {
        if (!seen.insert(m.name).second) {
          diags_.error(td.loc, "duplicate union member '" + m.name + "'");
          continue;
        }
        const Type* mt = resolve_type(m.type_name, m.bits_width, td.loc);
        members.push_back(Type::UnionMember{m.name, mt});
      }
      user_types_.emplace(td.name, Type::make_union(td.name, members));
    } else if (td.bits_width > 0) {
      user_types_.emplace(td.name, Type::make_bits(td.bits_width, td.name));
    } else if (!td.members.empty()) {
      // Alias of a named type: keep the aliased width under the new name.
      const Type* base =
          resolve_type(td.members[0].type_name, 0, td.loc);
      user_types_.emplace(td.name,
                          Type::make_bits(base->bit_width(), td.name));
    } else {
      diags_.error(td.loc, "malformed type definition '" + td.name + "'");
    }
  }
}

const Type* Sema::resolve_type(const std::string& type_name, int bits_width,
                               support::SourceLoc loc) {
  if (type_name == "int") return Type::int_type();
  if (type_name == "char") return Type::char_type();
  if (type_name == "message") return Type::message_type();
  if (type_name == "bits") {
    if (bits_width <= 0) {
      diags_.error(loc, "bits type requires a positive width");
      return Type::error_type();
    }
    // Intern per-width so repeated bits<N> share one Type.
    std::string key = "bits<" + std::to_string(bits_width) + ">";
    auto it = user_types_.find(key);
    if (it == user_types_.end()) {
      it = user_types_.emplace(key, Type::make_bits(bits_width)).first;
    }
    return it->second.get();
  }
  auto it = user_types_.find(type_name);
  if (it != user_types_.end()) return it->second.get();
  diags_.error(loc, "unknown type '" + type_name + "'");
  return Type::error_type();
}

void Sema::declare_thread_vars(ThreadDecl& thread) {
  SymbolTable& table = tables_[thread.name];
  for (auto& decl : thread.decls) {
    decl.type = resolve_type(decl.type_name, decl.bits_width, decl.loc);
    Symbol* sym = table.declare(decl.name, thread.name, decl.type,
                                decl.array_size, decl.loc);
    if (sym == nullptr) {
      diags_.error(decl.loc, "duplicate variable '" + decl.name +
                                 "' in thread '" + thread.name + "'");
      continue;
    }
    decl.symbol = sym;
  }
}

Symbol* Sema::lookup(const std::string& thread, const std::string& var) const {
  auto it = tables_.find(thread);
  if (it == tables_.end()) return nullptr;
  return it->second.lookup(var);
}

const SymbolTable* Sema::thread_table(const std::string& thread) const {
  auto it = tables_.find(thread);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<Symbol*> Sema::all_symbols() const {
  std::vector<Symbol*> out;
  for (const auto& t : program_.threads) {
    auto it = tables_.find(t.name);
    if (it == tables_.end()) continue;
    for (Symbol* s : it->second.symbols()) out.push_back(s);
  }
  return out;
}

Symbol* Sema::resolve_name(const ThreadDecl& thread, const std::string& name,
                           const Stmt* enclosing, support::SourceLoc loc) {
  if (Symbol* local = lookup(thread.name, name)) return local;
  // Cross-thread reference: legal only when the enclosing statement carries
  // a #producer pragma whose produced variable has this name.
  if (enclosing != nullptr) {
    for (const Pragma& p : enclosing->pragmas) {
      if (p.kind != PragmaKind::Producer) continue;
      for (const DepEndpoint& ep : p.endpoints) {
        if (ep.var == name) {
          if (Symbol* remote = lookup(ep.thread, ep.var)) return remote;
        }
      }
    }
  }
  diags_.error(loc, "unknown variable '" + name + "' in thread '" +
                        thread.name + "'");
  return nullptr;
}

void Sema::check_thread_body(const ThreadDecl& thread) {
  for (const auto& stmt : thread.body) {
    check_stmt(thread, *stmt, /*loop_depth=*/0);
  }
}

void Sema::check_stmt(const ThreadDecl& thread, Stmt& stmt, int loop_depth) {
  switch (stmt.kind) {
    case StmtKind::Assign: {
      const Type* lhs_type = check_expr(thread, *stmt.target, &stmt);
      // The assignment target must be an lvalue rooted at a local variable.
      const Expr* root = stmt.target.get();
      while (root->kind == ExprKind::Index ||
             root->kind == ExprKind::Member) {
        root = root->operands[0].get();
      }
      if (root->kind != ExprKind::VarRef) {
        diags_.error(stmt.target->loc, "assignment target is not an lvalue");
      } else if (root->symbol != nullptr &&
                 root->symbol->thread() != thread.name) {
        diags_.error(stmt.target->loc,
                     "cannot assign to variable '" + root->symbol->name() +
                         "' owned by thread '" + root->symbol->thread() +
                         "' (only the producer thread writes shared data)");
      }
      const Type* rhs_type = check_expr(thread, *stmt.value, &stmt);
      // Message variables accept other messages or opaque call results
      // (a receive function yields a fresh message handle); arithmetic
      // values cannot become messages.
      if (lhs_type != nullptr && rhs_type != nullptr &&
          !lhs_type->is_error() && !rhs_type->is_error() &&
          lhs_type->kind() == TypeKind::Message &&
          rhs_type->kind() != TypeKind::Message &&
          stmt.value->kind != ExprKind::Call) {
        diags_.error(stmt.loc, "cannot assign a non-message value to a "
                               "message variable");
      }
      break;
    }
    case StmtKind::If: {
      check_expr(thread, *stmt.cond, &stmt);
      for (auto& s : stmt.then_body) check_stmt(thread, *s, loop_depth);
      for (auto& s : stmt.else_body) check_stmt(thread, *s, loop_depth);
      break;
    }
    case StmtKind::Case: {
      check_expr(thread, *stmt.cond, &stmt);
      std::set<std::uint64_t> seen;
      for (auto& arm : stmt.arms) {
        if (!arm.is_default && !seen.insert(arm.value).second) {
          diags_.error(arm.loc, "duplicate case arm value " +
                                    std::to_string(arm.value));
        }
        for (auto& s : arm.body) check_stmt(thread, *s, loop_depth);
      }
      break;
    }
    case StmtKind::For: {
      check_stmt(thread, *stmt.init, loop_depth);
      check_expr(thread, *stmt.cond, &stmt);
      check_stmt(thread, *stmt.step, loop_depth);
      for (auto& s : stmt.body) check_stmt(thread, *s, loop_depth + 1);
      break;
    }
    case StmtKind::While: {
      check_expr(thread, *stmt.cond, &stmt);
      for (auto& s : stmt.body) check_stmt(thread, *s, loop_depth + 1);
      break;
    }
    case StmtKind::Break:
    case StmtKind::Continue: {
      if (loop_depth == 0) {
        diags_.error(stmt.loc,
                     stmt.kind == StmtKind::Break
                         ? "'break' outside of a loop"
                         : "'continue' outside of a loop");
      }
      break;
    }
    case StmtKind::Block: {
      for (auto& s : stmt.body) check_stmt(thread, *s, loop_depth);
      break;
    }
  }
}

const Type* Sema::check_expr(const ThreadDecl& thread, Expr& expr,
                             const Stmt* enclosing) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      expr.type = Type::int_type();
      return expr.type;
    case ExprKind::CharLit:
      expr.type = Type::char_type();
      return expr.type;
    case ExprKind::VarRef: {
      Symbol* sym = resolve_name(thread, expr.name, enclosing, expr.loc);
      if (sym == nullptr) {
        expr.type = Type::error_type();
        return expr.type;
      }
      expr.symbol = sym;
      expr.type = sym->type();
      return expr.type;
    }
    case ExprKind::Index: {
      const Type* base = check_expr(thread, *expr.operands[0], enclosing);
      check_expr(thread, *expr.operands[1], enclosing);
      const Expr* base_expr = expr.operands[0].get();
      if (base_expr->kind == ExprKind::VarRef &&
          base_expr->symbol != nullptr && !base_expr->symbol->is_array()) {
        diags_.error(expr.loc, "variable '" + base_expr->symbol->name() +
                                   "' is not an array");
      }
      expr.symbol = base_expr->symbol;
      expr.type = base;
      return expr.type;
    }
    case ExprKind::Member: {
      const Type* base = check_expr(thread, *expr.operands[0], enclosing);
      expr.symbol = expr.operands[0]->symbol;
      if (base == nullptr || base->is_error()) {
        expr.type = Type::error_type();
        return expr.type;
      }
      if (base->kind() != TypeKind::Union) {
        diags_.error(expr.loc,
                     "member access on non-union type '" + base->name() + "'");
        expr.type = Type::error_type();
        return expr.type;
      }
      const Type::UnionMember* m = base->find_member(expr.name);
      if (m == nullptr) {
        diags_.error(expr.loc, "union '" + base->name() +
                                   "' has no member '" + expr.name + "'");
        expr.type = Type::error_type();
        return expr.type;
      }
      expr.type = m->type;
      return expr.type;
    }
    case ExprKind::Unary: {
      const Type* t = check_expr(thread, *expr.operands[0], enclosing);
      if (t != nullptr && t->kind() == TypeKind::Message) {
        diags_.error(expr.loc, "arithmetic on a message value");
      }
      expr.type = (expr.unary_op == UnaryOp::Not) ? Type::int_type() : t;
      return expr.type;
    }
    case ExprKind::Binary: {
      const Type* lhs = check_expr(thread, *expr.operands[0], enclosing);
      const Type* rhs = check_expr(thread, *expr.operands[1], enclosing);
      if ((lhs != nullptr && lhs->kind() == TypeKind::Message) ||
          (rhs != nullptr && rhs->kind() == TypeKind::Message)) {
        diags_.error(expr.loc, "arithmetic on a message value");
      }
      switch (expr.binary_op) {
        case BinaryOp::Eq:
        case BinaryOp::Ne:
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge:
        case BinaryOp::LogAnd:
        case BinaryOp::LogOr:
          expr.type = Type::int_type();
          break;
        default: {
          // Usual widening: result takes the wider operand's type.
          const Type* wide = lhs;
          if (wide == nullptr ||
              (rhs != nullptr && rhs->bit_width() > wide->bit_width())) {
            wide = rhs;
          }
          expr.type = wide != nullptr ? wide : Type::error_type();
        }
      }
      return expr.type;
    }
    case ExprKind::Call: {
      for (auto& arg : expr.operands) check_expr(thread, *arg, enclosing);
      // Calls are opaque combinational computations (paper Fig. 1: f, g, h).
      // Result type defaults to int; arguments constrain nothing further.
      expr.type = Type::int_type();
      return expr.type;
    }
  }
  expr.type = Type::error_type();
  return expr.type;
}

void Sema::bind_dependencies() {
  // Gather producer-side (#consumer) and consumer-side (#producer) pragmas
  // with the statements they annotate.
  struct ProducerSite {
    std::string thread;
    Stmt* stmt;
    const Pragma* pragma;
  };
  struct ConsumerSite {
    std::string thread;
    Stmt* stmt;
    const Pragma* pragma;
  };
  std::map<std::string, std::vector<ProducerSite>> producer_sites;
  std::map<std::string, std::vector<ConsumerSite>> consumer_sites;

  // Statements can nest; walk every statement in every thread.
  auto walk = [&](auto&& self, const std::string& thread,
                  Stmt& stmt) -> void {
    for (const Pragma& p : stmt.pragmas) {
      if (p.kind == PragmaKind::Consumer) {
        producer_sites[p.dep_id].push_back(ProducerSite{thread, &stmt, &p});
      } else if (p.kind == PragmaKind::Producer) {
        consumer_sites[p.dep_id].push_back(ConsumerSite{thread, &stmt, &p});
      }
    }
    auto walk_list = [&](std::vector<StmtPtr>& list) {
      for (auto& s : list) self(self, thread, *s);
    };
    walk_list(stmt.then_body);
    walk_list(stmt.else_body);
    walk_list(stmt.body);
    for (auto& arm : stmt.arms) {
      for (auto& s : arm.body) self(self, thread, *s);
    }
    if (stmt.init) self(self, thread, *stmt.init);
    if (stmt.step) self(self, thread, *stmt.step);
  };
  for (auto& thread : program_.threads) {
    for (auto& s : thread.body) walk(walk, thread.name, *s);
  }

  std::set<std::string> all_ids;
  for (const auto& [id, _] : producer_sites) all_ids.insert(id);
  for (const auto& [id, _] : consumer_sites) all_ids.insert(id);

  for (const std::string& id : all_ids) {
    auto pit = producer_sites.find(id);
    auto cit = consumer_sites.find(id);
    if (pit == producer_sites.end()) {
      for (const auto& site : cit->second) {
        diags_.error(site.pragma->loc,
                     "dependency '" + id + "' has #producer pragmas but no "
                     "#consumer pragma at the producing statement");
      }
      continue;
    }
    if (pit->second.size() > 1) {
      diags_.error(pit->second[1].pragma->loc,
                   "dependency '" + id + "' has multiple #consumer pragmas; "
                   "each dependency has exactly one producing statement");
      continue;
    }
    const ProducerSite& prod = pit->second[0];

    // The producing statement must be an assignment; its target variable is
    // the shared datum.
    if (prod.stmt->kind != StmtKind::Assign) {
      diags_.error(prod.pragma->loc,
                   "#consumer pragma must annotate an assignment");
      continue;
    }
    const Expr* target_root = prod.stmt->target.get();
    while (target_root->kind == ExprKind::Index ||
           target_root->kind == ExprKind::Member) {
      target_root = target_root->operands[0].get();
    }
    if (target_root->kind != ExprKind::VarRef) {
      diags_.error(prod.pragma->loc, "producing statement has no variable "
                                     "target");
      continue;
    }
    Symbol* shared = lookup(prod.thread, target_root->name);
    if (shared == nullptr) {
      diags_.error(prod.pragma->loc,
                   "produced variable '" + target_root->name +
                       "' is not declared in thread '" + prod.thread + "'");
      continue;
    }

    Dependency dep;
    dep.id = id;
    dep.producer_thread = prod.thread;
    dep.producer_stmt = prod.stmt;
    dep.shared_var = shared;
    dep.loc = prod.pragma->loc;

    // Each endpoint in the #consumer pragma must have a matching consumer
    // site: same dep id, a #producer pragma naming [producer_thread, var].
    bool ok = true;
    for (const DepEndpoint& ep : prod.pragma->endpoints) {
      if (ep.thread == prod.thread) {
        diags_.error(ep.loc, "dependency '" + id + "' lists its own producer "
                             "thread as a consumer (self-dependency)");
        ok = false;
        continue;
      }
      if (program_.find_thread(ep.thread) == nullptr) {
        diags_.error(ep.loc, "unknown consumer thread '" + ep.thread + "'");
        ok = false;
        continue;
      }
      const ConsumerSite* match = nullptr;
      if (cit != consumer_sites.end()) {
        for (const auto& site : cit->second) {
          if (site.thread != ep.thread) continue;
          // The #producer pragma on the consumer side must point back.
          const DepEndpoint& back = site.pragma->endpoints[0];
          if (back.thread != prod.thread || back.var != shared->name()) {
            diags_.error(site.pragma->loc,
                         "#producer pragma for '" + id + "' names [" +
                             back.thread + "," + back.var +
                             "] but the producing statement assigns " +
                             shared->qualified_name());
            continue;
          }
          match = &site;
          break;
        }
      }
      if (match == nullptr) {
        diags_.error(ep.loc,
                     "consumer thread '" + ep.thread + "' has no #producer{" +
                         id + ", ...} pragma matching this dependency");
        ok = false;
        continue;
      }
      DepConsumer consumer;
      consumer.thread = ep.thread;
      consumer.stmt = match->stmt;
      consumer.loc = match->pragma->loc;
      // The consumer destination is the endpoint's named variable; verify it
      // matches what the consuming statement assigns.
      Symbol* dest = lookup(ep.thread, ep.var);
      if (dest == nullptr) {
        diags_.error(ep.loc, "consumer variable '" + ep.var +
                                 "' is not declared in thread '" + ep.thread +
                                 "'");
        ok = false;
        continue;
      }
      if (match->stmt->kind == StmtKind::Assign) {
        const Expr* dst_root = match->stmt->target.get();
        while (dst_root->kind == ExprKind::Index ||
               dst_root->kind == ExprKind::Member) {
          dst_root = dst_root->operands[0].get();
        }
        if (dst_root->kind == ExprKind::VarRef && dst_root->name != ep.var) {
          diags_.warning(ep.loc, "consumer endpoint names '" + ep.var +
                                     "' but the consuming statement assigns "
                                     "'" + dst_root->name + "'");
        }
      }
      consumer.dest = dest;
      dep.consumers.push_back(std::move(consumer));
    }

    // Also flag consumer sites for this id that the producer never listed.
    if (cit != consumer_sites.end()) {
      for (const auto& site : cit->second) {
        bool listed = false;
        for (const DepEndpoint& ep : prod.pragma->endpoints) {
          if (ep.thread == site.thread) {
            listed = true;
            break;
          }
        }
        if (!listed) {
          diags_.error(site.pragma->loc,
                       "thread '" + site.thread + "' declares #producer{" +
                           id + ", ...} but the producing statement's "
                           "#consumer pragma does not list it");
          ok = false;
        }
      }
    }

    if (ok && !dep.consumers.empty()) {
      shared->mark_shared();
      dependencies_.push_back(std::move(dep));
    }
  }

  // Order dependencies by the program order of their producing statements
  // (thread order, then statement order). The event-driven organization's
  // modulo schedule visits producers in this order, so it must match the
  // order a producing thread actually issues its writes.
  std::map<const Stmt*, int> stmt_order;
  int position = 0;
  auto number = [&](auto&& self, const Stmt& s) -> void {
    stmt_order[&s] = position++;
    auto list = [&](const std::vector<StmtPtr>& body) {
      for (const auto& child : body) self(self, *child);
    };
    list(s.then_body);
    list(s.else_body);
    list(s.body);
    for (const auto& arm : s.arms) {
      for (const auto& child : arm.body) self(self, *child);
    }
    if (s.init) self(self, *s.init);
    if (s.step) self(self, *s.step);
  };
  std::map<std::string, int> thread_order;
  for (std::size_t i = 0; i < program_.threads.size(); ++i) {
    thread_order[program_.threads[i].name] = static_cast<int>(i);
    for (const auto& s : program_.threads[i].body) number(number, *s);
  }
  std::stable_sort(dependencies_.begin(), dependencies_.end(),
                   [&](const Dependency& a, const Dependency& b) {
                     int ta = thread_order[a.producer_thread];
                     int tb = thread_order[b.producer_thread];
                     if (ta != tb) return ta < tb;
                     return stmt_order[a.producer_stmt] <
                            stmt_order[b.producer_stmt];
                   });
}

}  // namespace hicsync::hic
