// Abstract syntax tree for hic programs.
//
// Ownership: the Program owns threads and typedefs; statements own nested
// statements and expressions via unique_ptr. Semantic information (resolved
// types, symbols) is attached by Sema into the mutable `type`/`symbol`
// annotation fields; the tree itself is otherwise immutable after parsing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hic/type.h"
#include "support/source_location.h"

namespace hicsync::hic {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

class Symbol;  // defined in hic/symbol.h

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

/// One [thread, var] endpoint inside a #producer/#consumer pragma.
struct DepEndpoint {
  std::string thread;
  std::string var;
  support::SourceLoc loc;
};

enum class PragmaKind {
  Interface,  // #interface{name, kind}      — top level
  Constant,   // #constant{name, value}      — top level
  Producer,   // #producer{id, [t,v]}        — attached to a consuming stmt
  Consumer,   // #consumer{id, [t,v], ...}   — attached to a producing stmt
};

[[nodiscard]] const char* to_string(PragmaKind k);

/// A parsed pragma. For Producer/Consumer, `dep_id` is the dependency
/// identifier (e.g. "mt1") used to match the two sides, and `endpoints`
/// lists the remote [thread, var] pairs.
struct Pragma {
  PragmaKind kind;
  std::string name;                   // Interface/Constant: first argument
  std::string value;                  // Interface: kind, Constant: value text
  std::uint64_t int_value = 0;        // Constant: numeric value if parseable
  std::string dep_id;                 // Producer/Consumer
  std::vector<DepEndpoint> endpoints;  // Producer/Consumer
  support::SourceLoc loc;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLit,
  CharLit,
  VarRef,     // x
  Index,      // x[e]
  Member,     // x.f       (union member access)
  Unary,      // -e !e ~e
  Binary,     // e op e
  Call,       // f(e, ...)  — opaque combinational computation
};

enum class UnaryOp { Neg, Not, BitNot };
enum class BinaryOp {
  Add, Sub, Mul, Div, Mod,
  And, Or, Xor,
  Shl, Shr,
  LogAnd, LogOr,
  Eq, Ne, Lt, Le, Gt, Ge,
};

[[nodiscard]] const char* to_string(UnaryOp op);
[[nodiscard]] const char* to_string(BinaryOp op);

struct Expr {
  ExprKind kind;
  support::SourceLoc loc;

  // IntLit / CharLit
  std::uint64_t int_value = 0;

  // VarRef / Member / Call: the referenced name (variable, member, callee).
  std::string name;

  // Unary / Binary operators.
  UnaryOp unary_op = UnaryOp::Neg;
  BinaryOp binary_op = BinaryOp::Add;

  // Operands: Unary/Index/Member use operands[0] (Index also operands[1]
  // as the subscript); Binary uses operands[0], operands[1]; Call uses all.
  std::vector<ExprPtr> operands;

  // --- Sema annotations ---
  const Type* type = nullptr;
  Symbol* symbol = nullptr;  // for VarRef and the base of Index/Member

  [[nodiscard]] static ExprPtr make_int(std::uint64_t v,
                                        support::SourceLoc loc);
  [[nodiscard]] static ExprPtr make_char(std::uint64_t v,
                                         support::SourceLoc loc);
  [[nodiscard]] static ExprPtr make_var(std::string name,
                                        support::SourceLoc loc);
  [[nodiscard]] static ExprPtr make_unary(UnaryOp op, ExprPtr e,
                                          support::SourceLoc loc);
  [[nodiscard]] static ExprPtr make_binary(BinaryOp op, ExprPtr lhs,
                                           ExprPtr rhs,
                                           support::SourceLoc loc);
  [[nodiscard]] static ExprPtr make_call(std::string callee,
                                         std::vector<ExprPtr> args,
                                         support::SourceLoc loc);
  [[nodiscard]] static ExprPtr make_index(ExprPtr base, ExprPtr idx,
                                          support::SourceLoc loc);
  [[nodiscard]] static ExprPtr make_member(ExprPtr base, std::string member,
                                           support::SourceLoc loc);
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  Assign,    // lvalue = expr ;
  If,        // if (cond) then_stmts else else_stmts
  Case,      // case (expr) { when K: ... default: ... }
  For,       // for (init; cond; step) body
  While,     // while (cond) body
  Break,
  Continue,
  Block,     // { ... }
};

struct CaseArm {
  bool is_default = false;
  std::uint64_t value = 0;  // matched constant when !is_default
  support::SourceLoc loc;
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind;
  support::SourceLoc loc;

  /// Producer/Consumer pragmas written immediately before this statement.
  std::vector<Pragma> pragmas;

  // Assign
  ExprPtr target;  // VarRef / Index / Member lvalue
  ExprPtr value;

  // If / While / Case / For (condition or scrutinee)
  ExprPtr cond;

  // If
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;

  // Case
  std::vector<CaseArm> arms;

  // For
  StmtPtr init;  // Assign
  StmtPtr step;  // Assign

  // While / For / Block body
  std::vector<StmtPtr> body;
};

// ---------------------------------------------------------------------------
// Declarations and program
// ---------------------------------------------------------------------------

/// One declared variable (possibly an array) inside a thread.
struct VarDecl {
  std::string name;
  std::string type_name;       // as written; resolved by Sema
  int bits_width = 0;          // for bits<N> spelled inline
  std::uint64_t array_size = 0;  // 0 = scalar
  support::SourceLoc loc;

  // --- Sema annotations ---
  const Type* type = nullptr;
  Symbol* symbol = nullptr;
};

/// A user type definition: `type name = bits<N>;` or a union.
struct TypeDef {
  std::string name;
  bool is_union = false;
  int bits_width = 0;  // for the alias form
  struct Member {
    std::string type_name;
    int bits_width = 0;
    std::string name;
  };
  std::vector<Member> members;  // for the union form
  support::SourceLoc loc;
};

/// One hardware thread. Per §2, each thread is synthesized into logic and
/// runs to completion processing one message at a time.
struct ThreadDecl {
  std::string name;
  std::vector<VarDecl> decls;
  std::vector<StmtPtr> body;
  support::SourceLoc loc;
};

/// A whole hic translation unit.
struct Program {
  std::vector<Pragma> interfaces;  // #interface pragmas
  std::vector<Pragma> constants;   // #constant pragmas
  std::vector<TypeDef> typedefs;
  std::vector<ThreadDecl> threads;

  [[nodiscard]] const ThreadDecl* find_thread(const std::string& name) const;
};

}  // namespace hicsync::hic
