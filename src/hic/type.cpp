#include "hic/type.h"

#include <algorithm>

namespace hicsync::hic {

const Type* Type::int_type() {
  static const Type t(TypeKind::Int, kIntWidth, "int");
  return &t;
}

const Type* Type::char_type() {
  static const Type t(TypeKind::Char, kCharWidth, "char");
  return &t;
}

const Type* Type::message_type() {
  static const Type t(TypeKind::Message, kMessageWidth, "message");
  return &t;
}

const Type* Type::error_type() {
  static const Type t(TypeKind::Error, 0, "<error>");
  return &t;
}

std::unique_ptr<Type> Type::make_bits(int width, std::string name) {
  if (name.empty()) name = "bits<" + std::to_string(width) + ">";
  return std::unique_ptr<Type>(
      new Type(TypeKind::Bits, width, std::move(name)));
}

std::unique_ptr<Type> Type::make_union(std::string name,
                                       std::vector<UnionMember> members) {
  int width = 0;
  for (const auto& m : members) width = std::max(width, m.type->bit_width());
  auto t = std::unique_ptr<Type>(
      new Type(TypeKind::Union, width, std::move(name)));
  t->members_ = std::move(members);
  return t;
}

const Type::UnionMember* Type::find_member(const std::string& n) const {
  for (const auto& m : members_) {
    if (m.name == n) return &m;
  }
  return nullptr;
}

}  // namespace hicsync::hic
