// Semantic analysis for hic.
//
// Responsibilities:
//  * intern user types (bits<N>, unions, aliases) and resolve declarations;
//  * build one symbol table per thread and resolve every VarRef — including
//    cross-thread references to a producer's variable from a consumer
//    statement annotated with a matching #producer pragma;
//  * type-check expressions and statements;
//  * bind #producer/#consumer pragma pairs into Dependency records — this is
//    exactly the producer/consumer relationship list (§3 of the paper) that
//    drives memory allocation and both memory-organization generators;
//  * report the inconsistencies the pragma scheme can express (missing or
//    mismatched sides, duplicate producers, self-dependencies).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hic/ast.h"
#include "hic/symbol.h"
#include "support/diagnostics.h"

namespace hicsync::hic {

/// One consumer of a dependency: the consuming thread, the annotated
/// statement, and the destination variable it assigns.
struct DepConsumer {
  std::string thread;
  const Stmt* stmt = nullptr;
  Symbol* dest = nullptr;
  support::SourceLoc loc;
};

/// A fully bound inter-thread memory dependency (one produce site, one or
/// more consume sites). `consumers` preserves the order written in the
/// #consumer pragma — the event-driven organization uses it as the static
/// (modulo) schedule. The "dependency number" of §3.1 is consumers.size().
struct Dependency {
  std::string id;  // e.g. "mt1"
  std::string producer_thread;
  const Stmt* producer_stmt = nullptr;
  Symbol* shared_var = nullptr;  // the produced variable, placed in BRAM
  std::vector<DepConsumer> consumers;
  support::SourceLoc loc;

  [[nodiscard]] int dependency_number() const {
    return static_cast<int>(consumers.size());
  }
};

/// Per-thread symbol table.
class SymbolTable {
 public:
  /// Returns nullptr if `name` is already declared.
  Symbol* declare(std::string name, std::string thread, const Type* type,
                  std::uint64_t array_size, support::SourceLoc loc);
  [[nodiscard]] Symbol* lookup(const std::string& name) const;
  [[nodiscard]] std::vector<Symbol*> symbols() const;

 private:
  std::map<std::string, std::unique_ptr<Symbol>> table_;
  std::vector<Symbol*> order_;
  static int next_id_;
};

class Sema {
 public:
  Sema(Program& program, support::DiagnosticEngine& diags);

  /// Runs all analyses. Returns true if no errors were reported.
  bool run();

  [[nodiscard]] const Program& program() const { return program_; }
  [[nodiscard]] const std::vector<Dependency>& dependencies() const {
    return dependencies_;
  }
  [[nodiscard]] Symbol* lookup(const std::string& thread,
                               const std::string& var) const;
  [[nodiscard]] const SymbolTable* thread_table(
      const std::string& thread) const;
  /// All symbols of all threads, in declaration order.
  [[nodiscard]] std::vector<Symbol*> all_symbols() const;

  /// Resolves a declared type spelling (used by decls and unions).
  const Type* resolve_type(const std::string& type_name, int bits_width,
                           support::SourceLoc loc);

 private:
  void register_typedefs();
  void declare_thread_vars(ThreadDecl& thread);
  void check_thread_body(const ThreadDecl& thread);
  void check_stmt(const ThreadDecl& thread, Stmt& stmt, int loop_depth);
  const Type* check_expr(const ThreadDecl& thread, Expr& expr,
                         const Stmt* enclosing);
  Symbol* resolve_name(const ThreadDecl& thread, const std::string& name,
                       const Stmt* enclosing, support::SourceLoc loc);
  void bind_dependencies();

  Program& program_;
  support::DiagnosticEngine& diags_;
  std::map<std::string, std::unique_ptr<Type>> user_types_;
  std::map<std::string, SymbolTable> tables_;
  std::vector<Dependency> dependencies_;
};

}  // namespace hicsync::hic
