// AST pretty-printer: renders a parsed program back to hic surface syntax.
// Used by tests (parse → print → reparse round-trips) and for debugging.
#pragma once

#include <string>

#include "hic/ast.h"

namespace hicsync::hic {

[[nodiscard]] std::string print_expr(const Expr& expr);
[[nodiscard]] std::string print_stmt(const Stmt& stmt, int indent = 0);
[[nodiscard]] std::string print_thread(const ThreadDecl& thread);
[[nodiscard]] std::string print_program(const Program& program);

}  // namespace hicsync::hic
