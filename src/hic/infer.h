// Automatic producer/consumer inference.
//
// §2: "It is important to note that the particular syntax used here is not
// central to our techniques ... In practice, one can use standard compiler
// use-def analysis [7] and other lifetime analysis methods [9] to extract
// producers and consumers from a given specification."
//
// This pass implements that alternative: a program written *without*
// #producer/#consumer pragmas has its cross-thread reads resolved by
// definition analysis, and the equivalent pragmas are injected into the
// AST so the rest of the flow (Sema binding, allocation, generation) runs
// unchanged. Inference requirements (diagnosed otherwise):
//   * a cross-thread name must be declared by exactly one other thread;
//   * the producing thread must assign it in exactly one statement
//     (several produce sites need explicit pragmas with distinct ids);
//   * the consuming reference must appear in an assignment's right-hand
//     side (consumer reads in bare conditions are not inferable).
#pragma once

#include "hic/ast.h"
#include "support/diagnostics.h"

namespace hicsync::hic {

struct InferenceResult {
  int inferred_dependencies = 0;
  int consumer_endpoints = 0;
};

/// Scans `program` and injects pragmas for cross-thread reads that carry
/// no explicit annotation. Existing pragmas are left untouched and their
/// variables are skipped. Returns counts; errors go to `diags`.
InferenceResult infer_dependencies(Program& program,
                                   support::DiagnosticEngine& diags);

}  // namespace hicsync::hic
