#include "hic/lexer.h"

#include <cctype>
#include <unordered_map>

namespace hicsync::hic {
namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"thread", TokenKind::KwThread},   {"int", TokenKind::KwInt},
      {"char", TokenKind::KwChar},       {"message", TokenKind::KwMessage},
      {"bits", TokenKind::KwBits},       {"type", TokenKind::KwType},
      {"union", TokenKind::KwUnion},     {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"case", TokenKind::KwCase},
      {"when", TokenKind::KwWhen},       {"default", TokenKind::KwDefault},
      {"for", TokenKind::KwFor},         {"while", TokenKind::KwWhile},
      {"break", TokenKind::KwBreak},     {"continue", TokenKind::KwContinue},
  };
  return table;
}

}  // namespace

Lexer::Lexer(std::string_view source, support::DiagnosticEngine& diags)
    : source_(source), diags_(diags) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

support::SourceLoc Lexer::here() const {
  return support::SourceLoc{line_, col_, static_cast<std::uint32_t>(pos_)};
}

void Lexer::skip_trivia() {
  while (!at_end()) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      support::SourceLoc start = here();
      advance();
      advance();
      bool closed = false;
      while (!at_end()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) diags_.error(start, "unterminated block comment");
    } else {
      break;
    }
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> tokens;
  while (true) {
    skip_trivia();
    if (at_end()) {
      tokens.push_back(Token{TokenKind::EndOfFile, "", 0, here()});
      break;
    }
    tokens.push_back(lex_token());
  }
  return tokens;
}

Token Lexer::lex_token() {
  support::SourceLoc loc = here();
  char c = peek();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return lex_identifier_or_keyword();
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    return lex_number();
  }
  if (c == '\'') {
    return lex_char_literal();
  }

  advance();
  auto two = [&](char second, TokenKind with, TokenKind without) {
    if (peek() == second) {
      advance();
      return with;
    }
    return without;
  };

  TokenKind kind;
  switch (c) {
    case '(': kind = TokenKind::LParen; break;
    case ')': kind = TokenKind::RParen; break;
    case '{': kind = TokenKind::LBrace; break;
    case '}': kind = TokenKind::RBrace; break;
    case '[': kind = TokenKind::LBracket; break;
    case ']': kind = TokenKind::RBracket; break;
    case ',': kind = TokenKind::Comma; break;
    case ';': kind = TokenKind::Semicolon; break;
    case ':': kind = TokenKind::Colon; break;
    case '.': kind = TokenKind::Dot; break;
    case '#': kind = TokenKind::Hash; break;
    case '+': kind = TokenKind::Plus; break;
    case '-': kind = TokenKind::Minus; break;
    case '*': kind = TokenKind::Star; break;
    case '/': kind = TokenKind::Slash; break;
    case '%': kind = TokenKind::Percent; break;
    case '^': kind = TokenKind::Caret; break;
    case '~': kind = TokenKind::Tilde; break;
    case '&': kind = two('&', TokenKind::AmpAmp, TokenKind::Amp); break;
    case '|': kind = two('|', TokenKind::PipePipe, TokenKind::Pipe); break;
    case '=': kind = two('=', TokenKind::EqEq, TokenKind::Assign); break;
    case '!': kind = two('=', TokenKind::NotEq, TokenKind::Bang); break;
    case '<':
      if (peek() == '<') {
        advance();
        kind = TokenKind::Shl;
      } else {
        kind = two('=', TokenKind::LessEq, TokenKind::Less);
      }
      break;
    case '>':
      if (peek() == '>') {
        advance();
        kind = TokenKind::Shr;
      } else {
        kind = two('=', TokenKind::GreaterEq, TokenKind::Greater);
      }
      break;
    default:
      diags_.error(loc, std::string("unexpected character '") + c + "'");
      // Resynchronize by skipping the character and lexing the next one.
      skip_trivia();
      if (at_end()) return Token{TokenKind::EndOfFile, "", 0, here()};
      return lex_token();
  }
  return Token{kind, std::string(1, c), 0, loc};
}

Token Lexer::lex_identifier_or_keyword() {
  support::SourceLoc loc = here();
  std::string text;
  while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
    text += advance();
  }
  auto it = keyword_table().find(text);
  if (it != keyword_table().end()) {
    return Token{it->second, std::move(text), 0, loc};
  }
  return Token{TokenKind::Identifier, std::move(text), 0, loc};
}

Token Lexer::lex_number() {
  support::SourceLoc loc = here();
  std::string text;
  std::uint64_t value = 0;
  int base = 10;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    text += advance();
    text += advance();
    base = 16;
  } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
    text += advance();
    text += advance();
    base = 2;
  }
  bool any_digit = false;
  while (!at_end()) {
    char c = peek();
    if (c == '\'') {  // digit separator
      advance();
      continue;
    }
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      break;
    }
    if (digit >= base) {
      if (base == 10 && std::isalpha(static_cast<unsigned char>(c))) break;
      diags_.error(here(), "invalid digit for base");
      advance();
      continue;
    }
    value = value * static_cast<std::uint64_t>(base) +
            static_cast<std::uint64_t>(digit);
    text += advance();
    any_digit = true;
  }
  if (!any_digit) diags_.error(loc, "integer literal has no digits");
  return Token{TokenKind::IntLiteral, std::move(text), value, loc};
}

Token Lexer::lex_char_literal() {
  support::SourceLoc loc = here();
  advance();  // opening quote
  std::uint64_t value = 0;
  std::string text = "'";
  if (at_end()) {
    diags_.error(loc, "unterminated character literal");
    return Token{TokenKind::CharLiteral, text, 0, loc};
  }
  char c = advance();
  text += c;
  if (c == '\\') {
    if (at_end()) {
      diags_.error(loc, "unterminated character literal");
      return Token{TokenKind::CharLiteral, text, 0, loc};
    }
    char esc = advance();
    text += esc;
    switch (esc) {
      case 'n': value = '\n'; break;
      case 't': value = '\t'; break;
      case 'r': value = '\r'; break;
      case '0': value = '\0'; break;
      case '\\': value = '\\'; break;
      case '\'': value = '\''; break;
      default:
        diags_.error(loc, "unknown escape sequence");
        value = static_cast<unsigned char>(esc);
    }
  } else {
    value = static_cast<unsigned char>(c);
  }
  if (!at_end() && peek() == '\'') {
    text += advance();
  } else {
    diags_.error(loc, "unterminated character literal");
  }
  return Token{TokenKind::CharLiteral, std::move(text), value, loc};
}

}  // namespace hicsync::hic
