// Virtex-II Pro block RAM primitive model.
//
// The paper targets the Xilinx Virtex-II Pro family [4]: true dual-ported
// 18 Kbit block SelectRAM. Each of the two physical ports independently
// selects an aspect ratio from 16K×1 up to 512×36 (the wide shapes use the
// parity bits for data, hence ×9/×18/×36).
#pragma once

#include <cstdint>
#include <vector>

namespace hicsync::memalloc {

/// One legal port aspect ratio of an 18 Kbit BRAM.
struct BramShape {
  int width = 0;   // data bits per word
  int depth = 0;   // words

  [[nodiscard]] std::int64_t capacity_bits() const {
    return static_cast<std::int64_t>(width) * depth;
  }
  friend bool operator==(const BramShape&, const BramShape&) = default;
};

class BramModel {
 public:
  /// Raw capacity including parity bits: 18 Kbit.
  static constexpr std::int64_t kTotalBits = 18 * 1024;
  /// Physical ports of one primitive (true dual port).
  static constexpr int kPhysicalPorts = 2;

  /// Legal aspect ratios, narrowest first: 16K×1, 8K×2, 4K×4, 2K×9,
  /// 1K×18, 512×36.
  [[nodiscard]] static const std::vector<BramShape>& legal_shapes();

  /// The narrowest legal shape whose width >= `width`. Widths above 36 are
  /// served by ganging primitives side by side; this returns 512×36 and
  /// `primitives_for` accounts for the extra blocks.
  [[nodiscard]] static BramShape shape_for_width(int width);

  /// Number of physical 18 Kbit primitives needed to hold `words` words of
  /// `width` bits each (ganging in width above 36 and in depth beyond the
  /// shape's depth).
  [[nodiscard]] static int primitives_for(int width, std::int64_t words);
};

}  // namespace hicsync::memalloc
