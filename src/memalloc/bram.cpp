#include "memalloc/bram.h"

#include "support/bits.h"

namespace hicsync::memalloc {

const std::vector<BramShape>& BramModel::legal_shapes() {
  static const std::vector<BramShape> shapes = {
      {1, 16384}, {2, 8192}, {4, 4096}, {9, 2048}, {18, 1024}, {36, 512},
  };
  return shapes;
}

BramShape BramModel::shape_for_width(int width) {
  for (const BramShape& s : legal_shapes()) {
    if (s.width >= width) return s;
  }
  return legal_shapes().back();
}

int BramModel::primitives_for(int width, std::int64_t words) {
  if (width <= 0 || words <= 0) return 0;
  BramShape shape = shape_for_width(width);
  // Gang in width: ceil(width / 36) columns when wider than the widest
  // shape; each column then needs ceil(words / depth) blocks.
  int columns = 1;
  if (width > shape.width) {
    columns = static_cast<int>(
        support::round_up(static_cast<std::uint64_t>(width), 36) / 36);
    shape = BramShape{36, 512};
  }
  std::int64_t rows = (words + shape.depth - 1) / shape.depth;
  return columns * static_cast<int>(rows);
}

}  // namespace hicsync::memalloc
