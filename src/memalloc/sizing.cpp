#include "memalloc/sizing.h"

#include "memalloc/bram.h"

namespace hicsync::memalloc {

bool is_memory_resident(const hic::Symbol& sym) {
  return sym.is_array() || sym.is_shared();
}

std::vector<ThreadSizing> analyze_sizes(const hic::Sema& sema) {
  std::vector<ThreadSizing> out;
  for (const auto& thread : sema.program().threads) {
    ThreadSizing ts;
    ts.thread = thread.name;
    const auto* table = sema.thread_table(thread.name);
    if (table == nullptr) {
      out.push_back(ts);
      continue;
    }
    for (const hic::Symbol* sym : table->symbols()) {
      std::uint64_t bits = sym->storage_bits();
      ts.total_bits += bits;
      if (is_memory_resident(*sym)) {
        ts.memory_bits += bits;
        ++ts.memory_symbols;
        if (sym->is_shared()) ts.shared_bits += bits;
      } else {
        ts.register_bits += bits;
        ++ts.register_symbols;
      }
    }
    out.push_back(ts);
  }
  return out;
}

PrunedBram apply_dep_list_hint(const BramInstance& bram,
                               const BramPortPlan& plan,
                               const DepListHint& hint) {
  PrunedBram out;
  out.bram = bram;
  out.plan = plan;
  if (hint.dead_deps.empty()) return out;

  auto is_dead = [&](const hic::Dependency* d) {
    for (const std::string& id : hint.dead_deps) {
      if (d != nullptr && d->id == id) return true;
    }
    return false;
  };

  auto& deps = out.bram.dependencies;
  for (auto it = deps.begin(); it != deps.end();) {
    if (is_dead(*it)) {
      it = deps.erase(it);
      ++out.removed_deps;
    } else {
      ++it;
    }
  }

  // Drop dead dependencies from each client, then drop C/D clients left
  // with no dependencies, then renumber pseudo-ports densely per logical
  // port (entry consumer_ports/producer_port indices are rebuilt by
  // build_dep_entries from the pruned plan, so density is all that
  // matters).
  auto& clients = out.plan.clients;
  for (PortClient& c : clients) {
    for (auto it = c.deps.begin(); it != c.deps.end();) {
      it = is_dead(*it) ? c.deps.erase(it) : it + 1;
    }
  }
  for (auto it = clients.begin(); it != clients.end();) {
    bool droppable = (it->port == LogicalPort::C || it->port == LogicalPort::D) &&
                     it->deps.empty();
    if (droppable) {
      if (it->port == LogicalPort::C) ++out.removed_consumer_ports;
      if (it->port == LogicalPort::D) ++out.removed_producer_ports;
      it = clients.erase(it);
    } else {
      ++it;
    }
  }
  int next_c = 0;
  int next_d = 0;
  for (PortClient& c : clients) {
    if (c.port == LogicalPort::C) c.pseudo_port = next_c++;
    if (c.port == LogicalPort::D) c.pseudo_port = next_d++;
  }
  return out;
}

int naive_bram_bound(const hic::Sema& sema) {
  int total = 0;
  for (const hic::Symbol* sym : sema.all_symbols()) {
    if (!is_memory_resident(*sym)) continue;
    total += BramModel::primitives_for(
        sym->type()->bit_width(),
        static_cast<std::int64_t>(sym->element_count()));
  }
  return total;
}

}  // namespace hicsync::memalloc
