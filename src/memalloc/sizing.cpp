#include "memalloc/sizing.h"

#include "memalloc/bram.h"

namespace hicsync::memalloc {

bool is_memory_resident(const hic::Symbol& sym) {
  return sym.is_array() || sym.is_shared();
}

std::vector<ThreadSizing> analyze_sizes(const hic::Sema& sema) {
  std::vector<ThreadSizing> out;
  for (const auto& thread : sema.program().threads) {
    ThreadSizing ts;
    ts.thread = thread.name;
    const auto* table = sema.thread_table(thread.name);
    if (table == nullptr) {
      out.push_back(ts);
      continue;
    }
    for (const hic::Symbol* sym : table->symbols()) {
      std::uint64_t bits = sym->storage_bits();
      ts.total_bits += bits;
      if (is_memory_resident(*sym)) {
        ts.memory_bits += bits;
        ++ts.memory_symbols;
        if (sym->is_shared()) ts.shared_bits += bits;
      } else {
        ts.register_bits += bits;
        ++ts.register_symbols;
      }
    }
    out.push_back(ts);
  }
  return out;
}

int naive_bram_bound(const hic::Sema& sema) {
  int total = 0;
  for (const hic::Symbol* sym : sema.all_symbols()) {
    if (!is_memory_resident(*sym)) continue;
    total += BramModel::primitives_for(
        sym->type()->bit_width(),
        static_cast<std::int64_t>(sym->element_count()));
  }
  return total;
}

}  // namespace hicsync::memalloc
