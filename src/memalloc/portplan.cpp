#include "memalloc/portplan.h"

#include <algorithm>

namespace hicsync::memalloc {

const char* to_string(LogicalPort p) {
  switch (p) {
    case LogicalPort::A: return "A";
    case LogicalPort::B: return "B";
    case LogicalPort::C: return "C";
    case LogicalPort::D: return "D";
  }
  return "?";
}

int BramPortPlan::consumer_pseudo_ports() const {
  int n = 0;
  for (const auto& c : clients) {
    if (c.port == LogicalPort::C) ++n;
  }
  return n;
}

int BramPortPlan::producer_pseudo_ports() const {
  int n = 0;
  for (const auto& c : clients) {
    if (c.port == LogicalPort::D) ++n;
  }
  return n;
}

const PortClient* BramPortPlan::client_for(const std::string& thread,
                                           LogicalPort port) const {
  for (const auto& c : clients) {
    if (c.thread == thread && c.port == port) return &c;
  }
  return nullptr;
}

std::vector<BramPortPlan> PortPlanner::plan(
    const hic::Sema& sema, const MemoryMap& map,
    const std::vector<synth::ThreadFsm>& fsms) {
  std::vector<BramPortPlan> plans;
  for (const BramInstance& bram : map.brams()) {
    BramPortPlan plan;
    plan.bram_id = bram.id;

    // Producers on port D, consumers on port C — one pseudo-port per thread,
    // in dependency order (the #consumer pragma order fixes the static
    // schedule, so keep it deterministic).
    auto add_client = [&](const std::string& thread, LogicalPort port,
                          const hic::Dependency* dep) {
      for (auto& c : plan.clients) {
        if (c.thread == thread && c.port == port) {
          if (dep != nullptr &&
              std::find(c.deps.begin(), c.deps.end(), dep) == c.deps.end()) {
            c.deps.push_back(dep);
          }
          return;
        }
      }
      PortClient c;
      c.thread = thread;
      c.port = port;
      int count = 0;
      for (const auto& existing : plan.clients) {
        if (existing.port == port) ++count;
      }
      c.pseudo_port = count;
      if (dep != nullptr) c.deps.push_back(dep);
      plan.clients.push_back(std::move(c));
    };

    for (const hic::Dependency* dep : bram.dependencies) {
      add_client(dep->producer_thread, LogicalPort::D, dep);
      for (const auto& consumer : dep->consumers) {
        add_client(consumer.thread, LogicalPort::C, dep);
      }
    }

    // Plain accesses to symbols living in this BRAM → port A clients.
    for (const synth::ThreadFsm& fsm : fsms) {
      bool plain_access = false;
      for (const synth::FsmState& s : fsm.states()) {
        for (const synth::StateAccess& a : s.accesses) {
          if (a.role != synth::AccessRole::Plain) continue;
          auto loc = map.locate(a.symbol);
          if (loc.bram != nullptr && loc.bram->id == bram.id) {
            plain_access = true;
          }
        }
      }
      if (plain_access) {
        add_client(fsm.thread_name(), LogicalPort::A, nullptr);
      }
    }

    plans.push_back(std::move(plan));
  }
  (void)sema;
  return plans;
}

}  // namespace hicsync::memalloc
