// Memory size analysis.
//
// §3: "the memory allocation process takes into account available physical
// memory size (eg: BRAM size of 18 Kb) and number of ports (eg: dual ports
// on each BRAM)" and is driven by "memory size analysis and a partial order
// of operations." This module computes per-thread storage requirements,
// splitting register candidates from memory-resident data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hic/sema.h"

namespace hicsync::memalloc {

/// Storage requirement of one thread.
struct ThreadSizing {
  std::string thread;
  std::uint64_t total_bits = 0;        // sum of all declared storage
  std::uint64_t register_bits = 0;     // scalars private to the thread
  std::uint64_t memory_bits = 0;       // arrays + shared variables
  std::uint64_t shared_bits = 0;       // subset of memory: shared variables
  int memory_symbols = 0;
  int register_symbols = 0;
};

/// Whether a symbol is memory-resident (BRAM) rather than a register:
/// arrays always; scalars when they participate in an inter-thread
/// dependency (the producer's value must be observable by other threads).
[[nodiscard]] bool is_memory_resident(const hic::Symbol& sym);

/// Sizing of every thread in the program.
[[nodiscard]] std::vector<ThreadSizing> analyze_sizes(const hic::Sema& sema);

/// Total BRAM primitives a naive one-symbol-per-BRAM mapping would use —
/// the upper bound the allocator must beat.
[[nodiscard]] int naive_bram_bound(const hic::Sema& sema);

}  // namespace hicsync::memalloc
