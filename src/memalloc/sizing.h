// Memory size analysis.
//
// §3: "the memory allocation process takes into account available physical
// memory size (eg: BRAM size of 18 Kb) and number of ports (eg: dual ports
// on each BRAM)" and is driven by "memory size analysis and a partial order
// of operations." This module computes per-thread storage requirements,
// splitting register candidates from memory-resident data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hic/sema.h"
#include "memalloc/allocator.h"
#include "memalloc/portplan.h"

namespace hicsync::memalloc {

/// Storage requirement of one thread.
struct ThreadSizing {
  std::string thread;
  std::uint64_t total_bits = 0;        // sum of all declared storage
  std::uint64_t register_bits = 0;     // scalars private to the thread
  std::uint64_t memory_bits = 0;       // arrays + shared variables
  std::uint64_t shared_bits = 0;       // subset of memory: shared variables
  int memory_symbols = 0;
  int register_symbols = 0;
};

/// Whether a symbol is memory-resident (BRAM) rather than a register:
/// arrays always; scalars when they participate in an inter-thread
/// dependency (the producer's value must be observable by other threads).
[[nodiscard]] bool is_memory_resident(const hic::Symbol& sym);

/// Sizing of every thread in the program.
[[nodiscard]] std::vector<ThreadSizing> analyze_sizes(const hic::Sema& sema);

/// Total BRAM primitives a naive one-symbol-per-BRAM mapping would use —
/// the upper bound the allocator must beat.
[[nodiscard]] int naive_bram_bound(const hic::Sema& sema);

/// Machine-readable sizing hint for one BRAM's dependency list, produced
/// by hic-bound's occupancy analysis and consumed here: `occupancy_hi` is
/// a *sound* static upper bound on simultaneously open dependency-list
/// entries, and `dead_deps` names the dependencies whose produce *and*
/// every consume are unreachable — their CAM entries (and, event-driven,
/// schedule slots) are dead weight the generators can drop.
struct DepListHint {
  int bram_id = -1;
  /// Entries memalloc would bake in without the hint (= |dependencies|).
  int capacity = 0;
  /// Static upper bound on entries simultaneously open (countdown > 0).
  int occupancy_hi = 0;
  /// Dependencies with no reachable produce or consume site; safe to drop
  /// from the dependency list entirely.
  std::vector<std::string> dead_deps;

  [[nodiscard]] bool shrinks() const {
    return occupancy_hi < capacity || !dead_deps.empty();
  }
};

/// A BRAM + port plan with a DepListHint applied: fully-dead dependencies
/// are removed from the dependency list, and C/D pseudo-ports that served
/// only removed dependencies are dropped (surviving pseudo-ports are
/// renumbered densely so the generators' port indices stay contiguous).
struct PrunedBram {
  BramInstance bram;
  BramPortPlan plan;
  int removed_deps = 0;
  int removed_consumer_ports = 0;
  int removed_producer_ports = 0;
};

/// Applies `hint` to (`bram`, `plan`). Only the hint's `dead_deps` are
/// removed — a dependency with unreachable produce but reachable consumes
/// keeps its entry, so the consumer's guard still blocks exactly as the
/// unpruned controller would.
[[nodiscard]] PrunedBram apply_dep_list_hint(const BramInstance& bram,
                                             const BramPortPlan& plan,
                                             const DepListHint& hint);

}  // namespace hicsync::memalloc
