// Variable → BRAM allocation.
//
// Produces the memory map the organization generators consume: which BRAM
// instance holds each memory-resident variable and at which base address
// (the "base address of the data structure in BRAM" stored in the §3.1
// dependency list).
//
// Policy (mirrors the paper's experiments): variables connected by a
// dependency — the shared variable plus anything else its thread group
// touches in memory — are co-located so one BRAM serves one producer/
// consumer cluster; remaining memory-resident variables are first-fit
// packed. Plain scalars stay in registers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hic/sema.h"
#include "memalloc/bram.h"

namespace hicsync::memalloc {

/// One variable placed in a BRAM.
struct Placement {
  hic::Symbol* symbol = nullptr;
  std::uint32_t base_address = 0;  // word address
  std::uint32_t words = 0;
};

/// One allocated BRAM instance (possibly ganged from several primitives).
struct BramInstance {
  int id = -1;
  BramShape shape;           // per-port shape used by the controller
  int primitives = 1;        // physical 18 Kbit blocks ganged together
  std::vector<Placement> placements;
  /// Dependencies whose shared variable lives here (drives the §3.1
  /// dependency list and the §3.2 select logic of this BRAM's controller).
  std::vector<const hic::Dependency*> dependencies;

  [[nodiscard]] std::uint32_t words_used() const;
  [[nodiscard]] const Placement* find(const hic::Symbol* sym) const;
};

/// The full memory map of a program.
class MemoryMap {
 public:
  [[nodiscard]] const std::vector<BramInstance>& brams() const {
    return brams_;
  }
  [[nodiscard]] const std::vector<hic::Symbol*>& registers() const {
    return registers_;
  }

  /// BRAM + placement of a symbol; {nullptr, nullptr} for registers.
  struct Location {
    const BramInstance* bram = nullptr;
    const Placement* placement = nullptr;
  };
  [[nodiscard]] Location locate(const hic::Symbol* sym) const;

  /// Total physical 18 Kbit primitives used.
  [[nodiscard]] int total_primitives() const;

  [[nodiscard]] std::string str() const;

  /// Rebuilds a map from already-decided parts — the hic-rt artifact
  /// loader's entry point (docs/RUNTIME.md). `brams` must carry their
  /// placements/dependencies resolved against the *current* Sema; the
  /// symbol index is reconstructed here. The allocator's policy is not
  /// re-run: the artifact's placement decisions are authoritative.
  [[nodiscard]] static MemoryMap restore(std::vector<BramInstance> brams,
                                         std::vector<hic::Symbol*> registers);

  friend class Allocator;

 private:
  std::vector<BramInstance> brams_;
  std::vector<hic::Symbol*> registers_;
  std::map<const hic::Symbol*, std::pair<int, int>> index_;  // bram, slot
};

struct AllocatorOptions {
  /// Word width used when a BRAM hosts mixed-width variables; the widest
  /// variable decides, clamped to a legal shape.
  bool pack_unrelated = true;  // pack non-dependency memory into shared BRAMs
};

class Allocator {
 public:
  explicit Allocator(AllocatorOptions options = {}) : options_(options) {}

  /// Allocates every memory-resident symbol of the program.
  [[nodiscard]] MemoryMap allocate(const hic::Sema& sema) const;

 private:
  AllocatorOptions options_;
};

}  // namespace hicsync::memalloc
