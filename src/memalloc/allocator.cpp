#include "memalloc/allocator.h"

#include <algorithm>

#include "memalloc/sizing.h"
#include "support/strings.h"

namespace hicsync::memalloc {

std::uint32_t BramInstance::words_used() const {
  std::uint32_t used = 0;
  for (const Placement& p : placements) {
    used = std::max(used, p.base_address + p.words);
  }
  return used;
}

const Placement* BramInstance::find(const hic::Symbol* sym) const {
  for (const Placement& p : placements) {
    if (p.symbol == sym) return &p;
  }
  return nullptr;
}

MemoryMap::Location MemoryMap::locate(const hic::Symbol* sym) const {
  auto it = index_.find(sym);
  if (it == index_.end()) return {};
  const BramInstance& b = brams_[static_cast<std::size_t>(it->second.first)];
  return Location{&b, &b.placements[static_cast<std::size_t>(it->second.second)]};
}

MemoryMap MemoryMap::restore(std::vector<BramInstance> brams,
                             std::vector<hic::Symbol*> registers) {
  MemoryMap map;
  map.brams_ = std::move(brams);
  map.registers_ = std::move(registers);
  for (std::size_t bi = 0; bi < map.brams_.size(); ++bi) {
    const BramInstance& b = map.brams_[bi];
    for (std::size_t pi = 0; pi < b.placements.size(); ++pi) {
      map.index_[b.placements[pi].symbol] = {static_cast<int>(bi),
                                             static_cast<int>(pi)};
    }
  }
  return map;
}

int MemoryMap::total_primitives() const {
  int total = 0;
  for (const BramInstance& b : brams_) total += b.primitives;
  return total;
}

std::string MemoryMap::str() const {
  std::string out;
  for (const BramInstance& b : brams_) {
    out += support::format("bram%d %dx%d (%d primitive%s)\n", b.id,
                           b.shape.depth, b.shape.width, b.primitives,
                           b.primitives == 1 ? "" : "s");
    for (const Placement& p : b.placements) {
      out += support::format("  @%u..%u %s\n", p.base_address,
                             p.base_address + p.words - 1,
                             p.symbol->qualified_name().c_str());
    }
    for (const auto* dep : b.dependencies) {
      out += "  dependency " + dep->id + "\n";
    }
  }
  out += "registers:";
  for (const hic::Symbol* r : registers_) {
    out += " " + r->qualified_name();
  }
  out += '\n';
  return out;
}

namespace {

/// Words a symbol occupies at the given word width.
std::uint32_t words_for(const hic::Symbol& sym, int word_width) {
  std::uint64_t per_element =
      (static_cast<std::uint64_t>(sym.type()->bit_width()) +
       static_cast<std::uint64_t>(word_width) - 1) /
      static_cast<std::uint64_t>(word_width);
  if (per_element == 0) per_element = 1;
  return static_cast<std::uint32_t>(per_element * sym.element_count());
}

void place(BramInstance& bram, hic::Symbol* sym) {
  Placement p;
  p.symbol = sym;
  p.base_address = bram.words_used();
  p.words = words_for(*sym, bram.shape.width);
  bram.placements.push_back(p);
}

}  // namespace

MemoryMap Allocator::allocate(const hic::Sema& sema) const {
  MemoryMap map;

  // Partition symbols.
  std::vector<hic::Symbol*> memory_syms;
  for (hic::Symbol* sym : sema.all_symbols()) {
    if (is_memory_resident(*sym)) {
      memory_syms.push_back(sym);
    } else {
      map.registers_.push_back(sym);
    }
  }

  // Group dependencies by shared variable clusters: dependencies whose
  // shared variables are produced by the same thread share one BRAM (the
  // paper's scenarios: one BRAM, one producer, N consumers). Order is
  // load-bearing: Sema delivers dependencies in the producer's program
  // order, and the event-driven modulo schedule follows it — so keep that
  // order for both cluster variables and the per-BRAM dependency list.
  std::vector<std::string> cluster_order;  // producing threads, first-seen
  std::map<std::string, std::vector<const hic::Symbol*>> cluster_vars;
  for (const hic::Dependency& dep : sema.dependencies()) {
    const std::string& thread = dep.shared_var->thread();
    auto& vars = cluster_vars[thread];
    if (vars.empty()) cluster_order.push_back(thread);
    if (std::find(vars.begin(), vars.end(), dep.shared_var) == vars.end()) {
      vars.push_back(dep.shared_var);
    }
  }

  auto new_bram = [&](int width) -> BramInstance& {
    BramInstance b;
    b.id = static_cast<int>(map.brams_.size());
    b.shape = BramModel::shape_for_width(width);
    map.brams_.push_back(std::move(b));
    return map.brams_.back();
  };

  std::vector<char> placed(memory_syms.size(), 0);
  auto index_of = [&](const hic::Symbol* s) -> int {
    for (std::size_t i = 0; i < memory_syms.size(); ++i) {
      if (memory_syms[i] == s) return static_cast<int>(i);
    }
    return -1;
  };

  // One BRAM per producing-thread cluster, in first-seen producer order.
  for (const std::string& thread : cluster_order) {
    const auto& vars = cluster_vars[thread];
    int width = 0;
    for (const hic::Symbol* s : vars) {
      width = std::max(width, s->type()->bit_width());
    }
    BramInstance& bram = new_bram(width);
    for (const hic::Symbol* s : vars) {
      int idx = index_of(s);
      if (idx < 0) continue;
      place(bram, memory_syms[static_cast<std::size_t>(idx)]);
      placed[static_cast<std::size_t>(idx)] = 1;
    }
    // Dependency order inside the BRAM = Sema's program order.
    for (const hic::Dependency& dep : sema.dependencies()) {
      if (dep.shared_var->thread() == thread) {
        bram.dependencies.push_back(&dep);
      }
    }
  }

  // Remaining memory-resident symbols (arrays, non-shared): first fit.
  for (std::size_t i = 0; i < memory_syms.size(); ++i) {
    if (placed[i]) continue;
    hic::Symbol* sym = memory_syms[i];
    bool done = false;
    if (options_.pack_unrelated) {
      for (BramInstance& b : map.brams_) {
        if (sym->type()->bit_width() > b.shape.width) continue;
        std::uint32_t need = words_for(*sym, b.shape.width);
        if (b.words_used() + need <=
            static_cast<std::uint32_t>(b.shape.depth) *
                static_cast<std::uint32_t>(b.primitives)) {
          place(b, sym);
          done = true;
          break;
        }
      }
    }
    if (!done) {
      BramInstance& b = new_bram(sym->type()->bit_width());
      place(b, sym);
      // Deep arrays may need several ganged primitives.
      b.primitives = std::max(
          1, BramModel::primitives_for(
                 b.shape.width,
                 static_cast<std::int64_t>(words_for(*sym, b.shape.width))));
    }
  }

  // Build the index.
  for (std::size_t bi = 0; bi < map.brams_.size(); ++bi) {
    const BramInstance& b = map.brams_[bi];
    for (std::size_t pi = 0; pi < b.placements.size(); ++pi) {
      map.index_[b.placements[pi].symbol] = {static_cast<int>(bi),
                                             static_cast<int>(pi)};
    }
  }
  return map;
}

}  // namespace hicsync::memalloc
