// Port assignment per the §3.1 use model.
//
// For every allocated BRAM the wrapper exposes four logical ports:
//   A — all single-cycle non-dependent accesses (direct to the BRAM);
//   B — spare, for accesses independent of C/D (unused in the paper's
//       experiments, lowest priority);
//   C — guarded consumer reads, arbitrated among consumer pseudo-ports;
//   D — producer writes, arbitrated, highest priority.
// This module decides which thread attaches where, and numbers the
// pseudo-ports whose count Tables 1 and 2 sweep.
#pragma once

#include <string>
#include <vector>

#include "memalloc/allocator.h"
#include "synth/fsm.h"

namespace hicsync::memalloc {

enum class LogicalPort { A, B, C, D };

[[nodiscard]] const char* to_string(LogicalPort p);

struct PortClient {
  std::string thread;
  LogicalPort port = LogicalPort::A;
  /// Index among the pseudo-ports multiplexed onto this logical port
  /// (0-based; meaningful for C and D).
  int pseudo_port = 0;
  /// Dependencies this client participates in through this port
  /// (C: consumes, D: produces; empty for A/B).
  std::vector<const hic::Dependency*> deps;
};

struct BramPortPlan {
  int bram_id = -1;
  std::vector<PortClient> clients;

  [[nodiscard]] int consumer_pseudo_ports() const;
  [[nodiscard]] int producer_pseudo_ports() const;
  [[nodiscard]] const PortClient* client_for(const std::string& thread,
                                             LogicalPort port) const;
};

class PortPlanner {
 public:
  /// Plans ports for every BRAM. `fsms` supply the access roles; a thread
  /// whose FSM performs a Plain access to a symbol in a BRAM becomes an A
  /// client of that BRAM.
  [[nodiscard]] static std::vector<BramPortPlan> plan(
      const hic::Sema& sema, const MemoryMap& map,
      const std::vector<synth::ThreadFsm>& fsms);
};

}  // namespace hicsync::memalloc
