// hic-trace probe over a generated memory-organization netlist.
//
// Samples the controller's per-cycle outputs (grant lines, the event-driven
// selection slot) from its rtl::ModuleSim after the combinational settle
// and publishes controller-side events (ArbWin per granted pseudo-port,
// SlotAdvance on slot changes) onto a TraceBus. This is the authoritative
// "who won the port this cycle" record: it reads the same signals the
// emitted Verilog exposes, independent of the thread-side bookkeeping.
#pragma once

#include "rtl/eval.h"
#include "trace/bus.h"

namespace hicsync::memorg {

struct ProbeConfig {
  int controller = -1;        // BRAM id stamped onto events
  bool event_driven = false;  // selects d_grant vs p_grant + slot sampling
  int num_consumers = 0;
  int num_producers = 0;
};

class ControllerProbe {
 public:
  explicit ControllerProbe(ProbeConfig config) : config_(config) {}

  /// Call once per cycle after the netlist settled, before the clock edge.
  void sample(const rtl::ModuleSim& sim, std::uint64_t cycle,
              trace::TraceBus& bus);

  /// Forgets sampled history (the remembered slot), so a recycled
  /// simulation re-reports the initial SlotAdvance (SystemSim::reset).
  void reset() { last_slot_ = -1; }

 private:
  ProbeConfig config_;
  std::int64_t last_slot_ = -1;
};

}  // namespace hicsync::memorg
