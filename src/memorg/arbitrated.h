// Arbitrated memory organization (§3.1, Fig. 2).
//
// A wrapper around one dual-ported BRAM exposing four logical ports:
//   A — direct access to physical port 0 (single-cycle, non-dependent);
//   B — spare access to physical port 1, lowest priority, "allowed as long
//       as there are no current requests on port C or D";
//   C — guarded consumer reads; N pseudo-ports share the port through a
//       round-robin arbiter; a read is eligible only when the CAM-matched
//       dependency-list entry has a countdown greater than zero;
//   D — producer writes, highest priority; a write is eligible when the
//       matched entry's countdown is zero (the previous produce-consume
//       cycle completed — this enforces the §3.1 guard that an address
//       stays guarded until all dependent reads have happened), and it
//       reloads the countdown with the entry's dependency number.
//
// Flip-flop inventory is fixed by `max_consumers` (pointer/grant-id
// registers sized for the maximum), so adding pseudo-ports "does not
// contribute to the flip-flop count but only to the LUT count" exactly as
// Table 1's prose states. Timing on port C is non-deterministic: the
// round-robin arbiter decides the delay after the producer's write.
//
// Generated port names (i = pseudo-port index):
//   clk, rst
//   a_en, a_we, a_addr, a_wdata  ->  a_rdata (registered)
//   b_en, b_we, b_addr, b_wdata  ->  b_grant, b_valid, bus_rdata
//   c_req<i>, c_addr<i>          ->  c_grant<i>, c_valid<i>, bus_rdata
//   d_req<j>, d_addr<j>, d_wdata<j> -> d_grant<j>
#pragma once

#include <string>

#include "memorg/deplist.h"
#include "rtl/netlist.h"

namespace hicsync::memorg {

struct ArbitratedConfig {
  int addr_width = 9;
  int data_width = 32;
  int num_consumers = 2;  // pseudo-ports on C
  int num_producers = 1;  // pseudo-ports on D
  std::vector<DepEntry> deps;
  /// Baseline sizing: pointer and grant-id registers are dimensioned for
  /// this many consumers so the FF count stays constant across scenarios.
  int max_consumers = 8;
  /// Parallel CAM comparisons over the dependency list (the paper's
  /// choice). When false, a serial scan shares one comparator per
  /// pseudo-port across entries: fewer LUTs, up to |deps| extra cycles of
  /// lookup latency (ablation for bench_deplist_scaling).
  bool use_cam = true;
  /// Round-robin arbitration on ports C and D (the paper implements "a
  /// simple round robin arbitration scheme"). When false, fixed priority
  /// (pseudo-port 0 highest) — the fairness ablation of
  /// bench_latency_determinism.
  bool round_robin = true;
  bool enable_port_b = true;
};

/// Generates the wrapper module into `design` and returns it. The module is
/// flat (no instances) so it can run under rtl::ModuleSim.
rtl::Module& generate_arbitrated(rtl::Design& design,
                                 const ArbitratedConfig& config,
                                 const std::string& name);

/// Derives a config from an allocated BRAM and its port plan.
[[nodiscard]] ArbitratedConfig arbitrated_config_from(
    const memalloc::BramInstance& bram, const memalloc::BramPortPlan& plan);

}  // namespace hicsync::memorg
