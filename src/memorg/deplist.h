// The dependency list of §3.1.
//
// "Each entry in the list has two parts. The first part contains a
// dependency number, which is the number of threads that are dependent on
// this producer. ... The second part of the entry is the base address of
// the data structure in BRAM." Entries are determined at design time by
// static analysis and populated at configuration time — our generators bake
// them in as constants; only the per-entry countdown counter is dynamic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memalloc/allocator.h"
#include "memalloc/portplan.h"

namespace hicsync::memorg {

struct DepEntry {
  std::string id;               // dependency id (e.g. "mt1")
  std::uint32_t base_address = 0;
  int dependency_number = 0;    // number of consumer threads
  int producer_port = 0;        // pseudo-port index on port D
  std::vector<int> consumer_ports;  // pseudo-port indices on port C, in
                                    // static (pragma) order
};

/// Builds the dependency-list entries of one BRAM from its allocation and
/// port plan. Entry order follows the BRAM's dependency order.
[[nodiscard]] std::vector<DepEntry> build_dep_entries(
    const memalloc::BramInstance& bram, const memalloc::BramPortPlan& plan);

/// Bits needed for the per-entry countdown counter (fits the largest
/// dependency number, at least 1 bit).
[[nodiscard]] int counter_width(const std::vector<DepEntry>& entries);

/// Length of the §3.2 modulo schedule over these entries: one producer
/// slot plus one slot per consumer, per dependency. Shared by the
/// event-driven generator and the coverage model's slot bins.
[[nodiscard]] int total_slots(const std::vector<DepEntry>& entries);

}  // namespace hicsync::memorg
