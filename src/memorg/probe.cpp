#include "memorg/probe.h"

namespace hicsync::memorg {

void ControllerProbe::sample(const rtl::ModuleSim& sim, std::uint64_t cycle,
                             trace::TraceBus& bus) {
  trace::Event e;
  e.cycle = cycle;
  e.controller = config_.controller;
  e.kind = trace::EventKind::ArbWin;

  for (int i = 0; i < config_.num_consumers; ++i) {
    // Arbitrated controllers grant reads explicitly; the event-driven
    // schedule accepts a read when the consumer's slot is selected
    // (ev_c<i>) while its request is up.
    const std::string idx = std::to_string(i);
    const bool won = config_.event_driven
                         ? sim.get("ev_c" + idx) != 0 &&
                               sim.get("c_req" + idx) != 0
                         : sim.get("c_grant" + idx) != 0;
    if (won) {
      e.port = trace::PortKind::C;
      e.pseudo_port = i;
      bus.emit(e);
    }
  }
  const char* producer_grant = config_.event_driven ? "p_grant" : "d_grant";
  for (int j = 0; j < config_.num_producers; ++j) {
    if (sim.get(producer_grant + std::to_string(j)) != 0) {
      e.port = trace::PortKind::D;
      e.pseudo_port = j;
      bus.emit(e);
    }
  }

  if (config_.event_driven) {
    auto slot = static_cast<std::int64_t>(sim.get("slot"));
    if (slot != last_slot_) {
      last_slot_ = slot;
      trace::Event se;
      se.cycle = cycle;
      se.controller = config_.controller;
      se.kind = trace::EventKind::SlotAdvance;
      se.value = slot;
      bus.emit(se);
    }
  }
}

}  // namespace hicsync::memorg
