#include "memorg/deplist.h"

#include "support/bits.h"

namespace hicsync::memorg {

std::vector<DepEntry> build_dep_entries(
    const memalloc::BramInstance& bram, const memalloc::BramPortPlan& plan) {
  std::vector<DepEntry> entries;
  for (const hic::Dependency* dep : bram.dependencies) {
    DepEntry e;
    e.id = dep->id;
    const memalloc::Placement* p = bram.find(dep->shared_var);
    e.base_address = p != nullptr ? p->base_address : 0;
    e.dependency_number = dep->dependency_number();
    const memalloc::PortClient* prod =
        plan.client_for(dep->producer_thread, memalloc::LogicalPort::D);
    e.producer_port = prod != nullptr ? prod->pseudo_port : 0;
    for (const hic::DepConsumer& c : dep->consumers) {
      const memalloc::PortClient* client =
          plan.client_for(c.thread, memalloc::LogicalPort::C);
      if (client != nullptr) e.consumer_ports.push_back(client->pseudo_port);
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

int total_slots(const std::vector<DepEntry>& entries) {
  int n = 0;
  for (const DepEntry& e : entries) {
    n += 1 + static_cast<int>(e.consumer_ports.size());
  }
  return n;
}

int counter_width(const std::vector<DepEntry>& entries) {
  int max_n = 1;
  for (const DepEntry& e : entries) {
    if (e.dependency_number > max_n) max_n = e.dependency_number;
  }
  return support::clog2_at_least1(static_cast<std::uint64_t>(max_n) + 1);
}

}  // namespace hicsync::memorg
