// Event-driven statically scheduled memory organization (§3.2, Fig. 3).
//
// Physical port 0 serves port A (generic single-cycle accesses). Physical
// port 1 sits behind a mux ('c' in Fig. 3) / demux ('a') network driven by
// selection logic that modulo-schedules the producer-consumer traffic at
// two levels: across dependencies (producers), and across the consumers of
// the dependency whose producer just wrote.
//
// Slot sequence per dependency d: one producer-write slot, then one slot per
// consumer in the compile-time (#consumer pragma) order. The selection
// logic blocks in each slot until the slot's owner raises its request —
// "the write by a producer is treated as an event by the consumers" — then
// advances. The slot number is exported; consumer threads treat
// `ev_c<i>` (their slot being selected) as the event that releases their
// read. Post-write latency is deterministic: consumer k of a dependency
// reads exactly k+1 accepted slots after the write.
//
// Generated port names:
//   clk, rst
//   a_en, a_we, a_addr, a_wdata -> a_rdata
//   p_req<j>, p_addr<j>, p_wdata<j> -> p_grant<j>, ev_p<j>
//   c_req<i>, c_addr<i>            -> ev_c<i>, c_valid<i>, bus_rdata
//   slot (selection-logic state, exported as the event value)
#pragma once

#include <string>

#include "memorg/deplist.h"
#include "rtl/netlist.h"

namespace hicsync::memorg {

struct EventDrivenConfig {
  int addr_width = 9;
  int data_width = 32;
  int num_consumers = 2;
  int num_producers = 1;
  std::vector<DepEntry> deps;
  /// Baseline sizing: the slot/prev-slot registers are dimensioned for this
  /// many slots so the FF count stays constant across consumer counts.
  int max_slots = 16;
};

rtl::Module& generate_eventdriven(rtl::Design& design,
                                  const EventDrivenConfig& config,
                                  const std::string& name);

[[nodiscard]] EventDrivenConfig eventdriven_config_from(
    const memalloc::BramInstance& bram, const memalloc::BramPortPlan& plan);

/// Total slot count of a config (producer + consumer slots of every dep).
[[nodiscard]] int total_slots(const EventDrivenConfig& config);

}  // namespace hicsync::memorg
