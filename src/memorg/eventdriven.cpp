#include "memorg/eventdriven.h"

#include <algorithm>

#include "rtl/builder.h"
#include "support/bits.h"

namespace hicsync::memorg {

using rtl::ebin;
using rtl::econst;
using rtl::emux;
using rtl::enot;
using rtl::eref;
using rtl::RtlExprPtr;
using rtl::RtlOp;

int total_slots(const EventDrivenConfig& cfg) { return total_slots(cfg.deps); }

rtl::Module& generate_eventdriven(rtl::Design& design,
                                  const EventDrivenConfig& cfg,
                                  const std::string& name) {
  rtl::Module& m = design.add_module(name);
  const int aw = cfg.addr_width;
  const int dw = cfg.data_width;
  const int nc = cfg.num_consumers;
  const int np = cfg.num_producers;
  const int nslots = std::max(1, total_slots(cfg));
  const int sw = support::clog2_at_least1(
      static_cast<std::uint64_t>(std::max(nslots, cfg.max_slots)));

  (void)m.clk();
  (void)m.rst();

  // ---- Port A: direct. ----
  int a_en = m.add_input("a_en", 1);
  int a_we = m.add_input("a_we", 1);
  int a_addr = m.add_input("a_addr", aw);
  int a_wdata = m.add_input("a_wdata", dw);
  int a_rdata = m.add_output_reg("a_rdata", dw);

  // ---- Producer ports. ----
  std::vector<int> p_req(static_cast<std::size_t>(np));
  std::vector<int> p_addr(static_cast<std::size_t>(np));
  std::vector<int> p_wdata(static_cast<std::size_t>(np));
  std::vector<int> p_grant(static_cast<std::size_t>(np));
  std::vector<int> ev_p(static_cast<std::size_t>(np));
  for (int j = 0; j < np; ++j) {
    p_req[static_cast<std::size_t>(j)] =
        m.add_input("p_req" + std::to_string(j), 1);
    p_addr[static_cast<std::size_t>(j)] =
        m.add_input("p_addr" + std::to_string(j), aw);
    p_wdata[static_cast<std::size_t>(j)] =
        m.add_input("p_wdata" + std::to_string(j), dw);
    p_grant[static_cast<std::size_t>(j)] =
        m.add_output("p_grant" + std::to_string(j), 1);
    ev_p[static_cast<std::size_t>(j)] =
        m.add_output("ev_p" + std::to_string(j), 1);
  }

  // ---- Consumer ports. ----
  std::vector<int> c_req(static_cast<std::size_t>(nc));
  std::vector<int> c_addr(static_cast<std::size_t>(nc));
  std::vector<int> ev_c(static_cast<std::size_t>(nc));
  std::vector<int> c_valid(static_cast<std::size_t>(nc));
  for (int i = 0; i < nc; ++i) {
    c_req[static_cast<std::size_t>(i)] =
        m.add_input("c_req" + std::to_string(i), 1);
    c_addr[static_cast<std::size_t>(i)] =
        m.add_input("c_addr" + std::to_string(i), aw);
    ev_c[static_cast<std::size_t>(i)] =
        m.add_output("ev_c" + std::to_string(i), 1);
    c_valid[static_cast<std::size_t>(i)] =
        m.add_output("c_valid" + std::to_string(i), 1);
  }
  int bus_rdata = m.add_output_reg("bus_rdata", dw);

  // ---- Selection logic state. ----
  int slot = m.add_output_reg("slot", sw);
  int prev_slot = m.add_reg("prev_slot", sw);
  int advance_valid = m.add_reg("advance_valid", 1);

  // Slot table: owner of each slot, and successor.
  struct SlotInfo {
    bool is_producer = false;
    int port = 0;  // pseudo-port index on the owning side
  };
  std::vector<SlotInfo> slots;
  for (const DepEntry& d : cfg.deps) {
    slots.push_back(SlotInfo{true, d.producer_port});
    for (int cp : d.consumer_ports) {
      slots.push_back(SlotInfo{false, cp});
    }
  }
  if (slots.empty()) slots.push_back(SlotInfo{true, 0});

  // One-hot decode of the slot register (shared by events, fire logic, and
  // the mux network).
  std::vector<int> slot_onehot(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    int w = m.add_wire("slot_is" + std::to_string(s), 1);
    m.assign(w, ebin(RtlOp::Eq, eref(slot, sw),
                     econst(static_cast<std::uint64_t>(s), sw)));
    slot_onehot[s] = w;
  }
  auto slot_is = [&](int s) {
    return eref(slot_onehot[static_cast<std::size_t>(s)], 1);
  };

  // Per-slot "owner fired" condition.
  std::vector<int> fire(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    int w = m.add_wire("fire_s" + std::to_string(s), 1);
    int owner_req = slots[s].is_producer
                        ? p_req[static_cast<std::size_t>(slots[s].port)]
                        : c_req[static_cast<std::size_t>(slots[s].port)];
    m.assign(w, ebin(RtlOp::And, slot_is(static_cast<int>(s)),
                     eref(owner_req, 1)));
    fire[s] = w;
  }

  // Events: slot ownership exported to the threads.
  for (int j = 0; j < np; ++j) {
    RtlExprPtr any;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].is_producer || slots[s].port != j) continue;
      RtlExprPtr term = slot_is(static_cast<int>(s));
      any = any == nullptr
                ? std::move(term)
                : ebin(RtlOp::Or, std::move(any), std::move(term));
    }
    if (any == nullptr) any = econst(0, 1);
    m.assign(ev_p[static_cast<std::size_t>(j)], std::move(any));
    m.assign(p_grant[static_cast<std::size_t>(j)],
             [&]() -> RtlExprPtr {
               RtlExprPtr g;
               for (std::size_t s = 0; s < slots.size(); ++s) {
                 if (!slots[s].is_producer || slots[s].port != j) continue;
                 RtlExprPtr term = eref(fire[s], 1);
                 g = g == nullptr
                         ? std::move(term)
                         : ebin(RtlOp::Or, std::move(g), std::move(term));
               }
               return g != nullptr ? std::move(g) : econst(0, 1);
             }());
  }
  for (int i = 0; i < nc; ++i) {
    RtlExprPtr any;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].is_producer || slots[s].port != i) continue;
      RtlExprPtr term = slot_is(static_cast<int>(s));
      any = any == nullptr
                ? std::move(term)
                : ebin(RtlOp::Or, std::move(any), std::move(term));
    }
    if (any == nullptr) any = econst(0, 1);
    m.assign(ev_c[static_cast<std::size_t>(i)], std::move(any));
  }

  // Slot advance: when the current slot's owner fires, move to the next
  // slot (wrapping the last slot to 0) — this *is* the modulo schedule.
  RtlExprPtr any_fire;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    RtlExprPtr f = eref(fire[s], 1);
    any_fire = any_fire == nullptr
                   ? std::move(f)
                   : ebin(RtlOp::Or, std::move(any_fire), std::move(f));
  }
  int advance = m.add_wire("advance", 1);
  m.assign(advance, std::move(any_fire));

  std::vector<rtl::RtlExprPtr> succ_values;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    succ_values.push_back(econst((s + 1) % slots.size(), sw));
  }
  RtlExprPtr next_slot =
      emux(eref(advance, 1),
           rtl::build_onehot_mux(m, fire, std::move(succ_values), sw),
           eref(slot, sw));
  m.seq(slot, std::move(next_slot));
  m.seq(prev_slot, eref(slot, sw), eref(advance, 1));

  // Consumer read data arrives two cycles after its slot fires: the port-1
  // operand register stage, then the BRAM read register.
  std::vector<rtl::RtlExprPtr> consumed_terms;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!slots[s].is_producer) consumed_terms.push_back(eref(fire[s], 1));
  }
  m.seq(advance_valid, rtl::eor_tree(std::move(consumed_terms), 1));
  int v2 = m.add_reg("read_valid_q2", 1);
  m.seq(v2, eref(advance_valid, 1));
  int ps2 = m.add_reg("prev_slot_q2", sw);
  m.seq(ps2, eref(prev_slot, sw));

  for (int i = 0; i < nc; ++i) {
    std::vector<rtl::RtlExprPtr> mine;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].is_producer || slots[s].port != i) continue;
      mine.push_back(ebin(RtlOp::Eq, eref(ps2, sw),
                          econst(static_cast<std::uint64_t>(s), sw)));
    }
    m.assign(c_valid[static_cast<std::size_t>(i)],
             ebin(RtlOp::And, eref(v2, 1),
                  rtl::eor_tree(std::move(mine), 1)));
  }

  // ---- Physical port 1: slot-selected operands land in a register stage
  // (mux 'c' of Fig. 3); the BRAM performs the operation next cycle. This
  // keeps the mux network off the BRAM setup path, and its cost is fixed —
  // scenario growth shows up only in the mux LUTs. ----
  std::vector<int> addr_sel;
  std::vector<rtl::RtlExprPtr> addr_vals;
  std::vector<int> wdata_sel;
  std::vector<rtl::RtlExprPtr> wdata_vals;
  std::vector<rtl::RtlExprPtr> we_terms;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    addr_sel.push_back(slot_onehot[s]);
    if (slots[s].is_producer) {
      addr_vals.push_back(
          eref(p_addr[static_cast<std::size_t>(slots[s].port)], aw));
      wdata_sel.push_back(slot_onehot[s]);
      wdata_vals.push_back(
          eref(p_wdata[static_cast<std::size_t>(slots[s].port)], dw));
      we_terms.push_back(eref(fire[s], 1));
    } else {
      addr_vals.push_back(
          eref(c_addr[static_cast<std::size_t>(slots[s].port)], aw));
    }
  }
  int port1_addr = m.add_reg("port1_addr", aw);
  m.seq(port1_addr,
        rtl::build_onehot_mux(m, addr_sel, std::move(addr_vals), aw));
  int port1_wdata = m.add_reg("port1_wdata", dw);
  m.seq(port1_wdata,
        rtl::build_onehot_mux(m, wdata_sel, std::move(wdata_vals), dw));
  int port1_we = m.add_reg("port1_we", 1);
  m.seq(port1_we, rtl::eor_tree(std::move(we_terms), 1));

  // ---- BRAM. ----
  rtl::Memory& mem = m.add_memory("mem", dw, 1 << aw);
  {
    rtl::MemoryPort p0;
    p0.addr = eref(a_addr, aw);
    p0.write_enable = ebin(RtlOp::And, eref(a_en, 1), eref(a_we, 1));
    p0.write_data = eref(a_wdata, dw);
    p0.read_data = a_rdata;
    mem.ports.push_back(std::move(p0));
  }
  {
    rtl::MemoryPort p1;
    p1.addr = eref(port1_addr, aw);
    p1.write_enable = eref(port1_we, 1);
    p1.write_data = eref(port1_wdata, dw);
    p1.read_data = bus_rdata;
    mem.ports.push_back(std::move(p1));
  }

  return m;
}

EventDrivenConfig eventdriven_config_from(
    const memalloc::BramInstance& bram, const memalloc::BramPortPlan& plan) {
  EventDrivenConfig cfg;
  cfg.data_width = bram.shape.width;
  cfg.addr_width = support::clog2_at_least1(
      static_cast<std::uint64_t>(bram.shape.depth) *
      static_cast<std::uint64_t>(bram.primitives));
  cfg.num_consumers = std::max(1, plan.consumer_pseudo_ports());
  cfg.num_producers = std::max(1, plan.producer_pseudo_ports());
  cfg.deps = build_dep_entries(bram, plan);
  return cfg;
}

}  // namespace hicsync::memorg
