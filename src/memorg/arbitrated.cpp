#include "memorg/arbitrated.h"

#include <algorithm>

#include "rtl/builder.h"
#include "support/bits.h"

namespace hicsync::memorg {

using rtl::ebin;
using rtl::econst;
using rtl::emux;
using rtl::enot;
using rtl::eref;
using rtl::ereduce_or;
using rtl::RtlExprPtr;
using rtl::RtlOp;

rtl::Module& generate_arbitrated(rtl::Design& design,
                                 const ArbitratedConfig& cfg,
                                 const std::string& name) {
  rtl::Module& m = design.add_module(name);
  const int aw = cfg.addr_width;
  const int dw = cfg.data_width;
  const int nc = cfg.num_consumers;
  const int np = cfg.num_producers;
  const int ne = static_cast<int>(cfg.deps.size());
  // Baseline sizing: countdown and id registers dimensioned for
  // max_consumers so the FF inventory does not vary with the scenario.
  const int max_nc = std::max(cfg.max_consumers, nc);
  const int cw =
      std::max(counter_width(cfg.deps),
               support::clog2_at_least1(
                   static_cast<std::uint64_t>(max_nc) + 1));
  const int idw =
      support::clog2_at_least1(static_cast<std::uint64_t>(max_nc));

  (void)m.clk();
  (void)m.rst();

  // ---- Port A: direct access to physical port 0. ----
  int a_en = m.add_input("a_en", 1);
  int a_we = m.add_input("a_we", 1);
  int a_addr = m.add_input("a_addr", aw);
  int a_wdata = m.add_input("a_wdata", dw);
  int a_rdata = m.add_output_reg("a_rdata", dw);

  // ---- Port B. ----
  int b_en = -1, b_we = -1, b_addr = -1, b_wdata = -1, b_grant = -1,
      b_valid = -1;
  if (cfg.enable_port_b) {
    b_en = m.add_input("b_en", 1);
    b_we = m.add_input("b_we", 1);
    b_addr = m.add_input("b_addr", aw);
    b_wdata = m.add_input("b_wdata", dw);
    b_grant = m.add_output("b_grant", 1);
    b_valid = m.add_output_reg("b_valid", 1);
  }

  // ---- Port C pseudo-ports. ----
  std::vector<int> c_req(static_cast<std::size_t>(nc));
  std::vector<int> c_addr(static_cast<std::size_t>(nc));
  std::vector<int> c_grant(static_cast<std::size_t>(nc));
  std::vector<int> c_valid(static_cast<std::size_t>(nc));
  for (int i = 0; i < nc; ++i) {
    c_req[static_cast<std::size_t>(i)] =
        m.add_input("c_req" + std::to_string(i), 1);
    c_addr[static_cast<std::size_t>(i)] =
        m.add_input("c_addr" + std::to_string(i), aw);
    c_grant[static_cast<std::size_t>(i)] =
        m.add_output("c_grant" + std::to_string(i), 1);
    c_valid[static_cast<std::size_t>(i)] =
        m.add_output("c_valid" + std::to_string(i), 1);
  }
  int bus_rdata = m.add_output_reg("bus_rdata", dw);

  // ---- Port D pseudo-ports. ----
  std::vector<int> d_req(static_cast<std::size_t>(np));
  std::vector<int> d_addr(static_cast<std::size_t>(np));
  std::vector<int> d_wdata(static_cast<std::size_t>(np));
  std::vector<int> d_grant(static_cast<std::size_t>(np));
  for (int j = 0; j < np; ++j) {
    d_req[static_cast<std::size_t>(j)] =
        m.add_input("d_req" + std::to_string(j), 1);
    d_addr[static_cast<std::size_t>(j)] =
        m.add_input("d_addr" + std::to_string(j), aw);
    d_wdata[static_cast<std::size_t>(j)] =
        m.add_input("d_wdata" + std::to_string(j), dw);
    d_grant[static_cast<std::size_t>(j)] =
        m.add_output("d_grant" + std::to_string(j), 1);
  }

  // ---- Dependency list: per-entry countdown registers. ----
  std::vector<int> count(static_cast<std::size_t>(ne));
  for (int e = 0; e < ne; ++e) {
    count[static_cast<std::size_t>(e)] =
        m.add_reg("dep" + std::to_string(e) + "_count", cw);
  }
  // Serial-scan pointer (only used when !use_cam).
  int scan = -1;
  const int sw = support::clog2_at_least1(
      static_cast<std::uint64_t>(std::max(ne, 1)));
  if (!cfg.use_cam && ne > 1) {
    scan = m.add_reg("scan_ptr", sw);
    RtlExprPtr wrap =
        ebin(RtlOp::Eq, eref(scan, sw),
             econst(static_cast<std::uint64_t>(ne - 1), sw));
    RtlExprPtr next = emux(std::move(wrap), econst(0, sw),
                           ebin(RtlOp::Add, eref(scan, sw), econst(1, sw)));
    m.seq(scan, std::move(next));
  }

  // Pure address match against an entry's configured base address.
  auto pure_match = [&](int addr_net, int e) -> RtlExprPtr {
    return ebin(
        RtlOp::Eq, eref(addr_net, aw),
        econst(cfg.deps[static_cast<std::size_t>(e)].base_address, aw));
  };
  // Scan mode shares one base-address comparator per pseudo-port: the
  // scanned entry's base address and countdown state are muxed onto shared
  // nets, and each port compares against those. CAM mode compares every
  // entry in parallel (the paper's choice). Countdown updates always use
  // the pure per-entry match: they react to a *grant*, whose cycle need
  // not coincide with the entry's scan slot.
  const bool serial_scan = !cfg.use_cam && ne > 1;
  int scanned_base = -1;       // base address of the scanned entry
  int scanned_nonzero = -1;    // its countdown > 0
  if (serial_scan) {
    std::vector<RtlExprPtr> bases;
    std::vector<RtlExprPtr> nonzeros;
    for (int e = 0; e < ne; ++e) {
      bases.push_back(
          econst(cfg.deps[static_cast<std::size_t>(e)].base_address, aw));
      nonzeros.push_back(
          ereduce_or(eref(count[static_cast<std::size_t>(e)], cw)));
    }
    scanned_base = m.add_wire("scanned_base", aw);
    m.assign(scanned_base, rtl::build_mux_tree(m, scan, std::move(bases)));
    scanned_nonzero = m.add_wire("scanned_nonzero", 1);
    m.assign(scanned_nonzero,
             rtl::build_mux_tree(m, scan, std::move(nonzeros)));
  }

  // Consumer-side eligibility condition for one pseudo-port address: some
  // matched entry with countdown > 0.
  auto consumer_cond = [&](int addr_net) -> RtlExprPtr {
    if (serial_scan) {
      return ebin(RtlOp::And,
                  ebin(RtlOp::Eq, eref(addr_net, aw),
                       eref(scanned_base, aw)),
                  eref(scanned_nonzero, 1));
    }
    std::vector<RtlExprPtr> terms;
    for (int e = 0; e < ne; ++e) {
      terms.push_back(
          ebin(RtlOp::And, pure_match(addr_net, e),
               ereduce_or(eref(count[static_cast<std::size_t>(e)], cw))));
    }
    return rtl::eor_tree(std::move(terms), 1);
  };
  // Producer-side: matched entry with countdown == 0.
  auto producer_cond = [&](int addr_net) -> RtlExprPtr {
    if (serial_scan) {
      return ebin(RtlOp::And,
                  ebin(RtlOp::Eq, eref(addr_net, aw),
                       eref(scanned_base, aw)),
                  enot(eref(scanned_nonzero, 1)));
    }
    std::vector<RtlExprPtr> terms;
    for (int e = 0; e < ne; ++e) {
      terms.push_back(ebin(
          RtlOp::And, pure_match(addr_net, e),
          enot(ereduce_or(eref(count[static_cast<std::size_t>(e)], cw)))));
    }
    return rtl::eor_tree(std::move(terms), 1);
  };

  // ---- Eligibility: registered dependency-list lookup stage. ----
  // The CAM comparison and countdown check land in a register, isolating
  // the lookup cone from the arbiter cone (one lookup cycle, as a physical
  // CAM would have). A grant kills its own eligibility bit so a request
  // cannot be granted twice while the client reacts.
  // Grants are declared ahead of the arbiter so the kill terms can
  // reference them; they are assigned further down.
  std::vector<int> c_granted(static_cast<std::size_t>(nc));
  for (int i = 0; i < nc; ++i) {
    c_granted[static_cast<std::size_t>(i)] =
        m.add_wire("c_granted" + std::to_string(i), 1);
  }

  // Consumer i: request and some matched entry still has countdown > 0.
  // Eligibility registers are allocated for max_consumers so the flip-flop
  // inventory does not depend on the scenario.
  std::vector<int> c_elig(static_cast<std::size_t>(max_nc));
  for (int i = 0; i < max_nc; ++i) {
    int elig = m.add_reg("c_elig_q" + std::to_string(i), 1);
    c_elig[static_cast<std::size_t>(i)] = elig;
    if (i >= nc) {
      m.seq(elig, econst(0, 1));
      continue;
    }
    RtlExprPtr cond = consumer_cond(c_addr[static_cast<std::size_t>(i)]);
    RtlExprPtr next = ebin(
        RtlOp::And, eref(c_req[static_cast<std::size_t>(i)], 1),
        ebin(RtlOp::And, std::move(cond),
             enot(eref(c_granted[static_cast<std::size_t>(i)], 1))));
    m.seq(elig, std::move(next));
  }
  c_elig.resize(static_cast<std::size_t>(nc));

  // Producer j: request and matched entry countdown == 0 (previous cycle
  // complete: the address is no longer guarded and may be re-produced).
  std::vector<int> d_elig(static_cast<std::size_t>(np));
  for (int j = 0; j < np; ++j) {
    int elig = m.add_reg("d_elig_q" + std::to_string(j), 1);
    d_elig[static_cast<std::size_t>(j)] = elig;
    RtlExprPtr cond = producer_cond(d_addr[static_cast<std::size_t>(j)]);
    RtlExprPtr next = ebin(
        RtlOp::And, eref(d_req[static_cast<std::size_t>(j)], 1),
        ebin(RtlOp::And, std::move(cond),
             enot(eref(d_grant[static_cast<std::size_t>(j)], 1))));
    m.seq(elig, std::move(next));
  }

  // ---- Arbitration: round robin within C and within D; D beats C. ----
  const int ptr_w =
      support::clog2_at_least1(static_cast<std::uint64_t>(max_nc));
  auto build_arbiter = [&](const std::vector<int>& requests,
                           const std::string& prefix) -> rtl::ArbiterNets {
    if (cfg.round_robin) {
      return rtl::build_round_robin_arbiter(m, requests, prefix, ptr_w);
    }
    // Fixed priority (ablation): index 0 wins ties; keep the pointer
    // register so the FF inventory is identical to the round-robin build.
    rtl::ArbiterNets nets;
    nets.grant = rtl::build_fixed_priority(m, requests, prefix);
    std::vector<RtlExprPtr> reqs;
    for (int r : requests) reqs.push_back(eref(r, 1));
    nets.any_grant = m.add_wire(prefix + "_any_grant", 1);
    m.assign(nets.any_grant, rtl::eor_tree(std::move(reqs), 1));
    nets.pointer = m.add_reg(prefix + "_ptr", ptr_w);
    m.seq(nets.pointer, eref(nets.pointer, ptr_w));
    return nets;
  };
  rtl::ArbiterNets c_arb = build_arbiter(c_elig, "c_rr");
  rtl::ArbiterNets d_arb = build_arbiter(d_elig, "d_rr");

  int any_d = m.add_wire("any_d_grant", 1);
  m.assign(any_d, eref(d_arb.any_grant, 1));
  int any_c = m.add_wire("any_c_grant", 1);
  m.assign(any_c, ebin(RtlOp::And, eref(c_arb.any_grant, 1),
                       enot(eref(any_d, 1))));

  for (int j = 0; j < np; ++j) {
    m.assign(d_grant[static_cast<std::size_t>(j)],
             eref(d_arb.grant[static_cast<std::size_t>(j)], 1));
  }
  // A consumer grant is suppressed the cycle a producer write wins port 1.
  // (The c_granted wires were declared with the eligibility registers so
  // the grant-kill terms could reference them.)
  for (int i = 0; i < nc; ++i) {
    m.assign(c_granted[static_cast<std::size_t>(i)],
             ebin(RtlOp::And,
                  eref(c_arb.grant[static_cast<std::size_t>(i)], 1),
                  enot(eref(any_d, 1))));
    m.assign(c_grant[static_cast<std::size_t>(i)],
             eref(c_granted[static_cast<std::size_t>(i)], 1));
  }

  // Port B goes last: only when C and D are silent (raw requests, per §3.1).
  RtlExprPtr any_c_req;
  for (int i = 0; i < nc; ++i) {
    RtlExprPtr r = eref(c_req[static_cast<std::size_t>(i)], 1);
    any_c_req = any_c_req == nullptr
                    ? std::move(r)
                    : ebin(RtlOp::Or, std::move(any_c_req), std::move(r));
  }
  RtlExprPtr any_d_req;
  for (int j = 0; j < np; ++j) {
    RtlExprPtr r = eref(d_req[static_cast<std::size_t>(j)], 1);
    any_d_req = any_d_req == nullptr
                    ? std::move(r)
                    : ebin(RtlOp::Or, std::move(any_d_req), std::move(r));
  }
  if (cfg.enable_port_b) {
    RtlExprPtr quiet = ebin(RtlOp::And, enot(any_c_req->clone()),
                            enot(any_d_req->clone()));
    // Also require the registered-eligibility arbiters to be silent. Under
    // the request-hold protocol this is implied (eligibility is a delayed
    // copy of a held request), but stating it structurally makes the
    // B-vs-C/D exclusivity a property of the netlist rather than of client
    // behavior — one-hot provable, and safe against clients that drop a
    // request early while a stale eligibility bit is still arbitrating.
    quiet = ebin(RtlOp::And, std::move(quiet),
                 ebin(RtlOp::And, enot(eref(c_arb.any_grant, 1)),
                      enot(eref(any_d, 1))));
    m.assign(b_grant,
             ebin(RtlOp::And, eref(b_en, 1), std::move(quiet)));
  }

  // ---- Physical port 1 operand registers (the Fig. 2 wrapper). ----
  // The grant-side mux cone lands in a register stage; the BRAM performs
  // the operation the following cycle. This isolates the arbitration cone
  // from the BRAM setup path (needed to approach the 125 MHz target) and
  // is where the bulk of the baseline's fixed flip-flop budget lives.
  std::vector<int> all_grants;   // D grants, then C grants, then B
  std::vector<RtlExprPtr> addr_values;
  std::vector<RtlExprPtr> wdata_values;
  for (int j = 0; j < np; ++j) {
    all_grants.push_back(d_grant[static_cast<std::size_t>(j)]);
    addr_values.push_back(eref(d_addr[static_cast<std::size_t>(j)], aw));
    wdata_values.push_back(eref(d_wdata[static_cast<std::size_t>(j)], dw));
  }
  for (int i = 0; i < nc; ++i) {
    all_grants.push_back(c_granted[static_cast<std::size_t>(i)]);
    addr_values.push_back(eref(c_addr[static_cast<std::size_t>(i)], aw));
    wdata_values.push_back(econst(0, dw));
  }
  if (cfg.enable_port_b) {
    all_grants.push_back(b_grant);
    addr_values.push_back(eref(b_addr, aw));
    wdata_values.push_back(eref(b_wdata, dw));
  }
  int port1_addr = m.add_reg("port1_addr", aw);
  m.seq(port1_addr,
        rtl::build_onehot_mux(m, all_grants, std::move(addr_values), aw));
  int port1_wdata = m.add_reg("port1_wdata", dw);
  m.seq(port1_wdata,
        rtl::build_onehot_mux(m, all_grants, std::move(wdata_values), dw));
  RtlExprPtr we_next = eref(any_d, 1);
  if (cfg.enable_port_b) {
    we_next = ebin(RtlOp::Or, std::move(we_next),
                   ebin(RtlOp::And, eref(b_grant, 1), eref(b_we, 1)));
  }
  int port1_we = m.add_reg("port1_we", 1);
  m.seq(port1_we, std::move(we_next));

  // ---- The BRAM itself. ----
  rtl::Memory& mem = m.add_memory("mem", dw, 1 << aw);
  {
    rtl::MemoryPort p0;  // port A
    p0.addr = eref(a_addr, aw);
    p0.write_enable = ebin(RtlOp::And, eref(a_en, 1), eref(a_we, 1));
    p0.write_data = eref(a_wdata, dw);
    p0.read_data = a_rdata;
    mem.ports.push_back(std::move(p0));
  }
  {
    rtl::MemoryPort p1;  // shared B/C/D port
    p1.addr = eref(port1_addr, aw);
    p1.write_enable = eref(port1_we, 1);
    p1.write_data = eref(port1_wdata, dw);
    p1.read_data = bus_rdata;
    mem.ports.push_back(std::move(p1));
  }

  // ---- Dependency-list countdown updates. ----
  for (int e = 0; e < ne; ++e) {
    // Reload when a granted producer write hits this entry.
    RtlExprPtr load;
    for (int j = 0; j < np; ++j) {
      RtlExprPtr term =
          ebin(RtlOp::And, eref(d_grant[static_cast<std::size_t>(j)], 1),
               pure_match(d_addr[static_cast<std::size_t>(j)], e));
      load = load == nullptr
                 ? std::move(term)
                 : ebin(RtlOp::Or, std::move(load), std::move(term));
    }
    if (load == nullptr) load = econst(0, 1);
    // Decrement when a granted consumer read hits this entry.
    RtlExprPtr dec;
    for (int i = 0; i < nc; ++i) {
      RtlExprPtr term =
          ebin(RtlOp::And, eref(c_granted[static_cast<std::size_t>(i)], 1),
               pure_match(c_addr[static_cast<std::size_t>(i)], e));
      dec = dec == nullptr ? std::move(term)
                           : ebin(RtlOp::Or, std::move(dec), std::move(term));
    }
    if (dec == nullptr) dec = econst(0, 1);

    int cnt = count[static_cast<std::size_t>(e)];
    // Saturating decrement: the countdown never wraps below zero, so a
    // stale registered eligibility (a hazard only for clients that issue
    // more reads than the dependency number) cannot corrupt the guard.
    RtlExprPtr dec_live =
        ebin(RtlOp::And, std::move(dec), ereduce_or(eref(cnt, cw)));
    RtlExprPtr next = emux(
        std::move(load),
        econst(static_cast<std::uint64_t>(
                   cfg.deps[static_cast<std::size_t>(e)].dependency_number),
               cw),
        emux(std::move(dec_live),
             ebin(RtlOp::Sub, eref(cnt, cw), econst(1, cw)),
             eref(cnt, cw)));
    m.seq(cnt, std::move(next));
  }

  // ---- Read-valid pipeline (two stages, matching the registered port). ----
  // Stage 1 tracks the grant; stage 2 aligns with the BRAM read data
  // landing in bus_rdata. The grant-id register is sized for max_consumers
  // so this budget is scenario-independent.
  int valid1 = m.add_reg("c_valid_q1", 1);
  m.seq(valid1, eref(any_c, 1));
  int valid2 = m.add_reg("c_valid_q2", 1);
  m.seq(valid2, eref(valid1, 1));
  std::vector<RtlExprPtr> id_values;
  for (int i = 0; i < nc; ++i) {
    id_values.push_back(econst(static_cast<std::uint64_t>(i), idw));
  }
  int id1 = m.add_reg("c_grant_id_q1", idw);
  m.seq(id1, rtl::build_onehot_mux(m, c_granted, std::move(id_values), idw));
  int id2 = m.add_reg("c_grant_id_q2", idw);
  m.seq(id2, eref(id1, idw));
  for (int i = 0; i < nc; ++i) {
    m.assign(c_valid[static_cast<std::size_t>(i)],
             ebin(RtlOp::And, eref(valid2, 1),
                  ebin(RtlOp::Eq, eref(id2, idw),
                       econst(static_cast<std::uint64_t>(i), idw))));
  }
  if (cfg.enable_port_b) {
    int b_valid1 = m.add_reg("b_valid_q1", 1);
    m.seq(b_valid1,
          ebin(RtlOp::And, eref(b_grant, 1), enot(eref(b_we, 1))));
    m.seq(b_valid, eref(b_valid1, 1));
  }

  return m;
}

ArbitratedConfig arbitrated_config_from(const memalloc::BramInstance& bram,
                                        const memalloc::BramPortPlan& plan) {
  ArbitratedConfig cfg;
  cfg.data_width = bram.shape.width;
  cfg.addr_width = support::clog2_at_least1(
      static_cast<std::uint64_t>(bram.shape.depth) *
      static_cast<std::uint64_t>(bram.primitives));
  cfg.num_consumers = std::max(1, plan.consumer_pseudo_ports());
  cfg.num_producers = std::max(1, plan.producer_pseudo_ports());
  cfg.deps = build_dep_entries(bram, plan);
  return cfg;
}

}  // namespace hicsync::memorg
