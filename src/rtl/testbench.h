// Self-checking Verilog testbench generation.
//
// Records a stimulus/response trace while driving a module through
// rtl::ModuleSim, then emits a Verilog-2001 testbench that replays the
// inputs and asserts every recorded output value — so the generated
// controllers can be cross-checked in any HDL simulator against the C++
// evaluator's semantics.
//
// Timing convention matching ModuleSim: inputs are driven shortly after
// the rising edge and held for the whole cycle; outputs are sampled just
// before the next rising edge.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rtl/eval.h"
#include "rtl/netlist.h"

namespace hicsync::rtl {

class TestbenchRecorder {
 public:
  explicit TestbenchRecorder(const Module& module);

  /// Access the underlying simulator for reads (e.g. wait loops).
  [[nodiscard]] ModuleSim& sim() { return sim_; }

  /// Sets an input and records it for replay.
  void set_input(const std::string& name, std::uint64_t value);

  /// Ends the cycle: samples every output port (post-settle values become
  /// the expectations), then clocks the simulator.
  void step();

  /// Applies reset for one recorded cycle.
  void reset();

  [[nodiscard]] std::uint64_t cycles() const { return cycle_; }

  /// Emits the testbench module `tb_name` instantiating the recorded DUT.
  /// The testbench $display's PASS/FAIL and finishes with $fatal on the
  /// first mismatch.
  [[nodiscard]] std::string emit(const std::string& tb_name) const;

 private:
  struct CycleRecord {
    std::map<std::string, std::uint64_t> inputs;   // changes this cycle
    std::map<std::string, std::uint64_t> expected; // sampled outputs
  };

  const Module& module_;
  ModuleSim sim_;
  std::vector<CycleRecord> trace_;
  CycleRecord current_;
  std::uint64_t cycle_ = 0;
};

}  // namespace hicsync::rtl
