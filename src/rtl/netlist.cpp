#include "rtl/netlist.h"

#include <algorithm>
#include <map>
#include <set>

namespace hicsync::rtl {

RtlExprPtr RtlExpr::clone() const {
  auto e = std::make_unique<RtlExpr>();
  e->op = op;
  e->width = width;
  e->value = value;
  e->net = net;
  e->lo = lo;
  e->hi = hi;
  for (const auto& a : args) e->args.push_back(a->clone());
  return e;
}

RtlExprPtr econst(std::uint64_t value, int width) {
  auto e = std::make_unique<RtlExpr>();
  e->op = RtlOp::Const;
  e->width = width;
  e->value = width >= 64 ? value : (value & ((1ULL << width) - 1));
  return e;
}

RtlExprPtr eref(int net, int width) {
  auto e = std::make_unique<RtlExpr>();
  e->op = RtlOp::Ref;
  e->net = net;
  e->width = width;
  return e;
}

RtlExprPtr eslice(RtlExprPtr v, int hi, int lo) {
  auto e = std::make_unique<RtlExpr>();
  e->op = RtlOp::Slice;
  e->width = hi - lo + 1;
  e->hi = hi;
  e->lo = lo;
  e->args.push_back(std::move(v));
  return e;
}

RtlExprPtr econcat(std::vector<RtlExprPtr> parts) {
  auto e = std::make_unique<RtlExpr>();
  e->op = RtlOp::Concat;
  e->width = 0;
  for (const auto& p : parts) e->width += p->width;
  e->args = std::move(parts);
  return e;
}

RtlExprPtr enot(RtlExprPtr v) {
  auto e = std::make_unique<RtlExpr>();
  e->op = RtlOp::Not;
  e->width = v->width;
  e->args.push_back(std::move(v));
  return e;
}

RtlExprPtr ebin(RtlOp op, RtlExprPtr a, RtlExprPtr b) {
  auto e = std::make_unique<RtlExpr>();
  e->op = op;
  switch (op) {
    case RtlOp::Eq:
    case RtlOp::Ne:
    case RtlOp::Lt:
    case RtlOp::Le:
      e->width = 1;
      break;
    default:
      e->width = std::max(a->width, b->width);
  }
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

RtlExprPtr emux(RtlExprPtr sel, RtlExprPtr when_true, RtlExprPtr when_false) {
  auto e = std::make_unique<RtlExpr>();
  e->op = RtlOp::Mux;
  e->width = std::max(when_true->width, when_false->width);
  e->args.push_back(std::move(sel));
  e->args.push_back(std::move(when_true));
  e->args.push_back(std::move(when_false));
  return e;
}

RtlExprPtr ereduce_or(RtlExprPtr v) {
  auto e = std::make_unique<RtlExpr>();
  e->op = RtlOp::ReduceOr;
  e->width = 1;
  e->args.push_back(std::move(v));
  return e;
}

RtlExprPtr ereduce_and(RtlExprPtr v) {
  auto e = std::make_unique<RtlExpr>();
  e->op = RtlOp::ReduceAnd;
  e->width = 1;
  e->args.push_back(std::move(v));
  return e;
}

int expr_width(const RtlExpr& e) { return e.width; }

// ---------------------------------------------------------------------------

std::string Module::unique_name(const std::string& base) {
  bool taken = false;
  for (const Net& n : nets_) {
    if (n.name == base) {
      taken = true;
      break;
    }
  }
  if (!taken) return base;
  int suffix = 1;
  while (true) {
    std::string candidate = base + "_" + std::to_string(suffix++);
    bool clash = false;
    for (const Net& n : nets_) {
      if (n.name == candidate) {
        clash = true;
        break;
      }
    }
    if (!clash) return candidate;
  }
}

int Module::add_net(const std::string& name, int width, NetKind kind) {
  Net n;
  n.id = static_cast<int>(nets_.size());
  n.name = unique_name(name);
  n.width = width;
  n.kind = kind;
  nets_.push_back(std::move(n));
  return nets_.back().id;
}

int Module::add_wire(const std::string& name, int width) {
  return add_net(name, width, NetKind::Wire);
}

int Module::add_reg(const std::string& name, int width) {
  return add_net(name, width, NetKind::Reg);
}

int Module::add_input(const std::string& name, int width) {
  int id = add_net(name, width, NetKind::Wire);
  ports_.push_back(Port{nets_[static_cast<std::size_t>(id)].name,
                        PortDir::Input, id});
  return id;
}

int Module::add_output(const std::string& name, int width) {
  int id = add_net(name, width, NetKind::Wire);
  ports_.push_back(Port{nets_[static_cast<std::size_t>(id)].name,
                        PortDir::Output, id});
  return id;
}

int Module::add_output_reg(const std::string& name, int width) {
  int id = add_net(name, width, NetKind::Reg);
  ports_.push_back(Port{nets_[static_cast<std::size_t>(id)].name,
                        PortDir::Output, id});
  return id;
}

void Module::assign(int target, RtlExprPtr value) {
  assigns_.push_back(ContAssign{target, std::move(value)});
}

void Module::seq(int target, RtlExprPtr value, RtlExprPtr enable,
                 std::uint64_t reset_value, bool has_reset) {
  SeqAssign s;
  s.target = target;
  s.value = std::move(value);
  s.enable = std::move(enable);
  s.reset_value = reset_value;
  s.has_reset = has_reset;
  seqs_.push_back(std::move(s));
}

Memory& Module::add_memory(const std::string& name, int width, int depth) {
  Memory m;
  m.name = name;
  m.width = width;
  m.depth = depth;
  memories_.push_back(std::move(m));
  return memories_.back();
}

void Module::claim_onehot(std::vector<int> nets, std::string origin) {
  if (nets.size() < 2) return;
  std::vector<int> sorted = nets;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (sorted.size() < 2) return;
  for (const OneHotClaim& c : onehot_claims_) {
    std::vector<int> existing = c.nets;
    std::sort(existing.begin(), existing.end());
    if (existing == sorted) return;
  }
  onehot_claims_.push_back(OneHotClaim{std::move(nets), std::move(origin)});
}

Instance& Module::add_instance(const std::string& name,
                               const std::string& module) {
  Instance inst;
  inst.name = name;
  inst.module = module;
  instances_.push_back(std::move(inst));
  return instances_.back();
}

int Module::clk() {
  if (clk_ < 0) clk_ = add_input("clk", 1);
  return clk_;
}

int Module::rst() {
  if (rst_ < 0) rst_ = add_input("rst", 1);
  return rst_;
}

int Module::flipflop_bits() const {
  // One FF per bit of every sequentially-assigned net (dedup on target).
  std::set<int> targets;
  for (const SeqAssign& s : seqs_) targets.insert(s.target);
  int bits = 0;
  for (int t : targets) bits += nets_[static_cast<std::size_t>(t)].width;
  return bits;
}

bool Module::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = name_ + ": " + msg;
    return false;
  };

  std::map<int, int> drivers;
  for (const ContAssign& a : assigns_) {
    if (a.target < 0 || a.target >= static_cast<int>(nets_.size())) {
      return fail("continuous assign to invalid net");
    }
    ++drivers[a.target];
    if (a.value == nullptr) return fail("continuous assign without value");
    if (a.value->width != net(a.target).width) {
      return fail("width mismatch assigning " + net(a.target).name + ": " +
                  std::to_string(a.value->width) + " -> " +
                  std::to_string(net(a.target).width));
    }
  }
  std::set<int> seq_targets;
  for (const SeqAssign& s : seqs_) {
    if (s.target < 0 || s.target >= static_cast<int>(nets_.size())) {
      return fail("sequential assign to invalid net");
    }
    if (net(s.target).kind != NetKind::Reg) {
      return fail("sequential assign to wire " + net(s.target).name);
    }
    if (s.value == nullptr) return fail("sequential assign without value");
    if (s.value->width != net(s.target).width) {
      return fail("width mismatch in seq assign to " + net(s.target).name);
    }
    if (s.enable != nullptr && s.enable->width != 1) {
      return fail("enable must be 1 bit for " + net(s.target).name);
    }
    seq_targets.insert(s.target);
  }
  for (const auto& [target, count] : drivers) {
    if (count > 1) {
      return fail("multiple continuous drivers of " + net(target).name);
    }
    if (seq_targets.count(target) != 0) {
      return fail("net " + net(target).name +
                  " driven both continuously and sequentially");
    }
    if (net(target).kind == NetKind::Reg) {
      return fail("continuous assign to reg " + net(target).name);
    }
  }
  for (const Memory& m : memories_) {
    if (m.width <= 0 || m.depth <= 0) return fail("degenerate memory");
    for (const MemoryPort& p : m.ports) {
      if (p.addr == nullptr) return fail("memory port without address");
      if (p.write_enable != nullptr && p.write_data == nullptr) {
        return fail("write port without data");
      }
      if (p.read_data >= 0 &&
          net(p.read_data).kind != NetKind::Reg) {
        return fail("memory read data must target a reg");
      }
    }
  }
  return true;
}

Module& Design::add_module(std::string name) {
  modules_.push_back(std::make_unique<Module>(std::move(name)));
  if (top_.empty()) top_ = modules_.back()->name();
  return *modules_.back();
}

Module* Design::find(const std::string& name) {
  for (auto& m : modules_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

const Module* Design::find(const std::string& name) const {
  for (const auto& m : modules_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

}  // namespace hicsync::rtl
