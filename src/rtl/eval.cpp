#include "rtl/eval.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hicsync::rtl {
namespace {

void collect_refs(const RtlExpr& e, std::set<int>& refs) {
  if (e.op == RtlOp::Ref) refs.insert(e.net);
  for (const auto& a : e.args) collect_refs(*a, refs);
}

/// Strict-mode scan: every net read anywhere must have some driver.
void check_undriven_reads(const Module& module) {
  std::vector<bool> driven(module.nets().size(), false);
  for (const Port& p : module.ports()) {
    if (p.dir == PortDir::Input) driven[static_cast<std::size_t>(p.net)] = true;
  }
  for (const ContAssign& a : module.assigns()) {
    driven[static_cast<std::size_t>(a.target)] = true;
  }
  for (const SeqAssign& s : module.seqs()) {
    driven[static_cast<std::size_t>(s.target)] = true;
  }
  for (const Memory& m : module.memories()) {
    for (const MemoryPort& p : m.ports) {
      if (p.read_data >= 0) driven[static_cast<std::size_t>(p.read_data)] = true;
    }
  }
  auto check = [&](const RtlExpr* e, const std::string& site) {
    if (e == nullptr) return;
    std::set<int> refs;
    collect_refs(*e, refs);
    for (int r : refs) {
      if (!driven[static_cast<std::size_t>(r)]) {
        throw std::runtime_error("ModuleSim: read of undriven net '" +
                                 module.net(r).name + "' in " + site + " (" +
                                 module.name() + ", strict mode)");
      }
    }
  };
  for (const ContAssign& a : module.assigns()) {
    check(a.value.get(), "continuous assign to '" + module.net(a.target).name +
                             "'");
  }
  for (const SeqAssign& s : module.seqs()) {
    check(s.value.get(), "next-state of '" + module.net(s.target).name + "'");
    check(s.enable.get(), "enable of '" + module.net(s.target).name + "'");
  }
  for (const Memory& m : module.memories()) {
    for (std::size_t i = 0; i < m.ports.size(); ++i) {
      const MemoryPort& p = m.ports[i];
      const std::string where =
          "memory '" + m.name + "' port " + std::to_string(i);
      check(p.addr.get(), "address of " + where);
      check(p.write_enable.get(), "write enable of " + where);
      check(p.write_data.get(), "write data of " + where);
    }
  }
}

}  // namespace

ModuleSim::ModuleSim(const Module& module) : ModuleSim(module, SimOptions{}) {}

ModuleSim::ModuleSim(const Module& module, const SimOptions& options)
    : module_(module) {
  if (options.strict_undriven) check_undriven_reads(module);
  if (!module.instances().empty()) {
    throw std::runtime_error("ModuleSim: instances are not supported (" +
                             module.name() + ")");
  }
  values_.assign(module.nets().size(), 0);
  for (const Net& n : module.nets()) names_[n.name] = n.id;
  for (const Memory& m : module.memories()) {
    memories_[m.name].assign(static_cast<std::size_t>(m.depth), 0);
  }

  // Topologically order the continuous assigns.
  const auto& assigns = module.assigns();
  const std::size_t n = assigns.size();
  // driver_of[net] = assign index
  std::map<int, int> driver_of;
  for (std::size_t i = 0; i < n; ++i) {
    driver_of[assigns[i].target] = static_cast<int>(i);
  }
  // Dependencies between assigns.
  std::vector<std::vector<int>> deps(n);  // assign i depends on deps[i]
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<int>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::set<int> refs;
    collect_refs(*assigns[i].value, refs);
    for (int r : refs) {
      auto it = driver_of.find(r);
      if (it != driver_of.end()) {
        dependents[static_cast<std::size_t>(it->second)].push_back(
            static_cast<int>(i));
        ++indegree[i];
      }
    }
  }
  std::vector<int> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<int>(i));
  }
  while (!ready.empty()) {
    int i = ready.back();
    ready.pop_back();
    order_.push_back(i);
    for (int d : dependents[static_cast<std::size_t>(i)]) {
      if (--indegree[static_cast<std::size_t>(d)] == 0) ready.push_back(d);
    }
  }
  if (order_.size() != n) {
    throw std::runtime_error("ModuleSim: combinational cycle in " +
                             module.name());
  }
  settle();
}

std::uint64_t ModuleSim::mask(std::uint64_t v, int width) {
  if (width >= 64) return v;
  return v & ((1ULL << width) - 1);
}

int ModuleSim::net_id(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    throw std::runtime_error("ModuleSim: no net named '" + name + "'");
  }
  return it->second;
}

void ModuleSim::set_input(const std::string& name, std::uint64_t value) {
  int id = net_id(name);
  values_[static_cast<std::size_t>(id)] =
      mask(value, module_.net(id).width);
}

std::uint64_t ModuleSim::get(const std::string& name) const {
  return values_[static_cast<std::size_t>(net_id(name))];
}

std::uint64_t ModuleSim::eval(const RtlExpr& e) const {
  switch (e.op) {
    case RtlOp::Const:
      return e.value;
    case RtlOp::Ref:
      return values_[static_cast<std::size_t>(e.net)];
    case RtlOp::Slice: {
      std::uint64_t v = eval(*e.args[0]);
      return mask(v >> e.lo, e.hi - e.lo + 1);
    }
    case RtlOp::Concat: {
      std::uint64_t v = 0;
      for (const auto& a : e.args) {
        v = (v << a->width) | mask(eval(*a), a->width);
      }
      return mask(v, e.width);
    }
    case RtlOp::Not:
      return mask(~eval(*e.args[0]), e.width);
    case RtlOp::And:
      return mask(eval(*e.args[0]) & eval(*e.args[1]), e.width);
    case RtlOp::Or:
      return mask(eval(*e.args[0]) | eval(*e.args[1]), e.width);
    case RtlOp::Xor:
      return mask(eval(*e.args[0]) ^ eval(*e.args[1]), e.width);
    case RtlOp::Add:
      return mask(eval(*e.args[0]) + eval(*e.args[1]), e.width);
    case RtlOp::Sub:
      return mask(eval(*e.args[0]) - eval(*e.args[1]), e.width);
    case RtlOp::Eq:
      return eval(*e.args[0]) == eval(*e.args[1]) ? 1 : 0;
    case RtlOp::Ne:
      return eval(*e.args[0]) != eval(*e.args[1]) ? 1 : 0;
    case RtlOp::Lt:
      return eval(*e.args[0]) < eval(*e.args[1]) ? 1 : 0;
    case RtlOp::Le:
      return eval(*e.args[0]) <= eval(*e.args[1]) ? 1 : 0;
    case RtlOp::Shl:
      return mask(eval(*e.args[0]) << eval(*e.args[1]), e.width);
    case RtlOp::Shr:
      return mask(eval(*e.args[0]) >> eval(*e.args[1]), e.width);
    case RtlOp::Mux:
      return mask(eval(*e.args[0]) != 0 ? eval(*e.args[1])
                                        : eval(*e.args[2]),
                  e.width);
    case RtlOp::ReduceOr:
      return eval(*e.args[0]) != 0 ? 1 : 0;
    case RtlOp::ReduceAnd:
      return mask(eval(*e.args[0]), e.args[0]->width) ==
                     mask(~0ULL, e.args[0]->width)
                 ? 1
                 : 0;
  }
  return 0;
}

void ModuleSim::settle() {
  for (int i : order_) {
    const ContAssign& a = module_.assigns()[static_cast<std::size_t>(i)];
    values_[static_cast<std::size_t>(a.target)] =
        mask(eval(*a.value), module_.net(a.target).width);
  }
}

void ModuleSim::step() {
  settle();

  // Evaluate all next-state values with pre-edge combinational state.
  struct Commit {
    int target;
    std::uint64_t value;
  };
  std::vector<Commit> reg_commits;
  bool in_reset = false;
  // Reset net, if the module has one.
  auto rst_it = names_.find("rst");
  if (rst_it != names_.end()) {
    in_reset = values_[static_cast<std::size_t>(rst_it->second)] != 0;
  }
  for (const SeqAssign& s : module_.seqs()) {
    if (in_reset && s.has_reset) {
      reg_commits.push_back(Commit{s.target, s.reset_value});
      continue;
    }
    if (s.enable != nullptr && eval(*s.enable) == 0) continue;
    reg_commits.push_back(
        Commit{s.target, mask(eval(*s.value),
                              module_.net(s.target).width)});
  }

  struct MemCommit {
    std::string mem;
    std::size_t addr;
    std::uint64_t value;
  };
  std::vector<MemCommit> mem_writes;
  std::vector<Commit> mem_reads;
  for (const Memory& mem : module_.memories()) {
    auto& storage = memories_[mem.name];
    for (const MemoryPort& p : mem.ports) {
      std::size_t addr = static_cast<std::size_t>(eval(*p.addr)) %
                         storage.size();
      if (p.read_data >= 0) {
        // Read-first: capture the pre-edge contents.
        mem_reads.push_back(Commit{p.read_data,
                                   mask(storage[addr], mem.width)});
      }
      if (p.write_enable != nullptr && eval(*p.write_enable) != 0 &&
          !in_reset) {
        mem_writes.push_back(
            MemCommit{mem.name, addr, mask(eval(*p.write_data), mem.width)});
      }
    }
  }

  for (const Commit& c : reg_commits) {
    values_[static_cast<std::size_t>(c.target)] = c.value;
  }
  for (const Commit& c : mem_reads) {
    values_[static_cast<std::size_t>(c.target)] = c.value;
  }
  for (const MemCommit& w : mem_writes) {
    memories_[w.mem][w.addr] = w.value;
  }
  ++cycles_;
  settle();
}

void ModuleSim::reset() {
  auto it = names_.find("rst");
  if (it == names_.end()) return;
  set_input("rst", 1);
  step();
  set_input("rst", 0);
  settle();
}

void ModuleSim::clear_state() {
  std::fill(values_.begin(), values_.end(), 0);
  for (auto& [name, words] : memories_) {
    std::fill(words.begin(), words.end(), 0);
  }
  cycles_ = 0;
  settle();
}

std::uint64_t ModuleSim::read_mem(const std::string& mem,
                                  std::size_t addr) const {
  auto it = memories_.find(mem);
  if (it == memories_.end()) {
    throw std::runtime_error("ModuleSim: no memory named '" + mem + "'");
  }
  return it->second.at(addr);
}

void ModuleSim::write_mem(const std::string& mem, std::size_t addr,
                          std::uint64_t value) {
  auto it = memories_.find(mem);
  if (it == memories_.end()) {
    throw std::runtime_error("ModuleSim: no memory named '" + mem + "'");
  }
  it->second.at(addr) = value;
}

}  // namespace hicsync::rtl
