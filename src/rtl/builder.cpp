#include "rtl/builder.h"

#include "support/bits.h"

namespace hicsync::rtl {

RtlExprPtr build_mux_tree(Module& m, int sel_net,
                          std::vector<RtlExprPtr> inputs) {
  const int n = static_cast<int>(inputs.size());
  const int sel_width = m.net(sel_net).width;
  if (n == 1) return std::move(inputs[0]);

  // Recursive pairing on select bits, LSB first.
  std::vector<RtlExprPtr> level = std::move(inputs);
  int bit = 0;
  while (level.size() > 1 && bit < sel_width) {
    std::vector<RtlExprPtr> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      RtlExprPtr sel_bit =
          eslice(eref(sel_net, sel_width), bit, bit);
      next.push_back(emux(std::move(sel_bit), std::move(level[i + 1]),
                          std::move(level[i])));
    }
    if (level.size() % 2 == 1) {
      next.push_back(std::move(level.back()));
    }
    level = std::move(next);
    ++bit;
  }
  return std::move(level[0]);
}

std::vector<int> build_decoder(Module& m, int sel_net, int n,
                               const std::string& prefix) {
  const int w = m.net(sel_net).width;
  std::vector<int> out;
  for (int i = 0; i < n; ++i) {
    int wire = m.add_wire(prefix + "_dec" + std::to_string(i), 1);
    m.assign(wire, ebin(RtlOp::Eq, eref(sel_net, w),
                        econst(static_cast<std::uint64_t>(i), w)));
    out.push_back(wire);
  }
  m.claim_onehot(out, "decoder '" + prefix + "'");
  return out;
}

namespace {

/// Balanced prefix-OR (recursive doubling): out[i] = bits[0] | ... | bits[i].
/// Each level is materialized into wires so the LUT coverer sees the
/// logarithmic structure.
std::vector<int> build_prefix_or(Module& m, const std::vector<int>& bits,
                                 const std::string& prefix) {
  std::vector<int> cur = bits;
  int level = 0;
  for (std::size_t step = 1; step < bits.size(); step *= 2) {
    std::vector<int> next(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      if (i < step) {
        next[i] = cur[i];
        continue;
      }
      int w = m.add_wire(prefix + "_pfx" + std::to_string(level) + "_" +
                             std::to_string(i),
                         1);
      m.assign(w, ebin(RtlOp::Or, eref(cur[i], 1), eref(cur[i - step], 1)));
      next[i] = w;
    }
    cur = std::move(next);
    ++level;
  }
  return cur;
}

}  // namespace

ArbiterNets build_round_robin_arbiter(Module& m,
                                      const std::vector<int>& requests,
                                      const std::string& prefix,
                                      int pointer_width) {
  ArbiterNets nets;
  const int n = static_cast<int>(requests.size());
  int pw = support::clog2_at_least1(static_cast<std::uint64_t>(n));
  if (pointer_width > pw) pw = pointer_width;

  nets.pointer = m.add_reg(prefix + "_ptr", pw);

  // Rotating priority via the standard two-sided scheme:
  //   mask[i]   = (i >= ptr)            — thermometer decode of the pointer
  //   hi[i]     = req[i] & mask[i]      — requesters at/after the pointer
  //   grant     = first set bit of hi, or of req when hi is empty.
  // First-set-bit uses a balanced prefix OR, so depth grows with log N,
  // not N.
  std::vector<int> hi(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    int mask = m.add_wire(prefix + "_mask" + std::to_string(i), 1);
    m.assign(mask, ebin(RtlOp::Le, eref(nets.pointer, pw),
                        econst(static_cast<std::uint64_t>(i), pw)));
    int w = m.add_wire(prefix + "_hi" + std::to_string(i), 1);
    m.assign(w, ebin(RtlOp::And, eref(requests[static_cast<std::size_t>(i)], 1),
                     eref(mask, 1)));
    hi[static_cast<std::size_t>(i)] = w;
  }
  std::vector<int> hi_cum = build_prefix_or(m, hi, prefix + "_hi");
  std::vector<int> lo_cum = build_prefix_or(m, requests, prefix + "_lo");
  int any_hi = m.add_wire(prefix + "_any_hi", 1);
  m.assign(any_hi, eref(hi_cum.back(), 1));

  for (int i = 0; i < n; ++i) {
    auto ui = static_cast<std::size_t>(i);
    // First set bit: x[i] & !cum[i-1].
    RtlExprPtr first_hi = eref(hi[ui], 1);
    if (i > 0) {
      first_hi = ebin(RtlOp::And, std::move(first_hi),
                      enot(eref(hi_cum[ui - 1], 1)));
    }
    RtlExprPtr first_lo = eref(requests[ui], 1);
    if (i > 0) {
      first_lo = ebin(RtlOp::And, std::move(first_lo),
                      enot(eref(lo_cum[ui - 1], 1)));
    }
    int g = m.add_wire(prefix + "_grant" + std::to_string(i), 1);
    m.assign(g, emux(eref(any_hi, 1), std::move(first_hi),
                     std::move(first_lo)));
    nets.grant.push_back(g);
  }

  nets.any_grant = m.add_wire(prefix + "_any_grant", 1);
  m.assign(nets.any_grant, eref(lo_cum.back(), 1));

  // next_ptr = granted index + 1 (mod n), held when no grant.
  std::vector<RtlExprPtr> succ;
  for (int i = 0; i < n; ++i) {
    succ.push_back(econst(static_cast<std::uint64_t>((i + 1) % n), pw));
  }
  RtlExprPtr next = emux(eref(nets.any_grant, 1),
                         build_onehot_mux(m, nets.grant, std::move(succ), pw),
                         eref(nets.pointer, pw));
  m.seq(nets.pointer, std::move(next), /*enable=*/nullptr, /*reset=*/0);
  m.claim_onehot(nets.grant, "round-robin arbiter '" + prefix + "'");
  return nets;
}

std::vector<int> build_fixed_priority(Module& m,
                                      const std::vector<int>& requests,
                                      const std::string& prefix) {
  std::vector<int> grants;
  RtlExprPtr none_above;  // !r0 & !r1 & ... for the ones processed so far
  for (std::size_t i = 0; i < requests.size(); ++i) {
    int g = m.add_wire(prefix + "_grant" + std::to_string(i), 1);
    RtlExprPtr term = eref(requests[i], 1);
    if (none_above != nullptr) {
      term = ebin(RtlOp::And, none_above->clone(), std::move(term));
    }
    m.assign(g, std::move(term));
    grants.push_back(g);
    RtlExprPtr not_this = enot(eref(requests[i], 1));
    none_above = none_above == nullptr
                     ? std::move(not_this)
                     : ebin(RtlOp::And, std::move(none_above),
                            std::move(not_this));
  }
  m.claim_onehot(grants, "fixed-priority grant '" + prefix + "'");
  return grants;
}

RtlExprPtr eor_tree(std::vector<RtlExprPtr> terms, int width) {
  std::vector<RtlExprPtr> level;
  for (auto& t : terms) {
    if (t != nullptr) level.push_back(std::move(t));
  }
  if (level.empty()) return econst(0, width);
  while (level.size() > 1) {
    std::vector<RtlExprPtr> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(
          ebin(RtlOp::Or, std::move(level[i]), std::move(level[i + 1])));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  return std::move(level[0]);
}

RtlExprPtr build_onehot_mux(Module& m, const std::vector<int>& selects,
                            std::vector<RtlExprPtr> values, int width) {
  m.claim_onehot(selects, "one-hot mux");
  std::vector<RtlExprPtr> masked;
  for (std::size_t i = 0; i < selects.size() && i < values.size(); ++i) {
    // mask = select ? ~0 : 0, then AND with the value: two-input bit gates
    // that the LUT coverer merges into the OR tree.
    RtlExprPtr mask = emux(eref(selects[i], 1),
                           econst(~0ULL, width), econst(0, width));
    masked.push_back(ebin(RtlOp::And, std::move(values[i]),
                          std::move(mask)));
  }
  return eor_tree(std::move(masked), width);
}

CamNets build_cam_match(Module& m, const std::vector<int>& entry_addr,
                        const std::vector<int>& entry_valid, int key_net,
                        const std::string& prefix) {
  CamNets nets;
  const int kw = m.net(key_net).width;
  RtlExprPtr any;
  for (std::size_t i = 0; i < entry_addr.size(); ++i) {
    int match = m.add_wire(prefix + "_match" + std::to_string(i), 1);
    RtlExprPtr eq = ebin(RtlOp::Eq, eref(entry_addr[i], kw),
                         eref(key_net, kw));
    RtlExprPtr term =
        ebin(RtlOp::And, eref(entry_valid[i], 1), std::move(eq));
    m.assign(match, std::move(term));
    nets.match.push_back(match);
    RtlExprPtr mref = eref(match, 1);
    any = any == nullptr ? std::move(mref)
                         : ebin(RtlOp::Or, std::move(any), std::move(mref));
  }
  nets.any_match = m.add_wire(prefix + "_any_match", 1);
  m.assign(nets.any_match,
           any != nullptr ? std::move(any) : econst(0, 1));
  return nets;
}

CounterNets build_counter(Module& m, int width, RtlExprPtr load_enable,
                          RtlExprPtr load_value, RtlExprPtr dec_enable,
                          const std::string& prefix) {
  CounterNets nets;
  nets.reg = m.add_reg(prefix + "_count", width);
  RtlExprPtr dec = ebin(RtlOp::Sub, eref(nets.reg, width),
                        econst(1, width));
  RtlExprPtr next = emux(std::move(dec_enable), std::move(dec),
                         eref(nets.reg, width));
  next = emux(std::move(load_enable), std::move(load_value), std::move(next));
  m.seq(nets.reg, std::move(next), /*enable=*/nullptr, /*reset=*/0);
  return nets;
}

}  // namespace hicsync::rtl
