#include "rtl/verilog.h"

#include "support/strings.h"

namespace hicsync::rtl {
namespace {

std::string width_decl(int width) {
  if (width <= 1) return "";
  return "[" + std::to_string(width - 1) + ":0] ";
}

const char* binop_token(RtlOp op) {
  switch (op) {
    case RtlOp::And: return "&";
    case RtlOp::Or: return "|";
    case RtlOp::Xor: return "^";
    case RtlOp::Add: return "+";
    case RtlOp::Sub: return "-";
    case RtlOp::Eq: return "==";
    case RtlOp::Ne: return "!=";
    case RtlOp::Lt: return "<";
    case RtlOp::Le: return "<=";
    case RtlOp::Shl: return "<<";
    case RtlOp::Shr: return ">>";
    default: return "?";
  }
}

}  // namespace

std::string emit_expr(const Module& m, const RtlExpr& e) {
  switch (e.op) {
    case RtlOp::Const:
      return std::to_string(e.width) + "'d" + std::to_string(e.value);
    case RtlOp::Ref:
      return m.net(e.net).name;
    case RtlOp::Slice: {
      std::string base = emit_expr(m, *e.args[0]);
      if (e.args[0]->op != RtlOp::Ref) {
        // Verilog cannot slice an arbitrary expression; parenthesized
        // slices are invalid — callers should slice nets. Emit a
        // shift+mask equivalent instead.
        std::string shifted =
            e.lo == 0 ? base
                      : "(" + base + " >> " + std::to_string(e.lo) + ")";
        return shifted + "[" + std::to_string(e.hi - e.lo) + ":0]";
      }
      if (e.hi == e.lo) return base + "[" + std::to_string(e.lo) + "]";
      return base + "[" + std::to_string(e.hi) + ":" +
             std::to_string(e.lo) + "]";
    }
    case RtlOp::Concat: {
      std::string out = "{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i != 0) out += ", ";
        out += emit_expr(m, *e.args[i]);
      }
      return out + "}";
    }
    case RtlOp::Not:
      return "~(" + emit_expr(m, *e.args[0]) + ")";
    case RtlOp::Mux:
      return "(" + emit_expr(m, *e.args[0]) + " ? " +
             emit_expr(m, *e.args[1]) + " : " + emit_expr(m, *e.args[2]) +
             ")";
    case RtlOp::ReduceOr:
      return "(|" + emit_expr(m, *e.args[0]) + ")";
    case RtlOp::ReduceAnd:
      return "(&" + emit_expr(m, *e.args[0]) + ")";
    default:
      return "(" + emit_expr(m, *e.args[0]) + " " + binop_token(e.op) + " " +
             emit_expr(m, *e.args[1]) + ")";
  }
}

std::string emit_module(const Module& m) {
  std::string out = "module " + m.name() + " (\n";
  for (std::size_t i = 0; i < m.ports().size(); ++i) {
    const Port& p = m.ports()[i];
    const Net& n = m.net(p.net);
    out += "  " + std::string(p.dir == PortDir::Input ? "input  " : "output ");
    out += n.kind == NetKind::Reg ? "reg  " : "wire ";
    out += width_decl(n.width);
    out += p.name;
    out += (i + 1 == m.ports().size()) ? "\n" : ",\n";
  }
  out += ");\n\n";

  // Internal nets.
  for (const Net& n : m.nets()) {
    bool is_port = false;
    for (const Port& p : m.ports()) {
      if (p.net == n.id) {
        is_port = true;
        break;
      }
    }
    if (is_port) continue;
    out += "  ";
    out += n.kind == NetKind::Reg ? "reg  " : "wire ";
    out += width_decl(n.width);
    out += n.name + ";\n";
  }
  if (!m.nets().empty()) out += "\n";

  // Memories.
  for (const Memory& mem : m.memories()) {
    out += "  reg " + width_decl(mem.width) + mem.name + " [0:" +
           std::to_string(mem.depth - 1) + "];\n";
  }
  if (!m.memories().empty()) out += "\n";

  // Continuous assigns.
  for (const ContAssign& a : m.assigns()) {
    out += "  assign " + m.net(a.target).name + " = " +
           emit_expr(m, *a.value) + ";\n";
  }
  if (!m.assigns().empty()) out += "\n";

  // Instances.
  for (const Instance& inst : m.instances()) {
    out += "  " + inst.module + " " + inst.name + " (\n";
    for (std::size_t i = 0; i < inst.bindings.size(); ++i) {
      const auto& b = inst.bindings[i];
      out += "    ." + b.port + "(" +
             (b.expr != nullptr ? emit_expr(m, *b.expr) : std::string()) +
             ")";
      out += (i + 1 == inst.bindings.size()) ? "\n" : ",\n";
    }
    out += "  );\n";
  }
  if (!m.instances().empty()) out += "\n";

  // One always block for all sequential logic.
  const bool has_seq = !m.seqs().empty();
  if (has_seq) {
    // Module::clk()/rst() lazily create the nets; emission must not mutate,
    // so locate them by name.
    std::string clk = "clk";
    std::string rst = "rst";
    out += "  always @(posedge " + clk + ") begin\n";
    bool any_reset = false;
    for (const SeqAssign& s : m.seqs()) any_reset |= s.has_reset;
    if (any_reset) {
      out += "    if (" + rst + ") begin\n";
      for (const SeqAssign& s : m.seqs()) {
        if (!s.has_reset) continue;
        out += "      " + m.net(s.target).name + " <= " +
               std::to_string(m.net(s.target).width) + "'d" +
               std::to_string(s.reset_value) + ";\n";
      }
      out += "    end else begin\n";
    } else {
      out += "    begin\n";
    }
    for (const SeqAssign& s : m.seqs()) {
      std::string line;
      if (s.enable != nullptr) {
        line = "if (" + emit_expr(m, *s.enable) + ") " +
               m.net(s.target).name + " <= " + emit_expr(m, *s.value) + ";";
      } else {
        line = m.net(s.target).name + " <= " + emit_expr(m, *s.value) + ";";
      }
      out += "      " + line + "\n";
    }
    out += "    end\n";
    out += "  end\n\n";
  }

  // Memory ports: one always block per port (BRAM inference idiom).
  for (const Memory& mem : m.memories()) {
    for (std::size_t pi = 0; pi < mem.ports.size(); ++pi) {
      const MemoryPort& p = mem.ports[pi];
      out += "  // " + mem.name + " port " + std::to_string(pi) + "\n";
      out += "  always @(posedge clk) begin\n";
      if (p.write_enable != nullptr) {
        out += "    if (" + emit_expr(m, *p.write_enable) + ") " + mem.name +
               "[" + emit_expr(m, *p.addr) + "] <= " +
               emit_expr(m, *p.write_data) + ";\n";
      }
      if (p.read_data >= 0) {
        out += "    " + m.net(p.read_data).name + " <= " + mem.name + "[" +
               emit_expr(m, *p.addr) + "];\n";
      }
      out += "  end\n\n";
    }
  }

  out += "endmodule\n";
  return out;
}

std::string emit_design(const Design& d) {
  std::string out =
      "// Generated by hicsync (memory-centric thread synchronization)\n\n";
  // Emit non-top modules first so readers meet leaves before the top.
  for (const auto& m : d.modules()) {
    if (m->name() == d.top()) continue;
    out += emit_module(*m) + "\n";
  }
  if (const Module* top = d.find(d.top())) {
    out += emit_module(*top);
  }
  return out;
}

}  // namespace hicsync::rtl
