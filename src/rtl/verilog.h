// Verilog-2001 emission from the RTL netlist IR.
//
// Output conventions: one always @(posedge clk) block per module gathering
// all sequential assignments with a synchronous active-high reset; memories
// emitted in the BRAM-inference idiom Xilinx synthesis recognizes
// (sync-write, sync-read register per port).
#pragma once

#include <string>

#include "rtl/netlist.h"

namespace hicsync::rtl {

/// Emits one module.
[[nodiscard]] std::string emit_module(const Module& module);

/// Emits every module of the design, top last.
[[nodiscard]] std::string emit_design(const Design& design);

/// Renders an expression as a Verilog rvalue (exposed for tests).
[[nodiscard]] std::string emit_expr(const Module& module, const RtlExpr& e);

}  // namespace hicsync::rtl
