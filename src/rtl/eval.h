// Cycle-stepped functional evaluation of a single RTL module.
//
// Lets tests and the system simulator execute *generated* netlists (the
// memory-organization controllers) rather than a separate behavioural model:
// combinational assigns are settled to a fixpoint each cycle, then registers
// and memory ports commit on the clock edge. Memories follow the BRAM
// read-first convention (a simultaneous read sees the old contents).
//
// Instances are not elaborated — generators emit flat controller modules.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rtl/netlist.h"

namespace hicsync::rtl {

struct SimOptions {
  /// When set, construction scans every expression site (continuous assign
  /// values, sequential next-state/enable expressions, memory port address/
  /// write-enable/write-data) for references to nets that nothing drives —
  /// not an input port, not a continuous or sequential target, not a memory
  /// read port. Such reads silently evaluate as 0 in the default mode,
  /// masking exactly the wiring bugs hic-nlint reports statically; strict
  /// mode throws std::runtime_error naming the net and the reading site.
  bool strict_undriven = false;
};

class ModuleSim {
 public:
  /// Builds the evaluation order. Throws std::runtime_error on
  /// combinational cycles or unsupported features (instances).
  explicit ModuleSim(const Module& module);
  ModuleSim(const Module& module, const SimOptions& options);

  /// Sets an input port value (masked to the port width).
  void set_input(const std::string& name, std::uint64_t value);

  /// Value of any named net after the last settle/step.
  [[nodiscard]] std::uint64_t get(const std::string& name) const;

  /// Re-evaluates combinational logic with current inputs/registers
  /// (no clock edge).
  void settle();

  /// One clock cycle: settle, then commit registers and memory ports, then
  /// settle again so outputs reflect the new state.
  void step();

  /// Applies reset for one cycle (rst=1, step, rst=0).
  void reset();

  /// Returns the instance to its just-constructed state: every net and
  /// memory word zeroed, cycle counter cleared, combinational logic
  /// re-settled. Unlike reset(), which only exercises the module's own
  /// reset logic, this also clears BRAM contents — it is what lets a
  /// long-lived simulator (the hic-rt executor pool) recycle a module
  /// between workloads with results identical to a fresh instance.
  void clear_state();

  /// Direct memory access for tests (word address).
  [[nodiscard]] std::uint64_t read_mem(const std::string& mem,
                                       std::size_t addr) const;
  void write_mem(const std::string& mem, std::size_t addr,
                 std::uint64_t value);

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  [[nodiscard]] std::uint64_t eval(const RtlExpr& e) const;
  [[nodiscard]] int net_id(const std::string& name) const;
  [[nodiscard]] static std::uint64_t mask(std::uint64_t v, int width);

  const Module& module_;
  std::vector<std::uint64_t> values_;          // per net
  std::vector<int> order_;                     // topo order of assigns_
  std::map<std::string, std::vector<std::uint64_t>> memories_;
  std::map<std::string, int> names_;
  std::uint64_t cycles_ = 0;
};

}  // namespace hicsync::rtl
