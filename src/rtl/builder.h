// Structural RTL builders shared by the memory-organization generators:
// mux trees (the pseudo-port multiplexing layers of Figs. 2 and 3),
// a round-robin arbiter (§3.1 "we have implemented a simple round robin
// arbitration scheme"), fixed-priority grant logic (§3.1 port priorities
// D > C > B), and the CAM-style comparator bank over the dependency list.
#pragma once

#include <string>
#include <vector>

#include "rtl/netlist.h"

namespace hicsync::rtl {

/// N-to-1 mux as an expression tree: result = inputs[sel]. `inputs` must be
/// non-empty; missing power-of-two slots repeat the last input. sel must be
/// clog2(N) bits wide (at least 1).
[[nodiscard]] RtlExprPtr build_mux_tree(Module& m, int sel_net,
                                        std::vector<RtlExprPtr> inputs);

/// One-hot binary decoder: out[i] = (sel == i); returns N 1-bit wires.
[[nodiscard]] std::vector<int> build_decoder(Module& m, int sel_net, int n,
                                             const std::string& prefix);

struct ArbiterNets {
  std::vector<int> grant;  // 1-bit wire per requester, one-hot
  int any_grant = -1;      // 1-bit wire
  int pointer = -1;        // rotating-priority pointer register
};

/// Round-robin arbiter over 1-bit request nets. Grants exactly one active
/// requester per cycle; after a grant the pointer moves past the winner so
/// waiting requesters take turns ("a blocking read request on port C is
/// treated as a waiting request and can be overridden").
/// `pointer_width` overrides the pointer register width (0 = derive from
/// the request count); the arbitrated organization fixes it at the
/// max-consumer size so the flip-flop count stays constant as pseudo-ports
/// are added.
[[nodiscard]] ArbiterNets build_round_robin_arbiter(
    Module& m, const std::vector<int>& requests, const std::string& prefix,
    int pointer_width = 0);

/// Fixed-priority grant: grant[i] = requests[i] & none of requests[0..i-1].
/// Index 0 is the highest priority.
[[nodiscard]] std::vector<int> build_fixed_priority(
    Module& m, const std::vector<int>& requests, const std::string& prefix);

/// Balanced OR tree over expressions (nullptr-safe; identity 0 when empty).
[[nodiscard]] RtlExprPtr eor_tree(std::vector<RtlExprPtr> terms, int width);

/// One-hot AND-OR multiplexer: result = OR_i (select[i] ? values[i] : 0).
/// Selects must be mutually exclusive 1-bit nets. Depth is logarithmic in
/// the input count, unlike a chained 2:1 mux cascade — this is the
/// pseudo-port multiplexing layer of Figs. 2 and 3.
[[nodiscard]] RtlExprPtr build_onehot_mux(Module& m,
                                          const std::vector<int>& selects,
                                          std::vector<RtlExprPtr> values,
                                          int width);

struct CamNets {
  std::vector<int> match;  // 1-bit wire per entry
  int any_match = -1;      // 1-bit wire
};

/// Comparator bank: match[i] = valid[i] && (entry_addr[i] == key).
/// This is the "content addressable memory (CAM) like structure ... for
/// performing comparisons on all the addresses in the dependency list".
[[nodiscard]] CamNets build_cam_match(Module& m,
                                      const std::vector<int>& entry_addr,
                                      const std::vector<int>& entry_valid,
                                      int key_net, const std::string& prefix);

/// Up/down counter register with load. Returns the register net; the caller
/// supplies enable/step expressions via the returned builder handle.
struct CounterNets {
  int reg = -1;
};
[[nodiscard]] CounterNets build_counter(Module& m, int width,
                                        RtlExprPtr load_enable,
                                        RtlExprPtr load_value,
                                        RtlExprPtr dec_enable,
                                        const std::string& prefix);

}  // namespace hicsync::rtl
