#include "rtl/testbench.h"

#include "support/strings.h"

namespace hicsync::rtl {

TestbenchRecorder::TestbenchRecorder(const Module& module)
    : module_(module), sim_(module) {}

void TestbenchRecorder::set_input(const std::string& name,
                                  std::uint64_t value) {
  sim_.set_input(name, value);
  current_.inputs[name] = value;
}

void TestbenchRecorder::step() {
  sim_.settle();
  for (const Port& p : module_.ports()) {
    if (p.dir != PortDir::Output) continue;
    current_.expected[module_.net(p.net).name] =
        sim_.get(module_.net(p.net).name);
  }
  sim_.step();
  trace_.push_back(std::move(current_));
  current_ = CycleRecord{};
  ++cycle_;
}

void TestbenchRecorder::reset() {
  set_input("rst", 1);
  step();
  set_input("rst", 0);
}

std::string TestbenchRecorder::emit(const std::string& tb_name) const {
  std::string out;
  out += "`timescale 1ns/1ps\n";
  out += "// Self-checking testbench generated from a recorded ModuleSim "
         "trace.\n";
  out += "module " + tb_name + ";\n";
  out += "  reg clk = 0;\n";
  out += "  always #5 clk = ~clk;\n";
  out += "  integer errors = 0;\n\n";

  // Declarations + DUT instantiation.
  for (const Port& p : module_.ports()) {
    const Net& n = module_.net(p.net);
    if (n.name == "clk") continue;
    std::string range =
        n.width > 1 ? "[" + std::to_string(n.width - 1) + ":0] " : "";
    if (p.dir == PortDir::Input) {
      out += "  reg " + range + n.name + " = 0;\n";
    } else {
      out += "  wire " + range + n.name + ";\n";
    }
  }
  out += "\n  " + module_.name() + " dut (\n";
  bool first = true;
  for (const Port& p : module_.ports()) {
    const Net& n = module_.net(p.net);
    if (!first) out += ",\n";
    out += "    ." + n.name + "(" + n.name + ")";
    first = false;
  }
  out += "\n  );\n\n";

  out += "  initial begin\n";
  for (std::size_t c = 0; c < trace_.size(); ++c) {
    const CycleRecord& rec = trace_[c];
    out += support::format("    // cycle %zu\n", c);
    out += "    @(posedge clk); #1;\n";
    for (const auto& [name, value] : rec.inputs) {
      out += "    " + name + " = " +
             support::format("64'h%llx",
                             static_cast<unsigned long long>(value)) +
             ";\n";
    }
    out += "    #3;\n";  // settle window before the sampling point
    for (const auto& [name, value] : rec.expected) {
      std::string want = support::format(
          "64'h%llx", static_cast<unsigned long long>(value));
      out += "    if (" + name + " !== " + want + ") begin "
             "$display(\"FAIL cycle " + std::to_string(c) + ": " + name +
             " = %0h, want " + want + "\", " + name +
             "); errors = errors + 1; end\n";
    }
  }
  out += "    if (errors == 0) $display(\"PASS: " +
         std::to_string(trace_.size()) + " cycles\");\n";
  out += "    else begin\n";
  out += "      $display(\"FAILED: %0d mismatches\", errors);\n";
  out += "      $fatal;\n";
  out += "    end\n";
  out += "    $finish;\n";
  out += "  end\n";
  out += "endmodule\n";
  return out;
}

}  // namespace hicsync::rtl
