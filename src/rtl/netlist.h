// RTL netlist intermediate representation.
//
// The design flow of §3 emits "a RTL HDL description ... fed into standard
// synthesis, place, and route tools". This IR is the target of the memory
// organization generators and the thread FSM lowering; it is emitted as
// Verilog-2001 (rtl/verilog.h) and technology-mapped for area/timing
// estimation (fpga/techmap.h).
//
// Model: a Module owns nets (wires/regs), continuous assignments,
// synchronous register assignments (single clock domain, synchronous active-
// high reset), inferred memories (BRAM candidates), and instances of other
// modules. Expressions are owned trees over net references and constants.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hicsync::rtl {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class RtlOp {
  Const,     // literal value
  Ref,       // net reference
  Slice,     // arg0[hi:lo]
  Concat,    // {arg0, arg1, ...} (arg0 = MSBs)
  Not,       // ~arg0
  And, Or, Xor,
  Add, Sub,
  Eq, Ne, Lt, Le,   // unsigned comparisons, 1-bit result
  Shl, Shr,         // shift by constant (arg1 must be Const)
  Mux,       // arg0 ? arg1 : arg2
  ReduceOr,  // |arg0 -> 1 bit
  ReduceAnd, // &arg0 -> 1 bit
};

struct RtlExpr;
using RtlExprPtr = std::unique_ptr<RtlExpr>;

struct RtlExpr {
  RtlOp op = RtlOp::Const;
  int width = 1;
  std::uint64_t value = 0;  // Const
  int net = -1;             // Ref
  int lo = 0, hi = 0;       // Slice

  std::vector<RtlExprPtr> args;

  [[nodiscard]] RtlExprPtr clone() const;
};

// Factories. Widths are computed from operands where implied.
[[nodiscard]] RtlExprPtr econst(std::uint64_t value, int width);
[[nodiscard]] RtlExprPtr eref(int net, int width);
[[nodiscard]] RtlExprPtr eslice(RtlExprPtr v, int hi, int lo);
[[nodiscard]] RtlExprPtr econcat(std::vector<RtlExprPtr> parts);
[[nodiscard]] RtlExprPtr enot(RtlExprPtr v);
[[nodiscard]] RtlExprPtr ebin(RtlOp op, RtlExprPtr a, RtlExprPtr b);
[[nodiscard]] RtlExprPtr emux(RtlExprPtr sel, RtlExprPtr when_true,
                              RtlExprPtr when_false);
[[nodiscard]] RtlExprPtr ereduce_or(RtlExprPtr v);
[[nodiscard]] RtlExprPtr ereduce_and(RtlExprPtr v);

// ---------------------------------------------------------------------------
// Module structure
// ---------------------------------------------------------------------------

enum class NetKind { Wire, Reg };
enum class PortDir { Input, Output };

struct Net {
  int id = -1;
  std::string name;
  int width = 1;
  NetKind kind = NetKind::Wire;
};

struct Port {
  std::string name;
  PortDir dir = PortDir::Input;
  int net = -1;
};

/// Continuous assignment: assign target = value.
struct ContAssign {
  int target = -1;
  RtlExprPtr value;
};

/// Synchronous assignment inside the single always @(posedge clk) block:
///   if (enable) target <= value;  with reset to reset_value when rst.
struct SeqAssign {
  int target = -1;
  RtlExprPtr enable;  // nullptr = always enabled
  RtlExprPtr value;
  std::uint64_t reset_value = 0;
  bool has_reset = true;
};

/// Synchronous memory (BRAM inference candidate). Each port is sync-read
/// and/or sync-write, mirroring a physical BRAM port.
struct MemoryPort {
  RtlExprPtr addr;
  RtlExprPtr write_enable;  // nullptr = read-only port
  RtlExprPtr write_data;
  int read_data = -1;       // net receiving the registered read value; -1 = write-only
};

struct Memory {
  std::string name;
  int width = 1;
  int depth = 1;
  std::vector<MemoryPort> ports;
};

/// Structural claim recorded by a builder primitive: the listed 1-bit nets
/// are intended to be mutually exclusive (at most one high per cycle).
/// build_onehot_mux and friends *assume* this; hic-nlint discharges it.
struct OneHotClaim {
  std::vector<int> nets;
  std::string origin;  // e.g. "round-robin arbiter 'c_arb'"
};

/// Instantiation of another module.
struct Instance {
  std::string name;
  std::string module;  // module name resolved within the Design
  struct Binding {
    std::string port;
    RtlExprPtr expr;   // for inputs; outputs must bind a plain Ref
  };
  std::vector<Binding> bindings;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // Net/port creation. Names are uniquified if reused.
  int add_wire(const std::string& name, int width);
  int add_reg(const std::string& name, int width);
  int add_input(const std::string& name, int width);
  int add_output(const std::string& name, int width);  // wire output
  int add_output_reg(const std::string& name, int width);

  void assign(int target, RtlExprPtr value);
  void seq(int target, RtlExprPtr value, RtlExprPtr enable = nullptr,
           std::uint64_t reset_value = 0, bool has_reset = true);
  Memory& add_memory(const std::string& name, int width, int depth);
  Instance& add_instance(const std::string& name, const std::string& module);

  /// The conventional clock/reset inputs; created on first use.
  int clk();
  int rst();

  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
  [[nodiscard]] const Net& net(int id) const {
    return nets_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<Port>& ports() const { return ports_; }
  [[nodiscard]] const std::vector<ContAssign>& assigns() const {
    return assigns_;
  }
  [[nodiscard]] const std::vector<SeqAssign>& seqs() const { return seqs_; }
  [[nodiscard]] const std::vector<Memory>& memories() const {
    return memories_;
  }
  [[nodiscard]] const std::vector<Instance>& instances() const {
    return instances_;
  }

  /// Records a mutual-exclusion claim over 1-bit nets (deduplicated on the
  /// net set; claims with fewer than two nets are trivially true and
  /// dropped). Builder primitives call this; hic-nlint proves the claims.
  void claim_onehot(std::vector<int> nets, std::string origin);
  [[nodiscard]] const std::vector<OneHotClaim>& onehot_claims() const {
    return onehot_claims_;
  }

  /// Total register bits (flip-flops) directly in this module.
  [[nodiscard]] int flipflop_bits() const;

  /// Checks: single driver per net, widths consistent, targets are the
  /// right kind. Returns true and leaves `error` empty on success.
  [[nodiscard]] bool validate(std::string* error = nullptr) const;

 private:
  int add_net(const std::string& name, int width, NetKind kind);
  std::string unique_name(const std::string& base);

  std::string name_;
  std::vector<Net> nets_;
  std::vector<Port> ports_;
  std::vector<ContAssign> assigns_;
  std::vector<SeqAssign> seqs_;
  std::vector<Memory> memories_;
  std::vector<Instance> instances_;
  std::vector<OneHotClaim> onehot_claims_;
  int clk_ = -1;
  int rst_ = -1;
};

/// A set of modules with a designated top.
class Design {
 public:
  Module& add_module(std::string name);
  [[nodiscard]] Module* find(const std::string& name);
  [[nodiscard]] const Module* find(const std::string& name) const;
  void set_top(const std::string& name) { top_ = name; }
  [[nodiscard]] const std::string& top() const { return top_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Module>>& modules() const {
    return modules_;
  }

 private:
  std::vector<std::unique_ptr<Module>> modules_;
  std::string top_;
};

/// Width of an expression (already stored, exposed for checking).
[[nodiscard]] int expr_width(const RtlExpr& e);

}  // namespace hicsync::rtl
